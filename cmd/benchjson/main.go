// Command benchjson converts `go test -bench` output into a small,
// machine-readable JSON document — the format of the checked-in
// BENCH_*.json perf-trajectory files and of the CI benchmark smoke job.
//
// Usage:
//
//	go test -bench 'Table3|Table4|Checkpoint' -benchtime 1x -run '^$' . | benchjson -label pr3 -o BENCH_3.json
//
// Lines that are not benchmark results (headers, PASS, logs) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Optional -benchmem columns; omitted when the run did not report them.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the document (e.g. pr3)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseLine parses one `BenchmarkX-N   iters   1234 ns/op [ 56 B/op  7 allocs/op ]` line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	found := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			found = true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		}
	}
	return b, found
}
