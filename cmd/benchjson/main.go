// Command benchjson converts `go test -bench` output into a small,
// machine-readable JSON document — the format of the checked-in
// BENCH_*.json perf-trajectory files and of the CI benchmark smoke job.
//
// Usage:
//
//	go test -bench 'Table3|Table4|Checkpoint' -benchtime 1x -run '^$' . | benchjson -label pr4 -o BENCH_4.json
//
// Lines that are not benchmark results (headers, PASS, logs) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
//
// With -compare BASELINE.json the command additionally gates the new
// numbers against a checked-in baseline: any Table3/Table4/Checkpoint
// benchmark whose ns/op exceeds its baseline by more than the threshold
// (default 2x, generous enough to absorb runner variance) fails the run
// with exit status 1 — the CI guard that keeps the perf trajectory from
// silently regressing.
//
// With -improve FRAG[,FRAG...] (alongside -compare) the named
// benchmarks must additionally *strictly improve* on both ns/op and
// allocs/op — the gate a PR uses to prove a claimed optimisation
// actually landed, not merely avoided the regression threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Optional -benchmem columns; omitted when the run did not report them.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the document (e.g. pr4)")
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline BENCH_*.json; fail on regressions past -threshold")
	threshold := flag.Float64("threshold", 2.0, "regression factor tolerated against -compare baseline")
	improve := flag.String("improve", "", "comma-separated benchmark name fragments that must strictly improve (ns/op AND allocs/op) vs the -compare baseline")
	flag.Parse()

	doc := Doc{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}

	if *compare != "" {
		ok := compareBaseline(doc, *compare, *threshold)
		if *improve != "" && !checkImproved(doc, *compare, *improve) {
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
	}
}

// gated reports whether a benchmark participates in the regression gate:
// the evaluation-table and checkpoint benchmarks that define the perf
// trajectory. Other benchmarks in the stream are recorded but not gated.
func gated(name string) bool {
	for _, key := range []string{"Table3", "Table4", "Checkpoint"} {
		if strings.Contains(name, key) {
			return true
		}
	}
	return false
}

// baseName strips the -N GOMAXPROCS suffix go test appends, so runs on
// machines with different core counts compare by benchmark identity.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compareBaseline checks doc's gated benchmarks against the baseline
// file and reports whether all of them stay within factor× the recorded
// ns/op. Benchmarks missing from either side are skipped (renames and
// new benchmarks must not break the gate).
func compareBaseline(doc Doc, path string, factor float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: compare:", err)
		return false
	}
	var base Doc
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: compare: %s: %v\n", path, err)
		return false
	}
	ref := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		ref[baseName(b.Name)] = b.NsPerOp
	}
	ok := true
	checked := 0
	for _, b := range doc.Benchmarks {
		if !gated(b.Name) {
			continue
		}
		want, found := ref[baseName(b.Name)]
		if !found || want <= 0 {
			continue
		}
		checked++
		ratio := b.NsPerOp / want
		if ratio > factor {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx allowed)\n",
				b.Name, b.NsPerOp, want, ratio, factor)
			ok = false
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s: %.0f ns/op vs baseline %.0f (%.2fx)\n",
				b.Name, b.NsPerOp, want, ratio)
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: compare: no gated benchmarks shared with %s\n", path)
		return false
	}
	return ok
}

// checkImproved enforces the strict-improvement gate: every benchmark
// matching one of the comma-separated fragments must beat the baseline
// on BOTH ns/op and allocs/op (not merely stay inside the regression
// threshold). Unlike compareBaseline's skip-on-missing policy, a
// fragment that matches nothing on either side is an error — a renamed
// benchmark must not silently disarm the gate.
func checkImproved(doc Doc, path, frags string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: improve:", err)
		return false
	}
	var base Doc
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: improve: %s: %v\n", path, err)
		return false
	}
	ref := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		ref[baseName(b.Name)] = b
	}
	ok := true
	for _, frag := range strings.Split(frags, ",") {
		frag = strings.TrimSpace(frag)
		if frag == "" {
			continue
		}
		matched := 0
		for _, b := range doc.Benchmarks {
			if !strings.Contains(b.Name, frag) {
				continue
			}
			want, found := ref[baseName(b.Name)]
			if !found {
				continue
			}
			matched++
			if b.NsPerOp >= want.NsPerOp {
				fmt.Fprintf(os.Stderr, "benchjson: NOT IMPROVED %s: %.0f ns/op vs baseline %.0f (must be strictly faster)\n",
					b.Name, b.NsPerOp, want.NsPerOp)
				ok = false
			}
			switch {
			case b.AllocsPerOp == nil || want.AllocsPerOp == nil:
				fmt.Fprintf(os.Stderr, "benchjson: NOT IMPROVED %s: allocs/op missing (run with -benchmem on both sides)\n", b.Name)
				ok = false
			case *b.AllocsPerOp >= *want.AllocsPerOp:
				fmt.Fprintf(os.Stderr, "benchjson: NOT IMPROVED %s: %.0f allocs/op vs baseline %.0f (must be strictly fewer)\n",
					b.Name, *b.AllocsPerOp, *want.AllocsPerOp)
				ok = false
			default:
				fmt.Fprintf(os.Stderr, "benchjson: improved %s: %.0f ns/op vs %.0f, %.0f allocs/op vs %.0f\n",
					b.Name, b.NsPerOp, want.NsPerOp, *b.AllocsPerOp, *want.AllocsPerOp)
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: improve: no benchmark matching %q shared with %s\n", frag, path)
			ok = false
		}
	}
	return ok
}

// parseLine parses one `BenchmarkX-N   iters   1234 ns/op [ 56 B/op  7 allocs/op ]` line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	found := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			found = true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		}
	}
	return b, found
}
