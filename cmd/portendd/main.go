// Command portendd is the long-lived Portend analysis service: an HTTP
// daemon that accepts many concurrent analysis submissions, streams
// verdicts back as NDJSON, and keeps per-submission persistent cache
// tiers so repeat analyses of the same program start warm (solver memo,
// concrete and symbolic checkpoints, sibling-outcome memos survive
// across requests).
//
// Usage:
//
//	portendd [-addr :7811] [-slots N] [-queue-soft 2] [-queue-hard 8]
//	         [-memory-budget-mb 256] [-max-tiers N] [-solver-ceiling N]
//
// Endpoints: POST /v1/analyze (NDJSON verdict stream), GET /metrics
// (Prometheus text), GET /healthz. Tenants identify themselves with the
// X-Portend-Tenant header; admission is round-robin fair across
// tenants, with per-tenant bounded queues that degrade budgets past the
// soft depth and shed with 429 at the hard depth. See docs/service.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7811", "listen address")
	slots := flag.Int("slots", 0, "concurrent analyses (0 = GOMAXPROCS)")
	queueSoft := flag.Int("queue-soft", 2, "per-tenant queue depth beyond which runs use a degraded budget")
	queueHard := flag.Int("queue-hard", 8, "per-tenant queue depth at which requests are shed with 429")
	memBudget := flag.Int("memory-budget-mb", 256, "collective memory budget for persistent cache tiers")
	maxTiers := flag.Int("max-tiers", 0, "cache-tier count bound (0 = derive from -memory-budget-mb)")
	solverCeiling := flag.Int("solver-ceiling", 0, "adaptive solver-cache ceiling per tier (0 = default)")
	parallel := flag.Int("parallel", 0, "default per-request classification pool width (0 = GOMAXPROCS)")
	flag.Parse()

	srv := server.New(server.Config{
		Slots:              *slots,
		QueueSoft:          *queueSoft,
		QueueHard:          *queueHard,
		MemoryBudgetMB:     *memBudget,
		MaxTiers:           *maxTiers,
		SolverCacheCeiling: *solverCeiling,
		DefaultParallel:    *parallel,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "portendd: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "portendd: %v\n", err)
		os.Exit(1)
	}
}
