// Command portendd is the long-lived Portend analysis service: an HTTP
// daemon that accepts many concurrent analysis submissions, streams
// verdicts back as NDJSON, and keeps per-submission persistent cache
// tiers so repeat analyses of the same program start warm (solver memo,
// concrete and symbolic checkpoints, sibling-outcome memos survive
// across requests). With -data-dir the tiers are also durable: each is
// serialized to a checksummed on-disk file and restored lazily after a
// restart, so warmth survives crashes and redeploys.
//
// Usage:
//
//	portendd [-addr :7811] [-slots N] [-queue-soft 2] [-queue-hard 8]
//	         [-memory-budget-mb 256] [-max-tiers N] [-solver-ceiling N]
//	         [-data-dir DIR] [-run-timeout D] [-drain-timeout 10s]
//	         [-faults SPEC]
//
// Endpoints: POST /v1/analyze (NDJSON verdict stream), GET /metrics
// (Prometheus text), GET /healthz (liveness), GET /readyz (readiness —
// 503 while starting or draining). Tenants identify themselves with the
// X-Portend-Tenant header; admission is round-robin fair across
// tenants, with per-tenant bounded queues that degrade budgets past the
// soft depth and shed with 429 at the hard depth. SIGTERM drains:
// in-flight runs finish (up to -drain-timeout), dirty tiers flush to
// -data-dir, then the listener closes. -faults (or PORTEND_FAULTS) arms
// internal/fault injection points for chaos testing. See
// docs/service.md and docs/operations.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dstore"
	"repro/internal/fault"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7811", "listen address")
	slots := flag.Int("slots", 0, "concurrent analyses (0 = GOMAXPROCS)")
	queueSoft := flag.Int("queue-soft", 2, "per-tenant queue depth beyond which runs use a degraded budget")
	queueHard := flag.Int("queue-hard", 8, "per-tenant queue depth at which requests are shed with 429")
	memBudget := flag.Int("memory-budget-mb", 256, "collective memory budget for persistent cache tiers (measured)")
	maxTiers := flag.Int("max-tiers", 0, "cache-tier count bound (0 = derive from -memory-budget-mb)")
	solverCeiling := flag.Int("solver-ceiling", 0, "adaptive solver-cache ceiling per tier (0 = default)")
	parallel := flag.Int("parallel", 0, "default per-request classification pool width (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "directory for durable cache tiers (empty = in-memory only)")
	runTimeout := flag.Duration("run-timeout", 0, "per-run watchdog; runs past it end with a terminal error event (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight runs on SIGTERM before flushing tiers")
	faults := flag.String("faults", "", "fault-injection spec, e.g. dstore.write:1,run.panic:* (also PORTEND_FAULTS)")
	flag.Parse()

	if err := fault.FromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "portendd: %s: %v\n", fault.EnvVar, err)
		os.Exit(2)
	}
	if *faults != "" {
		if err := fault.Set(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "portendd: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	if spec := fault.Active(); spec != "" {
		fmt.Fprintf(os.Stderr, "portendd: fault injection armed: %s\n", spec)
	}

	if *dataDir != "" {
		// Fail fast on an unusable data dir: the operator asked for
		// durability, so a typo'd path should not silently run in-memory.
		if _, err := dstore.Open(*dataDir); err != nil {
			fmt.Fprintf(os.Stderr, "portendd: %v\n", err)
			os.Exit(1)
		}
	}

	srv := server.New(server.Config{
		Slots:              *slots,
		QueueSoft:          *queueSoft,
		QueueHard:          *queueHard,
		MemoryBudgetMB:     *memBudget,
		MaxTiers:           *maxTiers,
		SolverCacheCeiling: *solverCeiling,
		DefaultParallel:    *parallel,
		DataDir:            *dataDir,
		RunTimeout:         *runTimeout,
		DrainTimeout:       *drainTimeout,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "portendd: draining")
		srv.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "portendd: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "portendd: %v\n", err)
		os.Exit(1)
	}
}
