package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const badSrc = `package p

import "time"

type set map[string]bool

// keys builds an ordered artifact from unordered iteration: flagged.
func keys(s set) []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	return out
}

func stamp() int64 { return time.Now().UnixNano() }
`

const goodSrc = `package q

import "sort"

type set map[string]bool

// sortedKeys collects then sorts: the idiom the lint recognizes.
func sortedKeys(s set) []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// copyInto ranges a map without building a slice: not flagged.
func copyInto(dst, src set) {
	for k, v := range src {
		dst[k] = v
	}
}

// waived carries the explicit annotation.
func waived(s set) []string {
	var out []string
	for k := range s { //determlint:unordered
		out = append(out, k)
	}
	return out
}
`

func writeDir(t *testing.T, name, file, src string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestFlagsMapRangeAndTimeNow(t *testing.T) {
	dir := writeDir(t, "bad", "bad.go", badSrc)
	findings, err := lintDir(dir, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want map-range-order + time-now", findings)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{"map-range-order", "time-now"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s finding in %v", want, findings)
		}
	}
}

func TestSortedWaivedAndMapCopyPass(t *testing.T) {
	dir := writeDir(t, "good", "good.go", goodSrc)
	findings, err := lintDir(dir, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestApprovedFileMayReadClock(t *testing.T) {
	dir := writeDir(t, "approved", "clock.go", `package r

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	findings, err := lintDir(dir, []string{"approved/clock.go"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("approved file still flagged: %v", findings)
	}
}
