// Command determlint is the repository's determinism lint: a small
// stdlib-only static check (go/ast + go/types) for the two patterns
// that have historically threatened the engine's byte-identical-verdict
// contract.
//
// Rules:
//
//   - map-range-order: a `for ... range` over a map whose body appends
//     to a slice builds an ordered artifact from unordered iteration.
//     The idiomatic fix — collect then sort — is recognized: a loop is
//     only reported when no sort.* call follows it in the enclosing
//     function. Loops whose order is provably irrelevant can carry a
//     `//determlint:unordered` comment on the range line.
//
//   - time-now: wall-clock reads make output depend on when the run
//     happened. time.Now is allowed only in the approved files named by
//     -timeok (duration measurement for stats and metrics) and in
//     tests; everywhere else it is reported.
//
// Usage:
//
//	determlint ./internal/core ./internal/server ./portend
//
// Each argument is one package directory (non-recursive). Findings are
// printed as file:line: rule: message; the exit status is 1 when any
// finding fires, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultTimeOK approves the files that legitimately read the wall
// clock: run-duration stats and service metrics. Matching is by path
// suffix; _test.go files are always exempt.
const defaultTimeOK = "internal/core/classifier.go,internal/server/server.go,portend/analyze.go,internal/eval/corpus.go,internal/eval/corpus_remote.go"

func main() {
	timeOK := flag.String("timeok", defaultTimeOK,
		"comma-separated path suffixes where time.Now is approved")
	withTests := flag.Bool("tests", false, "also lint _test.go files (time.Now stays exempt in tests)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: determlint [flags] dir [dir...]")
		os.Exit(2)
	}

	var approved []string
	for _, s := range strings.Split(*timeOK, ",") {
		if s = strings.TrimSpace(s); s != "" {
			approved = append(approved, s)
		}
	}

	var findings []string
	for _, dir := range flag.Args() {
		fs, err := lintDir(dir, approved, *withTests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "determlint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "determlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintDir parses and type-checks one package directory. Imports resolve
// to empty placeholder packages (the rules only need types declared in
// the package itself — every map the engine ranges over is a local
// type), so the check needs no build cache and no network.
func lintDir(dir string, approved []string, withTests bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return withTests || !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var findings []string
	for _, pkg := range pkgs {
		var files []*ast.File
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}

		info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
		conf := types.Config{
			Importer: stubImporter{},
			Error:    func(error) {}, // placeholder imports make some errors inevitable
		}
		// The returned error repeats what the Error hook saw; the Info
		// map is filled for everything that did resolve, which is all the
		// rules consume.
		_, _ = conf.Check(dir, fset, files, info)

		for _, f := range files {
			findings = append(findings, lintFile(fset, f, info, approved)...)
		}
	}
	return findings, nil
}

// stubImporter satisfies every import with an empty, complete package:
// selections into it type as invalid and are simply not flagged.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p, nil
}

func lintFile(fset *token.FileSet, f *ast.File, info *types.Info, approved []string) []string {
	var findings []string
	fname := fset.Position(f.Pos()).Filename
	isTest := strings.HasSuffix(fname, "_test.go")

	// Lines carrying a //determlint:unordered waiver.
	waived := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "determlint:unordered") {
				waived[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s: %s", relPath(p.Filename), p.Line, rule, msg))
	}

	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if waived[fset.Position(rs.Pos()).Line] {
				return true
			}
			if !appendsInBody(rs.Body) {
				return true
			}
			if sortCallAfter(fn.Body, rs.End()) {
				return true
			}
			report(rs.Pos(), "map-range-order",
				"appends to a slice while ranging over a map; sort the result or waive with //determlint:unordered")
			return true
		})
		return false // fn bodies handled above; don't descend twice
	})

	if !isTest && !suffixMatch(fname, approved) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && sel.Sel.Name == "Now" {
				report(sel.Pos(), "time-now",
					"wall-clock read outside the approved files (-timeok); results must not depend on when the run happened")
			}
			return true
		})
	}
	return findings
}

// appendsInBody reports whether the loop body contains a call to the
// append builtin — the signature of building an ordered slice from
// unordered map iteration.
func appendsInBody(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortCallAfter reports whether any sort.* call appears after pos in
// the function body — the collect-then-sort idiom that restores a
// deterministic order.
func sortCallAfter(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Pos() < pos {
			return !found
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sort" {
			found = true
		}
		return !found
	})
	return found
}

func suffixMatch(path string, suffixes []string) bool {
	path = filepath.ToSlash(path)
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func relPath(p string) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return p
}
