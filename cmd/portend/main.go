// Command portend is the end-to-end race detector and classifier: it runs
// a PIL program under the happens-before detector, classifies every
// distinct race into the four-category taxonomy of the paper (specViol /
// outDiff / k-witness / singleOrd), and prints the debugging-aid reports
// of §3.6, ordered by triage priority.
//
// Usage:
//
//	portend [-args 1,2] [-inputs 3,4] [-mp 5] [-ma 2] [-sym 2] [-parallel N] prog.pil
//	portend -workload pbzip2
//	portend -workload memcached -whatif
//
// Classification runs on a worker pool (-parallel, default GOMAXPROCS);
// the verdicts are byte-identical for every pool width.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/workloads"
)

func parseInts(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	argsFlag := flag.String("args", "", "comma-separated program arguments")
	inputsFlag := flag.String("inputs", "", "comma-separated input log values")
	mp := flag.Int("mp", 5, "max primary paths (Mp)")
	ma := flag.Int("ma", 2, "alternate schedules per primary (Ma)")
	sym := flag.Int("sym", 2, "number of symbolic inputs")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "classification worker-pool width (1 = sequential; verdicts are identical for every width)")
	workload := flag.String("workload", "", "analyze a built-in workload")
	whatIf := flag.Bool("whatif", false, "run the workload's what-if analysis (remove its designated locks)")
	verbose := flag.Bool("v", false, "print full debugging-aid reports")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Mp, opts.Ma, opts.SymbolicInputs = *mp, *ma, *sym
	opts.Parallel = *parallel

	args, err := parseInts(*argsFlag)
	if err != nil {
		fatal(err)
	}
	inputs, err := parseInts(*inputsFlag)
	if err != nil {
		fatal(err)
	}

	var prog *bytecode.Program
	var source, name string
	var whatIfLines []int

	if *workload != "" {
		w := workloads.ByName(*workload)
		if w == nil {
			fatal(fmt.Errorf("unknown workload %q (have: sqlite ocean fmm memcached pbzip2 ctrace bbuf avv dcl dbm rw)", *workload))
		}
		prog = w.Compile()
		source, name, whatIfLines = w.Source, w.Name, w.WhatIfLines
		if args == nil {
			args = w.Args
		}
		if inputs == nil {
			inputs = w.Inputs
		}
		if w.Predicates != nil {
			opts.Predicates = w.Predicates(prog)
		}
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: portend [flags] prog.pil (or -workload name)")
			os.Exit(2)
		}
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		source, name = string(raw), flag.Arg(0)
		ast, err := lang.Parse(source)
		if err != nil {
			fatal(err)
		}
		prog, err = bytecode.Compile(ast, name, bytecode.Options{})
		if err != nil {
			fatal(err)
		}
	}

	if *whatIf {
		if len(whatIfLines) == 0 {
			fatal(fmt.Errorf("workload has no designated what-if synchronization"))
		}
		res, err := core.WhatIf(source, name, whatIfLines, args, inputs, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("what-if: removed synchronization at lines %v\n", whatIfLines)
		fmt.Printf("new races induced: %d\n\n", len(res.NewRaces))
		printVerdicts(res.Modified, res.NewRaces, *verbose)
		return
	}

	res := core.Run(prog, args, inputs, opts)
	fmt.Printf("portend: %d distinct race(s) detected in %s\n\n", len(res.Verdicts), name)
	printVerdicts(prog, res.Verdicts, *verbose)
	for _, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "classification error: %v\n", e)
	}
}

func printVerdicts(prog *bytecode.Program, vs []*core.Verdict, verbose bool) {
	sorted := append([]*core.Verdict(nil), vs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return core.HarmfulnessRank(sorted[i].Class) < core.HarmfulnessRank(sorted[j].Class)
	})
	for i, v := range sorted {
		fmt.Printf("[%d] %s  —  %s\n", i+1, v.Race.ID(), v)
		if verbose {
			fmt.Println(indent(v.Report(prog), "    "))
		}
	}
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "portend:", err)
	os.Exit(1)
}
