// Command portend is the end-to-end race detector and classifier: it runs
// a PIL program under the happens-before detector, classifies every
// distinct race into the four-category taxonomy of the paper (specViol /
// outDiff / k-witness / singleOrd), and prints the debugging-aid reports
// of §3.6, ordered by triage priority.
//
// Usage:
//
//	portend [-args 1,2] [-inputs 3,4] [-mp 5] [-ma 2] [-sym 2] [-parallel N] prog.pil
//	portend -workload pbzip2
//	portend -workload memcached -whatif
//	portend -workload rw -json
//	portend -workload sqlite -stream -timeout 30s
//	portend -lint prog.pil
//
// Classification runs on a worker pool (-parallel, default GOMAXPROCS);
// the verdicts are byte-identical for every pool width. -json emits one
// machine-readable report on stdout; -stream prints verdicts as they
// land; -timeout bounds the whole analysis via a context deadline and
// reports the partial results classified before it fired.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/server"
	"repro/portend"
)

func main() {
	argsFlag := flag.String("args", "", "comma-separated program arguments")
	inputsFlag := flag.String("inputs", "", "comma-separated input log values")
	mp := flag.Int("mp", 5, "max primary paths (Mp)")
	ma := flag.Int("ma", 2, "alternate schedules per primary (Ma)")
	sym := flag.Int("sym", 2, "number of symbolic inputs")
	parallel := cliutil.ParallelFlag("")
	workload := flag.String("workload", "", "analyze a built-in workload")
	whatIf := flag.Bool("whatif", false, "run the workload's what-if analysis (remove its designated locks)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	stream := flag.Bool("stream", false, "print verdicts as they land (detection order) instead of the sorted summary")
	timeout := flag.Duration("timeout", 0, "abort the analysis after this long, reporting partial results (0 = no deadline)")
	lint := flag.Bool("lint", false, "run the static pre-analysis only: candidate race pairs, locksets, and lint diagnostics (no execution)")
	verbose := flag.Bool("v", false, "print full debugging-aid reports")
	remote := flag.String("remote", "", "submit to a portendd instance at this base URL instead of analyzing in-process")
	tenant := flag.String("tenant", "", "tenant identity sent to the portendd instance (-remote only)")
	retries := flag.Int("retries", 4, "max resubmissions after connect failures, shedding, or mid-stream disconnects (-remote only; 0 = fail fast)")
	flag.Parse()

	a := portend.New(
		portend.WithMaxPaths(*mp),
		portend.WithMaxSchedules(*ma),
		portend.WithSymbolicInputs(*sym),
		portend.WithParallel(*parallel),
	)

	args, err := cliutil.ParseInts(*argsFlag)
	if err != nil {
		fatal(err)
	}
	inputs, err := cliutil.ParseInts(*inputsFlag)
	if err != nil {
		fatal(err)
	}

	var target portend.Target
	switch {
	case *workload != "":
		target = portend.Workload(*workload)
	case flag.NArg() == 1:
		target = portend.File(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: portend [flags] prog.pil (or -workload name)")
		os.Exit(2)
	}
	if args != nil {
		target = target.WithArgs(args...)
	}
	if inputs != nil {
		target = target.WithInputs(inputs...)
	}

	if *lint {
		rep, err := portend.Lint(target)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			// The canonical byte-stable artifact (schema portend-sa/1), not
			// a re-marshalling — identical bytes on every run.
			os.Stdout.Write(rep.Artifact())
		} else {
			fmt.Print(rep.String())
		}
		if rep.HasErrors() {
			os.Exit(1)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *remote != "" {
		if *whatIf {
			fatal(errors.New("-whatif is not supported with -remote (the analysis runs server-side)"))
		}
		runRemote(ctx, *remote, *tenant, *workload, args, inputs,
			*mp, *ma, *sym, *parallel, *retries, *jsonOut, *verbose)
		return
	}

	if *whatIf {
		res, err := a.WhatIf(ctx, target)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(res)
			return
		}
		fmt.Printf("what-if: removed synchronization at lines %v\n", res.RemovedLines)
		fmt.Printf("new races induced: %d\n\n", len(res.NewRaces))
		printVerdicts(res.NewRaces, *verbose)
		return
	}

	if *stream {
		// With -json this emits NDJSON: one compact object per verdict.
		streamVerdicts(ctx, a, target, *verbose, *jsonOut)
		return
	}

	rep, err := a.AnalyzeAll(ctx, target)
	if err != nil && rep == nil {
		fatal(err)
	}
	if *jsonOut {
		emitJSON(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "portend: analysis incomplete: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("portend: %d distinct race(s) detected in %s\n\n", len(rep.Verdicts), target.Name())
	printVerdicts(rep.Triage(), *verbose)
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "classification error: %s\n", e)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "portend: analysis incomplete: %v\n", err)
		os.Exit(1)
	}
}

// runRemote submits the analysis to a portendd instance and renders its
// NDJSON stream. In JSON mode each verdict event's payload is re-emitted
// verbatim, so stdout is byte-identical to a local `-stream -json` run
// (modulo stats counters, which depend on cache history); the done
// summary goes to stderr as one `portend: done {...}` line. With
// retries > 0 the client resumes across daemon restarts, shed responses,
// and mid-stream disconnects; dedupe keeps the merged output identical
// to an uninterrupted run.
func runRemote(ctx context.Context, base, tenant, workload string, args, inputs []int64, mp, ma, sym, parallel, retries int, jsonOut, verbose bool) {
	req := server.Request{
		Args:    args,
		Inputs:  inputs,
		Verbose: verbose,
		Options: &server.RequestOptions{Mp: mp, Ma: ma, SymbolicInputs: sym, Parallel: parallel},
	}
	switch {
	case workload != "":
		req.Workload = workload
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		req.Source, req.Name = string(src), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: portend -remote URL [flags] prog.pil (or -workload name)")
		os.Exit(2)
	}

	c := &server.Client{Base: base, Tenant: tenant, MaxRetries: retries}
	i := 0
	done, err := c.Analyze(ctx, req, func(ev server.Event) error {
		switch ev.Type {
		case server.EventDegraded:
			fmt.Fprintf(os.Stderr, "portend: server degraded the run to mp=%d ma=%d under load\n",
				ev.Degraded.Mp, ev.Degraded.Ma)
		case server.EventRaceError:
			fmt.Fprintf(os.Stderr, "classification error: race %s: %s\n", ev.Race, ev.Message)
		case server.EventVerdict:
			i++
			if jsonOut {
				os.Stdout.Write(ev.Verdict)
				os.Stdout.Write([]byte{'\n'})
				return nil
			}
			v, derr := ev.DecodeVerdict()
			if derr != nil {
				return derr
			}
			fmt.Printf("[%d] %s  —  %s\n", i, v.Race.ID, ev.Summary)
			if verbose && ev.Report != "" {
				fmt.Println(cliutil.Indent(ev.Report, "    "))
			}
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		b, _ := json.Marshal(done)
		fmt.Fprintf(os.Stderr, "portend: done %s\n", b)
		return
	}
	fmt.Printf("done: %d race(s), %d verdict(s), %d error(s) in %.3fs",
		done.Races, done.Verdicts, done.Errors, float64(done.DurationNs)/1e9)
	if done.WarmStart {
		fmt.Printf("  (warm start: tier run %d)", done.Tier.Runs)
	}
	fmt.Println()
}

// streamVerdicts prints each verdict the moment it (and every earlier
// one) lands — the service-shaped consumption pattern. In JSON mode each
// verdict is one compact NDJSON line.
func streamVerdicts(ctx context.Context, a *portend.Analyzer, target portend.Target, verbose, jsonOut bool) {
	enc := json.NewEncoder(os.Stdout)
	i := 0
	for v, err := range a.Analyze(ctx, target) {
		if err != nil {
			var re *portend.RaceError
			if errors.As(err, &re) {
				fmt.Fprintf(os.Stderr, "classification error: %v\n", re)
				continue
			}
			fatal(err)
		}
		i++
		if jsonOut {
			if err := enc.Encode(v); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("[%d] %s  —  %s\n", i, v.Race.ID, v)
		if verbose {
			fmt.Println(cliutil.Indent(v.DebugReport(), "    "))
		}
	}
}

func printVerdicts(vs []portend.Verdict, verbose bool) {
	for i, v := range vs {
		fmt.Printf("[%d] %s  —  %s\n", i+1, v.Race.ID, v)
		if verbose {
			fmt.Println(cliutil.Indent(v.DebugReport(), "    "))
		}
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	cliutil.Fatal("portend", err)
}
