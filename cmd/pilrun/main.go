// Command pilrun runs a PIL program concretely — the reproduction's
// equivalent of plain Cloud9 interpretation (no race detection, no
// classification). It is the baseline for Table 4's "Cloud9 running
// time" column.
//
// Usage:
//
//	pilrun [-args 1,2,3] [-inputs 4,5] [-budget N] [-disasm] prog.pil
//	pilrun -workload pbzip2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bytecode"
	"repro/internal/lang"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func parseInts(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	argsFlag := flag.String("args", "", "comma-separated program arguments")
	inputsFlag := flag.String("inputs", "", "comma-separated input log values")
	budget := flag.Int64("budget", 50_000_000, "instruction budget")
	disasm := flag.Bool("disasm", false, "print disassembly and exit")
	workload := flag.String("workload", "", "run a built-in workload instead of a file")
	// -parallel is accepted for interface symmetry with portend and
	// paper-eval, but a single concrete execution is inherently
	// sequential, so the value is not used.
	flag.Int("parallel", runtime.GOMAXPROCS(0), "accepted for symmetry with portend; a single concrete execution is inherently sequential")
	flag.Parse()

	var prog *bytecode.Program
	args, err := parseInts(*argsFlag)
	if err != nil {
		fatal(err)
	}
	inputs, err := parseInts(*inputsFlag)
	if err != nil {
		fatal(err)
	}

	if *workload != "" {
		w := workloads.ByName(*workload)
		if w == nil {
			fatal(fmt.Errorf("unknown workload %q", *workload))
		}
		prog = w.Compile()
		if args == nil {
			args = w.Args
		}
		if inputs == nil {
			inputs = w.Inputs
		}
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pilrun [flags] prog.pil (or -workload name)")
			os.Exit(2)
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		ast, err := lang.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		prog, err = bytecode.Compile(ast, flag.Arg(0), bytecode.Options{})
		if err != nil {
			fatal(err)
		}
	}

	if *disasm {
		fmt.Print(prog.Disasm())
		return
	}

	st := vm.NewState(prog, args, inputs)
	m := vm.NewMachine(st, vm.NewRoundRobin())
	start := time.Now()
	res := m.Run(*budget)
	dur := time.Since(start)

	fmt.Print(st.RenderOutputs())
	fmt.Fprintf(os.Stderr, "-- %s after %d instructions in %v\n", res.Kind, st.Steps, dur)
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "-- runtime error: %v\n", res.Err)
		os.Exit(1)
	}
	if res.Kind == vm.StopDeadlock {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pilrun:", err)
	os.Exit(1)
}
