// Command pilrun runs a PIL program concretely — the reproduction's
// equivalent of plain Cloud9 interpretation (no race detection, no
// classification). It is the baseline for Table 4's "Cloud9 running
// time" column.
//
// Usage:
//
//	pilrun [-args 1,2,3] [-inputs 4,5] [-budget N] [-disasm] prog.pil
//	pilrun -workload pbzip2
//	pilrun -workload ocean -timeout 5s
//	pilrun -check prog.pil
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/portend"
)

func main() {
	argsFlag := flag.String("args", "", "comma-separated program arguments")
	inputsFlag := flag.String("inputs", "", "comma-separated input log values")
	budget := flag.Int64("budget", 50_000_000, "instruction budget")
	disasm := flag.Bool("disasm", false, "print disassembly and exit")
	check := flag.Bool("check", false, "run the static pre-analysis and exit (no execution); -json emits the canonical artifact")
	jsonOut := flag.Bool("json", false, "with -check, emit the byte-stable static artifact instead of diagnostics")
	workload := flag.String("workload", "", "run a built-in workload instead of a file")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
	// -parallel is accepted for interface symmetry with portend and
	// paper-eval, but a single concrete execution is inherently
	// sequential, so the value is not used.
	cliutil.ParallelFlag("accepted for symmetry with portend; a single concrete execution is inherently sequential")
	flag.Parse()

	args, err := cliutil.ParseInts(*argsFlag)
	if err != nil {
		fatal(err)
	}
	inputs, err := cliutil.ParseInts(*inputsFlag)
	if err != nil {
		fatal(err)
	}

	var target portend.Target
	switch {
	case *workload != "":
		target = portend.Workload(*workload)
	case flag.NArg() == 1:
		target = portend.File(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: pilrun [flags] prog.pil (or -workload name)")
		os.Exit(2)
	}
	if args != nil {
		target = target.WithArgs(args...)
	}
	if inputs != nil {
		target = target.WithInputs(inputs...)
	}

	if *check {
		rep, err := portend.Lint(target)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			os.Stdout.Write(rep.Artifact())
		} else {
			fmt.Print(rep.String())
		}
		if rep.HasErrors() {
			os.Exit(1)
		}
		return
	}

	if *disasm {
		text, err := portend.Disassemble(target)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := portend.Exec(ctx, target, *budget)
	if res == nil {
		fatal(err)
	}
	fmt.Print(res.Output)
	fmt.Fprintf(os.Stderr, "-- %s after %d instructions in %v\n", res.Stop, res.Steps, res.Duration)
	if res.Err != "" {
		fmt.Fprintf(os.Stderr, "-- runtime error: %s\n", res.Err)
		os.Exit(1)
	}
	if err != nil || res.Failed() {
		os.Exit(1)
	}
}

func fatal(err error) {
	cliutil.Fatal("pilrun", err)
}
