// Command paper-eval regenerates every table and figure of the paper's
// evaluation (§5) on the workload suite, printing measured values next to
// the published ones.
//
// Usage:
//
//	paper-eval             # everything
//	paper-eval -table 3    # just Table 3
//	paper-eval -fig 7      # just Fig 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/eval"
)

func main() {
	table := flag.Int("table", 0, "render only this table (1-5)")
	fig := flag.Int("fig", 0, "render only this figure (7, 9, 10)")
	parallel := cliutil.ParallelFlag("classification worker-pool width per run (1 = sequential; results are identical for every width, only wall-clock changes)")
	flag.Parse()

	opts := eval.Options(*parallel)

	needSuite := *fig == 0 || *table != 0
	var s *eval.Suite
	if needSuite && (*fig == 0 || *table > 0) {
		s = eval.RunSuite(opts)
	}

	all := *table == 0 && *fig == 0
	show := func(t int) bool { return all || *table == t }
	showF := func(f int) bool { return all || *fig == f }

	if s != nil {
		if show(1) {
			fmt.Println(s.Table1())
		}
		if show(2) {
			fmt.Println(s.Table2())
		}
		if show(3) {
			fmt.Println(s.Table3())
		}
		if show(4) {
			fmt.Println(s.Table4())
		}
		if show(5) {
			fmt.Println(s.Table5())
		}
	}
	if *table == 0 {
		if showF(7) {
			fmt.Println(eval.Fig7(nil))
		}
		if showF(9) {
			fmt.Println(eval.Fig9Render(eval.Fig9(nil, nil, opts)))
		}
		if showF(10) {
			fmt.Println(eval.Fig10(nil))
		}
	}
	if s != nil && all {
		correct, total := s.Accuracy()
		fmt.Printf("headline: Portend classified %d/%d races correctly (%.0f%%; paper: 92/93 = 99%%)\n",
			correct, total, 100*float64(correct)/float64(total))
	}
	os.Exit(0)
}
