// Command paper-eval regenerates every table and figure of the paper's
// evaluation (§5) on the workload suite, printing measured values next to
// the published ones, and runs the labeled corpus evaluation — the
// DataRaceBench-style accuracy suite — with an optional machine-readable
// report and baseline gate.
//
// Usage:
//
//	paper-eval                    # every table and figure
//	paper-eval -table 3           # just Table 3
//	paper-eval -fig 7             # just Fig 7
//	paper-eval -corpus            # labeled corpus accuracy report
//	paper-eval -corpus -json CORPUS.json -baseline CORPUS_6.json
//	                              # ...write JSON, fail on accuracy regression
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/workloads/corpus"
)

func main() {
	table := flag.Int("table", 0, "render only this table (1-5)")
	fig := flag.Int("fig", 0, "render only this figure (7, 9, 10)")
	corpusMode := flag.Bool("corpus", false, "run the labeled corpus evaluation (precision/recall, confusion matrix, throughput) instead of the paper tables")
	corpusSeed := flag.Uint64("corpus-seed", corpus.DefaultSeed, "seed for the generated half of the corpus")
	corpusPerFamily := flag.Int("corpus-per-family", corpus.DefaultPerFamily, "generated programs per family template")
	jsonOut := flag.String("json", "", "write the corpus report as machine-readable JSON to this path (corpus mode)")
	baseline := flag.String("baseline", "", "compare corpus accuracy against this baseline JSON and exit non-zero on any regression (corpus mode)")
	remote := flag.String("remote", "", "run the corpus through a portendd instance at this base URL instead of in-process (corpus mode)")
	tenant := flag.String("tenant", "", "tenant identity sent to the portendd instance (-remote only)")
	retries := flag.Int("retries", 4, "max resubmissions per corpus program after connect failures, shedding, or disconnects (-remote only; 0 = fail fast)")
	parallel := cliutil.ParallelFlag("classification worker-pool width per run (1 = sequential; results are identical for every width, only wall-clock changes)")
	flag.Parse()

	opts := eval.Options(*parallel)

	if *corpusMode {
		os.Exit(runCorpus(*corpusSeed, *corpusPerFamily, *parallel, *retries, *jsonOut, *baseline, *remote, *tenant))
	}
	if *remote != "" {
		fmt.Fprintln(os.Stderr, "paper-eval: -remote requires -corpus (the paper tables run in-process)")
		os.Exit(2)
	}

	needSuite := *fig == 0 || *table != 0
	var s *eval.Suite
	if needSuite && (*fig == 0 || *table > 0) {
		s = eval.RunSuite(opts)
	}

	all := *table == 0 && *fig == 0
	show := func(t int) bool { return all || *table == t }
	showF := func(f int) bool { return all || *fig == f }

	if s != nil {
		if show(1) {
			fmt.Println(s.Table1())
		}
		if show(2) {
			fmt.Println(s.Table2())
		}
		if show(3) {
			fmt.Println(s.Table3())
		}
		if show(4) {
			fmt.Println(s.Table4())
		}
		if show(5) {
			fmt.Println(s.Table5())
		}
	}
	if *table == 0 {
		if showF(7) {
			fmt.Println(eval.Fig7(nil))
		}
		if showF(9) {
			fmt.Println(eval.Fig9Render(eval.Fig9(nil, nil, opts)))
		}
		if showF(10) {
			fmt.Println(eval.Fig10(nil))
		}
	}
	if s != nil && all {
		correct, total := s.Accuracy()
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(correct) / float64(total)
		}
		fmt.Printf("headline: Portend classified %d/%d races correctly (%.0f%%; paper: 92/93 = 99%%)\n",
			correct, total, pct)
	}
	os.Exit(0)
}

// runCorpus evaluates the labeled corpus — in-process, or through a
// portendd instance when remote is set — and returns the process exit
// code: 0 on success, 1 when the baseline gate finds a regression or a
// labeled verdict diverges from its expected-Portend label.
func runCorpus(seed uint64, perFamily, parallel, retries int, jsonOut, baseline, remote, tenant string) int {
	var res *eval.CorpusResult
	if remote != "" {
		// Resumable by default: a daemon restart or shed mid-corpus is
		// retried with backoff and the deduped stream keeps the merged
		// verdicts identical to an uninterrupted run.
		c := &server.Client{Base: remote, Tenant: tenant, MaxRetries: retries}
		var err error
		res, err = eval.RunCorpusRemote(context.Background(), c, corpus.Suite(seed, perFamily), parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper-eval: %v\n", err)
			return 1
		}
	} else {
		res = eval.RunCorpusAt(seed, perFamily, parallel)
	}
	fmt.Println(eval.CorpusTables(res))

	doc := res.Doc("paper-eval", perFamily)
	doc.Seed = seed
	if jsonOut != "" {
		if err := eval.WriteCorpusDoc(jsonOut, doc); err != nil {
			fmt.Fprintf(os.Stderr, "paper-eval: write %s: %v\n", jsonOut, err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}

	exit := 0
	if n := len(doc.Mismatches); n > 0 {
		fmt.Fprintf(os.Stderr, "paper-eval: %d verdict(s) diverge from their expected-Portend labels\n", n)
		exit = 1
	}
	if baseline != "" {
		base, err := eval.LoadCorpusDoc(baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper-eval: baseline: %v\n", err)
			return 1
		}
		if regressions := eval.CompareCorpusDocs(doc, base); len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "paper-eval: corpus accuracy regressed vs %s:\n", baseline)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  - %s\n", r)
			}
			exit = 1
		} else {
			fmt.Printf("corpus accuracy gate vs %s: ok\n", baseline)
		}
	}
	return exit
}
