package repro

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/workloads"
	"repro/internal/workloads/corpus"
)

// renderResult renders everything user-visible about a run — verdict
// order, one-line summaries, full §3.6 debugging-aid reports, and
// classification errors — as one string for byte-level comparison.
func renderResult(p *bytecode.Program, res *core.Result) string {
	var b strings.Builder
	for _, v := range res.Verdicts {
		b.WriteString(v.Race.ID())
		b.WriteString("  ")
		b.WriteString(v.String())
		b.WriteString("\n")
		b.WriteString(v.Report(p))
		b.WriteString("\n")
	}
	for _, err := range res.Errors {
		b.WriteString("error: ")
		b.WriteString(err.Error())
		b.WriteString("\n")
	}
	return b.String()
}

// TestTightBudgetCheckpointDeterminism pins the budget accounting of
// checkpoint resumes: under a run budget tight enough to bite, verdicts
// must be byte-identical with the checkpoint stores on and off, at
// sequential and parallel widths. A resumed replay or exploration is
// charged for its skipped prefix, so a budget-bound analysis stops at
// exactly the instruction its root-started twin would — otherwise
// checkpoint warmth could flip verdicts. The suite runs every built-in
// workload plus the two synthetic checkpoint shapes (many races behind
// a long prefix; input() and symbolic branches before every race).
func TestTightBudgetCheckpointDeterminism(t *testing.T) {
	suite := append([]*workloads.Workload{}, workloads.All()...)
	suite = append(suite,
		&workloads.Workload{Name: "many-race-tight", Source: workloads.ManyRaceSource(6, 1500), Inputs: []int64{3}},
		&workloads.Workload{Name: "sym-prefix-tight", Source: workloads.SymPrefixRaceSource(4, 5, 800), Inputs: []int64{2}},
	)
	for _, w := range suite {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Compile()
			run := func(parallel int, noCache bool) string {
				opts := core.DefaultOptions()
				opts.RunBudget = 40_000
				opts.EnforceBudget = 6_000
				opts.Parallel = parallel
				opts.NoCache = noCache
				if w.Predicates != nil {
					opts.Predicates = w.Predicates(p)
				}
				return renderResult(p, core.Run(p, w.Args, w.Inputs, opts))
			}
			want := run(1, false)
			for _, cfg := range []struct {
				name     string
				parallel int
				noCache  bool
			}{
				{"parallel=1 caches=off", 1, true},
				{"parallel=8 caches=on", 8, false},
				{"parallel=8 caches=off", 8, true},
			} {
				if got := run(cfg.parallel, cfg.noCache); got != want {
					t.Errorf("tight-budget verdicts differ between caches=on parallel=1 and %s\n--- want ---\n%s\n--- got ---\n%s",
						cfg.name, want, got)
				}
			}
		})
	}
}

// TestParallelDeterminism asserts the acceptance criteria of the
// parallel, shared-replay, and fused-interpreter engines together: for
// every built-in workload, verdicts and reports are byte-identical
// across a fully sequential run (-parallel 1), a fanned-out run
// (-parallel 8), runs with the reuse caches (replay checkpoint store,
// solver memo) disabled at both widths, and runs of the program compiled
// without the superinstruction fusion pass — the overlay must only
// change how fast instructions dispatch, never what they compute or how
// they are counted. Run under -race this also exercises the engine's
// synchronization: shared solver and its cache, shared fork budget,
// concurrent cloning of pre-race checkpoints, and concurrent access to
// the checkpoint store.
func TestParallelDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Compile()
			pNoFuse := bytecode.MustCompile(w.Source, w.Name, bytecode.Options{NoFuse: true})

			optsFor := func(prog *bytecode.Program, parallel int, noCache bool) core.Options {
				opts := core.DefaultOptions()
				opts.Parallel = parallel
				opts.NoCache = noCache
				if w.Predicates != nil {
					opts.Predicates = w.Predicates(prog)
				}
				return opts
			}

			want := renderResult(p, core.Run(p, w.Args, w.Inputs, optsFor(p, 1, false)))
			for _, cfg := range []struct {
				name     string
				prog     *bytecode.Program
				parallel int
				noCache  bool
			}{
				{"parallel=8 caches=on", p, 8, false},
				{"parallel=1 caches=off", p, 1, true},
				{"parallel=8 caches=off", p, 8, true},
				{"parallel=1 fusion=off", pNoFuse, 1, false},
				{"parallel=8 fusion=off caches=off", pNoFuse, 8, true},
			} {
				got := renderResult(cfg.prog, core.Run(cfg.prog, w.Args, w.Inputs, optsFor(cfg.prog, cfg.parallel, cfg.noCache)))
				if got != want {
					t.Errorf("verdicts differ between -parallel 1 caches=on and %s\n--- want ---\n%s\n--- got ---\n%s", cfg.name, want, got)
				}
			}
			if want == "" {
				t.Logf("workload %s produced no verdicts", w.Name)
			}
		})
	}
}

// TestDenseCadenceVerdictsMatchGeometric pins the detection-cadence
// default flip that rode along with copy-on-write snapshots: the dense
// initial window (DefaultDetectCheckpointEvery = 64) must yield verdicts
// byte-identical to the old geometric-512 start on every built-in
// workload and on a curated corpus program. Cadence only moves where the
// detection pass parks replay snapshots — resumes replay states the full
// replay passes through anyway — so any divergence is a checkpoint bug,
// not a tuning tradeoff.
func TestDenseCadenceVerdictsMatchGeometric(t *testing.T) {
	suite := append([]*workloads.Workload{}, workloads.All()...)
	for _, cp := range corpus.Curated() {
		suite = append(suite, cp.Workload)
		break // one curated program; the corpus suite covers the rest
	}
	for _, w := range suite {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Compile()
			run := func(every int64) string {
				opts := core.DefaultOptions()
				opts.Parallel = 1
				opts.DetectCheckpointEvery = every
				if w.Predicates != nil {
					opts.Predicates = w.Predicates(p)
				}
				return renderResult(p, core.Run(p, w.Args, w.Inputs, opts))
			}
			dense := run(0) // default: dense initial window
			if got := run(512); got != dense {
				t.Errorf("dense cadence changed verdicts vs geometric-512\n--- dense ---\n%s\n--- geometric ---\n%s", dense, got)
			}
		})
	}
}

// TestCorpusDeterminism extends the parallel-determinism property from
// the seven hand-ported workloads to the full labeled corpus — curated
// and generated halves alike: for every program of the default suite,
// verdicts and reports are byte-identical across worker-pool widths 1
// and 8 with the reuse caches on and off. The corpus accuracy baseline
// (CORPUS_<n>.json) is only meaningful because of this property; the
// generated programs also stress shapes (barriers, condvars, lock-free
// bookkeeping) the built-in workloads cover more thinly.
func TestCorpusDeterminism(t *testing.T) {
	for _, cp := range corpus.Default() {
		cp := cp
		t.Run(cp.Name, func(t *testing.T) {
			t.Parallel()
			p := cp.Compile()
			run := func(parallel int, noCache bool) string {
				opts := core.DefaultOptions()
				opts.Parallel = parallel
				opts.NoCache = noCache
				return renderResult(p, core.Run(p, cp.Args, cp.Inputs, opts))
			}
			want := run(1, false)
			if want == "" {
				t.Errorf("corpus program %s produced no verdicts", cp.Name)
			}
			for _, cfg := range []struct {
				name     string
				parallel int
				noCache  bool
			}{
				{"parallel=8 caches=on", 8, false},
				{"parallel=1 caches=off", 1, true},
				{"parallel=8 caches=off", 8, true},
			} {
				if got := run(cfg.parallel, cfg.noCache); got != want {
					t.Errorf("verdicts differ between -parallel 1 caches=on and %s\n--- want ---\n%s\n--- got ---\n%s",
						cfg.name, want, got)
				}
			}
		})
	}
}
