package repro

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/workloads"
)

// renderResult renders everything user-visible about a run — verdict
// order, one-line summaries, full §3.6 debugging-aid reports, and
// classification errors — as one string for byte-level comparison.
func renderResult(p *bytecode.Program, res *core.Result) string {
	var b strings.Builder
	for _, v := range res.Verdicts {
		b.WriteString(v.Race.ID())
		b.WriteString("  ")
		b.WriteString(v.String())
		b.WriteString("\n")
		b.WriteString(v.Report(p))
		b.WriteString("\n")
	}
	for _, err := range res.Errors {
		b.WriteString("error: ")
		b.WriteString(err.Error())
		b.WriteString("\n")
	}
	return b.String()
}

// TestParallelDeterminism asserts the acceptance criterion of the
// parallel engine: for every built-in workload, a fully sequential run
// (-parallel 1) and a fanned-out run (-parallel 8) produce byte-
// identical verdicts and reports. Run under -race this also exercises
// the engine's synchronization: shared solver, shared fork budget, and
// concurrent cloning of the pre-race checkpoints.
func TestParallelDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Compile()

			optsFor := func(parallel int) core.Options {
				opts := core.DefaultOptions()
				opts.Parallel = parallel
				if w.Predicates != nil {
					opts.Predicates = w.Predicates(p)
				}
				return opts
			}

			seq := renderResult(p, core.Run(p, w.Args, w.Inputs, optsFor(1)))
			par := renderResult(p, core.Run(p, w.Args, w.Inputs, optsFor(8)))
			if seq != par {
				t.Errorf("verdicts differ between -parallel 1 and -parallel 8\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
			if seq == "" {
				t.Logf("workload %s produced no verdicts", w.Name)
			}
		})
	}
}
