package portend

import (
	"errors"
	"fmt"
)

// Sentinel errors. Terminal failures returned by Analyze/AnalyzeAll wrap
// exactly one of these (or a context error), so callers branch with
// errors.Is; per-race classification failures are reported as *RaceError
// instead and do not terminate a run.
var (
	// ErrBadTarget: the target cannot be resolved (unreadable file,
	// nil program, zero Target).
	ErrBadTarget = errors.New("portend: invalid target")
	// ErrUnknownWorkload: Workload() named no built-in workload.
	ErrUnknownWorkload = errors.New("portend: unknown workload")
	// ErrParse: the target's PIL source does not parse.
	ErrParse = errors.New("portend: parse error")
	// ErrCompile: the target's PIL source does not compile.
	ErrCompile = errors.New("portend: compile error")
	// ErrNoWhatIf: what-if analysis needs source plus designated
	// synchronization lines; the target supplies neither.
	ErrNoWhatIf = errors.New("portend: target has no what-if synchronization lines")
)

// RaceError reports that one race failed to classify (for example,
// because its replay could not reach the racing access again). Other
// races of the same run are unaffected: Analyze keeps streaming and
// AnalyzeAll records the message in Report.Errors.
type RaceError struct {
	RaceID string
	Err    error
}

// Error implements the error interface.
func (e *RaceError) Error() string {
	return fmt.Sprintf("race %s: classification failed: %v", e.RaceID, e.Err)
}

// Unwrap exposes the underlying classification error.
func (e *RaceError) Unwrap() error { return e.Err }
