package portend_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestNoDirectInternalCoreConsumers enforces the API boundary of the
// redesign: the portend facade is the only package outside internal/
// allowed to import internal/core (or the engine's other internals). It
// inspects `go list -deps` over the commands and examples, checking the
// direct imports of every non-internal package in their dependency
// closures.
func TestNoDirectInternalCoreConsumers(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}

	cmd := exec.Command(goBin, "list", "-deps",
		"-f", `{{.ImportPath}}|{{join .Imports ","}}`,
		"./cmd/...", "./examples/...")
	cmd.Dir = ".." // module root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -deps: %v\n%s", err, out)
	}

	// Engine packages no one outside internal/ (except the facade) may
	// import directly.
	engine := map[string]bool{
		"repro/internal/core":    true,
		"repro/internal/race":    true,
		"repro/internal/explore": true,
		"repro/internal/solver":  true,
	}

	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, imports, ok := strings.Cut(line, "|")
		if !ok || !strings.HasPrefix(path, "repro") {
			continue // stdlib
		}
		if strings.Contains(path, "/internal/") || path == "repro/portend" {
			continue // the engine itself, and the one sanctioned facade
		}
		for _, imp := range strings.Split(imports, ",") {
			if engine[imp] {
				t.Errorf("package %s imports %s directly; consume the public repro/portend facade instead", path, imp)
			}
		}
	}
}

// TestExamplesUseOnlyPublicAPI holds the examples to the stricter bar:
// no repro/internal imports at all — they are the documentation of the
// public surface.
func TestExamplesUseOnlyPublicAPI(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	cmd := exec.Command(goBin, "list", "-f", `{{.ImportPath}}|{{join .Imports ","}}`, "./examples/...")
	cmd.Dir = ".."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v\n%s", err, out)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, imports, _ := strings.Cut(line, "|")
		for _, imp := range strings.Split(imports, ",") {
			if strings.HasPrefix(imp, "repro/internal/") {
				t.Errorf("example %s imports %s; examples must use only repro/portend", path, imp)
			}
		}
	}
}
