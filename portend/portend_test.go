package portend_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
	"repro/portend"
)

// renderCore renders everything user-visible about an engine result, for
// byte-level comparison (mirrors the top-level determinism test).
func renderCore(res *core.Result) string {
	var b strings.Builder
	for _, v := range res.Verdicts {
		b.WriteString(v.Race.ID())
		b.WriteString("  ")
		b.WriteString(v.String())
		b.WriteString("\n")
		b.WriteString(v.Report(res.Prog))
		b.WriteString("\n")
	}
	for _, err := range res.Errors {
		b.WriteString("error: ")
		b.WriteString(err.Error())
		b.WriteString("\n")
	}
	return b.String()
}

// renderFacade renders streamed facade outcomes in arrival order with the
// same shape as renderCore.
func renderFacade(vs []portend.Verdict, errs []error) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.Race.ID)
		b.WriteString("  ")
		b.WriteString(v.String())
		b.WriteString("\n")
		b.WriteString(v.DebugReport())
		b.WriteString("\n")
	}
	for _, err := range errs {
		var re *portend.RaceError
		if errors.As(err, &re) {
			b.WriteString("error: ")
			b.WriteString(re.RaceID)
			b.WriteString(": ")
			b.WriteString(re.Err.Error())
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TestFacadeMatchesEngine asserts the redesign's acceptance criterion:
// for every built-in workload, the streaming path and the batch path
// produce verdict sets byte-identical to the pre-redesign core.Run —
// at more than one parallelism width. The reference run disables the
// engine's reuse caches, so this also pins the shared-replay engine's
// guarantee: the facade's default (cached) analysis is byte-identical
// to the uncached engine at every width.
func TestFacadeMatchesEngine(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Compile()
			opts := core.DefaultOptions()
			opts.Parallel = 1
			opts.NoCache = true
			want := renderCore(core.Run(p, w.Args, w.Inputs, opts))

			for _, parallel := range []int{1, 8} {
				a := portend.New(portend.WithParallel(parallel))
				target := portend.Compiled(w.Name, w.Compile()).
					WithArgs(w.Args...).WithInputs(w.Inputs...)

				// Streaming path.
				var vs []portend.Verdict
				var errs []error
				for v, err := range a.Analyze(context.Background(), target) {
					if err != nil {
						var re *portend.RaceError
						if !errors.As(err, &re) {
							t.Fatalf("parallel=%d: terminal stream error: %v", parallel, err)
						}
						errs = append(errs, err)
						continue
					}
					vs = append(vs, v)
				}
				if got := renderFacade(vs, errs); got != want {
					t.Errorf("parallel=%d: streaming verdicts differ from core.Run\n--- core ---\n%s\n--- stream ---\n%s", parallel, want, got)
				}

				// Batch path.
				rep, err := a.AnalyzeAll(context.Background(), target)
				if err != nil {
					t.Fatalf("parallel=%d: AnalyzeAll: %v", parallel, err)
				}
				var batchErrs []error
				for _, raw := range rep.Raw().Errors {
					batchErrs = append(batchErrs, raw)
				}
				got := renderCore(rep.Raw())
				if got != want {
					t.Errorf("parallel=%d: batch verdicts differ from core.Run\n--- core ---\n%s\n--- batch ---\n%s", parallel, want, got)
				}
				_ = batchErrs
			}
		})
	}
}

const twoRaceSrc = `
var idx = 4
var arr[4]
var gen = 0
fn worker() {
	idx = 1
	gen = 7
}
fn main() {
	let t = spawn worker()
	yield()
	arr[idx] = 99
	gen = 7
	join(t)
	print("done gen=", gen)
}`

func TestAnalyzeEarlyStop(t *testing.T) {
	a := portend.New(portend.WithParallel(4))
	seen := 0
	for _, err := range a.Analyze(context.Background(), portend.Source("two-race", twoRaceSrc)) {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		seen++
		break // cancel the rest of the run
	}
	if seen != 1 {
		t.Fatalf("expected to observe exactly 1 verdict before break, got %d", seen)
	}
}

func TestReportJSON(t *testing.T) {
	a := portend.New()
	rep, err := a.AnalyzeAll(context.Background(), portend.Source("two-race", twoRaceSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) != 2 {
		t.Fatalf("expected 2 verdicts, got %d", len(rep.Verdicts))
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Target   string `json:"target"`
		Races    int    `json:"races"`
		Verdicts []struct {
			Race struct {
				ID     string `json:"id"`
				Object string `json:"object"`
			} `json:"race"`
			Class string `json:"class"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if decoded.Target != "two-race" || decoded.Races != 2 {
		t.Errorf("unexpected report header: %+v", decoded)
	}
	classes := map[string]bool{}
	for _, v := range decoded.Verdicts {
		if v.Race.ID == "" || v.Race.Object == "" {
			t.Errorf("verdict missing race coordinates: %+v", v)
		}
		classes[v.Class] = true
	}
	if !classes["specViol"] {
		t.Errorf("expected a specViol verdict in %v", classes)
	}
}

func TestTriageAndByClass(t *testing.T) {
	a := portend.New()
	rep, err := a.AnalyzeAll(context.Background(), portend.Source("two-race", twoRaceSrc))
	if err != nil {
		t.Fatal(err)
	}
	sorted := rep.Triage()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Class.Rank() > sorted[i].Class.Rank() {
			t.Errorf("triage order violated at %d: %s after %s", i, sorted[i].Class, sorted[i-1].Class)
		}
	}
	total := 0
	for _, vs := range rep.ByClass() {
		total += len(vs)
	}
	if total != len(rep.Verdicts) {
		t.Errorf("ByClass lost verdicts: %d != %d", total, len(rep.Verdicts))
	}
}

func TestTargetErrors(t *testing.T) {
	ctx := context.Background()
	a := portend.New()

	cases := []struct {
		name   string
		target portend.Target
		want   error
	}{
		{"unknown workload", portend.Workload("no-such-workload"), portend.ErrUnknownWorkload},
		{"parse error", portend.Source("bad", "fn main( {"), portend.ErrParse},
		{"zero target", portend.Target{}, portend.ErrBadTarget},
		{"nil program", portend.Compiled("nil", nil), portend.ErrBadTarget},
		{"missing file", portend.File("/no/such/file.pil"), portend.ErrBadTarget},
	}
	for _, tc := range cases {
		if _, err := a.AnalyzeAll(ctx, tc.target); !errors.Is(err, tc.want) {
			t.Errorf("%s: AnalyzeAll error = %v, want %v", tc.name, err, tc.want)
		}
		// The streaming path must surface the same terminal error.
		var streamErr error
		for _, err := range a.Analyze(ctx, tc.target) {
			streamErr = err
		}
		if !errors.Is(streamErr, tc.want) {
			t.Errorf("%s: Analyze error = %v, want %v", tc.name, streamErr, tc.want)
		}
	}

	if _, err := a.WhatIf(ctx, portend.Source("no-lines", twoRaceSrc)); !errors.Is(err, portend.ErrNoWhatIf) {
		t.Errorf("WhatIf without lines = %v, want ErrNoWhatIf", err)
	}
}

func TestWorkloadTargetMatchesCLIBehavior(t *testing.T) {
	// Workload targets attach the workload's canonical args, inputs and
	// predicates — the same configuration cmd/portend used to assemble
	// by hand from internal packages.
	names := portend.WorkloadNames()
	if len(names) == 0 {
		t.Fatal("no workloads")
	}
	a := portend.New()
	rep, err := a.AnalyzeAll(context.Background(), portend.Workload(names[0]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Target != names[0] {
		t.Errorf("target name %q, want %q", rep.Target, names[0])
	}
}

// TestSeedRoundTripsThroughFacade pins the seed-0 regression: WithSeed
// marks the seed explicit, so seed 0 survives both the facade and the
// engine's option normalization instead of decaying to the default.
func TestSeedRoundTripsThroughFacade(t *testing.T) {
	for _, seed := range []uint64{0, 1, 1 << 40} {
		a := portend.New(portend.WithSeed(seed))
		opts := a.Options()
		if opts.Seed != seed || !opts.SeedSet {
			t.Errorf("WithSeed(%d): options carry seed=%d set=%v", seed, opts.Seed, opts.SeedSet)
		}
		cl := core.New(nil, opts)
		if cl.Opts.Seed != seed {
			t.Errorf("WithSeed(%d): engine normalized the seed to %d", seed, cl.Opts.Seed)
		}
	}
	// Without WithSeed, zero still means "default".
	if cl := core.New(nil, portend.New().Options()); cl.Opts.Seed != core.DefaultOptions().Seed {
		t.Errorf("default seed = %d, want %d", cl.Opts.Seed, core.DefaultOptions().Seed)
	}
}

// TestCachingToggleAndStats asserts WithCaching(false) really disables
// the reuse machinery (no hits reported) and that the default cached
// analysis exposes its hit counters through the JSON verdicts.
func TestCachingToggleAndStats(t *testing.T) {
	ctx := context.Background()
	target := portend.Source("two-race", twoRaceSrc)

	cached, err := portend.New(portend.WithParallel(1)).AnalyzeAll(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := portend.New(portend.WithParallel(1), portend.WithCaching(false)).AnalyzeAll(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range uncached.Verdicts {
		if v.Stats.CheckpointHits != 0 || v.Stats.SolverCacheHits != 0 {
			t.Errorf("WithCaching(false) still reports hits: %+v", v.Stats)
		}
	}
	hits := 0
	for _, v := range cached.Verdicts {
		hits += v.Stats.CheckpointHits
	}
	if hits == 0 {
		t.Error("cached two-race analysis reports no checkpoint hits")
	}

	raw, err := json.Marshal(cached.Verdicts[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"checkpointHits", "solverCacheHits"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("verdict JSON missing %q: %s", key, raw)
		}
	}
}

func TestExecAndDisassemble(t *testing.T) {
	ctx := context.Background()
	res, err := portend.Exec(ctx, portend.Workload("rw"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != "finished" || res.Steps == 0 {
		t.Errorf("unexpected exec result: %+v", res)
	}
	if res.Failed() {
		t.Errorf("rw workload should not fail: %+v", res)
	}
	text, err := portend.Disassemble(portend.Workload("rw"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "main") {
		t.Errorf("disassembly looks wrong: %q", text[:min(len(text), 80)])
	}
}
