package portend_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/portend"
)

// TestAlreadyCancelled asserts the context contract's first half: a
// context that is cancelled before the call returns immediately with
// context.Canceled and no verdicts.
func TestAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	a := portend.New(portend.WithParallel(4))
	target := portend.Workload("pbzip2")

	start := time.Now()
	rep, err := a.AnalyzeAll(ctx, target)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeAll error = %v, want context.Canceled", err)
	}
	if rep == nil || len(rep.Verdicts) != 0 {
		t.Fatalf("expected an empty partial report, got %+v", rep)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("already-cancelled ctx took %v to return", d)
	}

	var last error
	n := 0
	for _, err := range a.Analyze(ctx, target) {
		last = err
		n++
	}
	if n != 1 || !errors.Is(last, context.Canceled) {
		t.Fatalf("Analyze yielded %d outcomes, last err %v; want a single context.Canceled", n, last)
	}
}

// slowRaceSrc races early and then grinds through a long concrete loop,
// so classification (replay continuation, alternate completion, Mp
// primaries, Ma alternates) dominates the analysis by a wide margin —
// a deadline set to a fraction of the measured full-run time reliably
// fires inside the multi-path multi-schedule worklist.
const slowRaceSrc = `
var g = 0
fn peer() {
	g = 5
}
fn main() {
	let t = spawn peer()
	yield()
	g = 5
	let acc = 0
	for i = 0, 300000 { acc = acc + 1 }
	join(t)
	print("acc=", acc)
}`

// deadlineMidRun calibrates a deadline against an unbounded run at the
// given pool width, then asserts the deadline aborts the detector's
// budget loop, the exploration engine, and the solver without
// deadlocking the pool, surfacing context.DeadlineExceeded with only
// fully classified races in the partial report. Run under -race this
// also checks the teardown's synchronization.
func deadlineMidRun(t *testing.T, parallel int) {
	target := portend.Source("slow-race", slowRaceSrc)
	a := portend.New(portend.WithParallel(parallel))

	start := time.Now()
	if _, err := a.AnalyzeAll(context.Background(), target); err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	full := time.Since(start)
	if full < 10*time.Millisecond {
		t.Skipf("analysis finished in %v; too fast to interrupt reliably", full)
	}

	ctx, cancel := context.WithTimeout(context.Background(), full/4)
	defer cancel()
	done := make(chan struct{})
	var rep *portend.Report
	var err error
	go func() {
		rep, err = a.AnalyzeAll(ctx, target)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadline did not abort the analysis: worker pool likely deadlocked")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AnalyzeAll error = %v, want context.DeadlineExceeded (full run %v, deadline %v)", err, full, full/4)
	}
	if rep == nil {
		t.Fatal("expected a partial report alongside the deadline error")
	}
	for _, v := range rep.Verdicts {
		if v.Race.ID == "" {
			t.Errorf("partial report contains a half-built verdict: %+v", v)
		}
	}
}

func TestDeadlineMidRun(t *testing.T) { deadlineMidRun(t, 4) }

// TestDeadlineMidRunSequential drives the same abort through the
// sequential (inline) engine, which takes a different code path than the
// worker pool.
func TestDeadlineMidRunSequential(t *testing.T) { deadlineMidRun(t, 1) }

// TestExecCancelled: the concrete-execution path honours cancellation too.
func TestExecCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := portend.Exec(ctx, portend.Workload("ocean"), -1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Exec error = %v, want context.Canceled", err)
	}
	if res == nil || res.Stop != "cancelled" {
		t.Fatalf("Exec result = %+v, want Stop=cancelled", res)
	}
}

// TestWhatIfCancelled: the what-if path propagates cancellation.
func TestWhatIfCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := portend.New().WhatIf(ctx, portend.Workload("memcached"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WhatIf error = %v, want context.Canceled", err)
	}
}
