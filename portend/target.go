package portend

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/workloads"
)

// Target names what an Analyzer analyzes: PIL source text, a PIL source
// file, an already-compiled bytecode program, or a built-in evaluation
// workload. Targets are immutable values; WithArgs/WithInputs return
// modified copies, so a base target can be reused across analyses.
type Target struct {
	kind targetKind

	name   string
	source string
	path   string
	prog   *bytecode.Program

	args, inputs       []int64
	argsSet, inputsSet bool
	whatIfLines        []int
}

type targetKind uint8

const (
	targetInvalid targetKind = iota
	targetSource
	targetFile
	targetCompiled
	targetWorkload
)

// Source targets PIL source text under the given display name.
func Source(name, src string) Target {
	return Target{kind: targetSource, name: name, source: src}
}

// File targets a PIL source file on disk; the path doubles as the name.
func File(path string) Target {
	return Target{kind: targetFile, name: path, path: path}
}

// Compiled targets an already-compiled program. What-if analysis is
// unavailable for compiled targets (it needs source to elide sync lines).
func Compiled(name string, prog *bytecode.Program) Target {
	return Target{kind: targetCompiled, name: name, prog: prog}
}

// Workload targets a built-in evaluation workload by name (see
// WorkloadNames). Workload targets carry their canonical arguments,
// input log, designated what-if synchronization lines, and — when the
// workload defines them — semantic predicates (e.g. fmm's "timestamps
// stay positive", §5.1).
func Workload(name string) Target {
	return Target{kind: targetWorkload, name: name}
}

// WithArgs overrides the target's program arguments.
func (t Target) WithArgs(args ...int64) Target {
	t.args, t.argsSet = append([]int64(nil), args...), true
	return t
}

// WithInputs overrides the target's input log.
func (t Target) WithInputs(inputs ...int64) Target {
	t.inputs, t.inputsSet = append([]int64(nil), inputs...), true
	return t
}

// WithWhatIfLines overrides the 1-based source lines whose lock/unlock
// operations a what-if analysis turns into no-ops.
func (t Target) WithWhatIfLines(lines ...int) Target {
	t.whatIfLines = append([]int(nil), lines...)
	return t
}

// Name returns the target's display name.
func (t Target) Name() string { return t.name }

// WorkloadNames lists the built-in workloads in evaluation order.
func WorkloadNames() []string {
	all := workloads.All()
	names := make([]string, 0, len(all))
	for _, w := range all {
		names = append(names, w.Name)
	}
	return names
}

// resolved is a target made concrete: compiled program, run coordinates,
// and any workload-supplied predicates.
type resolved struct {
	name        string
	source      string // "" for compiled targets
	prog        *bytecode.Program
	args        []int64
	inputs      []int64
	preds       []core.Predicate
	whatIfLines []int
}

// resolve compiles/loads the target. All failure modes wrap a sentinel
// from errors.go so callers can branch with errors.Is.
func (t Target) resolve() (*resolved, error) {
	r := &resolved{name: t.name, args: t.args, inputs: t.inputs, whatIfLines: t.whatIfLines}
	switch t.kind {
	case targetSource:
		r.source = t.source

	case targetFile:
		raw, err := os.ReadFile(t.path)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTarget, err)
		}
		r.source = string(raw)

	case targetCompiled:
		if t.prog == nil {
			return nil, fmt.Errorf("%w: Compiled target has nil program", ErrBadTarget)
		}
		r.prog = t.prog
		return r, nil

	case targetWorkload:
		w := workloads.ByName(t.name)
		if w == nil {
			return nil, fmt.Errorf("%w: %q (have: %s)", ErrUnknownWorkload, t.name, strings.Join(WorkloadNames(), " "))
		}
		r.source = w.Source
		if !t.argsSet {
			r.args = w.Args
		}
		if !t.inputsSet {
			r.inputs = w.Inputs
		}
		if len(r.whatIfLines) == 0 {
			r.whatIfLines = w.WhatIfLines
		}
		prog, err := compileSource(r.source, r.name)
		if err != nil {
			return nil, err
		}
		r.prog = prog
		if w.Predicates != nil {
			r.preds = w.Predicates(prog)
		}
		return r, nil

	default:
		return nil, fmt.Errorf("%w: zero Target", ErrBadTarget)
	}

	prog, err := compileSource(r.source, r.name)
	if err != nil {
		return nil, err
	}
	r.prog = prog
	return r, nil
}

func compileSource(src, name string) (*bytecode.Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	prog, err := bytecode.Compile(ast, name, bytecode.Options{})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCompile, err)
	}
	return prog, nil
}
