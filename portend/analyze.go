package portend

import (
	"context"
	"iter"
	"time"

	"repro/internal/core"
	"repro/internal/race"
	"repro/internal/vm"
)

// Analyze detects the data races the target's execution exposes and
// streams one Verdict per distinct race, in deterministic detection
// order, as soon as each classification (and every earlier one) lands.
// The order and content of the sequence are identical at every
// WithParallel width; parallelism only shifts when elements arrive.
//
// The yielded error is non-nil in exactly two cases:
//
//   - a *RaceError — that one race failed to classify; the sequence
//     continues with the remaining races;
//   - a terminal error — target resolution failed (wrapping one of this
//     package's sentinels) or ctx was cancelled; the sequence ends. On
//     cancellation every in-flight classification is interrupted (the
//     replay machines, the multi-path worklist, and the solver all poll
//     the context), so iteration returns promptly with the verdicts that
//     completed before the cancel.
//
// Breaking out of the loop early cancels the remaining work. Ranging the
// returned sequence again re-runs the whole analysis.
func (a *Analyzer) Analyze(ctx context.Context, t Target) iter.Seq2[Verdict, error] {
	return func(yield func(Verdict, error) bool) {
		r, err := t.resolve()
		if err != nil {
			yield(Verdict{}, err)
			return
		}
		opts := a.optsFor(r)
		stopped := false
		_, runErr := core.RunStream(ctx, r.prog, r.args, r.inputs, opts,
			func(rep *race.Report, cv *core.Verdict, cerr error) bool {
				var ok bool
				if cerr != nil {
					ok = yield(Verdict{}, &RaceError{RaceID: rep.ID(), Err: cerr})
				} else {
					ok = yield(newVerdict(cv, r.prog), nil)
				}
				if !ok {
					stopped = true
				}
				return ok
			})
		if runErr != nil && !stopped {
			yield(Verdict{}, runErr)
		}
	}
}

// AnalyzeAll is the batched form of Analyze: it runs the same streaming
// pipeline to completion and returns every verdict in the same
// deterministic order. Per-race classification failures are recorded in
// Report.Errors; the returned error is reserved for terminal failures
// (bad target, cancellation) and is accompanied by the partial Report
// accumulated so far.
func (a *Analyzer) AnalyzeAll(ctx context.Context, t Target) (*Report, error) {
	r, err := t.resolve()
	if err != nil {
		return nil, err
	}
	opts := a.optsFor(r)
	res, runErr := core.RunStream(ctx, r.prog, r.args, r.inputs, opts, nil)
	return a.report(t.Name(), r, res), runErr
}

// report converts an engine result into the public Report.
func (a *Analyzer) report(name string, r *resolved, res *core.Result) *Report {
	rep := &Report{Target: name, res: res}
	if det := res.Detection; det != nil {
		rep.Races = len(det.Reports)
		for _, dr := range det.Reports {
			rep.Instances += dr.Instances
		}
	}
	for _, cv := range res.Verdicts {
		rep.Verdicts = append(rep.Verdicts, newVerdict(cv, r.prog))
	}
	for _, e := range res.Errors {
		rep.Errors = append(rep.Errors, e.Error())
	}
	return rep
}

// WhatIf asks whether the target's designated synchronization is safe to
// remove (§5.1): it re-analyzes the program with the lock/unlock
// operations at the what-if lines turned into no-ops and reports the
// races that only the modified program exhibits. The target must carry
// source (Source, File, or Workload) and what-if lines — a workload's
// designated lines, or lines set via Target.WithWhatIfLines; otherwise
// ErrNoWhatIf is returned.
func (a *Analyzer) WhatIf(ctx context.Context, t Target) (*WhatIfReport, error) {
	r, err := t.resolve()
	if err != nil {
		return nil, err
	}
	if r.source == "" || len(r.whatIfLines) == 0 {
		return nil, ErrNoWhatIf
	}
	opts := a.optsFor(r)
	res, err := core.WhatIfCtx(ctx, r.source, r.name, r.whatIfLines, r.args, r.inputs, opts)
	if err != nil {
		return nil, err
	}
	w := &WhatIfReport{
		Target:       t.Name(),
		RemovedLines: append([]int(nil), r.whatIfLines...),
		All:          a.report(t.Name(), &resolved{prog: res.Modified}, res.All),
	}
	for _, cv := range res.NewRaces {
		w.NewRaces = append(w.NewRaces, newVerdict(cv, res.Modified))
	}
	return w, nil
}

// optsFor merges the analyzer's options with target-supplied predicates.
func (a *Analyzer) optsFor(r *resolved) core.Options {
	opts := a.opts
	if len(r.preds) > 0 {
		opts.Predicates = append(append([]core.Predicate(nil), opts.Predicates...), r.preds...)
	}
	return opts
}

// ExecResult is the outcome of a plain concrete execution (Exec).
type ExecResult struct {
	// Output is the program's rendered print output.
	Output string `json:"output"`
	// Steps counts interpreted instructions.
	Steps int64 `json:"steps"`
	// Stop says why the run ended: "finished", "deadlock", "error",
	// "budget", or "cancelled".
	Stop string `json:"stop"`
	// Err carries the runtime error message when Stop is "error".
	Err      string        `json:"error,omitempty"`
	Duration time.Duration `json:"durationNs"`
}

// Failed reports whether the execution ended abnormally (runtime error
// or deadlock).
func (r *ExecResult) Failed() bool {
	return r.Stop == vm.StopError.String() || r.Stop == vm.StopDeadlock.String()
}

// Exec runs the target concretely — no race detection, no classification;
// the reproduction's equivalent of plain Cloud9 interpretation, and the
// baseline for Table 4's running-time column. budget bounds the run in
// interpreted instructions (< 0 means unlimited; 0 stops before the
// first instruction). On cancellation the partial result is returned
// together with ctx's error.
func Exec(ctx context.Context, t Target, budget int64) (*ExecResult, error) {
	r, err := t.resolve()
	if err != nil {
		return nil, err
	}
	st := vm.NewState(r.prog, r.args, r.inputs)
	m := vm.NewMachine(st, vm.NewRoundRobin())
	if ctx.Done() != nil {
		m.Interrupt = func() bool { return ctx.Err() != nil }
	}
	start := time.Now()
	res := m.Run(budget)
	dur := time.Since(start) // before output rendering: Duration is pure interpretation
	out := &ExecResult{
		Output:   st.RenderOutputs(),
		Steps:    st.Steps,
		Stop:     res.Kind.String(),
		Duration: dur,
	}
	if res.Err != nil {
		out.Err = res.Err.Error()
	}
	if res.Kind == vm.StopCancelled {
		return out, ctx.Err()
	}
	return out, nil
}

// Disassemble renders the target's compiled bytecode.
func Disassemble(t Target) (string, error) {
	r, err := t.resolve()
	if err != nil {
		return "", err
	}
	return r.prog.Disasm(), nil
}
