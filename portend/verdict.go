package portend

import (
	"sort"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/vm"
)

// Class is the paper's four-category race taxonomy (Fig 1), using the
// paper's short names; the string values double as the JSON encoding.
type Class string

// Race classes, ordered by triage priority.
const (
	// SpecViolated: at least one ordering violates the specification
	// (crash, deadlock, hang, memory error, or a semantic predicate).
	SpecViolated Class = "specViol"
	// OutputDiffers: the orderings can produce different output.
	OutputDiffers Class = "outDiff"
	// KWitnessHarmless: harmless for k path-schedule witnesses.
	KWitnessHarmless Class = "k-witness"
	// SingleOrdering: only one ordering is possible (ad-hoc sync).
	SingleOrdering Class = "singleOrd"
)

// Rank orders classes by triage priority — the order a developer should
// inspect them (§1): specViol first, singleOrd last.
func (c Class) Rank() int {
	switch c {
	case SpecViolated:
		return 0
	case OutputDiffers:
		return 1
	case KWitnessHarmless:
		return 2
	case SingleOrdering:
		return 3
	}
	return 4
}

// Consequence refines SpecViolated verdicts (Table 2). Empty for the
// other classes.
type Consequence string

// Consequence kinds.
const (
	ConsDeadlock Consequence = "deadlock"
	ConsCrash    Consequence = "crash"
	ConsHang     Consequence = "hang"
	ConsSemantic Consequence = "semantic"
)

// AccessInfo is one side of a race.
type AccessInfo struct {
	Thread int  `json:"thread"`
	Write  bool `json:"write"`
	Line   int  `json:"line"`
}

// RaceInfo identifies a distinct race: the stable report ID, the racy
// object, both accesses, and how many dynamic instances were observed.
type RaceInfo struct {
	ID        string     `json:"id"`
	Object    string     `json:"object"`
	First     AccessInfo `json:"first"`
	Second    AccessInfo `json:"second"`
	Instances int        `json:"instances"`
}

// OutputDivergence is the evidence attached to an outDiff verdict: where
// the two orderings' outputs first differ (§3.6). Index is -1 when the
// orderings produced different record counts.
type OutputDivergence struct {
	Index          int    `json:"index"`
	Primary        string `json:"primary,omitempty"`
	Alternate      string `json:"alternate,omitempty"`
	PrimaryCount   int    `json:"primaryCount,omitempty"`
	AlternateCount int    `json:"alternateCount,omitempty"`
}

// Stats instruments one classification (Fig 9's axes, plus the engine's
// reuse and truncation accounting).
type Stats struct {
	Preemptions   int `json:"preemptions"`
	Branches      int `json:"branches"`
	SolverQueries int `json:"solverQueries"`
	PrimaryPaths  int `json:"primaryPaths"`
	Alternates    int `json:"alternates"`

	// CheckpointHits counts replays that resumed from the shared concrete
	// checkpoint store — populated by the detection pass (detection-point
	// and periodic snapshots) and by earlier classification replays —
	// instead of the program's initial state. SymCheckpointHits counts
	// multi-path explorations that resumed from the symbolic store:
	// exploration-mainline snapshots (pending forks included) usable even
	// when the skipped prefix consumed symbolic inputs. SolverCacheHits
	// counts solver queries answered from the shared memo. All three
	// depend on what earlier (possibly concurrent) work cached, so unlike
	// the verdict itself they may vary between runs of different
	// parallelism.
	CheckpointHits    int `json:"checkpointHits"`
	SymCheckpointHits int `json:"symCheckpointHits"`
	SolverCacheHits   int `json:"solverCacheHits"`

	// TruncatedPaths counts multi-path exploration the engine's caps
	// discarded (dropped forks plus abandoned worklist items). When it is
	// non-zero, a k-witness verdict's coverage is narrower than the
	// configured Mp×Ma suggests.
	TruncatedPaths int `json:"truncatedPaths,omitempty"`

	// FusedOps counts superinstructions the interpreter executed for
	// this classification (each covers several original instructions);
	// InternedConsts counts constants served from the expression intern
	// table without allocating. Both are throughput accounting: like
	// SolverQueries they may vary with pool width, never the verdict.
	FusedOps       int64 `json:"fusedOps,omitempty"`
	InternedConsts int64 `json:"internedConsts,omitempty"`

	// CloneAllocs and CloneBytes meter the copy-on-write state snapshots
	// this classification took (checkpoint deposits, enforcement forks,
	// exploration siblings): allocations and bytes spent on Clone itself,
	// measured rather than modeled. Throughput accounting like FusedOps —
	// varies with pool width, never the verdict.
	CloneAllocs int64 `json:"cloneAllocs,omitempty"`
	CloneBytes  int64 `json:"cloneBytes,omitempty"`

	// SolverCacheEvictions counts entries the run-wide solver memo
	// evicted (least-recently-used) while this race classified — a cache
	// pressure indicator for tuning, attributed to whichever race was
	// being timed when the eviction happened.
	SolverCacheEvictions int `json:"solverCacheEvictions,omitempty"`

	// SiblingMemoHits counts pending-fork re-runs this classification
	// skipped because a memoized sibling outcome proved the fork never
	// touches the racy object. SolverCacheCap is the solver memo's
	// capacity when the race finished; SolverCacheResizes counts adaptive
	// growth steps attributed to this race. Like the cache-hit counters
	// above, all three are reuse accounting and may vary between runs.
	SiblingMemoHits    int `json:"siblingMemoHits,omitempty"`
	SolverCacheCap     int `json:"solverCacheCap,omitempty"`
	SolverCacheResizes int `json:"solverCacheResizes,omitempty"`

	// PrunedSchedules counts exploration worklist items the static
	// pre-analysis proved inert for this race (no reachable access to the
	// racy object, no reachable symbolic branch) and skipped without
	// running; PathItemsRun counts the items that did run. The prune is
	// verdict-preserving — it shifts only these work counters.
	PrunedSchedules int `json:"prunedSchedules,omitempty"`
	PathItemsRun    int `json:"pathItemsRun,omitempty"`

	Duration time.Duration `json:"durationNs"`
}

// Verdict is the classification of one race. The zero Verdict (as seen
// alongside a non-nil error while ranging an Analyze sequence) is not a
// valid classification.
type Verdict struct {
	Race         RaceInfo          `json:"race"`
	Class        Class             `json:"class"`
	Consequence  Consequence       `json:"consequence,omitempty"`
	Detail       string            `json:"detail,omitempty"`
	K            int               `json:"k,omitempty"`
	StatesDiffer bool              `json:"statesDiffer"`
	OutputDiff   *OutputDivergence `json:"outputDiff,omitempty"`
	Stats        Stats             `json:"stats"`

	prog *bytecode.Program
	raw  *core.Verdict
}

// String renders the one-line summary (e.g. "specViol(crash: ...)").
func (v Verdict) String() string {
	if v.raw == nil {
		return "invalid"
	}
	return v.raw.String()
}

// DebugReport renders the full debugging-aid report of §3.6 (Fig 6): the
// race coordinates, the classification, the consequence, and the
// output-divergence evidence when present. Rendering happens on demand —
// consumers that never ask for the report (JSON mode, triage listings)
// do not pay for it.
func (v Verdict) DebugReport() string {
	if v.raw == nil {
		return ""
	}
	return v.raw.Report(v.prog)
}

// Raw exposes the engine's verdict. It is the module-internal escape
// hatch for harnesses under internal/ (the evaluation suite, benchmarks);
// its type lives in an internal package and carries no stability promise.
func (v Verdict) Raw() *core.Verdict { return v.raw }

// newVerdict converts an engine verdict into the public shape, retaining
// the program so DebugReport can render against it lazily.
func newVerdict(cv *core.Verdict, prog *bytecode.Program) Verdict {
	rep := cv.Race
	object := "heap object"
	if rep.Key.Space == vm.SpaceGlobal {
		object = prog.Globals[rep.Key.Obj].Name
	}
	v := Verdict{
		Race: RaceInfo{
			ID:        rep.ID(),
			Object:    object,
			First:     AccessInfo{Thread: rep.First.TID, Write: rep.First.Write, Line: int(rep.First.PC.Line)},
			Second:    AccessInfo{Thread: rep.Second.TID, Write: rep.Second.Write, Line: int(rep.Second.PC.Line)},
			Instances: rep.Instances,
		},
		Class:        Class(cv.Class.String()),
		Detail:       cv.Detail,
		StatesDiffer: cv.StatesDiffer,
		Stats: Stats{
			Preemptions:          cv.Stats.Preemptions,
			Branches:             cv.Stats.Branches,
			SolverQueries:        cv.Stats.SolverQueries,
			PrimaryPaths:         cv.Stats.PrimaryPaths,
			Alternates:           cv.Stats.Alternates,
			CheckpointHits:       cv.Stats.CheckpointHits,
			SymCheckpointHits:    cv.Stats.SymCheckpointHits,
			SolverCacheHits:      cv.Stats.SolverCacheHits,
			TruncatedPaths:       cv.Stats.TruncatedPaths,
			FusedOps:             cv.Stats.FusedOps,
			InternedConsts:       cv.Stats.InternedConsts,
			CloneAllocs:          cv.Stats.CloneAllocs,
			CloneBytes:           cv.Stats.CloneBytes,
			SolverCacheEvictions: cv.Stats.SolverCacheEvictions,
			SiblingMemoHits:      cv.Stats.SiblingMemoHits,
			SolverCacheCap:       cv.Stats.SolverCacheCap,
			SolverCacheResizes:   cv.Stats.SolverCacheResizes,
			PrunedSchedules:      cv.Stats.PrunedSchedules,
			PathItemsRun:         cv.Stats.PathItemsRun,
			Duration:             cv.Stats.Duration,
		},
		prog: prog,
		raw:  cv,
	}
	if cv.Class == core.SpecViolated {
		v.Consequence = Consequence(cv.Consequence.String())
	}
	if cv.Class == core.KWitnessHarmless {
		v.K = cv.K
	}
	if d := cv.OutputDiff; d != nil {
		v.OutputDiff = &OutputDivergence{
			Index:          d.Index,
			Primary:        d.Primary,
			Alternate:      d.Altern,
			PrimaryCount:   d.PrimaryN,
			AlternateCount: d.AltN,
		}
	}
	return v
}

// Report is the batched outcome of AnalyzeAll: every verdict in
// deterministic detection order, plus per-race classification failures.
type Report struct {
	Target    string    `json:"target"`
	Races     int       `json:"races"`
	Instances int       `json:"instances"`
	Verdicts  []Verdict `json:"verdicts"`
	Errors    []string  `json:"errors,omitempty"`

	res *core.Result
}

// ByClass groups the verdicts by class.
func (r *Report) ByClass() map[Class][]Verdict {
	m := map[Class][]Verdict{}
	for _, v := range r.Verdicts {
		m[v.Class] = append(m[v.Class], v)
	}
	return m
}

// Triage returns the verdicts ordered by harmfulness (specViol first,
// singleOrd last), stable within a class.
func (r *Report) Triage() []Verdict {
	out := append([]Verdict(nil), r.Verdicts...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Class.Rank() < out[j].Class.Rank()
	})
	return out
}

// Raw exposes the engine's result (detection reports, trace, final
// state). Module-internal escape hatch, like Verdict.Raw.
func (r *Report) Raw() *core.Result { return r.res }

// WhatIfReport answers "is it safe to remove this synchronization?"
// (§5.1): the races that exist only once the designated synchronization
// is removed, with their classifications.
type WhatIfReport struct {
	Target       string    `json:"target"`
	RemovedLines []int     `json:"removedLines"`
	NewRaces     []Verdict `json:"newRaces"`
	// All is the full analysis of the modified program; NewRaces is the
	// subset absent from the unmodified program.
	All *Report `json:"all"`
}

// KeepSync reports the paper's §5.1 recommendation: true when removing
// the synchronization induces at least one specification-violating race.
func (w *WhatIfReport) KeepSync() bool {
	for _, v := range w.NewRaces {
		if v.Class == SpecViolated {
			return true
		}
	}
	return false
}
