// Package portend is the public, stable API of the Portend data-race
// classifier — the supported way to consume the engine that lives under
// internal/. It reproduces the analysis of "Data Races vs. Data Race
// Bugs: Telling the Difference with Portend" (ASPLOS 2012): given a
// program, it detects the data races an execution exposes and predicts
// each race's consequences, placing it in the paper's four-category
// taxonomy (specViol / outDiff / k-witness / singleOrd).
//
// The package is service-shaped: an Analyzer is configured once with
// functional options, a Target names what to analyze (PIL source, a file,
// a compiled program, or a built-in workload), and Analyze streams
// verdicts as they land while honouring context cancellation and
// deadlines —
//
//	a := portend.New(portend.WithMaxPaths(5), portend.WithMaxSchedules(2))
//	for v, err := range a.Analyze(ctx, portend.Workload("pbzip2")) {
//		if err != nil { ... }
//		fmt.Println(v.Race.ID, v.Class)
//	}
//
// AnalyzeAll is the batched convenience; both paths produce identical
// verdict sets in identical (deterministic) order at every parallelism
// width. Verdicts and Reports marshal to JSON, so machine-readable output
// falls out of encoding/json directly.
//
// Everything under internal/ remains the engine; no package outside
// internal/ should import internal/core (or its siblings) anymore — this
// facade is the only supported surface.
package portend

import (
	"repro/internal/core"
	"repro/internal/solver"
)

// Analyzer runs Portend analyses. It is immutable after New and safe for
// concurrent use: every Analyze call builds its own classification
// pipeline from the configured options.
type Analyzer struct {
	opts core.Options
}

// Option configures an Analyzer.
type Option func(*core.Options)

// New returns an Analyzer using the paper's evaluation defaults (Mp=5
// primary paths, Ma=2 alternate schedules, 2 symbolic inputs, all
// techniques enabled), modified by the given options.
func New(options ...Option) *Analyzer {
	opts := core.DefaultOptions()
	for _, o := range options {
		o(&opts)
	}
	return &Analyzer{opts: opts}
}

// WithBudget bounds complete executions (replay, primaries, alternates)
// to n interpreted instructions each. Values <= 0 keep the default.
func WithBudget(n int64) Option {
	return func(o *core.Options) { o.RunBudget = n }
}

// WithEnforceBudget bounds each alternate-ordering enforcement attempt —
// the paper's classification timeout (§4). Values <= 0 keep the default.
func WithEnforceBudget(n int64) Option {
	return func(o *core.Options) { o.EnforceBudget = n }
}

// WithParallel sets the classification worker-pool width: races classify
// concurrently, and within one race the primary×alternate worklist fans
// out across the same pool. Verdict order and content are identical at
// every width; 1 runs fully sequentially, values < 1 mean GOMAXPROCS.
func WithParallel(n int) Option {
	return func(o *core.Options) { o.Parallel = n }
}

// WithMaxPaths bounds the number of primary paths explored per race (the
// paper's Mp, §3.3). Values <= 0 keep the default.
func WithMaxPaths(mp int) Option {
	return func(o *core.Options) { o.Mp = mp }
}

// WithMaxSchedules bounds the alternate schedules per primary path (the
// paper's Ma, §3.4); k = Mp × Ma. Values <= 0 keep the default.
func WithMaxSchedules(ma int) Option {
	return func(o *core.Options) { o.Ma = ma }
}

// WithSymbolicInputs marks the first n input() reads symbolic, widening
// multi-path exploration beyond the recorded input log.
func WithSymbolicInputs(n int) Option {
	return func(o *core.Options) { o.SymbolicInputs = n }
}

// WithSymbolicArgs marks specific program arguments symbolic.
func WithSymbolicArgs(idx ...int) Option {
	return func(o *core.Options) { o.SymbolicArgs = append([]int(nil), idx...) }
}

// WithMaxForks bounds state forking during multi-path exploration.
func WithMaxForks(n int) Option {
	return func(o *core.Options) { o.MaxForks = n }
}

// WithSeed seeds the randomized alternate schedules; runs with the same
// seed (and options) are fully reproducible. Every seed value round-
// trips, including 0 — the option marks the seed as explicitly chosen,
// so WithSeed(0) pins seed 0 rather than falling back to the default.
func WithSeed(seed uint64) Option {
	return func(o *core.Options) { o.Seed, o.SeedSet = seed, true }
}

// WithCaching toggles the engine's shared reuse machinery: the concrete
// replay checkpoint store (the detection pass and earlier races deposit
// snapshots that later replays resume from), the symbolic checkpoint
// store (multi-path explorations resume from earlier explorations'
// mainline snapshots, pending forks included), and the memoizing solver
// cache. It is on by default; verdicts are byte-identical either way
// (the caches shift time, never outcomes), so disabling it is only
// useful for ablation timing or to trade speed for memory.
func WithCaching(enabled bool) Option {
	return func(o *core.Options) { o.NoCache = !enabled }
}

// WithStaticAnalysis toggles the static pre-analysis consumers: the
// verdict-preserving schedule prune of the multi-path exploration
// (worklist items that provably cannot reach the racy object or any
// symbolic branch are skipped) and the extra detection-phase checkpoints
// at static race-candidate sites. It is on by default; verdicts are
// byte-identical either way (the static determinism suite asserts it),
// so disabling it is only useful for ablation timing.
func WithStaticAnalysis(enabled bool) Option {
	return func(o *core.Options) { o.NoStaticPrune = !enabled }
}

// WithCheckpointInterval sets the initial cadence, in interpreted
// instructions, of the periodic replay checkpoints the detection pass
// deposits while recording the trace (the cadence doubles after each
// deposit, so long traces pay O(log trace) snapshots). These deposits
// are what let even the first race of a trace resume its classification
// replay mid-trace — every other checkpoint source lies at or after
// some race's detection point. 0 keeps the default cadence (512);
// negative disables the periodic deposits, keeping only the per-race
// detection-point snapshots. The setting is ignored when caching is
// disabled.
func WithCheckpointInterval(steps int64) Option {
	return func(o *core.Options) { o.DetectCheckpointEvery = steps }
}

// Features are the technique gates of the paper's Fig 7 ablation.
type Features struct {
	// AdHocDetection classifies unenforceable alternates as ad-hoc
	// synchronization (singleOrd) instead of conservatively harmful.
	AdHocDetection bool
	// MultiPath explores up to Mp primary paths with symbolic inputs.
	MultiPath bool
	// MultiSchedule runs Ma randomized alternate schedules per primary.
	MultiSchedule bool
	// SymbolicOutput compares alternate outputs against the primary's
	// symbolic output constraints with the solver.
	SymbolicOutput bool
}

// FullAnalysis returns the paper's complete technique stack.
func FullAnalysis() Features {
	return Features{AdHocDetection: true, MultiPath: true, MultiSchedule: true, SymbolicOutput: true}
}

// SinglePath returns the "single-path" baseline of Fig 7.
func SinglePath() Features {
	return Features{}
}

// WithFeatures selects which of the paper's techniques run.
func WithFeatures(f Features) Option {
	return func(o *core.Options) {
		o.AdHocDetection = f.AdHocDetection
		o.MultiPath = f.MultiPath
		o.MultiSchedule = f.MultiSchedule
		o.SymbolicOutput = f.SymbolicOutput
	}
}

// WithSolverBudget tunes the constraint solver's search bounds.
func WithSolverBudget(maxCandidatesPerVar, maxNodes int) Option {
	return func(o *core.Options) {
		o.Solver = solver.Options{MaxCandidatesPerVar: maxCandidatesPerVar, MaxNodes: maxNodes}
	}
}

// WithEngineOptions replaces the analyzer's engine configuration
// wholesale. It is the module-internal bridge for harnesses (internal/
// eval, benchmarks) that already hold a core.Options; external consumers
// should compose the typed options above instead.
func WithEngineOptions(opts core.Options) Option {
	return func(o *core.Options) { *o = opts }
}

// Options returns a copy of the analyzer's resolved engine configuration
// (module-internal escape hatch, like WithEngineOptions).
func (a *Analyzer) Options() core.Options { return a.opts }
