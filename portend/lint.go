package portend

import (
	"repro/internal/sa"
)

// LintSeverity mirrors the static pass's diagnostic severities.
const (
	LintError   = sa.SeverityError   // certain runtime fault if the site executes
	LintWarning = sa.SeverityWarning // suspicious but not certainly fatal
)

// LintFinding is one diagnostic from the static pre-analysis.
type LintFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Fn       string `json:"fn"`
	Line     int    `json:"line"`
	Msg      string `json:"msg"`
}

// LintReport is the outcome of the static pre-analysis (internal/sa) of
// one target: race-pair candidates with their locksets, statically
// race-free objects, and lint diagnostics. The underlying artifact is
// deterministic — linting the same program any number of times yields
// byte-identical JSON.
type LintReport struct {
	Target string `json:"target"`

	// RaceFree means no candidate race pair survived the static pass:
	// every pair of shared accesses is provably single-threaded, ordered
	// by spawn structure, or protected by a common lock. The dynamic
	// detector cannot report a race on such a program.
	RaceFree bool `json:"raceFree"`

	// Candidates counts statically possible race pairs; RaceFreeObjects
	// and EscapingObjects summarize per-object escape results.
	Candidates      int      `json:"candidates"`
	RaceFreeObjects []string `json:"raceFreeObjects,omitempty"`
	EscapingObjects []string `json:"escapingObjects,omitempty"`

	Findings []LintFinding `json:"findings,omitempty"`

	facts *sa.Facts
}

// HasErrors reports whether any error-severity finding fired — a
// synchronization operation the analysis proves faults whenever it
// executes (double-lock, unlock of an unheld mutex, wait without its
// mutex).
func (r *LintReport) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == LintError {
			return true
		}
	}
	return false
}

// String renders the human-readable diagnostics (the -lint output).
func (r *LintReport) String() string { return r.facts.Render() }

// Artifact returns the canonical byte-stable static-analysis artifact
// (schema portend-sa/1): full candidate pairs with locksets, lints, and
// per-object results as indented JSON.
func (r *LintReport) Artifact() []byte { return r.facts.Encode() }

// Facts exposes the engine's static-analysis artifact. It is the
// module-internal escape hatch for harnesses under internal/ (the
// service threads it into the engine's pruning); its type lives in an
// internal package and carries no stability promise.
func (r *LintReport) Facts() *sa.Facts { return r.facts }

// Lint runs the static pre-analysis on a target without executing it:
// per-function control flow, interprocedural locksets, may-happen-in-
// parallel from the spawn structure, and shared-object escape analysis.
// It is the analysis the engine's verdict-preserving schedule pruning
// and the service's admission fast path consume; here it surfaces the
// same facts as diagnostics.
func Lint(t Target) (*LintReport, error) {
	r, err := t.resolve()
	if err != nil {
		return nil, err
	}
	facts := sa.Analyze(r.prog)
	rep := &LintReport{
		Target:          t.Name(),
		RaceFree:        facts.RaceFree,
		Candidates:      len(facts.Candidates),
		RaceFreeObjects: facts.RaceFreeObjects,
		EscapingObjects: facts.EscapingObjects,
		facts:           facts,
	}
	for _, l := range facts.Lints {
		rep.Findings = append(rep.Findings, LintFinding{
			Rule: l.Rule, Severity: l.Severity, Fn: l.Fn, Line: l.Line, Msg: l.Msg,
		})
	}
	return rep, nil
}
