package trace

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

const traceProg = `
var total = 0
mutex m
fn w(n) {
	for i = 0, n {
		lock(m)
		total += 1
		unlock(m)
	}
	print("done ", n)
}
fn main() {
	let a = spawn w(arg(0))
	let b = spawn w(4)
	join(a)
	join(b)
	print(total)
}`

func record(t *testing.T, args []int64) (*Trace, *vm.State) {
	t.Helper()
	p := bytecode.MustCompile(traceProg, "tr", bytecode.Options{})
	st := vm.NewState(p, args, nil)
	tr, res := Record(st, vm.NewRoundRobin(), 1_000_000)
	if res.Kind != vm.StopFinished {
		t.Fatalf("record run: %v", res.Kind)
	}
	return tr, st
}

func TestRecordReplayExact(t *testing.T) {
	tr, st1 := record(t, []int64{3})

	p := bytecode.MustCompile(traceProg, "tr", bytecode.Options{})
	st2 := vm.NewState(p, tr.Args, tr.Inputs)
	rep := NewReplayer(tr, vm.NewRoundRobin())
	m := vm.NewMachine(st2, rep)
	res := m.Run(1_000_000)
	if res.Kind != vm.StopFinished {
		t.Fatalf("replay run: %v", res.Kind)
	}
	if rep.Diverged {
		t.Fatalf("replay of identical execution diverged at %d", rep.DivergedAt)
	}
	if st1.RenderOutputs() != st2.RenderOutputs() {
		t.Fatalf("replay output mismatch:\n%q\n%q", st1.RenderOutputs(), st2.RenderOutputs())
	}
	if st1.MemoryFingerprint() != st2.MemoryFingerprint() {
		t.Fatal("replay memory mismatch")
	}
	if st1.Steps != st2.Steps {
		t.Fatalf("replay step mismatch: %d vs %d", st1.Steps, st2.Steps)
	}
}

func TestReplayUnderRandomRecording(t *testing.T) {
	p := bytecode.MustCompile(traceProg, "tr", bytecode.Options{})
	for seed := uint64(1); seed <= 4; seed++ {
		st := vm.NewState(p, []int64{5}, nil)
		tr, res := Record(st, vm.NewRandom(seed), 1_000_000)
		if res.Kind != vm.StopFinished {
			t.Fatalf("seed %d: %v", seed, res.Kind)
		}
		st2 := vm.NewState(p, tr.Args, tr.Inputs)
		rep := NewReplayer(tr, vm.NewRoundRobin())
		res = vm.NewMachine(st2, rep).Run(1_000_000)
		if res.Kind != vm.StopFinished || rep.Diverged {
			t.Fatalf("seed %d: replay failed (%v, diverged=%v)", seed, res.Kind, rep.Diverged)
		}
		if st.RenderOutputs() != st2.RenderOutputs() {
			t.Fatalf("seed %d: outputs differ", seed)
		}
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	tr, _ := record(t, []int64{6})
	// Replay with a different argument: thread a exits earlier, so some
	// recorded decision will pick a no-longer-runnable thread.
	p := bytecode.MustCompile(traceProg, "tr", bytecode.Options{})
	st := vm.NewState(p, []int64{1}, nil)
	rep := NewReplayer(tr, vm.NewRoundRobin())
	res := vm.NewMachine(st, rep).Run(1_000_000)
	if res.Kind != vm.StopFinished {
		t.Fatalf("run: %v", res.Kind)
	}
	if !rep.Diverged {
		t.Fatal("expected divergence with different input")
	}
	if rep.DivergedAt < 0 || rep.DivergedAt >= len(tr.Decisions) {
		t.Fatalf("bad divergence index %d", rep.DivergedAt)
	}
}

func TestReplayExhaustionFallsBack(t *testing.T) {
	tr, _ := record(t, []int64{2})
	// Truncate the trace: the tail of the execution runs on the fallback.
	tr.Decisions = tr.Decisions[:len(tr.Decisions)/2]
	p := bytecode.MustCompile(traceProg, "tr", bytecode.Options{})
	st := vm.NewState(p, tr.Args, tr.Inputs)
	rep := NewReplayer(tr, vm.NewRoundRobin())
	res := vm.NewMachine(st, rep).Run(1_000_000)
	if res.Kind != vm.StopFinished {
		t.Fatalf("run: %v", res.Kind)
	}
	if !rep.Exhausted {
		t.Fatal("expected trace exhaustion")
	}
	if rep.Diverged {
		t.Fatal("exhaustion is not divergence")
	}
}

func TestDecisionMetadata(t *testing.T) {
	tr, _ := record(t, []int64{2})
	if len(tr.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	for _, d := range tr.Decisions {
		if d.TID < 0 || d.Instr < 0 || d.Global < 0 {
			t.Fatalf("bad decision %+v", d)
		}
	}
	if tr.String() == "" {
		t.Fatal("trace rendering empty")
	}
}

func TestTraceClone(t *testing.T) {
	tr, _ := record(t, []int64{2})
	c := tr.Clone()
	c.Decisions[0].TID = 99
	c.Args[0] = 77
	if tr.Decisions[0].TID == 99 || tr.Args[0] == 77 {
		t.Fatal("clone aliases original")
	}
}
