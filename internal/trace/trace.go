// Package trace implements schedule traces and the record/replay
// controllers of Portend's runtime (§3.1).
//
// A trace captures every scheduling decision of an execution: which thread
// was chosen at each preemption point, together with that thread's
// per-thread completed-instruction count and program counter (the paper's
// "absolute count of instructions executed by the program up to each
// preemption point"). Replaying a trace against the same program and
// inputs reproduces the execution exactly; replaying it in multi-path mode
// reproduces the schedule while inputs vary, and the replayer reports
// divergence when a path cannot follow the recorded schedule (such paths
// are pruned before the race point, Fig 5).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

// Decision is one scheduling decision.
type Decision struct {
	TID    int
	Instr  int64 // chosen thread's completed instructions at the decision
	PC     bytecode.PCRef
	Global int64 // state-wide completed instructions at the decision
}

// Trace is a recorded schedule plus the inputs that produced it.
type Trace struct {
	Decisions []Decision
	Args      []int64
	Inputs    []int64
}

// String renders the schedule in the paper's (T0:pc0) → (T1:pc1) notation.
func (t *Trace) String() string {
	var b strings.Builder
	for i, d := range t.Decisions {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "(T%d:%d@%d)", d.TID, d.PC.Fn, d.PC.PC)
	}
	return b.String()
}

// NewTraceFor returns an empty trace capturing st's arguments and input
// log — the fixed part of a recording; decisions accumulate as the
// recorded execution runs.
func NewTraceFor(st *vm.State) *Trace {
	return &Trace{
		Args:   append([]int64(nil), st.Args...),
		Inputs: append([]int64(nil), st.In.Values...),
	}
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{
		Decisions: append([]Decision(nil), t.Decisions...),
		Args:      append([]int64(nil), t.Args...),
		Inputs:    append([]int64(nil), t.Inputs...),
	}
}

// Recorder wraps a controller and appends every decision to a Trace.
type Recorder struct {
	Inner vm.Controller
	T     *Trace
}

// NewRecorder records the decisions of inner into t.
func NewRecorder(inner vm.Controller, t *Trace) *Recorder {
	return &Recorder{Inner: inner, T: t}
}

// PickNext delegates and records.
func (r *Recorder) PickNext(st *vm.State, runnable []int) int {
	tid := r.Inner.PickNext(st, runnable)
	th := st.Threads[tid]
	r.T.Decisions = append(r.T.Decisions, Decision{
		TID:    tid,
		Instr:  th.Instrs,
		PC:     th.PCRef(st.Prog),
		Global: st.Steps,
	})
	return tid
}

// Replayer replays a recorded schedule. When the recorded thread is not
// runnable (the execution has diverged — different input, different path,
// or an enforced alternate ordering) it falls back to Fallback and records
// the divergence point. After the trace is exhausted the fallback drives
// the schedule without marking divergence: executions that "outlive" their
// trace are the normal case for post-race continuation.
type Replayer struct {
	T        *Trace
	Fallback vm.Controller

	pos        int
	Diverged   bool
	DivergedAt int // decision index of first divergence, -1 if none
	Exhausted  bool
}

// NewReplayer replays t, falling back to fallback on divergence or
// exhaustion.
func NewReplayer(t *Trace, fallback vm.Controller) *Replayer {
	return &Replayer{T: t, Fallback: fallback, DivergedAt: -1}
}

// ReplayerAt returns a replayer that has already consumed pos decisions —
// the controller matching a state snapshotted mid-recording after the
// recorder had taken pos scheduling decisions. Resuming that snapshot
// under the returned replayer continues the recorded schedule exactly
// where the recording stood. t may still be recording when ReplayerAt is
// called: the replayer reads t.Decisions lazily, so a position taken
// against the live trace stays valid once the trace is complete.
func ReplayerAt(t *Trace, fallback vm.Controller, pos int) *Replayer {
	return &Replayer{T: t, Fallback: fallback, pos: pos, DivergedAt: -1}
}

// Pos returns how many trace decisions have been consumed.
func (r *Replayer) Pos() int { return r.pos }

// PickNext follows the trace while it matches.
func (r *Replayer) PickNext(st *vm.State, runnable []int) int {
	if r.pos < len(r.T.Decisions) {
		want := r.T.Decisions[r.pos].TID
		r.pos++
		for _, t := range runnable {
			if t == want {
				return want
			}
		}
		if !r.Diverged {
			r.Diverged = true
			r.DivergedAt = r.pos - 1
		}
		return r.Fallback.PickNext(st, runnable)
	}
	r.Exhausted = true
	return r.Fallback.PickNext(st, runnable)
}

// Record runs the program to completion (or the budget) under the given
// base controller, recording the schedule. It returns the trace and the
// run result. This is the "run your test suite under the race detector"
// step: callers attach observers (e.g. the race detector) to st first.
func Record(st *vm.State, base vm.Controller, budget int64) (*Trace, vm.RunResult) {
	return RecordWith(st, base, budget, nil)
}

// RecordWith is Record with an interrupt hook: when interrupt is non-nil
// and reports true the recording stops with vm.StopCancelled, returning
// the (partial) trace recorded so far. This is how a context deadline
// aborts the detection phase.
func RecordWith(st *vm.State, base vm.Controller, budget int64, interrupt func() bool) (*Trace, vm.RunResult) {
	t := NewTraceFor(st)
	m := vm.NewMachine(st, NewRecorder(base, t))
	m.Interrupt = interrupt
	res := m.Run(budget)
	return t, res
}

// CloneCtl returns a replayer continuing from the same trace position,
// with a cloned fallback when the fallback is itself cloneable. Forked
// sibling states in multi-path analysis receive cloned replayers so each
// path independently follows the rest of the recorded schedule (§3.3).
func (r *Replayer) CloneCtl() vm.Controller {
	fb := r.Fallback
	if c, ok := fb.(vm.CloneableController); ok {
		fb = c.CloneCtl()
	}
	return &Replayer{
		T: r.T, Fallback: fb,
		pos: r.pos, Diverged: r.Diverged, DivergedAt: r.DivergedAt,
		Exhausted: r.Exhausted,
	}
}
