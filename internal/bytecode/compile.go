package bytecode

import (
	"fmt"

	"repro/internal/lang"
)

// Options control compilation.
type Options struct {
	// ElideSyncAtLines removes LOCK/UNLOCK instructions whose source line
	// is listed. This implements the paper's "what-if analysis" (§5.1):
	// turning a synchronization operation into a no-op to ask whether it
	// is safe to remove (e.g. to reduce lock contention).
	ElideSyncAtLines []int

	// NoFuse disables the superinstruction fusion pass (fuse.go). Fusion
	// never changes observable behavior — instruction counts, traces, and
	// verdicts are bit-identical either way, which the determinism suite
	// asserts by diffing fused against unfused runs — so the gate exists
	// for that assertion and for ablation timing.
	NoFuse bool
}

// CompileError is a semantic error with a source position.
type CompileError struct {
	Pos lang.Pos
	Msg string
}

func (e *CompileError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func cerrf(pos lang.Pos, format string, args ...any) *CompileError {
	return &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Compile lowers a parsed PIL program to bytecode.
func Compile(src *lang.Program, name string, opts Options) (*Program, error) {
	c := &compiler{
		prog:  &Program{Name: name},
		elide: map[int]bool{},
	}
	for _, l := range opts.ElideSyncAtLines {
		c.elide[l] = true
	}

	// Declarations first, so functions can reference anything.
	seen := map[string]string{}
	declare := func(pos lang.Pos, kind, n string) error {
		if prev, dup := seen[n]; dup {
			return cerrf(pos, "%s %q redeclared (previously a %s)", kind, n, prev)
		}
		seen[n] = kind
		return nil
	}
	for _, g := range src.Globals {
		if err := declare(g.Pos, "global", g.Name); err != nil {
			return nil, err
		}
		size := g.Size
		if size == 0 {
			size = 1
		}
		init := int64(0)
		if g.Init != nil {
			v, ok := constFold(g.Init)
			if !ok {
				return nil, cerrf(g.Pos, "global initializer for %q must be a constant expression", g.Name)
			}
			init = v
		}
		c.prog.Globals = append(c.prog.Globals, Global{Name: g.Name, Size: size, Init: init})
		c.globals = append(c.globals, g.Size > 0)
	}
	for _, m := range src.Mutexes {
		if err := declare(m.Pos, "mutex", m.Name); err != nil {
			return nil, err
		}
		c.prog.Mutexes = append(c.prog.Mutexes, m.Name)
	}
	for _, cd := range src.Conds {
		if err := declare(cd.Pos, "cond", cd.Name); err != nil {
			return nil, err
		}
		c.prog.Conds = append(c.prog.Conds, cd.Name)
	}
	for _, b := range src.Barriers {
		if err := declare(b.Pos, "barrier", b.Name); err != nil {
			return nil, err
		}
		c.prog.Barriers = append(c.prog.Barriers, BarrierDef{Name: b.Name, Count: b.Count})
	}
	for _, f := range src.Funcs {
		if err := declare(f.Pos, "fn", f.Name); err != nil {
			return nil, err
		}
		c.prog.Funcs = append(c.prog.Funcs, Func{Name: f.Name, NParams: len(f.Params)})
	}

	for i, f := range src.Funcs {
		if err := c.compileFunc(i, f); err != nil {
			return nil, err
		}
	}

	main := c.prog.FuncID("main")
	if main < 0 {
		return nil, cerrf(lang.Pos{Line: 1, Col: 1}, "program has no fn main")
	}
	if c.prog.Funcs[main].NParams != 0 {
		return nil, cerrf(src.Funcs[main].Pos, "fn main must take no parameters")
	}
	c.prog.MainFunc = main
	c.prog.computeWriteSets()
	if !opts.NoFuse {
		c.prog.fuse()
	}
	return c.prog, nil
}

// MustCompile parses and compiles src, panicking on error. Intended for
// workload sources that are compile-time string constants.
func MustCompile(srcText, name string, opts Options) *Program {
	ast, err := lang.Parse(srcText)
	if err != nil {
		panic(fmt.Sprintf("bytecode.MustCompile(%s): %v", name, err))
	}
	p, err := Compile(ast, name, opts)
	if err != nil {
		panic(fmt.Sprintf("bytecode.MustCompile(%s): %v", name, err))
	}
	return p
}

func constFold(e lang.Expr) (int64, bool) {
	switch v := e.(type) {
	case *lang.IntLit:
		return v.Val, true
	case *lang.UnaryExpr:
		x, ok := constFold(v.X)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case lang.MINUS:
			return -x, true
		case lang.TILDE:
			return ^x, true
		case lang.NOT:
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
	}
	return 0, false
}

type scope struct {
	parent *scope
	vars   map[string]int
}

func (s *scope) lookup(name string) (int, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if slot, ok := sc.vars[name]; ok {
			return slot, true
		}
	}
	return -1, false
}

type loopCtx struct {
	breakPatches []int
	contTarget   int // -1 until known (for loops patch later)
	contPatches  []int
}

type compiler struct {
	prog    *Program
	globals []bool // per-global: is array
	elide   map[int]bool

	// per-function state
	fn     *Func
	fnIdx  int
	scope  *scope
	nSlots int
	loops  []*loopCtx
}

func (c *compiler) emit(pos lang.Pos, op OpCode, a int64, b int32) int {
	c.fn.Code = append(c.fn.Code, Instr{Op: op, A: a, B: b, Line: int32(pos.Line)})
	return len(c.fn.Code) - 1
}

func (c *compiler) patch(at int, target int) {
	c.fn.Code[at].A = int64(target)
}

func (c *compiler) here() int { return len(c.fn.Code) }

func (c *compiler) newSlot() int {
	s := c.nSlots
	c.nSlots++
	return s
}

func (c *compiler) compileFunc(idx int, f *lang.FuncDecl) error {
	c.fn = &c.prog.Funcs[idx]
	c.fnIdx = idx
	c.nSlots = 0
	c.scope = &scope{vars: map[string]int{}}
	c.loops = nil
	for _, p := range f.Params {
		if _, dup := c.scope.vars[p]; dup {
			return cerrf(f.Pos, "duplicate parameter %q", p)
		}
		c.scope.vars[p] = c.newSlot()
	}
	if err := c.compileBlock(f.Body); err != nil {
		return err
	}
	// Implicit `return 0`.
	end := lang.Pos{Line: f.Pos.Line, Col: f.Pos.Col}
	if n := len(f.Body.Stmts); n > 0 {
		end = f.Body.Stmts[n-1].(lang.Stmt).StmtPos()
	}
	c.emit(end, PUSH, 0, 0)
	c.emit(end, RET, 0, 0)
	c.fn.NLocals = c.nSlots
	return nil
}

func (c *compiler) compileBlock(b *lang.Block) error {
	c.scope = &scope{parent: c.scope, vars: map[string]int{}}
	defer func() { c.scope = c.scope.parent }()
	for _, s := range b.Stmts {
		if err := c.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) compileStmt(s lang.Stmt) error {
	switch st := s.(type) {
	case *lang.Block:
		return c.compileBlock(st)

	case *lang.LetStmt:
		if _, dup := c.scope.vars[st.Name]; dup {
			return cerrf(st.Pos, "local %q redeclared in this block", st.Name)
		}
		if err := c.compileExpr(st.Init); err != nil {
			return err
		}
		slot := c.newSlot()
		c.scope.vars[st.Name] = slot
		c.emit(st.Pos, STOREL, int64(slot), 0)
		return nil

	case *lang.AssignStmt:
		return c.compileAssign(st)

	case *lang.IfStmt:
		return c.compileIf(st)

	case *lang.WhileStmt:
		c.loops = append(c.loops, &loopCtx{contTarget: -1})
		lc := c.loops[len(c.loops)-1]
		cond := c.here()
		lc.contTarget = cond
		if err := c.compileExpr(st.Cond); err != nil {
			return err
		}
		jz := c.emit(st.Pos, JZ, 0, 0)
		if err := c.compileBlock(st.Body); err != nil {
			return err
		}
		c.emit(st.Pos, JMP, int64(cond), 0)
		end := c.here()
		c.patch(jz, end)
		for _, p := range lc.breakPatches {
			c.patch(p, end)
		}
		for _, p := range lc.contPatches {
			c.patch(p, cond)
		}
		c.loops = c.loops[:len(c.loops)-1]
		return nil

	case *lang.ForStmt:
		// for i = lo, hi { body }  ≡  let i = lo; while i < hi { body; i += 1 }
		c.scope = &scope{parent: c.scope, vars: map[string]int{}}
		defer func() { c.scope = c.scope.parent }()
		if err := c.compileExpr(st.From); err != nil {
			return err
		}
		iSlot := c.newSlot()
		c.scope.vars[st.Var] = iSlot
		c.emit(st.Pos, STOREL, int64(iSlot), 0)
		// Evaluate the bound once.
		if err := c.compileExpr(st.To); err != nil {
			return err
		}
		hiSlot := c.newSlot()
		c.emit(st.Pos, STOREL, int64(hiSlot), 0)

		c.loops = append(c.loops, &loopCtx{contTarget: -1})
		lc := c.loops[len(c.loops)-1]
		cond := c.here()
		c.emit(st.Pos, LOADL, int64(iSlot), 0)
		c.emit(st.Pos, LOADL, int64(hiSlot), 0)
		c.emit(st.Pos, LT, 0, 0)
		jz := c.emit(st.Pos, JZ, 0, 0)
		if err := c.compileBlock(st.Body); err != nil {
			return err
		}
		cont := c.here()
		c.emit(st.Pos, LOADL, int64(iSlot), 0)
		c.emit(st.Pos, PUSH, 1, 0)
		c.emit(st.Pos, ADD, 0, 0)
		c.emit(st.Pos, STOREL, int64(iSlot), 0)
		c.emit(st.Pos, JMP, int64(cond), 0)
		end := c.here()
		c.patch(jz, end)
		for _, p := range lc.breakPatches {
			c.patch(p, end)
		}
		for _, p := range lc.contPatches {
			c.patch(p, cont)
		}
		c.loops = c.loops[:len(c.loops)-1]
		return nil

	case *lang.ReturnStmt:
		if st.Value != nil {
			if err := c.compileExpr(st.Value); err != nil {
				return err
			}
		} else {
			c.emit(st.Pos, PUSH, 0, 0)
		}
		c.emit(st.Pos, RET, 0, 0)
		return nil

	case *lang.BreakStmt:
		if len(c.loops) == 0 {
			return cerrf(st.Pos, "break outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.breakPatches = append(lc.breakPatches, c.emit(st.Pos, JMP, 0, 0))
		return nil

	case *lang.ContinueStmt:
		if len(c.loops) == 0 {
			return cerrf(st.Pos, "continue outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.contPatches = append(lc.contPatches, c.emit(st.Pos, JMP, 0, 0))
		return nil

	case *lang.ExprStmt:
		pushes, err := c.compileExprMaybeVoid(st.X)
		if err != nil {
			return err
		}
		if pushes {
			c.emit(st.Pos, POP, 0, 0)
		}
		return nil
	}
	return cerrf(s.(lang.Stmt).StmtPos(), "unsupported statement")
}

func (c *compiler) compileIf(st *lang.IfStmt) error {
	if err := c.compileExpr(st.Cond); err != nil {
		return err
	}
	jz := c.emit(st.Pos, JZ, 0, 0)
	if err := c.compileBlock(st.Then); err != nil {
		return err
	}
	if st.Else == nil {
		c.patch(jz, c.here())
		return nil
	}
	jend := c.emit(st.Pos, JMP, 0, 0)
	c.patch(jz, c.here())
	if err := c.compileStmt(st.Else); err != nil {
		return err
	}
	c.patch(jend, c.here())
	return nil
}

func (c *compiler) compileAssign(st *lang.AssignStmt) error {
	switch tgt := st.Target.(type) {
	case *lang.VarRef:
		if slot, ok := c.scope.lookup(tgt.Name); ok {
			if st.Op != lang.AssignSet {
				c.emit(st.Pos, LOADL, int64(slot), 0)
			}
			if err := c.compileExpr(st.Value); err != nil {
				return err
			}
			c.emitCompound(st.Pos, st.Op)
			c.emit(st.Pos, STOREL, int64(slot), 0)
			return nil
		}
		gid := c.prog.GlobalID(tgt.Name)
		if gid < 0 {
			return cerrf(tgt.Pos, "undefined variable %q", tgt.Name)
		}
		if c.globals[gid] {
			return cerrf(tgt.Pos, "array %q must be indexed", tgt.Name)
		}
		if st.Op != lang.AssignSet {
			// A racy read-modify-write, exactly like the `id++` in Fig 4.
			c.emit(st.Pos, LOADG, int64(gid), 0)
		}
		if err := c.compileExpr(st.Value); err != nil {
			return err
		}
		c.emitCompound(st.Pos, st.Op)
		c.emit(st.Pos, STOREG, int64(gid), 0)
		return nil

	case *lang.IndexExpr:
		if slot, ok := c.scope.lookup(tgt.Name); ok {
			// Heap store through a local ref: ref, idx, value.
			idxTmp := c.newSlot()
			if err := c.compileExpr(tgt.Index); err != nil {
				return err
			}
			c.emit(st.Pos, STOREL, int64(idxTmp), 0)
			c.emit(st.Pos, LOADL, int64(slot), 0)
			c.emit(st.Pos, LOADL, int64(idxTmp), 0)
			if st.Op != lang.AssignSet {
				c.emit(st.Pos, LOADL, int64(slot), 0)
				c.emit(st.Pos, LOADL, int64(idxTmp), 0)
				c.emit(st.Pos, LOADH, 0, 0)
			}
			if err := c.compileExpr(st.Value); err != nil {
				return err
			}
			c.emitCompound(st.Pos, st.Op)
			c.emit(st.Pos, STOREH, 0, 0)
			return nil
		}
		gid := c.prog.GlobalID(tgt.Name)
		if gid < 0 {
			return cerrf(tgt.Pos, "undefined variable %q", tgt.Name)
		}
		if !c.globals[gid] {
			return cerrf(tgt.Pos, "%q is a scalar, not an array", tgt.Name)
		}
		idxTmp := c.newSlot()
		if err := c.compileExpr(tgt.Index); err != nil {
			return err
		}
		c.emit(st.Pos, STOREL, int64(idxTmp), 0)
		c.emit(st.Pos, LOADL, int64(idxTmp), 0)
		if st.Op != lang.AssignSet {
			c.emit(st.Pos, LOADL, int64(idxTmp), 0)
			c.emit(st.Pos, LOADE, int64(gid), 0)
		}
		if err := c.compileExpr(st.Value); err != nil {
			return err
		}
		c.emitCompound(st.Pos, st.Op)
		c.emit(st.Pos, STOREE, int64(gid), 0)
		return nil
	}
	return cerrf(st.Pos, "invalid assignment target")
}

// emitCompound emits the ADD/SUB for += / -=; for plain = it is a no-op.
func (c *compiler) emitCompound(pos lang.Pos, op lang.AssignOp) {
	switch op {
	case lang.AssignAdd:
		c.emit(pos, ADD, 0, 0)
	case lang.AssignSub:
		c.emit(pos, SUB, 0, 0)
	}
}

// compileExpr compiles an expression that must produce a value.
func (c *compiler) compileExpr(e lang.Expr) error {
	pushes, err := c.compileExprMaybeVoid(e)
	if err != nil {
		return err
	}
	if !pushes {
		return cerrf(e.(lang.Expr).ExprPos(), "expression has no value")
	}
	return nil
}

// compileExprMaybeVoid compiles an expression, reporting whether it pushed
// a value (void builtins like lock() do not).
func (c *compiler) compileExprMaybeVoid(e lang.Expr) (bool, error) {
	switch ex := e.(type) {
	case *lang.IntLit:
		c.emit(ex.Pos, PUSH, ex.Val, 0)
		return true, nil

	case *lang.StrLit:
		return false, cerrf(ex.Pos, "string literal is only allowed as a print argument")

	case *lang.VarRef:
		if slot, ok := c.scope.lookup(ex.Name); ok {
			c.emit(ex.Pos, LOADL, int64(slot), 0)
			return true, nil
		}
		gid := c.prog.GlobalID(ex.Name)
		if gid < 0 {
			return false, cerrf(ex.Pos, "undefined variable %q", ex.Name)
		}
		if c.globals[gid] {
			return false, cerrf(ex.Pos, "array %q must be indexed", ex.Name)
		}
		c.emit(ex.Pos, LOADG, int64(gid), 0)
		return true, nil

	case *lang.IndexExpr:
		if slot, ok := c.scope.lookup(ex.Name); ok {
			c.emit(ex.Pos, LOADL, int64(slot), 0)
			if err := c.compileExpr(ex.Index); err != nil {
				return false, err
			}
			c.emit(ex.Pos, LOADH, 0, 0)
			return true, nil
		}
		gid := c.prog.GlobalID(ex.Name)
		if gid < 0 {
			return false, cerrf(ex.Pos, "undefined variable %q", ex.Name)
		}
		if !c.globals[gid] {
			return false, cerrf(ex.Pos, "%q is a scalar, not an array", ex.Name)
		}
		if err := c.compileExpr(ex.Index); err != nil {
			return false, err
		}
		c.emit(ex.Pos, LOADE, int64(gid), 0)
		return true, nil

	case *lang.UnaryExpr:
		if err := c.compileExpr(ex.X); err != nil {
			return false, err
		}
		switch ex.Op {
		case lang.MINUS:
			c.emit(ex.Pos, NEG, 0, 0)
		case lang.NOT:
			c.emit(ex.Pos, LNOT, 0, 0)
		case lang.TILDE:
			c.emit(ex.Pos, BNOT, 0, 0)
		default:
			return false, cerrf(ex.Pos, "bad unary operator")
		}
		return true, nil

	case *lang.BinaryExpr:
		return true, c.compileBinary(ex)

	case *lang.SpawnExpr:
		fid := c.prog.FuncID(ex.Name)
		if fid < 0 {
			return false, cerrf(ex.Pos, "spawn of undefined function %q", ex.Name)
		}
		if want := c.prog.Funcs[fid].NParams; want != len(ex.Args) {
			return false, cerrf(ex.Pos, "spawn %s: %d args, want %d", ex.Name, len(ex.Args), want)
		}
		for _, a := range ex.Args {
			if err := c.compileExpr(a); err != nil {
				return false, err
			}
		}
		c.emit(ex.Pos, SPAWN, int64(fid), int32(len(ex.Args)))
		return true, nil

	case *lang.CallExpr:
		return c.compileCall(ex)
	}
	return false, cerrf(e.(lang.Expr).ExprPos(), "unsupported expression")
}

func (c *compiler) compileBinary(ex *lang.BinaryExpr) error {
	// Short-circuit logical operators compile to branches so that symbolic
	// conditions fork exactly as they would in KLEE.
	switch ex.Op {
	case lang.LAND:
		if err := c.compileExpr(ex.L); err != nil {
			return err
		}
		jz := c.emit(ex.Pos, JZ, 0, 0)
		if err := c.compileExpr(ex.R); err != nil {
			return err
		}
		c.emit(ex.Pos, NEZ, 0, 0)
		jend := c.emit(ex.Pos, JMP, 0, 0)
		c.patch(jz, c.here())
		c.emit(ex.Pos, PUSH, 0, 0)
		c.patch(jend, c.here())
		return nil
	case lang.LOR:
		if err := c.compileExpr(ex.L); err != nil {
			return err
		}
		jz := c.emit(ex.Pos, JZ, 0, 0)
		c.emit(ex.Pos, PUSH, 1, 0)
		jend := c.emit(ex.Pos, JMP, 0, 0)
		c.patch(jz, c.here())
		if err := c.compileExpr(ex.R); err != nil {
			return err
		}
		c.emit(ex.Pos, NEZ, 0, 0)
		c.patch(jend, c.here())
		return nil
	}

	if err := c.compileExpr(ex.L); err != nil {
		return err
	}
	if err := c.compileExpr(ex.R); err != nil {
		return err
	}
	var op OpCode
	switch ex.Op {
	case lang.PLUS:
		op = ADD
	case lang.MINUS:
		op = SUB
	case lang.STAR:
		op = MUL
	case lang.SLASH:
		op = DIV
	case lang.PERCENT:
		op = MOD
	case lang.AMP:
		op = BAND
	case lang.PIPE:
		op = BOR
	case lang.CARET:
		op = BXOR
	case lang.SHL:
		op = SHL
	case lang.SHR:
		op = SHR
	case lang.EQ:
		op = EQ
	case lang.NE:
		op = NE
	case lang.LT:
		op = LT
	case lang.LE:
		op = LE
	case lang.GT:
		op = GT
	case lang.GE:
		op = GE
	default:
		return cerrf(ex.Pos, "bad binary operator")
	}
	c.emit(ex.Pos, op, 0, 0)
	return nil
}

// builtinSig describes a builtin: argument count and whether it produces a
// value.
type builtinSig struct {
	args     int
	hasValue bool
}

var builtins = map[string]builtinSig{
	"input":        {0, true},
	"arg":          {1, true},
	"alloc":        {1, true},
	"free":         {1, false},
	"assert":       {1, false},
	"yield":        {0, false},
	"sleep":        {1, false},
	"usleep":       {1, false},
	"join":         {1, false},
	"lock":         {1, false},
	"unlock":       {1, false},
	"wait":         {2, false},
	"signal":       {1, false},
	"broadcast":    {1, false},
	"barrier_wait": {1, false},
	// print is variadic and handled separately
}

func (c *compiler) compileCall(ex *lang.CallExpr) (bool, error) {
	if ex.Name == "print" {
		return false, c.compilePrint(ex)
	}
	if sig, ok := builtins[ex.Name]; ok {
		if len(ex.Args) != sig.args {
			return false, cerrf(ex.Pos, "%s takes %d argument(s), got %d", ex.Name, sig.args, len(ex.Args))
		}
		return sig.hasValue, c.compileBuiltin(ex)
	}
	fid := c.prog.FuncID(ex.Name)
	if fid < 0 {
		return false, cerrf(ex.Pos, "call of undefined function %q", ex.Name)
	}
	if want := c.prog.Funcs[fid].NParams; want != len(ex.Args) {
		return false, cerrf(ex.Pos, "call %s: %d args, want %d", ex.Name, len(ex.Args), want)
	}
	for _, a := range ex.Args {
		if err := c.compileExpr(a); err != nil {
			return false, err
		}
	}
	c.emit(ex.Pos, CALL, int64(fid), int32(len(ex.Args)))
	return true, nil
}

func (c *compiler) compileBuiltin(ex *lang.CallExpr) error {
	// Sync-object arguments must be static names.
	syncID := func(kind string, list []string, arg lang.Expr) (int64, error) {
		ref, ok := arg.(*lang.VarRef)
		if !ok {
			return 0, cerrf(ex.Pos, "%s expects a %s name", ex.Name, kind)
		}
		for i, n := range list {
			if n == ref.Name {
				return int64(i), nil
			}
		}
		return 0, cerrf(ref.Pos, "undefined %s %q", kind, ref.Name)
	}

	switch ex.Name {
	case "input":
		c.emit(ex.Pos, INPUT, 0, 0)
	case "arg":
		if err := c.compileExpr(ex.Args[0]); err != nil {
			return err
		}
		c.emit(ex.Pos, ARG, 0, 0)
	case "alloc":
		if err := c.compileExpr(ex.Args[0]); err != nil {
			return err
		}
		c.emit(ex.Pos, ALLOC, 0, 0)
	case "free":
		if err := c.compileExpr(ex.Args[0]); err != nil {
			return err
		}
		c.emit(ex.Pos, FREE, 0, 0)
	case "assert":
		if err := c.compileExpr(ex.Args[0]); err != nil {
			return err
		}
		c.emit(ex.Pos, ASSERT, 0, 0)
	case "yield":
		c.emit(ex.Pos, YIELD, 0, 0)
	case "sleep", "usleep":
		if err := c.compileExpr(ex.Args[0]); err != nil {
			return err
		}
		c.emit(ex.Pos, SLEEP, 0, 0)
	case "join":
		if err := c.compileExpr(ex.Args[0]); err != nil {
			return err
		}
		c.emit(ex.Pos, JOIN, 0, 0)
	case "lock", "unlock":
		id, err := syncID("mutex", c.prog.Mutexes, ex.Args[0])
		if err != nil {
			return err
		}
		op := LOCK
		if ex.Name == "unlock" {
			op = UNLOCK
		}
		if c.elide[ex.Pos.Line] {
			// What-if analysis: this synchronization is no-op'ed.
			c.emit(ex.Pos, NOP, 0, 0)
			return nil
		}
		c.emit(ex.Pos, op, id, 0)
	case "wait":
		cid, err := syncID("cond", c.prog.Conds, ex.Args[0])
		if err != nil {
			return err
		}
		mid, err := syncID("mutex", c.prog.Mutexes, ex.Args[1])
		if err != nil {
			return err
		}
		c.emit(ex.Pos, WAIT, cid, int32(mid))
	case "signal", "broadcast":
		cid, err := syncID("cond", c.prog.Conds, ex.Args[0])
		if err != nil {
			return err
		}
		op := SIGNAL
		if ex.Name == "broadcast" {
			op = BROADCAST
		}
		c.emit(ex.Pos, op, cid, 0)
	case "barrier_wait":
		bid := int64(-1)
		if ref, ok := ex.Args[0].(*lang.VarRef); ok {
			for i, b := range c.prog.Barriers {
				if b.Name == ref.Name {
					bid = int64(i)
				}
			}
		}
		if bid < 0 {
			return cerrf(ex.Pos, "barrier_wait expects a barrier name")
		}
		c.emit(ex.Pos, BARRIER, bid, 0)
	default:
		return cerrf(ex.Pos, "unknown builtin %q", ex.Name)
	}
	return nil
}

func (c *compiler) compilePrint(ex *lang.CallExpr) error {
	var desc []PrintPart
	nexprs := 0
	for _, a := range ex.Args {
		if s, ok := a.(*lang.StrLit); ok {
			desc = append(desc, PrintPart{Lit: s.Val})
			continue
		}
		if err := c.compileExpr(a); err != nil {
			return err
		}
		desc = append(desc, PrintPart{IsExpr: true})
		nexprs++
	}
	c.prog.Prints = append(c.prog.Prints, desc)
	c.emit(ex.Pos, PRINT, int64(len(c.prog.Prints)-1), int32(nexprs))
	return nil
}
