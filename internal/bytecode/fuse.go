package bytecode

// Superinstruction fusion.
//
// The interpreter's dominant instruction mix is straight-line local
// arithmetic: the compiler lowers `i = i + 1` to LOADL;PUSH;ADD;STOREL
// and every constant operand to a PUSH feeding the next binop. Fusing
// these sequences into superinstructions removes the per-instruction
// dispatch, operand-stack traffic, and Const minting for their interior
// — the largest single lever on Table 4 classification time after the
// scheduling-loop rework.
//
// Fusion is an *overlay*, not a rewrite: Func.Code is left untouched and
// Func.Fused carries, at each fusable sequence's first pc, a descriptor
// covering Len original instructions. The VM may execute the descriptor
// in one step (bumping its instruction counters by Len so schedule
// traces, race coordinates, and budgets are bit-identical to unfused
// execution) or fall back to the original instructions at any time —
// which it does near budget exhaustion, under spin tracking, and for any
// state checkpointed mid-sequence by an unfused run. Verdicts therefore
// cannot depend on whether fusion is enabled; the determinism suite
// diffs the two modes byte for byte.
//
// A sequence is fusable only when it is invisible to everything outside
// the executing frame: thread-local stack and locals traffic plus a pure
// binop. Shared-memory accesses, synchronization, control flow, and
// DIV/MOD (whose symbolic-divisor branching records path constraints)
// never fuse, and no jump target may land inside a fused sequence.

// FuseKind identifies a superinstruction pattern.
type FuseKind uint8

const (
	// FuseNone marks a pc that starts no fused sequence.
	FuseNone FuseKind = iota
	// FuseLocalConstOp covers LOADL src; PUSH k; <binop>; STOREL dst:
	// dst = src <op> k without touching the operand stack.
	FuseLocalConstOp
	// FuseConstOp covers PUSH k; <binop>: combine the stack top with a
	// constant in place.
	FuseConstOp
)

// FusedInstr describes one superinstruction. It is pure metadata over
// the original code: the covered instructions remain in Func.Code.
type FusedInstr struct {
	Kind FuseKind
	Op   OpCode // the binary operator (ADD..SHR, EQ..GE; never DIV/MOD)
	Src  int32  // FuseLocalConstOp: source local slot
	Dst  int32  // FuseLocalConstOp: destination local slot
	K    int64  // the fused PUSH constant
	Len  int32  // original instructions covered
}

// fusableBinop reports whether the operator may appear inside a fused
// sequence. DIV and MOD are excluded: their interpreter cases raise
// division-by-zero errors and record symbolic-divisor path constraints,
// which must keep their exact per-instruction coordinates.
func fusableBinop(op OpCode) bool {
	switch op {
	case ADD, SUB, MUL, BAND, BOR, BXOR, SHL, SHR, EQ, NE, LT, LE, GT, GE:
		return true
	}
	return false
}

// fuse computes the superinstruction overlay for every function. Called
// by Compile unless Options.NoFuse is set.
func (p *Program) fuse() {
	for i := range p.Funcs {
		p.Funcs[i].Fused = fuseFunc(p.Funcs[i].Code)
	}
}

// fuseFunc builds the overlay for one function's code, or nil when
// nothing fuses. Interior pcs of a fused sequence keep FuseNone — a
// machine resuming from a mid-sequence checkpoint simply executes the
// remaining original instructions.
func fuseFunc(code []Instr) []FusedInstr {
	// A jump may land on any interior instruction; such sequences must
	// not fuse (the jump would skip part of the superinstruction).
	targets := make([]bool, len(code)+1)
	for _, in := range code {
		if in.Op == JMP || in.Op == JZ {
			if t := int(in.A); t >= 0 && t < len(targets) {
				targets[t] = true
			}
		}
	}

	var fused []FusedInstr
	any := false
	for pc := 0; pc < len(code); {
		if pc+3 < len(code) &&
			code[pc].Op == LOADL && code[pc+1].Op == PUSH &&
			fusableBinop(code[pc+2].Op) && code[pc+3].Op == STOREL &&
			!targets[pc+1] && !targets[pc+2] && !targets[pc+3] {
			if fused == nil {
				fused = make([]FusedInstr, len(code))
			}
			fused[pc] = FusedInstr{
				Kind: FuseLocalConstOp, Op: code[pc+2].Op,
				Src: int32(code[pc].A), Dst: int32(code[pc+3].A),
				K: code[pc+1].A, Len: 4,
			}
			any = true
			pc += 4
			continue
		}
		if pc+1 < len(code) &&
			code[pc].Op == PUSH && fusableBinop(code[pc+1].Op) &&
			!targets[pc+1] {
			if fused == nil {
				fused = make([]FusedInstr, len(code))
			}
			fused[pc] = FusedInstr{Kind: FuseConstOp, Op: code[pc+1].Op, K: code[pc].A, Len: 2}
			any = true
			pc += 2
			continue
		}
		pc++
	}
	if !any {
		return nil
	}
	return fused
}

// FusedCount returns the number of superinstructions in the program's
// overlay; zero when compiled with NoFuse. Exposed for tests and the
// disassembler.
func (p *Program) FusedCount() int {
	n := 0
	for i := range p.Funcs {
		for _, f := range p.Funcs[i].Fused {
			if f.Kind != FuseNone {
				n++
			}
		}
	}
	return n
}
