// Package bytecode defines the PIL virtual instruction set and the compiler
// that lowers a parsed PIL program (internal/lang) to it. The bytecode plays
// the role of LLVM bitcode in the paper: it is the representation the
// Portend VM interprets, on which races are detected (shared accesses are
// explicit LOADG/STOREG/LOADE/STOREE/LOADH/STOREH instructions) and from
// which schedule traces are recorded via per-thread instruction counts.
package bytecode

import "fmt"

// OpCode is a PIL virtual machine opcode. The machine is a stack machine;
// every value on the operand stack is a symbolic expression (concrete
// values are constant expressions).
type OpCode uint8

// Opcodes.
const (
	NOP OpCode = iota

	// stack
	PUSH // push constant A
	POP  // drop top of stack
	DUP  // duplicate top of stack

	// locals (thread-private; never racy)
	LOADL  // push locals[A]
	STOREL // locals[A] = pop

	// shared globals (racy accesses)
	LOADG  // push globals[A]           (A = global id, scalar)
	STOREG // globals[A] = pop
	LOADE  // idx = pop; push global A[idx]
	STOREE // v = pop; idx = pop; global A[idx] = v

	// heap (racy accesses; refs are opaque handles produced by ALLOC)
	ALLOC  // n = pop; push new ref of n cells
	FREE   // ref = pop; free block (double free is a runtime error)
	LOADH  // idx = pop; ref = pop; push heap[ref][idx]
	STOREH // v = pop; idx = pop; ref = pop; heap[ref][idx] = v

	// arithmetic / logic (operate on popped operands, push result)
	ADD
	SUB
	MUL
	DIV
	MOD
	BAND
	BOR
	BXOR
	SHL
	SHR
	EQ
	NE
	LT
	LE
	GT
	GE
	NEG
	BNOT
	LNOT
	NEZ // normalize to 0/1

	// control flow
	JMP  // jump to pc A
	JZ   // cond = pop; jump to pc A when cond == 0 (symbolic: fork point)
	CALL // call function A with B args (popped; leftmost deepest)
	RET  // return pop to caller (thread exits when last frame returns)

	// threads and synchronization (scheduling points)
	SPAWN     // start function A as a new thread with B popped args; push tid
	JOIN      // tid = pop; block until that thread exits
	LOCK      // acquire mutex A
	UNLOCK    // release mutex A
	WAIT      // wait on condvar A with mutex B (atomically release + block)
	SIGNAL    // wake one waiter of condvar A
	BROADCAST // wake all waiters of condvar A
	BARRIER   // wait at barrier A until its participant count arrive
	YIELD     // voluntary scheduling point
	SLEEP     // n = pop; advisory sleep: scheduling point (no real time)

	// environment ("system calls")
	PRINT  // emit output record described by print descriptor A
	INPUT  // push next input value (symbolic when inputs are marked)
	ARG    // i = pop; push program argument i
	ASSERT // cond = pop; runtime error when 0
)

var opNames = [...]string{
	NOP: "NOP", PUSH: "PUSH", POP: "POP", DUP: "DUP",
	LOADL: "LOADL", STOREL: "STOREL",
	LOADG: "LOADG", STOREG: "STOREG", LOADE: "LOADE", STOREE: "STOREE",
	ALLOC: "ALLOC", FREE: "FREE", LOADH: "LOADH", STOREH: "STOREH",
	ADD: "ADD", SUB: "SUB", MUL: "MUL", DIV: "DIV", MOD: "MOD",
	BAND: "BAND", BOR: "BOR", BXOR: "BXOR", SHL: "SHL", SHR: "SHR",
	EQ: "EQ", NE: "NE", LT: "LT", LE: "LE", GT: "GT", GE: "GE",
	NEG: "NEG", BNOT: "BNOT", LNOT: "LNOT", NEZ: "NEZ",
	JMP: "JMP", JZ: "JZ", CALL: "CALL", RET: "RET",
	SPAWN: "SPAWN", JOIN: "JOIN", LOCK: "LOCK", UNLOCK: "UNLOCK",
	WAIT: "WAIT", SIGNAL: "SIGNAL", BROADCAST: "BROADCAST", BARRIER: "BARRIER",
	YIELD: "YIELD", SLEEP: "SLEEP",
	PRINT: "PRINT", INPUT: "INPUT", ARG: "ARG", ASSERT: "ASSERT",
}

// String returns the mnemonic.
func (op OpCode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// IsSharedAccess reports whether the opcode reads or writes shared memory
// (a potential racy access and preemption point).
func (op OpCode) IsSharedAccess() bool {
	switch op {
	case LOADG, STOREG, LOADE, STOREE, LOADH, STOREH, FREE:
		return true
	}
	return false
}

// IsSharedWrite reports whether the opcode writes shared memory.
func (op OpCode) IsSharedWrite() bool {
	switch op {
	case STOREG, STOREE, STOREH, FREE:
		return true
	}
	return false
}

// IsSyncOp reports whether the opcode is a synchronization operation (an
// always-on preemption point, like POSIX calls in the paper).
func (op OpCode) IsSyncOp() bool {
	switch op {
	case SPAWN, JOIN, LOCK, UNLOCK, WAIT, SIGNAL, BROADCAST, BARRIER, YIELD, SLEEP:
		return true
	}
	return false
}

// Instr is a single instruction. A is the primary immediate (constant,
// index, or jump target); B is the secondary immediate (argument count,
// mutex id for WAIT).
type Instr struct {
	Op   OpCode
	A    int64
	B    int32
	Line int32 // source line, for reports and what-if targeting
}

// String renders the instruction.
func (in Instr) String() string {
	switch in.Op {
	case PUSH, LOADL, STOREL, LOADG, STOREG, LOADE, STOREE, LOADH, STOREH,
		JMP, JZ, LOCK, UNLOCK, SIGNAL, BROADCAST, BARRIER, PRINT:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case CALL, SPAWN, WAIT:
		return fmt.Sprintf("%s %d,%d", in.Op, in.A, in.B)
	default:
		return in.Op.String()
	}
}
