package bytecode

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func mustProg(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Compile(ast, "t", opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func compileError(t *testing.T, src string) error {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Compile(ast, "t", Options{})
	if err == nil {
		t.Fatalf("expected compile error for %q", src)
	}
	return err
}

func TestCompileSimple(t *testing.T) {
	p := mustProg(t, `
var g = 5
fn main() {
	let x = g + 1
	print("x=", x)
}`, Options{})
	if p.MainFunc != p.FuncID("main") {
		t.Fatal("main not resolved")
	}
	if len(p.Globals) != 1 || p.Globals[0].Init != 5 {
		t.Fatalf("globals: %+v", p.Globals)
	}
	if len(p.Prints) != 1 || len(p.Prints[0]) != 2 || p.Prints[0][0].Lit != "x=" || !p.Prints[0][1].IsExpr {
		t.Fatalf("print descriptor: %+v", p.Prints)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-main", `fn helper() {}`, "no fn main"},
		{"main-params", `fn main(x) {}`, "no parameters"},
		{"undef-var", `fn main() { print(nope) }`, "undefined"},
		{"undef-fn", `fn main() { frob() }`, "undefined function"},
		{"arity", `fn f(a) { }
fn main() { f(1, 2) }`, "want 1"},
		{"spawn-arity", `fn f(a) { }
fn main() { spawn f() }`, "want 1"},
		{"dup-global", `var x
var x
fn main() {}`, "redeclared"},
		{"dup-local", `fn main() { let a = 1; let a = 2 }`, "redeclared"},
		{"scalar-indexed", `var s
fn main() { s[0] = 1 }`, "not an array"},
		{"array-unindexed", `var a[4]
fn main() { a = 1 }`, "must be indexed"},
		{"string-outside-print", `fn main() { let s = "hi" }`, "print argument"},
		{"break-outside", `fn main() { break }`, "outside loop"},
		{"bad-mutex", `fn main() { lock(m) }`, "undefined mutex"},
		{"bad-cond", `mutex m
fn main() { wait(c, m) }`, "undefined cond"},
		{"nonconst-init", `var x = input()
fn main() {}`, "constant expression"},
		{"bad-barrier", `fn main() { barrier_wait(b) }`, "barrier name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := compileError(t, tc.src)
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestWriteSetsTransitive(t *testing.T) {
	p := mustProg(t, `
var a = 0
var b = 0
var c[4]
fn leaf() { b = 1 }
fn mid() { leaf(); c[0] = 2 }
fn main() { a = 1; mid() }`, Options{})
	mainWS := p.WriteSet(p.FuncID("main"))
	for _, g := range []string{"a", "b", "c"} {
		if _, ok := mainWS[p.GlobalID(g)]; !ok {
			t.Fatalf("main write set missing %s", g)
		}
	}
	leafWS := p.WriteSet(p.FuncID("leaf"))
	if _, ok := leafWS[p.GlobalID("a")]; ok {
		t.Fatal("leaf should not write a")
	}
	if _, ok := leafWS[p.GlobalID("b")]; !ok {
		t.Fatal("leaf writes b")
	}
}

func TestWriteSetsThroughSpawn(t *testing.T) {
	p := mustProg(t, `
var flag = 0
fn setter() { flag = 1 }
fn main() { let t = spawn setter(); join(t) }`, Options{})
	ws := p.WriteSet(p.FuncID("main"))
	if _, ok := ws[p.GlobalID("flag")]; !ok {
		t.Fatal("spawned writes must propagate to the spawner's write set")
	}
}

func TestElideSync(t *testing.T) {
	src := `mutex m
var x = 0
fn main() {
	lock(m)
	x = 1
	unlock(m)
}`
	plain := mustProg(t, src, Options{})
	hasLock := func(p *Program) bool {
		for _, in := range p.Funcs[p.MainFunc].Code {
			if in.Op == LOCK || in.Op == UNLOCK {
				return true
			}
		}
		return false
	}
	if !hasLock(plain) {
		t.Fatal("plain program should lock")
	}
	elided := mustProg(t, src, Options{ElideSyncAtLines: []int{4, 6}})
	if hasLock(elided) {
		t.Fatal("what-if compile should have elided the lock/unlock")
	}
}

func TestDisasmRendering(t *testing.T) {
	p := mustProg(t, `
var g = 1
mutex m
fn main() { lock(m); g += 1; unlock(m); print(g) }`, Options{})
	d := p.Disasm()
	for _, want := range []string{"fn main", "LOCK 0", "LOADG 0", "STOREG 0", "PRINT 0"} {
		if !strings.Contains(d, want) {
			t.Fatalf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestCountLOC(t *testing.T) {
	src := `
// comment only
var x = 1

fn main() {
	/* block
	   comment */
	print(x) // trailing
}
`
	// Counted lines: var, fn main, print, closing brace.
	if n := CountLOC(src); n != 4 {
		t.Fatalf("LOC = %d, want 4", n)
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !LOADG.IsSharedAccess() || !STOREE.IsSharedAccess() || !FREE.IsSharedAccess() {
		t.Fatal("shared access predicate wrong")
	}
	if LOADL.IsSharedAccess() || PUSH.IsSharedAccess() {
		t.Fatal("locals are not shared accesses")
	}
	if !STOREG.IsSharedWrite() || LOADG.IsSharedWrite() {
		t.Fatal("shared write predicate wrong")
	}
	if !LOCK.IsSyncOp() || !YIELD.IsSyncOp() || ADD.IsSyncOp() {
		t.Fatal("sync op predicate wrong")
	}
}

func TestInstrString(t *testing.T) {
	if (Instr{Op: PUSH, A: 42}).String() != "PUSH 42" {
		t.Fatal("push render")
	}
	if (Instr{Op: CALL, A: 1, B: 2}).String() != "CALL 1,2" {
		t.Fatal("call render")
	}
	if (Instr{Op: ADD}).String() != "ADD" {
		t.Fatal("add render")
	}
}

func TestFormatPC(t *testing.T) {
	p := mustProg(t, `fn main() { yield() }`, Options{})
	s := p.FormatPC(PCRef{Fn: p.MainFunc, PC: 0, Line: 1})
	if !strings.Contains(s, "main:0") || !strings.Contains(s, "t.pil:1") {
		t.Fatalf("got %q", s)
	}
}

func TestLookupHelpers(t *testing.T) {
	p := mustProg(t, `
var g
mutex mu
fn main() {}`, Options{})
	if p.GlobalID("g") != 0 || p.GlobalID("zzz") != -1 {
		t.Fatal("GlobalID wrong")
	}
	if p.MutexID("mu") != 0 || p.MutexID("zzz") != -1 {
		t.Fatal("MutexID wrong")
	}
	if p.FuncID("main") < 0 || p.FuncID("zzz") != -1 {
		t.Fatal("FuncID wrong")
	}
}
