package bytecode

import (
	"fmt"
	"strings"
)

// Global describes one shared global variable.
type Global struct {
	Name string
	Size int64 // 1 for scalars, >1 for arrays
	Init int64 // initial value (scalars; array cells start at 0)
}

// BarrierDef describes a barrier with a fixed participant count.
type BarrierDef struct {
	Name  string
	Count int64
}

// Func is a compiled function.
type Func struct {
	Name    string
	NParams int
	NLocals int // including parameters and compiler temporaries
	Code    []Instr

	// Fused is the superinstruction overlay produced by the compile-time
	// fusion pass (see fuse.go): Fused[pc] describes the fused sequence
	// starting at pc, or has Kind FuseNone. nil when the function has no
	// fusable sequences or the program was compiled with Options.NoFuse.
	// The overlay never changes execution semantics or instruction
	// accounting — it only lets the VM execute the covered instructions
	// in one dispatch.
	Fused []FusedInstr
}

// PrintPart is one element of a print descriptor: either a literal string
// or a placeholder for an expression operand popped from the stack.
type PrintPart struct {
	Lit    string
	IsExpr bool
}

// Program is a compiled PIL program. Programs are immutable after
// compilation and are shared (not copied) between checkpointed VM states.
type Program struct {
	Name     string
	Globals  []Global
	Mutexes  []string
	Conds    []string
	Barriers []BarrierDef
	Funcs    []Func
	Prints   [][]PrintPart
	MainFunc int

	// writeSets[f] is the set of global ids that function f may write,
	// transitively through calls and spawns. Used by the infinite-loop
	// vs ad-hoc-synchronization diagnosis (§3.5): a spin loop whose exit
	// condition reads a global that some live thread may still write is
	// ad-hoc synchronization; otherwise it is an infinite loop.
	writeSets []map[int]struct{}
}

// GlobalID returns the index of the named global, or -1.
func (p *Program) GlobalID(name string) int {
	for i := range p.Globals {
		if p.Globals[i].Name == name {
			return i
		}
	}
	return -1
}

// FuncID returns the index of the named function, or -1.
func (p *Program) FuncID(name string) int {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return i
		}
	}
	return -1
}

// MutexID returns the index of the named mutex, or -1.
func (p *Program) MutexID(name string) int {
	for i, m := range p.Mutexes {
		if m == name {
			return i
		}
	}
	return -1
}

// WriteSet returns the set of global ids that function f may write,
// transitively. The returned map must not be modified.
func (p *Program) WriteSet(f int) map[int]struct{} {
	if f < 0 || f >= len(p.writeSets) {
		return nil
	}
	return p.writeSets[f]
}

// RecomputeWriteSets rebuilds the per-function transitive write sets
// from the instruction stream. Compile does this automatically; a
// Program materialized any other way (deserialized from a durable tier
// snapshot, whose wire form carries only exported fields) must call it
// before the engine's lock-set analysis consults WriteSet. The sets are
// a pure, deterministic function of Code, so a recomputed Program is
// indistinguishable from the originally compiled one.
func (p *Program) RecomputeWriteSets() { p.computeWriteSets() }

// computeWriteSets computes transitive global write sets per function.
func (p *Program) computeWriteSets() {
	n := len(p.Funcs)
	direct := make([]map[int]struct{}, n)
	calls := make([][]int, n)
	for i := range p.Funcs {
		direct[i] = map[int]struct{}{}
		for _, in := range p.Funcs[i].Code {
			switch in.Op {
			case STOREG, STOREE:
				direct[i][int(in.A)] = struct{}{}
			case CALL, SPAWN:
				calls[i] = append(calls[i], int(in.A))
			}
		}
	}
	// Fixed-point propagation over the (small) call graph.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for _, callee := range calls[i] {
				if callee < 0 || callee >= n {
					continue
				}
				for g := range direct[callee] {
					if _, ok := direct[i][g]; !ok {
						direct[i][g] = struct{}{}
						changed = true
					}
				}
			}
		}
	}
	p.writeSets = direct
}

// CountLOC returns the number of non-empty, non-comment source lines; used
// for the Table 1 program inventory.
func CountLOC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if inBlock {
			if idx := strings.Index(s, "*/"); idx >= 0 {
				inBlock = false
				s = strings.TrimSpace(s[idx+2:])
			} else {
				continue
			}
		}
		if i := strings.Index(s, "//"); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		if i := strings.Index(s, "/*"); i >= 0 {
			rest := s[i+2:]
			if !strings.Contains(rest, "*/") {
				inBlock = true
			}
			s = strings.TrimSpace(s[:i])
		}
		if s != "" {
			n++
		}
	}
	return n
}

// Disasm renders a human-readable disassembly of the whole program.
func (p *Program) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for i, g := range p.Globals {
		if g.Size > 1 {
			fmt.Fprintf(&b, "  global %d: %s[%d]\n", i, g.Name, g.Size)
		} else {
			fmt.Fprintf(&b, "  global %d: %s = %d\n", i, g.Name, g.Init)
		}
	}
	for i, m := range p.Mutexes {
		fmt.Fprintf(&b, "  mutex %d: %s\n", i, m)
	}
	for i, c := range p.Conds {
		fmt.Fprintf(&b, "  cond %d: %s\n", i, c)
	}
	for i, bar := range p.Barriers {
		fmt.Fprintf(&b, "  barrier %d: %s(%d)\n", i, bar.Name, bar.Count)
	}
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		fmt.Fprintf(&b, "fn %s (params=%d locals=%d)\n", f.Name, f.NParams, f.NLocals)
		for pc, in := range f.Code {
			note := ""
			if pc < len(f.Fused) && f.Fused[pc].Kind != FuseNone {
				note = fmt.Sprintf(" [fused x%d]", f.Fused[pc].Len)
			}
			fmt.Fprintf(&b, "  %4d  %-14s ; line %d%s\n", pc, in.String(), in.Line, note)
		}
	}
	return b.String()
}

// PCRef identifies a static program location: function and pc, with the
// source line for reports.
type PCRef struct {
	Fn   int
	PC   int
	Line int32
}

// String renders "fn@pc (line N)"; the function name requires the program,
// see Program.FormatPC.
func (r PCRef) String() string {
	return fmt.Sprintf("fn%d@%d(line %d)", r.Fn, r.PC, r.Line)
}

// FormatPC renders a PCRef with the function name resolved.
func (p *Program) FormatPC(r PCRef) string {
	name := fmt.Sprintf("fn%d", r.Fn)
	if r.Fn >= 0 && r.Fn < len(p.Funcs) {
		name = p.Funcs[r.Fn].Name
	}
	return fmt.Sprintf("%s:%d (%s.pil:%d)", name, r.PC, p.Name, r.Line)
}
