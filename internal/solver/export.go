package solver

import "repro/internal/expr"

// This file is the durability boundary of the solver cache: Export hands
// the owning tier a structured, LRU-ordered view of every memoized query
// so it can be serialized, and Import rebuilds a cache from that view
// after a daemon restart. Exported expressions and models are the live
// stored values, handed out by reference — callers must treat them
// read-only. Import takes ownership of everything passed in.

// BindingExport is one hint binding of a memoized query.
type BindingExport struct {
	Name  string
	Val   int64
	Bound bool
}

// CacheEntryExport is one memoized query in export form.
type CacheEntryExport struct {
	Flat  []expr.Expr
	Binds []BindingExport
	Model expr.Assignment
	Res   Result
	Nodes int
}

// CacheExport is the full serializable content of a Cache: the memoized
// entries in LRU order (most recently used first), the adaptively chosen
// capacity, and the lookup counters, so a restored cache evicts, grows,
// and reports exactly like the one that was saved.
type CacheExport struct {
	Cap     int
	Entries []CacheEntryExport

	Hits      int64
	Misses    int64
	Evictions int64
	Resizes   int64
}

// Export returns the cache's content for serialization, most recently
// used entry first.
func (c *Cache) Export() CacheExport {
	c.mu.Lock()
	defer c.mu.Unlock()
	x := CacheExport{
		Cap:       c.max,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Resizes:   c.resizes.Load(),
	}
	if c.size > 0 {
		x.Entries = make([]CacheEntryExport, 0, c.size)
		for e := c.head; e != nil; e = e.next {
			binds := make([]BindingExport, len(e.binds))
			for i, b := range e.binds {
				binds[i] = BindingExport{Name: b.name, Val: b.val, Bound: b.bound}
			}
			x.Entries = append(x.Entries, CacheEntryExport{
				Flat:  e.flat,
				Binds: binds,
				Model: e.model,
				Res:   e.res,
				Nodes: e.nodes,
			})
		}
	}
	return x
}

// Import replaces the cache's content with a previously exported one,
// taking ownership of the expressions and models in x. The exported
// capacity is restored (clamped to the adaptive ceiling when one is
// set); entries beyond it are dropped, oldest first.
func (c *Cache) Import(x CacheExport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if x.Cap > 0 {
		c.max = x.Cap
		if c.ceiling > 0 && c.max > c.ceiling {
			c.max = c.ceiling
		}
	}
	c.m = make(map[uint64]*cacheEntry)
	c.head, c.tail = nil, nil
	c.size = 0
	c.sumNodes = 0

	n := len(x.Entries)
	if n > c.max {
		n = c.max
	}
	// Insert in reverse (least recently used first): each pushFront lands
	// the entry at the head, so the restored list reproduces the exported
	// LRU order.
	for i := n - 1; i >= 0; i-- {
		ex := x.Entries[i]
		binds := make([]hintBinding, len(ex.Binds))
		names := make([]string, len(ex.Binds))
		hints := expr.Assignment{}
		for j, b := range ex.Binds {
			binds[j] = hintBinding{name: b.Name, val: b.Val, bound: b.Bound}
			names[j] = b.Name
			if b.Bound {
				hints[b.Name] = b.Val
			}
		}
		e := &cacheEntry{
			hash:  queryHash(ex.Flat, names, hints),
			flat:  ex.Flat,
			binds: binds,
			model: ex.Model,
			res:   ex.Res,
			nodes: ex.Nodes,
		}
		e.chain = c.m[e.hash]
		c.m[e.hash] = e
		c.pushFront(e)
		c.size++
		c.sumNodes += int64(e.nodes)
	}
	c.hits.Store(x.Hits)
	c.misses.Store(x.Misses)
	c.evictions.Store(x.Evictions)
	c.resizes.Store(x.Resizes)
}

// Estimated per-entry footprint components, in bytes (pointers, list
// links, and map-bucket shares; expression nodes are shared and priced
// per flat conjunct rather than per node).
const (
	memCacheEntry = 128
	memConjunct   = 64
	memBinding    = 48
	memModelVar   = 48
)

// MemBytes estimates the heap footprint of the memoized entries.
func (c *Cache) MemBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for e := c.head; e != nil; e = e.next {
		n += memCacheEntry
		n += int64(len(e.flat)) * memConjunct
		n += int64(len(e.binds)) * memBinding
		n += int64(len(e.model)) * memModelVar
	}
	return n
}
