// Package solver decides satisfiability of conjunctions of symbolic
// constraints and produces witness models (concrete input assignments).
//
// It is the reproduction's stand-in for the STP/Kleaver solver the paper
// uses through KLEE [19]. Portend needs three queries:
//
//   - path feasibility when forking at a symbolic branch,
//   - model generation ("solve the conjunction of branch constraints ...
//     to find concrete inputs that drive the program down the
//     corresponding path", §3.3),
//   - symbolic output comparison (is there an input under which the
//     primary's symbolic outputs equal the alternate's concrete outputs,
//     §3.3.1).
//
// All three reduce to Solve. The solver is deliberately small: constant
// folding, top-level conjunction splitting, interval propagation for
// variable-vs-constant comparisons, then a deterministic backtracking
// search over heuristically chosen candidate values. PIL workloads
// constrain small integers and flags, so this bounded search decides the
// same queries an SMT solver would, and it reports Unknown rather than
// guessing when its budget is exhausted.
package solver

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/expr"
)

// Result is the outcome of a satisfiability query.
type Result int

const (
	// Unsat means the constraints are proven unsatisfiable within the
	// candidate domains the solver explored exhaustively.
	Unsat Result = iota
	// Sat means a witness model was found.
	Sat
	// Unknown means the search budget was exhausted without a verdict.
	Unknown
)

// String returns "unsat", "sat" or "unknown".
func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	case Unknown:
		return "unknown"
	}
	return "invalid"
}

// Options tune the search budget.
type Options struct {
	// MaxCandidatesPerVar bounds the candidate value set per variable.
	MaxCandidatesPerVar int
	// MaxNodes bounds the number of search tree nodes visited.
	MaxNodes int
	// DomainRadius widens every variable's default domain to
	// [-DomainRadius, DomainRadius] before interval propagation.
	DomainRadius int64
}

// DefaultOptions returns the budget used across the evaluation,
// sufficient to decide every query the workload suite generates.
func DefaultOptions() Options {
	return Options{
		MaxCandidatesPerVar: 48,
		MaxNodes:            200000,
		DomainRadius:        1 << 20,
	}
}

// Solver answers satisfiability queries. The zero value is not ready;
// use New.
//
// A Solver is safe for concurrent use: queries keep all search state on
// the stack, and the accumulated statistics are atomic. The parallel
// classification engine shares one solver among the alternate-schedule
// workers of a race.
type Solver struct {
	opts Options

	// Interrupt, when non-nil, is polled during the backtracking search;
	// when it reports true the query aborts with Unknown. Set it before
	// the solver's first query (it is read concurrently afterwards).
	// Cancellation maps to Unknown — never to Unsat — so an aborted
	// query can only make the classifier more conservative, not wrong.
	Interrupt func() bool

	// Cache, when non-nil, memoizes Solve results by canonical query
	// form. It may be shared with other Solvers built from the same
	// Options; set it before the first query. Interrupted queries are
	// never cached (their Unknown is a cancellation artifact, not an
	// answer).
	Cache *Cache

	queries    atomic.Int64
	nodesTotal atomic.Int64
	cacheHits  atomic.Int64
}

// Queries returns the number of Solve calls answered so far (Table 4
// style instrumentation).
func (s *Solver) Queries() int { return int(s.queries.Load()) }

// NodesTotal returns the total number of search-tree nodes visited
// across all queries.
func (s *Solver) NodesTotal() int { return int(s.nodesTotal.Load()) }

// CacheHits returns how many of this solver's queries were answered from
// the attached Cache. The counter is per-solver even when the cache is
// shared, which is what lets the engine attribute hits to one race.
func (s *Solver) CacheHits() int { return int(s.cacheHits.Load()) }

// New returns a Solver with the given options, falling back to defaults
// for zero fields.
func New(opts Options) *Solver {
	d := DefaultOptions()
	if opts.MaxCandidatesPerVar <= 0 {
		opts.MaxCandidatesPerVar = d.MaxCandidatesPerVar
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = d.MaxNodes
	}
	if opts.DomainRadius <= 0 {
		opts.DomainRadius = d.DomainRadius
	}
	return &Solver{opts: opts}
}

// interval is an inclusive integer range.
type interval struct {
	lo, hi int64
}

func (iv interval) empty() bool { return iv.lo > iv.hi }

func (iv interval) clamp(v int64) int64 {
	if v < iv.lo {
		return iv.lo
	}
	if v > iv.hi {
		return iv.hi
	}
	return v
}

func (iv interval) contains(v int64) bool { return v >= iv.lo && v <= iv.hi }

// width returns hi-lo+1 saturating at MaxInt64.
func (iv interval) width() int64 {
	if iv.empty() {
		return 0
	}
	w := iv.hi - iv.lo
	if w < 0 || w == math.MaxInt64 {
		return math.MaxInt64
	}
	return w + 1
}

// splitConjuncts flattens top-level logical-ands into a flat constraint
// list, folding constants on the way. It returns ok=false when a constraint
// is constant-false.
func splitConjuncts(constraints []expr.Expr) (flat []expr.Expr, ok bool) {
	var walk func(e expr.Expr) bool
	walk = func(e expr.Expr) bool {
		if c, isConst := expr.ConstVal(e); isConst {
			return c != 0
		}
		if b, isBin := e.(*expr.Binary); isBin && b.Op == expr.OpLAnd {
			return walk(b.L) && walk(b.R)
		}
		flat = append(flat, e)
		return true
	}
	for _, c := range constraints {
		if !walk(c) {
			return nil, false
		}
	}
	return flat, true
}

// normalizeLinear attempts to rewrite (x ± c1) cmp c2 and (c1 - x) cmp c2
// into x cmp' c form. Returns the variable name, the comparison op and the
// constant bound; ok=false when the shape does not match.
func normalizeLinear(e expr.Expr) (name string, op expr.Op, bound int64, ok bool) {
	b, isBin := e.(*expr.Binary)
	if !isBin || !b.Op.IsComparison() {
		return "", 0, 0, false
	}
	l, r := b.L, b.R
	op = b.Op
	// Put the constant on the right.
	if _, isC := expr.ConstVal(l); isC {
		l, r = r, l
		op = mirrorCmp(op)
	}
	c, isC := expr.ConstVal(r)
	if !isC {
		return "", 0, 0, false
	}
	switch lv := l.(type) {
	case *expr.Sym:
		return lv.Name, op, c, true
	case *expr.Binary:
		// x + k cmp c  →  x cmp c-k ; x - k cmp c → x cmp c+k ;
		// k - x cmp c  →  x mirror(cmp) k-c
		if lv.Op == expr.OpAdd || lv.Op == expr.OpSub {
			if s, isSym := lv.L.(*expr.Sym); isSym {
				if k, kc := expr.ConstVal(lv.R); kc {
					if lv.Op == expr.OpAdd {
						return s.Name, op, c - k, true
					}
					return s.Name, op, c + k, true
				}
			}
			if s, isSym := lv.R.(*expr.Sym); isSym {
				if k, kc := expr.ConstVal(lv.L); kc {
					if lv.Op == expr.OpAdd {
						return s.Name, op, c - k, true
					}
					// k - x cmp c → -x cmp c-k → x mirror(cmp) k-c
					return s.Name, mirrorCmp(op), k - c, true
				}
			}
		}
	}
	return "", 0, 0, false
}

func mirrorCmp(op expr.Op) expr.Op {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op // Eq, Ne are symmetric
}

// propagate narrows per-variable intervals from normalized linear
// constraints. Returns false when some interval becomes empty (Unsat).
func propagate(flat []expr.Expr, domains map[string]*interval) bool {
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, c := range flat {
			name, op, bound, ok := normalizeLinear(c)
			if !ok {
				continue
			}
			iv := domains[name]
			lo, hi := iv.lo, iv.hi
			switch op {
			case expr.OpEq:
				if bound > lo {
					lo = bound
				}
				if bound < hi {
					hi = bound
				}
			case expr.OpLt:
				if bound-1 < hi {
					hi = bound - 1
				}
			case expr.OpLe:
				if bound < hi {
					hi = bound
				}
			case expr.OpGt:
				if bound+1 > lo {
					lo = bound + 1
				}
			case expr.OpGe:
				if bound > lo {
					lo = bound
				}
			case expr.OpNe:
				if lo == hi && lo == bound {
					return false
				}
				if lo == bound {
					lo++
				}
				if hi == bound {
					hi--
				}
			}
			if lo != iv.lo || hi != iv.hi {
				iv.lo, iv.hi = lo, hi
				changed = true
			}
			if iv.empty() {
				return false
			}
		}
		if !changed {
			break
		}
	}
	return true
}

// collectConstants gathers every constant literal in the constraint set;
// these seed the candidate values.
func collectConstants(flat []expr.Expr) []int64 {
	seen := map[int64]struct{}{}
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		switch v := e.(type) {
		case *expr.Const:
			seen[v.Val] = struct{}{}
		case *expr.Unary:
			walk(v.X)
		case *expr.Binary:
			walk(v.L)
			walk(v.R)
		}
	}
	for _, c := range flat {
		walk(c)
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// candidates builds the ordered candidate value list for one variable.
// complete reports whether the list covers the variable's whole interval
// (needed to distinguish Unsat from Unknown on exhaustion).
func (s *Solver) candidates(iv interval, consts []int64, hint int64, hasHint bool) (vals []int64, complete bool) {
	if iv.empty() {
		return nil, true
	}
	limit := s.opts.MaxCandidatesPerVar
	if w := iv.width(); w != math.MaxInt64 && w <= int64(limit) {
		// Enumerate the entire interval: the search is complete for
		// this variable.
		vals = make([]int64, 0, w)
		for v := iv.lo; ; v++ {
			vals = append(vals, v)
			if v == iv.hi {
				break
			}
		}
		if hasHint && iv.contains(hint) {
			// Try the concolic hint first.
			moveToFront(vals, hint)
		}
		return vals, true
	}

	seen := map[int64]struct{}{}
	add := func(v int64) {
		if !iv.contains(v) {
			return
		}
		if _, dup := seen[v]; dup {
			return
		}
		seen[v] = struct{}{}
		vals = append(vals, v)
	}
	if hasHint {
		add(hint)
	}
	add(0)
	add(1)
	add(-1)
	add(2)
	for _, c := range consts {
		add(c)
		add(c - 1)
		add(c + 1)
	}
	add(iv.lo)
	add(iv.lo + 1)
	add(iv.hi)
	add(iv.hi - 1)
	// Order: hint first (already first if added), then by |v| for small,
	// human-plausible models.
	head := 0
	if hasHint && len(vals) > 0 && vals[0] == hint {
		head = 1
	}
	tail := vals[head:]
	sort.Slice(tail, func(i, j int) bool {
		ai, aj := abs64(tail[i]), abs64(tail[j])
		if ai != aj {
			return ai < aj
		}
		return tail[i] < tail[j]
	})
	if len(vals) > limit {
		vals = vals[:limit]
	}
	return vals, false
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func moveToFront(vals []int64, v int64) {
	for i, x := range vals {
		if x == v {
			copy(vals[1:i+1], vals[:i])
			vals[0] = v
			return
		}
	}
}

// Solve decides the conjunction of constraints. Hints bias the search: the
// concolic seed of the forking state is tried first, which keeps witness
// models close to the observed execution. On Sat the returned assignment
// binds every variable occurring in the constraints.
//
// With a Cache attached, queries whose canonical form (flattened
// conjuncts + the hints of their variables) was already decided are
// answered from the cache; the answer is identical to what a fresh
// search would produce, so caching never changes a caller-visible
// outcome.
func (s *Solver) Solve(constraints []expr.Expr, hints expr.Assignment) (expr.Assignment, Result) {
	s.queries.Add(1)
	flat, ok := splitConjuncts(constraints)
	if !ok {
		return nil, Unsat
	}
	if len(flat) == 0 {
		return expr.Assignment{}, Sat
	}

	// Variable inventory.
	varSet := map[string]struct{}{}
	for _, c := range flat {
		expr.CollectVars(c, varSet)
	}
	names := make([]string, 0, len(varSet))
	for n := range varSet {
		names = append(names, n)
	}
	sort.Strings(names)

	var key uint64
	if s.Cache != nil {
		key = queryHash(flat, names, hints)
		if model, res, hit := s.Cache.get(key, flat, names, hints); hit {
			s.cacheHits.Add(1)
			return model, res
		}
	}
	model, res, interrupted, nodes := s.search(flat, names, hints)
	if s.Cache != nil && !interrupted {
		s.Cache.put(key, flat, names, hints, model, res, nodes)
	}
	return model, res
}

// search runs the actual decision procedure on an already-flattened
// conjunction. interrupted reports that the Unknown result came from the
// Interrupt hook rather than the search budget; nodes is the search-tree
// size this query visited (the re-search cost a cache hit would save).
func (s *Solver) search(flat []expr.Expr, names []string, hints expr.Assignment) (expr.Assignment, Result, bool, int) {
	// Domains and propagation.
	domains := make(map[string]*interval, len(names))
	for _, n := range names {
		domains[n] = &interval{lo: -s.opts.DomainRadius, hi: s.opts.DomainRadius}
	}
	if !propagate(flat, domains) {
		return nil, Unsat, false, 0
	}

	// Candidate sets.
	consts := collectConstants(flat)
	cand := make([][]int64, len(names))
	allComplete := true
	for i, n := range names {
		hint, hasHint := hints[n]
		vals, complete := s.candidates(*domains[n], consts, hint, hasHint)
		if len(vals) == 0 {
			if complete {
				return nil, Unsat, false, 0
			}
			return nil, Unknown, false, 0
		}
		cand[i] = vals
		allComplete = allComplete && complete
	}

	// Order variables by fewest candidates first (fail-fast).
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(cand[order[a]]) < len(cand[order[b]])
	})

	// Precompute which constraints become checkable after each assignment
	// step: a constraint is checkable once all its variables are bound.
	cvars := make([]map[string]struct{}, len(flat))
	for i, c := range flat {
		set := map[string]struct{}{}
		expr.CollectVars(c, set)
		cvars[i] = set
	}
	bound := map[string]struct{}{}
	checkAt := make([][]int, len(order)) // constraint indices to check after step k
	for k, vi := range order {
		bound[names[vi]] = struct{}{}
		for ci, set := range cvars {
			if len(set) == 0 {
				continue
			}
			allBound := true
			lastStep := false
			for v := range set {
				if _, isB := bound[v]; !isB {
					allBound = false
					break
				}
			}
			if allBound {
				if _, isB := set[names[vi]]; isB {
					lastStep = true
				}
			}
			if allBound && lastStep {
				checkAt[k] = append(checkAt[k], ci)
			}
		}
	}

	env := make(expr.Assignment, len(names))
	nodes := 0
	interrupted := false
	var search func(step int) bool
	search = func(step int) bool {
		if step == len(order) {
			return true
		}
		vi := order[step]
		for _, v := range cand[vi] {
			if interrupted {
				return false
			}
			nodes++
			if nodes > s.opts.MaxNodes {
				return false
			}
			if s.Interrupt != nil && nodes%64 == 0 && s.Interrupt() {
				interrupted = true
				return false
			}
			env[names[vi]] = v
			ok := true
			for _, ci := range checkAt[step] {
				val, err := expr.Eval(flat[ci], env)
				if err != nil || val == 0 {
					ok = false
					break
				}
			}
			if ok && search(step+1) {
				return true
			}
		}
		delete(env, names[vi])
		return false
	}
	found := search(0)
	s.nodesTotal.Add(int64(nodes))
	if found {
		// Return a copy so callers may retain it.
		model := make(expr.Assignment, len(env))
		for k, v := range env {
			model[k] = v
		}
		return model, Sat, false, nodes
	}
	if nodes > s.opts.MaxNodes || interrupted || !allComplete {
		return nil, Unknown, interrupted, nodes
	}
	return nil, Unsat, false, nodes
}

// MayBeTrue reports whether cond can be true under the path condition.
// Unknown is treated as "maybe" (the explorer will keep a concrete witness,
// so over-approximation here only costs a fork attempt).
func (s *Solver) MayBeTrue(pc []expr.Expr, cond expr.Expr, hints expr.Assignment) bool {
	cs := make([]expr.Expr, 0, len(pc)+1)
	cs = append(cs, pc...)
	cs = append(cs, expr.NeZero(cond))
	_, r := s.Solve(cs, hints)
	return r != Unsat
}

// MustBeTrue reports whether cond is implied by the path condition
// (i.e. pc ∧ ¬cond is unsatisfiable).
func (s *Solver) MustBeTrue(pc []expr.Expr, cond expr.Expr, hints expr.Assignment) bool {
	cs := make([]expr.Expr, 0, len(pc)+1)
	cs = append(cs, pc...)
	cs = append(cs, expr.LNot(expr.NeZero(cond)))
	_, r := s.Solve(cs, hints)
	return r == Unsat
}
