package solver

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func sym(n string) expr.Expr { return expr.NewSym(n) }
func ci(v int64) expr.Expr   { return expr.NewConst(v) }
func solveOne(cs ...expr.Expr) (expr.Assignment, Result) {
	return New(Options{}).Solve(cs, nil)
}

func mustSat(t *testing.T, cs ...expr.Expr) expr.Assignment {
	t.Helper()
	m, r := solveOne(cs...)
	if r != Sat {
		t.Fatalf("want sat, got %v for %v", r, cs)
	}
	for _, c := range cs {
		v, err := expr.Eval(c, m)
		if err != nil || v == 0 {
			t.Fatalf("model %v does not satisfy %s (v=%d err=%v)", m, c, v, err)
		}
	}
	return m
}

func TestEmptyIsSat(t *testing.T) {
	m, r := solveOne()
	if r != Sat || m == nil {
		t.Fatalf("empty conjunction must be sat, got %v", r)
	}
}

func TestConstantConstraints(t *testing.T) {
	if _, r := solveOne(ci(1)); r != Sat {
		t.Fatal("constant-true must be sat")
	}
	if _, r := solveOne(ci(0)); r != Unsat {
		t.Fatal("constant-false must be unsat")
	}
	if _, r := solveOne(ci(1), ci(0), expr.Gt(sym("x"), ci(3))); r != Unsat {
		t.Fatal("any constant-false conjunct must give unsat")
	}
}

func TestSimpleComparison(t *testing.T) {
	m := mustSat(t, expr.Gt(sym("x"), ci(10)))
	if m["x"] <= 10 {
		t.Fatalf("bad model %v", m)
	}
}

func TestEqualityChain(t *testing.T) {
	m := mustSat(t,
		expr.Eq(sym("x"), ci(42)),
		expr.Eq(sym("y"), expr.Add(sym("x"), ci(1))),
	)
	if m["x"] != 42 || m["y"] != 43 {
		t.Fatalf("bad model %v", m)
	}
}

func TestContradiction(t *testing.T) {
	_, r := solveOne(
		expr.Gt(sym("x"), ci(10)),
		expr.Lt(sym("x"), ci(5)),
	)
	if r != Unsat {
		t.Fatalf("want unsat, got %v", r)
	}
}

func TestEqNeContradiction(t *testing.T) {
	_, r := solveOne(
		expr.Eq(sym("x"), ci(7)),
		expr.Ne(sym("x"), ci(7)),
	)
	if r != Unsat {
		t.Fatalf("want unsat, got %v", r)
	}
}

func TestTightInterval(t *testing.T) {
	m := mustSat(t,
		expr.Ge(sym("x"), ci(31)),
		expr.Le(sym("x"), ci(31)),
	)
	if m["x"] != 31 {
		t.Fatalf("bad model %v", m)
	}
}

func TestLinearNormalization(t *testing.T) {
	// x + 5 == 12  →  x = 7
	m := mustSat(t, expr.Eq(expr.Add(sym("x"), ci(5)), ci(12)))
	if m["x"] != 7 {
		t.Fatalf("bad model %v", m)
	}
	// 10 - x < 3  →  x > 7
	m = mustSat(t, expr.Lt(expr.Sub(ci(10), sym("x")), ci(3)))
	if m["x"] <= 7 {
		t.Fatalf("bad model %v", m)
	}
	// x - 4 >= 0 → x >= 4
	m = mustSat(t, expr.Ge(expr.Sub(sym("x"), ci(4)), ci(0)))
	if m["x"] < 4 {
		t.Fatalf("bad model %v", m)
	}
}

func TestConjunctionSplitting(t *testing.T) {
	c := expr.LAnd(expr.Gt(sym("x"), ci(0)), expr.Lt(sym("x"), ci(3)))
	m := mustSat(t, c)
	if m["x"] <= 0 || m["x"] >= 3 {
		t.Fatalf("bad model %v", m)
	}
}

func TestDisjunction(t *testing.T) {
	// x == 3 || x == 100, and x > 50 — needs the search, not propagation.
	m := mustSat(t,
		expr.LOr(expr.Eq(sym("x"), ci(3)), expr.Eq(sym("x"), ci(100))),
		expr.Gt(sym("x"), ci(50)),
	)
	if m["x"] != 100 {
		t.Fatalf("bad model %v", m)
	}
}

func TestMultiVariable(t *testing.T) {
	m := mustSat(t,
		expr.Eq(expr.Add(sym("x"), sym("y")), ci(10)),
		expr.Gt(sym("x"), ci(6)),
		expr.Ge(sym("y"), ci(0)),
		expr.Le(sym("x"), ci(10)),
	)
	if m["x"]+m["y"] != 10 || m["x"] <= 6 || m["y"] < 0 {
		t.Fatalf("bad model %v", m)
	}
}

func TestHintsBiasSearch(t *testing.T) {
	s := New(Options{})
	m, r := s.Solve([]expr.Expr{expr.Ge(sym("x"), ci(0))}, expr.Assignment{"x": 17})
	if r != Sat || m["x"] != 17 {
		t.Fatalf("hint should be preferred: %v %v", m, r)
	}
	// A hint that violates the constraints must be ignored.
	m, r = s.Solve([]expr.Expr{expr.Gt(sym("x"), ci(100))}, expr.Assignment{"x": 17})
	if r != Sat || m["x"] <= 100 {
		t.Fatalf("invalid hint must not leak into model: %v %v", m, r)
	}
}

func TestMayMustBeTrue(t *testing.T) {
	s := New(Options{})
	pc := []expr.Expr{expr.Gt(sym("x"), ci(5))}
	if !s.MayBeTrue(pc, expr.Eq(sym("x"), ci(6)), nil) {
		t.Fatal("x==6 may be true when x>5")
	}
	if s.MayBeTrue(pc, expr.Eq(sym("x"), ci(3)), nil) {
		t.Fatal("x==3 cannot be true when x>5")
	}
	if !s.MustBeTrue(pc, expr.Gt(sym("x"), ci(4)), nil) {
		t.Fatal("x>4 must hold when x>5")
	}
	if s.MustBeTrue(pc, expr.Gt(sym("x"), ci(6)), nil) {
		t.Fatal("x>6 need not hold when x>5")
	}
}

func TestBooleanFlagConstraints(t *testing.T) {
	// Typical workload query: flag ∈ {0,1}, flag == 0 path.
	m := mustSat(t,
		expr.Ge(sym("flag"), ci(0)),
		expr.Le(sym("flag"), ci(1)),
		expr.Eq(sym("flag"), ci(0)),
	)
	if m["flag"] != 0 {
		t.Fatalf("bad model %v", m)
	}
	_, r := solveOne(
		expr.Ge(sym("flag"), ci(0)),
		expr.Le(sym("flag"), ci(1)),
		expr.Eq(sym("flag"), ci(2)),
	)
	if r != Unsat {
		t.Fatalf("flag==2 in [0,1] must be unsat, got %v", r)
	}
}

func TestOutputMatchQueryShape(t *testing.T) {
	// The classifier's symbolic output comparison: pc ∧ (symOut == concrete).
	// primary printed x+1 under pc x>=0; alternate printed 8.
	pc := []expr.Expr{expr.Ge(sym("x"), ci(0))}
	eq := expr.Eq(expr.Add(sym("x"), ci(1)), ci(8))
	s := New(Options{})
	m, r := s.Solve(append(append([]expr.Expr{}, pc...), eq), nil)
	if r != Sat || m["x"] != 7 {
		t.Fatalf("want x=7, got %v %v", m, r)
	}
	// alternate printed -5: impossible under pc.
	eq2 := expr.Eq(expr.Add(sym("x"), ci(1)), ci(-5))
	_, r = s.Solve(append(append([]expr.Expr{}, pc...), eq2), nil)
	if r != Unsat {
		t.Fatalf("want unsat, got %v", r)
	}
}

func TestModBasedConstraint(t *testing.T) {
	// Not linear: relies on the candidate search.
	m := mustSat(t,
		expr.Eq(expr.Mod(sym("x"), ci(4)), ci(0)),
		expr.Gt(sym("x"), ci(0)),
		expr.Le(sym("x"), ci(16)),
	)
	if m["x"]%4 != 0 || m["x"] <= 0 {
		t.Fatalf("bad model %v", m)
	}
}

func TestUnknownOnHugeDomain(t *testing.T) {
	// A multiplicative constraint the candidate heuristics cannot hit:
	// with a tiny candidate budget the solver must answer Unknown, never a
	// wrong Unsat with completeness claimed.
	s := New(Options{MaxCandidatesPerVar: 4, MaxNodes: 100})
	_, r := s.Solve([]expr.Expr{
		expr.Eq(expr.Mul(sym("x"), sym("x")), ci(1234321)),
	}, nil)
	if r == Sat {
		t.Fatalf("should not find model with tiny budget, got %v", r)
	}
	if r == Unsat {
		t.Fatalf("must not claim unsat without complete enumeration")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(Options{})
	s.Solve([]expr.Expr{expr.Gt(sym("x"), ci(0))}, nil)
	s.Solve([]expr.Expr{expr.Lt(sym("x"), ci(0))}, nil)
	if s.Queries() != 2 {
		t.Fatalf("queries = %d, want 2", s.Queries())
	}
}

func TestResultString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Fatal("bad Result strings")
	}
}

// Property: any model returned by Solve satisfies every constraint.
func TestQuickModelsAreWitnesses(t *testing.T) {
	s := New(Options{})
	f := func(a, b int8, useAnd bool) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		cs := []expr.Expr{
			expr.Ge(sym("x"), ci(lo)),
			expr.Le(sym("x"), ci(hi)),
		}
		if useAnd {
			cs = append(cs, expr.Ne(sym("x"), ci(lo)))
		}
		m, r := s.Solve(cs, nil)
		if r == Unsat {
			// Only possible when interval collapses to the excluded point.
			return useAnd && lo == hi
		}
		if r != Sat {
			return false
		}
		for _, c := range cs {
			v, err := expr.Eval(c, m)
			if err != nil || v == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve is deterministic — same query, same model.
func TestQuickDeterministic(t *testing.T) {
	f := func(a int16) bool {
		cs := []expr.Expr{expr.Gt(sym("x"), ci(int64(a)))}
		m1, r1 := New(Options{}).Solve(cs, nil)
		m2, r2 := New(Options{}).Solve(cs, nil)
		if r1 != r2 {
			return false
		}
		if r1 == Sat && m1["x"] != m2["x"] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
