package solver

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// Cache memoizes Solve results across Solver instances. The per-race
// classification engine gives every worker its own Solver (statistics
// stay per-race) but shares one Cache per analysis run: alternate
// executions of one race, and the multi-path explorations of different
// races over the same trace, re-issue large numbers of structurally
// identical queries, and the cache answers repeats without re-searching.
//
// Keys are the canonical form of a query: the flattened conjunct list
// (top-level ANDs split, constant-true conjuncts dropped — exactly the
// normalization Solve itself applies) plus the concolic hints of the
// variables occurring in the constraints. The key is a 64-bit structural
// hash folded from the conjuncts' memoized hashes (expr.Hash) and the
// sorted hint bindings — no string rendering, no allocation. A hash
// match alone is never trusted: candidate entries are verified conjunct
// by conjunct with expr.Equal (cheap: interned and DAG-shared nodes
// compare by pointer) and binding by binding, so a hit is guaranteed to
// be the exact query and reproduces what Solve would compute for that
// flat form. Solve is deterministic given (flat, hints, options), so
// cached answers are byte-identical to recomputed ones and the engine's
// verdicts cannot depend on cache warmth. Conjunct order is hashed and
// verified in order rather than sorted — two orderings of the same
// conjunct set are distinct computations, and collapsing them could make
// a cached run diverge from an uncached one.
//
// When full the cache evicts the least-recently-used entry instead of
// refusing the insert, so long traces whose query population drifts keep
// hitting on the current working set. Eviction only discards memoized
// time — an evicted query is simply re-searched, deterministically — so
// it can never change a verdict.
//
// An adaptive cache (NewAdaptiveCache, and the NewCache(0) default)
// additionally sizes itself: instead of evicting at a fixed cap, it
// doubles its capacity — up to a hard ceiling — while the memoized work
// it saves per lookup (observed hit rate × the average search cost of a
// stored entry, in search-tree nodes) exceeds the bookkeeping cost of
// holding one more entry. A cache that rarely hits, or whose entries
// were cheap to compute, stays small and evicts; one that keeps
// answering expensive repeat queries grows toward the ceiling. Resizing
// only changes how much is memoized, never what a lookup returns, so
// like eviction it cannot change a verdict.
//
// A Cache must only be shared between Solvers built with the same
// Options (the engine derives every worker's solver from one configuration).
//
// Cache is safe for concurrent use; hit/miss/eviction statistics are
// atomic.
type Cache struct {
	mu   sync.Mutex
	m    map[uint64]*cacheEntry // bucket heads, chained on hash collision
	size int
	max  int

	// ceiling > 0 marks the cache adaptive: max may double up to ceiling
	// under the growth rule (see growIfWorthwhile). sumNodes is the total
	// search cost (in search-tree nodes) of the stored entries — the
	// re-search work the current population memoizes.
	ceiling  int
	sumNodes int64

	// LRU list: head is most recently used, tail is next to evict.
	head, tail *cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	resizes   atomic.Int64
}

// hintBinding is one variable's concolic hint as captured in a key:
// bound reports whether the hint assignment contained the variable at
// all (an unbound variable is a different query than one hinted to any
// value).
type hintBinding struct {
	name  string
	val   int64
	bound bool
}

type cacheEntry struct {
	hash  uint64
	flat  []expr.Expr // the exact flattened conjuncts, in order
	binds []hintBinding
	model expr.Assignment // nil unless res == Sat
	res   Result
	nodes int // search-tree nodes the memoized search visited

	chain      *cacheEntry // next entry with the same hash bucket
	prev, next *cacheEntry // LRU list
}

// DefaultCacheSize is the historical fixed bound; an adaptive cache may
// grow past it up to DefaultCacheCeiling.
const DefaultCacheSize = 8192

// Adaptive sizing defaults: a NewCache(0) cache starts small and may
// double up to the ceiling while the growth rule holds.
const (
	DefaultCacheInitial = 1024
	DefaultCacheCeiling = 4 * DefaultCacheSize

	// entryCostNodes prices holding one more entry in units of
	// search-tree nodes. Growth is worthwhile while the expected
	// re-search work a lookup saves (hit rate × average stored search
	// cost) exceeds this; below it, evicting and re-searching on demand
	// is cheaper than the memory.
	entryCostNodes = 16.0
)

// NewCache returns a cache bounded to max entries. max <= 0 selects the
// adaptive default — NewAdaptiveCache(DefaultCacheInitial,
// DefaultCacheCeiling) — while an explicit positive max stays fixed
// forever. When full, inserting either grows the cap (adaptive caches,
// while worthwhile) or evicts the least-recently-used entry.
func NewCache(max int) *Cache {
	if max <= 0 {
		return NewAdaptiveCache(0, 0)
	}
	return &Cache{m: make(map[uint64]*cacheEntry), max: max}
}

// NewAdaptiveCache returns a cache that starts with capacity initial and
// doubles — up to ceiling — while hit-rate × average entry search cost
// beats the per-entry holding cost (see the Cache doc comment).
// Non-positive arguments select DefaultCacheInitial / DefaultCacheCeiling.
func NewAdaptiveCache(initial, ceiling int) *Cache {
	if initial <= 0 {
		initial = DefaultCacheInitial
	}
	if ceiling <= 0 {
		ceiling = DefaultCacheCeiling
	}
	if ceiling < initial {
		ceiling = initial
	}
	return &Cache{m: make(map[uint64]*cacheEntry), max: initial, ceiling: ceiling}
}

// Len returns the number of memoized queries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Hits returns the number of lookups answered from the cache.
func (c *Cache) Hits() int { return int(c.hits.Load()) }

// Misses returns the number of lookups that required a fresh search.
func (c *Cache) Misses() int { return int(c.misses.Load()) }

// Evictions returns how many memoized queries were discarded to make
// room for new ones.
func (c *Cache) Evictions() int { return int(c.evictions.Load()) }

// Cap returns the current capacity — fixed for NewCache(max > 0), the
// adaptively chosen size otherwise.
func (c *Cache) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// Resizes returns how many times an adaptive cache grew its capacity.
func (c *Cache) Resizes() int { return int(c.resizes.Load()) }

// queryHash folds the canonical form of a query into the 64-bit cache
// key: the ordered flat conjuncts' structural hashes and the hints of
// exactly the variables they mention. names must be sorted (Solve sorts
// its inventory), so the fold does not depend on map iteration order.
// The function allocates nothing; a regression guard in cache_test.go
// holds it to that.
func queryHash(flat []expr.Expr, names []string, hints expr.Assignment) uint64 {
	h := expr.HashList(flat)
	for _, n := range names {
		h = expr.Mix64(h ^ expr.HashString(n))
		if v, ok := hints[n]; ok {
			h = expr.Mix64(h ^ uint64(v) ^ 0x9e3779b97f4a7c15)
		} else {
			h = expr.Mix64(h ^ 0x8ebc6af09c88c6e3)
		}
	}
	return h
}

// matches verifies that an entry memoizes exactly this query: same
// conjuncts in the same order, same hint bindings. Hash collisions make
// this necessary for correctness; structural sharing makes it cheap.
func (e *cacheEntry) matches(flat []expr.Expr, names []string, hints expr.Assignment) bool {
	if len(e.flat) != len(flat) || len(e.binds) != len(names) {
		return false
	}
	for i, b := range e.binds {
		if b.name != names[i] {
			return false
		}
		v, ok := hints[b.name]
		if ok != b.bound || (ok && v != b.val) {
			return false
		}
	}
	for i, q := range e.flat {
		if !expr.Equal(q, flat[i]) {
			return false
		}
	}
	return true
}

// get looks up a memoized result and marks the entry most recently used.
// The returned model is a private copy.
func (c *Cache) get(hash uint64, flat []expr.Expr, names []string, hints expr.Assignment) (expr.Assignment, Result, bool) {
	c.mu.Lock()
	var e *cacheEntry
	for e = c.m[hash]; e != nil; e = e.chain {
		if e.matches(flat, names, hints) {
			break
		}
	}
	if e == nil {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, 0, false
	}
	c.moveToFront(e)
	model := e.model
	res := e.res
	c.mu.Unlock()

	c.hits.Add(1)
	var out expr.Assignment
	if model != nil {
		out = make(expr.Assignment, len(model))
		for k, v := range model {
			out[k] = v
		}
	}
	return out, res, true
}

// put memoizes a result. flat and names are retained (Solve builds both
// fresh per query); the model is copied, so callers may keep mutating
// their own instance. nodes is the search-tree size of the search being
// memoized — the work a future hit saves — and feeds the adaptive
// growth rule.
func (c *Cache) put(hash uint64, flat []expr.Expr, names []string, hints expr.Assignment, model expr.Assignment, res Result, nodes int) {
	var stored expr.Assignment
	if model != nil {
		stored = make(expr.Assignment, len(model))
		for k, v := range model {
			stored[k] = v
		}
	}
	binds := make([]hintBinding, len(names))
	for i, n := range names {
		v, ok := hints[n]
		binds[i] = hintBinding{name: n, val: v, bound: ok}
	}
	e := &cacheEntry{hash: hash, flat: flat, binds: binds, model: stored, res: res, nodes: nodes}

	c.mu.Lock()
	defer c.mu.Unlock()
	for dup := c.m[hash]; dup != nil; dup = dup.chain {
		if dup.matches(flat, names, hints) {
			return
		}
	}
	if c.size >= c.max && !c.growIfWorthwhile() {
		c.evictLRU()
	}
	e.chain = c.m[hash]
	c.m[hash] = e
	c.pushFront(e)
	c.size++
	c.sumNodes += int64(nodes)
}

// growIfWorthwhile applies the adaptive growth rule at a full insert:
// double the cap (clamped to the ceiling) while the expected re-search
// work one lookup saves — hit rate so far × average search cost of a
// stored entry — exceeds the per-entry holding cost. Returns whether the
// cap grew (in which case the caller skips eviction). Caller holds c.mu.
func (c *Cache) growIfWorthwhile() bool {
	if c.ceiling == 0 || c.max >= c.ceiling || c.size == 0 {
		return false
	}
	lookups := c.hits.Load() + c.misses.Load()
	if lookups == 0 {
		return false
	}
	hitRate := float64(c.hits.Load()) / float64(lookups)
	avgNodes := float64(c.sumNodes) / float64(c.size)
	if hitRate*avgNodes <= entryCostNodes {
		return false
	}
	c.max *= 2
	if c.max > c.ceiling {
		c.max = c.ceiling
	}
	c.resizes.Add(1)
	return true
}

// evictLRU drops the least-recently-used entry. Caller holds c.mu.
func (c *Cache) evictLRU() {
	victim := c.tail
	if victim == nil {
		return
	}
	c.unlink(victim)
	// Remove from the bucket chain.
	if head := c.m[victim.hash]; head == victim {
		if victim.chain == nil {
			delete(c.m, victim.hash)
		} else {
			c.m[victim.hash] = victim.chain
		}
	} else {
		for e := head; e != nil; e = e.chain {
			if e.chain == victim {
				e.chain = victim.chain
				break
			}
		}
	}
	victim.chain = nil
	c.size--
	c.sumNodes -= int64(victim.nodes)
	c.evictions.Add(1)
}

// pushFront links e as most recently used. Caller holds c.mu.
func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds c.mu.
func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e most recently used. Caller holds c.mu.
func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
