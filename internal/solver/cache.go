package solver

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// Cache memoizes Solve results across Solver instances. The per-race
// classification engine gives every worker its own Solver (statistics
// stay per-race) but shares one Cache per analysis run: alternate
// executions of one race, and the multi-path explorations of different
// races over the same trace, re-issue large numbers of structurally
// identical queries, and the cache answers repeats without re-searching.
//
// Keys are the canonical form of a query: the flattened conjunct list
// (top-level ANDs split, constant-true conjuncts dropped — exactly the
// normalization Solve itself applies) rendered in order, plus the
// concolic hints of the variables occurring in the constraints. A hit is
// therefore guaranteed to reproduce what Solve would compute for that
// flat form: Solve is deterministic given (flat, hints, options), so
// cached answers are byte-identical to recomputed ones and the engine's
// verdicts cannot depend on cache warmth. Conjunct order is preserved in
// the key rather than sorted — two orderings of the same conjunct set
// are distinct computations, and collapsing them could make a cached run
// diverge from an uncached one.
//
// A Cache must only be shared between Solvers built with the same
// Options (the engine derives every worker's solver from one configuration).
//
// Cache is safe for concurrent use; hit/miss statistics are atomic.
type Cache struct {
	mu  sync.RWMutex
	m   map[string]cacheEntry
	max int

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	model expr.Assignment // nil unless res == Sat
	res   Result
}

// DefaultCacheSize bounds a cache built with NewCache(0).
const DefaultCacheSize = 8192

// NewCache returns a cache bounded to max entries (<= 0 means
// DefaultCacheSize). When full, new results are simply not inserted;
// existing entries keep answering.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{m: make(map[string]cacheEntry), max: max}
}

// Len returns the number of memoized queries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Hits returns the number of lookups answered from the cache.
func (c *Cache) Hits() int { return int(c.hits.Load()) }

// Misses returns the number of lookups that required a fresh search.
func (c *Cache) Misses() int { return int(c.misses.Load()) }

// key renders the canonical form of a query: the ordered flat conjuncts
// and the hints of exactly the variables they mention (names sorted, so
// the rendering does not depend on map iteration order).
func cacheKey(flat []expr.Expr, names []string, hints expr.Assignment) string {
	var b strings.Builder
	for _, e := range flat {
		b.WriteString(e.String())
		b.WriteByte('&')
	}
	b.WriteByte('|')
	if !sort.StringsAreSorted(names) {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	var buf [20]byte
	for _, n := range names {
		b.WriteString(n)
		if v, ok := hints[n]; ok {
			b.WriteByte('=')
			b.Write(strconv.AppendInt(buf[:0], v, 10))
		}
		b.WriteByte(';')
	}
	return b.String()
}

// get looks up a memoized result. The returned model is a private copy.
func (c *Cache) get(key string) (expr.Assignment, Result, bool) {
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, 0, false
	}
	c.hits.Add(1)
	var model expr.Assignment
	if e.model != nil {
		model = make(expr.Assignment, len(e.model))
		for k, v := range e.model {
			model[k] = v
		}
	}
	return model, e.res, true
}

// put memoizes a result. The model is copied; callers may keep mutating
// their own instance.
func (c *Cache) put(key string, model expr.Assignment, res Result) {
	var stored expr.Assignment
	if model != nil {
		stored = make(expr.Assignment, len(model))
		for k, v := range model {
			stored[k] = v
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return
	}
	if len(c.m) >= c.max {
		return
	}
	c.m[key] = cacheEntry{model: stored, res: res}
}
