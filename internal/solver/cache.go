package solver

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
)

// Cache memoizes Solve results across Solver instances. The per-race
// classification engine gives every worker its own Solver (statistics
// stay per-race) but shares one Cache per analysis run: alternate
// executions of one race, and the multi-path explorations of different
// races over the same trace, re-issue large numbers of structurally
// identical queries, and the cache answers repeats without re-searching.
//
// Keys are the canonical form of a query: the flattened conjunct list
// (top-level ANDs split, constant-true conjuncts dropped — exactly the
// normalization Solve itself applies) plus the concolic hints of the
// variables occurring in the constraints. The key is a 64-bit structural
// hash folded from the conjuncts' memoized hashes (expr.Hash) and the
// sorted hint bindings — no string rendering, no allocation. A hash
// match alone is never trusted: candidate entries are verified conjunct
// by conjunct with expr.Equal (cheap: interned and DAG-shared nodes
// compare by pointer) and binding by binding, so a hit is guaranteed to
// be the exact query and reproduces what Solve would compute for that
// flat form. Solve is deterministic given (flat, hints, options), so
// cached answers are byte-identical to recomputed ones and the engine's
// verdicts cannot depend on cache warmth. Conjunct order is hashed and
// verified in order rather than sorted — two orderings of the same
// conjunct set are distinct computations, and collapsing them could make
// a cached run diverge from an uncached one.
//
// When full the cache evicts the least-recently-used entry instead of
// refusing the insert, so long traces whose query population drifts keep
// hitting on the current working set. Eviction only discards memoized
// time — an evicted query is simply re-searched, deterministically — so
// it can never change a verdict.
//
// A Cache must only be shared between Solvers built with the same
// Options (the engine derives every worker's solver from one configuration).
//
// Cache is safe for concurrent use; hit/miss/eviction statistics are
// atomic.
type Cache struct {
	mu   sync.Mutex
	m    map[uint64]*cacheEntry // bucket heads, chained on hash collision
	size int
	max  int

	// LRU list: head is most recently used, tail is next to evict.
	head, tail *cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// hintBinding is one variable's concolic hint as captured in a key:
// bound reports whether the hint assignment contained the variable at
// all (an unbound variable is a different query than one hinted to any
// value).
type hintBinding struct {
	name  string
	val   int64
	bound bool
}

type cacheEntry struct {
	hash  uint64
	flat  []expr.Expr // the exact flattened conjuncts, in order
	binds []hintBinding
	model expr.Assignment // nil unless res == Sat
	res   Result

	chain      *cacheEntry // next entry with the same hash bucket
	prev, next *cacheEntry // LRU list
}

// DefaultCacheSize bounds a cache built with NewCache(0).
const DefaultCacheSize = 8192

// NewCache returns a cache bounded to max entries (<= 0 means
// DefaultCacheSize). When full, inserting evicts the least-recently-used
// entry.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{m: make(map[uint64]*cacheEntry), max: max}
}

// Len returns the number of memoized queries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Hits returns the number of lookups answered from the cache.
func (c *Cache) Hits() int { return int(c.hits.Load()) }

// Misses returns the number of lookups that required a fresh search.
func (c *Cache) Misses() int { return int(c.misses.Load()) }

// Evictions returns how many memoized queries were discarded to make
// room for new ones.
func (c *Cache) Evictions() int { return int(c.evictions.Load()) }

// queryHash folds the canonical form of a query into the 64-bit cache
// key: the ordered flat conjuncts' structural hashes and the hints of
// exactly the variables they mention. names must be sorted (Solve sorts
// its inventory), so the fold does not depend on map iteration order.
// The function allocates nothing; a regression guard in cache_test.go
// holds it to that.
func queryHash(flat []expr.Expr, names []string, hints expr.Assignment) uint64 {
	h := expr.HashList(flat)
	for _, n := range names {
		h = expr.Mix64(h ^ expr.HashString(n))
		if v, ok := hints[n]; ok {
			h = expr.Mix64(h ^ uint64(v) ^ 0x9e3779b97f4a7c15)
		} else {
			h = expr.Mix64(h ^ 0x8ebc6af09c88c6e3)
		}
	}
	return h
}

// matches verifies that an entry memoizes exactly this query: same
// conjuncts in the same order, same hint bindings. Hash collisions make
// this necessary for correctness; structural sharing makes it cheap.
func (e *cacheEntry) matches(flat []expr.Expr, names []string, hints expr.Assignment) bool {
	if len(e.flat) != len(flat) || len(e.binds) != len(names) {
		return false
	}
	for i, b := range e.binds {
		if b.name != names[i] {
			return false
		}
		v, ok := hints[b.name]
		if ok != b.bound || (ok && v != b.val) {
			return false
		}
	}
	for i, q := range e.flat {
		if !expr.Equal(q, flat[i]) {
			return false
		}
	}
	return true
}

// get looks up a memoized result and marks the entry most recently used.
// The returned model is a private copy.
func (c *Cache) get(hash uint64, flat []expr.Expr, names []string, hints expr.Assignment) (expr.Assignment, Result, bool) {
	c.mu.Lock()
	var e *cacheEntry
	for e = c.m[hash]; e != nil; e = e.chain {
		if e.matches(flat, names, hints) {
			break
		}
	}
	if e == nil {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, 0, false
	}
	c.moveToFront(e)
	model := e.model
	res := e.res
	c.mu.Unlock()

	c.hits.Add(1)
	var out expr.Assignment
	if model != nil {
		out = make(expr.Assignment, len(model))
		for k, v := range model {
			out[k] = v
		}
	}
	return out, res, true
}

// put memoizes a result. flat and names are retained (Solve builds both
// fresh per query); the model is copied, so callers may keep mutating
// their own instance.
func (c *Cache) put(hash uint64, flat []expr.Expr, names []string, hints expr.Assignment, model expr.Assignment, res Result) {
	var stored expr.Assignment
	if model != nil {
		stored = make(expr.Assignment, len(model))
		for k, v := range model {
			stored[k] = v
		}
	}
	binds := make([]hintBinding, len(names))
	for i, n := range names {
		v, ok := hints[n]
		binds[i] = hintBinding{name: n, val: v, bound: ok}
	}
	e := &cacheEntry{hash: hash, flat: flat, binds: binds, model: stored, res: res}

	c.mu.Lock()
	defer c.mu.Unlock()
	for dup := c.m[hash]; dup != nil; dup = dup.chain {
		if dup.matches(flat, names, hints) {
			return
		}
	}
	if c.size >= c.max {
		c.evictLRU()
	}
	e.chain = c.m[hash]
	c.m[hash] = e
	c.pushFront(e)
	c.size++
}

// evictLRU drops the least-recently-used entry. Caller holds c.mu.
func (c *Cache) evictLRU() {
	victim := c.tail
	if victim == nil {
		return
	}
	c.unlink(victim)
	// Remove from the bucket chain.
	if head := c.m[victim.hash]; head == victim {
		if victim.chain == nil {
			delete(c.m, victim.hash)
		} else {
			c.m[victim.hash] = victim.chain
		}
	} else {
		for e := head; e != nil; e = e.chain {
			if e.chain == victim {
				e.chain = victim.chain
				break
			}
		}
	}
	victim.chain = nil
	c.size--
	c.evictions.Add(1)
}

// pushFront links e as most recently used. Caller holds c.mu.
func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds c.mu.
func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e most recently used. Caller holds c.mu.
func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
