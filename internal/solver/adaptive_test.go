package solver

import (
	"fmt"
	"testing"

	"repro/internal/expr"
)

// adaptiveQuery builds a distinct single-variable query (x == k) along
// with the canonical pieces put/get expect.
func adaptiveQuery(k int64) (hash uint64, flat []expr.Expr, names []string) {
	q := expr.Eq(expr.NewSym(fmt.Sprintf("x%d", k)), expr.NewConst(k))
	flat = []expr.Expr{q}
	names = []string{fmt.Sprintf("x%d", k)}
	return queryHash(flat, names, nil), flat, names
}

// TestFixedCapNeverGrows pins the historical contract: an explicit
// positive max is a hard bound — no matter how valuable the entries
// look, the cache evicts instead of resizing.
func TestFixedCapNeverGrows(t *testing.T) {
	c := NewCache(2)
	// Manufacture a perfect hit rate over expensive entries.
	for k := int64(0); k < 2; k++ {
		h, flat, names := adaptiveQuery(k)
		c.put(h, flat, names, nil, nil, Unsat, 10_000)
		for i := 0; i < 50; i++ {
			if _, _, hit := c.get(h, flat, names, nil); !hit {
				t.Fatalf("expected hit for query %d", k)
			}
		}
	}
	for k := int64(2); k < 10; k++ {
		h, flat, names := adaptiveQuery(k)
		c.put(h, flat, names, nil, nil, Unsat, 10_000)
	}
	if got := c.Cap(); got != 2 {
		t.Fatalf("fixed cache grew: cap = %d, want 2", got)
	}
	if got := c.Resizes(); got != 0 {
		t.Fatalf("fixed cache recorded %d resizes, want 0", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("fixed cache holds %d entries, want 2", got)
	}
}

// TestAdaptiveCacheGrowsUnderHitPressure: when entries are expensive to
// recompute and the hit rate is high, a full insert doubles the cap
// instead of evicting, up to the ceiling.
func TestAdaptiveCacheGrowsUnderHitPressure(t *testing.T) {
	c := NewAdaptiveCache(2, 8)
	for k := int64(0); k < 2; k++ {
		h, flat, names := adaptiveQuery(k)
		c.put(h, flat, names, nil, nil, Unsat, 10_000)
		for i := 0; i < 50; i++ {
			if _, _, hit := c.get(h, flat, names, nil); !hit {
				t.Fatalf("expected hit for query %d", k)
			}
		}
	}
	// Inserting at capacity with hitRate≈1 and avgNodes=10000 ≫
	// entryCostNodes must grow, not evict.
	for k := int64(2); k < 20; k++ {
		h, flat, names := adaptiveQuery(k)
		c.put(h, flat, names, nil, nil, Unsat, 10_000)
	}
	if got := c.Cap(); got != 8 {
		t.Fatalf("adaptive cap = %d, want ceiling 8", got)
	}
	if got := c.Resizes(); got != 2 {
		t.Fatalf("resizes = %d, want 2 (2→4→8)", got)
	}
	// At the ceiling the cache is fixed again: evictions resume.
	if got := c.Evictions(); got == 0 {
		t.Fatalf("expected evictions after hitting the ceiling, got 0")
	}
	if got := c.Len(); got != 8 {
		t.Fatalf("len = %d, want 8", got)
	}
}

// TestAdaptiveCacheStaysSmallWithoutHits: entries that are cheap to
// recompute and never re-queried do not justify growth — the cache
// evicts at its initial size.
func TestAdaptiveCacheStaysSmallWithoutHits(t *testing.T) {
	c := NewAdaptiveCache(2, 64)
	for k := int64(0); k < 10; k++ {
		h, flat, names := adaptiveQuery(k)
		// A miss per insert keeps the hit rate at zero.
		c.get(h, flat, names, nil)
		c.put(h, flat, names, nil, nil, Unsat, 3)
	}
	if got := c.Cap(); got != 2 {
		t.Fatalf("hit-less adaptive cache grew: cap = %d, want 2", got)
	}
	if got := c.Resizes(); got != 0 {
		t.Fatalf("resizes = %d, want 0", got)
	}
	if got := c.Evictions(); got != 8 {
		t.Fatalf("evictions = %d, want 8", got)
	}
}
