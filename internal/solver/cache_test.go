package solver

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/expr"
)

func x() expr.Expr        { return expr.NewSym("x") }
func c(v int64) expr.Expr { return expr.NewConst(v) }

func TestCacheHitReturnsIdenticalAnswer(t *testing.T) {
	cache := NewCache(0)
	q := []expr.Expr{expr.Gt(x(), c(3)), expr.Lt(x(), c(10))}
	hints := expr.Assignment{"x": 5}

	fresh := New(Options{})
	m1, r1 := fresh.Solve(q, hints)

	s := New(Options{})
	s.Cache = cache
	m2, r2 := s.Solve(q, hints)
	m3, r3 := s.Solve(q, hints)

	if r1 != r2 || r2 != r3 {
		t.Fatalf("results differ: %v %v %v", r1, r2, r3)
	}
	if !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(m2, m3) {
		t.Fatalf("models differ: %v %v %v", m1, m2, m3)
	}
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", cache.Hits(), cache.Misses())
	}
	if s.CacheHits() != 1 {
		t.Errorf("solver-local cache hits = %d, want 1", s.CacheHits())
	}
	// The cached model is a private copy: mutating one answer must not
	// poison the next.
	m2["x"] = -999
	m4, _ := s.Solve(q, hints)
	if m4["x"] == -999 {
		t.Fatal("cached model aliased into caller results")
	}
}

func TestCacheKeyDistinguishesHints(t *testing.T) {
	cache := NewCache(0)
	s := New(Options{})
	s.Cache = cache
	q := []expr.Expr{expr.Gt(x(), c(0)), expr.Lt(x(), c(100))}

	m1, _ := s.Solve(q, expr.Assignment{"x": 7})
	m2, _ := s.Solve(q, expr.Assignment{"x": 42})
	if cache.Hits() != 0 {
		t.Errorf("different hints must not share a cache entry (hits = %d)", cache.Hits())
	}
	if m1["x"] != 7 || m2["x"] != 42 {
		t.Errorf("hint-led models wrong: %v %v", m1, m2)
	}
	// Hints of variables absent from the constraints are irrelevant and
	// must not fragment the cache.
	s.Solve(q, expr.Assignment{"x": 7, "unrelated": 1})
	if cache.Hits() != 1 {
		t.Errorf("irrelevant hint fragmented the cache (hits = %d)", cache.Hits())
	}
}

func TestCacheUnsatAndShared(t *testing.T) {
	cache := NewCache(0)
	q := []expr.Expr{expr.Gt(x(), c(5)), expr.Lt(x(), c(3))}

	var wg sync.WaitGroup
	results := make([]Result, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := New(Options{})
			s.Cache = cache
			_, results[i] = s.Solve(q, nil)
		}(i)
	}
	wg.Wait()
	for _, r := range results {
		if r != Unsat {
			t.Fatalf("expected Unsat, got %v", r)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache len = %d, want 1", cache.Len())
	}
}

func TestCacheSkipsInterruptedQueries(t *testing.T) {
	cache := NewCache(0)
	s := New(Options{})
	s.Cache = cache
	s.Interrupt = func() bool { return true }
	// A two-variable nonlinear query with no candidate solution keeps the
	// backtracking search running long enough to hit the interrupt poll.
	y := expr.NewSym("y")
	q := []expr.Expr{expr.Eq(expr.NewBinary(expr.OpMul, x(), y), c((1<<40)+3))}
	if _, r := s.Solve(q, nil); r != Unknown {
		t.Fatalf("interrupted query = %v, want Unknown", r)
	}
	if cache.Len() != 0 {
		t.Fatal("interrupted (cancelled) result was cached")
	}

	// The same query on a healthy solver must compute fresh and cache.
	s2 := New(Options{})
	s2.Cache = cache
	if _, r := s2.Solve(q, nil); r == Sat {
		// fine either way; the point is it ran
		_ = r
	}
	if cache.Len() != 1 {
		t.Fatalf("healthy re-run not cached (len = %d)", cache.Len())
	}
}

func TestCacheCapacity(t *testing.T) {
	cache := NewCache(2)
	s := New(Options{})
	s.Cache = cache
	for i := 0; i < 5; i++ {
		s.Solve([]expr.Expr{expr.Eq(x(), c(int64(i)))}, nil)
	}
	if cache.Len() != 2 {
		t.Errorf("cache len = %d, want cap 2", cache.Len())
	}
	if cache.Evictions() != 3 {
		t.Errorf("evictions = %d, want 3", cache.Evictions())
	}
	// LRU: the most recent queries survive, the oldest were evicted.
	h0 := cache.Hits()
	s.Solve([]expr.Expr{expr.Eq(x(), c(4))}, nil)
	if cache.Hits() != h0+1 {
		t.Error("most recent entry was evicted")
	}
	m0 := cache.Misses()
	s.Solve([]expr.Expr{expr.Eq(x(), c(0))}, nil)
	if cache.Misses() != m0+1 {
		t.Error("least recently used entry unexpectedly survived")
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	cache := NewCache(2)
	s := New(Options{})
	s.Cache = cache
	qa := []expr.Expr{expr.Eq(x(), c(1))}
	qb := []expr.Expr{expr.Eq(x(), c(2))}
	qc := []expr.Expr{expr.Eq(x(), c(3))}
	s.Solve(qa, nil)
	s.Solve(qb, nil)
	s.Solve(qa, nil) // touch qa: qb becomes least recently used
	s.Solve(qc, nil) // evicts qb
	h0 := cache.Hits()
	s.Solve(qa, nil)
	if cache.Hits() != h0+1 {
		t.Error("touched entry was evicted despite being recently used")
	}
	m0 := cache.Misses()
	s.Solve(qb, nil)
	if cache.Misses() != m0+1 {
		t.Error("untouched entry survived over the touched one")
	}
}

// TestQueryHashAllocFree is the regression guard of the key-building hot
// path: rendering keys must never return to allocating (the old
// implementation built a string per lookup).
func TestQueryHashAllocFree(t *testing.T) {
	flat := []expr.Expr{
		expr.Gt(x(), c(3)),
		expr.Lt(expr.Add(x(), expr.NewSym("y")), c(4000)),
		expr.Ne(expr.NewSym("y"), c(0)),
	}
	names := []string{"x", "y"}
	hints := expr.Assignment{"x": 5, "y": 7}
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		sink += queryHash(flat, names, hints)
	})
	if allocs != 0 {
		t.Errorf("queryHash allocates %v times per call, want 0", allocs)
	}
	_ = sink
}

func TestCacheKeyCanonicalOrder(t *testing.T) {
	// Nested top-level ANDs flatten to the same conjunct list as the
	// split form, so the two spellings share one entry.
	cache := NewCache(0)
	s := New(Options{})
	s.Cache = cache
	a, b := expr.Gt(x(), c(1)), expr.Lt(x(), c(9))
	s.Solve([]expr.Expr{expr.NewBinary(expr.OpLAnd, a, b)}, nil)
	s.Solve([]expr.Expr{a, b}, nil)
	if cache.Hits() != 1 || cache.Len() != 1 {
		t.Errorf("flattened forms did not share an entry: hits=%d len=%d", cache.Hits(), cache.Len())
	}
	// Reversed conjunct order is a different computation and must not
	// collapse onto the same entry.
	s.Solve([]expr.Expr{b, a}, nil)
	if cache.Len() != 2 {
		t.Errorf("order-reversed query unexpectedly shared an entry (len=%d)", cache.Len())
	}
}

func BenchmarkSolveCached(b *testing.B) {
	qs := make([][]expr.Expr, 16)
	for i := range qs {
		qs[i] = []expr.Expr{expr.Gt(x(), c(int64(i))), expr.Lt(x(), c(int64(i)+50))}
	}
	b.Run("cold", func(b *testing.B) {
		s := New(Options{})
		for i := 0; i < b.N; i++ {
			s.Solve(qs[i%len(qs)], nil)
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := New(Options{})
		s.Cache = NewCache(0)
		for i := 0; i < b.N; i++ {
			s.Solve(qs[i%len(qs)], nil)
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debugging edits
