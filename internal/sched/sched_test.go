package sched

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-3) < 1 {
		t.Fatalf("Workers(-3) = %d, want >= 1", Workers(-3))
	}
	if Workers(1) != 1 || Workers(7) != 7 {
		t.Fatalf("Workers must pass explicit requests through")
	}
}

func TestMapCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 1000
		hits := make([]atomic.Int64, n)
		Map(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestMapSequentialRunsInOrder(t *testing.T) {
	var order []int
	Map(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential Map out of order: %v", order)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	Map(4, 0, func(i int) { t.Fatal("fn called for empty Map") })
}

func TestCounter(t *testing.T) {
	c := NewCounter(3)
	for i := 0; i < 3; i++ {
		if !c.TryAcquire() {
			t.Fatalf("acquire %d failed", i)
		}
	}
	if c.TryAcquire() {
		t.Fatal("acquire beyond limit succeeded")
	}
	if c.Used() != 3 || c.Remaining() != 0 || c.Limit() != 3 {
		t.Fatalf("used=%d remaining=%d limit=%d", c.Used(), c.Remaining(), c.Limit())
	}
}

func TestCounterConcurrent(t *testing.T) {
	const limit, attempts = 100, 1000
	c := NewCounter(limit)
	var got atomic.Int64
	Map(8, attempts, func(int) {
		if c.TryAcquire() {
			got.Add(1)
		}
	})
	if got.Load() != limit {
		t.Fatalf("concurrent acquires = %d, want %d", got.Load(), limit)
	}
}
