// Package sched provides the scheduling primitives behind Portend's
// parallel exploration and classification engine: a bounded worker pool
// that fans indexed work items out across goroutines, and a shared
// budget counter safe for concurrent use.
//
// The per-race analysis of §3.3–§3.4 is embarrassingly parallel — each
// (race, primary path, alternate schedule) triple is an independent
// replay — but Portend's verdicts must not depend on scheduling luck.
// The pool therefore never communicates results through channels or
// completion order: callers give every work item a fixed index, workers
// write into caller-owned index-addressed slots, and the caller merges
// the slots in index order. Determinism is a property of the merge, not
// of the execution.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism request: n < 1 (the "auto" default)
// becomes GOMAXPROCS, anything else is returned unchanged. A result of 1
// means sequential execution on the caller's goroutine.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns once all calls have completed. Items are claimed from a shared
// atomic cursor, so the pool stays busy even when item costs are skewed
// (one slow race next to many cheap ones).
//
// With workers <= 1 (or a single item) the calls run inline on the
// caller's goroutine in index order — the sequential engine and the
// parallel engine share one code path, which is what makes
// "-parallel 1 and -parallel N agree" a meaningful determinism check.
//
// fn must write its result into a caller-owned slot addressed by i; it
// must not touch another item's slot.
func Map(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Counter is a shared consumable budget (e.g. the fork budget of the
// multi-path exploration engine): workers TryAcquire units until the
// limit is exhausted. The zero value is an empty budget; use NewCounter.
type Counter struct {
	limit int64
	used  atomic.Int64
}

// NewCounter returns a counter with the given number of units.
func NewCounter(limit int) *Counter {
	return &Counter{limit: int64(limit)}
}

// TryAcquire consumes one unit, reporting false when the budget is
// already exhausted. It is safe for concurrent use.
func (c *Counter) TryAcquire() bool {
	for {
		u := c.used.Load()
		if u >= c.limit {
			return false
		}
		if c.used.CompareAndSwap(u, u+1) {
			return true
		}
	}
}

// Used returns how many units have been consumed.
func (c *Counter) Used() int { return int(c.used.Load()) }

// Remaining returns how many units are left.
func (c *Counter) Remaining() int {
	r := int(c.limit - c.used.Load())
	if r < 0 {
		return 0
	}
	return r
}

// Limit returns the counter's total budget.
func (c *Counter) Limit() int { return int(c.limit) }
