// Package pstate provides the persistent (copy-on-write) containers the
// VM's O(1) state snapshots are built on.
//
// Vector is a bit-partitioned radix trie in the HAMT family: a 32-way
// tree keyed by the integer index's bit groups, so lookups and updates
// touch O(log32 n) nodes and a persistent update path-copies only the
// spine from root to the changed slot, structurally sharing everything
// else. On top of the purely persistent shape sits epoch transience:
// every node carries the epoch stamp of the state generation that
// allocated it, and an update performed under the same epoch mutates the
// node in place instead of copying. A state therefore pays the path-copy
// for a slot's spine at most once per epoch — the "write on first touch
// per epoch" discipline — and a tight loop of writes between two
// snapshots runs allocation-free after the first touch.
//
// Epoch protocol (owned by the caller, see internal/vm):
//   - every live state generation has a unique epoch, never reused;
//   - snapshotting a state gives BOTH resulting handles fresh epochs
//     while the shared nodes keep their old stamps, so the first write on
//     either side copies instead of scribbling on shared structure;
//   - nodes are only ever mutated under the epoch that allocated them,
//     so a node reachable from two handles is immutable from both.
//
// The zero Vector is an empty vector and is ready to use. Vector is a
// small value (three words); copying the struct IS the snapshot.
package pstate

const (
	bits  = 5
	width = 1 << bits // 32-way fan-out
	mask  = width - 1
)

// node is one trie node. Interior nodes (reached while shift > 0) use
// kids; leaf nodes (shift == 0) use vals. A single node type keeps the
// path-copy generic and monomorphic; the unused half of a node is nil.
type node[T any] struct {
	stamp uint64 // epoch that allocated this node; in-place writes only under it
	kids  []*node[T]
	vals  []T
}

// Vector is a persistent, epoch-transient growable array of T. The zero
// value is empty. Methods that write take the caller's epoch; methods
// that read never allocate.
type Vector[T any] struct {
	n     int
	shift uint // bits consumed below the root; 0 means the root is a leaf
	root  *node[T]
}

// Len returns the number of elements.
func (v *Vector[T]) Len() int { return v.n }

// Get returns the element at index i. It panics if i is out of range,
// mirroring slice indexing.
func (v *Vector[T]) Get(i int) T {
	if i < 0 || i >= v.n {
		panic("pstate: Vector index out of range")
	}
	nd := v.root
	for sh := v.shift; sh > 0; sh -= bits {
		nd = nd.kids[(i>>sh)&mask]
	}
	return nd.vals[i&mask]
}

// privatize returns nd if it is already owned by epoch, or a copy
// stamped with epoch otherwise (allocating the copy and fresh backing
// for whichever half the node uses).
func privatize[T any](nd *node[T], epoch uint64) *node[T] {
	if nd != nil && nd.stamp == epoch {
		return nd
	}
	c := &node[T]{stamp: epoch}
	if nd != nil {
		if nd.kids != nil {
			c.kids = make([]*node[T], width)
			copy(c.kids, nd.kids)
		}
		if nd.vals != nil {
			c.vals = make([]T, width)
			copy(c.vals, nd.vals)
		}
	}
	return c
}

// set path-copies (or reuses, under matching epoch stamps) the spine for
// index i and stores x at the leaf.
func set[T any](nd *node[T], shift uint, i int, x T, epoch uint64) *node[T] {
	nd = privatize(nd, epoch)
	if shift == 0 {
		if nd.vals == nil {
			nd.vals = make([]T, width)
		}
		nd.vals[i&mask] = x
		return nd
	}
	if nd.kids == nil {
		nd.kids = make([]*node[T], width)
	}
	slot := (i >> shift) & mask
	nd.kids[slot] = set(nd.kids[slot], shift-bits, i, x, epoch)
	return nd
}

// Set stores x at index i. Nodes stamped with epoch are written in
// place; all others are path-copied, leaving previous snapshots intact.
// It panics if i is out of range.
func (v *Vector[T]) Set(i int, x T, epoch uint64) {
	if i < 0 || i >= v.n {
		panic("pstate: Vector index out of range")
	}
	v.root = set(v.root, v.shift, i, x, epoch)
}

// Append adds x at index Len(), growing the trie a level when the
// current root is full.
func (v *Vector[T]) Append(x T, epoch uint64) {
	if v.root != nil && v.n >= width<<v.shift {
		// Root is full: push it down under a new root.
		nr := &node[T]{stamp: epoch, kids: make([]*node[T], width)}
		nr.kids[0] = v.root
		v.root, v.shift = nr, v.shift+bits
	}
	v.n++
	v.root = set(v.root, v.shift, v.n-1, x, epoch)
}

// Range calls f on each element in index order, stopping early if f
// returns false. It reads the trie directly and never allocates.
func (v *Vector[T]) Range(f func(i int, x T) bool) {
	if v.root == nil {
		return
	}
	walk(v.root, v.shift, 0, v.n, f)
}

func walk[T any](nd *node[T], shift uint, base, n int, f func(int, T) bool) bool {
	if nd == nil {
		return true
	}
	if shift == 0 {
		for j, x := range nd.vals {
			i := base + j
			if i >= n {
				return true
			}
			if !f(i, x) {
				return false
			}
		}
		return true
	}
	span := 1 << shift
	for j, kid := range nd.kids {
		lo := base + j*span
		if lo >= n {
			return true
		}
		if !walk(kid, shift-bits, lo, n, f) {
			return false
		}
	}
	return true
}
