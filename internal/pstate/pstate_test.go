package pstate

import (
	"math/rand"
	"testing"
)

// TestVectorBasics exercises Append/Get/Len across the trie's growth
// boundaries (leaf root → one interior level → two), under one epoch.
func TestVectorBasics(t *testing.T) {
	var v Vector[int]
	if v.Len() != 0 {
		t.Fatalf("zero Vector has Len %d", v.Len())
	}
	const n = width*width + 3*width + 7 // forces two root push-downs
	for i := 0; i < n; i++ {
		v.Append(i*10, 1)
		if v.Len() != i+1 {
			t.Fatalf("Len after %d appends = %d", i+1, v.Len())
		}
	}
	for i := 0; i < n; i++ {
		if got := v.Get(i); got != i*10 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*10)
		}
	}
}

// TestVectorSet overwrites random slots and checks only they changed.
func TestVectorSet(t *testing.T) {
	var v Vector[int]
	const n = 5 * width
	for i := 0; i < n; i++ {
		v.Append(i, 1)
	}
	want := make([]int, n)
	for i := range want {
		want[i] = i
	}
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < 200; k++ {
		i := rng.Intn(n)
		want[i] = -k
		v.Set(i, -k, 1)
	}
	for i := 0; i < n; i++ {
		if got := v.Get(i); got != want[i] {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want[i])
		}
	}
}

// TestVectorRange checks index order, completeness, and early stop.
func TestVectorRange(t *testing.T) {
	var v Vector[int]
	const n = width*2 + 5
	for i := 0; i < n; i++ {
		v.Append(i, 1)
	}
	next := 0
	v.Range(func(i, x int) bool {
		if i != next || x != i {
			t.Fatalf("Range visited (%d, %d), want (%d, %d)", i, x, next, next)
		}
		next++
		return true
	})
	if next != n {
		t.Fatalf("Range visited %d elements, want %d", next, n)
	}
	seen := 0
	v.Range(func(i, x int) bool {
		seen++
		return i < 10
	})
	if seen != 11 { // f returns false on the 11th element (i == 10)
		t.Fatalf("early-stop Range visited %d elements, want 11", seen)
	}
	var empty Vector[int]
	empty.Range(func(int, int) bool { t.Fatal("Range on empty vector called f"); return false })
}

// TestVectorSnapshotIsolation is the persistence contract: copying the
// struct is the snapshot, and writes under fresh epochs on either side
// must not show through the other — in both directions, including
// appends past the snapshot's length.
func TestVectorSnapshotIsolation(t *testing.T) {
	var parent Vector[int]
	const n = width * 3
	for i := 0; i < n; i++ {
		parent.Append(i, 1)
	}
	child := parent // the snapshot

	// Writes on the parent under a fresh epoch.
	for i := 0; i < n; i += 7 {
		parent.Set(i, 1000+i, 2)
	}
	parent.Append(7777, 2)

	// Writes on the child under another fresh epoch.
	for i := 0; i < n; i += 5 {
		child.Set(i, 2000+i, 3)
	}

	for i := 0; i < n; i++ {
		wantP := i
		if i%7 == 0 {
			wantP = 1000 + i
		}
		if got := parent.Get(i); got != wantP {
			t.Fatalf("parent.Get(%d) = %d, want %d", i, got, wantP)
		}
		wantC := i
		if i%5 == 0 {
			wantC = 2000 + i
		}
		if got := child.Get(i); got != wantC {
			t.Fatalf("child.Get(%d) = %d, want %d", i, got, wantC)
		}
	}
	if parent.Len() != n+1 || parent.Get(n) != 7777 {
		t.Fatalf("parent append lost: len %d, last %d", parent.Len(), parent.Get(n))
	}
	if child.Len() != n {
		t.Fatalf("parent append leaked into child: len %d, want %d", child.Len(), n)
	}
}

// TestVectorEpochTransience pins the write-on-first-touch-per-epoch
// discipline: repeated writes under one epoch reuse the spine allocated
// by the first, so a write loop between snapshots is allocation-free
// after the first touch of each leaf.
func TestVectorEpochTransience(t *testing.T) {
	var v Vector[int]
	const n = width * 2
	for i := 0; i < n; i++ {
		v.Append(i, 1)
	}
	// First touch under epoch 2 privatizes the spine...
	v.Set(0, -1, 2)
	v.Set(n-1, -1, 2)
	// ...after which same-epoch writes must not allocate.
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < n; i++ {
			v.Set(i, i*3, 2)
		}
	})
	if allocs != 0 {
		t.Errorf("same-epoch write loop allocates %v times, want 0", allocs)
	}
	for i := 0; i < n; i++ {
		if got := v.Get(i); got != i*3 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*3)
		}
	}
}

// TestVectorManySnapshots interleaves snapshots and divergent writes
// across a chain of generations and verifies every generation still
// reads what it wrote — the multi-clone shape checkpoint stores produce.
func TestVectorManySnapshots(t *testing.T) {
	const n = width + 3
	var base Vector[int]
	for i := 0; i < n; i++ {
		base.Append(0, 1)
	}
	gens := make([]Vector[int], 10)
	for g := range gens {
		gens[g] = base // snapshot the same base ten times
		epoch := uint64(10 + g)
		for i := 0; i < n; i++ {
			gens[g].Set(i, (g+1)*100+i, epoch)
		}
	}
	for i := 0; i < n; i++ {
		if got := base.Get(i); got != 0 {
			t.Fatalf("base.Get(%d) = %d, want 0", i, got)
		}
	}
	for g := range gens {
		for i := 0; i < n; i++ {
			if got := gens[g].Get(i); got != (g+1)*100+i {
				t.Fatalf("gen %d Get(%d) = %d, want %d", g, i, got, (g+1)*100+i)
			}
		}
	}
}

// TestVectorPanics pins the slice-like bounds behavior.
func TestVectorPanics(t *testing.T) {
	var v Vector[int]
	v.Append(1, 1)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"get-negative", func() { v.Get(-1) }},
		{"get-past-end", func() { v.Get(1) }},
		{"set-negative", func() { v.Set(-1, 0, 1) }},
		{"set-past-end", func() { v.Set(1, 0, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f()
		})
	}
}
