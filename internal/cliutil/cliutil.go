// Package cliutil holds the small helpers shared by the portend, pilrun,
// and paper-eval commands: flag-value parsing, error exit, indentation,
// and the flags every tool registers identically. It exists so the
// commands stop carrying copy-pasted private versions of the same code.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated list of 64-bit integers ("1,2,3");
// the empty string parses to a nil slice, which consumers treat as
// "unset" (workload defaults apply).
func ParseInts(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Fatal prints "tool: err" to stderr and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Indent prefixes every line of s with pad (trailing newline trimmed).
func Indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}

// ParallelFlag registers the -parallel flag all three commands share,
// defaulting to GOMAXPROCS.
func ParallelFlag(usage string) *int {
	if usage == "" {
		usage = "classification worker-pool width (1 = sequential; verdicts are identical for every width)"
	}
	return flag.Int("parallel", runtime.GOMAXPROCS(0), usage)
}
