package cliutil

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in      string
		want    []int64
		wantErr bool
	}{
		{"", nil, false},
		{"1", []int64{1}, false},
		{"1,2,3", []int64{1, 2, 3}, false},
		{" 4 , -5 ", []int64{4, -5}, false},
		{"1,x", nil, true},
		{"1,,2", nil, true},
	}
	for _, tc := range cases {
		got, err := ParseInts(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseInts(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIndent(t *testing.T) {
	if got := Indent("a\nb\n", "  "); got != "  a\n  b" {
		t.Errorf("Indent = %q", got)
	}
}
