package sa

import "repro/internal/bytecode"

// The lockset domain is a pair of 64-bit masks per program point: locks
// certainly held (must, intersection over paths) and locks possibly held
// (may, union over paths). Transfer functions for straight-line code are
// gen/kill, so a whole function's entry→exit effect is expressible per
// bit as one of {always-held, pass-through, never-held} — the tfn form
// below — and those summaries compose and meet exactly. Programs with
// more than 64 mutexes degrade to the sound top: must = ∅, may = all.

// tfn is a per-bit transfer function f(x) = one | (x & id); bits in
// neither mask map to 0. one and id are disjoint by construction.
type tfn struct{ one, id uint64 }

func idTfn() tfn { return tfn{0, ^uint64(0)} }

func (t tfn) apply(x uint64) uint64 { return t.one | (x & t.id) }

// compose returns g∘f: first f, then g.
func compose(f, g tfn) tfn {
	return tfn{one: g.one | (f.one & g.id), id: f.id & g.id}
}

// meetMust is the pointwise AND of two transfers (per bit: 1∧x=x, 0∧_=0).
func meetMust(a, b tfn) tfn {
	return tfn{one: a.one & b.one, id: (a.one & b.id) | (a.id & b.one) | (a.id & b.id)}
}

// joinMay is the pointwise OR of two transfers.
func joinMay(a, b tfn) tfn {
	one := a.one | b.one
	return tfn{one: one, id: (a.id | b.id) &^ one}
}

// lockSum summarizes a function's entry→exit lockset effect.
type lockSum struct {
	must, may tfn
	returns   bool // has a reachable RET (given callee return gating)
}

func lockBit(a int64) (uint64, bool) {
	if a < 0 || a >= 64 {
		return 0, false
	}
	return uint64(1) << uint(a), true
}

// locksets runs the lockset phase: CALL-graph recursion detection,
// per-function summaries in callee-first order, then the interprocedural
// entry-context fixpoint producing per-pc must/may/reached.
func (a *analysis) locksets() {
	n := len(a.p.Funcs)
	a.lockTop = len(a.p.Mutexes) > 64
	a.recursive = make([]bool, n)
	a.summaries = make([]lockSum, n)
	a.noReturn = make([]bool, n)
	a.entryMust = make([]uint64, n)
	a.entryMay = make([]uint64, n)
	a.entrySeen = make([]bool, n)
	a.must = make([][]uint64, n)
	a.may = make([][]uint64, n)
	a.reached = make([][]bool, n)
	for f := 0; f < n; f++ {
		sz := len(a.p.Funcs[f].Code)
		a.must[f] = make([]uint64, sz)
		a.may[f] = make([]uint64, sz)
		a.reached[f] = make([]bool, sz)
	}

	a.findRecursion()
	a.computeSummaries()
	a.entryFixpoint()
}

// findRecursion marks functions on a CALL-edge cycle (SPAWN edges start a
// fresh thread with an empty lockset, so they never carry lock state and
// are not summary dependencies).
func (a *analysis) findRecursion() {
	n := len(a.p.Funcs)
	callees := make([][]int, n)
	for f := 0; f < n; f++ {
		for _, in := range a.p.Funcs[f].Code {
			if in.Op == bytecode.CALL {
				if c := int(in.A); c >= 0 && c < n {
					callees[f] = append(callees[f], c)
				}
			}
		}
	}
	// Iterative DFS with colors; a back edge to a gray node marks every
	// function on the stack cycle as recursive.
	const white, gray, black = 0, 1, 2
	color := make([]int, n)
	var stack []int
	onStack := make([]bool, n)
	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		type frame struct{ f, i int }
		frames := []frame{{root, 0}}
		color[root] = gray
		stack = append(stack[:0], root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.i < len(callees[fr.f]) {
				c := callees[fr.f][fr.i]
				fr.i++
				switch color[c] {
				case white:
					color[c] = gray
					frames = append(frames, frame{c, 0})
					stack = append(stack, c)
					onStack[c] = true
				case gray:
					// cycle: everything from c to the stack top
					for i := len(stack) - 1; i >= 0; i-- {
						a.recursive[stack[i]] = true
						if stack[i] == c {
							break
						}
					}
				}
				continue
			}
			color[fr.f] = black
			onStack[fr.f] = false
			stack = stack[:len(stack)-1]
			frames = frames[:len(frames)-1]
		}
	}
}

// computeSummaries fills a.summaries callee-first. Recursive functions
// get the degraded sound summary (must: nothing known, may: anything,
// assumed returning); everything else is exact gen/kill composition.
func (a *analysis) computeSummaries() {
	n := len(a.p.Funcs)
	done := make([]bool, n)
	var visit func(f int)
	visit = func(f int) {
		if done[f] {
			return
		}
		done[f] = true
		if a.recursive[f] {
			a.summaries[f] = lockSum{must: tfn{0, 0}, may: tfn{^uint64(0), 0}, returns: true}
			return
		}
		for _, in := range a.p.Funcs[f].Code {
			if in.Op == bytecode.CALL {
				if c := int(in.A); c >= 0 && c < n {
					visit(c)
				}
			}
		}
		a.summaries[f] = a.summarize(f)
		a.noReturn[f] = !a.summaries[f].returns
	}
	for f := 0; f < n; f++ {
		visit(f)
	}
}

// summarize computes one function's entry→exit transfer by propagating
// symbolic transfers over its CFG.
func (a *analysis) summarize(f int) lockSum {
	cfg := a.cfgs[f]
	sz := len(cfg.code)
	if sz == 0 {
		return lockSum{must: idTfn(), may: idTfn(), returns: true}
	}
	mustAt := make([]tfn, sz)
	mayAt := make([]tfn, sz)
	seen := make([]bool, sz)
	mustAt[0], mayAt[0], seen[0] = idTfn(), idTfn(), true
	work := []int{0}
	var exit lockSum
	push := func(pc int, m, y tfn) {
		if !seen[pc] {
			mustAt[pc], mayAt[pc], seen[pc] = m, y, true
			work = append(work, pc)
			return
		}
		nm, ny := meetMust(mustAt[pc], m), joinMay(mayAt[pc], y)
		if nm != mustAt[pc] || ny != mayAt[pc] {
			mustAt[pc], mayAt[pc] = nm, ny
			work = append(work, pc)
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := cfg.code[pc]
		m, y := mustAt[pc], mayAt[pc]
		switch in.Op {
		case bytecode.LOCK:
			if bit, ok := lockBit(in.A); ok {
				g := tfn{one: bit, id: ^bit}
				m, y = compose(m, g), compose(y, g)
			}
		case bytecode.UNLOCK:
			if bit, ok := lockBit(in.A); ok {
				g := tfn{one: 0, id: ^bit}
				m, y = compose(m, g), compose(y, g)
			}
		case bytecode.CALL:
			if c := int(in.A); c >= 0 && c < len(a.p.Funcs) {
				s := a.summaries[c]
				if !s.returns {
					continue // fallthrough unreachable
				}
				m, y = compose(m, s.must), compose(y, s.may)
			}
		case bytecode.RET:
			if !exit.returns {
				exit = lockSum{must: m, may: y, returns: true}
			} else {
				exit.must, exit.may = meetMust(exit.must, m), joinMay(exit.may, y)
			}
			continue
		}
		for _, s := range cfg.succs[pc] {
			push(s, m, y)
		}
	}
	if !exit.returns {
		return lockSum{must: tfn{0, 0}, may: tfn{0, 0}, returns: false}
	}
	return exit
}

// entryFixpoint propagates concrete entry locksets from the thread roots
// down the call graph, computing per-pc must/may/reached. Function entry
// contexts meet (AND) / join (OR) over all reached call sites; SPAWN
// targets enter with the empty lockset (a fresh thread holds nothing).
func (a *analysis) entryFixpoint() {
	n := len(a.p.Funcs)
	main := a.p.MainFunc
	if main < 0 || main >= n {
		return
	}
	inQ := make([]bool, n)
	queue := []int{main}
	a.entrySeen[main] = true
	inQ[main] = true
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		inQ[f] = false
		for _, c := range a.flowFn(f) {
			if !inQ[c] {
				inQ[c] = true
				queue = append(queue, c)
			}
		}
	}
	if a.lockTop {
		// Degrade to the sound top once reachability is known.
		for f := 0; f < n; f++ {
			for pc := range a.must[f] {
				a.must[f][pc] = 0
				a.may[f][pc] = ^uint64(0)
			}
		}
	}
}

// flowFn recomputes one function's per-pc lockset states from its current
// entry context, returning callees/spawnees whose entry context changed.
func (a *analysis) flowFn(f int) (changed []int) {
	cfg := a.cfgs[f]
	sz := len(cfg.code)
	if sz == 0 {
		return nil
	}
	must := make([]uint64, sz)
	may := make([]uint64, sz)
	seen := make([]bool, sz)
	must[0], may[0], seen[0] = a.entryMust[f], a.entryMay[f], true
	work := []int{0}
	push := func(pc int, m, y uint64) {
		if !seen[pc] {
			must[pc], may[pc], seen[pc] = m, y, true
			work = append(work, pc)
			return
		}
		nm, ny := must[pc]&m, may[pc]|y
		if nm != must[pc] || ny != may[pc] {
			must[pc], may[pc] = nm, ny
			work = append(work, pc)
		}
	}
	mark := func(c int, m, y uint64) {
		if contribOK := c >= 0 && c < len(a.p.Funcs); contribOK {
			if a.entryContribute(c, m, y) {
				changed = append(changed, c)
			}
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := cfg.code[pc]
		m, y := must[pc], may[pc]
		switch in.Op {
		case bytecode.LOCK:
			if bit, ok := lockBit(in.A); ok {
				m, y = m|bit, y|bit
			}
		case bytecode.UNLOCK:
			if bit, ok := lockBit(in.A); ok {
				m, y = m&^bit, y&^bit
			}
		case bytecode.SPAWN:
			mark(int(in.A), 0, 0)
		case bytecode.CALL:
			c := int(in.A)
			mark(c, m, y)
			if c >= 0 && c < len(a.p.Funcs) {
				s := a.summaries[c]
				if !s.returns {
					continue
				}
				m, y = s.must.apply(m), s.may.apply(y)
			}
		case bytecode.RET:
			continue
		}
		for _, s := range cfg.succs[pc] {
			push(s, m, y)
		}
	}
	copy(a.must[f], must)
	copy(a.may[f], may)
	copy(a.reached[f], seen)
	return changed
}

func (a *analysis) entryContribute(f int, must, may uint64) bool {
	if !a.entrySeen[f] {
		a.entrySeen[f] = true
		a.entryMust[f], a.entryMay[f] = must, may
		return true
	}
	nm, ny := a.entryMust[f]&must, a.entryMay[f]|may
	if nm == a.entryMust[f] && ny == a.entryMay[f] {
		return false
	}
	a.entryMust[f], a.entryMay[f] = nm, ny
	return true
}
