package sa

import "repro/internal/bytecode"

// The reach phase answers, for every (function, pc): from here, which
// shared-object classes can this activation (or anything it calls or
// spawns, transitively) still touch, and can it still reach a fork point
// with a possibly-symbolic operand? Reach is a may-analysis and
// over-approximates — CALL fallthrough is always included even for
// non-returning callees, which only widens the sets.
type reachSet struct {
	globals bits // global ids that may still be accessed
	heap    bool // a heap access (LOADH/STOREH/FREE) may still happen
	fork    bool // a tainted fork point (JZ/ASSERT/DIV/MOD) may still run
}

func (r *reachSet) union(o reachSet) bool {
	changed := r.globals.or(o.globals)
	if o.heap && !r.heap {
		r.heap = true
		changed = true
	}
	if o.fork && !r.fork {
		r.fork = true
		changed = true
	}
	return changed
}

// effect returns the direct contribution of one instruction.
func (a *analysis) effect(f, pc int) reachSet {
	in := a.cfgs[f].code[pc]
	r := reachSet{globals: newBits(len(a.p.Globals))}
	switch in.Op {
	case bytecode.LOADG, bytecode.STOREG, bytecode.LOADE, bytecode.STOREE:
		r.globals.set(int(in.A))
	case bytecode.LOADH, bytecode.STOREH, bytecode.FREE:
		r.heap = true
	case bytecode.JZ, bytecode.ASSERT, bytecode.DIV, bytecode.MOD:
		r.fork = a.forkTaint[f][pc]
	}
	return r
}

func (a *analysis) reachability() {
	n := len(a.p.Funcs)
	ng := len(a.p.Globals)

	// Phase 1: fullReach[f] — everything reachable from f's entry,
	// closed over CALL and SPAWN edges. Whole-program fixpoint (sound
	// under recursion: the union only grows).
	a.fullReach = make([]reachSet, n)
	for f := 0; f < n; f++ {
		a.fullReach[f] = reachSet{globals: newBits(ng)}
	}
	for changed := true; changed; {
		changed = false
		for f := 0; f < n; f++ {
			cfg := a.cfgs[f]
			for pc := range cfg.code {
				if !cfg.reach[pc] {
					continue
				}
				if a.fullReach[f].union(a.effect(f, pc)) {
					changed = true
				}
				in := cfg.code[pc]
				if in.Op == bytecode.CALL || in.Op == bytecode.SPAWN {
					if c := int(in.A); c >= 0 && c < n {
						if a.fullReach[f].union(a.fullReach[c]) {
							changed = true
						}
					}
				}
			}
		}
	}

	// Phase 2: per-pc reach within each function, backward accumulation
	// over the CFG with callee closures folded in at call/spawn sites.
	a.pcReach = make([][]reachSet, n)
	for f := 0; f < n; f++ {
		cfg := a.cfgs[f]
		sz := len(cfg.code)
		a.pcReach[f] = make([]reachSet, sz)
		for pc := 0; pc < sz; pc++ {
			a.pcReach[f][pc] = a.effect(f, pc)
			in := cfg.code[pc]
			if in.Op == bytecode.CALL || in.Op == bytecode.SPAWN {
				if c := int(in.A); c >= 0 && c < n {
					a.pcReach[f][pc].union(a.fullReach[c])
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for pc := sz - 1; pc >= 0; pc-- {
				for _, s := range cfg.succs[pc] {
					if a.pcReach[f][pc].union(a.pcReach[f][s]) {
						changed = true
					}
				}
			}
		}
	}
}
