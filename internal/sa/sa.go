// Package sa is the static pre-analysis over compiled PIL bytecode: the
// phase the paper's dynamic pipeline lacks. It builds per-function CFGs
// with reachability, runs a forward interprocedural lockset analysis over
// LOCK/UNLOCK (the superinstruction fusion overlay never changes the
// underlying instruction stream, so analyzing Func.Code covers fused
// sequences too), derives a may-happen-in-parallel relation from the
// SPAWN/JOIN structure, tracks which values may be symbolic (INPUT/ARG
// taint), and performs a shared-object escape analysis — then emits a
// canonical, byte-stable Facts artifact: static race-pair candidates with
// their locksets, statically race-free objects, and lint diagnostics.
//
// Every approximation leans one fixed direction so the dynamic engine can
// trust negative answers:
//
//   - may-sets (may-held locks, taint, reach, MHP) over-approximate;
//   - must-sets (must-held locks) under-approximate.
//
// Hence "no candidate pair for this object" implies no execution exhibits
// a race on it, and "no reachable symbolic branch from this frame"
// implies the symbolic explorer cannot fork there. Those are exactly the
// guarantees internal/core's verdict-preserving pruning and the server's
// admission fast path rely on.
package sa

import "repro/internal/bytecode"

// analysis carries the whole-program state threaded through the phases.
type analysis struct {
	p    *bytecode.Program
	cfgs []*funcCFG

	// lockset phase (lockset.go)
	lockTop   bool      // >64 mutexes: lockset lattice degraded to top
	summaries []lockSum // per function: entry→exit transfer
	noReturn  []bool    // no CFG-reachable RET (never returns)
	recursive []bool    // on a CALL-graph cycle
	entryMust []uint64
	entryMay  []uint64
	entrySeen []bool     // function has a reached entry context
	must      [][]uint64 // per fn, per pc: locks certainly held before pc
	may       [][]uint64 // per fn, per pc: locks possibly held before pc
	reached   [][]bool   // per fn, per pc: interprocedurally reachable

	// taint phase (taint.go)
	gTaint     bits     // globals that may hold symbolic values
	heapTaint  bool     // any heap cell may hold a symbolic value
	localTaint [][]bool // per fn: locals that may be symbolic
	retTaint   []bool   // per fn: return value may be symbolic
	saturated  []bool   // per fn: stack tracking failed, everything tainted
	forkTaint  [][]bool // per fn, per pc: fork op with possibly-symbolic operand

	// reach phase (reach.go)
	fullReach []reachSet   // per fn: reach from function entry
	pcReach   [][]reachSet // per fn, per pc: reach from pc (call/spawn closure)

	// mhp phase (mhp.go)
	rootBit   []uint64 // per fn: root bit when fn is a thread root, else 0
	rootCount []int    // per fn: saturating thread-instance count (0, 1, 2=many)
	rootsOf   []uint64 // per fn: roots whose call closure executes fn
	postSpawn [][]bool // per fn, per pc: a SPAWN may precede this point
	maySpawn  []bool   // per fn: calling fn may execute a SPAWN (lazy)
}

// Analyze runs the full static pass over a compiled program and returns
// its facts. The pass is deterministic: identical programs yield
// byte-identical Facts.Encode output.
func Analyze(p *bytecode.Program) *Facts {
	a := &analysis{p: p}
	a.cfgs = make([]*funcCFG, len(p.Funcs))
	for i := range p.Funcs {
		a.cfgs[i] = buildCFG(&p.Funcs[i])
	}
	a.locksets()
	a.taint()
	a.reachability()
	a.mhp()
	return a.facts()
}
