package sa

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/lang"
)

func compile(t *testing.T, name, src string) *bytecode.Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	p, err := bytecode.Compile(ast, name, bytecode.Options{})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return p
}

const lockedSrc = `
var counter = 0
mutex m
fn worker() {
	lock(m)
	counter = counter + 1
	unlock(m)
}
fn main() {
	let a = spawn worker()
	let b = spawn worker()
	lock(m)
	counter = counter + 10
	let snap = counter
	unlock(m)
	join(a)
	join(b)
	print("c=", snap)
}`

func TestLockProtectedIsRaceFree(t *testing.T) {
	f := Analyze(compile(t, "locked", lockedSrc))
	if !f.RaceFree || len(f.Candidates) != 0 {
		t.Fatalf("expected race-free, got candidates: %+v", f.Candidates)
	}
	if len(f.RaceFreeObjects) != 1 || f.RaceFreeObjects[0] != "counter" {
		t.Fatalf("race-free objects = %v", f.RaceFreeObjects)
	}
	// counter is still touched by concurrent threads: it escapes.
	if len(f.EscapingObjects) != 1 || f.EscapingObjects[0] != "counter" {
		t.Fatalf("escaping objects = %v", f.EscapingObjects)
	}
	if len(f.Lints) != 0 {
		t.Fatalf("unexpected lints: %+v", f.Lints)
	}
}

const racySrc = `
var g = 0
fn worker() {
	g = 5
}
fn main() {
	let w = spawn worker()
	g = 7
	join(w)
	print("g=", g)
}`

func TestUnprotectedPairIsCandidate(t *testing.T) {
	f := Analyze(compile(t, "racy", racySrc))
	if f.RaceFree {
		t.Fatal("expected candidates")
	}
	found := false
	for _, c := range f.Candidates {
		if c.Object == "g" && c.Write == "both" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no write/write candidate on g: %+v", f.Candidates)
	}
	if len(f.EscapingObjects) == 0 || f.EscapingObjects[0] != "g" {
		t.Fatalf("escaping objects = %v", f.EscapingObjects)
	}
}

// Accesses before the first SPAWN are provably single-threaded; the
// worker's self-pair needs two instances. Neither may produce a pair.
const preSpawnSrc = `
var g = 0
fn worker() {
	g = 5
}
fn main() {
	g = 1
	let w = spawn worker()
	join(w)
	print("done")
}`

func TestPreSpawnAccessIsNotParallel(t *testing.T) {
	f := Analyze(compile(t, "prespawn", preSpawnSrc))
	if !f.RaceFree {
		t.Fatalf("expected race-free (write precedes spawn), got %+v", f.Candidates)
	}
}

// Spawning the same worker twice makes its internal write a self-pair.
const twoWorkerSrc = `
var g = 0
fn worker() {
	g = 5
}
fn main() {
	let a = spawn worker()
	let b = spawn worker()
	join(a)
	join(b)
	print("done")
}`

func TestTwoInstancesSelfPair(t *testing.T) {
	f := Analyze(compile(t, "twoworker", twoWorkerSrc))
	if f.RaceFree {
		t.Fatal("expected a self-pair candidate on g")
	}
	c := f.Candidates[0]
	if c.Object != "g" || c.First.Fn != "worker" || c.Second.Fn != "worker" {
		t.Fatalf("candidate = %+v", c)
	}
}

const lintSrc = `
var g = 0
mutex m
mutex held
fn bad() {
	unlock(m)
	lock(held)
	lock(held)
}
fn orphan() {
	lock(m)
	unlock(m)
}
fn leak() {
	lock(m)
}
fn main() {
	bad()
	leak()
	print("done")
}`

func TestLints(t *testing.T) {
	f := Analyze(compile(t, "lints", lintSrc))
	rules := map[string]string{}
	for _, l := range f.Lints {
		rules[l.Rule+"@"+l.Fn] = l.Severity
	}
	for key, want := range map[string]string{
		RuleUnlockUnheld + "@bad":       SeverityError,
		RuleDoubleLock + "@bad":         SeverityError,
		RuleLockLeak + "@leak":          SeverityWarning,
		RuleUnreachableSync + "@orphan": SeverityWarning,
	} {
		if got := rules[key]; got != want {
			t.Errorf("lint %s: severity %q, want %q (all: %+v)", key, got, want, f.Lints)
		}
	}
	if len(f.ErrorLints()) < 2 {
		t.Fatalf("expected >=2 error lints, got %+v", f.ErrorLints())
	}
}

// The pruning queries: a frame suspended past everything interesting
// must report no reach; one before the racy write must.
func TestFrameReachQueries(t *testing.T) {
	p := compile(t, "racy", racySrc)
	f := Analyze(p)
	worker := p.FuncID("worker")
	gid := p.GlobalID("g")
	if worker < 0 || gid < 0 {
		t.Fatal("missing worker/g")
	}
	if !f.FrameMayTouchGlobal(worker, 0, gid) {
		t.Fatal("worker entry must reach g")
	}
	end := len(p.Funcs[worker].Code)
	if f.FrameMayTouchGlobal(worker, end, gid) {
		t.Fatal("a frame past its last instruction reaches nothing")
	}
	// No INPUT/ARG anywhere: no fork point can be symbolic.
	for fn := range p.Funcs {
		if f.FrameMayFork(fn, 0) {
			t.Fatalf("fn %d: fork reach without any symbolic source", fn)
		}
	}
}

const symSrc = `
var g = 0
fn main() {
	let x = input()
	if x > 3 { g = 1 }
	print("g=", g)
}`

func TestSymbolicForkReach(t *testing.T) {
	p := compile(t, "sym", symSrc)
	f := Analyze(p)
	if !f.FrameMayFork(p.MainFunc, 0) {
		t.Fatal("input-dependent branch must be fork-reachable from entry")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := Analyze(compile(t, "racy", racySrc))
	b := f.Encode()
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, g.Encode()) {
		t.Fatal("decode/encode not stable")
	}
	// Decoded facts lack the index: consumer queries are conservative.
	if !g.FrameMayTouchGlobal(0, 0, 0) || !g.FrameMayFork(0, 0) {
		t.Fatal("decoded facts must answer conservatively")
	}
	if g.CandidateSite(0, 0) {
		t.Fatal("decoded facts must not claim candidate sites")
	}
}

// Byte-determinism at the package level: repeated and concurrent
// analyses of one program yield identical artifacts. (The cross-workload
// and corpus sweep lives in the repo-root static determinism suite.)
func TestEncodeByteDeterminism(t *testing.T) {
	for _, src := range []string{lockedSrc, racySrc, lintSrc, symSrc} {
		p := compile(t, "det", src)
		want := Analyze(p).Encode()
		var wg sync.WaitGroup
		got := make([][]byte, 8)
		for i := range got {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = Analyze(p).Encode()
			}(i)
		}
		wg.Wait()
		for i := range got {
			if !bytes.Equal(want, got[i]) {
				t.Fatalf("run %d differs:\n%s\nvs\n%s", i, want, got[i])
			}
		}
	}
}

func TestRenderMentionsCandidates(t *testing.T) {
	f := Analyze(compile(t, "racy", racySrc))
	out := f.Render()
	for _, want := range []string{"racy", "candidate", `"g"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
