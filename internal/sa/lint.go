package sa

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
)

// Lint rules. Error-severity rules fire only where the analysis PROVES
// the operation faults whenever it executes (may-held is an
// over-approximation, so "mutex not in may-held" means "certainly not
// held"; must-held is an under-approximation, so "mutex in must-held"
// at a LOCK means a certain re-lock). Warnings flag structure that is
// suspicious but survivable.
const (
	RuleDoubleLock      = "double-lock"         // error: LOCK of a certainly-held mutex
	RuleUnlockUnheld    = "unlock-unheld"       // error: UNLOCK of a certainly-unheld mutex
	RuleWaitUnheld      = "wait-without-mutex"  // error: WAIT with a certainly-unheld mutex
	RuleLockLeak        = "lock-never-released" // warning: returns holding a self-acquired lock
	RuleUnreachableSync = "unreachable-sync"    // warning: sync op no thread can reach
)

// lint derives the diagnostics from the finished lockset phase.
func (a *analysis) lint() []Lint {
	var out []Lint
	add := func(rule, severity string, fn, pc int, line int32, format string, args ...any) {
		out = append(out, Lint{
			Rule: rule, Severity: severity,
			Fn: a.p.Funcs[fn].Name, PC: pc, Line: int(line),
			Msg: fmt.Sprintf(format, args...),
		})
	}
	mutex := func(id int64) string {
		if id >= 0 && int(id) < len(a.p.Mutexes) {
			return a.p.Mutexes[id]
		}
		return fmt.Sprintf("m%d", id)
	}
	for fn := range a.p.Funcs {
		code := a.p.Funcs[fn].Code
		for pc, in := range code {
			if in.Op.IsSyncOp() && (!a.entrySeen[fn] || !a.reached[fn][pc]) {
				add(RuleUnreachableSync, SeverityWarning, fn, pc, in.Line,
					"%s is unreachable: no thread can execute it", in.Op)
				continue
			}
			if !a.entrySeen[fn] || !a.reached[fn][pc] || a.lockTop {
				continue
			}
			switch in.Op {
			case bytecode.LOCK:
				if bit, ok := lockBit(in.A); ok && a.must[fn][pc]&bit != 0 {
					add(RuleDoubleLock, SeverityError, fn, pc, in.Line,
						"mutex %q is already held on every path here: re-lock always faults", mutex(in.A))
				}
			case bytecode.UNLOCK:
				if bit, ok := lockBit(in.A); ok && a.may[fn][pc]&bit == 0 {
					add(RuleUnlockUnheld, SeverityError, fn, pc, in.Line,
						"mutex %q is never held here: unlock always faults", mutex(in.A))
				}
			case bytecode.WAIT:
				if bit, ok := lockBit(int64(in.B)); ok && a.may[fn][pc]&bit == 0 {
					add(RuleWaitUnheld, SeverityError, fn, pc, in.Line,
						"wait requires mutex %q, which is never held here: always faults", mutex(int64(in.B)))
				}
			}
		}
		// A function whose exit summary certainly holds locks acquired
		// within it (the summary's one-bits are entry-independent)
		// leaks them to its caller — or to nobody, for a thread root.
		if a.entrySeen[fn] && !a.lockTop && !a.recursive[fn] {
			if s := a.summaries[fn]; s.returns && s.must.one != 0 {
				names := a.lockNames(s.must.one)
				add(RuleLockLeak, SeverityWarning, fn, len(code)-1, lastLine(code),
					"returns holding mutex(es) %v acquired within it", names)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

func lastLine(code []bytecode.Instr) int32 {
	if len(code) == 0 {
		return 0
	}
	return code[len(code)-1].Line
}
