package sa

import "repro/internal/bytecode"

// funcCFG is the control-flow graph of one function at instruction
// granularity: successor edges plus intraprocedural reachability from the
// entry. CALL falls through to pc+1 (interprocedural effects are applied
// by the analyses via callee summaries); RET has no successors.
type funcCFG struct {
	code  []bytecode.Instr
	succs [][]int
	reach []bool // reachable from pc 0 within this function
}

func buildCFG(f *bytecode.Func) *funcCFG {
	n := len(f.Code)
	c := &funcCFG{code: f.Code, succs: make([][]int, n), reach: make([]bool, n)}
	for pc, in := range f.Code {
		switch in.Op {
		case bytecode.JMP:
			c.succs[pc] = c.edge(int(in.A))
		case bytecode.JZ:
			c.succs[pc] = append(c.edge(pc+1), c.edge(int(in.A))...)
		case bytecode.RET:
			// no successors
		default:
			c.succs[pc] = c.edge(pc + 1)
		}
	}
	// Entry reachability (pure CFG; the analyses additionally gate
	// call fallthrough on the callee returning).
	if n > 0 {
		work := []int{0}
		c.reach[0] = true
		for len(work) > 0 {
			pc := work[len(work)-1]
			work = work[:len(work)-1]
			for _, s := range c.succs[pc] {
				if !c.reach[s] {
					c.reach[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return c
}

func (c *funcCFG) edge(pc int) []int {
	if pc < 0 || pc >= len(c.code) {
		return nil
	}
	return []int{pc}
}

// inLoop reports whether pc can reach itself — i.e. it sits on a CFG
// cycle, so the instruction may execute more than once per activation.
func (c *funcCFG) inLoop(pc int) bool {
	seen := make([]bool, len(c.code))
	work := append([]int(nil), c.succs[pc]...)
	for len(work) > 0 {
		q := work[len(work)-1]
		work = work[:len(work)-1]
		if q == pc {
			return true
		}
		if seen[q] {
			continue
		}
		seen[q] = true
		work = append(work, c.succs[q]...)
	}
	return false
}

// bits is a simple growable bitset keyed by small non-negative ints.
type bits []uint64

func newBits(n int) bits { return make(bits, (n+63)/64) }

func (b bits) set(i int) bool {
	w, m := i/64, uint64(1)<<(i%64)
	if w >= len(b) || b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

func (b bits) has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(uint64(1)<<(i%64)) != 0
}

// or merges o into b, reporting whether b changed.
func (b bits) or(o bits) bool {
	changed := false
	for i := range o {
		if i >= len(b) {
			break
		}
		if n := b[i] | o[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bits) clone() bits { return append(bits(nil), b...) }
