package sa

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bytecode"
)

// Schema identifies the Facts artifact encoding.
const Schema = "portend-sa/1"

// Facts is the canonical artifact of the static pass. Construction is
// deterministic (all iteration is over slices in program order, never
// maps) and Encode is byte-stable: analyzing the same program any number
// of times, at any parallelism, yields identical bytes.
type Facts struct {
	SchemaV string `json:"schema"`
	Program string `json:"program"`
	Funcs   int    `json:"funcs"`
	Globals int    `json:"globals"`
	Mutexes int    `json:"mutexes"`
	Sites   int    `json:"sites"` // reachable shared-access instructions
	LockTop bool   `json:"lockTop,omitempty"`

	// RaceFree means no candidate pair survived: every reachable pair
	// of shared accesses is single-threaded, ordered by spawn
	// structure, or protected by a common must-held lock. The dynamic
	// detector cannot report a race on such a program.
	RaceFree   bool        `json:"raceFree"`
	Candidates []Candidate `json:"candidates"`

	// RaceFreeObjects are object classes that are accessed but have no
	// candidate pair; EscapingObjects may be reached by two concurrent
	// threads (regardless of writes or locks).
	RaceFreeObjects []string `json:"raceFreeObjects,omitempty"`
	EscapingObjects []string `json:"escapingObjects,omitempty"`

	Lints []Lint `json:"lints,omitempty"`

	idx *index // consumer-side tables; absent after JSON decode
}

// Site is one shared-access instruction in a candidate pair.
type Site struct {
	Fn        string   `json:"fn"`
	PC        int      `json:"pc"`
	Line      int      `json:"line"`
	Op        string   `json:"op"`
	MustLocks []string `json:"mustLocks,omitempty"`
}

// Candidate is a statically possible race pair: same object class, at
// least one write, may-happen-in-parallel, no common must-held lock.
type Candidate struct {
	Object string `json:"object"` // global name, or "heap"
	Space  string `json:"space"`  // "global" | "heap"
	First  Site   `json:"first"`
	Second Site   `json:"second"`
	Write  string `json:"write"` // "first" | "second" | "both"

	// CommonMayLocks are locks possibly (but not certainly) held at
	// both sites — a hint that the pair may be protected on some paths.
	CommonMayLocks []string `json:"commonMayLocks,omitempty"`
}

// Lint severities.
const (
	SeverityError   = "error"   // certain runtime error if the site executes
	SeverityWarning = "warning" // suspicious but not certainly fatal
)

// Lint is one diagnostic from the static pass.
type Lint struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Fn       string `json:"fn"`
	PC       int    `json:"pc"`
	Line     int    `json:"line"`
	Msg      string `json:"msg"`
}

// index carries the per-pc tables the in-process consumers (core's
// pruning, detection's hot sites) query. It is not serialized.
type index struct {
	reach [][]reachSet
	cand  [][]bool
}

// Encode renders the canonical byte-stable artifact.
func (f *Facts) Encode() []byte {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		panic(err) // Facts is marshal-safe by construction
	}
	return append(b, '\n')
}

// Decode parses an encoded artifact. The result answers the canonical
// queries (candidates, lints, race-freedom) but not the per-pc consumer
// queries, which degrade to their conservative answers.
func Decode(b []byte) (*Facts, error) {
	var f Facts
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, err
	}
	if f.SchemaV != Schema {
		return nil, fmt.Errorf("sa: unknown facts schema %q", f.SchemaV)
	}
	return &f, nil
}

// ErrorLints returns the error-severity diagnostics.
func (f *Facts) ErrorLints() []Lint {
	var out []Lint
	for _, l := range f.Lints {
		if l.Severity == SeverityError {
			out = append(out, l)
		}
	}
	return out
}

// FrameMayTouchGlobal reports whether an activation of fn suspended (or
// executing) at pc may still access global g, directly or through
// anything it calls or spawns. Conservative (true) without an index or
// out of range.
func (f *Facts) FrameMayTouchGlobal(fn, pc, g int) bool {
	r := f.reachAt(fn, pc)
	if r == nil {
		return true
	}
	return r.globals.has(g)
}

// FrameMayTouchHeap is FrameMayTouchGlobal for the heap object class.
func (f *Facts) FrameMayTouchHeap(fn, pc int) bool {
	r := f.reachAt(fn, pc)
	if r == nil {
		return true
	}
	return r.heap
}

// FrameMayFork reports whether an activation of fn at pc may still
// reach a fork point with a possibly-symbolic operand — i.e. whether
// the symbolic explorer could ever branch on this frame's future.
func (f *Facts) FrameMayFork(fn, pc int) bool {
	r := f.reachAt(fn, pc)
	if r == nil {
		return true
	}
	return r.fork
}

// CandidateSite reports whether (fn, pc) is a site of some candidate
// pair. False without an index (the hot-site optimization just
// disables).
func (f *Facts) CandidateSite(fn, pc int) bool {
	if f == nil || f.idx == nil || fn < 0 || fn >= len(f.idx.cand) {
		return false
	}
	row := f.idx.cand[fn]
	return pc >= 0 && pc < len(row) && row[pc]
}

func (f *Facts) reachAt(fn, pc int) *reachSet {
	if f == nil || f.idx == nil || fn < 0 || fn >= len(f.idx.reach) {
		return nil
	}
	row := f.idx.reach[fn]
	if pc < 0 || pc >= len(row) {
		// pc == len(code) (a frame past its last instruction) has
		// nothing left to run: the empty reach set.
		if pc == len(row) {
			return &reachSet{}
		}
		return nil
	}
	return &row[pc]
}

// Render formats the facts for humans (the -lint / -check output).
func (f *Facts) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "static analysis: %s\n", f.Program)
	fmt.Fprintf(&b, "  %d function(s), %d global(s), %d mutex(es), %d shared-access site(s)\n",
		f.Funcs, f.Globals, f.Mutexes, f.Sites)
	if f.RaceFree {
		b.WriteString("  statically race-free: no candidate pairs\n")
	} else {
		fmt.Fprintf(&b, "  %d race-pair candidate(s):\n", len(f.Candidates))
		for _, c := range f.Candidates {
			fmt.Fprintf(&b, "    %s %q: %s <-> %s (write: %s)%s\n",
				c.Space, c.Object, c.First.format(), c.Second.format(), c.Write,
				lockHint(c.CommonMayLocks))
		}
	}
	if len(f.RaceFreeObjects) > 0 {
		fmt.Fprintf(&b, "  race-free objects: %s\n", strings.Join(f.RaceFreeObjects, ", "))
	}
	if len(f.EscapingObjects) > 0 {
		fmt.Fprintf(&b, "  escaping objects: %s\n", strings.Join(f.EscapingObjects, ", "))
	}
	for _, l := range f.Lints {
		fmt.Fprintf(&b, "  %s: %s:%d (line %d): %s: %s\n", l.Severity, l.Fn, l.PC, l.Line, l.Rule, l.Msg)
	}
	return b.String()
}

func (s Site) format() string {
	out := fmt.Sprintf("%s:%d (line %d) %s", s.Fn, s.PC, s.Line, s.Op)
	if len(s.MustLocks) > 0 {
		out += " holding " + strings.Join(s.MustLocks, ",")
	}
	return out
}

func lockHint(locks []string) string {
	if len(locks) == 0 {
		return ""
	}
	return " [maybe-protected by " + strings.Join(locks, ",") + "]"
}

// accessSite is an internal reachable shared-access instruction.
type accessSite struct {
	fn, pc int
	op     bytecode.OpCode
	write  bool
	must   uint64
	may    uint64
}

// facts assembles the artifact from the finished analysis phases.
func (a *analysis) facts() *Facts {
	p := a.p
	f := &Facts{
		SchemaV: Schema,
		Program: p.Name,
		Funcs:   len(p.Funcs),
		Globals: len(p.Globals),
		Mutexes: len(p.Mutexes),
		LockTop: a.lockTop,
		idx:     &index{reach: a.pcReach},
	}
	f.idx.cand = make([][]bool, len(p.Funcs))
	for i := range p.Funcs {
		f.idx.cand[i] = make([]bool, len(p.Funcs[i].Code))
	}

	// Collect reachable shared-access sites per object class: globals
	// by id, then the heap as one class (matching the dynamic
	// detector's object granularity).
	classes := make([][]accessSite, len(p.Globals)+1)
	heapClass := len(p.Globals)
	for fn := range p.Funcs {
		if !a.entrySeen[fn] {
			continue
		}
		for pc, in := range p.Funcs[fn].Code {
			if !in.Op.IsSharedAccess() || !a.reached[fn][pc] {
				continue
			}
			s := accessSite{
				fn: fn, pc: pc, op: in.Op, write: in.Op.IsSharedWrite(),
				must: a.must[fn][pc], may: a.may[fn][pc],
			}
			switch in.Op {
			case bytecode.LOADG, bytecode.STOREG, bytecode.LOADE, bytecode.STOREE:
				if g := int(in.A); g >= 0 && g < len(p.Globals) {
					classes[g] = append(classes[g], s)
					f.Sites++
				}
			default: // LOADH, STOREH, FREE
				classes[heapClass] = append(classes[heapClass], s)
				f.Sites++
			}
		}
	}

	for class, sites := range classes {
		if len(sites) == 0 {
			continue
		}
		object, space := "heap", "heap"
		if class < len(p.Globals) {
			object, space = p.Globals[class].Name, "global"
		}
		hadCandidate, escapes := false, false
		for i := 0; i < len(sites); i++ {
			for j := i; j < len(sites); j++ {
				s1, s2 := sites[i], sites[j]
				if !a.mayHappenInParallel(s1.fn, s1.pc, s2.fn, s2.pc) {
					continue
				}
				escapes = true
				if !s1.write && !s2.write {
					continue
				}
				if s1.must&s2.must != 0 {
					continue // common must-held lock: mutually exclusive
				}
				hadCandidate = true
				f.idx.cand[s1.fn][s1.pc] = true
				f.idx.cand[s2.fn][s2.pc] = true
				f.Candidates = append(f.Candidates, Candidate{
					Object: object,
					Space:  space,
					First:  a.site(s1),
					Second: a.site(s2),
					Write:  writeKind(s1.write, s2.write),

					CommonMayLocks: a.lockNames(s1.may & s2.may),
				})
			}
		}
		if escapes {
			f.EscapingObjects = append(f.EscapingObjects, object)
		}
		if !hadCandidate {
			f.RaceFreeObjects = append(f.RaceFreeObjects, object)
		}
	}
	f.RaceFree = len(f.Candidates) == 0
	f.Lints = a.lint()
	return f
}

func (a *analysis) site(s accessSite) Site {
	in := a.p.Funcs[s.fn].Code[s.pc]
	return Site{
		Fn:        a.p.Funcs[s.fn].Name,
		PC:        s.pc,
		Line:      int(in.Line),
		Op:        s.op.String(),
		MustLocks: a.lockNames(s.must),
	}
}

func (a *analysis) lockNames(mask uint64) []string {
	if mask == 0 {
		return nil
	}
	var out []string
	for i, name := range a.p.Mutexes {
		if i < 64 && mask&(uint64(1)<<uint(i)) != 0 {
			out = append(out, name)
		}
	}
	return out
}

func writeKind(w1, w2 bool) string {
	switch {
	case w1 && w2:
		return "both"
	case w1:
		return "first"
	default:
		return "second"
	}
}
