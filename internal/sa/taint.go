package sa

import "repro/internal/bytecode"

// The taint phase computes which values MAY be symbolic at runtime:
// everything INPUT and ARG produce is tainted (whether the engine marks
// them symbolic is an option; assuming so over-approximates), and taint
// flows through the operand stack, locals, globals, the heap, and
// call/return edges. Its product is forkTaint: the fork-point
// instructions (JZ, ASSERT, DIV, MOD) whose deciding operand may be
// symbolic. An untainted fork point is certainly concrete at runtime, so
// the symbolic explorer can never fork there — the fact the
// verdict-preserving prune in internal/core relies on.

// stackEffect returns how many operands in pops and pushes.
func stackEffect(p *bytecode.Program, in bytecode.Instr) (pops, pushes int) {
	switch in.Op {
	case bytecode.PUSH, bytecode.LOADL, bytecode.LOADG, bytecode.INPUT:
		return 0, 1
	case bytecode.POP, bytecode.STOREL, bytecode.STOREG, bytecode.FREE,
		bytecode.JZ, bytecode.RET, bytecode.JOIN, bytecode.SLEEP, bytecode.ASSERT:
		return 1, 0
	case bytecode.DUP:
		return 1, 2
	case bytecode.LOADE, bytecode.ALLOC, bytecode.ARG,
		bytecode.NEG, bytecode.BNOT, bytecode.LNOT, bytecode.NEZ:
		return 1, 1
	case bytecode.STOREE:
		return 2, 0
	case bytecode.LOADH:
		return 2, 1
	case bytecode.STOREH:
		return 3, 0
	case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.MOD,
		bytecode.BAND, bytecode.BOR, bytecode.BXOR, bytecode.SHL, bytecode.SHR,
		bytecode.EQ, bytecode.NE, bytecode.LT, bytecode.LE, bytecode.GT, bytecode.GE:
		return 2, 1
	case bytecode.CALL, bytecode.SPAWN:
		return int(in.B), 1
	case bytecode.PRINT:
		n := 0
		if int(in.A) >= 0 && int(in.A) < len(p.Prints) {
			for _, part := range p.Prints[in.A] {
				if part.IsExpr {
					n++
				}
			}
		}
		return n, 0
	}
	return 0, 0
}

func (a *analysis) taint() {
	n := len(a.p.Funcs)
	a.gTaint = newBits(len(a.p.Globals))
	a.localTaint = make([][]bool, n)
	a.retTaint = make([]bool, n)
	a.saturated = make([]bool, n)
	a.forkTaint = make([][]bool, n)
	for f := 0; f < n; f++ {
		a.localTaint[f] = make([]bool, a.p.Funcs[f].NLocals)
		a.forkTaint[f] = make([]bool, len(a.p.Funcs[f].Code))
	}
	for changed := true; changed; {
		changed = false
		for f := 0; f < n; f++ {
			if a.entrySeen[f] && a.taintFn(f) {
				changed = true
			}
		}
	}
}

func (a *analysis) setLocal(f, i int, t bool) bool {
	if !t || i < 0 || i >= len(a.localTaint[f]) || a.localTaint[f][i] {
		return false
	}
	a.localTaint[f][i] = true
	return true
}

func (a *analysis) setFork(f, pc int, t bool) bool {
	if !t || a.forkTaint[f][pc] {
		return false
	}
	a.forkTaint[f][pc] = true
	return true
}

// taintFn propagates taint through one function's operand stack,
// reporting whether any whole-program taint artifact changed. A stack
// imbalance (which compiled code never produces; this is defensive)
// saturates the function: every write and fork point becomes tainted.
func (a *analysis) taintFn(f int) bool {
	if a.saturated[f] {
		return false
	}
	cfg := a.cfgs[f]
	sz := len(cfg.code)
	if sz == 0 {
		return false
	}
	changed := false
	stacks := make([][]bool, sz)
	seen := make([]bool, sz)
	seen[0] = true
	stacks[0] = []bool{}
	work := []int{0}
	saturate := func() bool {
		a.saturated[f] = true
		for pc, in := range cfg.code {
			switch in.Op {
			case bytecode.STOREG, bytecode.STOREE:
				if a.gTaint.set(int(in.A)) {
					changed = true
				}
			case bytecode.STOREH:
				if !a.heapTaint {
					a.heapTaint = true
					changed = true
				}
			case bytecode.STOREL:
				if a.setLocal(f, int(in.A), true) {
					changed = true
				}
			case bytecode.CALL, bytecode.SPAWN:
				if c := int(in.A); c >= 0 && c < len(a.p.Funcs) {
					for j := 0; j < a.p.Funcs[c].NParams; j++ {
						if a.setLocal(c, j, true) {
							changed = true
						}
					}
				}
			case bytecode.RET:
				if !a.retTaint[f] {
					a.retTaint[f] = true
					changed = true
				}
			case bytecode.JZ, bytecode.ASSERT, bytecode.DIV, bytecode.MOD:
				if a.setFork(f, pc, true) {
					changed = true
				}
			}
		}
		return true
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := cfg.code[pc]
		pops, _ := stackEffect(a.p, in)
		st := stacks[pc]
		if pops > len(st) {
			saturate()
			return changed
		}
		top := func(i int) bool { return st[len(st)-1-i] } // 0 = top
		// Fork-point taint reads the deciding operand before popping:
		// JZ/ASSERT condition and DIV/MOD divisor all sit on top.
		switch in.Op {
		case bytecode.JZ, bytecode.ASSERT, bytecode.DIV, bytecode.MOD:
			if a.setFork(f, pc, top(0)) {
				changed = true
			}
		}
		next := append([]bool(nil), st[:len(st)-pops]...)
		switch in.Op {
		case bytecode.PUSH:
			next = append(next, false)
		case bytecode.DUP:
			next = append(next, top(0), top(0))
		case bytecode.LOADL:
			next = append(next, int(in.A) >= 0 && int(in.A) < len(a.localTaint[f]) && a.localTaint[f][in.A])
		case bytecode.STOREL:
			if a.setLocal(f, int(in.A), top(0)) {
				changed = true
			}
		case bytecode.LOADG:
			next = append(next, a.gTaint.has(int(in.A)))
		case bytecode.STOREG:
			if top(0) && a.gTaint.set(int(in.A)) {
				changed = true
			}
		case bytecode.LOADE:
			next = append(next, a.gTaint.has(int(in.A)) || top(0))
		case bytecode.STOREE:
			if top(0) && a.gTaint.set(int(in.A)) {
				changed = true
			}
		case bytecode.ALLOC:
			next = append(next, false)
		case bytecode.LOADH:
			next = append(next, a.heapTaint || top(0) || top(1))
		case bytecode.STOREH:
			if top(0) && !a.heapTaint {
				a.heapTaint = true
				changed = true
			}
		case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.MOD,
			bytecode.BAND, bytecode.BOR, bytecode.BXOR, bytecode.SHL, bytecode.SHR,
			bytecode.EQ, bytecode.NE, bytecode.LT, bytecode.LE, bytecode.GT, bytecode.GE:
			next = append(next, top(0) || top(1))
		case bytecode.NEG, bytecode.BNOT, bytecode.LNOT, bytecode.NEZ:
			next = append(next, top(0))
		case bytecode.INPUT, bytecode.ARG:
			next = append(next, true)
		case bytecode.CALL, bytecode.SPAWN:
			c := int(in.A)
			if c >= 0 && c < len(a.p.Funcs) {
				for j := 0; j < pops; j++ {
					if a.setLocal(c, j, st[len(st)-pops+j]) {
						changed = true
					}
				}
			}
			ret := false
			if in.Op == bytecode.CALL && c >= 0 && c < len(a.p.Funcs) {
				ret = a.retTaint[c]
			}
			next = append(next, ret)
		case bytecode.RET:
			if top(0) && !a.retTaint[f] {
				a.retTaint[f] = true
				changed = true
			}
		}
		for _, s := range cfg.succs[pc] {
			if !seen[s] {
				seen[s] = true
				stacks[s] = append([]bool(nil), next...)
				work = append(work, s)
				continue
			}
			if len(stacks[s]) != len(next) {
				saturate()
				return changed
			}
			grew := false
			for i, t := range next {
				if t && !stacks[s][i] {
					stacks[s][i] = true
					grew = true
				}
			}
			if grew {
				work = append(work, s)
			}
		}
	}
	return changed
}
