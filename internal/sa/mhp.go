package sa

import "repro/internal/bytecode"

// The MHP phase derives a may-happen-in-parallel relation over program
// points from the SPAWN structure. Thread roots are main plus every
// reachable SPAWN target; each root carries a saturating instance count
// (0, 1, or "many" = 2) — a SPAWN site inside a loop, or executed by a
// multi-instance thread, makes its target many. rootsOf closes roots
// over CALL edges (a SPAWN edge starts a *new* root, not an extension of
// the current one), and postSpawn marks the points of a thread's life
// after some SPAWN may have run — before its first spawn, the main
// thread is provably alone, so nothing it does there can be parallel.
//
// Two points may happen in parallel when distinct overlap-capable root
// instances (or two instances of one multi-instance root) can be
// executing them. JOIN is deliberately ignored — treating joined threads
// as still parallel only widens the relation, which is the sound
// direction for everything built on it.

const mainRoot = 0

func (a *analysis) mhp() {
	n := len(a.p.Funcs)
	a.rootBit = make([]uint64, n)
	a.rootCount = make([]int, n)
	a.rootsOf = make([]uint64, n)
	a.postSpawn = make([][]bool, n)
	for f := 0; f < n; f++ {
		a.postSpawn[f] = make([]bool, len(a.p.Funcs[f].Code))
	}
	main := a.p.MainFunc
	if main < 0 || main >= n {
		return
	}

	// Assign root bits: bit 0 is main; each reachable SPAWN target gets
	// the next bit (in spawn-site order, for determinism). Bit 63
	// saturates: every root from the 64th on shares it, and
	// mayHappenInParallel treats that shared bit as multi-instance,
	// which merges those roots conservatively.
	a.rootBit[main] = 1 << mainRoot
	nextBit := 1
	spawnSites := a.spawnSites()
	for _, s := range spawnSites {
		if a.rootBit[s.callee] == 0 {
			bit := 63
			if nextBit < 63 {
				bit = nextBit
			}
			a.rootBit[s.callee] = 1 << uint(bit)
			nextBit++
		}
	}

	// Saturating instance counts per root, recomputed from scratch each
	// round (counts feed instancesExecuting feeds counts; both are
	// monotone from zero, so the interleaved fixpoint converges).
	a.rootCount[main] = 1
	a.closeRoots()
	for changed := true; changed; {
		changed = false
		counts := make([]int, n)
		counts[main] = 1
		for _, s := range spawnSites {
			callers := a.instancesExecuting(s.fn)
			if callers == 0 {
				continue
			}
			add := callers
			if s.inLoop {
				add = 2
			}
			counts[s.callee] = min2(counts[s.callee] + add)
		}
		for f := 0; f < n; f++ {
			if counts[f] != a.rootCount[f] {
				a.rootCount[f] = counts[f]
				changed = true
			}
		}
		if a.closeRoots() {
			changed = true
		}
	}

	// postSpawn: forward interprocedural dataflow. Spawned roots start
	// true (their parent is alive in parallel); main starts false.
	entry := make([]int, n) // 0 unseen, 1 false, 2 true (monotone)
	entry[main] = 1
	for _, s := range spawnSites {
		entry[s.callee] = 2
	}
	for changed := true; changed; {
		changed = false
		for f := 0; f < n; f++ {
			if entry[f] == 0 || !a.entrySeen[f] {
				continue
			}
			if a.postSpawnFlow(f, entry[f] == 2, entry) {
				changed = true
			}
		}
	}
}

type spawnSite struct {
	fn, pc, callee int
	inLoop         bool
}

// spawnSites lists reachable SPAWN instructions (deterministic order).
func (a *analysis) spawnSites() []spawnSite {
	var out []spawnSite
	for f := range a.p.Funcs {
		if !a.entrySeen[f] {
			continue
		}
		cfg := a.cfgs[f]
		for pc, in := range cfg.code {
			if in.Op != bytecode.SPAWN || !a.reached[f][pc] {
				continue
			}
			if c := int(in.A); c >= 0 && c < len(a.p.Funcs) {
				out = append(out, spawnSite{fn: f, pc: pc, callee: c, inLoop: cfg.inLoop(pc)})
			}
		}
	}
	return out
}

// closeRoots recomputes rootsOf = root bits closed over CALL edges,
// reporting changes.
func (a *analysis) closeRoots() bool {
	n := len(a.p.Funcs)
	changed := false
	for f := 0; f < n; f++ {
		if a.rootBit[f] != 0 && a.rootCount[f] > 0 {
			if a.rootsOf[f]&a.rootBit[f] == 0 {
				a.rootsOf[f] |= a.rootBit[f]
				changed = true
			}
		}
	}
	for again := true; again; {
		again = false
		for f := 0; f < n; f++ {
			if a.rootsOf[f] == 0 {
				continue
			}
			for pc, in := range a.cfgs[f].code {
				if in.Op != bytecode.CALL || !a.reached[f][pc] {
					continue
				}
				if c := int(in.A); c >= 0 && c < n {
					if nv := a.rootsOf[c] | a.rootsOf[f]; nv != a.rootsOf[c] {
						a.rootsOf[c] = nv
						again = true
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// instancesExecuting returns the saturating number of thread instances
// that may execute fn: the sum of instance counts of its roots.
func (a *analysis) instancesExecuting(fn int) int {
	total := 0
	for f := range a.p.Funcs {
		if a.rootBit[f] != 0 && a.rootsOf[fn]&a.rootBit[f] != 0 {
			total = min2(total + a.rootCount[f])
		}
	}
	return total
}

func min2(v int) int {
	if v > 2 {
		return 2
	}
	return v
}

// postSpawnFlow propagates the "a SPAWN may already have happened in
// this thread" bit through one function, contributing callee entry
// states; returns whether anything grew.
func (a *analysis) postSpawnFlow(f int, entryTrue bool, entry []int) bool {
	cfg := a.cfgs[f]
	sz := len(cfg.code)
	if sz == 0 {
		return false
	}
	changed := false
	val := make([]bool, sz)
	seen := make([]bool, sz)
	val[0], seen[0] = entryTrue, true
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := cfg.code[pc]
		v := val[pc]
		switch in.Op {
		case bytecode.SPAWN:
			v = true
		case bytecode.CALL:
			if c := int(in.A); c >= 0 && c < len(a.p.Funcs) {
				want := 1
				if v {
					want = 2
				}
				if want > entry[c] {
					entry[c] = want
					changed = true
				}
				// A callee that spawns makes the fallthrough postSpawn.
				if a.summaryMaySpawn(c) {
					v = true
				}
				if !a.summaries[c].returns {
					continue
				}
			}
		case bytecode.RET:
			continue
		}
		for _, s := range cfg.succs[pc] {
			if !seen[s] {
				seen[s], val[s] = true, v
				work = append(work, s)
			} else if v && !val[s] {
				val[s] = true
				work = append(work, s)
			}
		}
	}
	for pc := 0; pc < sz; pc++ {
		if val[pc] && !a.postSpawn[f][pc] {
			a.postSpawn[f][pc] = true
			changed = true
		}
	}
	return changed
}

// summaryMaySpawn reports whether calling fn may execute a SPAWN
// (directly or transitively).
func (a *analysis) summaryMaySpawn(fn int) bool {
	if a.maySpawn == nil {
		n := len(a.p.Funcs)
		a.maySpawn = make([]bool, n)
		for changed := true; changed; {
			changed = false
			for f := 0; f < n; f++ {
				if a.maySpawn[f] {
					continue
				}
				for _, in := range a.p.Funcs[f].Code {
					hit := in.Op == bytecode.SPAWN
					if in.Op == bytecode.CALL {
						if c := int(in.A); c >= 0 && c < n {
							hit = a.maySpawn[c]
						}
					}
					if hit {
						a.maySpawn[f] = true
						changed = true
						break
					}
				}
			}
		}
	}
	return a.maySpawn[fn]
}

// rootsAt returns the overlap-capable root set for a program point: the
// fn's roots, with main filtered out before the thread's first possible
// SPAWN (nothing else exists yet, so main code there overlaps nothing).
func (a *analysis) rootsAt(f, pc int) uint64 {
	r := a.rootsOf[f]
	if r&(1<<mainRoot) != 0 && !a.postSpawn[f][pc] {
		r &^= 1 << mainRoot
	}
	return r
}

// mayHappenInParallel reports whether two program points can execute
// simultaneously in different threads.
func (a *analysis) mayHappenInParallel(f1, pc1, f2, pc2 int) bool {
	r1, r2 := a.rootsAt(f1, pc1), a.rootsAt(f2, pc2)
	if r1 == 0 || r2 == 0 {
		return false
	}
	u := r1 | r2
	if u&(u-1) != 0 { // ≥2 distinct roots: pick one from each side
		return true
	}
	// Single shared root: needs two live instances of it. The count is
	// saturating, and a capped bit (63) may alias several roots — the
	// alias case is covered because any aliased root got count from its
	// own spawn sites summed into... conservatively treat bit 63 as
	// multi-instance.
	if u == 1<<63 {
		return true
	}
	for f := range a.p.Funcs {
		if a.rootBit[f] == u {
			return a.rootCount[f] >= 2
		}
	}
	return u != 1<<mainRoot // unknown root: stay conservative
}
