package core

import (
	"repro/internal/race"
	"repro/internal/trace"
	"repro/internal/vm"
)

// This file implements the comparator classifiers of §5.4 inside the same
// infrastructure, exactly as the paper did ("We implemented the
// Record/Replay-Analyzer technique in Portend and compared accuracy
// empirically"; the ad-hoc-only detectors are derived analytically from
// their published algorithms).

// RRVerdict is the Record/Replay-Analyzer's [45] output: it knows only
// "likely harmful" vs "likely harmless".
type RRVerdict struct {
	// Harmful: replay failed, or the post-race states differ.
	Harmful bool
	// ReplayFailed: the alternate interleaving could not be enforced;
	// the analyzer conservatively reports harmful.
	ReplayFailed bool
	// StatesDiffer: concrete post-race memory differed.
	StatesDiffer bool
}

// RecordReplayAnalyzer classifies a race the way the Record/Replay-
// Analyzer does: enforce the alternate ordering once, compare the
// concrete memory state immediately after the race, and treat replay
// failure as harmful (§2.1, §5.4).
func (c *Classifier) RecordReplayAnalyzer(rep *race.Report, tr *trace.Trace) (RRVerdict, error) {
	ctx, err := c.replayToRace(rep, tr)
	if err != nil {
		return RRVerdict{Harmful: true, ReplayFailed: true}, nil
	}
	enf := c.enforceAlternate(ctx.pre, ctx.firstTID, ctx.secondTID, ctx.space, ctx.obj, vm.NewRoundRobin())
	switch enf.outcome {
	case enfOK:
		differ := enf.afterFP != ctx.postFP
		return RRVerdict{Harmful: differ, StatesDiffer: differ}, nil
	case enfError:
		return RRVerdict{Harmful: true, StatesDiffer: true}, nil
	default:
		// Timeout / stuck / no access: replay failure.
		return RRVerdict{Harmful: true, ReplayFailed: true}, nil
	}
}

// AdHocVerdict is the output of the ad-hoc-synchronization detectors
// (Helgrind+ [27], Ad-Hoc-Detector [55]): they either prune a race as
// ad-hoc synchronization or leave it unclassified.
type AdHocVerdict struct {
	// SingleOrdering: the race is protected by ad-hoc synchronization.
	SingleOrdering bool
	// Classified is false when the detector has nothing to say (every
	// non-ad-hoc race).
	Classified bool
}

// AdHocDetector classifies only ad-hoc synchronization: a race whose
// alternate enforcement times out spinning on shared state, or whose
// racing read is a busy-wait poll, is "single ordering"; everything else
// is not classified (§5.4 assumes these tools are perfect on the ad-hoc
// races and silent on the rest).
func (c *Classifier) AdHocDetector(rep *race.Report, tr *trace.Trace) (AdHocVerdict, error) {
	ctx, err := c.replayToRace(rep, tr)
	if err != nil {
		return AdHocVerdict{}, err
	}
	if ctx.spinRead {
		return AdHocVerdict{SingleOrdering: true, Classified: true}, nil
	}
	enf := c.enforceAlternate(ctx.pre, ctx.firstTID, ctx.secondTID, ctx.space, ctx.obj, vm.NewRoundRobin())
	switch enf.outcome {
	case enfTimeout:
		if enf.diag.Looping && enf.diag.WritableByOther {
			return AdHocVerdict{SingleOrdering: true, Classified: true}, nil
		}
	case enfStuck, enfNoAccess:
		if !enf.blockedOnFirst {
			return AdHocVerdict{SingleOrdering: true, Classified: true}, nil
		}
	}
	return AdHocVerdict{}, nil
}

// HeuristicVerdict is a DataCollider-style [29] heuristic triage result.
type HeuristicVerdict struct {
	// LikelyHarmless is set when a pruning heuristic matched.
	LikelyHarmless bool
	// Rule names the heuristic that matched.
	Rule string
}

// HeuristicClassifier applies DataCollider's pruning heuristics, which
// operate on the access pair alone: same-value ("redundant") writes and
// read-write pairs on flag-like variables are pruned as likely harmless.
// The paper notes such heuristics "can lead to both false positives and
// false negatives" (§2.1); the eval reports how they fare on our suite.
func (c *Classifier) HeuristicClassifier(rep *race.Report, tr *trace.Trace) (HeuristicVerdict, error) {
	ctx, err := c.replayToRace(rep, tr)
	if err != nil {
		return HeuristicVerdict{}, err
	}
	// Rule 1: both accesses are writes of the same value. Complete the
	// first (pending) write on a clone of the pre-race checkpoint and
	// compare the stored value with the post-race value of the primary.
	if rep.First.Write && rep.Second.Write {
		mid := ctx.pre.Clone()
		mid.Resume(rep.First.TID)
		mid.Cur = rep.First.TID
		vm.NewMachine(mid, vm.Sticky{}).Step()
		v1 := cellValue(mid, rep.Loc)
		v2 := cellValue(ctx.st, rep.Loc)
		if v1 != "" && v1 == v2 {
			return HeuristicVerdict{LikelyHarmless: true, Rule: "redundant-write"}, nil
		}
	}
	// Rule 2: read of a flag-like variable that only ever holds 0/1.
	if !rep.First.Write || !rep.Second.Write {
		post := cellValue(ctx.st, rep.Loc)
		if post == "0" || post == "1" {
			return HeuristicVerdict{LikelyHarmless: true, Rule: "flag-read"}, nil
		}
	}
	return HeuristicVerdict{}, nil
}

func cellValue(st *vm.State, loc vm.Loc) string {
	if loc.Space != vm.SpaceGlobal {
		return ""
	}
	if int(loc.Obj) >= len(st.Globals) {
		return ""
	}
	cells := st.Globals[loc.Obj]
	if loc.Elem < 0 || loc.Elem >= int64(len(cells)) {
		return ""
	}
	return cells[loc.Elem].String()
}
