package core

import (
	"repro/internal/bytecode"
	"repro/internal/ckpt"
	"repro/internal/explore"
	"repro/internal/expr"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vm"
)

// primaryPath is one completed primary execution discovered by multi-path
// exploration: the final state (with symbolic outputs and the path
// condition), the pre-race checkpoint, and the racing threads observed on
// this path.
type primaryPath struct {
	st                  *vm.State
	pre                 *vm.State
	firstTID, secondTID int
	result              vm.RunResult
}

// pathItem is one worklist entry during exploration.
type pathItem struct {
	st  *vm.State
	ctl vm.Controller

	pre     *vm.State
	preTID  int
	raceHit bool

	firstTID, secondTID int

	// skipped is the prefix length a checkpoint resume skipped; it is
	// charged against the item's first execution segment so a budget-
	// bound exploration stops at the same instruction it would have when
	// started from the root. Siblings forked before the charge is
	// consumed inherit it — a fork must not escape a charge its parent
	// still owed.
	skipped int64

	// mainline marks the exploration item that still follows the
	// recorded schedule from the root (or a resumed snapshot of it) —
	// the only item whose parked states are deposited into the symbolic
	// checkpoint store.
	mainline bool

	// forkID, when non-zero, names the stored symbolic-checkpoint fork
	// this item was resumed from. Explorations of different races resume
	// the same stored entries and re-run the same sibling forks; the ID
	// keys the sibling-outcome memo that lets later explorations skip
	// those re-runs (see collectPrimaries).
	forkID uint64
}

func cloneCtl(c vm.Controller) vm.Controller {
	if cc, ok := c.(vm.CloneableController); ok {
		return cc.CloneCtl()
	}
	return c
}

func replayerDiverged(c vm.Controller) bool {
	if r, ok := c.(*trace.Replayer); ok {
		return r.Diverged
	}
	return false
}

// mpResult is the outcome of the multi-path multi-schedule phase.
type mpResult struct {
	class       Class
	consequence Consequence
	detail      string
	outDiff     *OutputDivergence
	k           int
	branches    int
	primaries   int
	alternates  int
	truncated   int
}

// explorationRoot is the starting point of one race's multi-path
// exploration: the mainline item (root-started or checkpoint-resumed),
// the sibling items pending in the fork queue at the resumed snapshot
// (empty for root and concrete-checkpoint starts), and the exploration
// counters the skipped prefix accumulated — the engine must be seeded
// with branches/forksUsed and the truncation accounting with dropped, so
// the continuation behaves exactly as a root-started exploration.
type explorationRoot struct {
	item    *pathItem
	pending []*pathItem

	branches, forksUsed, dropped int
}

// multipathRoot builds the starting point of one race's multi-path
// exploration, trying the run's checkpoint stores from most to least
// informed:
//
//  1. The symbolic store: a snapshot of an earlier race's exploration
//     mainline, pending forks included. It already carries the minted
//     symbols, path condition, and concolic hints of its prefix, so it
//     is usable even when the prefix consumed symbolic inputs — the case
//     no concrete snapshot can cover. The prefix must not have touched
//     the racy object class (every exploration breakpoint and the race
//     point itself must still lie ahead) and must fit one root-started
//     segment budget, or a budget-bound continuation could explore work
//     its root-started twin would never reach.
//  2. The concrete replay store: usable only if the prefix additionally
//     (a) never touched the racy object and (b) consumed no input or
//     argument reads that symbolic execution would have made symbolic,
//     so re-arming the symbolic sources on the resumed state reproduces
//     the root-started execution bit for bit.
//  3. A full symbolic replay from the root.
func (c *Classifier) multipathRoot(rep *race.Report, tr *trace.Trace) explorationRoot {
	limit := rep.First.Global
	sym := c.shared.symFor(tr)
	if sym != nil && limit > 0 {
		accept := func(st *vm.State) bool {
			ac := findAccessCounter(st)
			return ac != nil && !ac.touchedObj(rep.Key.Space, rep.Key.Obj) &&
				st.Steps <= c.Opts.RunBudget
		}
		if r, ok := sym.Resume(limit, accept); ok {
			c.symHits++
			pending := make([]*pathItem, len(r.Forks))
			for i, f := range r.Forks {
				pending[i] = &pathItem{st: f.State, ctl: f.Ctl, forkID: f.ID}
			}
			return explorationRoot{
				item:      &pathItem{st: r.State, ctl: r.Ctl, skipped: r.Steps, mainline: true},
				pending:   pending,
				branches:  r.Branches,
				forksUsed: r.ForksUsed,
				dropped:   r.Dropped,
			}
		}
	}
	if store := c.shared.storeFor(tr); store != nil && limit > 0 {
		accept := func(st *vm.State) bool {
			ac := findAccessCounter(st)
			if ac == nil || ac.touchedObj(rep.Key.Space, rep.Key.Obj) {
				return false
			}
			if c.Opts.SymbolicInputs > 0 && st.In.Pos > 0 {
				return false
			}
			if len(c.Opts.SymbolicArgs) > 0 && st.ArgReads > 0 {
				return false
			}
			return true
		}
		if st, ctl, steps, ok := store.Resume(limit, accept); ok {
			c.ckptHits++
			// The counter stays attached: the mainline deposits symbolic
			// snapshots of its own, and their accept check needs the
			// prefix's touched-object record.
			if sym == nil {
				dropAccessCounter(st)
			}
			// Re-arm the symbolic sources exactly as newRootState does;
			// the accepted prefix consumed none of them.
			st.In.NSymbolic = c.Opts.SymbolicInputs
			for _, i := range c.Opts.SymbolicArgs {
				st.MarkSymArg(i)
			}
			return explorationRoot{item: &pathItem{st: st, ctl: ctl, skipped: steps, mainline: true}}
		}
	}
	root := c.newRootState(tr, true)
	if sym != nil {
		root.Observers = append(root.Observers, newAccessCounter())
	}
	return explorationRoot{item: &pathItem{
		st: root, ctl: trace.NewReplayer(tr, vm.NewRoundRobin()), mainline: true,
	}}
}

// depositSym snapshots the exploration mainline into the symbolic store:
// the parked state and its controller, the sibling states pending in the
// fork queue, and the exploration counters accumulated so far. Later
// races whose first racing access lies beyond this park — and whose racy
// object the prefix never touched — resume here instead of re-exploring
// from the root, even when the prefix consumed symbolic inputs. The
// store's cheap admission pre-check (duplicate/stride) keeps already-
// covered parks from paying for the clones.
//
// Parks whose prefix consumed no symbolic source are not deposited: such
// a prefix is exactly reproducible from the concrete store (which the
// detection pass and every replay feed anyway), so a symbolic snapshot
// there would only duplicate coverage at the price of cloning the state
// and its fork queue. The symbolic store holds what only it can hold —
// snapshots past the symbolic-input frontier.
func (c *Classifier) depositSym(sym *ckpt.SymStore, it *pathItem, work []*pathItem, eng *explore.Engine, dropped int) {
	if it.st.In.Pos == 0 && it.st.ArgReads == 0 {
		return
	}
	cc, ok := it.ctl.(vm.CloneableController)
	if !ok {
		return
	}
	var forks []ckpt.PendingFork
	if len(work) > 0 {
		forks = make([]ckpt.PendingFork, len(work))
		for i, w := range work {
			// Forward the fork's stored ID (zero for freshly forked
			// siblings): a still-unrun resumed fork re-deposited under a
			// later park is byte-identical to its original snapshot, and
			// keeping its ID lets one recorded sibling outcome serve
			// every entry that queues the fork.
			forks[i] = ckpt.PendingFork{State: w.st, Ctl: w.ctl, ID: w.forkID}
		}
	}
	sym.Add(it.st, cc, forks, eng.Branches(), c.Opts.MaxForks-eng.ForksLeft(), dropped)
}

// collectPrimaries explores up to Mp primary paths that (a) follow the
// recorded thread schedule up to the data race and (b) experience the
// target race (§3.3): inputs are symbolic, paths that diverge from the
// schedule before the race are pruned (Fig 5), and divergence is
// tolerated after the second racing access.
//
// The exploration is bounded twice: the pending-sibling queue holds at
// most Opts.MaxQueuedForks forks, and at most Opts.MaxPathItems worklist
// items are processed. Work the caps discard is counted and returned as
// truncated so verdicts can disclose that their coverage was clipped,
// instead of silently overstating k.
func (c *Classifier) collectPrimaries(rep *race.Report, tr *trace.Trace, eng *explore.Engine) (prims []*primaryPath, truncated int) {
	space, obj := rep.Key.Space, rep.Key.Obj
	firstLine := rep.First.PC.Line

	root := c.multipathRoot(rep, tr)
	eng.Seed(root.branches, root.forksUsed)
	work := append([]*pathItem{root.item}, root.pending...)
	sym := c.shared.symFor(tr)

	maxQueue := c.Opts.MaxQueuedForks
	maxItems := c.Opts.MaxPathItems
	dropped := root.dropped
	processed := 0
	for len(work) > 0 && len(prims) < c.Opts.Mp && processed < maxItems && c.canceled() == nil {
		processed++
		it := work[0]
		work = work[1:]

		// Static dead-item prune: if no live frame of any thread can —
		// per the static reach facts — access the racy object class or
		// reach a fork point with a possibly-symbolic operand, running
		// this item is provably inert: the racy-access breakpoint never
		// fires (so it cannot hit the race or become a primary), the
		// engine never forks (so the queue, the fork budget, and the
		// branch count are untouched), and a non-race completion is
		// discarded below without recording anything. Skipping it changes
		// work counters only, never the verdict. The mainline is exempt —
		// it carries the recorded schedule to the race by construction.
		if !it.mainline && !it.raceHit && c.staticDead(it.st, space, obj) {
			c.prunedSchedules++
			continue
		}
		c.pathItemsRun++

		// Sibling-outcome memoization: a resumed pending fork that a prior
		// exploration already ran to completion would repeat that run here
		// instruction for instruction — same state, same budget, and (when
		// the recorded run never touched this race's object) a breakpoint
		// that provably never fires. Such a run contributes no primary, no
		// fork, and no queue growth; only its branch decisions count.
		// Credit them from the memo and skip the re-run.
		var sibTrack *touchTrack
		branchesBefore := 0
		if it.forkID != 0 && sym != nil {
			if o, ok := sym.SiblingOutcome(it.forkID); ok {
				if !o.TouchedAny(space, normObj(space, obj)) {
					eng.Seed(o.Branches, 0)
					c.sibMemoHits++
					continue
				}
			} else {
				sibTrack = newTouchTrack()
				it.st.Observers = append(it.st.Observers, sibTrack)
				branchesBefore = eng.Branches()
			}
		}
		forkedThis := false

		m := c.newMachine(it.st, it.ctl)
		onFork := func(sib *vm.State) {
			forkedThis = true
			// Only the mainline deposits symbolic snapshots, so forked
			// siblings never consult the access counter — strip it before
			// it gets cloned down the sibling's whole subtree. The touch
			// tracker goes with it: a forked run is never memoized.
			dropAccessCounter(sib)
			dropTouchTrack(sib)
			if len(work) >= maxQueue {
				dropped++
				return
			}
			work = append(work, &pathItem{
				st: sib, ctl: cloneCtl(it.ctl),
				pre: it.pre, preTID: it.preTID, raceHit: it.raceHit,
				firstTID: it.firstTID, secondTID: it.secondTID,
				// Forward any still-uncharged skipped prefix. With the
				// current call sites this forwards 0 — every RunForking
				// budget goes through segBudget(), which consumes the
				// charge before a fork can fire — but the invariant ("no
				// item escapes its parent's undischarged budget charge")
				// is kept local here instead of depending on that
				// call-site discipline. A sibling must never carry a
				// charge its root-started twin would not: fork states are
				// step-identical between resumed and root-started runs,
				// so only a genuinely unconsumed charge may propagate.
				skipped: it.skipped,
			})
		}
		segBudget := func() int64 {
			b := c.Opts.RunBudget
			if it.skipped > 0 && b >= 0 {
				if b -= it.skipped; b < 0 {
					b = 0
				}
				it.skipped = 0
			}
			return b
		}

		pruned := false
		var res vm.RunResult
		for !it.raceHit {
			// Break at any access to the racy object: the first access is
			// matched strictly by its recorded source line, but the second
			// may occur at a different program counter on other paths —
			// the divergence tolerance that makes Fig 4's overflow
			// reachable ("cases in which the second racing access occurs
			// at a different program counter", §3.3).
			m.Break = func(st *vm.State, cur int, pc bytecode.PCRef, in bytecode.Instr) bool {
				return accessToObj(in, space, obj)
			}
			res = eng.RunForking(m, segBudget(), onFork)
			if res.Kind != vm.StopBreak {
				break // completed (or failed) without hitting the race
			}
			if replayerDiverged(it.ctl) {
				// The path broke the recorded schedule before the race:
				// prune it (Fig 5).
				pruned = true
				break
			}
			if sym != nil && it.mainline {
				// The mainline is parked on the recorded schedule between
				// instructions: a clean symbolic resume point for every
				// race further down the trace.
				c.depositSym(sym, it, work, eng, dropped)
			}
			tid := it.st.Cur
			line := currentLine(it.st)
			switch {
			case it.pre != nil && tid != it.preTID:
				// The race point: this path experiences the target race.
				it.raceHit = true
				it.firstTID = it.preTID
				it.secondTID = tid
				m.Break = nil
				m.Step() // complete the second racing access
			case line == firstLine:
				// (Re-)checkpoint before the most recent first access.
				it.pre = it.st.Clone()
				dropAccessCounter(it.pre) // enforcement clones need no counting
				dropTouchTrack(it.pre)
				it.preTID = tid
				m.Break = nil
				m.Step()
			default:
				m.Break = nil
				m.Step()
			}
		}
		if sibTrack != nil {
			dropTouchTrack(it.st)
			// Record only runs whose outcome is provably identical for any
			// later exploration that skips them: one uninterrupted segment
			// (terminal stop — not a breakpoint, not a cancellation) that
			// neither forked nor had a fork suppressed by an exhausted
			// budget. Forking depends only on the run's own branches and
			// the shared fork counter; a no-fork run with budget to spare
			// forks nothing on a re-run either.
			if !pruned && !it.raceHit && !forkedThis &&
				res.Kind != vm.StopBreak && res.Kind != vm.StopCancelled &&
				eng.ForksLeft() > 0 {
				sym.RecordSibling(it.forkID, ckpt.SiblingOutcome{
					Branches: eng.Branches() - branchesBefore,
					Touched:  sibTrack.list(),
				})
			}
		}
		if pruned || !it.raceHit {
			continue
		}
		// Post-race: run to completion (also for forked siblings that
		// inherited the race point); forks from here are additional
		// primaries sharing this pre-race checkpoint.
		switch {
		case it.st.Failure != nil:
			res = vm.RunResult{Kind: vm.StopError, Err: it.st.Failure}
		case it.st.Finished():
			res = vm.RunResult{Kind: vm.StopFinished}
		default:
			m.Break = nil
			// segBudget, not the raw RunBudget: should an item ever reach
			// this segment without its race-hit loop having run (inherited
			// race hit plus a forwarded charge), the skipped prefix is
			// still discharged exactly once.
			res = eng.RunForking(m, segBudget(), onFork)
		}
		prims = append(prims, &primaryPath{
			st: it.st, pre: it.pre,
			firstTID: it.firstTID, secondTID: it.secondTID,
			result: res,
		})
	}
	truncated = dropped
	if len(work) > 0 && len(prims) < c.Opts.Mp && c.canceled() == nil {
		// The loop ended on the item cap with pending work and fewer
		// primaries than requested: the abandoned items are coverage the
		// verdict claims but never examined.
		truncated += len(work)
	}
	return prims, truncated
}

// staticDead reports whether the static facts prove that no thread of st
// can ever access the racy object class again nor reach a fork point with
// a possibly-symbolic operand. Frame PCs are resume points (the caller's
// PC already sits past its CALL), which is exactly the per-pc reach
// granularity internal/sa computes; a frame parked at pc == len(code) has
// an empty reach set. Answers degrade safely: no facts, an index-less
// decoded artifact, or out-of-range coordinates all report "may".
func (c *Classifier) staticDead(st *vm.State, space vm.Space, obj int64) bool {
	f := c.Opts.StaticFacts
	if f == nil || c.Opts.NoStaticPrune {
		return false
	}
	for _, th := range st.Threads {
		for _, fr := range th.Frames {
			if f.FrameMayFork(fr.Fn, fr.PC) {
				return false
			}
			if space == vm.SpaceGlobal {
				if f.FrameMayTouchGlobal(fr.Fn, fr.PC, int(obj)) {
					return false
				}
			} else if f.FrameMayTouchHeap(fr.Fn, fr.PC) {
				return false
			}
		}
	}
	return true
}

func currentLine(st *vm.State) int32 {
	th := st.Threads[st.Cur]
	fr := th.Top()
	if fr == nil {
		return -1
	}
	code := st.Prog.Funcs[fr.Fn].Code
	if fr.PC >= len(code) {
		return -1
	}
	return code[fr.PC].Line
}

// altEval is the outcome of one alternate execution, reduced to exactly
// what the verdict merge needs. Evaluating an alternate is free of
// side effects on the classifier (the solver only accumulates atomic
// statistics), which is what lets the worklist fan out across workers.
type altEval struct {
	outcome enforceOutcome
	errText string // enfError: the runtime error message

	// Spec violation observed on the completed alternate (enfOK).
	bad    bool
	cons   Consequence
	detail string

	// Output divergence against the primary (enfOK, nil when matching).
	diff *OutputDivergence
}

// evalAlternate runs alternate j of primary pi to completion and
// compares its outputs against the primary's (§3.3.1, §3.4). It is
// safe to call concurrently for distinct (pi, j) pairs: it only reads
// the shared primaryPath and clones its pre-race checkpoint.
func (c *Classifier) evalAlternate(p *primaryPath, pi, j int, space vm.Space, obj int64) altEval {
	if c.canceled() != nil {
		// The outcome is discarded by ClassifyCtx's post-analysis cancel
		// check; enfTimeout merely keeps the merge loop's bookkeeping
		// neutral (no witness, no class change) until it unwinds.
		return altEval{outcome: enfTimeout}
	}
	var ctl vm.Controller = vm.NewRoundRobin()
	if c.Opts.MultiSchedule {
		ctl = vm.NewRandom(altSeed(c.Opts.Seed, pi, j))
	}
	pre := p.pre.Clone()
	// Alternate executions are fully concrete (§3.3.1): bind every
	// symbol to the path's witness values.
	pre.Concretize(p.st.Hints)
	enf := c.enforceAlternate(pre, p.firstTID, p.secondTID, space, obj, ctl)
	ev := altEval{outcome: enf.outcome}
	switch enf.outcome {
	case enfError:
		ev.errText = enf.err.Error()
	case enfOK:
		if cons, det, bad := specViolationOf(enf.final, enf.st); bad {
			ev.bad, ev.cons, ev.detail = true, cons, det
			break
		}
		if c.Opts.SymbolicOutput {
			ev.diff = c.symbolicOutputDiff(p.st, enf.st.Outputs)
		} else {
			ev.diff = concreteOutputDiff(concretizeOutputs(p.st), enf.st.Outputs)
		}
	}
	return ev
}

// multiPath is Algorithm 2 combined with multi-schedule analysis (§3.4):
// for each primary path, produce alternates (randomly scheduled when
// multi-schedule is enabled) and compare their concrete outputs against
// the primary's symbolic outputs.
//
// The primary×alternate worklist is evaluated either on demand in
// worklist order (sequential mode) or eagerly across the worker pool
// (parallel mode). Either way the verdict merge below consumes the
// evaluations in (primary, alternate) order and stops at the first
// conclusive one, so the resulting verdict — class, evidence, and the
// witness count — does not depend on the pool width. Parallel mode may
// evaluate alternates the sequential engine would have skipped after an
// early conclusive answer; that speculative work only shows up in the
// solver-query statistics, never in the verdict.
func (c *Classifier) multiPath(rep *race.Report, tr *trace.Trace) *mpResult {
	eng := explore.NewEngine(c.sol, c.Opts.MaxForks)
	prims, truncated := c.collectPrimaries(rep, tr, eng)

	out := &mpResult{class: KWitnessHarmless, branches: eng.Branches(), primaries: len(prims), truncated: truncated}
	if len(prims) == 0 {
		out.k = 1 // only the single-pre/single-post witness
		return out
	}

	space, obj := rep.Key.Space, rep.Key.Obj
	nAlt := 1
	if c.Opts.MultiSchedule {
		nAlt = c.Opts.Ma
	}

	get := func(pi, j int) altEval { return c.evalAlternate(prims[pi], pi, j, space, obj) }
	if workers := sched.Workers(c.Opts.Parallel); workers > 1 && len(prims)*nAlt > 1 {
		// The merge below inspects primary pi before any of its
		// alternates, and a conclusive primary ends the analysis — so
		// alternates past the first violating primary can never be
		// consulted. Checking the (cheap, pure) primary results up
		// front bounds the eager fan-out to the alternates the
		// sequential engine could actually reach.
		reachable := len(prims)
		for pi, p := range prims {
			if _, _, bad := specViolationOf(p.result, p.st); bad {
				reachable = pi
				break
			}
		}
		evals := make([]altEval, reachable*nAlt)
		sched.Map(workers, len(evals), func(i int) {
			evals[i] = c.evalAlternate(prims[i/nAlt], i/nAlt, i%nAlt, space, obj)
		})
		get = func(pi, j int) altEval { return evals[pi*nAlt+j] }
	}

	witnesses := 0
	for pi, p := range prims {
		if c.canceled() != nil {
			break
		}
		// A primary path itself may expose a violation (e.g. the Fig 4
		// overflow happens on the primary of another input).
		if cons, det, bad := specViolationOf(p.result, p.st); bad {
			out.class, out.consequence, out.detail = SpecViolated, cons, "primary path: "+det
			out.alternates = witnesses
			return out
		}

		for j := 0; j < nAlt; j++ {
			ev := get(pi, j)
			switch ev.outcome {
			case enfError:
				out.class, out.consequence, out.detail = SpecViolated, ConsCrash, "alternate: "+ev.errText
				out.alternates = witnesses
				return out
			case enfOK:
				if ev.bad {
					out.class, out.consequence, out.detail = SpecViolated, ev.cons, "alternate: "+ev.detail
					out.alternates = witnesses
					return out
				}
				if ev.diff != nil {
					out.class = OutputDiffers
					out.outDiff = ev.diff
					out.alternates = witnesses
					return out
				}
				witnesses++
			default:
				// Enforcement failed on this derived path; it contributes
				// no witness but does not change the class (the original
				// path already proved the alternate ordering feasible).
			}
		}
	}
	out.k = witnesses
	out.alternates = witnesses
	return out
}

// altSeed derives the RNG seed for alternate schedule j of primary pi by
// chaining the SplitMix64 finalizer (expr.Mix64, a bijection on uint64)
// over (Seed, pi, j). The previous linear form (Seed + 131·pi + 17·j + 1)
// collided for every pair of (pi, j) points differing by a multiple of
// (+17, −131) — two distinct alternates would silently run the same
// schedule, shrinking the real k below what the verdict claimed. With
// the bijective chain, a collision would require Mix64(h⊕(pi+1)) and
// Mix64(h⊕(pi′+1)) to land exactly (j+1)⊕(j′+1) apart, which no
// realistic Mp×Ma grid produces.
func altSeed(seed uint64, pi, j int) uint64 {
	h := expr.Mix64(seed)
	h = expr.Mix64(h ^ uint64(pi+1))
	h = expr.Mix64(h ^ uint64(j+1))
	return h
}
