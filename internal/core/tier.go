package core

import (
	"sync"

	"repro/internal/sa"
)

// CacheTier is a run-outliving handle on the engine's reuse machinery —
// the concrete and symbolic checkpoint stores and the memoizing solver
// cache — for callers (portendd) that analyze the same submission
// repeatedly and want the second run to start warm.
//
// Soundness contract: a tier may only be shared between runs of the
// identical (program, args, inputs, engine options). The engine is
// deterministic under that key — every run records the same trace
// instruction for instruction — so checkpoints deposited against one
// run's trace are states the next run's replay would pass through
// anyway, and resuming from them cannot change a verdict (the same
// argument the determinism suite pins for within-run cache reuse). The
// solver cache needs no key at all: Solve is a pure function of the
// query, so cross-run (even cross-program) hits are always sound. The
// server enforces the key by addressing tiers with a hash of the
// canonical submission.
//
// The checkpoint stores bind to one *trace.Trace by pointer identity.
// BeginRun clears that binding when no other run is active, letting the
// new run's trace bind; while runs overlap, later runs simply fail the
// binding and run checkpoint-cold (sharing only the solver cache) —
// degraded warmth, never degraded correctness.
type CacheTier struct {
	shared *sharedCaches

	mu     sync.Mutex
	active int
	runs   int64

	// pendingPreds are predicate observers restored from a snapshot
	// without their check functions (functions have no wire form); the
	// first run on the tier re-binds them from its effective options —
	// see bindPredicates.
	pendingPreds []pendingPred

	// facts caches the submission's static-analysis artifact. A tier is
	// keyed by the identical submission and the pass is a pure function
	// of the compiled program, so the first run's facts serve every later
	// one. factsSet distinguishes "computed nil" (an unresolvable target
	// — equally deterministic) from "not yet computed".
	facts    *sa.Facts
	factsSet bool
}

// StaticFacts returns the tier's cached static-analysis artifact,
// computing it via compute on first call. A nil compute result is cached
// too: target resolution failures repeat identically, and the dynamic
// path reports them with full context.
func (t *CacheTier) StaticFacts(compute func() *sa.Facts) *sa.Facts {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.factsSet {
		t.facts, t.factsSet = compute(), true
	}
	return t.facts
}

// NewCacheTier builds an empty tier sized by the options' cache bounds
// (MaxCheckpoints per store, SolverCacheCeiling for the adaptive solver
// cache).
func NewCacheTier(opts Options) *CacheTier {
	return &CacheTier{shared: newSharedCaches(opts)}
}

// BeginRun marks a run as using the tier and returns its end function.
// On the transition from idle, the checkpoint stores' trace binding is
// released so the run's freshly recorded trace can bind; entry contents
// are kept — that is the point of the tier. The returned end is
// idempotent and must be called when the run finishes.
func (t *CacheTier) BeginRun() (end func()) {
	t.mu.Lock()
	if t.active == 0 {
		t.shared.unbind()
	}
	t.active++
	t.runs++
	t.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.active--
			t.mu.Unlock()
		})
	}
}

// Runs returns how many runs have used the tier.
func (t *CacheTier) Runs() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.runs
}

// TierStats is a point-in-time snapshot of a tier's cache population and
// traffic, aggregated across every run that used it.
type TierStats struct {
	Checkpoints       int
	CheckpointHits    int
	CheckpointMisses  int
	CheckpointThinned int

	SymCheckpoints int
	SymHits        int
	SymMisses      int
	SymThinned     int
	SiblingMemos   int
	SibMemoHits    int

	SolverEntries   int
	SolverHits      int
	SolverMisses    int
	SolverEvictions int
	SolverCap       int
	SolverResizes   int
}

// Warm reports whether the tier holds anything a new run could reuse.
func (s TierStats) Warm() bool {
	return s.Checkpoints > 0 || s.SymCheckpoints > 0 || s.SolverEntries > 0
}

// Stats snapshots the tier's caches.
func (t *CacheTier) Stats() TierStats {
	sh := t.shared
	return TierStats{
		Checkpoints:       sh.store.Len(),
		CheckpointHits:    sh.store.Hits(),
		CheckpointMisses:  sh.store.Misses(),
		CheckpointThinned: sh.store.Thinned(),

		SymCheckpoints: sh.sym.Len(),
		SymHits:        sh.sym.Hits(),
		SymMisses:      sh.sym.Misses(),
		SymThinned:     sh.sym.Thinned(),
		SiblingMemos:   sh.sym.MemoLen(),
		SibMemoHits:    sh.sym.MemoHits(),

		SolverEntries:   sh.cache.Len(),
		SolverHits:      sh.cache.Hits(),
		SolverMisses:    sh.cache.Misses(),
		SolverEvictions: sh.cache.Evictions(),
		SolverCap:       sh.cache.Cap(),
		SolverResizes:   sh.cache.Resizes(),
	}
}
