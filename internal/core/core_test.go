package core

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

// classify runs end-to-end detection + classification on a PIL source.
func classify(t *testing.T, src string, opts Options, args, inputs []int64) *Result {
	t.Helper()
	p := bytecode.MustCompile(src, "coretest", bytecode.Options{})
	res := Run(p, args, inputs, opts)
	for _, err := range res.Errors {
		t.Fatalf("classification error: %v", err)
	}
	return res
}

// one returns the single verdict of a result.
func one(t *testing.T, res *Result) *Verdict {
	t.Helper()
	if len(res.Verdicts) != 1 {
		for _, v := range res.Verdicts {
			t.Logf("verdict: %s -> %s", v.Race.ID(), v)
		}
		t.Fatalf("want exactly 1 race, got %d", len(res.Verdicts))
	}
	return res.Verdicts[0]
}

// verdictOn finds the verdict for the race on the named global.
func verdictOn(t *testing.T, res *Result, global string) *Verdict {
	t.Helper()
	gid := int64(res.Prog.GlobalID(global))
	for _, v := range res.Verdicts {
		if v.Race.Key.Space == vm.SpaceGlobal && v.Race.Key.Obj == gid {
			return v
		}
	}
	t.Fatalf("no race found on global %q", global)
	return nil
}

const outDiffProg = `
var v = 0
fn t2() { v = 1 }
fn main() {
	let t = spawn t2()
	yield()
	print("v=", v)
	join(t)
}`

func TestClassifyOutputDiffers(t *testing.T) {
	res := classify(t, outDiffProg, DefaultOptions(), nil, nil)
	v := one(t, res)
	if v.Class != OutputDiffers {
		t.Fatalf("want outDiff, got %s (%s)", v.Class, v)
	}
	if v.OutputDiff == nil {
		t.Fatal("outDiff verdict must carry evidence")
	}
	if v.OutputDiff.Primary == v.OutputDiff.Altern {
		t.Fatalf("evidence shows no difference: %q vs %q", v.OutputDiff.Primary, v.OutputDiff.Altern)
	}
}

const kWitnessProg = `
var w = 0
fn t2() { w = 5 }
fn main() {
	let t = spawn t2()
	yield()
	w = 5
	join(t)
	print("w=", w)
}`

func TestClassifyKWitnessRedundantWrite(t *testing.T) {
	res := classify(t, kWitnessProg, DefaultOptions(), nil, nil)
	v := one(t, res)
	if v.Class != KWitnessHarmless {
		t.Fatalf("want k-witness, got %s (%s)", v.Class, v)
	}
	if v.K < 1 {
		t.Fatalf("k = %d", v.K)
	}
	if v.StatesDiffer {
		t.Fatal("redundant writes leave identical post-race states")
	}
}

const statesDifferProg = `
var lvl = 0
fn t2() { lvl = 2 }
fn main() {
	let t = spawn t2()
	yield()
	lvl = 3
	join(t)
	print("done")
}`

func TestClassifyKWitnessStatesDiffer(t *testing.T) {
	// Both orderings print "done": harmless, but the post-race memory
	// differs (lvl = 3 vs 2) — the case where the Record/Replay-Analyzer
	// criterion mispredicts harm (§5.2).
	res := classify(t, statesDifferProg, DefaultOptions(), nil, nil)
	v := one(t, res)
	if v.Class != KWitnessHarmless {
		t.Fatalf("want k-witness, got %s (%s)", v.Class, v)
	}
	if !v.StatesDiffer {
		t.Fatal("post-race states should differ")
	}
}

const crashAltProg = `
var idx = 4
var arr[4]
fn t2() {
	idx = 1
}
fn main() {
	let t = spawn t2()
	yield()
	arr[idx] = 7
	join(t)
}`

func TestClassifySpecViolCrashInAlternate(t *testing.T) {
	// Primary: t2 sets idx=1 before main indexes arr — fine. Alternate
	// ordering: main reads idx=4 first — out-of-bounds crash.
	res := classify(t, crashAltProg, DefaultOptions(), nil, nil)
	v := verdictOn(t, res, "idx")
	if v.Class != SpecViolated {
		t.Fatalf("want specViol, got %s (%s)", v.Class, v)
	}
	if v.Consequence != ConsCrash {
		t.Fatalf("want crash, got %s (%s)", v.Consequence, v.Detail)
	}
}

const adHocProg = `
var flag = 0
var data = 0
fn producer() {
	data = 42
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	flag = 1
}
fn main() {
	let p = spawn producer()
	while flag == 0 { usleep(50) }
	print("data=", data)
	join(p)
}`

func TestClassifySingleOrderingAdHoc(t *testing.T) {
	res := classify(t, adHocProg, DefaultOptions(), nil, nil)
	v := verdictOn(t, res, "flag")
	if v.Class != SingleOrdering {
		t.Fatalf("want singleOrd for the busy-wait flag, got %s (%s)", v.Class, v)
	}
	// The data race "behind" the flag is also ordering-protected: its
	// alternate cannot be enforced either (the flag spin never exits).
	d := verdictOn(t, res, "data")
	if d.Class != SingleOrdering {
		t.Fatalf("want singleOrd for data behind ad-hoc sync, got %s (%s)", d.Class, d)
	}
}

const infiniteLoopProg = `
var mode = 0
var never = 0
fn t2() {
	if mode == 0 {
		while never == 0 { }
	}
	print("t2 done")
}
fn main() {
	let t = spawn t2()
	mode = 1
	join(t)
}`

func TestClassifySpecViolInfiniteLoop(t *testing.T) {
	// Alternate ordering sends t2 into a loop whose exit condition no
	// live thread can modify: an infinite loop, not ad-hoc sync.
	res := classify(t, infiniteLoopProg, DefaultOptions(), nil, nil)
	v := verdictOn(t, res, "mode")
	if v.Class != SpecViolated {
		t.Fatalf("want specViol, got %s (%s)", v.Class, v)
	}
	if v.Consequence != ConsHang {
		t.Fatalf("want hang, got %s (%s)", v.Consequence, v.Detail)
	}
}

const deadlockProg = `
var state = 0
var go_flag = 0
mutex m
cond c
fn t2() {
	let s = state
	if s == 0 {
		lock(m)
		while go_flag == 0 { wait(c, m) }
		unlock(m)
	}
	print("t2 ok")
}
fn main() {
	let t = spawn t2()
	state = 1
	join(t)
}`

func TestClassifySpecViolDeadlock(t *testing.T) {
	// Alternate ordering: t2 reads state before main's init write and
	// waits forever for a signal that never comes; main blocks in join.
	res := classify(t, deadlockProg, DefaultOptions(), nil, nil)
	v := verdictOn(t, res, "state")
	if v.Class != SpecViolated {
		t.Fatalf("want specViol, got %s (%s)", v.Class, v)
	}
	if v.Consequence != ConsDeadlock {
		t.Fatalf("want deadlock, got %s (%s)", v.Consequence, v.Detail)
	}
}

const multiPathOutDiffProg = `
var g = 0
fn t2() { g = g + 1 }
fn main() {
	let t = spawn t2()
	let cfg = input()
	yield()
	let snapshot = g
	join(t)
	if cfg > 0 {
		print("snap ", snapshot)
	} else {
		print("done")
	}
}`

func TestMultiPathRevealsOutputDiff(t *testing.T) {
	// With the recorded input (0) both orderings print "done" — a
	// single-path classifier calls this harmless. The cfg>0 path reveals
	// the order-dependent snapshot.
	res := classify(t, multiPathOutDiffProg, DefaultOptions(), nil, []int64{0})
	v := one(t, res)
	if v.Class != OutputDiffers {
		t.Fatalf("want outDiff via multi-path, got %s (%s)", v.Class, v)
	}
}

func TestSinglePathMissesMultiPathDiff(t *testing.T) {
	opts := DefaultOptions()
	opts.MultiPath = false
	opts.MultiSchedule = false
	res := classify(t, multiPathOutDiffProg, opts, nil, []int64{0})
	v := one(t, res)
	if v.Class != KWitnessHarmless {
		t.Fatalf("single-path mode should (mis)classify as k-witness, got %s", v.Class)
	}
	if v.K != 1 {
		t.Fatalf("single-path witness count should be 1, got %d", v.K)
	}
}

// fig4Prog mirrors the Ctrace example of Fig 4: the race is harmless with
// the recorded input (hash-table path), but on the other input path the
// alternate ordering overflows a fixed-size buffer.
const fig4Prog = `
var id = 3
var table[8]
var arr[4]
fn reqHandler() {
	id = id + 1
}
fn updateStats() {
	let use_hash = input()
	if use_hash > 0 {
		print("hash ", table[id])
	} else {
		if id < 4 {
			arr[id] = 1
		}
	}
}
fn main() {
	let t1 = spawn reqHandler()
	let t2 = spawn updateStats()
	join(t1)
	join(t2)
}`

func TestFig4OverflowFoundByMultiPath(t *testing.T) {
	res := classify(t, fig4Prog, DefaultOptions(), nil, []int64{1})
	v := verdictOn(t, res, "id")
	if v.Class != SpecViolated {
		t.Fatalf("want specViol (Fig 4 overflow), got %s (%s)", v.Class, v)
	}
	if v.Consequence != ConsCrash {
		t.Fatalf("want crash, got %s (%s)", v.Consequence, v.Detail)
	}
}

func TestFig4MissedWithoutMultiPath(t *testing.T) {
	opts := DefaultOptions()
	opts.MultiPath = false
	opts.MultiSchedule = false
	res := classify(t, fig4Prog, opts, nil, []int64{1})
	v := verdictOn(t, res, "id")
	if v.Class != KWitnessHarmless {
		t.Fatalf("single-path should miss the overflow, got %s (%s)", v.Class, v)
	}
}

func TestAdHocGateOff(t *testing.T) {
	// Without ad-hoc detection (Fig 7's single-path baseline): the
	// busy-wait flag race looks harmless (its reversal is absorbed by
	// the poll loop), and the data race behind it — whose alternate
	// cannot be enforced — is conservatively treated as harmful, like
	// the Record/Replay-Analyzer on replay failure. Both are
	// misclassifications that ad-hoc detection fixes.
	opts := DefaultOptions()
	opts.AdHocDetection = false
	res := classify(t, adHocProg, opts, nil, nil)
	if v := verdictOn(t, res, "flag"); v.Class != KWitnessHarmless {
		t.Fatalf("flag race without ad-hoc detection: want k-witness, got %s", v.Class)
	}
	if v := verdictOn(t, res, "data"); v.Class != SpecViolated {
		t.Fatalf("data race without ad-hoc detection: want conservative specViol, got %s", v.Class)
	}
}

const semanticProg = `
var ts = 5
fn t2() {
	ts = 0 - 1
	ts = 7
}
fn main() {
	let t = spawn t2()
	yield()
	let snapshot = ts
	join(t)
	print("done")
}`

func TestSemanticPredicateViolation(t *testing.T) {
	p := bytecode.MustCompile(semanticProg, "sem", bytecode.Options{})
	opts := DefaultOptions()
	opts.Predicates = []Predicate{
		GlobalPredicate("timestamps non-negative", p.GlobalID("ts"), func(v int64) bool { return v >= 0 }),
	}
	res := Run(p, nil, nil, opts)
	if len(res.Errors) > 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if len(res.Verdicts) == 0 {
		t.Fatal("expected races")
	}
	found := false
	for _, v := range res.Verdicts {
		if v.Class == SpecViolated && v.Consequence == ConsSemantic {
			found = true
		}
	}
	if !found {
		t.Fatal("the transient negative timestamp should violate the predicate")
	}
	// Without the predicate the same race is not a semantic violation
	// (the negative value is overwritten, as in fmm §5.1).
	res2 := Run(p, nil, nil, DefaultOptions())
	for _, v := range res2.Verdicts {
		if v.Consequence == ConsSemantic {
			t.Fatal("no semantic violation expected without the predicate")
		}
	}
}

const whatIfProg = `
var items = 0
mutex m
fn worker() {
	lock(m)
	items = items + 1
	unlock(m)
}
fn main() {
	let a = spawn worker()
	lock(m)
	items = items + 10
	unlock(m)
	join(a)
	print("items=", items)
}`

func TestWhatIfAnalysis(t *testing.T) {
	// Lines 5 and 7 are worker's lock/unlock: removing them induces a
	// race whose consequences Portend predicts (§5.1).
	w, err := WhatIf(whatIfProg, "whatif", []int{5, 7}, nil, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.NewRaces) == 0 {
		t.Fatal("removing the lock must induce at least one new race")
	}
	// The base program has no races at all.
	base := classify(t, whatIfProg, DefaultOptions(), nil, nil)
	if len(base.Verdicts) != 0 {
		t.Fatal("base program should be race-free")
	}
}

func TestVerdictReportRendering(t *testing.T) {
	res := classify(t, outDiffProg, DefaultOptions(), nil, nil)
	v := one(t, res)
	rep := v.Report(res.Prog)
	for _, want := range []string{"Data race during access to: v", "classification: outDiff", "outputs differ"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestByClassAndRank(t *testing.T) {
	res := classify(t, outDiffProg, DefaultOptions(), nil, nil)
	byc := res.ByClass()
	if len(byc[OutputDiffers]) != 1 {
		t.Fatal("ByClass grouping wrong")
	}
	if !(HarmfulnessRank(SpecViolated) < HarmfulnessRank(OutputDiffers) &&
		HarmfulnessRank(OutputDiffers) < HarmfulnessRank(KWitnessHarmless) &&
		HarmfulnessRank(KWitnessHarmless) < HarmfulnessRank(SingleOrdering)) {
		t.Fatal("harmfulness ranking wrong")
	}
}

func TestOutputHashStable(t *testing.T) {
	res1 := classify(t, kWitnessProg, DefaultOptions(), nil, nil)
	res2 := classify(t, kWitnessProg, DefaultOptions(), nil, nil)
	h1 := OutputHash(res1.Detection.Final.Outputs)
	h2 := OutputHash(res2.Detection.Final.Outputs)
	if h1 != h2 {
		t.Fatal("output hash must be deterministic")
	}
	res3 := classify(t, outDiffProg, DefaultOptions(), nil, nil)
	if OutputHash(res3.Detection.Final.Outputs) == h1 {
		t.Fatal("different outputs should hash differently")
	}
}

func TestStatsPopulated(t *testing.T) {
	res := classify(t, multiPathOutDiffProg, DefaultOptions(), nil, []int64{0})
	v := one(t, res)
	if v.Stats.Preemptions == 0 {
		t.Fatal("preemption count missing")
	}
	if v.Stats.Duration <= 0 {
		t.Fatal("duration missing")
	}
}

func TestClassifierDeterminism(t *testing.T) {
	for i := 0; i < 3; i++ {
		res := classify(t, multiPathOutDiffProg, DefaultOptions(), nil, []int64{0})
		v := one(t, res)
		if v.Class != OutputDiffers {
			t.Fatalf("iteration %d: got %s", i, v.Class)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if SpecViolated.String() != "specViol" || OutputDiffers.String() != "outDiff" ||
		KWitnessHarmless.String() != "k-witness" || SingleOrdering.String() != "singleOrd" {
		t.Fatal("class names wrong")
	}
	if ConsDeadlock.String() != "deadlock" || ConsCrash.String() != "crash" {
		t.Fatal("consequence names wrong")
	}
}
