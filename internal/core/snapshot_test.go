package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/bytecode"
)

// runOnTier runs one analysis against the tier, the way the server does:
// BeginRun to (re)bind the trace, Run with the tier attached, end.
func runOnTier(t *testing.T, tier *CacheTier, src string, inputs []int64) *Result {
	t.Helper()
	p := bytecode.MustCompile(src, "snaptest", bytecode.Options{})
	opts := DefaultOptions()
	opts.Parallel = 1
	opts.DetectCheckpointEvery = 64
	opts.Tier = tier
	end := tier.BeginRun()
	defer end()
	res := Run(p, nil, inputs, opts)
	for _, err := range res.Errors {
		t.Fatalf("classification error: %v", err)
	}
	return res
}

func newSnapshotTestTier() *CacheTier {
	opts := DefaultOptions()
	opts.Parallel = 1
	opts.DetectCheckpointEvery = 64
	return NewCacheTier(opts)
}

// TestTierSnapshotRoundTrip is the durability tentpole at the core seam:
// a populated tier survives Snapshot → gob → Restore with its stats
// intact, and a second run on the restored tier is warm (cross-run
// checkpoint hits) while producing byte-identical verdicts to a run on
// the original in-memory tier.
func TestTierSnapshotRoundTrip(t *testing.T) {
	tierA := newSnapshotTestTier()
	resA1 := runOnTier(t, tierA, detectSeedSrc, []int64{3})
	if len(resA1.Verdicts) < 3 {
		t.Fatalf("seed run produced %d verdicts, want >= 3", len(resA1.Verdicts))
	}
	statsA := tierA.Stats()
	if statsA.Checkpoints == 0 {
		t.Fatal("seed run deposited no checkpoints; snapshot test is vacuous")
	}

	// Serialize exactly like the durable store does (gob over the wire
	// struct), then restore into a fresh tier.
	snap := tierA.Snapshot()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var decoded TierSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	tierB := NewCacheTier(DefaultOptions())
	if err := tierB.Restore(&decoded); err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Stats fidelity: populations and traffic counters survive, so a
	// restarted daemon reports honest warmth.
	statsB := tierB.Stats()
	if statsB != statsA {
		t.Errorf("restored stats diverge:\n  orig     %+v\n  restored %+v", statsA, statsB)
	}
	if got, want := tierB.Runs(), tierA.Runs(); got != want {
		t.Errorf("restored Runs = %d, want %d", got, want)
	}
	if tierB.MemBytes() == 0 {
		t.Error("restored tier reports zero measured bytes")
	}

	// The restored tier must behave like the live one: warm second run,
	// byte-identical verdicts.
	resA2 := runOnTier(t, tierA, detectSeedSrc, []int64{3})
	resB2 := runOnTier(t, tierB, detectSeedSrc, []int64{3})
	if a, b := renderRun(resA2), renderRun(resB2); a != b {
		t.Errorf("restored tier changed verdicts\n--- live ---\n%s\n--- restored ---\n%s", a, b)
	}
	if hits := tierB.Stats().CheckpointHits - statsB.CheckpointHits; hits < 1 {
		t.Errorf("second run on restored tier reported no cross-run checkpoint hits (delta %d)", hits)
	}
	if !statsB.Warm() {
		t.Error("restored stats not Warm()")
	}
}

// TestSnapshotIfIdleRefusesActiveRun pins the mid-run guard: a snapshot
// taken while a run records would capture a trace prefix that the stored
// replay controllers overrun, so SnapshotIfIdle must refuse until the
// last active run ends.
func TestSnapshotIfIdleRefusesActiveRun(t *testing.T) {
	tier := newSnapshotTestTier()
	end1 := tier.BeginRun()
	end2 := tier.BeginRun()
	if _, ok := tier.SnapshotIfIdle(); ok {
		t.Fatal("SnapshotIfIdle succeeded with two active runs")
	}
	end1()
	if _, ok := tier.SnapshotIfIdle(); ok {
		t.Fatal("SnapshotIfIdle succeeded with one active run")
	}
	end2()
	if _, ok := tier.SnapshotIfIdle(); !ok {
		t.Fatal("SnapshotIfIdle refused an idle tier")
	}
}

// TestRestoreEmptySnapshot pins that restoring a snapshot of an empty
// tier (no program ever ran) is a no-op, not an error.
func TestRestoreEmptySnapshot(t *testing.T) {
	empty := newSnapshotTestTier()
	snap := empty.Snapshot()
	fresh := newSnapshotTestTier()
	if err := fresh.Restore(snap); err != nil {
		t.Fatalf("restore empty: %v", err)
	}
	if s := fresh.Stats(); s.Warm() {
		t.Errorf("empty restore produced warmth: %+v", s)
	}
}
