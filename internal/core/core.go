package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/lang"
	"repro/internal/race"
	"repro/internal/sa"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Result bundles a detection run with the classification of every
// detected race — the end-to-end Portend pipeline of Fig 2.
type Result struct {
	Prog      *bytecode.Program
	Detection *race.DetectionResult
	Verdicts  []*Verdict
	// Errors holds per-race classification errors. Each entry is
	// prefixed with the failing race's ID and appended in detection-
	// report order; races that classified successfully appear in
	// Verdicts instead, so the two slices do not share indexes.
	Errors []error
}

// YieldFunc consumes streamed classification outcomes: exactly one call
// per detected race, in detection-report order, carrying either the
// race's verdict or its classification error (never both). Returning
// false stops the run early — in-flight workers are cancelled and
// RunStream returns the partial Result without error.
type YieldFunc func(rep *race.Report, v *Verdict, err error) bool

// Run detects races in the program under the given concrete arguments and
// input log, then classifies each distinct race. It is the batch form of
// RunStream with a background context.
func Run(p *bytecode.Program, args, inputs []int64, opts Options) *Result {
	res, _ := RunStream(context.Background(), p, args, inputs, opts, nil)
	return res
}

// RunCtx is Run with cancellation: when ctx is cancelled (or its deadline
// passes), detection and every in-flight classification abort promptly
// and RunCtx returns the partial Result accumulated so far together with
// ctx's error. Partial results contain only fully classified races.
func RunCtx(ctx context.Context, p *bytecode.Program, args, inputs []int64, opts Options) (*Result, error) {
	return RunStream(ctx, p, args, inputs, opts, nil)
}

// RunStream is the engine's streaming entry point: verdicts are handed to
// yield incrementally, as soon as they and every earlier race's verdict
// have landed. Emission always follows detection-report order — the same
// deterministic merge order as the batch path — so the sequence of yields
// is byte-identical at every pool width; parallelism only shifts the
// moments at which they fire. A nil yield collects without streaming.
//
// Classification fans out across opts.Parallel workers (GOMAXPROCS when
// unset): each race is an independent analysis, so each worker task gets
// its own Classifier (and thus its own solver) and writes its outcome
// into a slot indexed by the race's position in the detection report
// list; slots are merged — and streamed — strictly in that order.
func RunStream(ctx context.Context, p *bytecode.Program, args, inputs []int64, opts Options, yield YieldFunc) (*Result, error) {
	budget := opts.RunBudget
	if budget <= 0 {
		budget = DefaultOptions().RunBudget
	}
	res := &Result{Prog: p}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// All races of this run share one trace, so they share one pair of
	// checkpoint stores (concrete replay + symbolic exploration) and one
	// memoizing solver cache. The bundle exists before detection runs:
	// the detection pass itself deposits replay checkpoints — at each new
	// race cluster's detection point and on a periodic cadence — so even
	// the trace's first classification resumes instead of paying a full
	// root replay. None of the caches can change a verdict (resume is
	// deterministic replay, memoized answers are what the deterministic
	// search would recompute); they only shift time, which the
	// determinism suite asserts by diffing cached vs uncached runs.
	// A caller-supplied CacheTier replaces the per-run bundle: its
	// contents outlive the run, so a repeat submission of the identical
	// (program, args, inputs, options) starts warm. The tier owner calls
	// BeginRun/end around RunStream; here the tier's bundle simply takes
	// the per-run bundle's place.
	inner := opts
	if !inner.NoCache && inner.shared == nil {
		if inner.Tier != nil {
			inner.Tier.bindPredicates(inner.Predicates)
			inner.shared = inner.Tier.shared
		} else {
			inner.shared = newSharedCaches(inner)
		}
	}
	// Static pre-analysis: run the internal/sa pass once per run (unless
	// the caller supplied cached facts, e.g. the server's admission-time
	// artifact) and thread the facts through detection checkpointing and
	// every classifier's multi-path prune. Like the caches, the static
	// consumers only shift work, never verdicts — the static determinism
	// suite asserts byte-identical verdicts with NoStaticPrune on and off.
	if !inner.NoStaticPrune && inner.StaticFacts == nil {
		inner.StaticFacts = sa.Analyze(p)
	}
	det := race.DetectWith(ctx, p, args, inputs, budget, detectionConfig(inner, inner.shared))
	res.Detection = det
	if err := ctx.Err(); err != nil {
		return res, err
	}
	n := len(det.Reports)

	// Split the pool between the two fan-out levels: when the races
	// alone saturate the pool, each race classifies with a sequential
	// inner engine; with few races the leftover width goes to each
	// race's primary×alternate worklist. This bounds the total
	// goroutine count (and the VM state clones they hold) by roughly
	// the pool width instead of its square. The split never changes a
	// verdict — pool width only affects wall-clock.
	workers := sched.Workers(opts.Parallel)
	if n > 0 {
		inner.Parallel = (workers + n - 1) / n
	}
	if workers > n {
		workers = n
	}

	type outcome struct {
		v   *Verdict
		err error
	}
	outs := make([]outcome, n)

	// merge folds slot i into the Result and streams it; it reports
	// whether the run should continue.
	merge := func(i int) bool {
		o := outs[i]
		rep := det.Reports[i]
		if o.err != nil {
			res.Errors = append(res.Errors, fmt.Errorf("%s: %w", rep.ID(), o.err))
		} else {
			res.Verdicts = append(res.Verdicts, o.v)
		}
		return yield == nil || yield(rep, o.v, o.err)
	}

	if workers <= 1 || n == 1 {
		// Sequential engine: classify and stream inline, in order.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			v, err := New(p, inner).ClassifyCtx(ctx, det.Reports[i], det.Trace)
			if cerr := ctx.Err(); cerr != nil {
				return res, cerr
			}
			outs[i] = outcome{v, err}
			if !merge(i) {
				return res, nil
			}
		}
		return res, nil
	}

	// Parallel engine: workers claim races from a shared cursor and
	// publish per-slot completion; the caller's goroutine merges and
	// streams slots strictly in index order. cctx lets an early stop
	// (yield returning false) or the caller's cancellation wind down
	// in-flight classifications promptly.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if cctx.Err() == nil {
					v, err := New(p, inner).ClassifyCtx(cctx, det.Reports[i], det.Trace)
					outs[i] = outcome{v, err}
				} else {
					outs[i] = outcome{err: cctx.Err()}
				}
				close(done[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return res, ctx.Err()
		}
		if err := ctx.Err(); err != nil {
			// The slot landed, but the run is cancelled: stop merging so
			// partial results hold only races classified before cancel.
			return res, err
		}
		if !merge(i) {
			return res, nil
		}
	}
	return res, nil
}

// detectionConfig builds the detection-phase checkpointing hooks for a
// run backed by the given shared caches (nil — caching off — yields the
// zero config and plain detection).
//
// Detection runs with the classifier's own observers attached (the
// all-object access counter, and the predicate observer when predicates
// are configured) so each snapshot is interchangeable with a state the
// classification replay would have produced itself: same prefix, same
// observer state, detector detached. The snapshot's controller is a
// replayer over the live trace pinned at the park's decision count —
// resuming it continues the recorded schedule exactly where the
// recording stood.
func detectionConfig(opts Options, shared *sharedCaches) race.DetectConfig {
	if shared == nil {
		return race.DetectConfig{}
	}
	var extra []vm.Observer
	if len(opts.Predicates) > 0 {
		extra = append(extra, &PredicateObserver{Preds: opts.Predicates})
	}
	extra = append(extra, newAccessCounter())
	every := opts.DetectCheckpointEvery
	if every == 0 {
		every = DefaultDetectCheckpointEvery
	}
	cfg := race.DetectConfig{
		Extra:         extra,
		SnapshotEvery: every, // negative: cluster-point deposits only
		Snapshot: func(st *vm.State, tr *trace.Trace, decisions int) {
			if store := shared.storeFor(tr); store != nil {
				store.Add(st, trace.ReplayerAt(tr, vm.NewRoundRobin(), decisions))
			}
		},
	}
	// Prioritize checkpoint placement near statically likely race pairs:
	// one extra deposit right before the first execution of each static
	// candidate site, so the classification of a race at that site resumes
	// from a snapshot immediately upstream of it instead of the nearest
	// geometric-cadence one. Snapshot parks never change what the machine
	// executes, so this shifts replay time only.
	if f := opts.StaticFacts; f != nil && !opts.NoStaticPrune {
		cfg.HotSite = f.CandidateSite
	}
	return cfg
}

// ByClass groups the verdicts by class.
func (r *Result) ByClass() map[Class][]*Verdict {
	m := map[Class][]*Verdict{}
	for _, v := range r.Verdicts {
		m[v.Class] = append(m[v.Class], v)
	}
	return m
}

// Report renders the full debugging-aid report for a verdict (§3.6,
// Fig 6): the race coordinates, the classification, the consequence, and
// the output-divergence evidence when present.
func (v *Verdict) Report(p *bytecode.Program) string {
	var b strings.Builder
	b.WriteString(v.Race.Describe(p))
	fmt.Fprintf(&b, "classification: %s\n", v.Class)
	switch v.Class {
	case SpecViolated:
		fmt.Fprintf(&b, "consequence: %s\n", v.Consequence)
		fmt.Fprintf(&b, "evidence: %s\n", v.Detail)
		b.WriteString("replay: deterministic (schedule trace + inputs recorded)\n")
	case OutputDiffers:
		if v.OutputDiff != nil {
			if v.OutputDiff.Index < 0 {
				fmt.Fprintf(&b, "output count differs: primary %d records, alternate %d records\n",
					v.OutputDiff.PrimaryN, v.OutputDiff.AltN)
			} else {
				fmt.Fprintf(&b, "outputs differ at record %d:\n  primary:   %q\n  alternate: %q\n",
					v.OutputDiff.Index, v.OutputDiff.Primary, v.OutputDiff.Altern)
			}
		}
	case KWitnessHarmless:
		fmt.Fprintf(&b, "harmless for k=%d path-schedule witnesses\n", v.K)
		fmt.Fprintf(&b, "post-race states %s (Record/Replay-Analyzer criterion)\n",
			map[bool]string{true: "differ", false: "same"}[v.StatesDiffer])
	case SingleOrdering:
		fmt.Fprintf(&b, "only one ordering of the accesses is possible: %s\n", v.Detail)
	}
	if v.Stats.TruncatedPaths > 0 {
		fmt.Fprintf(&b, "warning: multi-path exploration truncated (%d paths dropped by fork/worklist caps)\n",
			v.Stats.TruncatedPaths)
	}
	return b.String()
}

// WhatIfResult is the outcome of a what-if analysis (§5.1): the races
// that appear only once the targeted synchronization is removed, with
// their classifications.
type WhatIfResult struct {
	Modified *bytecode.Program
	NewRaces []*Verdict
	All      *Result
}

// WhatIf asks "is it safe to remove this synchronization?": it compiles
// the program twice — as written, and with the lock/unlock operations at
// the given source lines turned into no-ops — runs detection on both, and
// classifies the races that exist only in the modified program.
func WhatIf(src, name string, elideLines []int, args, inputs []int64, opts Options) (*WhatIfResult, error) {
	return WhatIfCtx(context.Background(), src, name, elideLines, args, inputs, opts)
}

// WhatIfCtx is WhatIf with cancellation; a cancelled ctx aborts both
// detection runs and the classification promptly, returning ctx's error.
func WhatIfCtx(ctx context.Context, src, name string, elideLines []int, args, inputs []int64, opts Options) (*WhatIfResult, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	base, err := bytecode.Compile(ast, name, bytecode.Options{})
	if err != nil {
		return nil, err
	}
	ast2, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	mod, err := bytecode.Compile(ast2, name+"-whatif", bytecode.Options{ElideSyncAtLines: elideLines})
	if err != nil {
		return nil, err
	}

	budget := opts.RunBudget
	if budget <= 0 {
		budget = DefaultOptions().RunBudget
	}
	baseDet := race.DetectCtx(ctx, base, args, inputs, budget)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	known := map[race.ClusterKey]bool{}
	for _, r := range baseDet.Reports {
		known[r.Key] = true
	}

	res, err := RunCtx(ctx, mod, args, inputs, opts)
	if err != nil {
		return nil, err
	}
	w := &WhatIfResult{Modified: mod, All: res}
	for _, v := range res.Verdicts {
		if !known[v.Race.Key] {
			w.NewRaces = append(w.NewRaces, v)
		}
	}
	return w, nil
}

// HarmfulnessRank orders classes by triage priority: specViol first, then
// outDiff, then k-witness, then singleOrd — the order in which a
// developer should inspect them (§1: "developers ... can fix the critical
// bugs first").
func HarmfulnessRank(c Class) int {
	switch c {
	case SpecViolated:
		return 0
	case OutputDiffers:
		return 1
	case KWitnessHarmless:
		return 2
	case SingleOrdering:
		return 3
	}
	return 4
}

// verify interface compliance at compile time.
var _ vm.Observer = (*PredicateObserver)(nil)
