package core

import (
	"fmt"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/lang"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/vm"
)

// Result bundles a detection run with the classification of every
// detected race — the end-to-end Portend pipeline of Fig 2.
type Result struct {
	Prog      *bytecode.Program
	Detection *race.DetectionResult
	Verdicts  []*Verdict
	// Errors holds per-race classification errors (indexes align with
	// the detection reports that failed; successful races appear in
	// Verdicts).
	Errors []error
}

// Run detects races in the program under the given concrete arguments and
// input log, then classifies each distinct race. This is the entry point
// used by cmd/portend, the examples and the evaluation harness.
//
// Classification fans out across opts.Parallel workers (GOMAXPROCS when
// unset): each race is an independent analysis, so each worker task gets
// its own Classifier (and thus its own solver) and writes its verdict
// into a slot indexed by the race's position in the detection report
// list. The merge below walks the slots in that order, which makes the
// resulting Verdicts and Errors identical to a sequential run.
func Run(p *bytecode.Program, args, inputs []int64, opts Options) *Result {
	budget := opts.RunBudget
	if budget <= 0 {
		budget = DefaultOptions().RunBudget
	}
	det := race.Detect(p, args, inputs, budget)
	res := &Result{Prog: p, Detection: det}

	// Split the pool between the two fan-out levels: when the races
	// alone saturate the pool, each race classifies with a sequential
	// inner engine; with few races the leftover width goes to each
	// race's primary×alternate worklist. This bounds the total
	// goroutine count (and the VM state clones they hold) by roughly
	// the pool width instead of its square. The split never changes a
	// verdict — pool width only affects wall-clock.
	workers := sched.Workers(opts.Parallel)
	inner := opts
	if n := len(det.Reports); n > 0 {
		inner.Parallel = (workers + n - 1) / n
	}

	type outcome struct {
		v   *Verdict
		err error
	}
	outs := make([]outcome, len(det.Reports))
	sched.Map(workers, len(det.Reports), func(i int) {
		cl := New(p, inner)
		v, err := cl.Classify(det.Reports[i], det.Trace)
		outs[i] = outcome{v, err}
	})
	for i, o := range outs {
		if o.err != nil {
			res.Errors = append(res.Errors, fmt.Errorf("%s: %w", det.Reports[i].ID(), o.err))
			continue
		}
		res.Verdicts = append(res.Verdicts, o.v)
	}
	return res
}

// ByClass groups the verdicts by class.
func (r *Result) ByClass() map[Class][]*Verdict {
	m := map[Class][]*Verdict{}
	for _, v := range r.Verdicts {
		m[v.Class] = append(m[v.Class], v)
	}
	return m
}

// Report renders the full debugging-aid report for a verdict (§3.6,
// Fig 6): the race coordinates, the classification, the consequence, and
// the output-divergence evidence when present.
func (v *Verdict) Report(p *bytecode.Program) string {
	var b strings.Builder
	b.WriteString(v.Race.Describe(p))
	fmt.Fprintf(&b, "classification: %s\n", v.Class)
	switch v.Class {
	case SpecViolated:
		fmt.Fprintf(&b, "consequence: %s\n", v.Consequence)
		fmt.Fprintf(&b, "evidence: %s\n", v.Detail)
		b.WriteString("replay: deterministic (schedule trace + inputs recorded)\n")
	case OutputDiffers:
		if v.OutputDiff != nil {
			if v.OutputDiff.Index < 0 {
				fmt.Fprintf(&b, "output count differs: primary %d records, alternate %d records\n",
					v.OutputDiff.PrimaryN, v.OutputDiff.AltN)
			} else {
				fmt.Fprintf(&b, "outputs differ at record %d:\n  primary:   %q\n  alternate: %q\n",
					v.OutputDiff.Index, v.OutputDiff.Primary, v.OutputDiff.Altern)
			}
		}
	case KWitnessHarmless:
		fmt.Fprintf(&b, "harmless for k=%d path-schedule witnesses\n", v.K)
		fmt.Fprintf(&b, "post-race states %s (Record/Replay-Analyzer criterion)\n",
			map[bool]string{true: "differ", false: "same"}[v.StatesDiffer])
	case SingleOrdering:
		fmt.Fprintf(&b, "only one ordering of the accesses is possible: %s\n", v.Detail)
	}
	return b.String()
}

// WhatIfResult is the outcome of a what-if analysis (§5.1): the races
// that appear only once the targeted synchronization is removed, with
// their classifications.
type WhatIfResult struct {
	Modified *bytecode.Program
	NewRaces []*Verdict
	All      *Result
}

// WhatIf asks "is it safe to remove this synchronization?": it compiles
// the program twice — as written, and with the lock/unlock operations at
// the given source lines turned into no-ops — runs detection on both, and
// classifies the races that exist only in the modified program.
func WhatIf(src, name string, elideLines []int, args, inputs []int64, opts Options) (*WhatIfResult, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	base, err := bytecode.Compile(ast, name, bytecode.Options{})
	if err != nil {
		return nil, err
	}
	ast2, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	mod, err := bytecode.Compile(ast2, name+"-whatif", bytecode.Options{ElideSyncAtLines: elideLines})
	if err != nil {
		return nil, err
	}

	budget := opts.RunBudget
	if budget <= 0 {
		budget = DefaultOptions().RunBudget
	}
	baseDet := race.Detect(base, args, inputs, budget)
	known := map[race.ClusterKey]bool{}
	for _, r := range baseDet.Reports {
		known[r.Key] = true
	}

	res := Run(mod, args, inputs, opts)
	w := &WhatIfResult{Modified: mod, All: res}
	for _, v := range res.Verdicts {
		if !known[v.Race.Key] {
			w.NewRaces = append(w.NewRaces, v)
		}
	}
	return w, nil
}

// HarmfulnessRank orders classes by triage priority: specViol first, then
// outDiff, then k-witness, then singleOrd — the order in which a
// developer should inspect them (§1: "developers ... can fix the critical
// bugs first").
func HarmfulnessRank(c Class) int {
	switch c {
	case SpecViolated:
		return 0
	case OutputDiffers:
		return 1
	case KWitnessHarmless:
		return 2
	case SingleOrdering:
		return 3
	}
	return 4
}

// verify interface compliance at compile time.
var _ vm.Observer = (*PredicateObserver)(nil)
