package core

import "testing"

// siblingSkipProg is shaped so the sibling-outcome memo can fire: the
// symbolic branch on input() forks an else-arm sibling that bypasses the
// entire race block and only touches `done`. The first race to resume a
// symbolic checkpoint runs that sibling once and records its outcome;
// every later race finds its own global absent from the memo's touched
// set and skips the re-run.
const siblingSkipProg = `
var g0 = 0
var g1 = 0
var g2 = 0
var g3 = 0
var done = 0
fn w0() { g0 = 7 }
fn w1() { g1 = 7 }
fn w2() { g2 = 7 }
fn w3() { g3 = 7 }
fn main() {
	let x = input()
	if x < 100 {
		let t0 = spawn w0()
		yield()
		g0 = 7
		join(t0)
		let t1 = spawn w1()
		yield()
		g1 = 7
		join(t1)
		let t2 = spawn w2()
		yield()
		g2 = 7
		join(t2)
		let t3 = spawn w3()
		yield()
		g3 = 7
		join(t3)
	}
	done = 1
	print("done=", done + x)
}`

// sumMemoHits totals SiblingMemoHits over all verdicts of a run.
func sumMemoHits(res *Result) int {
	n := 0
	for _, v := range res.Verdicts {
		n += v.Stats.SiblingMemoHits
	}
	return n
}

// memoOptions disables the static dead-item prune, which would otherwise
// skip this program's bypass siblings before the memo is consulted (the
// prune covers statically inert items; the memo additionally covers items
// with reachable symbolic branches that ran without forking).
func memoOptions() Options {
	o := DefaultOptions()
	o.NoStaticPrune = true
	return o
}

func TestSiblingMemoFires(t *testing.T) {
	res := classify(t, siblingSkipProg, memoOptions(), nil, []int64{2})
	if len(res.Verdicts) != 4 {
		t.Fatalf("want 4 verdicts, got %d", len(res.Verdicts))
	}
	if sumMemoHits(res) == 0 {
		t.Fatalf("sibling memo never fired across %d verdicts", len(res.Verdicts))
	}
}

// TestSiblingMemoPreservesVerdicts pins that skipping a memoized sibling
// re-run changes no verdict: with caches off the memo machinery is inert,
// and the rendered classes must match the cached run exactly.
func TestSiblingMemoPreservesVerdicts(t *testing.T) {
	warm := classify(t, siblingSkipProg, memoOptions(), nil, []int64{2})
	coldOpts := memoOptions()
	coldOpts.NoCache = true
	cold := classify(t, siblingSkipProg, coldOpts, nil, []int64{2})
	if sumMemoHits(warm) == 0 {
		t.Fatal("warm run recorded no memo hits")
	}
	if n := sumMemoHits(cold); n != 0 {
		t.Fatalf("cache-off run should not memoize, got %d hits", n)
	}
	if len(warm.Verdicts) != len(cold.Verdicts) {
		t.Fatalf("verdict count differs: caches on %d, off %d", len(warm.Verdicts), len(cold.Verdicts))
	}
	for i := range warm.Verdicts {
		w, c := warm.Verdicts[i], cold.Verdicts[i]
		if w.Race.ID() != c.Race.ID() || w.String() != c.String() {
			t.Errorf("verdict %d differs: caches on %s -> %s, off %s -> %s",
				i, w.Race.ID(), w, c.Race.ID(), c)
		}
	}
}
