package core

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/expr"
	"repro/internal/vm"
)

func mkOut(parts ...any) vm.Output {
	o := vm.Output{}
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			o.Parts = append(o.Parts, vm.OutPart{Lit: v})
		case int:
			o.Parts = append(o.Parts, vm.OutPart{E: expr.NewConst(int64(v))})
		case expr.Expr:
			o.Parts = append(o.Parts, vm.OutPart{E: v})
		}
	}
	return o
}

func TestConcreteOutputDiff(t *testing.T) {
	a := []vm.Output{mkOut("x=", 1), mkOut("y=", 2)}
	same := []vm.Output{mkOut("x=", 1), mkOut("y=", 2)}
	if d := concreteOutputDiff(a, same); d != nil {
		t.Fatalf("equal outputs flagged: %+v", d)
	}
	diffVal := []vm.Output{mkOut("x=", 1), mkOut("y=", 3)}
	d := concreteOutputDiff(a, diffVal)
	if d == nil || d.Index != 1 {
		t.Fatalf("value diff not found: %+v", d)
	}
	short := []vm.Output{mkOut("x=", 1)}
	d = concreteOutputDiff(a, short)
	if d == nil || d.Index != -1 || d.PrimaryN != 2 || d.AltN != 1 {
		t.Fatalf("count diff wrong: %+v", d)
	}
}

// symState builds a fake "primary" state with the given outputs, path
// condition, and hints.
func symState(t *testing.T, outs []vm.Output, pc []expr.Expr, hints expr.Assignment) *vm.State {
	t.Helper()
	p := bytecode.MustCompile(`fn main() {}`, "stub", bytecode.Options{})
	st := vm.NewState(p, nil, nil)
	st.Outputs = outs
	st.PathCond = pc
	for k, v := range hints {
		st.SetHint(k, v)
	}
	return st
}

func TestSymbolicOutputMatch(t *testing.T) {
	c := New(bytecode.MustCompile(`fn main() {}`, "stub", bytecode.Options{}), DefaultOptions())
	x := expr.NewSym("in0")
	// primary printed in0+1 under constraint in0 >= 0 (witness in0=7)
	prim := symState(t,
		[]vm.Output{mkOut("v=", expr.Add(x, expr.NewConst(1)))},
		[]expr.Expr{expr.Ge(x, expr.NewConst(0))},
		expr.Assignment{"in0": 7})

	// alternate printed 8: satisfiable with in0=7 → match.
	if d := c.symbolicOutputDiff(prim, []vm.Output{mkOut("v=", 8)}); d != nil {
		t.Fatalf("8 satisfies in0+1 under in0>=0: %+v", d)
	}
	// alternate printed 100: satisfiable with in0=99 → match (the point
	// of symbolic comparison: generalizes beyond the witness).
	if d := c.symbolicOutputDiff(prim, []vm.Output{mkOut("v=", 100)}); d != nil {
		t.Fatalf("100 satisfies in0+1 under in0>=0: %+v", d)
	}
	// alternate printed -5: in0 = -6 violates the path condition → diff.
	d := c.symbolicOutputDiff(prim, []vm.Output{mkOut("v=", -5)})
	if d == nil || d.Index != 0 {
		t.Fatalf("-5 cannot satisfy the constraints: %+v", d)
	}
}

func TestSymbolicOutputLiteralAndCountMismatch(t *testing.T) {
	c := New(bytecode.MustCompile(`fn main() {}`, "stub", bytecode.Options{}), DefaultOptions())
	prim := symState(t, []vm.Output{mkOut("tag=", 1)}, nil, nil)
	if d := c.symbolicOutputDiff(prim, []vm.Output{mkOut("other=", 1)}); d == nil {
		t.Fatal("literal mismatch must be a diff")
	}
	if d := c.symbolicOutputDiff(prim, nil); d == nil || d.Index != -1 {
		t.Fatalf("count mismatch must be index -1: %+v", d)
	}
}

func TestSymbolicOutputConjunctionAcrossRecords(t *testing.T) {
	c := New(bytecode.MustCompile(`fn main() {}`, "stub", bytecode.Options{}), DefaultOptions())
	x := expr.NewSym("in0")
	// primary printed in0 and then in0+1: one assignment must satisfy
	// both equalities simultaneously.
	prim := symState(t,
		[]vm.Output{mkOut(expr.Expr(x)), mkOut(expr.Add(x, expr.NewConst(1)))},
		nil, expr.Assignment{"in0": 3})
	// (5, 6) is consistent.
	if d := c.symbolicOutputDiff(prim, []vm.Output{mkOut(5), mkOut(6)}); d != nil {
		t.Fatalf("consistent pair flagged: %+v", d)
	}
	// (5, 9) is jointly unsatisfiable even though each value alone is fine.
	if d := c.symbolicOutputDiff(prim, []vm.Output{mkOut(5), mkOut(9)}); d == nil {
		t.Fatal("inconsistent pair must be a diff")
	}
}

func TestConcretizeOutputs(t *testing.T) {
	x := expr.NewSym("in0")
	prim := symState(t, []vm.Output{mkOut("v=", expr.Add(x, expr.NewConst(1)))}, nil,
		expr.Assignment{"in0": 41})
	outs := concretizeOutputs(prim)
	if outs[0].String() != "v=42" {
		t.Fatalf("got %q", outs[0].String())
	}
	// The original state keeps its symbolic outputs.
	if expr.IsConcrete(prim.Outputs[0].Parts[1].E) {
		t.Fatal("concretizeOutputs must not mutate the state")
	}
}

func TestMergeHints(t *testing.T) {
	a := expr.Assignment{"x": 1, "y": 2}
	b := expr.Assignment{"y": 9, "z": 3}
	m := mergeHints(a, b)
	if m["x"] != 1 || m["y"] != 9 || m["z"] != 3 {
		t.Fatalf("got %v", m)
	}
	if a["y"] != 2 {
		t.Fatal("mergeHints must not mutate inputs")
	}
}
