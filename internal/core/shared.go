package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/ckpt"
	"repro/internal/solver"
	"repro/internal/trace"
	"repro/internal/vm"
)

// sharedCaches bundles the per-analysis-run reuse machinery: the
// concrete replay checkpoint store (replays resume from the nearest
// prior snapshot instead of the program's initial state — populated by
// the detection pass and by classification replays), the symbolic
// checkpoint store (multi-path explorations resume from prior
// explorations' mainline snapshots, pending forks included), and the
// memoizing solver cache (structurally identical queries are answered
// once). RunStream creates one bundle per run and threads it through
// every Classifier it builds; a Classifier constructed directly gets a
// private bundle, so repeated Classify calls on one classifier still
// reuse work.
//
// None of the caches changes a verdict: checkpoint resume is
// deterministic replay from a state full replay would pass through
// anyway (symbolic resumes additionally requeue the pending forks and
// pre-charge the exploration counters the skipped prefix accumulated),
// and the solver cache only returns results the same deterministic
// search would recompute. The caches trade memory for time, nothing
// else — which is what the determinism suite asserts by diffing cached
// against uncached runs byte for byte.
type sharedCaches struct {
	store *ckpt.Store
	sym   *ckpt.SymStore
	cache *solver.Cache

	mu sync.Mutex
	tr *trace.Trace // the trace both checkpoint stores serve
}

func newSharedCaches(opts Options) *sharedCaches {
	return &sharedCaches{
		store: ckpt.NewStore(opts.MaxCheckpoints),
		sym:   ckpt.NewSymStore(opts.MaxCheckpoints),
		cache: solver.NewAdaptiveCache(0, opts.SolverCacheCeiling),
	}
}

// unbind releases the bundle's trace binding so the next run can bind
// its own trace. Only CacheTier.BeginRun calls this, and only on the
// 0→1 active-run transition: stored checkpoints are positions within a
// recorded schedule, and a tier's reuse contract (identical program,
// args, inputs, options ⇒ identical recorded trace) is what makes
// entries recorded against the previous run's trace valid for the next.
func (s *sharedCaches) unbind() {
	s.mu.Lock()
	s.tr = nil
	s.mu.Unlock()
}

// bindTrace binds the bundle to tr on first use and reports whether tr
// is the bundle's trace. Checkpoints are positions within one recorded
// schedule; if a classifier with a private bundle is asked about a
// different trace, the stores decline rather than resume from another
// execution's states.
func (s *sharedCaches) bindTrace(tr *trace.Trace) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tr == nil {
		s.tr = tr
	}
	return s.tr == tr
}

// storeFor returns the concrete checkpoint store serving tr, or nil.
func (s *sharedCaches) storeFor(tr *trace.Trace) *ckpt.Store {
	if s == nil || tr == nil || !s.bindTrace(tr) {
		return nil
	}
	return s.store
}

// symFor returns the symbolic checkpoint store serving tr, or nil.
func (s *sharedCaches) symFor(tr *trace.Trace) *ckpt.SymStore {
	if s == nil || tr == nil || !s.bindTrace(tr) {
		return nil
	}
	return s.sym
}

// solverCache returns the shared solver memo (nil when caching is off).
func (s *sharedCaches) solverCache() *solver.Cache {
	if s == nil {
		return nil
	}
	return s.cache
}

// counterKey addresses read counts: object class × reading thread ×
// source line. Heap objects collapse to one class (obj 0), mirroring the
// race detector's clustering — a heap race's spin analysis considers all
// heap reads from a line, exactly as the per-race counter did.
type counterKey struct {
	space vm.Space
	obj   int64
	tid   int64
	line  int32
}

// objClass identifies an object class the way race reports do.
type objClass struct {
	space vm.Space
	obj   int64
}

// accessCounter observes every shared memory access of a replay. It
// subsumes the per-race read counter: reads are counted per (object
// class, thread, line) for all objects at once, so the counts for any
// race can be projected out afterwards — which is what makes a replay
// state (and its checkpoint snapshots) reusable across races. It also
// records which object classes have been touched at all (reads or
// writes); a checkpoint is a safe multi-path resume point for a race
// only if its prefix never touched the racy object.
// Cloning is copy-on-write: CloneObs shares the maps and marks both
// sides shared, and the first access on either side copies them (own) —
// checkpoint deposits of replay states clone this observer constantly
// and read it rarely.
type accessCounter struct {
	reads   map[counterKey]int
	touched map[objClass]bool
	shared  uint32 // atomic; 1 while the maps may be shared with a clone
}

func newAccessCounter() *accessCounter {
	return &accessCounter{reads: map[counterKey]int{}, touched: map[objClass]bool{}}
}

// own copies the maps if a clone may still reference them.
func (ac *accessCounter) own() {
	if atomic.LoadUint32(&ac.shared) == 0 {
		return
	}
	reads := make(map[counterKey]int, len(ac.reads))
	for k, v := range ac.reads {
		reads[k] = v
	}
	touched := make(map[objClass]bool, len(ac.touched))
	for k, v := range ac.touched {
		touched[k] = v
	}
	ac.reads, ac.touched = reads, touched
	atomic.StoreUint32(&ac.shared, 0)
}

func normObj(space vm.Space, obj int64) int64 {
	if space == vm.SpaceHeap {
		return 0
	}
	return obj
}

// OnAccess implements vm.Observer.
func (ac *accessCounter) OnAccess(st *vm.State, tid int, loc vm.Loc, write bool, pc bytecode.PCRef, tInstr int64) {
	ac.own()
	obj := normObj(loc.Space, loc.Obj)
	ac.touched[objClass{loc.Space, obj}] = true
	if !write {
		ac.reads[counterKey{loc.Space, obj, int64(tid), pc.Line}]++
	}
}

// OnSync implements vm.Observer (no-op).
func (ac *accessCounter) OnSync(st *vm.State, ev vm.SyncEvent) {}

// CloneObs implements vm.Observer; O(1), see the type comment.
func (ac *accessCounter) CloneObs() vm.Observer {
	atomic.StoreUint32(&ac.shared, 1)
	return &accessCounter{reads: ac.reads, touched: ac.touched, shared: 1}
}

// readsAt projects the read count of one race's object class at (tid,
// line) — the quantity the busy-wait-poll (spinRead) test consumes.
func (ac *accessCounter) readsAt(space vm.Space, obj int64, tid int, line int32) int {
	return ac.reads[counterKey{space, normObj(space, obj), int64(tid), line}]
}

// touchedObj reports whether the object class has been accessed at all.
func (ac *accessCounter) touchedObj(space vm.Space, obj int64) bool {
	return ac.touched[objClass{space, normObj(space, obj)}]
}

// touchTrack is the minimal observer behind sibling-outcome memoization:
// it records only which object classes a run accesses (no read counts),
// so a completed pending-fork run can be summarized as "touched these
// objects, decided this many branches" and skipped by later explorations
// whose racy object is not in the set.
// It copy-on-writes its map the same way accessCounter does.
type touchTrack struct {
	touched map[objClass]bool
	shared  uint32 // atomic; 1 while the map may be shared with a clone
}

func newTouchTrack() *touchTrack { return &touchTrack{touched: map[objClass]bool{}} }

// OnAccess implements vm.Observer.
func (t *touchTrack) OnAccess(st *vm.State, tid int, loc vm.Loc, write bool, pc bytecode.PCRef, tInstr int64) {
	if atomic.LoadUint32(&t.shared) != 0 {
		touched := make(map[objClass]bool, len(t.touched))
		for k, v := range t.touched {
			touched[k] = v
		}
		t.touched = touched
		atomic.StoreUint32(&t.shared, 0)
	}
	t.touched[objClass{loc.Space, normObj(loc.Space, loc.Obj)}] = true
}

// OnSync implements vm.Observer (no-op).
func (t *touchTrack) OnSync(st *vm.State, ev vm.SyncEvent) {}

// CloneObs implements vm.Observer; O(1), see accessCounter.
func (t *touchTrack) CloneObs() vm.Observer {
	atomic.StoreUint32(&t.shared, 1)
	return &touchTrack{touched: t.touched, shared: 1}
}

// list renders the touched set as ckpt's wire form, sorted so the memo
// entry is independent of map iteration order.
func (t *touchTrack) list() []ckpt.TouchedObj {
	out := make([]ckpt.TouchedObj, 0, len(t.touched))
	for k := range t.touched {
		out = append(out, ckpt.TouchedObj{Space: k.space, Obj: k.obj})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Space != out[j].Space {
			return out[i].Space < out[j].Space
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// dropTouchTrack removes the touch tracker from a state's observers.
func dropTouchTrack(st *vm.State) {
	for i, o := range st.Observers {
		if _, ok := o.(*touchTrack); ok {
			st.Observers = append(st.Observers[:i], st.Observers[i+1:]...)
			return
		}
	}
}

// findAccessCounter retrieves the replay's access counter, if any.
func findAccessCounter(st *vm.State) *accessCounter {
	for _, o := range st.Observers {
		if ac, ok := o.(*accessCounter); ok {
			return ac
		}
	}
	return nil
}

// dropAccessCounter removes the access counter from a state's observers.
// Checkpoint snapshots keep their counter (resumed replays must continue
// counting where the prefix left off), but states handed to enforcement
// and multi-path exploration do not need one — nothing reads it past the
// replay — so stripping it spares every downstream clone the map copies.
func dropAccessCounter(st *vm.State) {
	for i, o := range st.Observers {
		if _, ok := o.(*accessCounter); ok {
			st.Observers = append(st.Observers[:i], st.Observers[i+1:]...)
			return
		}
	}
}
