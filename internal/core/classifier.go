package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/race"
	"repro/internal/solver"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Classifier analyzes race reports against a program. It is the
// "Analysis & Classification Engine" box of Fig 2.
type Classifier struct {
	Prog *bytecode.Program
	Opts Options
	sol  *solver.Solver

	// shared is the run-wide reuse machinery (concrete and symbolic
	// checkpoint stores, solver memo); nil when Options.NoCache disabled
	// it. ckptHits counts this classifier's replays that resumed from the
	// concrete store; symHits counts multi-path explorations that resumed
	// from the symbolic store. Both are only touched from the goroutine
	// driving ClassifyCtx.
	shared      *sharedCaches
	ckptHits    int
	symHits     int
	sibMemoHits int // pending-fork re-runs skipped via the sibling memo

	// prunedSchedules counts worklist items the static dead-item prune
	// skipped; pathItemsRun counts items that executed. Both are only
	// touched from the goroutine driving ClassifyCtx.
	prunedSchedules int
	pathItemsRun    int

	// vmCounters aggregates interpreter fast-path tallies (fused
	// superinstructions, interned constants) across every machine this
	// classification creates, including the parallel alternate workers.
	vmCounters vm.Counters

	// ctx/interrupt carry ClassifyCtx's cancellation to every machine,
	// exploration loop, and solver query the classification spawns.
	// They are set once per ClassifyCtx call, before any concurrent
	// phase starts, and are read-only afterwards.
	ctx       context.Context
	interrupt func() bool
}

// canceled returns the classification context's error, if any.
func (c *Classifier) canceled() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// newMachine builds a machine wired to the classification's cancellation
// and fast-path accounting.
func (c *Classifier) newMachine(st *vm.State, ctl vm.Controller) *vm.Machine {
	m := vm.NewMachine(st, ctl)
	m.Interrupt = c.interrupt
	m.Counters = &c.vmCounters
	// The state (and every state cloned from it) meters its Clone costs
	// into the same counters, so Stats.CloneAllocs/CloneBytes cover the
	// checkpoint deposits and forks this classification performs.
	st.SetCounters(&c.vmCounters)
	return m
}

// New returns a classifier; zero fields of opts fall back to defaults.
// A Seed of 0 is treated as "unset" only when opts.SeedSet is false —
// callers that mark the seed explicit can pin seed 0 and have it
// round-trip unchanged.
func New(prog *bytecode.Program, opts Options) *Classifier {
	d := DefaultOptions()
	if opts.Mp <= 0 {
		opts.Mp = d.Mp
	}
	if opts.Ma <= 0 {
		opts.Ma = d.Ma
	}
	if opts.EnforceBudget <= 0 {
		opts.EnforceBudget = d.EnforceBudget
	}
	if opts.RunBudget <= 0 {
		opts.RunBudget = d.RunBudget
	}
	if opts.MaxForks <= 0 {
		opts.MaxForks = d.MaxForks
	}
	if opts.MaxQueuedForks <= 0 {
		opts.MaxQueuedForks = d.MaxQueuedForks
	}
	if opts.MaxPathItems <= 0 {
		opts.MaxPathItems = 4*opts.Mp + 32
	}
	if opts.Seed == 0 && !opts.SeedSet {
		opts.Seed = d.Seed
	}
	shared := opts.shared
	if shared == nil && !opts.NoCache {
		if opts.Tier != nil {
			opts.Tier.bindPredicates(opts.Predicates)
			shared = opts.Tier.shared
		} else {
			shared = newSharedCaches(opts)
		}
	}
	sol := solver.New(opts.Solver)
	sol.Cache = shared.solverCache()
	return &Classifier{Prog: prog, Opts: opts, sol: sol, shared: shared}
}

// Classify runs the full Portend analysis on one race report: replay,
// single-pre/single-post (Algorithm 1), and — when the single analysis is
// inconclusive ("outSame") — multi-path multi-schedule analysis with
// symbolic output comparison (Algorithm 2).
func (c *Classifier) Classify(rep *race.Report, tr *trace.Trace) (*Verdict, error) {
	return c.ClassifyCtx(context.Background(), rep, tr)
}

// ClassifyCtx is Classify with cancellation: an already-cancelled ctx
// returns immediately, and a cancel or deadline mid-analysis interrupts
// the replay machines, the multi-path worklist, and the solver, returning
// ctx's error. A verdict is returned only when the analysis ran to
// completion — never a partially analyzed (and thus unreliable) class.
func (c *Classifier) ClassifyCtx(cctx context.Context, rep *race.Report, tr *trace.Trace) (*Verdict, error) {
	// Rebind (or clear) the hooks on every call: a Classifier reused
	// after a cancellable-ctx call must not keep polling the old one.
	c.ctx = cctx
	c.interrupt = nil
	if cctx.Done() != nil {
		c.interrupt = func() bool { return cctx.Err() != nil }
	}
	c.sol.Interrupt = c.interrupt
	if err := c.canceled(); err != nil {
		return nil, err
	}

	start := time.Now()
	snap := c.snapStats()
	v := &Verdict{Race: rep, K: 1}
	v.Stats.Preemptions = len(tr.Decisions)

	ctx, err := c.replayToRace(rep, tr)
	if err != nil {
		return nil, err
	}

	a := c.singleClassify(ctx)
	if err := c.canceled(); err != nil {
		return nil, err
	}
	v.StatesDiffer = a.statesDiffer
	if !a.outSame {
		v.Class = a.class
		v.Consequence = a.consequence
		v.Detail = a.detail
		v.OutputDiff = a.outDiff
		c.finishStats(v, nil, snap, start)
		return v, nil
	}

	if !c.Opts.MultiPath {
		// Single-path mode: the only evidence is the one alternate that
		// matched — a 1-witness harmless verdict.
		v.Class = KWitnessHarmless
		v.K = 1
		c.finishStats(v, nil, snap, start)
		return v, nil
	}

	mp := c.multiPath(rep, tr)
	if err := c.canceled(); err != nil {
		return nil, err
	}
	v.Class = mp.class
	v.Consequence = mp.consequence
	v.Detail = mp.detail
	v.OutputDiff = mp.outDiff
	if v.Class == KWitnessHarmless {
		v.K = mp.k
		if v.K < 1 {
			v.K = 1
		}
	}
	c.finishStats(v, mp, snap, start)
	return v, nil
}

// statsSnap is the counter baseline taken at the start of one
// classification; finishStats turns it into per-race deltas.
type statsSnap struct {
	queries, cacheHits, ckptHits, symHits, evictions int
	sibMemoHits, resizes                             int
	prunedSchedules, pathItemsRun                    int
	fused, interned                                  int64
	cloneAllocs, cloneBytes                          int64
}

func (c *Classifier) snapStats() statsSnap {
	s := statsSnap{
		queries:         c.sol.Queries(),
		cacheHits:       c.sol.CacheHits(),
		ckptHits:        c.ckptHits,
		symHits:         c.symHits,
		sibMemoHits:     c.sibMemoHits,
		prunedSchedules: c.prunedSchedules,
		pathItemsRun:    c.pathItemsRun,
		fused:           c.vmCounters.FusedOps.Load(),
		interned:        c.vmCounters.InternedConsts.Load(),
		cloneAllocs:     c.vmCounters.CloneAllocs.Load(),
		cloneBytes:      c.vmCounters.CloneBytes.Load(),
	}
	if c.sol.Cache != nil {
		s.evictions = c.sol.Cache.Evictions()
		s.resizes = c.sol.Cache.Resizes()
	}
	return s
}

func (c *Classifier) finishStats(v *Verdict, mp *mpResult, snap statsSnap, start time.Time) {
	v.Stats.SolverQueries = c.sol.Queries() - snap.queries
	v.Stats.SolverCacheHits = c.sol.CacheHits() - snap.cacheHits
	v.Stats.CheckpointHits = c.ckptHits - snap.ckptHits
	v.Stats.SymCheckpointHits = c.symHits - snap.symHits
	v.Stats.SiblingMemoHits = c.sibMemoHits - snap.sibMemoHits
	v.Stats.PrunedSchedules = c.prunedSchedules - snap.prunedSchedules
	v.Stats.PathItemsRun = c.pathItemsRun - snap.pathItemsRun
	v.Stats.FusedOps = c.vmCounters.FusedOps.Load() - snap.fused
	v.Stats.InternedConsts = c.vmCounters.InternedConsts.Load() - snap.interned
	v.Stats.CloneAllocs = c.vmCounters.CloneAllocs.Load() - snap.cloneAllocs
	v.Stats.CloneBytes = c.vmCounters.CloneBytes.Load() - snap.cloneBytes
	if c.sol.Cache != nil {
		v.Stats.SolverCacheEvictions = c.sol.Cache.Evictions() - snap.evictions
		v.Stats.SolverCacheCap = c.sol.Cache.Cap()
		v.Stats.SolverCacheResizes = c.sol.Cache.Resizes() - snap.resizes
	}
	if mp != nil {
		v.Stats.Branches = mp.branches
		v.Stats.PrimaryPaths = mp.primaries
		v.Stats.Alternates = mp.alternates
		v.Stats.TruncatedPaths = mp.truncated
	}
	v.Stats.Duration = time.Since(start)
}

// pairCtx is the replayed primary: the machine parked immediately after
// the second racing access, the pre-race checkpoint, and the post-race
// memory fingerprint.
type pairCtx struct {
	m      *vm.Machine
	st     *vm.State
	pre    *vm.State
	postFP string

	firstTID, secondTID int
	space               vm.Space
	obj                 int64

	// spinRead: one of the racing accesses is a read executed many times
	// from the same source line during the primary (a busy-wait poll).
	// Reversing such a pair is vacuous — the loop re-reads the location
	// and re-establishes the ad-hoc protocol — so a matching-output
	// alternate does not prove the orderings interchangeable (§2.3
	// "single ordering", Fig 8d).
	spinRead bool
}

// spinReadThreshold: a racing read re-executed at least this many times
// from one line is considered a busy-wait poll. The counts come from the
// replay's accessCounter (internal/core/shared.go), which tracks reads
// for every object class at once so replay states are reusable across
// races.
const spinReadThreshold = 4

// newRootState builds the initial state for (re-)execution of the traced
// run, optionally with symbolic inputs, and attaches the predicate
// observer.
func (c *Classifier) newRootState(tr *trace.Trace, symbolic bool) *vm.State {
	st := vm.NewState(c.Prog, tr.Args, tr.Inputs)
	if symbolic {
		st.In.NSymbolic = c.Opts.SymbolicInputs
		for _, i := range c.Opts.SymbolicArgs {
			st.MarkSymArg(i)
		}
	}
	if len(c.Opts.Predicates) > 0 {
		st.Observers = append(st.Observers, &PredicateObserver{Preds: c.Opts.Predicates})
	}
	return st
}

// breakAtAccess stops when the given thread is about to execute the
// shared access identified by its per-thread instruction count.
func breakAtAccess(tid int, tInstr int64) vm.BreakFunc {
	return func(st *vm.State, cur int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return cur == tid && st.Threads[cur].Instrs == tInstr && in.Op.IsSharedAccess()
	}
}

// accessToObj reports whether an instruction statically accesses the racy
// object class (global id, or any heap object for heap races).
func accessToObj(in bytecode.Instr, space vm.Space, obj int64) bool {
	switch in.Op {
	case bytecode.LOADG, bytecode.STOREG, bytecode.LOADE, bytecode.STOREE:
		return space == vm.SpaceGlobal && in.A == obj
	case bytecode.LOADH, bytecode.STOREH, bytecode.FREE:
		return space == vm.SpaceHeap
	}
	return false
}

// replayToRace replays the trace concretely up to just past the second
// racing access, checkpointing just before the first (§3.2, Algorithm 1
// lines 1–4).
//
// The replay resumes from the shared checkpoint store when a snapshot at
// or before the first racing access exists (any snapshot qualifies:
// entries lie on the recorded replay path and carry the full observer
// state of their prefix), and it deposits a snapshot of its own pre-race
// point for later races to resume from. The run budget is charged for
// the skipped prefix, so a budget-bound replay stops at exactly the same
// instruction it would have from the root.
func (c *Classifier) replayToRace(rep *race.Report, tr *trace.Trace) (*pairCtx, error) {
	var (
		st     *vm.State
		ctl    vm.Controller
		budget = c.Opts.RunBudget
	)
	store := c.shared.storeFor(tr)
	if store != nil && rep.First.Global > 0 {
		if rst, rctl, steps, ok := store.Resume(rep.First.Global, nil); ok {
			st, ctl = rst, rctl
			c.ckptHits++
			if budget >= 0 {
				if budget -= steps; budget < 0 {
					budget = 0
				}
			}
		}
	}
	if st == nil {
		st = c.newRootState(tr, false)
		st.Observers = append(st.Observers, newAccessCounter())
		ctl = trace.NewReplayer(tr, vm.NewRoundRobin())
	}
	rc := findAccessCounter(st)
	m := c.newMachine(st, ctl)

	m.Break = breakAtAccess(rep.First.TID, rep.First.TInstr)
	res := m.Run(budget)
	if res.Kind != vm.StopBreak {
		if err := c.canceled(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("portend: replay did not reach first racing access of %s (%v)", rep.ID(), res.Kind)
	}
	if store != nil {
		if cc, ok := ctl.(vm.CloneableController); ok {
			store.Add(st, cc)
		}
	}
	pre := st.Clone()
	dropAccessCounter(pre) // enforcement clones need no counting

	m.Break = breakAtAccess(rep.Second.TID, rep.Second.TInstr)
	res = m.Run(c.Opts.RunBudget)
	if res.Kind != vm.StopBreak {
		if err := c.canceled(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("portend: replay did not reach second racing access of %s (%v)", rep.ID(), res.Kind)
	}
	m.Break = nil
	m.Step() // complete the second racing access: the post-race state

	ctx := &pairCtx{
		m: m, st: st, pre: pre,
		postFP:   st.SharedMemoryFingerprint(),
		firstTID: rep.First.TID, secondTID: rep.Second.TID,
		space: rep.Key.Space, obj: rep.Key.Obj,
	}
	for _, acc := range []race.Access{rep.First, rep.Second} {
		if !acc.Write && rc != nil && rc.readsAt(rep.Key.Space, rep.Key.Obj, acc.TID, acc.PC.Line) >= spinReadThreshold {
			ctx.spinRead = true
		}
	}
	dropAccessCounter(st) // nothing reads counts past this point
	return ctx, nil
}

// enforceOutcome says how the alternate-ordering attempt ended.
type enforceOutcome uint8

const (
	enfOK       enforceOutcome = iota // enforced and ran to completion
	enfTimeout                        // budget exhausted (paper case (a))
	enfStuck                          // only suspended threads runnable (case (b))
	enfNoAccess                       // finished without the second access
	enfError                          // runtime error while enforcing
)

// enforceResult is the outcome of one alternate execution.
type enforceResult struct {
	outcome        enforceOutcome
	st             *vm.State
	afterFP        string       // memory right after the reversed accesses
	final          vm.RunResult // completion result (enfOK)
	diag           vm.SpinDiagnosis
	err            *vm.RuntimeError
	blockedOnFirst bool // some thread waits on a resource the suspended thread holds
}

// enforceAlternate reverses the racing accesses: starting from the
// pre-race checkpoint (which must be concrete), it suspends the thread
// that originally accessed first, drives the other thread to its racing
// access, completes both accesses in reversed order, and runs the
// alternate to completion (§3.2).
func (c *Classifier) enforceAlternate(pre *vm.State, firstTID, secondTID int, space vm.Space, obj int64, ctl vm.Controller) enforceResult {
	alt := pre.Clone()
	alt.Suspend(firstTID)
	m := c.newMachine(alt, ctl)
	m.SpinTrack = true
	m.Break = func(st *vm.State, cur int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return cur == secondTID && accessToObj(in, space, obj)
	}
	res := m.Run(c.Opts.EnforceBudget)
	switch res.Kind {
	case vm.StopBreak:
		// fall through to enforcement below
	case vm.StopBudget:
		d := m.DiagnoseSpin(secondTID)
		if !d.Looping {
			for _, th := range alt.Threads {
				if th.Status == vm.ThRunnable && !alt.IsSuspended(th.ID) {
					if d2 := m.DiagnoseSpin(th.ID); d2.Looping {
						d = d2
						break
					}
				}
			}
		}
		return enforceResult{outcome: enfTimeout, st: alt, diag: d}
	case vm.StopStuck, vm.StopDeadlock:
		r := enforceResult{outcome: enfStuck, st: alt}
		for _, th := range alt.Threads {
			if th.Status == vm.ThBlockedMutex && th.WaitMutex >= 0 &&
				alt.Mutexes[th.WaitMutex].Owner == firstTID {
				r.blockedOnFirst = true
			}
			if th.Status == vm.ThBlockedJoin && th.WaitJoin == firstTID {
				r.blockedOnFirst = true
			}
		}
		return r
	case vm.StopError:
		return enforceResult{outcome: enfError, st: alt, err: res.Err}
	default: // StopFinished: the access never happened in this ordering
		return enforceResult{outcome: enfNoAccess, st: alt, final: res}
	}

	// Parked just before the second thread's racing access. Complete it,
	// then let the suspended thread immediately complete its pending
	// access: the reversed pair, back to back.
	m.Break = nil
	if r := m.Step(); r.Kind == vm.StopError {
		return enforceResult{outcome: enfError, st: alt, err: r.Err}
	}
	alt.Resume(firstTID)
	alt.Cur = firstTID
	if r := m.Step(); r.Kind == vm.StopError {
		return enforceResult{outcome: enfError, st: alt, err: r.Err}
	}
	afterFP := alt.SharedMemoryFingerprint()
	final := m.Run(c.Opts.RunBudget)
	return enforceResult{outcome: enfOK, st: alt, afterFP: afterFP, final: final}
}

// specViolationOf inspects a completed run for "basic" specification
// violations (§3.5): crashes and memory errors, deadlocks, budget
// exhaustion (hangs), assertion failures, and semantic predicate
// violations caught by the observer.
func specViolationOf(res vm.RunResult, st *vm.State) (Consequence, string, bool) {
	switch res.Kind {
	case vm.StopError:
		if res.Err != nil && res.Err.Kind == vm.ErrAssert {
			return ConsSemantic, res.Err.Error(), true
		}
		detail := "runtime error"
		if res.Err != nil {
			detail = res.Err.Error()
		}
		return ConsCrash, detail, true
	case vm.StopDeadlock:
		return ConsDeadlock, "all threads blocked", true
	case vm.StopBudget:
		return ConsHang, "execution did not terminate within budget", true
	}
	if po := findPredicateObserver(st); po != nil && po.Violation != "" {
		return ConsSemantic, "predicate violated: " + po.Violation, true
	}
	return ConsNone, "", false
}

// pairAnalysis is the result of Algorithm 1.
type pairAnalysis struct {
	class        Class
	outSame      bool
	consequence  Consequence
	detail       string
	statesDiffer bool
	outDiff      *OutputDivergence
}

// singleClassify is Algorithm 1: one primary, one enforced alternate,
// concrete output comparison.
func (c *Classifier) singleClassify(ctx *pairCtx) pairAnalysis {
	space, obj := ctx.raceObj()

	enf := c.enforceAlternate(ctx.pre, ctx.firstTID, ctx.secondTID, space, obj, vm.NewRoundRobin())

	// Primary continuation (replaying the rest of the input trace).
	primRes := ctx.m.Run(c.Opts.RunBudget)

	switch enf.outcome {
	case enfError:
		return pairAnalysis{class: SpecViolated, consequence: ConsCrash, detail: "alternate: " + enf.err.Error()}

	case enfTimeout:
		if !c.Opts.AdHocDetection {
			// Without ad-hoc synchronization detection (Fig 7's
			// "single-path" baseline) an unenforceable alternate is
			// conservatively treated as harmful, like the
			// Record/Replay-Analyzer does on replay failure.
			return pairAnalysis{class: SpecViolated, consequence: ConsHang, detail: "alternate ordering could not be enforced (timeout)"}
		}
		if enf.diag.Looping && !enf.diag.WritableByOther {
			// Loop with an exit condition no live thread can change: an
			// infinite loop (Algorithm 1 line 10).
			return pairAnalysis{class: SpecViolated, consequence: ConsHang, detail: "infinite loop: loop exit condition cannot be modified"}
		}
		// Busy-wait on a shared flag another thread writes: ad-hoc
		// synchronization (Algorithm 1 line 12).
		return pairAnalysis{class: SingleOrdering, detail: "ad-hoc synchronization prevents the alternate ordering"}

	case enfStuck:
		if enf.blockedOnFirst {
			// Case (b): the second thread is blocked by the first —
			// deadlock per the lock graph (Algorithm 1 line 15).
			return pairAnalysis{class: SpecViolated, consequence: ConsDeadlock, detail: "alternate ordering deadlocks: second thread blocked by first"}
		}
		if !c.Opts.AdHocDetection {
			return pairAnalysis{class: SpecViolated, consequence: ConsHang, detail: "alternate ordering could not be enforced (stuck)"}
		}
		return pairAnalysis{class: SingleOrdering, detail: "alternate ordering not schedulable"}

	case enfNoAccess:
		if !c.Opts.AdHocDetection {
			return pairAnalysis{class: SpecViolated, consequence: ConsHang, detail: "alternate ordering could not be enforced (no access)"}
		}
		return pairAnalysis{class: SingleOrdering, detail: "second access does not occur under the alternate ordering"}
	}

	// Enforced: compare post-race states (the baseline criterion) and
	// watch both executions for specification violations.
	a := pairAnalysis{statesDiffer: enf.afterFP != ctx.postFP}

	if cons, det, bad := specViolationOf(enf.final, enf.st); bad {
		a.class, a.consequence, a.detail = SpecViolated, cons, "alternate: "+det
		return a
	}
	if cons, det, bad := specViolationOf(primRes, ctx.st); bad {
		a.class, a.consequence, a.detail = SpecViolated, cons, "primary: "+det
		return a
	}

	if diff := concreteOutputDiff(ctx.st.Outputs, enf.st.Outputs); diff != nil {
		a.class = OutputDiffers
		a.outDiff = diff
		return a
	}
	if ctx.spinRead && c.Opts.AdHocDetection {
		// One side of the race is a busy-wait poll read: the loop
		// re-reads the location after the reversed pair and re-establishes
		// the ad-hoc protocol, so the matching outputs do not evidence a
		// second genuine ordering — the accesses are ordering-protected.
		a.class = SingleOrdering
		a.detail = "racing read is a busy-wait poll (ad-hoc synchronization)"
		return a
	}
	a.outSame = true
	a.class = KWitnessHarmless
	return a
}

// raceObj extracts the racy object class from the report backing the ctx.
func (ctx *pairCtx) raceObj() (vm.Space, int64) {
	return ctx.space, ctx.obj
}
