// Package core implements Portend's analysis and classification engine —
// the paper's primary contribution (§3).
//
// Given a data race report (internal/race) and the schedule trace of the
// execution that exposed it (internal/trace), the classifier predicts the
// race's consequences and places it in the four-category taxonomy of §2.3
// (Fig 1):
//
//	specViol   — an ordering violates the program's specification:
//	             crash, deadlock, infinite loop, memory error, or a
//	             semantic predicate supplied by the developer;
//	outDiff    — the orderings can produce different program output;
//	k-witness  — harmless for k = Mp×Ma path×schedule witnesses;
//	singleOrd  — only one ordering is possible (ad-hoc synchronization).
//
// The analysis proceeds exactly as in the paper: single-pre/single-post
// analysis (Algorithm 1) replays to the race, checkpoints, enforces the
// alternate ordering of the racing accesses and observes both executions;
// multi-path analysis (Algorithm 2) marks inputs symbolic and explores up
// to Mp primary paths that follow the recorded schedule to the race;
// multi-schedule analysis runs Ma randomized alternates per primary; and
// symbolic output comparison checks each alternate's concrete outputs
// against the primary's symbolic output constraints with the solver.
//
// The per-race analysis is embarrassingly parallel, and the engine
// exploits that at two levels (Options.Parallel): Run classifies
// distinct races on a worker pool, and within one race the
// primary×alternate worklist of the multi-path phase fans out across
// the same pool width. Results always merge in the sequential engine's
// order, so verdicts are byte-identical at every pool width.
package core

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/bytecode"
	"repro/internal/expr"
	"repro/internal/race"
	"repro/internal/sa"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Class is the four-category race taxonomy of Fig 1.
type Class uint8

// Race classes.
const (
	// SpecViolated: at least one ordering violates the specification.
	SpecViolated Class = iota
	// OutputDiffers: the orderings can produce different output.
	OutputDiffers
	// KWitnessHarmless: harmless for k path-schedule witnesses.
	KWitnessHarmless
	// SingleOrdering: only one ordering is possible (ad-hoc sync).
	SingleOrdering
)

var classNames = map[Class]string{
	SpecViolated: "specViol", OutputDiffers: "outDiff",
	KWitnessHarmless: "k-witness", SingleOrdering: "singleOrd",
}

// String returns the paper's short class name.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Consequence refines SpecViolated for Table 2.
type Consequence uint8

// Consequence kinds.
const (
	ConsNone Consequence = iota
	ConsDeadlock
	ConsCrash
	ConsHang
	ConsSemantic
)

var consNames = map[Consequence]string{
	ConsNone: "-", ConsDeadlock: "deadlock", ConsCrash: "crash",
	ConsHang: "hang", ConsSemantic: "semantic",
}

// String names the consequence.
func (c Consequence) String() string {
	if s, ok := consNames[c]; ok {
		return s
	}
	return fmt.Sprintf("cons(%d)", uint8(c))
}

// Predicate is a "high level semantic property" (§3.5) supplied by the
// developer; Check returns false when the property is violated.
type Predicate struct {
	Name  string
	Check func(st *vm.State) bool
}

// GlobalPredicate builds a predicate over the hinted (concrete where
// possible) value of a named global scalar; handy for properties like
// "all timestamps are positive" (the fmm check of §5.1).
func GlobalPredicate(name string, global int, check func(v int64) bool) Predicate {
	return Predicate{
		Name: name,
		Check: func(st *vm.State) bool {
			if global < 0 || global >= len(st.Globals) {
				return true
			}
			v, err := st.HintEval(st.Globals[global][0])
			if err != nil {
				return true
			}
			return check(v)
		},
	}
}

// Options configure the classifier. The feature gates reproduce the
// technique breakdown of Fig 7.
type Options struct {
	// Mp bounds the number of primary paths (§3.3); Ma the number of
	// alternate schedules per primary (§3.4). k = Mp × Ma.
	Mp, Ma int

	// SymbolicInputs marks the first N input() reads symbolic;
	// SymbolicArgs marks specific program arguments symbolic.
	SymbolicInputs int
	SymbolicArgs   []int

	// EnforceBudget bounds the alternate-ordering enforcement (the
	// paper's timeout, §4: "5 times what it took to replay the primary"
	// — here an instruction budget). RunBudget bounds complete runs.
	EnforceBudget int64
	RunBudget     int64

	// MaxForks bounds state forking during multi-path exploration.
	MaxForks int

	// MaxQueuedForks bounds the pending-sibling queue of the multi-path
	// worklist; forks arriving at a full queue are dropped and counted in
	// Stats.TruncatedPaths. Values <= 0 mean the default (128).
	MaxQueuedForks int

	// MaxPathItems bounds how many worklist items one race's multi-path
	// exploration processes; items abandoned when the cap stops the
	// search short of Mp primaries are counted in Stats.TruncatedPaths.
	// Values <= 0 derive the paper-era default 4*Mp + 32.
	MaxPathItems int

	// MaxCheckpoints bounds each shared checkpoint store — the concrete
	// replay store and the symbolic exploration store (one full state
	// clone per entry, plus pending fork clones for symbolic entries).
	// Values <= 0 mean the default (64).
	MaxCheckpoints int

	// DetectCheckpointEvery is the initial cadence, in completed
	// instructions, of the periodic replay checkpoints the detection pass
	// deposits while it records the trace; the cadence doubles after each
	// periodic deposit (O(log trace) snapshots, the nearest one below any
	// point within half the replay it saves), and each new race cluster's
	// detection point deposits one regardless. Periodic deposits are what
	// let even the first race of a trace resume (its first racing access
	// precedes every detection point). 0 means the default
	// (DefaultDetectCheckpointEvery); negative disables the periodic
	// cadence, keeping only the cluster-point deposits. Ignored when
	// NoCache is set.
	DetectCheckpointEvery int64

	// NoCache disables the shared replay-checkpoint store and the
	// memoizing solver cache. Verdicts are byte-identical with the caches
	// on or off (asserted by the determinism suite); the gate exists for
	// that assertion and for ablation timing.
	NoCache bool

	// NoStaticPrune disables the static pre-analysis consumers: the
	// multi-path worklist's dead-item prune (skipping exploration items
	// whose remaining execution provably cannot reach the racy object
	// class or any symbolic branch) and the detection pass's extra
	// checkpoints at static race-candidate sites. Like the caches, the
	// static consumers are verdict-neutral by construction — verdicts are
	// byte-identical with pruning on or off, which the static determinism
	// suite asserts — so the gate exists for that assertion and for
	// ablation timing.
	NoStaticPrune bool

	// StaticFacts supplies a precomputed static-analysis artifact for the
	// exact program under analysis (e.g. the server's admission-time facts
	// cached on its tier). nil lets RunStream run the pass itself when
	// static consumers are enabled. Facts decoded from JSON lack the
	// per-pc consumer index and degrade to no pruning.
	StaticFacts *sa.Facts

	// Feature gates (Fig 7): ad-hoc synchronization detection, multi-path
	// analysis, multi-schedule analysis, symbolic output comparison.
	AdHocDetection bool
	MultiPath      bool
	MultiSchedule  bool
	SymbolicOutput bool

	// Predicates are developer-supplied semantic properties.
	Predicates []Predicate

	// Solver tunes the constraint solver budget.
	Solver solver.Options

	// Seed seeds the randomized alternate schedules. A zero Seed is the
	// default seed unless SeedSet marks it as explicitly chosen.
	Seed uint64

	// SeedSet marks Seed as explicitly chosen, letting callers pin seed
	// 0; without it a zero Seed falls back to DefaultOptions().Seed.
	SeedSet bool

	// Tier, when non-nil, supplies run-outliving caches (checkpoint
	// stores, solver memo) instead of the per-run set RunStream would
	// otherwise create. The caller owns the soundness contract: a tier
	// may only be shared between runs of the identical (program, args,
	// inputs, options) — see CacheTier. Ignored when NoCache is set.
	Tier *CacheTier

	// SolverCacheCeiling bounds the adaptive solver cache's growth for
	// runs that create their own caches (<= 0 means the default ceiling;
	// see solver.NewAdaptiveCache). A server hosting many tiers sets this
	// to budget memory per tier.
	SolverCacheCeiling int

	// shared carries the per-run caches (replay checkpoints, solver
	// memo) that RunStream threads through every classifier it builds.
	// nil lets each Classifier create its own private set.
	shared *sharedCaches

	// Parallel is the worker-pool width of the classification engine:
	// races classify concurrently in Run, and within one race the
	// primary×alternate worklist of the multi-path multi-schedule phase
	// fans out across workers. Verdict order and content are byte-
	// identical for every width (results merge in deterministic worklist
	// order); only Stats counters that depend on how much speculative
	// work ran (e.g. SolverQueries) may differ. Parallel < 1 means
	// GOMAXPROCS; 1 runs fully sequentially.
	Parallel int
}

// DefaultDetectCheckpointEvery is the default initial cadence of the
// detection pass's periodic replay checkpoints (the cadence doubles
// after each one, so a T-instruction trace deposits ~log2(T/64) of
// them). With copy-on-write State.Clone a deposit costs one allocation,
// so the default starts dense: a 64-step initial window covers even the
// shortest traces ahead of their first race, and the geometric doubling
// still bounds the total deposit count logarithmically. The cadence only
// changes where snapshots are taken, never what the analysis computes —
// verdicts are byte-identical across cadences (asserted by
// TestDenseCadenceVerdictsMatchGeometric).
const DefaultDetectCheckpointEvery = 64

// DefaultOptions returns the configuration used throughout the
// evaluation: Mp=5, Ma=2, 2 symbolic inputs (§5), with the analysis
// fanned out across GOMAXPROCS workers (Parallel = 0).
func DefaultOptions() Options {
	return Options{
		Mp: 5, Ma: 2,
		SymbolicInputs: 2,
		EnforceBudget:  300_000,
		RunBudget:      3_000_000,
		MaxForks:       64,
		MaxQueuedForks: 128,
		MaxCheckpoints: 64,
		// MaxPathItems stays 0: it derives from the effective Mp (4*Mp+32)
		// at Classifier construction.
		AdHocDetection: true,
		MultiPath:      true,
		MultiSchedule:  true,
		SymbolicOutput: true,
		Seed:           1,
	}
}

// Stats instruments one classification (Fig 9's axes, plus the cache
// and truncation accounting of the shared-replay engine).
type Stats struct {
	Preemptions   int // scheduling decisions in the recorded trace
	Branches      int // symbolic ("dependent") branches encountered
	SolverQueries int
	PrimaryPaths  int
	Alternates    int

	// CheckpointHits counts replays of this classification that resumed
	// from the shared concrete checkpoint store (populated by the
	// detection pass and by earlier classification replays) instead of
	// the program's initial state; SymCheckpointHits counts multi-path
	// explorations that resumed from the symbolic store — mainline
	// snapshots taken past the symbolic-input frontier, pending forks
	// included; SolverCacheHits counts solver queries answered from the
	// shared memo. All three depend on cache warmth (what earlier —
	// possibly concurrent — work populated), so unlike the verdict itself
	// they may vary with pool width.
	CheckpointHits    int
	SymCheckpointHits int
	SolverCacheHits   int

	// SiblingMemoHits counts pending-fork re-runs this classification
	// skipped via the symbolic store's sibling-outcome memo (the skipped
	// run's branch decisions are still credited to Branches). Like the
	// checkpoint hit counters it depends on what earlier work memoized,
	// so it may vary with pool width and cache warmth.
	SiblingMemoHits int

	// PrunedSchedules counts multi-path worklist items skipped by the
	// static dead-item prune: pending exploration items none of whose
	// live frames can (per internal/sa's reach facts) access the racy
	// object class or reach a fork point with a possibly-symbolic
	// operand. Such an item provably contributes no primary, no fork, and
	// no queue growth, so skipping it never changes the verdict — only
	// the work counted here. PathItemsRun counts the items that did run
	// (the denominator for the pruning ratio).
	PrunedSchedules int
	PathItemsRun    int

	// TruncatedPaths counts exploration the multi-path phase gave up on:
	// forked siblings dropped at the queue cap plus worklist items
	// abandoned when the item cap ended the search short of Mp primaries.
	// A non-zero count means a k-witness verdict's coverage claim is
	// narrower than the configuration asked for.
	TruncatedPaths int

	// Interpreter fast-path accounting for this classification's machines
	// (replay, enforcement, multi-path segments). FusedOps counts
	// superinstructions executed — each stands for several original
	// instructions dispatched as one; InternedConsts counts constants the
	// expression intern table served without allocating. Like
	// SolverQueries, both depend on how much speculative work the pool
	// ran, so they may vary with pool width while the verdict does not.
	FusedOps       int64
	InternedConsts int64

	// CloneAllocs / CloneBytes meter State.Clone across this
	// classification's machines: how many allocations and bytes the
	// copy-on-write snapshots themselves cost (checkpoint deposits and
	// resumes, enforcement forks, multi-path siblings). This replaces
	// the old per-clone cost model: snapshot cost is now measured, not
	// estimated. Like FusedOps it scales with speculative work, so it
	// may vary with pool width while the verdict does not.
	CloneAllocs int64
	CloneBytes  int64

	// SolverCacheEvictions counts entries the shared solver memo evicted
	// (LRU) while this race classified. The cache is run-wide, so under a
	// parallel pool concurrent classifications' evictions land in
	// whichever race was being timed — a warmth indicator, not a precise
	// per-race cost.
	SolverCacheEvictions int

	// SolverCacheCap is the solver cache's capacity when this race
	// finished classifying — fixed for explicitly sized caches, the
	// adaptively chosen size otherwise. SolverCacheResizes counts
	// adaptive growth events that landed while this race classified
	// (same attribution caveat as SolverCacheEvictions).
	SolverCacheCap     int
	SolverCacheResizes int

	Duration time.Duration
}

// OutputDivergence is the evidence attached to an "output differs"
// verdict: where the outputs first differ (§3.6).
type OutputDivergence struct {
	Index           int // output record index, -1 for count mismatch
	Primary, Altern string
	PrimaryN, AltN  int
}

// Verdict is the classification of one race.
type Verdict struct {
	Race  *race.Report
	Class Class

	// Consequence and detail for specViol races (Table 2).
	Consequence Consequence
	Detail      string

	// K is the witness count for k-witness verdicts (k = paths ×
	// schedules actually compared).
	K int

	// StatesDiffer reports whether the concrete post-race memory of the
	// primary and alternate differed — the Record/Replay-Analyzer
	// criterion recorded for Table 3's "states same/differ" columns.
	StatesDiffer bool

	// OutputDiff is evidence for outDiff verdicts.
	OutputDiff *OutputDivergence

	Stats Stats
}

// String renders a one-line summary.
func (v *Verdict) String() string {
	switch v.Class {
	case SpecViolated:
		return fmt.Sprintf("specViol(%s: %s)", v.Consequence, v.Detail)
	case OutputDiffers:
		if v.OutputDiff != nil {
			return fmt.Sprintf("outDiff(at output %d)", v.OutputDiff.Index)
		}
		return "outDiff"
	case KWitnessHarmless:
		return fmt.Sprintf("k-witness(k=%d)", v.K)
	case SingleOrdering:
		return "singleOrd"
	}
	return "unknown"
}

// OutputHash hash-chains the concrete rendering of outputs into a single
// code, the mechanism §4 describes for programs with large outputs.
func OutputHash(outs []vm.Output) uint64 {
	h := fnv.New64a()
	for _, o := range outs {
		for _, p := range o.Parts {
			if p.E != nil {
				fmt.Fprintf(h, "|%s", p.E)
			} else {
				fmt.Fprintf(h, "|%s", p.Lit)
			}
		}
		fmt.Fprint(h, "\n")
	}
	return h.Sum64()
}

// PredicateObserver watches shared writes and evaluates the semantic
// predicates after each one, catching transient violations that would be
// overwritten by the end of the run (like fmm's negative timestamp, §5.1).
type PredicateObserver struct {
	Preds     []Predicate
	Violation string // first violated predicate name, "" if none
}

// OnAccess implements vm.Observer: predicates are evaluated after every
// shared write.
func (o *PredicateObserver) OnAccess(st *vm.State, tid int, loc vm.Loc, write bool, pc bytecode.PCRef, tInstr int64) {
	if !write || o.Violation != "" {
		return
	}
	for _, p := range o.Preds {
		if !p.Check(st) {
			o.Violation = p.Name
			return
		}
	}
}

// OnSync implements vm.Observer (no-op).
func (o *PredicateObserver) OnSync(st *vm.State, ev vm.SyncEvent) {}

// CloneObs implements vm.Observer.
func (o *PredicateObserver) CloneObs() vm.Observer {
	return &PredicateObserver{Preds: o.Preds, Violation: o.Violation}
}

// findPredicateObserver retrieves the (cloned) predicate observer of a
// state, if any.
func findPredicateObserver(st *vm.State) *PredicateObserver {
	for _, o := range st.Observers {
		if po, ok := o.(*PredicateObserver); ok {
			return po
		}
	}
	return nil
}

func mergeHints(dst expr.Assignment, src expr.Assignment) expr.Assignment {
	out := make(expr.Assignment, len(dst)+len(src))
	for k, v := range dst {
		out[k] = v
	}
	for k, v := range src {
		out[k] = v
	}
	return out
}
