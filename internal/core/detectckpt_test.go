package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/race"
)

// renderRun renders everything user-visible about a result for byte
// comparison (verdict order, summaries, §3.6 reports).
func renderRun(res *Result) string {
	var sb strings.Builder
	for _, v := range res.Verdicts {
		sb.WriteString(v.Race.ID())
		sb.WriteString(" ")
		sb.WriteString(v.String())
		sb.WriteString("\n")
		sb.WriteString(v.Report(res.Prog))
	}
	return sb.String()
}

// detectSeedSrc strings three benign races along a trace behind a long
// compute prefix: the shape where classifying race #1 from the initial
// state pays the whole prefix unless detection deposited checkpoints.
const detectSeedSrc = `
var a = 0
var b = 0
var c = 0
var acc = 0
fn wa() { a = 7 }
fn wb() { b = 7 }
fn wc() { c = 7 }
fn main() {
	for i = 0, 200 { acc = acc + 1 }
	let ta = spawn wa()
	yield()
	a = 7
	join(ta)
	for i = 0, 200 { acc = acc + 1 }
	let tb = spawn wb()
	yield()
	b = 7
	join(tb)
	for i = 0, 200 { acc = acc + 1 }
	let tc = spawn wc()
	yield()
	c = 7
	join(tc)
	let x = input()
	print("acc=", acc + x)
}`

// TestDetectionSeedsFirstRace asserts the detection-phase half of the
// tentpole at the engine seam: the detection pass itself deposits replay
// checkpoints into the run's shared store (periodic cadence plus each
// new cluster's detection point), a snapshot at or before the *first*
// race's first racing access exists before any classification replay has
// run, and classifying that first race resumes from it.
func TestDetectionSeedsFirstRace(t *testing.T) {
	p := bytecode.MustCompile(detectSeedSrc, "detectseed", bytecode.Options{})
	opts := DefaultOptions()
	opts.Parallel = 1
	opts.DetectCheckpointEvery = 64
	opts = New(p, opts).Opts // normalize defaults the way RunStream's classifiers see them

	shared := newSharedCaches(opts)
	det := race.DetectWith(context.Background(), p, nil, nil, opts.RunBudget, detectionConfig(opts, shared))
	if len(det.Reports) < 3 {
		t.Fatalf("expected 3 races, got %d", len(det.Reports))
	}
	if shared.store.Len() == 0 {
		t.Fatal("detection deposited no checkpoints")
	}

	// The store must already cover the first race's replay — no
	// classification has deposited anything yet.
	first := det.Reports[0]
	if first.First.Global == 0 {
		t.Fatalf("first race carries no replay coordinate: %+v", first.First)
	}
	st, _, steps, ok := shared.store.Resume(first.First.Global, nil)
	if !ok || steps == 0 {
		t.Fatalf("no detection snapshot at or before race #1's first access (%d): ok=%v steps=%d",
			first.First.Global, ok, steps)
	}
	if st.Steps != steps {
		t.Fatalf("snapshot state at %d steps, entry filed under %d", st.Steps, steps)
	}

	// Classifying race #1 against the detection-seeded store resumes.
	opts.shared = shared
	v, err := New(p, opts).Classify(first, det.Trace)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if v.Stats.CheckpointHits < 1 {
		t.Errorf("race #1 did not resume from a detection snapshot: %+v", v.Stats)
	}
}

// TestDetectionCheckpointsEndToEnd asserts the same property through the
// public engine path — the *first* verdict of a multi-race run reports a
// checkpoint resume — and that verdicts are byte-identical to a cache-off
// run (detection checkpointing shifts time, never outcomes).
func TestDetectionCheckpointsEndToEnd(t *testing.T) {
	on := DefaultOptions()
	on.Parallel = 1
	on.DetectCheckpointEvery = 64
	off := on
	off.NoCache = true

	resOn := classify(t, detectSeedSrc, on, nil, []int64{3})
	resOff := classify(t, detectSeedSrc, off, nil, []int64{3})
	if len(resOn.Verdicts) < 3 {
		t.Fatalf("expected 3 verdicts, got %d", len(resOn.Verdicts))
	}
	if a, b := renderRun(resOn), renderRun(resOff); a != b {
		t.Errorf("detection checkpoints changed verdicts\n--- on ---\n%s\n--- off ---\n%s", a, b)
	}
	if hits := resOn.Verdicts[0].Stats.CheckpointHits; hits < 1 {
		t.Errorf("first race of the trace did not resume from a detection snapshot: %+v",
			resOn.Verdicts[0].Stats)
	}
	for _, v := range resOff.Verdicts {
		if v.Stats.CheckpointHits != 0 || v.Stats.SymCheckpointHits != 0 {
			t.Errorf("cache-off run reported checkpoint hits: %+v", v.Stats)
		}
	}
}

// symPrefixSrc mirrors workloads.SymPrefixRaceSource: the input() read
// and input-dependent branches precede every race, so every pre-race
// prefix has consumed a symbolic read and the concrete checkpoint store
// can never seed multi-path exploration — only the symbolic store can.
const symPrefixSrc = `
var a = 0
var b = 0
var c = 0
var acc = 0
fn wa() { a = 7 }
fn wb() { b = 7 }
fn wc() { c = 7 }
fn main() {
	let x = input()
	for i = 0, 4 {
		if x > i { acc = acc + 1 }
	}
	for i = 0, 150 { acc = acc + 1 }
	let ta = spawn wa()
	yield()
	a = 7
	join(ta)
	for i = 0, 150 { acc = acc + 1 }
	let tb = spawn wb()
	yield()
	b = 7
	join(tb)
	for i = 0, 150 { acc = acc + 1 }
	let tc = spawn wc()
	yield()
	c = 7
	join(tc)
	print("acc=", acc + x)
}`

// TestSymbolicStoreResumesInputFirstRaces asserts the symbolic-store
// half of the tentpole: on a workload whose input() precedes its races,
// later races' multi-path explorations resume from earlier explorations'
// mainline snapshots (SymCheckpointHits > 0) while the concrete store
// stays unusable for exploration, and verdicts are byte-identical to a
// cache-off run at sequential and parallel widths.
func TestSymbolicStoreResumesInputFirstRaces(t *testing.T) {
	on := DefaultOptions()
	on.Parallel = 1
	off := on
	off.NoCache = true

	resOn := classify(t, symPrefixSrc, on, nil, []int64{2})
	resOff := classify(t, symPrefixSrc, off, nil, []int64{2})
	if len(resOn.Verdicts) < 3 {
		t.Fatalf("expected 3 verdicts, got %d", len(resOn.Verdicts))
	}
	if a, b := renderRun(resOn), renderRun(resOff); a != b {
		t.Errorf("symbolic store changed verdicts\n--- on ---\n%s\n--- off ---\n%s", a, b)
	}

	symHits := 0
	for _, v := range resOn.Verdicts {
		symHits += v.Stats.SymCheckpointHits
	}
	if symHits == 0 {
		t.Error("no multi-path exploration resumed from the symbolic store on an input-first trace")
	}
	for _, v := range resOff.Verdicts {
		if v.Stats.SymCheckpointHits != 0 {
			t.Errorf("cache-off run reported symbolic hits: %+v", v.Stats)
		}
	}

	// Parallel width must not change the bytes either (hits may vary with
	// warmth; the verdicts may not).
	wide := on
	wide.Parallel = 8
	resWide := classify(t, symPrefixSrc, wide, nil, []int64{2})
	if a, b := renderRun(resOn), renderRun(resWide); a != b {
		t.Errorf("parallel width changed symbolic-store verdicts\n--- seq ---\n%s\n--- wide ---\n%s", a, b)
	}
}
