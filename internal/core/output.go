package core

import (
	"repro/internal/expr"
	"repro/internal/solver"
	"repro/internal/vm"
)

// renderConcrete renders one output record; symbolic parts render as
// formulae (callers substitute first when full concreteness is needed).
func renderConcrete(o vm.Output) string { return o.String() }

// concreteOutputDiff compares two fully concrete output sequences and
// returns the first divergence, or nil when they are equal. The paper
// compares "all arguments passed to output system calls" (§3.3.1); the
// emitting thread is irrelevant, the output sequence is what an observer
// of the process would see.
func concreteOutputDiff(a, b []vm.Output) *OutputDivergence {
	if len(a) != len(b) {
		return &OutputDivergence{Index: -1, PrimaryN: len(a), AltN: len(b)}
	}
	for i := range a {
		if renderConcrete(a[i]) != renderConcrete(b[i]) {
			return &OutputDivergence{
				Index:   i,
				Primary: renderConcrete(a[i]),
				Altern:  renderConcrete(b[i]),
			}
		}
	}
	return nil
}

// concretizeOutputs substitutes the primary's hints into its outputs,
// yielding the concrete outputs of the witness execution (used by the
// concrete-comparison ablation and as the fallback when the solver cannot
// decide a symbolic match).
func concretizeOutputs(st *vm.State) []vm.Output {
	outs := make([]vm.Output, len(st.Outputs))
	for i, o := range st.Outputs {
		no := vm.Output{TID: o.TID, PC: o.PC, Parts: make([]vm.OutPart, len(o.Parts))}
		for j, p := range o.Parts {
			if p.E != nil {
				no.Parts[j] = vm.OutPart{E: expr.Substitute(p.E, st.Hints)}
			} else {
				no.Parts[j] = p
			}
		}
		outs[i] = no
	}
	return outs
}

// symbolicOutputDiff implements symbolic output comparison (§3.3.1): the
// alternate's concrete outputs match the primary when there exists an
// input assignment satisfying the primary's path condition under which
// every symbolic output equals the corresponding concrete value. A nil
// result means the outputs match.
func (c *Classifier) symbolicOutputDiff(prim *vm.State, alt []vm.Output) *OutputDivergence {
	po := prim.Outputs
	if len(po) != len(alt) {
		return &OutputDivergence{Index: -1, PrimaryN: len(po), AltN: len(alt)}
	}

	mismatchAt := func(i int) *OutputDivergence {
		return &OutputDivergence{
			Index:   i,
			Primary: renderConcrete(po[i]),
			Altern:  renderConcrete(alt[i]),
		}
	}

	// Structural pass: literal parts must agree; collect equality
	// constraints for the value parts.
	var eqs []expr.Expr
	eqIdx := []int{} // output index per equality, for evidence
	for i := range po {
		p, a := po[i], alt[i]
		if len(p.Parts) != len(a.Parts) {
			return mismatchAt(i)
		}
		for j := range p.Parts {
			pp, ap := p.Parts[j], a.Parts[j]
			if (pp.E == nil) != (ap.E == nil) {
				return mismatchAt(i)
			}
			if pp.E == nil {
				if pp.Lit != ap.Lit {
					return mismatchAt(i)
				}
				continue
			}
			av, ok := expr.ConstVal(ap.E)
			if !ok {
				// The alternate is supposed to be concrete; fall back to
				// concrete comparison under the primary's hints.
				return concreteOutputDiff(concretizeOutputs(prim), alt)
			}
			if pv, isConst := expr.ConstVal(pp.E); isConst {
				if pv != av {
					return mismatchAt(i)
				}
				continue
			}
			eqs = append(eqs, expr.Eq(pp.E, expr.NewConst(av)))
			eqIdx = append(eqIdx, i)
		}
	}
	if len(eqs) == 0 {
		return nil
	}

	q := make([]expr.Expr, 0, len(prim.PathCond)+len(eqs))
	q = append(q, prim.PathCond...)
	q = append(q, eqs...)
	_, r := c.sol.Solve(q, prim.Hints)
	switch r {
	case solver.Sat:
		return nil
	case solver.Unsat:
		// Localize the first individually-infeasible equality for the
		// debugging report (§3.6).
		for i, eq := range eqs {
			one := append(append([]expr.Expr{}, prim.PathCond...), eq)
			if _, ri := c.sol.Solve(one, prim.Hints); ri == solver.Unsat {
				return mismatchAt(eqIdx[i])
			}
		}
		return mismatchAt(eqIdx[0])
	default:
		// Solver gave up: fall back to the concrete witness comparison.
		return concreteOutputDiff(concretizeOutputs(prim), alt)
	}
}
