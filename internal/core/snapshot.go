package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/ckpt"
	"repro/internal/expr"
	"repro/internal/solver"
	"repro/internal/trace"
	"repro/internal/vm"
)

// This file gives CacheTier a durable form: Snapshot renders everything
// the tier holds — concrete and symbolic checkpoints, pending forks,
// sibling memos, and the solver cache — into one gob-friendly value, and
// Restore rebuilds a tier from it after a daemon restart.
//
// Soundness rests on the same determinism contract that lets a tier be
// shared between runs at all: identical (program, args, inputs, options)
// produce an identical recorded trace, so checkpoints deserialized
// against the snapshot's trace are states the next run's replay passes
// through anyway. Restore leaves the shared caches' trace binding clear;
// the next run binds its freshly recorded trace while restored replay
// controllers keep the deserialized (content-identical) one.
//
// Persistence is a cache, never an obligation: an entry whose controller
// or observer has no wire form is skipped at Snapshot time (the restored
// tier is merely less warm), and Restore fails atomically — a decode
// error imports nothing, leaving the tier cold but correct.

// Controller kinds of the wire form. Every controller the engine
// deposits is serializable; an entry driven by anything else is skipped.
const (
	ctlReplay     = "replay"
	ctlRoundRobin = "round-robin"
	ctlSticky     = "sticky"
	ctlRandom     = "random"
)

// CtlWire is one scheduling controller in wire form.
type CtlWire struct {
	Kind       string
	Pos        int    // replay: decisions consumed
	Diverged   bool   // replay
	DivergedAt int    // replay
	Exhausted  bool   // replay
	Last       int    // round-robin: last chosen thread id
	Rand       uint64 // random: exact xorshift state
	Fallback   *CtlWire
}

// encodeCtl renders a controller; ok is false for kinds with no wire form.
func encodeCtl(c vm.Controller) (*CtlWire, bool) {
	switch v := c.(type) {
	case *trace.Replayer:
		fb, ok := encodeCtl(v.Fallback)
		if !ok {
			return nil, false
		}
		return &CtlWire{
			Kind: ctlReplay, Pos: v.Pos(),
			Diverged: v.Diverged, DivergedAt: v.DivergedAt, Exhausted: v.Exhausted,
			Fallback: fb,
		}, true
	case *vm.RoundRobin:
		return &CtlWire{Kind: ctlRoundRobin, Last: v.Last()}, true
	case vm.Sticky:
		return &CtlWire{Kind: ctlSticky}, true
	case *vm.Random:
		// The xorshift state is the whole controller: restoring it
		// reproduces the seeded alternate schedule pick for pick.
		return &CtlWire{Kind: ctlRandom, Rand: v.State()}, true
	}
	return nil, false
}

// decodeCtl rebuilds a controller. Replayers re-bind to tr — the
// snapshot's deserialized trace, content-identical to the one they were
// recorded against.
func decodeCtl(w *CtlWire, tr *trace.Trace) (vm.CloneableController, error) {
	if w == nil {
		return nil, fmt.Errorf("core: missing controller wire")
	}
	switch w.Kind {
	case ctlReplay:
		if tr == nil {
			return nil, fmt.Errorf("core: replay controller in a snapshot without a trace")
		}
		fb, err := decodeCtl(w.Fallback, tr)
		if err != nil {
			return nil, err
		}
		r := trace.ReplayerAt(tr, fb, w.Pos)
		r.Diverged = w.Diverged
		r.DivergedAt = w.DivergedAt
		r.Exhausted = w.Exhausted
		return r, nil
	case ctlRoundRobin:
		return vm.RoundRobinAt(w.Last), nil
	case ctlSticky:
		return vm.Sticky{}, nil
	case ctlRandom:
		return vm.RandomAt(w.Rand), nil
	}
	return nil, fmt.Errorf("core: unknown controller kind %q", w.Kind)
}

// Observer kinds of the wire form.
const (
	obsAccessCounter = "access-counter"
	obsTouchTrack    = "touch-track"
	obsPredicate     = "predicate"
)

// objWire is one touched object class.
type objWire struct {
	Space uint8
	Obj   int64
}

// readWire is one read-count bucket of the access counter.
type readWire struct {
	Space uint8
	Obj   int64
	TID   int64
	Line  int32
	N     int
}

// acWire is the access counter's wire form; both slices are sorted so
// the payload is canonical regardless of map iteration order.
type acWire struct {
	Reads   []readWire
	Touched []objWire
}

// ttWire is the touch tracker's wire form.
type ttWire struct {
	Touched []objWire
}

// predWire is the predicate observer's wire form. The check functions
// themselves have no wire form; the first run after Restore re-binds
// them from its effective options (bindPredicates), and the recorded
// names guard against a mismatched rebind.
type predWire struct {
	Names     []string
	Violation string
}

func sortedObjs(m map[objClass]bool) []objWire {
	out := make([]objWire, 0, len(m))
	for k := range m {
		out = append(out, objWire{Space: uint8(k.space), Obj: k.obj})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Space != out[j].Space {
			return out[i].Space < out[j].Space
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// encodeObs serializes the observers the engine deposits on checkpoint
// states — access counters, touch trackers, and predicate observers;
// anything else makes the state unserializable and its entry is skipped.
func encodeObs(o vm.Observer) (kind string, data []byte, ok bool) {
	var buf bytes.Buffer
	switch v := o.(type) {
	case *accessCounter:
		w := acWire{Touched: sortedObjs(v.touched), Reads: make([]readWire, 0, len(v.reads))}
		for k, n := range v.reads {
			w.Reads = append(w.Reads, readWire{Space: uint8(k.space), Obj: k.obj, TID: k.tid, Line: k.line, N: n})
		}
		sort.Slice(w.Reads, func(i, j int) bool {
			a, b := w.Reads[i], w.Reads[j]
			if a.Space != b.Space {
				return a.Space < b.Space
			}
			if a.Obj != b.Obj {
				return a.Obj < b.Obj
			}
			if a.TID != b.TID {
				return a.TID < b.TID
			}
			return a.Line < b.Line
		})
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			return "", nil, false
		}
		return obsAccessCounter, buf.Bytes(), true
	case *touchTrack:
		if err := gob.NewEncoder(&buf).Encode(ttWire{Touched: sortedObjs(v.touched)}); err != nil {
			return "", nil, false
		}
		return obsTouchTrack, buf.Bytes(), true
	case *PredicateObserver:
		w := predWire{Violation: v.Violation, Names: make([]string, len(v.Preds))}
		for i, p := range v.Preds {
			w.Names[i] = p.Name
		}
		if err := gob.NewEncoder(&buf).Encode(w); err != nil {
			return "", nil, false
		}
		return obsPredicate, buf.Bytes(), true
	}
	return "", nil, false
}

// pendingPred is one restored predicate observer awaiting its check
// functions; Restore collects these and bindPredicates completes them.
type pendingPred struct {
	po    *PredicateObserver
	names []string
}

// bindPredicates re-attaches check functions to predicate observers
// restored from a snapshot. The functions are configuration, not state
// — they have no wire form and every run keyed to the tier carries the
// identical set — so Restore leaves each observer unbound and the first
// run's effective options complete it here. A caller whose predicate
// names differ has broken the tier sharing contract; its observers stay
// unbound (losing only predicate sensitivity on resumed paths), which
// is the least surprising behavior for input the contract excludes.
func (t *CacheTier) bindPredicates(preds []Predicate) {
	t.mu.Lock()
	pend := t.pendingPreds
	t.pendingPreds = nil
	t.mu.Unlock()
	for _, p := range pend {
		if len(p.names) != len(preds) {
			continue
		}
		ok := true
		for i, n := range p.names {
			if preds[i].Name != n {
				ok = false
				break
			}
		}
		if ok {
			p.po.Preds = preds
		}
	}
}

// decodeObs rebuilds an observer from its wire form.
func decodeObs(kind string, data []byte) (vm.Observer, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	switch kind {
	case obsAccessCounter:
		var w acWire
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("core: access-counter observer: %w", err)
		}
		ac := newAccessCounter()
		for _, r := range w.Reads {
			ac.reads[counterKey{space: vm.Space(r.Space), obj: r.Obj, tid: r.TID, line: r.Line}] = r.N
		}
		for _, t := range w.Touched {
			ac.touched[objClass{space: vm.Space(t.Space), obj: t.Obj}] = true
		}
		return ac, nil
	case obsTouchTrack:
		var w ttWire
		if err := dec.Decode(&w); err != nil {
			return nil, fmt.Errorf("core: touch-track observer: %w", err)
		}
		tt := newTouchTrack()
		for _, t := range w.Touched {
			tt.touched[objClass{space: vm.Space(t.Space), obj: t.Obj}] = true
		}
		return tt, nil
	}
	return nil, fmt.Errorf("core: unknown observer kind %q", kind)
}

// ConcreteEntryWire is one concrete checkpoint in wire form.
type ConcreteEntryWire struct {
	Steps int64
	State *vm.StateWire
	Ctl   *CtlWire
}

// ForkWire is one pending sibling fork in wire form.
type ForkWire struct {
	State *vm.StateWire
	Ctl   *CtlWire
	ID    uint64
}

// SymEntryWire is one symbolic mainline checkpoint in wire form.
type SymEntryWire struct {
	Steps int64
	State *vm.StateWire
	Ctl   *CtlWire
	Forks []ForkWire

	Branches  int
	ForksUsed int
	Dropped   int
}

// SiblingMemoWire is one memoized sibling outcome, keyed by fork ID.
type SiblingMemoWire struct {
	ID       uint64
	Branches int
	Touched  []ckpt.TouchedObj
}

// SolverEntryWire is one memoized solver query; Flat references the
// solver section's shared node table.
type SolverEntryWire struct {
	Flat  []int32
	Binds []solver.BindingExport

	HasModel   bool
	ModelNames []string
	ModelVals  []int64

	Res         solver.Result
	SearchNodes int
}

// SolverCacheWire is the solver cache in wire form, entries in LRU order
// (most recently used first) over one shared expression node table.
type SolverCacheWire struct {
	Cap     int
	Nodes   []expr.NodeWire
	Entries []SolverEntryWire

	Hits      int64
	Misses    int64
	Evictions int64
	Resizes   int64
}

// TierSnapshot is the durable form of a CacheTier. All fields are
// exported and gob-friendly; internal/dstore frames and checksums the
// encoded bytes.
type TierSnapshot struct {
	Runs int64

	// Program is the compiled program the checkpoint states execute; nil
	// when the snapshot carries no states. Its derived write sets are
	// unexported and recomputed at Restore.
	Program *bytecode.Program

	// Trace is the recorded schedule the checkpoint controllers replay;
	// nil when the snapshot carries no states.
	Trace *trace.Trace

	Concrete        []ConcreteEntryWire
	ConcreteStride  int64
	ConcreteThinned int64
	ConcreteHits    int64
	ConcreteMisses  int64

	Sym        []SymEntryWire
	SymStride  int64
	SymThinned int64
	SymHits    int64
	SymMisses  int64

	Memos    []SiblingMemoWire
	MemoHits int64
	ForkIDs  uint64

	Solver *SolverCacheWire
}

// Snapshot renders the tier's current content into its durable form.
// Entries whose controller or observer has no wire form are skipped —
// the snapshot is a cache, and a skipped entry only costs warmth. Static
// facts are not persisted: the pass is a cheap pure function of the
// program and the first post-restore run recomputes it.
//
// The caller must ensure no run is active on the tier (SnapshotIfIdle
// enforces it): a run still recording would let the snapshot capture a
// prefix of its trace while checkpoint controllers reference positions
// beyond it, and a restored resume would then fall back mid-replay
// instead of following the recorded schedule.
func (t *CacheTier) Snapshot() *TierSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// SnapshotIfIdle snapshots the tier unless a run is active on it; the
// tier lock is held for the whole encode, so no run can begin (and no
// trace can be rebound) while the snapshot is taken. ok is false when a
// run was active — the caller simply skips this flush and the next
// run's completion flushes instead.
func (t *CacheTier) SnapshotIfIdle() (snap *TierSnapshot, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active > 0 {
		return nil, false
	}
	return t.snapshotLocked(), true
}

// snapshotLocked does the encoding; callers hold t.mu.
func (t *CacheTier) snapshotLocked() *TierSnapshot {
	runs := t.runs

	sh := t.shared
	sh.mu.Lock()
	tr := sh.tr
	sh.mu.Unlock()

	snap := &TierSnapshot{Runs: runs}
	if tr != nil {
		snap.Trace = tr.Clone()
	}
	var prog *bytecode.Program

	cx := sh.store.Export()
	snap.ConcreteStride, snap.ConcreteThinned = cx.Stride, cx.Thinned
	snap.ConcreteHits, snap.ConcreteMisses = cx.Hits, cx.Misses
	for _, e := range cx.Entries {
		sw, ok := vm.EncodeState(e.State, encodeObs)
		if !ok {
			continue
		}
		cw, ok := encodeCtl(e.Ctl)
		if !ok {
			continue
		}
		if prog == nil {
			prog = e.State.Prog
		}
		snap.Concrete = append(snap.Concrete, ConcreteEntryWire{Steps: e.Steps, State: sw, Ctl: cw})
	}

	sx := sh.sym.Export()
	snap.SymStride, snap.SymThinned = sx.Stride, sx.Thinned
	snap.SymHits, snap.SymMisses = sx.Hits, sx.Misses
	snap.MemoHits, snap.ForkIDs = sx.MemoHits, sx.ForkIDs
	for _, e := range sx.Entries {
		sw, ok := vm.EncodeState(e.State, encodeObs)
		if !ok {
			continue
		}
		cw, ok := encodeCtl(e.Ctl)
		if !ok {
			continue
		}
		ew := SymEntryWire{
			Steps: e.Steps, State: sw, Ctl: cw,
			Branches: e.Branches, ForksUsed: e.ForksUsed, Dropped: e.Dropped,
		}
		ok = true
		for _, f := range e.Forks {
			fsw, fok := vm.EncodeState(f.State, encodeObs)
			if !fok {
				ok = false
				break
			}
			fcw, fok := encodeCtl(f.Ctl)
			if !fok {
				ok = false
				break
			}
			ew.Forks = append(ew.Forks, ForkWire{State: fsw, Ctl: fcw, ID: f.ID})
		}
		if !ok {
			continue // an unserializable fork poisons the whole entry, as in Add
		}
		if prog == nil {
			prog = e.State.Prog
		}
		snap.Sym = append(snap.Sym, ew)
	}
	for id, o := range sx.Memos {
		snap.Memos = append(snap.Memos, SiblingMemoWire{ID: id, Branches: o.Branches, Touched: o.Touched})
	}
	sort.Slice(snap.Memos, func(i, j int) bool { return snap.Memos[i].ID < snap.Memos[j].ID })

	snap.Program = prog
	snap.Solver = encodeSolver(sh.cache.Export())
	return snap
}

// encodeSolver renders a solver cache export over one shared node table.
func encodeSolver(x solver.CacheExport) *SolverCacheWire {
	w := &SolverCacheWire{
		Cap:  x.Cap,
		Hits: x.Hits, Misses: x.Misses, Evictions: x.Evictions, Resizes: x.Resizes,
	}
	enc := expr.NewEncoder()
	for _, e := range x.Entries {
		ew := SolverEntryWire{
			Flat:  enc.AddList(e.Flat),
			Binds: e.Binds,
			Res:   e.Res, SearchNodes: e.Nodes,
		}
		if e.Model != nil {
			ew.HasModel = true
			names := make([]string, 0, len(e.Model))
			for n := range e.Model {
				names = append(names, n)
			}
			sort.Strings(names)
			ew.ModelNames = names
			ew.ModelVals = make([]int64, len(names))
			for i, n := range names {
				ew.ModelVals[i] = e.Model[n]
			}
		}
		w.Entries = append(w.Entries, ew)
	}
	w.Nodes = enc.Nodes()
	return w
}

// Restore rebuilds the tier's content from a snapshot. It is atomic: any
// decode error imports nothing and the tier stays as it was (cold but
// correct). The shared trace binding is left clear — the next run binds
// its freshly recorded trace, while restored replay controllers keep the
// deserialized one, sound under the tier's determinism contract.
func (t *CacheTier) Restore(snap *TierSnapshot) error {
	prog := snap.Program
	if prog != nil {
		prog.RecomputeWriteSets()
	}
	tr := snap.Trace

	// Predicate observers come off the wire without their check
	// functions; collect them and commit to the tier only if the whole
	// decode succeeds, for bindPredicates to complete on the next run.
	var pend []pendingPred
	decObs := func(kind string, data []byte) (vm.Observer, error) {
		if kind != obsPredicate {
			return decodeObs(kind, data)
		}
		var w predWire
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
			return nil, fmt.Errorf("core: predicate observer: %w", err)
		}
		po := &PredicateObserver{Violation: w.Violation}
		pend = append(pend, pendingPred{po: po, names: w.Names})
		return po, nil
	}

	cx := ckpt.ExportedStore{
		Stride: snap.ConcreteStride, Thinned: snap.ConcreteThinned,
		Hits: snap.ConcreteHits, Misses: snap.ConcreteMisses,
	}
	for _, ew := range snap.Concrete {
		st, err := vm.DecodeState(prog, ew.State, decObs)
		if err != nil {
			return fmt.Errorf("concrete checkpoint @%d: %w", ew.Steps, err)
		}
		ctl, err := decodeCtl(ew.Ctl, tr)
		if err != nil {
			return fmt.Errorf("concrete checkpoint @%d: %w", ew.Steps, err)
		}
		cx.Entries = append(cx.Entries, ckpt.ExportedEntry{Steps: ew.Steps, State: st, Ctl: ctl})
	}

	sx := ckpt.ExportedSymStore{
		Stride: snap.SymStride, Thinned: snap.SymThinned,
		Hits: snap.SymHits, Misses: snap.SymMisses,
		MemoHits: snap.MemoHits, ForkIDs: snap.ForkIDs,
	}
	for _, ew := range snap.Sym {
		st, err := vm.DecodeState(prog, ew.State, decObs)
		if err != nil {
			return fmt.Errorf("symbolic checkpoint @%d: %w", ew.Steps, err)
		}
		ctl, err := decodeCtl(ew.Ctl, tr)
		if err != nil {
			return fmt.Errorf("symbolic checkpoint @%d: %w", ew.Steps, err)
		}
		xe := ckpt.ExportedSymEntry{
			Steps: ew.Steps, State: st, Ctl: ctl,
			Branches: ew.Branches, ForksUsed: ew.ForksUsed, Dropped: ew.Dropped,
		}
		for _, fw := range ew.Forks {
			fst, err := vm.DecodeState(prog, fw.State, decObs)
			if err != nil {
				return fmt.Errorf("pending fork %d: %w", fw.ID, err)
			}
			fctl, err := decodeCtl(fw.Ctl, tr)
			if err != nil {
				return fmt.Errorf("pending fork %d: %w", fw.ID, err)
			}
			xe.Forks = append(xe.Forks, ckpt.PendingFork{State: fst, Ctl: fctl, ID: fw.ID})
		}
		sx.Entries = append(sx.Entries, xe)
	}
	if len(snap.Memos) > 0 {
		sx.Memos = make(map[uint64]ckpt.SiblingOutcome, len(snap.Memos))
		for _, m := range snap.Memos {
			sx.Memos[m.ID] = ckpt.SiblingOutcome{Branches: m.Branches, Touched: m.Touched}
		}
	}

	var solverX solver.CacheExport
	haveSolver := false
	if snap.Solver != nil {
		x, err := decodeSolver(snap.Solver)
		if err != nil {
			return err
		}
		solverX, haveSolver = x, true
	}

	// Everything decoded; import atomically from here on.
	sh := t.shared
	sh.store.Import(cx)
	sh.sym.Import(sx)
	if haveSolver {
		sh.cache.Import(solverX)
	}
	t.mu.Lock()
	t.runs = snap.Runs
	t.pendingPreds = pend
	t.mu.Unlock()
	return nil
}

// decodeSolver rebuilds a solver cache export from its wire form.
func decodeSolver(w *SolverCacheWire) (solver.CacheExport, error) {
	x := solver.CacheExport{
		Cap:  w.Cap,
		Hits: w.Hits, Misses: w.Misses, Evictions: w.Evictions, Resizes: w.Resizes,
	}
	dec, err := expr.NewDecoder(w.Nodes)
	if err != nil {
		return x, fmt.Errorf("solver cache: %w", err)
	}
	for i, ew := range w.Entries {
		flat, err := dec.GetList(ew.Flat)
		if err != nil {
			return x, fmt.Errorf("solver entry %d: %w", i, err)
		}
		e := solver.CacheEntryExport{Flat: flat, Binds: ew.Binds, Res: ew.Res, Nodes: ew.SearchNodes}
		if ew.HasModel {
			if len(ew.ModelNames) != len(ew.ModelVals) {
				return x, fmt.Errorf("solver entry %d: model name/value mismatch", i)
			}
			e.Model = make(expr.Assignment, len(ew.ModelNames))
			for j, n := range ew.ModelNames {
				e.Model[n] = ew.ModelVals[j]
			}
		}
		x.Entries = append(x.Entries, e)
	}
	return x, nil
}

// MemBytes estimates the tier's resident footprint: every stored
// checkpoint and fork state plus the solver cache's memoized entries.
// This is what the server's memory-budget registry and the
// portend_tier_bytes gauge report instead of a flat per-tier guess.
func (t *CacheTier) MemBytes() int64 {
	sh := t.shared
	return sh.store.MemBytes() + sh.sym.MemBytes() + sh.cache.MemBytes()
}
