package core

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
)

// tierGoldenPath is a checked-in portend-tier/1 payload (the gob body
// dstore frames) captured from a populated tier before the persistent
// copy-on-write state representation landed. It pins the on-disk wire
// form: whatever the in-memory State looks like, tiers written by older
// builds must keep decoding, and re-encoding what was decoded must
// reproduce the same wire shape.
const tierGoldenPath = "testdata/tier_v1.golden"

// Regenerate (only when the schema version is deliberately bumped) with:
//
//	PORTEND_WRITE_TIER_GOLDEN=1 go test ./internal/core -run TestTierWireCompat
func writeTierGolden(t *testing.T) []byte {
	t.Helper()
	tier := newSnapshotTestTier()
	res := runOnTier(t, tier, detectSeedSrc, []int64{3})
	if len(res.Verdicts) < 3 {
		t.Fatalf("golden seed run produced %d verdicts, want >= 3", len(res.Verdicts))
	}
	if tier.Stats().Checkpoints == 0 {
		t.Fatal("golden seed run deposited no checkpoints; fixture would be vacuous")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tier.Snapshot()); err != nil {
		t.Fatalf("encode golden tier: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(tierGoldenPath), 0o755); err != nil {
		t.Fatalf("mkdir testdata: %v", err)
	}
	if err := os.WriteFile(tierGoldenPath, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write golden tier: %v", err)
	}
	return buf.Bytes()
}

// TestTierWireCompat asserts portend-tier/1 wire stability across the
// persistent-state refactor: the pre-refactor fixture decodes, restores
// into a live tier, and a fresh Snapshot of that tier re-encodes to the
// same bytes. Any representational change that leaks into the wire form
// (renamed fields, reordered canonical sorts, a persistent heap node
// that fails to flatten back to the flat sorted HeapBlockWire schema)
// breaks this byte-for-byte.
//
// Two deliberate normalizations, both properties of gob/Restore rather
// than of the state representation under test:
//   - gob type IDs are numbered in process-global registration order, so
//     the reference bytes are the fixture re-encoded in this process (the
//     fixture's own raw bytes pin decodability; TestTierSurvivesRestart
//     pins whole-file byte identity in the single-process server flow);
//   - Restore leaves the shared trace binding clear by design (the next
//     run binds its own recorded trace), so the decoded trace is carried
//     onto the re-snapshot before comparing. The trace is pure slices
//     whose bytes the determinism suites already pin.
func TestTierWireCompat(t *testing.T) {
	raw, err := os.ReadFile(tierGoldenPath)
	if os.Getenv("PORTEND_WRITE_TIER_GOLDEN") == "1" {
		raw, err = writeTierGolden(t), nil
	}
	if err != nil {
		t.Fatalf("read %s (regenerate with PORTEND_WRITE_TIER_GOLDEN=1): %v", tierGoldenPath, err)
	}

	var snap TierSnapshot
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		t.Fatalf("decode pre-refactor fixture: %v", err)
	}
	tier := NewCacheTier(DefaultOptions())
	if err := tier.Restore(&snap); err != nil {
		t.Fatalf("restore pre-refactor fixture: %v", err)
	}
	if tier.Stats().Checkpoints == 0 {
		t.Fatal("restored fixture holds no checkpoints; fixture is stale or truncated")
	}

	resnap := tier.Snapshot()
	resnap.Trace = snap.Trace

	// Encode reference and candidate only now, after Restore/Snapshot
	// finished all nested observer/controller encodes: both streams then
	// see the same global type-ID numbering and must be byte-identical.
	enc := func(v any) []byte {
		t.Helper()
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(v); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return b.Bytes()
	}
	ref, got := enc(&snap), enc(resnap)
	if !bytes.Equal(got, ref) {
		i := 0
		for i < len(got) && i < len(ref) && got[i] == ref[i] {
			i++
		}
		t.Fatalf("restored tier re-encodes to different bytes (%d vs %d, first diff at %d): portend-tier/1 wire form drifted",
			len(got), len(ref), i)
	}

	// The restored snapshot must also be live, not just re-encodable: a
	// run against it resumes warm and yields the same verdicts as a cold
	// tier, which is what the durable store promises across restarts.
	cold := newSnapshotTestTier()
	resCold := runOnTier(t, cold, detectSeedSrc, []int64{3})
	before := tier.Stats().CheckpointHits
	resWarm := runOnTier(t, tier, detectSeedSrc, []int64{3})
	if a, b := renderRun(resCold), renderRun(resWarm); a != b {
		t.Errorf("fixture-restored tier changed verdicts\n--- cold ---\n%s\n--- restored ---\n%s", a, b)
	}
	if tier.Stats().CheckpointHits-before < 1 {
		t.Error("run on fixture-restored tier reported no cross-run checkpoint hits")
	}
}
