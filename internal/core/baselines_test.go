package core

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/race"
)

// detectOne compiles src, runs detection, and returns the report for the
// named global plus the pieces a baseline classifier needs.
func detectOne(t *testing.T, src, global string, inputs []int64) (*Classifier, *race.Report, *race.DetectionResult) {
	t.Helper()
	p := bytecode.MustCompile(src, "base", bytecode.Options{})
	det := race.Detect(p, nil, inputs, 3_000_000)
	gid := int64(p.GlobalID(global))
	for _, rep := range det.Reports {
		if rep.Key.Obj == gid {
			return New(p, DefaultOptions()), rep, det
		}
	}
	t.Fatalf("no race on %q", global)
	return nil, nil, nil
}

func TestRecordReplayAnalyzerStatesSame(t *testing.T) {
	// Redundant write: reversal leaves identical shared memory.
	cl, rep, det := detectOne(t, kWitnessProg, "w", nil)
	v, err := cl.RecordReplayAnalyzer(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if v.Harmful || v.StatesDiffer || v.ReplayFailed {
		t.Fatalf("redundant write should be harmless/same: %+v", v)
	}
}

func TestRecordReplayAnalyzerStatesDiffer(t *testing.T) {
	// Different-value writes: states differ, so the analyzer calls a
	// perfectly harmless race harmful — the paper's core criticism.
	cl, rep, det := detectOne(t, statesDifferProg, "lvl", nil)
	v, err := cl.RecordReplayAnalyzer(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Harmful || !v.StatesDiffer {
		t.Fatalf("different-value writes should diff: %+v", v)
	}
}

func TestRecordReplayAnalyzerReplayFailure(t *testing.T) {
	// Ad-hoc protected data: the alternate cannot be enforced; the
	// analyzer conservatively reports harmful (its 74% false positive
	// source, §2.1).
	cl, rep, det := detectOne(t, adHocProg, "data", nil)
	v, err := cl.RecordReplayAnalyzer(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Harmful || !v.ReplayFailed {
		t.Fatalf("unenforceable alternate should be a replay failure: %+v", v)
	}
}

func TestRecordReplayAnalyzerMissesOutputDiff(t *testing.T) {
	// The outDiff race's post-race memory is identical (the reversed
	// pair ends with the same write); state comparison calls it
	// harmless even though the printed value differs.
	cl, rep, det := detectOne(t, outDiffProg, "v", nil)
	v, err := cl.RecordReplayAnalyzer(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if v.Harmful {
		t.Fatalf("state comparison should miss the output difference: %+v", v)
	}
}

func TestAdHocDetectorPositive(t *testing.T) {
	cl, rep, det := detectOne(t, adHocProg, "flag", nil)
	v, err := cl.AdHocDetector(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Classified || !v.SingleOrdering {
		t.Fatalf("busy-wait flag is ad-hoc sync: %+v", v)
	}
	cl2, rep2, det2 := detectOne(t, adHocProg, "data", nil)
	v2, err := cl2.AdHocDetector(rep2, det2.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Classified || !v2.SingleOrdering {
		t.Fatalf("flag-protected data is ad-hoc sync: %+v", v2)
	}
}

func TestAdHocDetectorNegative(t *testing.T) {
	for _, tc := range []struct{ src, global string }{
		{kWitnessProg, "w"},
		{outDiffProg, "v"},
		{crashAltProg, "idx"},
	} {
		cl, rep, det := detectOne(t, tc.src, tc.global, nil)
		v, err := cl.AdHocDetector(rep, det.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if v.Classified {
			t.Fatalf("%s: ad-hoc detector should stay silent, got %+v", tc.global, v)
		}
	}
}

func TestHeuristicClassifierRedundantWrite(t *testing.T) {
	cl, rep, det := detectOne(t, kWitnessProg, "w", nil)
	v, err := cl.HeuristicClassifier(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !v.LikelyHarmless || v.Rule != "redundant-write" {
		t.Fatalf("same-value writes should match the heuristic: %+v", v)
	}
}

func TestHeuristicClassifierFalseNegativeOnCrash(t *testing.T) {
	// The heuristic prunes "flag-like" read-write races — but the idx
	// race is exactly such a pattern and is harmful: the false-negative
	// risk the paper warns about (§2.1).
	cl, rep, det := detectOne(t, crashAltProg, "idx", nil)
	v, err := cl.HeuristicClassifier(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if v.LikelyHarmless {
		t.Logf("heuristic pruned a harmful race (rule %s) — the documented failure mode", v.Rule)
	}
}

func TestBaselinesAgreeWithPortendOnMicro(t *testing.T) {
	// On the micro-benchmark patterns the baselines and Portend agree:
	// redundant writes are harmless by all measures.
	cl, rep, det := detectOne(t, kWitnessProg, "w", nil)
	rr, err := cl.RecordReplayAnalyzer(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := cl.Classify(rep, det.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Harmful || pv.Class != KWitnessHarmless {
		t.Fatalf("disagreement on the trivially harmless race: rr=%+v portend=%s", rr, pv)
	}
}
