package core

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
)

// TestSeedZeroRoundTrips pins the has-seed semantics: an explicitly
// chosen seed — including 0 — survives option normalization, while an
// unset zero still falls back to the default.
func TestSeedZeroRoundTrips(t *testing.T) {
	p := bytecode.MustCompile(outDiffProg, "seedtest", bytecode.Options{})

	c := New(p, Options{Seed: 0, SeedSet: true})
	if c.Opts.Seed != 0 {
		t.Errorf("explicit seed 0 did not round-trip: got %d", c.Opts.Seed)
	}
	c = New(p, Options{Seed: 0})
	if c.Opts.Seed != DefaultOptions().Seed {
		t.Errorf("unset seed should default to %d, got %d", DefaultOptions().Seed, c.Opts.Seed)
	}
	c = New(p, Options{Seed: 42})
	if c.Opts.Seed != 42 {
		t.Errorf("seed 42 did not round-trip: got %d", c.Opts.Seed)
	}
}

// TestAltSeedNoCollisions asserts the alternate-schedule seed derivation
// is collision-free over the default Mp×Ma grid and far larger ones, for
// several base seeds — the regression for the old linear derivation
// (Seed + 131·pi + 17·j + 1), under which any two grid points differing
// by a multiple of (+17, −131) shared a seed and silently explored the
// same schedule.
func TestAltSeedNoCollisions(t *testing.T) {
	d := DefaultOptions()
	grids := []struct{ mp, ma int }{{d.Mp, d.Ma}, {64, 64}, {200, 17}}
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		for _, g := range grids {
			seen := make(map[uint64][2]int, g.mp*g.ma)
			for pi := 0; pi < g.mp; pi++ {
				for j := 0; j < g.ma; j++ {
					s := altSeed(seed, pi, j)
					if prev, dup := seen[s]; dup {
						t.Fatalf("seed collision for base %d on %dx%d grid: (%d,%d) and (%d,%d) both derive %d",
							seed, g.mp, g.ma, prev[0], prev[1], pi, j, s)
					}
					seen[s] = [2]int{pi, j}
				}
			}
		}
	}
	// The old derivation really did collide on a grid of this size —
	// keep the witness so the test documents what it guards against.
	old := func(seed uint64, pi, j int) uint64 { return seed + uint64(pi)*131 + uint64(j)*17 + 1 }
	if old(1, 17, 0) != old(1, 0, 131) {
		t.Fatal("expected the legacy linear derivation to collide at (17,0)/(0,131)")
	}
}

// forkHeavySrc races on flag while a symbolic input fans the exploration
// out over many forked siblings: each loop iteration branches on the
// symbolic input, so multi-path analysis forks far more siblings than a
// tight queue cap admits.
const forkHeavySrc = `
var flag = 0
var acc = 0
fn w() { flag = 1 }
fn main() {
	let x = input()
	let t = spawn w()
	yield()
	flag = 2
	for i = 0, 12 {
		if x > i { acc = acc + 1 }
	}
	join(t)
	print("acc=", acc)
}`

// TestTruncationAccounted asserts the regression for the silent caps:
// when the fork queue and worklist caps clip the exploration, the
// verdict says so — Stats.TruncatedPaths is non-zero, the §3.6 report
// carries the warning, and the count is deterministic.
func TestTruncationAccounted(t *testing.T) {
	opts := DefaultOptions()
	opts.Mp = 8
	opts.MaxQueuedForks = 2
	opts.MaxPathItems = 3

	res := classify(t, forkHeavySrc, opts, nil, []int64{6})
	v := verdictOn(t, res, "flag")
	if v.Stats.TruncatedPaths == 0 {
		t.Fatalf("expected truncated paths with caps (queue=2, items=3); stats: %+v", v.Stats)
	}
	if rep := v.Report(res.Prog); !strings.Contains(rep, "truncated") {
		t.Errorf("report does not disclose truncation:\n%s", rep)
	}

	// Deterministic: the same caps truncate identically on a re-run.
	res2 := classify(t, forkHeavySrc, opts, nil, []int64{6})
	v2 := verdictOn(t, res2, "flag")
	if v2.Stats.TruncatedPaths != v.Stats.TruncatedPaths {
		t.Errorf("truncation count not deterministic: %d vs %d", v.Stats.TruncatedPaths, v2.Stats.TruncatedPaths)
	}

	// And with generous caps the same workload reports no truncation.
	wide := DefaultOptions()
	res3 := classify(t, forkHeavySrc, wide, nil, []int64{6})
	v3 := verdictOn(t, res3, "flag")
	if v3.Stats.TruncatedPaths != 0 {
		t.Errorf("default caps unexpectedly truncated %d paths", v3.Stats.TruncatedPaths)
	}
	if rep := v3.Report(res3.Prog); strings.Contains(rep, "truncated") {
		t.Errorf("untruncated report should not carry the warning:\n%s", rep)
	}
}

// TestCapsDerivedFromOptions asserts the caps are configuration, not
// magic numbers: zero values normalize to the documented defaults and
// explicit values stick.
func TestCapsDerivedFromOptions(t *testing.T) {
	p := bytecode.MustCompile(outDiffProg, "capstest", bytecode.Options{})

	c := New(p, Options{})
	d := DefaultOptions()
	if c.Opts.MaxQueuedForks != d.MaxQueuedForks {
		t.Errorf("MaxQueuedForks default = %d, want %d", c.Opts.MaxQueuedForks, d.MaxQueuedForks)
	}
	if want := 4*c.Opts.Mp + 32; c.Opts.MaxPathItems != want {
		t.Errorf("MaxPathItems default = %d, want 4*Mp+32 = %d", c.Opts.MaxPathItems, want)
	}

	c = New(p, Options{Mp: 9, MaxQueuedForks: 5, MaxPathItems: 7})
	if c.Opts.MaxQueuedForks != 5 || c.Opts.MaxPathItems != 7 {
		t.Errorf("explicit caps did not round-trip: %+v", c.Opts)
	}
}

// multiRaceSrc spreads three distinct races down one trace; the replay
// of each later race can resume from an earlier race's checkpoint.
const multiRaceSrc = `
var a = 0
var b = 0
var c = 0
fn wa() { a = 7 }
fn wb() { b = 7 }
fn wc() { c = 7 }
fn main() {
	let acc = 0
	for i = 0, 50 { acc = acc + 1 }
	let ta = spawn wa()
	yield()
	a = 7
	join(ta)
	for i = 0, 50 { acc = acc + 1 }
	let tb = spawn wb()
	yield()
	b = 7
	join(tb)
	for i = 0, 50 { acc = acc + 1 }
	let tc = spawn wc()
	yield()
	c = 7
	join(tc)
	print("acc=", acc)
}`

// TestCheckpointResumeUsedAndInvisible asserts the tentpole's two
// halves at engine level: later races' replays actually resume from the
// shared store (CheckpointHits > 0), and the verdicts are byte-identical
// to a cache-off run.
func TestCheckpointResumeUsedAndInvisible(t *testing.T) {
	render := func(res *Result) string {
		var sb strings.Builder
		for _, v := range res.Verdicts {
			sb.WriteString(v.Race.ID())
			sb.WriteString(" ")
			sb.WriteString(v.String())
			sb.WriteString("\n")
			sb.WriteString(v.Report(res.Prog))
		}
		return sb.String()
	}

	on := DefaultOptions()
	on.Parallel = 1
	off := on
	off.NoCache = true

	resOn := classify(t, multiRaceSrc, on, nil, nil)
	resOff := classify(t, multiRaceSrc, off, nil, nil)
	if len(resOn.Verdicts) < 3 {
		t.Fatalf("expected >= 3 races, got %d", len(resOn.Verdicts))
	}
	if a, b := render(resOn), render(resOff); a != b {
		t.Errorf("caches changed verdicts\n--- on ---\n%s\n--- off ---\n%s", a, b)
	}

	hits := 0
	for _, v := range resOn.Verdicts {
		hits += v.Stats.CheckpointHits
	}
	if hits == 0 {
		t.Error("no replay resumed from the checkpoint store on a 3-race trace")
	}
	for _, v := range resOff.Verdicts {
		if v.Stats.CheckpointHits != 0 || v.Stats.SolverCacheHits != 0 {
			t.Errorf("cache-off run reported cache hits: %+v", v.Stats)
		}
	}
}
