package fault

import "testing"

func TestDisarmedFastPath(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() = true with no faults armed")
	}
	if Fire(DStoreWrite) {
		t.Fatal("Fire fired with no faults armed")
	}
}

func TestCountedPoint(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set(DStoreWrite + ":2"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Enabled() = false after Set")
	}
	for i := 0; i < 2; i++ {
		if !Fire(DStoreWrite) {
			t.Fatalf("firing %d: Fire = false, want true", i)
		}
	}
	if Fire(DStoreWrite) {
		t.Fatal("Fire = true after budget consumed")
	}
	if got := Fired(DStoreWrite); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestAlwaysPoint(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set(RunPanic + ":*"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !Fire(RunPanic) {
			t.Fatalf("firing %d: Fire = false, want always", i)
		}
	}
	// Other points stay dark.
	if Fire(TierLoadFail) {
		t.Fatal("unarmed point fired")
	}
}

func TestBareSpecMeansOnce(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set(TierLoadFail); err != nil {
		t.Fatal(err)
	}
	if !Fire(TierLoadFail) {
		t.Fatal("first Fire = false, want true")
	}
	if Fire(TierLoadFail) {
		t.Fatal("second Fire = true, want one-shot")
	}
}

func TestMultiPointSpecAndActive(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set(DStoreTruncate + ":1," + RunPanic + ":*"); err != nil {
		t.Fatal(err)
	}
	// Active sorts points, so the rendering is deterministic.
	if got, want := Active(), "dstore.truncate:1,run.panic:*"; got != want {
		t.Fatalf("Active() = %q, want %q", got, want)
	}
	if !Fire(DStoreTruncate) || !Fire(RunPanic) {
		t.Fatal("armed points did not fire")
	}
}

func TestBadSpecs(t *testing.T) {
	Reset()
	defer Reset()
	for _, spec := range []string{":3", "x:y", "x:0", "x:-1", "x:"} {
		if err := Set(spec); err == nil {
			t.Errorf("Set(%q) accepted, want error", spec)
		}
	}
}

func TestResetDisarms(t *testing.T) {
	Reset()
	if err := Set(RunPanic + ":*"); err != nil {
		t.Fatal(err)
	}
	Reset()
	if Enabled() || Fire(RunPanic) {
		t.Fatal("Reset did not disarm")
	}
}

func TestFromEnv(t *testing.T) {
	Reset()
	defer Reset()
	t.Setenv(EnvVar, DStoreWrite+":1")
	if err := FromEnv(); err != nil {
		t.Fatal(err)
	}
	if !Fire(DStoreWrite) {
		t.Fatal("env-armed point did not fire")
	}

	t.Setenv(EnvVar, "bad spec::")
	if err := FromEnv(); err == nil {
		t.Fatal("FromEnv accepted a malformed spec")
	}
}
