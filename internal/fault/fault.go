// Package fault is a deterministic fault-injection registry for chaos
// testing the service's durability layer. Production code asks Fire at
// named injection points; a point fires only while armed, so tests (and
// the chaos-smoke CI job) can induce a disk-write failure, a truncated
// serialization, a failed or delayed tier load, or a panicking run at an
// exact moment — cheaply, without OS-level tricks, and reproducibly.
//
// Points are armed with a spec string — comma-separated `point[:count]`
// terms, where count is how many times the point fires before disarming
// (default 1; `*` means every time) — via Set, the PORTEND_FAULTS
// environment variable (FromEnv), or portendd's -faults flag. The
// registry is process-global: the daemon arms it once at startup and the
// injected code paths consult it with zero configuration plumbing. When
// nothing is armed, Fire is one atomic load.
package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The injection points wired into the durability layer.
const (
	// DStoreWrite fails a durable-store write with an I/O error before
	// any bytes reach the temp file.
	DStoreWrite = "dstore.write"
	// DStoreTruncate cuts a durable-store write short after the header,
	// modelling a crash mid-write; the CRC catches it on load.
	DStoreTruncate = "dstore.truncate"
	// TierLoadFail makes a tier load report an I/O error.
	TierLoadFail = "tier.load.fail"
	// TierLoadDelay stalls a tier load briefly (the server picks the
	// duration), modelling slow disk during warm-up.
	TierLoadDelay = "tier.load.delay"
	// RunPanic panics inside an analysis run, exercising the recover
	// boundary and tier poisoning.
	RunPanic = "run.panic"
)

// EnvVar names the environment variable FromEnv reads.
const EnvVar = "PORTEND_FAULTS"

const always = -1 // remaining count for `point:*`

var (
	armed atomic.Bool // fast-path guard: any point armed at all
	mu    sync.Mutex
	pts   map[string]int // point -> remaining firings (always = unbounded)
	fired map[string]int // point -> times fired, for test assertions
)

// Set replaces the armed fault set with the given spec ("" disarms
// everything). Unknown point names are accepted — the registry is a
// string keyspace, and a typo simply never fires — but malformed counts
// are an error.
func Set(spec string) error {
	next := map[string]int{}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, count := term, 1
		if i := strings.LastIndex(term, ":"); i >= 0 {
			name = term[:i]
			c := term[i+1:]
			if c == "*" {
				count = always
			} else {
				n, err := strconv.Atoi(c)
				if err != nil || n <= 0 {
					return fmt.Errorf("fault: bad count %q in term %q", c, term)
				}
				count = n
			}
		}
		if name == "" {
			return fmt.Errorf("fault: empty point name in term %q", term)
		}
		next[name] = count
	}
	mu.Lock()
	pts = next
	fired = map[string]int{}
	armed.Store(len(next) > 0)
	mu.Unlock()
	return nil
}

// FromEnv arms the registry from the PORTEND_FAULTS environment
// variable. A missing or empty variable is a no-op, so test binaries
// inherit faults only when the harness asks for them.
func FromEnv() error {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	return Set(spec)
}

// Reset disarms every point and clears the fired counters.
func Reset() { _ = Set("") }

// Enabled reports whether any point is armed. It is the zero-cost guard
// production paths may consult before doing per-point work.
func Enabled() bool { return armed.Load() }

// Fire consumes one firing of the named point, reporting whether the
// fault should be injected now. A point armed with a finite count
// disarms after its last firing.
func Fire(point string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	n, ok := pts[point]
	if !ok {
		return false
	}
	if n != always {
		if n <= 1 {
			delete(pts, point)
			if len(pts) == 0 {
				armed.Store(false)
			}
		} else {
			pts[point] = n - 1
		}
	}
	fired[point]++
	return true
}

// Fired returns how many times the named point has fired since the last
// Set/Reset — the assertion hook for fault-injection tests.
func Fired(point string) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[point]
}

// Active renders the currently armed points for logs, sorted so the
// rendering is stable.
func Active() string {
	mu.Lock()
	defer mu.Unlock()
	if len(pts) == 0 {
		return ""
	}
	terms := make([]string, 0, len(pts))
	for name, n := range pts {
		if n == always {
			terms = append(terms, name+":*")
		} else {
			terms = append(terms, fmt.Sprintf("%s:%d", name, n))
		}
	}
	sort.Strings(terms)
	return strings.Join(terms, ",")
}
