package race

import (
	"context"

	"repro/internal/bytecode"
	"repro/internal/trace"
	"repro/internal/vm"
)

// DetectionResult is the outcome of running a program under the race
// detector: the distinct races, the recorded schedule trace (the input to
// classification), and the final state.
type DetectionResult struct {
	Prog    *bytecode.Program
	Reports []*Report
	Trace   *trace.Trace
	Run     vm.RunResult
	Final   *vm.State
}

// Detect runs the program with the given concrete arguments and input log
// under the happens-before detector, recording the schedule. This is the
// paper's detection phase: "developers could run their existing test
// suites under Portend" (§3.1). The budget bounds the run (<0: unlimited).
func Detect(p *bytecode.Program, args, inputs []int64, budget int64) *DetectionResult {
	return DetectCtx(context.Background(), p, args, inputs, budget)
}

// DetectCtx is Detect with cancellation: when ctx is cancelled (or its
// deadline passes) mid-run, detection stops promptly and returns the
// races and partial trace observed so far; the Run result reports
// vm.StopCancelled.
func DetectCtx(ctx context.Context, p *bytecode.Program, args, inputs []int64, budget int64) *DetectionResult {
	st := vm.NewState(p, args, inputs)
	det := NewDetector()
	st.Observers = append(st.Observers, det)
	var interrupt func() bool
	if ctx.Done() != nil {
		interrupt = func() bool { return ctx.Err() != nil }
	}
	tr, res := trace.RecordWith(st, vm.NewRoundRobin(), budget, interrupt)
	return &DetectionResult{
		Prog:    p,
		Reports: det.Reports(),
		Trace:   tr,
		Run:     res,
		Final:   st,
	}
}

// FromExternal adapts a third-party race report (e.g. a ThreadSanitizer
// plugin trace, §3.1) into a Report the classifier accepts. The caller
// supplies the location and both access coordinates observed by the
// external tool.
func FromExternal(loc vm.Loc, first, second Access) *Report {
	return &Report{
		Key:       normKey(loc, first.PC, second.PC),
		Loc:       loc,
		First:     first,
		Second:    second,
		Instances: 1,
	}
}
