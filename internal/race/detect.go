package race

import (
	"context"

	"repro/internal/bytecode"
	"repro/internal/trace"
	"repro/internal/vm"
)

// DetectionResult is the outcome of running a program under the race
// detector: the distinct races, the recorded schedule trace (the input to
// classification), and the final state.
type DetectionResult struct {
	Prog    *bytecode.Program
	Reports []*Report
	Trace   *trace.Trace
	Run     vm.RunResult
	Final   *vm.State
}

// DetectConfig extends a detection run with classification-support
// hooks; the zero value is plain detection. Portend's design (§3.2,
// Algorithm 1) treats detection and classification as one pipeline over
// the same recorded schedule, so the detection pass can deposit the
// replay checkpoints classification will resume from — instead of the
// first classification rediscovering them with a full root replay.
type DetectConfig struct {
	// Extra observers are attached to the detection state after the
	// detector itself. They must be exactly the observers classification
	// replays run with (the classifier's access counter and predicate
	// observer): a snapshot is interchangeable with a replay state only
	// if it carries the same observer state for its prefix.
	Extra []vm.Observer

	// Snapshot, when non-nil, receives the running state at detection-
	// phase checkpoint points: the first clean park after each new race
	// cluster's detection, plus every SnapshotEvery completed
	// instructions of progress. The state is parked between instructions
	// with the detector detached (classification replays never carry
	// one), tr is the live — still recording — trace, and decisions is
	// the number of scheduling decisions consumed so far: the replay
	// position of the park (see trace.ReplayerAt). The callback must
	// treat the state as read-only and not retain it past the call;
	// depositing into a ckpt.Store clones it.
	Snapshot func(st *vm.State, tr *trace.Trace, decisions int)

	// HotSite, when non-nil alongside Snapshot, marks instruction
	// coordinates (function index, pc) worth an extra checkpoint: the
	// recording parks and deposits a snapshot immediately before the
	// first execution of each marked instruction. The static analysis
	// pass marks its race-pair candidate sites, placing a resume point
	// right upstream of each statically likely race. Marked sync ops are
	// ignored (parks happen only before non-sync instructions).
	HotSite func(fn, pc int) bool

	// SnapshotEvery is the initial periodic snapshot cadence in completed
	// instructions; <= 0 disables periodic snapshots (cluster-detection
	// snapshots still fire). The cadence doubles after every periodic
	// snapshot, so a trace of T instructions deposits O(log T) periodic
	// checkpoints — the nearest one below any point still lies within
	// half the replay it saves, while short traces never pay more than a
	// handful of state clones. Periodic snapshots are what let even the
	// trace's first race resume: its first racing access precedes every
	// cluster-detection point, so only cadence-deposited checkpoints can
	// lie before it.
	SnapshotEvery int64
}

// Detect runs the program with the given concrete arguments and input log
// under the happens-before detector, recording the schedule. This is the
// paper's detection phase: "developers could run their existing test
// suites under Portend" (§3.1). The budget bounds the run (<0: unlimited).
func Detect(p *bytecode.Program, args, inputs []int64, budget int64) *DetectionResult {
	return DetectCtx(context.Background(), p, args, inputs, budget)
}

// DetectCtx is Detect with cancellation: when ctx is cancelled (or its
// deadline passes) mid-run, detection stops promptly and returns the
// races and partial trace observed so far; the Run result reports
// vm.StopCancelled.
func DetectCtx(ctx context.Context, p *bytecode.Program, args, inputs []int64, budget int64) *DetectionResult {
	return DetectWith(ctx, p, args, inputs, budget, DetectConfig{})
}

// DetectWith is DetectCtx extended with the checkpointing hooks of cfg.
// The recorded trace, the race reports, the stop result, and the final
// state are bit-identical to a plain DetectCtx run: snapshot parks only
// pause the machine between instructions, they never change what it
// executes.
func DetectWith(ctx context.Context, p *bytecode.Program, args, inputs []int64, budget int64, cfg DetectConfig) *DetectionResult {
	st := vm.NewState(p, args, inputs)
	det := NewDetector()
	st.Observers = append(st.Observers, det)
	st.Observers = append(st.Observers, cfg.Extra...)
	var interrupt func() bool
	if ctx.Done() != nil {
		interrupt = func() bool { return ctx.Err() != nil }
	}
	var (
		tr  *trace.Trace
		res vm.RunResult
	)
	if cfg.Snapshot == nil {
		tr, res = trace.RecordWith(st, vm.NewRoundRobin(), budget, interrupt)
	} else {
		tr, res = recordSnapshotting(st, det, budget, interrupt, cfg)
	}
	return &DetectionResult{
		Prog:    p,
		Reports: det.Reports(),
		Trace:   tr,
		Run:     res,
		Final:   st,
	}
}

// recordSnapshotting is trace.RecordWith interleaved with checkpoint
// deposits: the machine runs in segments separated by parks at which
// cfg.Snapshot receives the state.
//
// Parks happen only before non-synchronization instructions. At such a
// point no scheduling decision is pending: the decisions recorded so far
// are exactly the decisions a replay resumed from the parked state will
// have consumed, so the snapshot's replay position (len(t.Decisions)) is
// exact. A park before a sync op would instead sit between an
// already-recorded decision and the instruction it chose, and a machine
// resumed there would consult the controller again — off by one.
func recordSnapshotting(st *vm.State, det *Detector, budget int64, interrupt func() bool, cfg DetectConfig) (*trace.Trace, vm.RunResult) {
	t := trace.NewTraceFor(st)
	m := vm.NewMachine(st, trace.NewRecorder(vm.NewRoundRobin(), t))
	m.Interrupt = interrupt

	pending := false
	det.OnNew = func(*Report) { pending = true }
	defer func() { det.OnNew = nil }()

	every := cfg.SnapshotEvery
	next := int64(-1)
	if every > 0 {
		next = every
	}
	var hotSeen map[[2]int]bool
	if cfg.HotSite != nil {
		hotSeen = map[[2]int]bool{}
	}
	m.Break = func(s *vm.State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		if in.Op.IsSyncOp() {
			return false
		}
		if pending || (next >= 0 && s.Steps >= next) {
			return true
		}
		if hotSeen != nil && cfg.HotSite(pc.Fn, pc.PC) {
			key := [2]int{pc.Fn, pc.PC}
			if !hotSeen[key] {
				hotSeen[key] = true
				return true
			}
		}
		return false
	}

	remaining := budget
	var total int64
	for {
		res := m.Run(remaining)
		total += res.Steps
		if res.Kind != vm.StopBreak {
			res.Steps = total // report the whole recording, not the last segment
			return t, res
		}
		if remaining >= 0 {
			remaining -= res.Steps
		}
		pending = false
		if next >= 0 {
			if st.Steps >= next {
				every *= 2 // geometric cadence: O(log T) periodic deposits
			}
			next = st.Steps + every
		}
		snapshotParked(st, det, t, cfg)
	}
}

// snapshotParked hands the parked state to cfg.Snapshot with the
// detector detached: classification replays never run a detector, so a
// snapshot must not carry one either (it would be cloned into every
// resume and re-detect races the trace already reported).
func snapshotParked(st *vm.State, det *Detector, t *trace.Trace, cfg DetectConfig) {
	saved := st.Observers
	trimmed := make([]vm.Observer, 0, len(saved)-1)
	for _, o := range saved {
		if o != vm.Observer(det) {
			trimmed = append(trimmed, o)
		}
	}
	st.Observers = trimmed
	cfg.Snapshot(st, t, len(t.Decisions))
	st.Observers = saved
}

// FromExternal adapts a third-party race report (e.g. a ThreadSanitizer
// plugin trace, §3.1) into a Report the classifier accepts. The caller
// supplies the location and both access coordinates observed by the
// external tool.
func FromExternal(loc vm.Loc, first, second Access) *Report {
	return &Report{
		Key:       normKey(loc, first.PC, second.PC),
		Loc:       loc,
		First:     first,
		Second:    second,
		Instances: 1,
	}
}
