package race

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

// barrierSignalSrc orders the accesses to g with a barrier and the
// accesses to data with a signal/wait handoff, while h races: both
// threads write it after the barrier with no ordering between them.
const barrierSignalSrc = `
var g = 0
var h = 0
var data = 0
var ready = 0
mutex m
cond c
barrier b(2)
fn w() {
	g = 1
	lock(m)
	data = 9
	ready = 1
	signal(c)
	unlock(m)
	barrier_wait(b)
	h = 5
}
fn main() {
	let t = spawn w()
	lock(m)
	while ready == 0 { wait(c, m) }
	unlock(m)
	let v = data + g
	barrier_wait(b)
	h = 6
	join(t)
	print("v=", v)
}`

func reportedGlobals(t *testing.T, p *bytecode.Program, reps []*Report) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for _, r := range reps {
		if r.Key.Space != vm.SpaceGlobal {
			t.Fatalf("unexpected heap race %v", r.Key)
		}
		names[p.Globals[r.Key.Obj].Name] = true
	}
	return names
}

// TestBarrierSignalEdges asserts the detector's EvBarrier and EvSignal
// happens-before edges: the barrier orders g, the signal/wait handoff
// orders data and ready, and only the genuinely unordered h races.
func TestBarrierSignalEdges(t *testing.T) {
	r := detect(t, barrierSignalSrc, nil, nil)
	names := reportedGlobals(t, r.Prog, r.Reports)
	if !names["h"] {
		t.Errorf("expected a race on h, got %v", names)
	}
	for _, ordered := range []string{"g", "data", "ready"} {
		if names[ordered] {
			t.Errorf("false race on %s: its accesses are ordered by sync edges (%v)", ordered, names)
		}
	}
}

// TestDetectorCloneMidRun asserts the race detector forks correctly with
// execution states, the way multi-path exploration forks it: the run is
// paused mid-execution (before the barrier and the signal have fired),
// the state — detector included, via CloneObs — is cloned, and both
// copies run to completion independently. Each copy must maintain its
// own vector clocks across the barrier/signal edges and report exactly
// the races the unforked run reports.
func TestDetectorCloneMidRun(t *testing.T) {
	p := bytecode.MustCompile(barrierSignalSrc, "clonetest", bytecode.Options{})

	run := func(st *vm.State, ctl vm.Controller) *Detector {
		t.Helper()
		res := vm.NewMachine(st, ctl).Run(2_000_000)
		if res.Kind != vm.StopFinished {
			t.Fatalf("run did not finish: %v", res.Kind)
		}
		return st.Observers[0].(*Detector)
	}

	ids := func(d *Detector) []string {
		var out []string
		for _, r := range d.Reports() {
			out = append(out, r.ID())
		}
		return out
	}

	// Reference: one uninterrupted detection run.
	ref := vm.NewState(p, nil, nil)
	ref.Observers = append(ref.Observers, NewDetector())
	want := ids(run(ref, vm.NewRoundRobin()))
	if len(want) == 0 {
		t.Fatal("reference run found no races")
	}

	// Forked: pause early, clone (CloneObs runs for the detector), then
	// finish the original and the clone separately.
	st := vm.NewState(p, nil, nil)
	st.Observers = append(st.Observers, NewDetector())
	ctl := vm.NewRoundRobin()
	if res := vm.NewMachine(st, ctl).Run(12); res.Kind != vm.StopBudget {
		t.Fatalf("pause run stopped with %v", res.Kind)
	}
	sib := st.Clone()
	sibCtl := ctl.CloneCtl()

	for i, arm := range []struct {
		st  *vm.State
		ctl vm.Controller
	}{{st, ctl}, {sib, sibCtl}} {
		got := ids(run(arm.st, arm.ctl))
		if len(got) != len(want) {
			t.Fatalf("arm %d: %d races, want %d (%v vs %v)", i, len(got), len(want), got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("arm %d: race %d = %s, want %s", i, j, got[j], want[j])
			}
		}
	}
}

// TestAccessGlobalCoordinate asserts detection stamps each racing access
// with its state-wide instruction count — the coordinate the classifier's
// checkpoint store resumes replays by.
func TestAccessGlobalCoordinate(t *testing.T) {
	r := detect(t, `
var c = 0
fn w() { c += 1 }
fn main() {
	let a = spawn w()
	let b = spawn w()
	join(a)
	join(b)
}`, nil, nil)
	if len(r.Reports) == 0 {
		t.Fatal("expected a race")
	}
	rep := r.Reports[0]
	if rep.First.Global <= 0 {
		t.Errorf("First.Global = %d, want > 0", rep.First.Global)
	}
	if rep.Second.Global <= rep.First.Global {
		t.Errorf("Second.Global = %d, want > First.Global = %d", rep.Second.Global, rep.First.Global)
	}
}
