package race

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

// Access describes one side of a race: which thread accessed which
// location, where in the code, and at which per-thread instruction count —
// the coordinates the record/replay engine needs to find this access again
// (§3.1).
type Access struct {
	TID    int
	Write  bool
	PC     bytecode.PCRef
	TInstr int64
	Clock  int64 // accessing thread's own clock component at the access
	// Global is the state-wide completed-instruction count just before the
	// access executed. Replay of the recorded trace reproduces the same
	// count at the same access, so it addresses this access within the
	// trace — the coordinate the classifier's checkpoint store resumes by.
	// Reports adapted from external tools leave it 0 (unknown).
	Global int64
}

// String renders "T2 WRITE @ fn:pc".
func (a Access) String() string {
	kind := "READ"
	if a.Write {
		kind = "WRITE"
	}
	return fmt.Sprintf("T%d %s @ fn%d:%d(line %d) #%d", a.TID, kind, a.PC.Fn, a.PC.PC, a.PC.Line, a.TInstr)
}

// ClusterKey identifies a distinct race: the shared object (element index
// ignored, so a loop racing over an array is one race) plus the two racing
// source lines, order-normalized. Clustering at source granularity mirrors
// the paper's clustering by location and stack traces (§4): the read and
// the write of a single `c += 1` belong to the same source-level race.
type ClusterKey struct {
	Space    vm.Space
	Obj      int64
	FnA, FnB int
	LnA, LnB int32
}

func normKey(loc vm.Loc, a, b bytecode.PCRef) ClusterKey {
	if b.Fn < a.Fn || (b.Fn == a.Fn && b.Line < a.Line) {
		a, b = b, a
	}
	// Cluster heap locations by allocation-site-independent object class:
	// all heap refs collapse to obj 0 (references differ across runs).
	obj := loc.Obj
	if loc.Space == vm.SpaceHeap {
		obj = 0
	}
	return ClusterKey{Space: loc.Space, Obj: obj, FnA: a.Fn, FnB: b.Fn, LnA: a.Line, LnB: b.Line}
}

// Report is one distinct data race.
type Report struct {
	Key       ClusterKey
	Loc       vm.Loc // location of the first detected instance
	First     Access // earlier access of the first detected instance
	Second    Access // later access (the detection point)
	Instances int    // dynamic occurrences observed
}

// ID renders a short stable identifier for the race.
func (r *Report) ID() string {
	return fmt.Sprintf("%v@L%d-L%d", r.Loc, r.Key.LnA, r.Key.LnB)
}

// Describe renders the debugging-aid report of Fig 6.
func (r *Report) Describe(p *bytecode.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data race during access to: %s\n", vm.FormatLoc(p, r.Loc))
	kind := func(w bool) string {
		if w {
			return "WRITE"
		}
		return "READ"
	}
	fmt.Fprintf(&b, "current thread id: %d: %s\n", r.Second.TID, kind(r.Second.Write))
	fmt.Fprintf(&b, "racing thread id: %d: %s\n", r.First.TID, kind(r.First.Write))
	fmt.Fprintf(&b, "Current thread at:\n  %s\n", p.FormatPC(r.Second.PC))
	fmt.Fprintf(&b, "Previous at:\n  %s\n", p.FormatPC(r.First.PC))
	fmt.Fprintf(&b, "instances observed: %d\n", r.Instances)
	return b.String()
}

// locState is the per-location detector metadata.
type locState struct {
	lastWrite *Access
	reads     map[int]*Access // by reader tid
}

// Detector is a happens-before race detector implementing vm.Observer.
// Its entire state is cloneable, so it forks along with execution states
// during multi-path analysis. Cloning is copy-on-write: CloneObs only
// marks both detectors shared, and the first mutation on either side
// deep-copies the tables (own) — so detection deposits, which clone the
// state (and its observers) every few hundred instructions, pay nothing
// for detectors that are never written again.
type Detector struct {
	vcs      map[int]VectorClock
	mutexVC  map[int]VectorClock
	exitVC   map[int]VectorClock
	locs     map[vm.Loc]*locState
	clusters map[ClusterKey]*Report
	order    []ClusterKey // report order, deterministic

	// shared is 1 while the tables above may be referenced by another
	// detector (set by CloneObs on both sides, cleared by own). It is
	// accessed atomically: concurrent CloneObs calls on one parked state
	// must not race with each other.
	shared uint32

	// OnNew, when non-nil, is invoked synchronously (from inside the
	// racing access's OnAccess notification) each time a new race cluster
	// is created — the cluster's detection point. The detection phase uses
	// it to schedule a replay checkpoint at the first clean park after the
	// detection point. It is intentionally not copied by CloneObs:
	// detectors cloned into forked exploration states observe derived
	// executions, not the recording the hook's consumer tracks.
	OnNew func(*Report)
}

// NewDetector returns an empty detector; attach it to a state via
// st.Observers.
func NewDetector() *Detector {
	return &Detector{
		vcs:      map[int]VectorClock{},
		mutexVC:  map[int]VectorClock{},
		exitVC:   map[int]VectorClock{},
		locs:     map[vm.Loc]*locState{},
		clusters: map[ClusterKey]*Report{},
	}
}

// Reports returns the distinct races in detection order.
func (d *Detector) Reports() []*Report {
	out := make([]*Report, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.clusters[k])
	}
	return out
}

// TotalInstances sums dynamic race occurrences across all distinct races.
func (d *Detector) TotalInstances() int {
	n := 0
	for _, r := range d.clusters {
		n += r.Instances
	}
	return n
}

// own deep-copies the tables if they are still shared with another
// detector. Every mutating entry point calls it first; read-only methods
// (Reports, TotalInstances) never do, so an unmutated clone chain shares
// one set of tables end to end.
func (d *Detector) own() {
	if atomic.LoadUint32(&d.shared) == 0 {
		return
	}
	vcs := make(map[int]VectorClock, len(d.vcs))
	for k, v := range d.vcs {
		vcs[k] = v.Copy()
	}
	mutexVC := make(map[int]VectorClock, len(d.mutexVC))
	for k, v := range d.mutexVC {
		mutexVC[k] = v.Copy()
	}
	exitVC := make(map[int]VectorClock, len(d.exitVC))
	for k, v := range d.exitVC {
		exitVC[k] = v.Copy()
	}
	locs := make(map[vm.Loc]*locState, len(d.locs))
	for loc, ls := range d.locs {
		nl := &locState{reads: make(map[int]*Access, len(ls.reads))}
		if ls.lastWrite != nil {
			w := *ls.lastWrite
			nl.lastWrite = &w
		}
		for t, a := range ls.reads {
			c := *a
			nl.reads[t] = &c
		}
		locs[loc] = nl
	}
	clusters := make(map[ClusterKey]*Report, len(d.clusters))
	for k, r := range d.clusters {
		c := *r
		clusters[k] = &c
	}
	d.vcs, d.mutexVC, d.exitVC, d.locs, d.clusters = vcs, mutexVC, exitVC, locs, clusters
	d.order = append([]ClusterKey(nil), d.order...)
	atomic.StoreUint32(&d.shared, 0)
}

func (d *Detector) vcOf(tid int) VectorClock {
	vc, ok := d.vcs[tid]
	if !ok {
		vc = NewVC(tid+1).Set(tid, 1)
		d.vcs[tid] = vc
	}
	return vc
}

// OnAccess implements vm.Observer: the FastTrack-style happens-before
// check against the last write and the concurrent reads of the location.
func (d *Detector) OnAccess(st *vm.State, tid int, loc vm.Loc, write bool, pc bytecode.PCRef, tInstr int64) {
	d.own()
	vc := d.vcOf(tid)
	cur := &Access{TID: tid, Write: write, PC: pc, TInstr: tInstr, Clock: vc.Get(tid), Global: st.Steps}
	ls := d.locs[loc]
	if ls == nil {
		ls = &locState{reads: map[int]*Access{}}
		d.locs[loc] = ls
	}

	report := func(prev *Access) {
		key := normKey(loc, prev.PC, cur.PC)
		if r, ok := d.clusters[key]; ok {
			r.Instances++
			return
		}
		r := &Report{Key: key, Loc: loc, First: *prev, Second: *cur, Instances: 1}
		d.clusters[key] = r
		d.order = append(d.order, key)
		if d.OnNew != nil {
			d.OnNew(r)
		}
	}

	if w := ls.lastWrite; w != nil && w.TID != tid && w.Clock > vc.Get(w.TID) {
		// Last write is concurrent with this access: write-write or
		// write-read race.
		report(w)
	}
	if write {
		for rt, r := range ls.reads {
			if rt != tid && r.Clock > vc.Get(rt) {
				report(r) // read-write race
			}
		}
		ls.lastWrite = cur
		ls.reads = map[int]*Access{}
	} else {
		ls.reads[tid] = cur
	}
}

// OnSync implements vm.Observer: maintains the happens-before relation
// over spawn/join/lock/unlock/signal/barrier.
func (d *Detector) OnSync(st *vm.State, ev vm.SyncEvent) {
	d.own()
	switch ev.Kind {
	case vm.EvSpawn:
		parent := d.vcOf(ev.TID)
		child := d.vcOf(ev.Obj).Join(parent)
		d.vcs[ev.Obj] = child
		d.vcs[ev.TID] = parent.Tick(ev.TID)
	case vm.EvExit:
		d.exitVC[ev.TID] = d.vcOf(ev.TID).Copy()
	case vm.EvJoin:
		if exit, ok := d.exitVC[ev.Obj]; ok {
			d.vcs[ev.TID] = d.vcOf(ev.TID).Join(exit)
		}
	case vm.EvAcquire:
		if mvc, ok := d.mutexVC[ev.Obj]; ok {
			d.vcs[ev.TID] = d.vcOf(ev.TID).Join(mvc)
		}
	case vm.EvRelease:
		d.mutexVC[ev.Obj] = d.vcOf(ev.TID).Copy()
		d.vcs[ev.TID] = d.vcOf(ev.TID).Tick(ev.TID)
	case vm.EvSignal:
		sig := d.vcOf(ev.TID)
		for _, w := range ev.Others {
			d.vcs[w] = d.vcOf(w).Join(sig)
		}
		d.vcs[ev.TID] = sig.Tick(ev.TID)
	case vm.EvBarrier:
		all := NewVC(0)
		for _, p := range ev.Others {
			all = all.Join(d.vcOf(p))
		}
		for _, p := range ev.Others {
			d.vcs[p] = all.Copy().Tick(p)
		}
	}
}

// CloneObs implements vm.Observer. It is O(1): the clone shares the
// source's tables and both sides are marked shared, deferring the deep
// copy to whichever side mutates first (own). OnNew is intentionally not
// copied — see its field comment.
func (d *Detector) CloneObs() vm.Observer {
	atomic.StoreUint32(&d.shared, 1)
	return &Detector{
		vcs:      d.vcs,
		mutexVC:  d.mutexVC,
		exitVC:   d.exitVC,
		locs:     d.locs,
		clusters: d.clusters,
		order:    d.order[:len(d.order):len(d.order)],
		shared:   1,
	}
}

// SortReports orders reports deterministically by location then pcs; used
// by drivers that aggregate across runs.
func SortReports(rs []*Report) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Key, rs[j].Key
		if a.Space != b.Space {
			return a.Space < b.Space
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		if a.FnA != b.FnA {
			return a.FnA < b.FnA
		}
		if a.LnA != b.LnA {
			return a.LnA < b.LnA
		}
		if a.FnB != b.FnB {
			return a.FnB < b.FnB
		}
		return a.LnB < b.LnB
	})
}
