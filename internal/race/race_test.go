package race

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

func detect(t *testing.T, src string, args, inputs []int64) *DetectionResult {
	t.Helper()
	p := bytecode.MustCompile(src, "racetest", bytecode.Options{})
	return Detect(p, args, inputs, 2_000_000)
}

func TestUnprotectedCounterIsRace(t *testing.T) {
	r := detect(t, `
var c = 0
fn w() { c += 1 }
fn main() {
	let a = spawn w()
	let b = spawn w()
	join(a)
	join(b)
}`, nil, nil)
	if len(r.Reports) == 0 {
		t.Fatal("expected a race on c")
	}
	rep := r.Reports[0]
	if rep.Loc.Space != vm.SpaceGlobal {
		t.Fatalf("bad loc %v", rep.Loc)
	}
	if rep.First.TID == rep.Second.TID {
		t.Fatal("race must involve two threads")
	}
}

func TestMutexProtectedIsNotRace(t *testing.T) {
	r := detect(t, `
var c = 0
mutex m
fn w() { lock(m); c += 1; unlock(m) }
fn main() {
	let a = spawn w()
	let b = spawn w()
	join(a)
	join(b)
	print(c)
}`, nil, nil)
	if len(r.Reports) != 0 {
		t.Fatalf("unexpected races: %v", r.Reports[0].Describe(r.Prog))
	}
}

func TestSpawnJoinOrder(t *testing.T) {
	r := detect(t, `
var x = 0
fn child() { x = x + 1 }
fn main() {
	x = 1
	let t = spawn child()
	join(t)
	print(x)
}`, nil, nil)
	if len(r.Reports) != 0 {
		t.Fatalf("spawn/join ordered accesses are not races: %v", r.Reports[0].Describe(r.Prog))
	}
}

func TestParentChildConcurrent(t *testing.T) {
	r := detect(t, `
var x = 0
fn child() { x = 2 }
fn main() {
	let t = spawn child()
	x = 1
	join(t)
}`, nil, nil)
	if len(r.Reports) != 1 {
		t.Fatalf("want 1 race, got %d", len(r.Reports))
	}
}

func TestCondvarEdgeNoRace(t *testing.T) {
	r := detect(t, `
var ready = 0
var data = 0
mutex m
cond c
fn producer() {
	data = 42
	lock(m)
	ready = 1
	signal(c)
	unlock(m)
}
fn main() {
	let p = spawn producer()
	lock(m)
	while ready == 0 { wait(c, m) }
	unlock(m)
	print(data)
	join(p)
}`, nil, nil)
	if len(r.Reports) != 0 {
		t.Fatalf("signal/wait creates happens-before; got race: %v", r.Reports[0].Describe(r.Prog))
	}
}

func TestBarrierEdgeNoRace(t *testing.T) {
	r := detect(t, `
var a = 0
var b = 0
barrier bar(2)
fn worker() {
	a = 1
	barrier_wait(bar)
	print(b)
}
fn main() {
	let t = spawn worker()
	b = 2
	barrier_wait(bar)
	print(a)
	join(t)
}`, nil, nil)
	if len(r.Reports) != 0 {
		t.Fatalf("barrier orders accesses; got race: %v", r.Reports[0].Describe(r.Prog))
	}
}

func TestAdHocSyncIsStillReportedAsRace(t *testing.T) {
	// Busy-wait on a flag: no recognized happens-before, so dynamic
	// detectors report a race (the "single ordering" class, §2.3).
	r := detect(t, `
var flag = 0
var data = 0
fn setter() {
	data = 7
	flag = 1
}
fn main() {
	let s = spawn setter()
	while flag == 0 { yield() }
	print(data)
	join(s)
}`, nil, nil)
	if len(r.Reports) < 2 {
		t.Fatalf("want races on flag and data, got %d", len(r.Reports))
	}
}

func TestClusteringCountsInstances(t *testing.T) {
	r := detect(t, `
var c = 0
fn w() { for i = 0, 10 { c += 1; yield() } }
fn main() {
	let a = spawn w()
	let b = spawn w()
	join(a)
	join(b)
}`, nil, nil)
	if len(r.Reports) == 0 {
		t.Fatal("expected races")
	}
	total := 0
	for _, rep := range r.Reports {
		total += rep.Instances
	}
	if total <= len(r.Reports) {
		t.Fatalf("loop should produce multiple instances: %d distinct, %d instances", len(r.Reports), total)
	}
}

func TestArrayElementsClusterTogether(t *testing.T) {
	r := detect(t, `
var arr[8]
fn w() { for i = 0, 8 { arr[i] += 1; yield() } }
fn main() {
	let a = spawn w()
	let b = spawn w()
	join(a)
	join(b)
}`, nil, nil)
	// All element races share pcs and object: a single distinct race.
	if len(r.Reports) != 1 {
		t.Fatalf("want 1 distinct race, got %d", len(r.Reports))
	}
	if r.Reports[0].Instances < 8 {
		t.Fatalf("want >=8 instances, got %d", r.Reports[0].Instances)
	}
}

func TestReadWriteAndWriteWrite(t *testing.T) {
	r := detect(t, `
var x = 0
fn reader() { print(x) }
fn writer() { x = 5 }
fn main() {
	let a = spawn reader()
	let b = spawn writer()
	join(a)
	join(b)
}`, nil, nil)
	if len(r.Reports) != 1 {
		t.Fatalf("want 1 race, got %d", len(r.Reports))
	}
	rep := r.Reports[0]
	if rep.First.Write && rep.Second.Write {
		t.Fatal("should be a read-write race")
	}
}

func TestReadsDoNotRace(t *testing.T) {
	r := detect(t, `
var x = 42
fn reader() { print(x) }
fn main() {
	let a = spawn reader()
	let b = spawn reader()
	print(x)
	join(a)
	join(b)
}`, nil, nil)
	if len(r.Reports) != 0 {
		t.Fatal("read-read is never a race")
	}
}

func TestDescribeRendering(t *testing.T) {
	r := detect(t, `
var hot = 0
fn w() { hot = 1 }
fn main() {
	let a = spawn w()
	hot = 2
	join(a)
}`, nil, nil)
	if len(r.Reports) != 1 {
		t.Fatalf("want 1 race, got %d", len(r.Reports))
	}
	d := r.Reports[0].Describe(r.Prog)
	for _, want := range []string{"Data race during access to: hot", "current thread id", "racing thread id", "WRITE"} {
		if !strings.Contains(d, want) {
			t.Fatalf("describe missing %q:\n%s", want, d)
		}
	}
}

func TestDetectorCloneIndependence(t *testing.T) {
	d := NewDetector()
	st := &vm.State{} // OnSync does not touch the state
	d.OnSync(st, vm.SyncEvent{Kind: vm.EvSpawn, TID: 0, Obj: 1})
	c := d.CloneObs().(*Detector)
	d.OnAccess(st, 0, vm.Loc{Obj: 1}, true, bytecode.PCRef{}, 0)
	d.OnAccess(st, 1, vm.Loc{Obj: 1}, true, bytecode.PCRef{Fn: 1}, 0)
	if len(d.Reports()) != 1 {
		t.Fatalf("original should have 1 report, got %d", len(d.Reports()))
	}
	if len(c.Reports()) != 0 {
		t.Fatal("clone must not see accesses after cloning")
	}
}

func TestVectorClockOps(t *testing.T) {
	a := NewVC(2).Set(0, 3).Set(1, 1)
	b := NewVC(2).Set(0, 1).Set(1, 5)
	j := a.Copy().Join(b)
	if j.Get(0) != 3 || j.Get(1) != 5 {
		t.Fatalf("join wrong: %v", j)
	}
	if !a.LeqAll(j) || !b.LeqAll(j) {
		t.Fatal("join must dominate operands")
	}
	if j.LeqAll(a) {
		t.Fatal("j should not be <= a")
	}
	t2 := a.Tick(0)
	if t2.Get(0) != 4 {
		t.Fatal("tick wrong")
	}
	ext := NewVC(1).Set(5, 7)
	if ext.Get(5) != 7 || ext.Get(9) != 0 {
		t.Fatal("extension wrong")
	}
}

func TestTraceRecordedAlongDetection(t *testing.T) {
	r := detect(t, `
var x = 0
fn w() { x = 1 }
fn main() {
	let a = spawn w()
	x = 2
	join(a)
}`, []int64{9}, []int64{3})
	if len(r.Trace.Decisions) == 0 {
		t.Fatal("trace should record scheduling decisions")
	}
	if len(r.Trace.Args) != 1 || r.Trace.Args[0] != 9 {
		t.Fatal("trace should capture args")
	}
	if len(r.Trace.Inputs) != 1 || r.Trace.Inputs[0] != 3 {
		t.Fatal("trace should capture inputs")
	}
}

func TestFromExternalAdapter(t *testing.T) {
	loc := vm.Loc{Space: vm.SpaceGlobal, Obj: 2}
	first := Access{TID: 1, Write: true, PC: bytecode.PCRef{Fn: 0, PC: 4}}
	second := Access{TID: 2, Write: false, PC: bytecode.PCRef{Fn: 1, PC: 9}}
	r := FromExternal(loc, first, second)
	if r.Loc != loc || r.First != first || r.Second != second || r.Instances != 1 {
		t.Fatal("adapter lost fields")
	}
}

func TestSortReportsDeterministic(t *testing.T) {
	mk := func(obj int64, fn int) *Report {
		return &Report{Key: ClusterKey{Obj: obj, FnA: fn}, Loc: vm.Loc{Obj: obj}}
	}
	rs := []*Report{mk(3, 1), mk(1, 2), mk(1, 1), mk(2, 0)}
	SortReports(rs)
	if rs[0].Loc.Obj != 1 || rs[1].Loc.Obj != 1 || rs[2].Loc.Obj != 2 || rs[3].Loc.Obj != 3 {
		t.Fatalf("bad order: %v", rs)
	}
	if rs[0].Key.FnA != 1 {
		t.Fatal("tie-break by fn failed")
	}
}

// Property: vector clock join is commutative, idempotent, and dominating.
func TestQuickVectorClockJoinLaws(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		va, vb := NewVC(4), NewVC(4)
		for i := 0; i < 4; i++ {
			va = va.Set(i, int64(a[i]))
			vb = vb.Set(i, int64(b[i]))
		}
		ab := va.Copy().Join(vb)
		ba := vb.Copy().Join(va)
		for i := 0; i < 4; i++ {
			if ab.Get(i) != ba.Get(i) {
				return false // commutativity
			}
		}
		aa := va.Copy().Join(va)
		for i := 0; i < 4; i++ {
			if aa.Get(i) != va.Get(i) {
				return false // idempotence
			}
		}
		return va.LeqAll(ab) && vb.LeqAll(ab) // domination
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mutex-protected counters never race, whatever the schedule.
func TestQuickNoFalsePositivesUnderRandomSchedules(t *testing.T) {
	p := bytecode.MustCompile(`
var c = 0
mutex m
fn w(n) {
	for i = 0, n { lock(m); c = c + 1; unlock(m) }
}
fn main() {
	let a = spawn w(3)
	let b = spawn w(4)
	join(a)
	join(b)
	print(c)
}`, "quick", bytecode.Options{})
	f := func(seed uint64) bool {
		st := vm.NewState(p, nil, nil)
		det := NewDetector()
		st.Observers = append(st.Observers, det)
		res := vm.NewMachine(st, vm.NewRandom(seed|1)).Run(1_000_000)
		if res.Kind != vm.StopFinished {
			return false
		}
		// No races, and the counter is exact.
		return len(det.Reports()) == 0 && st.RenderOutputs() == "7\n"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the unprotected version of the same program always reports
// the race, whatever the schedule (HB detection is schedule-insensitive
// for this pattern).
func TestQuickRaceDetectedUnderAnySchedule(t *testing.T) {
	p := bytecode.MustCompile(`
var c = 0
fn w(n) {
	for i = 0, n { c = c + 1; yield() }
}
fn main() {
	let a = spawn w(3)
	let b = spawn w(4)
	join(a)
	join(b)
}`, "quick2", bytecode.Options{})
	f := func(seed uint64) bool {
		st := vm.NewState(p, nil, nil)
		det := NewDetector()
		st.Observers = append(st.Observers, det)
		res := vm.NewMachine(st, vm.NewRandom(seed|1)).Run(1_000_000)
		return res.Kind == vm.StopFinished && len(det.Reports()) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
