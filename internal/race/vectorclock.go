// Package race implements Portend's dynamic happens-before data race
// detector (§3.1): vector clocks maintained over the VM's synchronization
// events, per-location access metadata, race reports, and the clustering
// that turns raw detections into the "distinct races" of Table 3.
package race

// VectorClock maps thread ids (dense, starting at 0) to logical clocks.
type VectorClock []int64

// NewVC returns a clock sized for n threads.
func NewVC(n int) VectorClock { return make(VectorClock, n) }

// Get returns the component for tid (0 when beyond the current size).
func (vc VectorClock) Get(tid int) int64 {
	if tid < len(vc) {
		return vc[tid]
	}
	return 0
}

// extended returns a clock that has room for tid.
func (vc VectorClock) extended(tid int) VectorClock {
	if tid < len(vc) {
		return vc
	}
	n := make(VectorClock, tid+1)
	copy(n, vc)
	return n
}

// Set returns a clock with component tid set to v (may reallocate).
func (vc VectorClock) Set(tid int, v int64) VectorClock {
	n := vc.extended(tid)
	n[tid] = v
	return n
}

// Tick increments the component for tid.
func (vc VectorClock) Tick(tid int) VectorClock {
	n := vc.extended(tid)
	n[tid]++
	return n
}

// Join returns the component-wise maximum of vc and other, in place on vc
// when capacity allows.
func (vc VectorClock) Join(other VectorClock) VectorClock {
	n := vc.extended(len(other) - 1)
	for i, v := range other {
		if v > n[i] {
			n[i] = v
		}
	}
	return n
}

// Copy returns an independent copy.
func (vc VectorClock) Copy() VectorClock {
	n := make(VectorClock, len(vc))
	copy(n, vc)
	return n
}

// LeqAll reports whether vc ≤ other component-wise (vc happens-before or
// equals other).
func (vc VectorClock) LeqAll(other VectorClock) bool {
	for i, v := range vc {
		if v > other.Get(i) {
			return false
		}
	}
	return true
}
