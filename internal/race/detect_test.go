package race

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/trace"
	"repro/internal/vm"
)

// snapSrc spreads two races down a trace with enough straight-line work
// between them for both periodic and cluster-point snapshots to fire.
const snapSrc = `
var a = 0
var b = 0
var acc = 0
fn wa() { a = 7 }
fn wb() { b = 7 }
fn main() {
	for i = 0, 80 { acc = acc + 1 }
	let ta = spawn wa()
	yield()
	a = 7
	join(ta)
	for i = 0, 80 { acc = acc + 1 }
	let tb = spawn wb()
	yield()
	b = 7
	join(tb)
	print("acc=", acc)
}`

func renderReports(rs []*Report, p *bytecode.Program) string {
	out := ""
	for _, r := range rs {
		out += r.Describe(p) + fmt.Sprintf("first@%d second@%d\n", r.First.Global, r.Second.Global)
	}
	return out
}

// TestDetectWithSnapshotsMatchesPlain asserts the snapshotting record
// loop is invisible: same trace, same reports (coordinates included),
// same stop result and step count as plain detection — parks only pause
// the machine, never change what it executes. It also pins the snapshot
// callback's contract: states arrive parked at increasing step counts,
// with the detector detached, and the replay position never exceeds the
// decisions recorded so far.
func TestDetectWithSnapshotsMatchesPlain(t *testing.T) {
	p := bytecode.MustCompile(snapSrc, "snaptest", bytecode.Options{})
	plain := Detect(p, nil, nil, 2_000_000)

	snaps := 0
	lastSteps := int64(-1)
	cfg := DetectConfig{
		SnapshotEvery: 64,
		Snapshot: func(st *vm.State, tr *trace.Trace, decisions int) {
			snaps++
			if st.Steps <= lastSteps {
				t.Errorf("snapshot steps not increasing: %d after %d", st.Steps, lastSteps)
			}
			lastSteps = st.Steps
			if decisions > len(tr.Decisions) {
				t.Errorf("snapshot position %d beyond recorded decisions %d", decisions, len(tr.Decisions))
			}
			for _, o := range st.Observers {
				if _, ok := o.(*Detector); ok {
					t.Error("snapshot state still carries the detector")
				}
			}
		},
	}
	got := DetectWith(context.Background(), p, nil, nil, 2_000_000, cfg)

	if snaps == 0 {
		t.Fatal("no snapshots fired")
	}
	if want, have := renderReports(plain.Reports, p), renderReports(got.Reports, p); want != have {
		t.Errorf("reports differ\n--- plain ---\n%s--- snapshotting ---\n%s", want, have)
	}
	if want, have := plain.Trace.String(), got.Trace.String(); want != have {
		t.Errorf("traces differ\n--- plain ---\n%s\n--- snapshotting ---\n%s", want, have)
	}
	if plain.Run.Kind != got.Run.Kind || plain.Run.Steps != got.Run.Steps {
		t.Errorf("run result differs: plain %v/%d vs snapshotting %v/%d",
			plain.Run.Kind, plain.Run.Steps, got.Run.Kind, got.Run.Steps)
	}
	if plain.Final.Steps != got.Final.Steps {
		t.Errorf("final states differ: %d vs %d steps", plain.Final.Steps, got.Final.Steps)
	}
}

// TestDetectWithSnapshotsBudget: a budget-bound snapshotting run must
// stop at exactly the same instruction as the plain run — the segmented
// loop's budget bookkeeping is exact.
func TestDetectWithSnapshotsBudget(t *testing.T) {
	p := bytecode.MustCompile(snapSrc, "snapbudget", bytecode.Options{})
	const budget = 300
	plain := Detect(p, nil, nil, budget)
	got := DetectWith(context.Background(), p, nil, nil, budget, DetectConfig{
		SnapshotEvery: 50,
		Snapshot:      func(*vm.State, *trace.Trace, int) {},
	})
	if plain.Run.Kind != vm.StopBudget || got.Run.Kind != vm.StopBudget {
		t.Fatalf("expected both runs budget-bound: %v vs %v", plain.Run.Kind, got.Run.Kind)
	}
	if plain.Final.Steps != got.Final.Steps || plain.Run.Steps != got.Run.Steps {
		t.Errorf("budget-bound runs diverge: plain %d/%d vs snapshotting %d/%d steps",
			plain.Final.Steps, plain.Run.Steps, got.Final.Steps, got.Run.Steps)
	}
}

// TestDetectClusterSnapshot: with the periodic cadence disabled, a
// snapshot still fires at each new race cluster's detection point, and
// it lands at or after the cluster's second (detection-point) access.
func TestDetectClusterSnapshot(t *testing.T) {
	p := bytecode.MustCompile(snapSrc, "snapcluster", bytecode.Options{})
	var snapSteps []int64
	got := DetectWith(context.Background(), p, nil, nil, 2_000_000, DetectConfig{
		SnapshotEvery: -1,
		Snapshot: func(st *vm.State, tr *trace.Trace, decisions int) {
			snapSteps = append(snapSteps, st.Steps)
		},
	})
	if len(got.Reports) < 2 {
		t.Fatalf("expected 2 races, got %d", len(got.Reports))
	}
	if len(snapSteps) != len(got.Reports) {
		t.Fatalf("snapshots = %d, want one per new cluster (%d)", len(snapSteps), len(got.Reports))
	}
	for i, rep := range got.Reports {
		if snapSteps[i] < rep.Second.Global {
			t.Errorf("cluster %d snapshot at %d precedes its detection point %d", i, snapSteps[i], rep.Second.Global)
		}
	}
}
