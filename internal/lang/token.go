// Package lang implements the front-end of PIL, the Portend Intermediate
// Language: a small C-like concurrent language that plays the role LLVM
// bitcode plays in the paper. PIL has 64-bit integers, fixed-size global
// arrays, heap allocation, functions, POSIX-style synchronization
// primitives (mutexes, condition variables, barriers, thread join) and
// output/input "system calls". Workloads in internal/workloads are written
// in PIL; the compiler in internal/bytecode lowers it to the stack bytecode
// interpreted by internal/vm.
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	STRING
	SEMI // explicit ';' or inserted at newline

	// operators and punctuation
	LPAREN
	RPAREN
	LBRACE
	RBRACE
	LBRACK
	RBRACK
	COMMA
	ASSIGN  // =
	PLUSEQ  // +=
	MINUSEQ // -=
	PLUS
	MINUS
	STAR
	SLASH
	PERCENT
	AMP
	PIPE
	CARET
	TILDE
	SHL
	SHR
	EQ
	NE
	LT
	LE
	GT
	GE
	LAND
	LOR
	NOT

	// keywords
	KWVAR
	KWLET
	KWFN
	KWIF
	KWELSE
	KWWHILE
	KWFOR
	KWRETURN
	KWSPAWN
	KWTRUE
	KWFALSE
	KWMUTEX
	KWCOND
	KWBARRIER
	KWBREAK
	KWCONTINUE
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer", STRING: "string", SEMI: ";",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	COMMA: ",", ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", TILDE: "~", SHL: "<<", SHR: ">>",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	LAND: "&&", LOR: "||", NOT: "!",
	KWVAR: "var", KWLET: "let", KWFN: "fn", KWIF: "if", KWELSE: "else",
	KWWHILE: "while", KWFOR: "for", KWRETURN: "return", KWSPAWN: "spawn",
	KWTRUE: "true", KWFALSE: "false", KWMUTEX: "mutex", KWCOND: "cond",
	KWBARRIER: "barrier", KWBREAK: "break", KWCONTINUE: "continue",
}

// String returns a human-readable token kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"var": KWVAR, "let": KWLET, "fn": KWFN, "if": KWIF, "else": KWELSE,
	"while": KWWHILE, "for": KWFOR, "return": KWRETURN, "spawn": KWSPAWN,
	"true": KWTRUE, "false": KWFALSE, "mutex": KWMUTEX, "cond": KWCOND,
	"barrier": KWBARRIER, "break": KWBREAK, "continue": KWCONTINUE,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // identifier name, integer literal text, or string value
	Int  int64  // value for INT tokens
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Text
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
