package lang

import (
	"strconv"
	"strings"
)

// Lexer turns PIL source into tokens. Like Go, PIL is newline-sensitive:
// the lexer inserts a SEMI token at a newline when the previous token could
// end a statement, so programs need no explicit semicolons.
type Lexer struct {
	src  string
	off  int
	line int
	col  int

	lastKind    Kind
	haveLast    bool
	pendingSemi bool
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input. The returned slice always ends with EOF.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) peekByte() (byte, bool) {
	if lx.off >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.off], true
}

func (lx *Lexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

// canEndStatement reports whether a token kind may terminate a statement,
// for automatic semicolon insertion.
func canEndStatement(k Kind) bool {
	switch k {
	case IDENT, INT, STRING, RPAREN, RBRACK, RBRACE,
		KWTRUE, KWFALSE, KWRETURN, KWBREAK, KWCONTINUE:
		return true
	}
	return false
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if lx.pendingSemi {
		lx.pendingSemi = false
		lx.haveLast = false
		return Token{Kind: SEMI, Pos: Pos{lx.line, lx.col}}, nil
	}

	// Skip whitespace and comments, watching for newlines that trigger
	// semicolon insertion.
	for {
		b, ok := lx.peekByte()
		if !ok {
			break
		}
		switch {
		case b == '\n':
			if lx.haveLast && canEndStatement(lx.lastKind) {
				pos := Pos{lx.line, lx.col}
				lx.advance()
				lx.haveLast = false
				return Token{Kind: SEMI, Pos: pos}, nil
			}
			lx.advance()
			continue
		case b == ' ' || b == '\t' || b == '\r':
			lx.advance()
			continue
		case b == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
			continue
		case b == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '*':
			pos := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.src[lx.off] == '*' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return Token{}, errf(pos, "unterminated block comment")
			}
			continue
		}
		break
	}

	pos := Pos{lx.line, lx.col}
	b, ok := lx.peekByte()
	if !ok {
		if lx.haveLast && canEndStatement(lx.lastKind) {
			lx.haveLast = false
			return Token{Kind: SEMI, Pos: pos}, nil
		}
		return Token{Kind: EOF, Pos: pos}, nil
	}

	emit := func(t Token) (Token, error) {
		lx.lastKind = t.Kind
		lx.haveLast = true
		return t, nil
	}

	switch {
	case isIdentStart(b):
		start := lx.off
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, isKw := keywords[text]; isKw {
			return emit(Token{Kind: kw, Pos: pos, Text: text})
		}
		return emit(Token{Kind: IDENT, Pos: pos, Text: text})

	case b >= '0' && b <= '9':
		start := lx.off
		for {
			c, ok := lx.peekByte()
			if !ok || !(c >= '0' && c <= '9' || c == 'x' || c == 'X' ||
				c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, errf(pos, "bad integer literal %q", text)
		}
		return emit(Token{Kind: INT, Pos: pos, Text: text, Int: v})

	case b == '"':
		lx.advance()
		var sb strings.Builder
		for {
			c, ok := lx.peekByte()
			if !ok || c == '\n' {
				return Token{}, errf(pos, "unterminated string literal")
			}
			lx.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				e, ok := lx.peekByte()
				if !ok {
					return Token{}, errf(pos, "unterminated escape")
				}
				lx.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					return Token{}, errf(pos, "unknown escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return emit(Token{Kind: STRING, Pos: pos, Text: sb.String()})
	}

	lx.advance()
	two := func(next byte, k2, k1 Kind) (Token, error) {
		if c, ok := lx.peekByte(); ok && c == next {
			lx.advance()
			return emit(Token{Kind: k2, Pos: pos})
		}
		return emit(Token{Kind: k1, Pos: pos})
	}

	switch b {
	case '(':
		return emit(Token{Kind: LPAREN, Pos: pos})
	case ')':
		return emit(Token{Kind: RPAREN, Pos: pos})
	case '{':
		return emit(Token{Kind: LBRACE, Pos: pos})
	case '}':
		return emit(Token{Kind: RBRACE, Pos: pos})
	case '[':
		return emit(Token{Kind: LBRACK, Pos: pos})
	case ']':
		return emit(Token{Kind: RBRACK, Pos: pos})
	case ',':
		return emit(Token{Kind: COMMA, Pos: pos})
	case ';':
		return emit(Token{Kind: SEMI, Pos: pos})
	case '+':
		return two('=', PLUSEQ, PLUS)
	case '-':
		return two('=', MINUSEQ, MINUS)
	case '*':
		return emit(Token{Kind: STAR, Pos: pos})
	case '/':
		return emit(Token{Kind: SLASH, Pos: pos})
	case '%':
		return emit(Token{Kind: PERCENT, Pos: pos})
	case '~':
		return emit(Token{Kind: TILDE, Pos: pos})
	case '^':
		return emit(Token{Kind: CARET, Pos: pos})
	case '&':
		return two('&', LAND, AMP)
	case '|':
		return two('|', LOR, PIPE)
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, NOT)
	case '<':
		if c, ok := lx.peekByte(); ok {
			if c == '=' {
				lx.advance()
				return emit(Token{Kind: LE, Pos: pos})
			}
			if c == '<' {
				lx.advance()
				return emit(Token{Kind: SHL, Pos: pos})
			}
		}
		return emit(Token{Kind: LT, Pos: pos})
	case '>':
		if c, ok := lx.peekByte(); ok {
			if c == '=' {
				lx.advance()
				return emit(Token{Kind: GE, Pos: pos})
			}
			if c == '>' {
				lx.advance()
				return emit(Token{Kind: SHR, Pos: pos})
			}
		}
		return emit(Token{Kind: GT, Pos: pos})
	}
	return Token{}, errf(pos, "unexpected character %q", string(b))
}

func isIdentStart(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || b >= '0' && b <= '9'
}
