package lang

import "fmt"

// Parser builds a PIL AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a PIL source file.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) skipSemis() {
	for p.cur().Kind == SEMI {
		p.next()
	}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for {
		p.skipSemis()
		t := p.cur()
		switch t.Kind {
		case EOF:
			return prog, nil
		case KWVAR:
			d, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		case KWMUTEX:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			prog.Mutexes = append(prog.Mutexes, &SyncDecl{Pos: t.Pos, Name: name.Text})
		case KWCOND:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			prog.Conds = append(prog.Conds, &SyncDecl{Pos: t.Pos, Name: name.Text})
		case KWBARRIER:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			cnt, err := p.expect(INT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			prog.Barriers = append(prog.Barriers, &BarrierDecl{Pos: t.Pos, Name: name.Text, Count: cnt.Int})
		case KWFN:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(t.Pos, "expected declaration, found %s", t)
		}
	}
}

func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	t, _ := p.expect(KWVAR)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &GlobalDecl{Pos: t.Pos, Name: name.Text}
	if p.accept(LBRACK) {
		sz, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		if sz.Int <= 0 {
			return nil, errf(sz.Pos, "array size must be positive")
		}
		d.Size = sz.Int
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		return d, nil
	}
	if p.accept(ASSIGN) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	t, _ := p.expect(KWFN)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: t.Pos, Name: name.Text}
	if p.cur().Kind != RPAREN {
		for {
			prm, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, prm.Text)
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for {
		p.skipSemis()
		if p.cur().Kind == RBRACE {
			p.next()
			return b, nil
		}
		if p.cur().Kind == EOF {
			return nil, errf(lb.Pos, "unclosed block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case KWLET:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LetStmt{Pos: t.Pos, Name: name.Text, Init: init}, nil

	case KWIF:
		return p.parseIf()

	case KWWHILE:
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil

	case KWFOR:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		from, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// ".." spelled as two dots is not a token; reuse ". ." via COMMA?
		// PIL spells the range with the keyword-free form `for i = a .. b`,
		// lexed as two DOTs — we do not have DOT, so the range separator is
		// the token pair ".."; accept COMMA as the separator instead.
		if _, err := p.expect(COMMA); err != nil {
			return nil, errf(p.cur().Pos, "expected ',' in for range (for i = lo, hi)")
		}
		to, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: t.Pos, Var: name.Text, From: from, To: to, Body: body}, nil

	case KWRETURN:
		p.next()
		if p.cur().Kind == SEMI || p.cur().Kind == RBRACE {
			return &ReturnStmt{Pos: t.Pos}, nil
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.Pos, Value: v}, nil

	case KWBREAK:
		p.next()
		return &BreakStmt{Pos: t.Pos}, nil

	case KWCONTINUE:
		p.next()
		return &ContinueStmt{Pos: t.Pos}, nil

	case LBRACE:
		return p.parseBlock()

	case IDENT:
		// assignment or expression statement
		if p.peek().Kind == ASSIGN || p.peek().Kind == PLUSEQ || p.peek().Kind == MINUSEQ {
			name := p.next()
			op := assignOpOf(p.next().Kind)
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: t.Pos, Target: &VarRef{Pos: name.Pos, Name: name.Text}, Op: op, Value: val}, nil
		}
		if p.peek().Kind == LBRACK {
			// could be `a[i] = e` or expression `a[i]` — parse the index
			// then decide.
			name := p.next()
			p.next() // [
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			target := &IndexExpr{Pos: name.Pos, Name: name.Text, Index: idx}
			switch p.cur().Kind {
			case ASSIGN, PLUSEQ, MINUSEQ:
				op := assignOpOf(p.next().Kind)
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Pos: t.Pos, Target: target, Op: op, Value: val}, nil
			}
			// bare element read as statement: allow, though useless
			return &ExprStmt{Pos: t.Pos, X: target}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: t.Pos, X: x}, nil

	case KWSPAWN:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: t.Pos, X: x}, nil
	}
	return nil, errf(t.Pos, "expected statement, found %s", t)
}

func assignOpOf(k Kind) AssignOp {
	switch k {
	case PLUSEQ:
		return AssignAdd
	case MINUSEQ:
		return AssignSub
	}
	return AssignSet
}

func (p *Parser) parseIf() (Stmt, error) {
	t, _ := p.expect(KWIF)
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept(KWELSE) {
		if p.cur().Kind == KWIF {
			el, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = el
		} else {
			el, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = el
		}
	}
	return s, nil
}

// Expression parsing: precedence climbing.

type precLevel struct {
	kinds []Kind
}

var precedence = []precLevel{
	{[]Kind{LOR}},
	{[]Kind{LAND}},
	{[]Kind{PIPE}},
	{[]Kind{CARET}},
	{[]Kind{AMP}},
	{[]Kind{EQ, NE}},
	{[]Kind{LT, LE, GT, GE}},
	{[]Kind{SHL, SHR}},
	{[]Kind{PLUS, MINUS}},
	{[]Kind{STAR, SLASH, PERCENT}},
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(0) }

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level == len(precedence) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		matched := false
		for _, want := range precedence[level].kinds {
			if k == want {
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case MINUS, NOT, TILDE:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		return &IntLit{Pos: t.Pos, Val: t.Int}, nil
	case KWTRUE:
		p.next()
		return &IntLit{Pos: t.Pos, Val: 1}, nil
	case KWFALSE:
		p.next()
		return &IntLit{Pos: t.Pos, Val: 0}, nil
	case STRING:
		p.next()
		return &StrLit{Pos: t.Pos, Val: t.Text}, nil
	case LPAREN:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	case KWSPAWN:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &SpawnExpr{Pos: t.Pos, Name: name.Text, Args: args}, nil
	case IDENT:
		p.next()
		switch p.cur().Kind {
		case LPAREN:
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Pos: t.Pos, Name: t.Text, Args: args}, nil
		case LBRACK:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.Pos, Name: t.Text, Index: idx}, nil
		}
		return &VarRef{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", t)
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []Expr
	if p.cur().Kind != RPAREN {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return args, nil
}

// MustParse parses src and panics on error; for tests and embedded
// workloads whose sources are compile-time constants.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse: %v", err))
	}
	return prog
}
