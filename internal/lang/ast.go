package lang

// Program is a parsed PIL compilation unit.
type Program struct {
	Globals  []*GlobalDecl
	Mutexes  []*SyncDecl
	Conds    []*SyncDecl
	Barriers []*BarrierDecl
	Funcs    []*FuncDecl
}

// GlobalDecl declares a shared global: a scalar (`var x = 3`) or a
// fixed-size array (`var buf[32]`). Globals are the shared memory on which
// data races occur.
type GlobalDecl struct {
	Pos  Pos
	Name string
	Size int64 // 0 for scalar, >0 for array length
	Init Expr  // optional initializer (scalar only); nil means 0
}

// SyncDecl declares a mutex (`mutex m`) or condition variable (`cond c`).
type SyncDecl struct {
	Pos  Pos
	Name string
}

// BarrierDecl declares a barrier with a fixed participant count
// (`barrier b(4)`).
type BarrierDecl struct {
	Pos   Pos
	Name  string
	Count int64
}

// FuncDecl declares a function. Parameters and return values are 64-bit
// integers; a function that falls off its end returns 0.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []string
	Body   *Block
}

// Stmt is a statement node.
type Stmt interface{ StmtPos() Pos }

// Expr is an expression node.
type Expr interface{ ExprPos() Pos }

// Block is a `{ ... }` statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// LetStmt declares a thread-local variable: `let x = e`.
type LetStmt struct {
	Pos  Pos
	Name string
	Init Expr
}

// AssignOp distinguishes `=`, `+=` and `-=`.
type AssignOp uint8

// Assignment operators.
const (
	AssignSet AssignOp = iota
	AssignAdd
	AssignSub
)

// AssignStmt assigns to a local, a global, an array element or a heap cell.
type AssignStmt struct {
	Pos    Pos
	Target Expr // *VarRef or *IndexExpr
	Op     AssignOp
	Value  Expr
}

// IfStmt is `if cond { } [else ...]`; Else is nil, *Block, or *IfStmt.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else Stmt
}

// WhileStmt is `while cond { }`.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// ForStmt is the counted loop `for i = lo .. hi { }`, iterating while
// i < hi with step 1. The loop variable is a fresh local.
type ForStmt struct {
	Pos      Pos
	Var      string
	From, To Expr
	Body     *Block
}

// ReturnStmt returns from the current function; Value may be nil.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects (calls, builtins).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (s *Block) StmtPos() Pos        { return s.Pos }
func (s *LetStmt) StmtPos() Pos      { return s.Pos }
func (s *AssignStmt) StmtPos() Pos   { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() Pos    { return s.Pos }
func (s *ForStmt) StmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }
func (s *BreakStmt) StmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos     { return s.Pos }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// StrLit is a string literal; valid only as a print argument.
type StrLit struct {
	Pos Pos
	Val string
}

// VarRef names a local, parameter or global scalar.
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr is `name[index]`: a global array element or, when name is a
// local holding an alloc() reference, a heap cell.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr calls a user function or builtin.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// SpawnExpr starts a new thread running the named function and evaluates
// to its thread id: `let t = spawn worker(1)`.
type SpawnExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr applies a prefix operator (-, !, ~).
type UnaryExpr struct {
	Pos Pos
	Op  Kind
	X   Expr
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

func (e *IntLit) ExprPos() Pos     { return e.Pos }
func (e *StrLit) ExprPos() Pos     { return e.Pos }
func (e *VarRef) ExprPos() Pos     { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }
func (e *SpawnExpr) ExprPos() Pos  { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
