package lang

import (
	"strings"
	"testing"
)

func lexKinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	kinds := make([]Kind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	return kinds
}

func TestLexBasics(t *testing.T) {
	kinds := lexKinds(t, "let x = 40 + 2")
	want := []Kind{KWLET, IDENT, ASSIGN, INT, PLUS, INT, SEMI, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %v want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	kinds := lexKinds(t, "== != <= >= << >> && || += -= = < > ! & | ^ ~ %")
	want := []Kind{EQ, NE, LE, GE, SHL, SHR, LAND, LOR, PLUSEQ, MINUSEQ,
		ASSIGN, LT, GT, NOT, AMP, PIPE, CARET, TILDE, PERCENT, EOF}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, kinds[i], want[i])
		}
	}
}

func TestSemicolonInsertion(t *testing.T) {
	// Newline after an identifier inserts SEMI; after '{' it must not.
	kinds := lexKinds(t, "fn main() {\n let a = 1\n a = 2\n}")
	text := ""
	for _, k := range kinds {
		if k == SEMI {
			text += ";"
		} else {
			text += "."
		}
	}
	// fn main ( ) {  let a = 1 ;  a = 2 ; } ; EOF
	if strings.Count(text, ";") != 3 {
		t.Fatalf("want 3 inserted semis, got %q", text)
	}
}

func TestLexComments(t *testing.T) {
	kinds := lexKinds(t, `
// line comment
let x = 1 /* block
   spanning */ + 2
`)
	want := []Kind{KWLET, IDENT, ASSIGN, INT, PLUS, INT, SEMI, EOF}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`print("a\nb\t\"q\"")`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Text != "a\nb\t\"q\"" {
		t.Fatalf("got %q", toks[2].Text)
	}
}

func TestLexHex(t *testing.T) {
	toks, err := Lex("let x = 0x1F")
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Kind != INT || toks[3].Int != 31 {
		t.Fatalf("got %v %d", toks[3].Kind, toks[3].Int)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`let s = "unterminated`,
		"/* unterminated block",
		"let x = @",
		`"bad \q escape"`,
	} {
		if _, err := Lex(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestParseDeclarations(t *testing.T) {
	p, err := Parse(`
var x = 3
var buf[16]
mutex m
cond c
barrier b(4)
fn helper(a, bb) { return a + bb }
fn main() { print(helper(1, 2)) }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Globals) != 2 || p.Globals[0].Name != "x" || p.Globals[1].Size != 16 {
		t.Fatalf("globals: %+v", p.Globals)
	}
	if len(p.Mutexes) != 1 || len(p.Conds) != 1 || len(p.Barriers) != 1 {
		t.Fatal("sync decls wrong")
	}
	if p.Barriers[0].Count != 4 {
		t.Fatal("barrier count wrong")
	}
	if len(p.Funcs) != 2 || len(p.Funcs[0].Params) != 2 {
		t.Fatalf("funcs: %+v", p.Funcs)
	}
}

func TestParsePrecedence(t *testing.T) {
	p, err := Parse(`fn main() { let x = 1 + 2 * 3 == 7 && 1 < 2 }`)
	if err != nil {
		t.Fatal(err)
	}
	let := p.Funcs[0].Body.Stmts[0].(*LetStmt)
	top, ok := let.Init.(*BinaryExpr)
	if !ok || top.Op != LAND {
		t.Fatalf("top should be &&, got %#v", let.Init)
	}
	l, ok := top.L.(*BinaryExpr)
	if !ok || l.Op != EQ {
		t.Fatalf("left of && should be ==, got %#v", top.L)
	}
	sum, ok := l.L.(*BinaryExpr)
	if !ok || sum.Op != PLUS {
		t.Fatalf("left of == should be +, got %#v", l.L)
	}
	if mul, ok := sum.R.(*BinaryExpr); !ok || mul.Op != STAR {
		t.Fatalf("right of + should be *, got %#v", sum.R)
	}
}

func TestParseControlFlow(t *testing.T) {
	p, err := Parse(`
fn main() {
	if 1 { yield() } else if 2 { yield() } else { yield() }
	while 1 { break; continue }
	for i = 0, 10 { print(i) }
}`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := p.Funcs[0].Body.Stmts
	ifs, ok := stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("want if, got %#v", stmts[0])
	}
	if _, ok := ifs.Else.(*IfStmt); !ok {
		t.Fatal("else-if chain not parsed")
	}
	if _, ok := stmts[1].(*WhileStmt); !ok {
		t.Fatal("while not parsed")
	}
	f, ok := stmts[2].(*ForStmt)
	if !ok || f.Var != "i" {
		t.Fatal("for not parsed")
	}
}

func TestParseSpawnAndAssignments(t *testing.T) {
	p, err := Parse(`
var g = 0
var a[4]
fn w(x) {}
fn main() {
	let t = spawn w(3)
	g += 1
	a[2] -= 5
	join(t)
}`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := p.Funcs[1].Body.Stmts
	let := stmts[0].(*LetStmt)
	if _, ok := let.Init.(*SpawnExpr); !ok {
		t.Fatal("spawn expression not parsed")
	}
	as1 := stmts[1].(*AssignStmt)
	if as1.Op != AssignAdd {
		t.Fatal("+= not parsed")
	}
	as2 := stmts[2].(*AssignStmt)
	if as2.Op != AssignSub {
		t.Fatal("-= not parsed")
	}
	if _, ok := as2.Target.(*IndexExpr); !ok {
		t.Fatal("indexed target not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"fn main( {}",                 // bad params
		"fn main() { let = 3 }",       // missing name
		"fn main() { if { } }",        // missing condition
		"var",                         // missing name
		"barrier b()",                 // missing count
		"fn main() { a[1 }",           // unclosed index
		"fn main() { ",                // unclosed block
		"fn main() { break } }",       // stray brace
		"let x = 1",                   // top-level statement
		"fn main() { x = }",           // missing rhs
		`fn main() { for i = 0 { } }`, // missing range
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
}

func TestParseUnaryChain(t *testing.T) {
	p, err := Parse(`fn main() { let x = - - 3 ; let y = !~0 }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs[0].Body.Stmts) != 2 {
		t.Fatal("statements missing")
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("fn main() {\n\tbogus £\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	if le.Pos.Line != 2 {
		t.Fatalf("error line = %d, want 2", le.Pos.Line)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not a program ~~~")
}

func TestTokenStrings(t *testing.T) {
	if KWWHILE.String() != "while" || IDENT.String() != "identifier" {
		t.Fatal("kind names wrong")
	}
	tok := Token{Kind: STRING, Text: "hi"}
	if tok.String() != `"hi"` {
		t.Fatalf("got %s", tok.String())
	}
	if (Pos{3, 7}).String() != "3:7" {
		t.Fatal("pos string wrong")
	}
}
