package dstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

type payload struct {
	Name string
	Vals []int64
}

func open(t *testing.T) *Dir {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := open(t)
	in := payload{Name: "tier", Vals: []int64{1, 2, 3}}
	if err := d.Write("abc123", &in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := d.Load("abc123", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[2] != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestLoadMissing(t *testing.T) {
	d := open(t)
	var out payload
	if err := d.Load("nothere", &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRejectsBadKeys(t *testing.T) {
	d := open(t)
	for _, key := range []string{"", "a/b", `a\b`, "..", "a.tier"} {
		if err := d.Write(key, &payload{}); err == nil {
			t.Errorf("Write(%q) accepted, want error", key)
		}
		if err := d.Load(key, &payload{}); err == nil {
			t.Errorf("Load(%q) accepted, want error", key)
		}
	}
}

// corrupt flips one payload byte; the CRC must catch it.
func TestCorruptFileQuarantined(t *testing.T) {
	d := open(t)
	if err := d.Write("k1", &payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(d.Path(), "k1.tier")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-8] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var out payload
	if err := d.Load("k1", &out); !errors.Is(err, ErrBadFile) {
		t.Fatalf("corrupt load err = %v, want ErrBadFile", err)
	}
	if err := d.Quarantine("k1"); err != nil {
		t.Fatal(err)
	}
	// The key no longer resolves, but the evidence file remains.
	if err := d.Load("k1", &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-quarantine load err = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	d := open(t)
	path := filepath.Join(d.Path(), "k2.tier")
	if err := os.WriteFile(path, []byte("portend-tier/0\njunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := d.Load("k2", &out); !errors.Is(err, ErrBadFile) {
		t.Fatalf("skewed load err = %v, want ErrBadFile", err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	d := open(t)
	if err := d.Write("k3", &payload{Name: "x", Vals: []int64{9, 9, 9}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(d.Path(), "k3.tier")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := d.Load("k3", &out); !errors.Is(err, ErrBadFile) {
		t.Fatalf("truncated load err = %v, want ErrBadFile", err)
	}
}

// An injected write failure must leave the previous live file intact.
func TestInjectedWriteFailureKeepsOldFile(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	d := open(t)
	if err := d.Write("k4", &payload{Name: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Set(fault.DStoreWrite + ":1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("k4", &payload{Name: "v2"}); err == nil {
		t.Fatal("injected write succeeded, want error")
	}
	var out payload
	if err := d.Load("k4", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "v1" {
		t.Fatalf("old file clobbered: got %q, want v1", out.Name)
	}
}

// An injected torn write reaches the live name but fails verification,
// and quarantining it restores a cold (not wrong) state.
func TestInjectedTruncateCaughtByCRC(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	d := open(t)
	if err := fault.Set(fault.DStoreTruncate + ":1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("k5", &payload{Name: "torn", Vals: []int64{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if fault.Fired(fault.DStoreTruncate) != 1 {
		t.Fatal("truncate fault did not fire")
	}
	var out payload
	if err := d.Load("k5", &out); !errors.Is(err, ErrBadFile) {
		t.Fatalf("torn load err = %v, want ErrBadFile", err)
	}
	if err := d.Quarantine("k5"); err != nil {
		t.Fatal(err)
	}
	if err := d.Load("k5", &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-quarantine err = %v, want ErrNotFound", err)
	}
}

func TestInjectedLoadFailure(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	d := open(t)
	if err := d.Write("k6", &payload{Name: "fine"}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Set(fault.TierLoadFail + ":1"); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := d.Load("k6", &out); err == nil {
		t.Fatal("injected load succeeded, want error")
	}
	// The injected failure is transient, not corruption: the next load works.
	if err := d.Load("k6", &out); err != nil || out.Name != "fine" {
		t.Fatalf("post-fault load = %+v, %v", out, err)
	}
}

func TestScanSkipsTempAndQuarantine(t *testing.T) {
	d := open(t)
	for _, k := range []string{"b1", "a1"} {
		if err := d.Write(k, &payload{Name: k}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(d.Path(), "c1.tier.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("q1", &payload{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Quarantine("q1"); err != nil {
		t.Fatal(err)
	}
	keys, err := d.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a1" || keys[1] != "b1" {
		t.Fatalf("Scan = %v, want [a1 b1]", keys)
	}
}

func TestRemove(t *testing.T) {
	d := open(t)
	if err := d.Write("k7", &payload{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("k7"); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := d.Load("k7", &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-remove err = %v, want ErrNotFound", err)
	}
	if err := d.Remove("k7"); err != nil {
		t.Fatalf("double remove: %v", err)
	}
}
