// Package dstore implements portendd's durable tier store: one file per
// cache tier, in a versioned, checksummed container format, written
// crash-safely.
//
// File format (schema portend-tier/1):
//
//	magic    "portend-tier/1\n"
//	length   8 bytes, big-endian — payload byte count
//	payload  gob-encoded snapshot (the caller's type; dstore is agnostic)
//	crc      4 bytes, big-endian — IEEE CRC-32 of the payload
//
// Writes go to a temp file in the same directory followed by an atomic
// rename, so a crash mid-write leaves either the old file or a stray
// .tmp (ignored by Scan and Load) — never a half-written tier under the
// live name. Load verifies magic, length, and CRC before decoding;
// anything that fails verification is reported as ErrBadFile so the
// caller can quarantine it (Quarantine renames the file aside, keeping
// the evidence while getting it out of the load path). A quarantined or
// missing tier only costs warmth: the daemon re-analyzes cold.
//
// Fault-injection points (internal/fault): dstore.write fails a write
// before any bytes land, dstore.truncate renames a deliberately
// truncated file into place (a simulated torn write the CRC must catch),
// and tier.load.fail fails a Load.
package dstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
)

// Schema is the container format identifier; it doubles as the file
// magic (newline-terminated). Bump it when the snapshot wire form
// changes incompatibly — old files then fail the magic check and are
// quarantined, never misdecoded.
const Schema = "portend-tier/1"

const (
	suffix           = ".tier"
	tmpSuffix        = ".tmp"
	quarantineSuffix = ".quarantine"
)

// ErrNotFound reports that no tier file exists for the key.
var ErrNotFound = errors.New("dstore: no tier file")

// ErrBadFile reports a tier file that failed verification — wrong magic
// (version skew), truncation, checksum mismatch, or undecodable payload.
// Callers should Quarantine the key and proceed cold.
var ErrBadFile = errors.New("dstore: bad tier file")

// Dir is a durable tier directory.
type Dir struct {
	path string
}

// Open returns a Dir rooted at path, creating the directory if needed.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("dstore: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the directory root.
func (d *Dir) Path() string { return d.path }

// checkKey rejects keys that could escape the directory. Keys are the
// server's hex fingerprint hashes; anything else is a programming error.
func checkKey(key string) error {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return fmt.Errorf("dstore: invalid tier key %q", key)
	}
	return nil
}

func (d *Dir) file(key string) string { return filepath.Join(d.path, key+suffix) }

// Write serializes payload under key, crash-safely: encode, frame,
// write to a temp file, fsync, rename. On any error the live file (if
// one exists) is untouched.
func (d *Dir) Write(key string, payload any) error {
	if err := checkKey(key); err != nil {
		return err
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return fmt.Errorf("dstore: encode %s: %w", key, err)
	}
	if fault.Fire(fault.DStoreWrite) {
		return fmt.Errorf("dstore: %s: injected write failure", key)
	}

	buf := make([]byte, 0, len(Schema)+1+12+body.Len())
	buf = append(buf, Schema...)
	buf = append(buf, '\n')
	buf = binary.BigEndian.AppendUint64(buf, uint64(body.Len()))
	buf = append(buf, body.Bytes()...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body.Bytes()))

	if fault.Fire(fault.DStoreTruncate) {
		// Simulate a torn write that still reached the live name: the
		// CRC (or the length check) must catch it on the next load.
		buf = buf[:len(Schema)+1+12+body.Len()/2]
	}

	tmp := d.file(key) + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dstore: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dstore: write %s: %w", key, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dstore: sync %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmp, d.file(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dstore: rename %s: %w", key, err)
	}
	return nil
}

// Load verifies and decodes the tier file for key into out (a pointer to
// the payload type Write was given). ErrNotFound means no file;
// ErrBadFile (wrapped with detail) means the file failed verification
// and should be quarantined.
func (d *Dir) Load(key string, out any) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if fault.Fire(fault.TierLoadFail) {
		return fmt.Errorf("dstore: %s: injected load failure", key)
	}
	raw, err := os.ReadFile(d.file(key))
	if err != nil {
		if os.IsNotExist(err) {
			return ErrNotFound
		}
		return fmt.Errorf("dstore: read %s: %w", key, err)
	}

	magic := []byte(Schema + "\n")
	if !bytes.HasPrefix(raw, magic) {
		return fmt.Errorf("%w: %s: missing or foreign schema magic (want %q)", ErrBadFile, key, Schema)
	}
	rest := raw[len(magic):]
	if len(rest) < 12 {
		return fmt.Errorf("%w: %s: truncated header", ErrBadFile, key)
	}
	n := binary.BigEndian.Uint64(rest[:8])
	rest = rest[8:]
	if uint64(len(rest)) < n+4 {
		return fmt.Errorf("%w: %s: truncated payload (%d of %d bytes)", ErrBadFile, key, len(rest), n+4)
	}
	body := rest[:n]
	want := binary.BigEndian.Uint32(rest[n : n+4])
	if got := crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("%w: %s: checksum mismatch (%08x != %08x)", ErrBadFile, key, got, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: undecodable payload: %v", ErrBadFile, key, err)
	}
	return nil
}

// Quarantine moves the tier file for key aside (key.tier.quarantine,
// replacing any earlier quarantine), so a corrupt file stops shadowing
// the key but remains on disk for inspection. Missing files are a no-op.
func (d *Dir) Quarantine(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	err := os.Rename(d.file(key), d.file(key)+quarantineSuffix)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dstore: quarantine %s: %w", key, err)
	}
	return nil
}

// Remove deletes the tier file for key (used when a tier is poisoned by
// a panicking run). Missing files are a no-op.
func (d *Dir) Remove(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if err := os.Remove(d.file(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dstore: remove %s: %w", key, err)
	}
	return nil
}

// Scan returns the keys of all live tier files, sorted (os.ReadDir
// orders by name). Temp and quarantined files are excluded.
func (d *Dir) Scan() ([]string, error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("dstore: scan: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, suffix))
	}
	return keys, nil
}
