// Package server implements portendd, the long-lived multi-tenant
// analysis service: an HTTP/JSON front end over the public portend
// facade that streams verdicts as NDJSON, keeps per-submission
// persistent cache tiers so repeat analyses start warm, and applies
// admission control (fair round-robin across tenants, bounded queues,
// load shedding that degrades to coarser verdicts before it drops
// work). See docs/service.md for the wire protocol.
package server

import (
	"encoding/json"
	"fmt"

	"repro/portend"
)

// Request is the body of POST /v1/analyze: what to analyze and how.
// Exactly one of Workload or Source must be set. Args and Inputs are
// overrides — absent (null) keeps the workload's canonical coordinates,
// while an explicitly empty array overrides with no values.
type Request struct {
	// Workload names a built-in evaluation workload.
	Workload string `json:"workload,omitempty"`
	// Source is PIL source text; Name is its display name (defaults to
	// "request").
	Source string `json:"source,omitempty"`
	Name   string `json:"name,omitempty"`

	Args   []int64 `json:"args,omitempty"`
	Inputs []int64 `json:"inputs,omitempty"`

	// Options tunes the analysis; nil or zero fields keep the paper's
	// evaluation defaults.
	Options *RequestOptions `json:"options,omitempty"`

	// Verbose asks the server to attach the full debugging-aid report
	// to every verdict event.
	Verbose bool `json:"verbose,omitempty"`
}

// RequestOptions is the tunable subset of the engine configuration the
// service exposes. Zero values mean "default"; Seed is a pointer so
// seed 0 can be pinned explicitly.
type RequestOptions struct {
	Mp             int     `json:"mp,omitempty"`
	Ma             int     `json:"ma,omitempty"`
	SymbolicInputs int     `json:"sym,omitempty"`
	Parallel       int     `json:"parallel,omitempty"`
	MaxForks       int     `json:"maxForks,omitempty"`
	RunBudget      int64   `json:"runBudget,omitempty"`
	EnforceBudget  int64   `json:"enforceBudget,omitempty"`
	Seed           *uint64 `json:"seed,omitempty"`

	// NoStaticPrune disables every static-analysis consumer for this
	// request: the admission lint rejection (422), the statically-clean
	// fast path, and the engine's verdict-preserving schedule prune. The
	// verdict stream is byte-identical either way; the flag exists for
	// ablation and for forcing a full dynamic run.
	NoStaticPrune bool `json:"noStaticPrune,omitempty"`
}

// Validate rejects requests that name no target or both targets.
func (r *Request) Validate() error {
	if r.Workload == "" && r.Source == "" {
		return fmt.Errorf("request must set workload or source")
	}
	if r.Workload != "" && r.Source != "" {
		return fmt.Errorf("request must set workload or source, not both")
	}
	return nil
}

// Target builds the portend target the request names.
func (r *Request) Target() portend.Target {
	var t portend.Target
	if r.Workload != "" {
		t = portend.Workload(r.Workload)
	} else {
		name := r.Name
		if name == "" {
			name = "request"
		}
		t = portend.Source(name, r.Source)
	}
	if r.Args != nil {
		t = t.WithArgs(r.Args...)
	}
	if r.Inputs != nil {
		t = t.WithInputs(r.Inputs...)
	}
	return t
}

// Event types on the NDJSON response stream, in the order they can
// appear: zero or one "degraded", then any mix of "verdict" and
// "raceError" in deterministic detection order, then exactly one
// terminal "error" or "done".
const (
	EventVerdict   = "verdict"
	EventRaceError = "raceError"
	EventDegraded  = "degraded"
	EventError     = "error"
	EventDone      = "done"
)

// Event is one NDJSON line of the response stream.
type Event struct {
	Type string `json:"type"`

	// Verdict carries the portend.Verdict JSON exactly as the server
	// marshalled it — clients that re-emit these bytes reproduce the
	// local `portend -stream -json` output byte for byte. Summary is the
	// verdict's one-line rendering; Report the full debugging aid (only
	// when the request asked for Verbose).
	Verdict json.RawMessage `json:"verdict,omitempty"`
	Summary string          `json:"summary,omitempty"`
	Report  string          `json:"report,omitempty"`

	// Race and Message describe a raceError or terminal error.
	Race    string `json:"race,omitempty"`
	Message string `json:"message,omitempty"`

	// Panic marks a terminal error event minted by the recover boundary
	// around a panicking run; Stack carries the captured goroutine stack.
	// The panic poisons (evicts) the run's cache tier but the daemon and
	// every other request keep serving.
	Panic bool   `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`

	// Degraded describes the coarser budget a soft-shed run got.
	Degraded *DegradedInfo `json:"degraded,omitempty"`

	// Done summarizes the finished run.
	Done *DoneInfo `json:"done,omitempty"`
}

// DecodeVerdict unmarshals a verdict event's payload. The returned
// verdict is the wire shape only: String and DebugReport need the
// engine-side state and render via Summary/Report on the event instead.
func (e *Event) DecodeVerdict() (portend.Verdict, error) {
	var v portend.Verdict
	err := json.Unmarshal(e.Verdict, &v)
	return v, err
}

// DegradedInfo reports the reduced exploration budget applied to a run
// admitted past the soft queue threshold.
type DegradedInfo struct {
	Mp int `json:"mp"`
	Ma int `json:"ma"`
}

// DoneInfo is the summary on the terminal "done" event.
type DoneInfo struct {
	Target     string `json:"target"`
	Races      int    `json:"races"`
	Verdicts   int    `json:"verdicts"`
	Errors     int    `json:"errors"`
	DurationNs int64  `json:"durationNs"`

	// WarmStart reports that this run's cache tier already held entries
	// deposited by an earlier identical submission. Tier snapshots the
	// tier after the run; the Hit deltas attribute cross- and intra-run
	// reuse observed while this run executed.
	WarmStart bool     `json:"warmStart"`
	Degraded  bool     `json:"degraded,omitempty"`
	Tier      TierInfo `json:"tier"`

	// StaticClean marks a fast-path answer: the static pre-analysis
	// proved the program race-free (no candidate pair survives its
	// lockset/may-happen-in-parallel tests), so no dynamic run can detect
	// a race and the server answered without taking an analysis slot.
	StaticClean bool `json:"staticClean,omitempty"`

	// PrunedSchedules sums the exploration worklist items the static
	// prune skipped across this run's verdicts.
	PrunedSchedules int `json:"prunedSchedules,omitempty"`

	// CloneAllocs and CloneBytes sum the copy-on-write snapshot meter
	// across this run's verdicts: allocations and bytes State.Clone
	// itself spent (checkpoint deposits, enforcement forks, exploration
	// siblings). Throughput accounting; never affects a verdict.
	CloneAllocs int64 `json:"cloneAllocs,omitempty"`
	CloneBytes  int64 `json:"cloneBytes,omitempty"`
}

// TierInfo is the wire form of a cache tier's population and traffic.
type TierInfo struct {
	Runs            int64 `json:"runs"`
	Checkpoints     int   `json:"checkpoints"`
	CheckpointHits  int   `json:"checkpointHits"`
	SymCheckpoints  int   `json:"symCheckpoints"`
	SymHits         int   `json:"symHits"`
	SiblingMemoHits int   `json:"siblingMemoHits"`
	SolverEntries   int   `json:"solverEntries"`
	SolverHits      int   `json:"solverHits"`
	SolverCap       int   `json:"solverCap"`
	SolverResizes   int   `json:"solverResizes"`
}

// LintIssue is one static diagnostic attached to a 422 rejection.
type LintIssue struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Fn       string `json:"fn"`
	Line     int    `json:"line"`
	Msg      string `json:"msg"`
}

// ErrorBody is the JSON body of non-streaming error responses (400
// malformed request, 422 lint-rejected, 429 shed, 503 draining).
// Clients distinguish shedding by the Overloaded flag rather than
// parsing the message.
type ErrorBody struct {
	Error      string `json:"error"`
	Overloaded bool   `json:"overloaded,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
	QueueDepth int    `json:"queueDepth,omitempty"`

	// Draining marks a 503 from a daemon that is shutting down and no
	// longer admits work; a resuming client should retry elsewhere or
	// after the restart.
	Draining bool `json:"draining,omitempty"`

	// Lint carries the error-severity static findings behind a 422: sync
	// operations the static pass proves fault on every execution
	// (double-lock, unlock of an unheld mutex, wait without its mutex).
	// Running such a program would only reproduce the fault dynamically.
	Lint []LintIssue `json:"lint,omitempty"`
}
