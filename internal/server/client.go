package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a portendd instance. The zero value is not usable;
// set Base (e.g. "http://localhost:7811"). Tenant, when set, is sent as
// the X-Portend-Tenant header so the server queues the caller fairly
// against other tenants.
type Client struct {
	Base   string
	Tenant string
	HTTP   *http.Client
}

// OverloadedError reports a request shed with HTTP 429 at the server's
// hard queue bound.
type OverloadedError struct {
	Tenant     string
	QueueDepth int
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("portendd overloaded (tenant %q, queue depth %d)", e.Tenant, e.QueueDepth)
}

// RemoteError reports a terminal error event or a non-streaming error
// response from the server.
type RemoteError struct {
	Status  int
	Message string
}

func (e *RemoteError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("portendd: HTTP %d: %s", e.Status, e.Message)
	}
	return "portendd: " + e.Message
}

// Analyze submits a request and streams its events to fn in arrival
// order (degraded first if present, then verdicts/race errors in
// deterministic detection order). It returns the terminal done summary.
// fn returning an error abandons the stream — closing the response body
// cancels the server-side run and frees its slot. A nil fn just drains.
func (c *Client) Analyze(ctx context.Context, req Request, fn func(Event) error) (*DoneInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.Base, "/")+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		hreq.Header.Set(TenantHeader, c.Tenant)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			if eb.Overloaded {
				return nil, &OverloadedError{Tenant: eb.Tenant, QueueDepth: eb.QueueDepth}
			}
			return nil, &RemoteError{Status: resp.StatusCode, Message: eb.Error}
		}
		return nil, &RemoteError{Status: resp.StatusCode, Message: strings.TrimSpace(string(msg))}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("portendd: bad stream line: %w", err)
		}
		switch ev.Type {
		case EventDone:
			return ev.Done, nil
		case EventError:
			return nil, &RemoteError{Message: ev.Message}
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, &RemoteError{Message: "stream ended without a done event"}
}
