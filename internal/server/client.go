package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to a portendd instance. The zero value is not usable;
// set Base (e.g. "http://localhost:7811"). Tenant, when set, is sent as
// the X-Portend-Tenant header so the server queues the caller fairly
// against other tenants.
//
// With MaxRetries > 0 the client is resumable: connect failures, 429
// shed responses (honoring Retry-After), 503 draining responses, and
// mid-stream disconnects are retried with exponential backoff plus
// jitter. Re-submission is safe — the server's cache tier is warm, and
// the engine's determinism contract makes every attempt stream the same
// events in the same order — so the client dedupes by detection-order
// index: verdict and race-error events already handed to fn are skipped
// on the resumed stream, and the merged output is byte-identical to an
// uninterrupted run. Terminal error events (including panics) and 4xx
// rejections are never retried.
type Client struct {
	Base   string
	Tenant string
	HTTP   *http.Client

	// MaxRetries bounds re-submissions after a retriable failure
	// (0 = fail fast, preserving the non-resumable behavior).
	MaxRetries int
	// RetryBase is the first backoff delay (default 100ms); attempt n
	// waits RetryBase << n, plus up to 50% jitter, capped at 5s — unless
	// the server's Retry-After asks for longer.
	RetryBase time.Duration
}

// OverloadedError reports a request shed with HTTP 429 at the server's
// hard queue bound. RetryAfter is the server's suggested wait (zero if
// it sent none).
type OverloadedError struct {
	Tenant     string
	QueueDepth int
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("portendd overloaded (tenant %q, queue depth %d)", e.Tenant, e.QueueDepth)
}

// RemoteError reports a terminal error event or a non-streaming error
// response from the server.
type RemoteError struct {
	Status  int
	Message string
}

func (e *RemoteError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("portendd: HTTP %d: %s", e.Status, e.Message)
	}
	return "portendd: " + e.Message
}

// errAbort wraps an error from the caller's event callback so the retry
// loop never retries it.
type errAbort struct{ err error }

func (e *errAbort) Error() string { return e.err.Error() }

// streamState carries dedupe progress across retry attempts.
type streamState struct {
	delivered   int  // verdict + raceError events handed to fn so far
	sawDegraded bool // degraded event already delivered
}

// Analyze submits a request and streams its events to fn in arrival
// order (degraded first if present, then verdicts/race errors in
// deterministic detection order). It returns the terminal done summary.
// fn returning an error abandons the stream — closing the response body
// cancels the server-side run and frees its slot. A nil fn just drains.
func (c *Client) Analyze(ctx context.Context, req Request, fn func(Event) error) (*DoneInfo, error) {
	var st streamState
	for attempt := 0; ; attempt++ {
		done, retriable, err := c.attempt(ctx, req, fn, &st)
		if err == nil {
			return done, nil
		}
		var ab *errAbort
		if errors.As(err, &ab) {
			return nil, ab.err
		}
		if !retriable || attempt >= c.MaxRetries || ctx.Err() != nil {
			return nil, err
		}
		delay := c.backoff(attempt, err)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// backoff computes the wait before retry attempt+1: exponential from
// RetryBase with up to 50% jitter, capped at 5s, raised to the server's
// Retry-After when the failure carried one.
func (c *Client) backoff(attempt int, err error) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << attempt
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	d += rand.N(d/2 + 1)
	var oe *OverloadedError
	if errors.As(err, &oe) && oe.RetryAfter > d {
		d = oe.RetryAfter
	}
	return d
}

// attempt performs one submission. retriable classifies the failure for
// the retry loop; st tracks which events earlier attempts already
// delivered so a resumed stream skips them.
func (c *Client) attempt(ctx context.Context, req Request, fn func(Event) error, st *streamState) (done *DoneInfo, retriable bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.Base, "/")+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		hreq.Header.Set(TenantHeader, c.Tenant)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		// Connect failures (daemon restarting, socket refused) are the
		// textbook retriable case — unless our own context ended.
		return nil, ctx.Err() == nil, err
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		var eb ErrorBody
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		retriable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			if eb.Overloaded {
				oe := &OverloadedError{Tenant: eb.Tenant, QueueDepth: eb.QueueDepth}
				if s, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && s > 0 {
					oe.RetryAfter = time.Duration(s) * time.Second
				}
				return nil, true, oe
			}
			return nil, retriable, &RemoteError{Status: resp.StatusCode, Message: eb.Error}
		}
		return nil, retriable, &RemoteError{Status: resp.StatusCode, Message: strings.TrimSpace(string(msg))}
	}

	seen := 0 // verdict + raceError events observed on this attempt
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, false, fmt.Errorf("portendd: bad stream line: %w", err)
		}
		deliver := true
		switch ev.Type {
		case EventDone:
			return ev.Done, false, nil
		case EventError:
			// Terminal server-side failure (including a poisoned, panicked
			// run): authoritative, never retried.
			return nil, false, &RemoteError{Message: ev.Message}
		case EventVerdict, EventRaceError:
			seen++
			if seen <= st.delivered {
				deliver = false // replayed by the resumed stream; already handed out
			} else {
				st.delivered = seen
			}
		case EventDegraded:
			if st.sawDegraded {
				deliver = false
			} else {
				st.sawDegraded = true
			}
		}
		if deliver && fn != nil {
			if err := fn(ev); err != nil {
				return nil, false, &errAbort{err: err}
			}
		}
	}
	if err := sc.Err(); err != nil {
		// Mid-stream disconnect: the tier is warm, the resumed stream is
		// deterministic, and dedupe makes the retry safe.
		return nil, ctx.Err() == nil, err
	}
	return nil, ctx.Err() == nil, &RemoteError{Message: "stream ended without a done event"}
}
