package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"sync"

	"repro/internal/core"
)

// tierKey addresses a cache tier: the SHA-256 of the submission's
// canonical fingerprint. Identical keys mean identical (program, args,
// inputs, engine options) — the soundness contract core.CacheTier
// requires — so the deterministic engine records the identical trace
// and cached states are interchangeable across runs.
type tierKey [sha256.Size]byte

// fingerprint captures everything that shapes a run's trace and
// verdicts. Parallel is deliberately absent: verdict content and the
// recorded trace are byte-identical at every pool width (the
// determinism suite pins this), so submissions differing only in width
// share a tier and each other's warmth.
type fingerprint struct {
	Workload  string  `json:"w,omitempty"`
	Source    string  `json:"s,omitempty"`
	Name      string  `json:"n,omitempty"`
	Args      []int64 `json:"a"`
	ArgsSet   bool    `json:"as"`
	Inputs    []int64 `json:"i"`
	InputsSet bool    `json:"is"`

	Mp, Ma, Sym, MaxForks    int
	RunBudget, EnforceBudget int64
	Seed                     uint64
	SeedSet                  bool

	// NoStaticPrune is keyed even though verdicts are byte-identical with
	// pruning on or off: the two modes deposit checkpoints at different
	// points (pruning adds candidate-site deposits during detection), so
	// separating the tiers keeps each mode's warmth self-consistent.
	NoStaticPrune bool
}

// keyFor derives the tier key for a request resolved to effective
// engine options (post-degradation, so degraded runs get their own
// tier and never poison a full-budget tier's checkpoints).
func keyFor(req *Request, opts core.Options) tierKey {
	fp := fingerprint{
		Workload:  req.Workload,
		Source:    req.Source,
		Name:      req.Name,
		Args:      req.Args,
		ArgsSet:   req.Args != nil,
		Inputs:    req.Inputs,
		InputsSet: req.Inputs != nil,

		Mp:            opts.Mp,
		Ma:            opts.Ma,
		Sym:           opts.SymbolicInputs,
		MaxForks:      opts.MaxForks,
		RunBudget:     opts.RunBudget,
		EnforceBudget: opts.EnforceBudget,
		Seed:          opts.Seed,
		SeedSet:       opts.SeedSet,
		NoStaticPrune: opts.NoStaticPrune,
	}
	b, err := json.Marshal(fp)
	if err != nil {
		// fingerprint is marshal-safe by construction
		panic(err)
	}
	return sha256.Sum256(b)
}

// tierRegistry is the LRU-bounded map from submission key to its
// persistent cache tier. Eviction drops whole tiers (their stores and
// solver memo) — the memory budget is enforced at tier granularity,
// against measured tier footprints (core.CacheTier.MemBytes), with the
// tier-count bound as a hard backstop.
type tierRegistry struct {
	mu          sync.Mutex
	max         int
	budgetBytes int64 // measured-footprint budget (0 = count bound only)
	m           map[tierKey]*list.Element
	lru         list.List // front = most recently used
	opts        core.Options

	evictions int64
}

type tierEntry struct {
	key  tierKey
	tier *core.CacheTier
}

// newTierRegistry builds a registry holding at most max tiers within
// budgetBytes of measured footprint, each tier sized by opts' cache
// bounds (MaxCheckpoints, SolverCacheCeiling).
func newTierRegistry(max int, budgetBytes int64, opts core.Options) *tierRegistry {
	if max < 1 {
		max = 1
	}
	return &tierRegistry{max: max, budgetBytes: budgetBytes, m: make(map[tierKey]*list.Element), opts: opts}
}

// get returns the tier for key, creating it on first sight. Creation
// evicts least-recently-used tiers while the registry is over its count
// bound or its measured byte budget (the newly created tier is at the
// LRU front and never evicts itself).
func (r *tierRegistry) get(key tierKey) (tier *core.CacheTier, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[key]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*tierEntry).tier, false
	}
	t := core.NewCacheTier(r.opts)
	r.m[key] = r.lru.PushFront(&tierEntry{key: key, tier: t})
	for len(r.m) > 1 && (len(r.m) > r.max || (r.budgetBytes > 0 && r.bytesLocked() > r.budgetBytes)) {
		oldest := r.lru.Back()
		if oldest == nil {
			break
		}
		r.lru.Remove(oldest)
		delete(r.m, oldest.Value.(*tierEntry).key)
		r.evictions++
	}
	return t, true
}

// evict drops the tier for key (used to poison the tier of a panicking
// run: a panic mid-deposit may have left its stores inconsistent, so
// the whole tier is discarded rather than trusted). Reports whether a
// tier was resident.
func (r *tierRegistry) evict(key tierKey) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.m[key]
	if !ok {
		return false
	}
	r.lru.Remove(el)
	delete(r.m, key)
	r.evictions++
	return true
}

// bytesLocked sums the measured footprint of every resident tier.
// Callers hold r.mu.
func (r *tierRegistry) bytesLocked() int64 {
	var n int64
	for el := r.lru.Front(); el != nil; el = el.Next() {
		n += el.Value.(*tierEntry).tier.MemBytes()
	}
	return n
}

// each calls fn for every resident tier, most recently used first,
// without holding the registry lock during fn (the snapshot of entries
// is taken under the lock). Used by the drain-time flush.
func (r *tierRegistry) each(fn func(key tierKey, t *core.CacheTier)) {
	r.mu.Lock()
	ents := make([]*tierEntry, 0, len(r.m))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		ents = append(ents, el.Value.(*tierEntry))
	}
	r.mu.Unlock()
	for _, e := range ents {
		fn(e.key, e.tier)
	}
}

// snapshot sums every resident tier's stats and measured bytes for
// /metrics.
func (r *tierRegistry) snapshot() (n int, evictions int64, bytes int64, agg core.TierStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for el := r.lru.Front(); el != nil; el = el.Next() {
		bytes += el.Value.(*tierEntry).tier.MemBytes()
		s := el.Value.(*tierEntry).tier.Stats()
		agg.Checkpoints += s.Checkpoints
		agg.CheckpointHits += s.CheckpointHits
		agg.CheckpointMisses += s.CheckpointMisses
		agg.CheckpointThinned += s.CheckpointThinned
		agg.SymCheckpoints += s.SymCheckpoints
		agg.SymHits += s.SymHits
		agg.SymMisses += s.SymMisses
		agg.SymThinned += s.SymThinned
		agg.SiblingMemos += s.SiblingMemos
		agg.SibMemoHits += s.SibMemoHits
		agg.SolverEntries += s.SolverEntries
		agg.SolverHits += s.SolverHits
		agg.SolverMisses += s.SolverMisses
		agg.SolverEvictions += s.SolverEvictions
		agg.SolverCap += s.SolverCap
		agg.SolverResizes += s.SolverResizes
	}
	return len(r.m), r.evictions, bytes, agg
}
