package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workloads"
	"repro/internal/workloads/corpus"
	"repro/portend"
)

// normalizeVerdict renders verdict JSON with the stats zeroed: stats
// counters legitimately vary with cache history and pool width (the
// determinism contract covers verdict content, not instrumentation), so
// byte-identity is asserted on everything else.
func normalizeVerdict(t *testing.T, raw []byte) string {
	t.Helper()
	var v portend.Verdict
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal verdict: %v\n%s", err, raw)
	}
	v.Stats = portend.Stats{}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("re-marshal verdict: %v", err)
	}
	return string(b)
}

// localVerdicts runs the analysis in-process exactly as the daemon
// would and returns the normalized verdict lines plus summaries.
func localVerdicts(t *testing.T, target portend.Target, parallel int) (lines, summaries []string) {
	t.Helper()
	a := portend.New(portend.WithParallel(parallel))
	for v, err := range a.Analyze(context.Background(), target) {
		if err != nil {
			t.Fatalf("local analyze: %v", err)
		}
		raw, merr := json.Marshal(v)
		if merr != nil {
			t.Fatalf("marshal local verdict: %v", merr)
		}
		lines = append(lines, normalizeVerdict(t, raw))
		summaries = append(summaries, v.String())
	}
	return lines, summaries
}

// remoteVerdicts streams the same submission through the HTTP surface.
func remoteVerdicts(t *testing.T, c *Client, req Request) (lines, summaries []string, done *DoneInfo) {
	t.Helper()
	done, err := c.Analyze(context.Background(), req, func(ev Event) error {
		if ev.Type == EventVerdict {
			lines = append(lines, normalizeVerdict(t, ev.Verdict))
			summaries = append(summaries, ev.Summary)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("remote analyze: %v", err)
	}
	return lines, summaries, done
}

func assertSame(t *testing.T, name string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: want %d lines, got %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: line %d differs\n--- local ---\n%s\n--- remote ---\n%s", name, i, want[i], got[i])
		}
	}
}

// TestRemoteVerdictsMatchLocal pins the service's core promise: the
// daemon serves, for every built-in workload and every curated corpus
// program, verdicts byte-identical (stats aside) to an in-process
// portend.Analyze — at pool widths 1 and 8, and with summaries intact.
func TestRemoteVerdictsMatchLocal(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	t.Cleanup(ts.Close) // not defer: parallel subtests outlive this frame
	c := &Client{Base: ts.URL}

	type sub struct {
		name   string
		target portend.Target
		req    Request
	}
	var subs []sub
	for _, w := range workloads.All() {
		subs = append(subs, sub{name: "workload/" + w.Name,
			target: portend.Workload(w.Name),
			req:    Request{Workload: w.Name}})
	}
	for _, cp := range corpus.Curated() {
		tg := portend.Source(cp.Name, cp.Source)
		req := Request{Source: cp.Source, Name: cp.Name}
		if cp.Args != nil {
			tg = tg.WithArgs(cp.Args...)
			req.Args = cp.Args
		}
		if cp.Inputs != nil {
			tg = tg.WithInputs(cp.Inputs...)
			req.Inputs = cp.Inputs
		}
		subs = append(subs, sub{name: "corpus/" + cp.Name, target: tg, req: req})
	}

	for _, sb := range subs {
		sb := sb
		t.Run(sb.name, func(t *testing.T) {
			t.Parallel()
			wantLines, wantSums := localVerdicts(t, sb.target, 1)
			for _, width := range []int{1, 8} {
				req := sb.req
				req.Options = &RequestOptions{Parallel: width}
				gotLines, gotSums, done := remoteVerdicts(t, c, req)
				tag := fmt.Sprintf("width=%d", width)
				assertSame(t, tag+" verdicts", wantLines, gotLines)
				assertSame(t, tag+" summaries", wantSums, gotSums)
				if done.Verdicts != len(gotLines) {
					t.Errorf("%s: done.Verdicts=%d, streamed %d", tag, done.Verdicts, len(gotLines))
				}
			}
		})
	}
}

// slowSource is a raced program padded with a long concrete tail so its
// classification occupies an analysis slot for a while.
func slowSource(pad int) string {
	return fmt.Sprintf(`var g = 0
var acc = 0
fn w() { g = 1 }
fn main() {
	let t = spawn w()
	yield()
	g = 2
	join(t)
	for i = 0, %d { acc = acc + 1 }
	print("acc=", acc)
}`, pad)
}

// startSlow submits a slow request on its own context and returns once
// the run holds the slot, handing back the cancel and a channel that
// closes when the request goroutine exits.
func startSlow(t *testing.T, s *Server, c *Client, tenant string) (cancel context.CancelFunc, exited chan struct{}) {
	t.Helper()
	ctx, cancelFn := context.WithCancel(context.Background())
	ch := make(chan struct{})
	cl := *c
	cl.Tenant = tenant
	go func() {
		defer close(ch)
		_, _ = cl.Analyze(ctx, Request{Source: slowSource(2_000_000), Name: "slow",
			Options: &RequestOptions{Parallel: 1}}, nil)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.dispatch.active.Load() == 0 {
		if time.Now().After(deadline) {
			cancelFn()
			t.Fatal("slow request never acquired a slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cancelFn, ch
}

// TestDisconnectFreesSlot pins cancellation hygiene: a client that goes
// away mid-analysis must not leak its slot — the engine polls the
// request context, the handler returns, and the next tenant runs.
func TestDisconnectFreesSlot(t *testing.T) {
	s := New(Config{Slots: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	cancel, exited := startSlow(t, s, c, "a")
	cancel() // mid-run disconnect
	select {
	case <-exited:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request did not return")
	}

	// The freed slot must admit and finish a quick run promptly.
	ctx, cancelQuick := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelQuick()
	done, err := c.Analyze(ctx, Request{Workload: "rw"}, nil)
	if err != nil {
		t.Fatalf("quick run after disconnect: %v", err)
	}
	if done.Verdicts == 0 {
		t.Fatal("quick run produced no verdicts")
	}

	// The disconnect is visible on /metrics as its own counter, distinct
	// from voluntary cancellation accounting.
	if got := s.metrics.disconnects.Load(); got != 1 {
		t.Errorf("portend_disconnects_total = %d, want 1", got)
	}
	if !strings.Contains(scrapeMetrics(t, ts.URL), "portend_disconnects_total 1") {
		t.Error("metrics exposition missing portend_disconnects_total 1")
	}
}

// TestRoundRobinFairness drives the dispatcher directly: with one slot
// and tenant A holding it plus A-queued work, a newly arrived tenant B
// is served before A's backlog.
func TestRoundRobinFairness(t *testing.T) {
	d := newDispatcher(1, 100, 100)

	holderRelease, _, err := d.admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	// queued submits a job and waits until it is visibly enqueued (total
	// queued depth reaches wantDepth), so arrival order is deterministic.
	queued := func(label, tenant string, wantDepth int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, _, err := d.admit(context.Background(), tenant)
			if err != nil {
				t.Errorf("admit %s: %v", label, err)
				return
			}
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
			release()
		}()
		deadline := time.Now().Add(5 * time.Second)
		for {
			total := 0
			for _, n := range d.depths() {
				total += n
			}
			if total >= wantDepth {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached depth %d for %s", wantDepth, label)
			}
			time.Sleep(time.Millisecond)
		}
	}

	queued("a2", "a", 1)
	queued("b1", "b", 2)
	queued("a3", "a", 3)

	holderRelease()
	wg.Wait()

	got := strings.Join(order, ",")
	// After tenant A's holder releases, the round-robin pointer sits past
	// A, so B's first job runs before A's backlog.
	if got != "b1,a2,a3" {
		t.Fatalf("grant order = %s, want b1,a2,a3", got)
	}
}

// TestShedReturns429 pins hard load-shedding: with the slot held and
// the tenant queue full, the next request gets a typed 429 instead of
// queueing without bound, and the shed shows up on /metrics.
func TestShedReturns429(t *testing.T) {
	s := New(Config{Slots: 1, QueueSoft: 1, QueueHard: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL, Tenant: "flooder"}

	cancel, exited := startSlow(t, s, c, "flooder")
	defer func() { cancel(); <-exited }()

	// Fill the queue (depth 1 = hard bound).
	qctx, qcancel := context.WithCancel(context.Background())
	queuedExited := make(chan struct{})
	go func() {
		defer close(queuedExited)
		_, _ = c.Analyze(qctx, Request{Workload: "rw"}, nil)
	}()
	defer func() { qcancel(); <-queuedExited }()
	deadline := time.Now().Add(10 * time.Second)
	for s.dispatch.depths()["flooder"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err := c.Analyze(context.Background(), Request{Workload: "rw"}, nil)
	oe, ok := err.(*OverloadedError)
	if !ok {
		t.Fatalf("want *OverloadedError, got %v", err)
	}
	if oe.Tenant != "flooder" || oe.QueueDepth != 1 {
		t.Fatalf("unexpected overload detail: %+v", oe)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "portend_shed_total 1") {
		t.Fatalf("metrics missing shed count:\n%s", body)
	}
	if !strings.Contains(string(body), `portend_queue_depth{tenant="flooder"} 1`) {
		t.Fatalf("metrics missing queue depth:\n%s", body)
	}
}

// TestDegradedUnderSoftPressure pins soft shedding: a request admitted
// past the soft queue depth runs with a coarser budget, announces it
// with a degraded event, and flags the done summary.
func TestDegradedUnderSoftPressure(t *testing.T) {
	s := New(Config{Slots: 1, QueueSoft: 1, QueueHard: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL, Tenant: "t"}

	cancel, exited := startSlow(t, s, c, "t")

	// First queued request: depth 0 at admission, full budget.
	firstExited := make(chan struct{})
	go func() {
		defer close(firstExited)
		_, _ = c.Analyze(context.Background(), Request{Workload: "rw"}, nil)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.dispatch.depths()["t"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Second queued request: depth 1 >= soft, degraded.
	var sawDegraded *DegradedInfo
	resCh := make(chan *DoneInfo, 1)
	errCh := make(chan error, 1)
	go func() {
		done, err := c.Analyze(context.Background(), Request{Workload: "rw"}, func(ev Event) error {
			if ev.Type == EventDegraded {
				sawDegraded = ev.Degraded
			}
			return nil
		})
		resCh <- done
		errCh <- err
	}()
	for s.dispatch.depths()["t"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel() // release the slot; the queue drains
	<-exited
	<-firstExited
	done, err := <-resCh, <-errCh
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if sawDegraded == nil {
		t.Fatal("no degraded event on the soft-shed run")
	}
	if sawDegraded.Mp != 2 || sawDegraded.Ma != 1 {
		t.Fatalf("degraded budget = %+v, want mp=2 ma=1", sawDegraded)
	}
	if !done.Degraded {
		t.Fatal("done summary not flagged degraded")
	}
	if done.Verdicts == 0 {
		t.Fatal("degraded run produced no verdicts")
	}
}

// TestWarmSecondRequest pins the persistent tiers: a repeat submission
// reports a warm start and observes cross-run checkpoint reuse.
func TestWarmSecondRequest(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}
	req := Request{Workload: "sqlite", Options: &RequestOptions{Parallel: 1}}

	_, _, first := remoteVerdicts(t, c, req)
	if first.WarmStart {
		t.Fatal("first request claims a warm start")
	}
	lines1, _, second := remoteVerdicts(t, c, req)
	if !second.WarmStart {
		t.Fatal("second identical request not warm")
	}
	if second.Tier.Runs != 2 {
		t.Fatalf("tier runs = %d, want 2", second.Tier.Runs)
	}
	delta := second.Tier.CheckpointHits - first.Tier.CheckpointHits
	if delta <= 0 {
		t.Fatalf("no cross-run checkpoint reuse: first %+v second %+v", first.Tier, second.Tier)
	}

	// Warmth must not change verdicts: the second stream is identical.
	lines0, _ := localVerdicts(t, portend.Workload("sqlite"), 1)
	assertSame(t, "warm verdicts", lines0, lines1)
}
