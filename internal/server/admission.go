package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned by admit when the caller's queue is at its
// hard bound; the handler maps it to HTTP 429.
var ErrOverloaded = errors.New("server overloaded: tenant queue full")

// dispatcher is the admission controller: a fixed pool of analysis
// slots handed out fairly across tenants. Each tenant has a bounded
// FIFO; a round-robin pump walks tenants in first-seen order, granting
// one queued job per turn, so a tenant that floods the service delays
// itself, not its neighbours. Past the soft depth a request is admitted
// with a degraded (coarser) exploration budget; at the hard depth it is
// shed with ErrOverloaded instead of queueing without bound.
type dispatcher struct {
	mu     sync.Mutex
	slots  int                     // free slots
	queues map[string]*tenantQueue // keyed by tenant
	ring   []string                // tenants in first-seen order
	last   string                  // tenant granted most recently; scans resume after it
	soft   int                     // queue depth beyond which runs degrade
	hard   int                     // queue depth at which requests shed

	shed     atomic.Int64
	degraded atomic.Int64
	active   atomic.Int64
}

type tenantQueue struct {
	jobs []*job
}

type job struct {
	ready chan struct{} // closed when a slot is granted
	gone  bool          // abandoned (caller's context ended) before grant
}

// newDispatcher builds a dispatcher with the given pool width and
// per-tenant queue thresholds.
func newDispatcher(slots, soft, hard int) *dispatcher {
	if slots < 1 {
		slots = 1
	}
	if soft < 1 {
		soft = 1
	}
	if hard < soft {
		hard = soft
	}
	return &dispatcher{slots: slots, queues: make(map[string]*tenantQueue), soft: soft, hard: hard}
}

// admit blocks until the tenant is granted an analysis slot, the
// context ends, or the tenant's queue is full. It returns a release
// function (idempotent) and whether the run should execute with a
// degraded budget.
func (d *dispatcher) admit(ctx context.Context, tenant string) (release func(), degraded bool, err error) {
	d.mu.Lock()
	q := d.queues[tenant]
	if q == nil {
		q = &tenantQueue{}
		d.queues[tenant] = q
		d.ring = append(d.ring, tenant)
	}
	if len(q.jobs) >= d.hard {
		depth := len(q.jobs)
		d.mu.Unlock()
		d.shed.Add(1)
		return nil, false, &overloadError{tenant: tenant, depth: depth}
	}
	degraded = len(q.jobs) >= d.soft
	j := &job{ready: make(chan struct{})}
	q.jobs = append(q.jobs, j)
	d.pump()
	d.mu.Unlock()

	if degraded {
		d.degraded.Add(1)
	}

	select {
	case <-j.ready:
	case <-ctx.Done():
		d.mu.Lock()
		select {
		case <-j.ready:
			// Granted while we were cancelling: give the slot back.
			d.slots++
			d.pump()
			d.mu.Unlock()
		default:
			j.gone = true
			d.mu.Unlock()
		}
		return nil, false, ctx.Err()
	}

	d.active.Add(1)
	var once sync.Once
	release = func() {
		once.Do(func() {
			d.active.Add(-1)
			d.mu.Lock()
			d.slots++
			d.pump()
			d.mu.Unlock()
		})
	}
	return release, degraded, nil
}

// pump hands free slots to queued jobs, one tenant per turn in ring
// order, resuming after the most recently granted tenant (tracked by
// name, so the rotation survives tenants joining the ring between
// grants). Abandoned jobs are discarded as they surface. Callers hold
// d.mu.
func (d *dispatcher) pump() {
	for d.slots > 0 && len(d.ring) > 0 {
		start := 0
		for i, t := range d.ring {
			if t == d.last {
				start = i + 1
				break
			}
		}
		granted := false
		for scanned := 0; scanned < len(d.ring); scanned++ {
			t := d.ring[(start+scanned)%len(d.ring)]
			q := d.queues[t]
			for len(q.jobs) > 0 {
				j := q.jobs[0]
				q.jobs = q.jobs[1:]
				if j.gone {
					continue
				}
				d.slots--
				close(j.ready)
				d.last = t
				granted = true
				break
			}
			if granted {
				break
			}
		}
		if !granted {
			return
		}
	}
}

// depths snapshots every tenant's queue depth for /metrics.
func (d *dispatcher) depths() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.queues))
	for t, q := range d.queues {
		n := 0
		for _, j := range q.jobs {
			if !j.gone {
				n++
			}
		}
		out[t] = n
	}
	return out
}

// overloadError carries the shed context the handler needs for the 429
// body; it matches ErrOverloaded under errors.Is.
type overloadError struct {
	tenant string
	depth  int
}

func (e *overloadError) Error() string { return ErrOverloaded.Error() }
func (e *overloadError) Is(target error) bool {
	return target == ErrOverloaded
}
