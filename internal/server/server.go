package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sa"
	"repro/portend"
)

// Config sizes the service. Zero values mean the documented defaults.
type Config struct {
	// Slots is the number of analyses that run concurrently (default
	// GOMAXPROCS). Everything past it queues.
	Slots int

	// QueueSoft is the per-tenant queue depth beyond which admitted
	// requests run with a degraded exploration budget (default 2);
	// QueueHard is the depth at which requests are shed with 429
	// (default 8). Bounded queues plus shedding keep memory and latency
	// bounded under overload — the service degrades verdict coarseness
	// before it degrades availability.
	QueueSoft int
	QueueHard int

	// MemoryBudgetMB bounds the persistent cache tiers collectively
	// (default 256). It converts to a tier count with a coarse ~8MB
	// per-tier estimate (checkpoint stores dominate; see docs/
	// service.md); MaxTiers overrides the conversion directly.
	MemoryBudgetMB int
	MaxTiers       int

	// SolverCacheCeiling caps each tier's adaptive solver memo (<= 0
	// means the solver package default).
	SolverCacheCeiling int

	// DefaultParallel is the pool width for requests that do not set
	// one (default: the engine default, GOMAXPROCS).
	DefaultParallel int
}

// estTierMB is the coarse per-tier memory estimate used to convert
// MemoryBudgetMB into a tier count: 64 checkpoints × ~2 stores ×
// ~50KB state clones, plus the solver memo, rounded up generously.
const estTierMB = 8

func (c Config) withDefaults() Config {
	if c.Slots < 1 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.QueueSoft < 1 {
		c.QueueSoft = 2
	}
	if c.QueueHard < 1 {
		c.QueueHard = 8
	}
	if c.MemoryBudgetMB < 1 {
		c.MemoryBudgetMB = 256
	}
	if c.MaxTiers < 1 {
		c.MaxTiers = c.MemoryBudgetMB / estTierMB
		if c.MaxTiers < 1 {
			c.MaxTiers = 1
		}
	}
	return c
}

// Server is the portendd service: admission control in front of the
// portend analyzer, persistent cache tiers behind it.
type Server struct {
	cfg      Config
	dispatch *dispatcher
	tiers    *tierRegistry
	metrics  metrics
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tierOpts := core.DefaultOptions()
	tierOpts.SolverCacheCeiling = cfg.SolverCacheCeiling
	return &Server{
		cfg:      cfg,
		dispatch: newDispatcher(cfg.Slots, cfg.QueueSoft, cfg.QueueHard),
		tiers:    newTierRegistry(cfg.MaxTiers, tierOpts),
		metrics:  metrics{start: time.Now()},
	}
}

// Handler returns the service's HTTP routes: POST /v1/analyze (NDJSON
// verdict stream), GET /metrics (Prometheus text), GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

// TenantHeader names the request header carrying the tenant identity;
// absent, the request lands in the "default" tenant's queue.
const TenantHeader = "X-Portend-Tenant"

// maxRequestBody bounds the decoded request (PIL sources are small;
// 8MB is far above any real submission).
const maxRequestBody = 8 << 20

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		s.metrics.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "bad request: " + err.Error()})
		return
	}
	if err := req.Validate(); err != nil {
		s.metrics.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, ErrorBody{Error: err.Error()})
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = "default"
	}

	ctx := r.Context()
	opts := s.optionsFor(&req)
	target := req.Target()

	// Static admission (before taking a slot): fetch the submission's
	// static-analysis facts from its tier — computed once per tier, a
	// pure function of the program — and short-circuit the two cases a
	// dynamic run cannot improve on. A program with an error-severity
	// lint faults on every execution of the flagged site: reject it with
	// the diagnostics instead of burning a slot reproducing the fault. A
	// statically race-free program cannot yield a single race report:
	// answer the empty verdict stream immediately. Target-resolution
	// failures leave facts nil and fall through so the dynamic path
	// reports them exactly as before.
	if !opts.NoStaticPrune {
		tier, _ := s.tiers.get(keyFor(&req, opts))
		facts := tier.StaticFacts(func() *sa.Facts {
			lr, err := portend.Lint(target)
			if err != nil {
				return nil
			}
			return lr.Facts()
		})
		if facts != nil {
			if bad := facts.ErrorLints(); len(bad) > 0 {
				s.metrics.lintRejections.Add(1)
				body := ErrorBody{Error: "static analysis: program faults on every execution of the flagged synchronization"}
				for _, l := range bad {
					body.Lint = append(body.Lint, LintIssue{
						Rule: l.Rule, Severity: l.Severity, Fn: l.Fn, Line: l.Line, Msg: l.Msg,
					})
				}
				writeError(w, http.StatusUnprocessableEntity, body)
				return
			}
			if facts.RaceFree {
				s.metrics.requests.Add(1)
				s.metrics.staticClean.Add(1)
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				_ = json.NewEncoder(w).Encode(Event{Type: EventDone, Done: &DoneInfo{
					Target:      target.Name(),
					StaticClean: true,
				}})
				s.metrics.completed.Add(1)
				return
			}
			opts.StaticFacts = facts
		}
	}

	release, degraded, err := s.dispatch.admit(ctx, tenant)
	if err != nil {
		var oe *overloadError
		if errors.As(err, &oe) {
			writeError(w, http.StatusTooManyRequests, ErrorBody{
				Error:      err.Error(),
				Overloaded: true,
				Tenant:     oe.tenant,
				QueueDepth: oe.depth,
			})
			return
		}
		// Context ended while queued; the client is gone.
		s.metrics.cancelled.Add(1)
		return
	}
	defer release()
	s.metrics.requests.Add(1)

	var deg *DegradedInfo
	if degraded {
		opts = degradeOptions(opts)
		deg = &DegradedInfo{Mp: opts.Mp, Ma: opts.Ma}
	}

	// The tier key hashes the effective options, so degraded runs get a
	// tier of their own — a coarser run's checkpoints are states of a
	// different exploration and must not warm a full-budget run.
	tier, _ := s.tiers.get(keyFor(&req, opts))
	before := tier.Stats()
	endRun := tier.BeginRun()
	defer endRun()
	opts.Tier = tier

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(e Event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if deg != nil {
		if !emit(Event{Type: EventDegraded, Degraded: deg}) {
			return
		}
	}

	a := portend.New(portend.WithEngineOptions(opts))
	start := time.Now()
	done := DoneInfo{Target: target.Name(), Degraded: degraded, WarmStart: before.Warm()}
	terminalErr := false
	for v, err := range a.Analyze(ctx, target) {
		if err != nil {
			var re *portend.RaceError
			if errors.As(err, &re) {
				done.Errors++
				if !emit(Event{Type: EventRaceError, Race: re.RaceID, Message: re.Err.Error()}) {
					return
				}
				continue
			}
			terminalErr = true
			if ctx.Err() != nil {
				s.metrics.cancelled.Add(1)
			}
			emit(Event{Type: EventError, Message: err.Error()})
			break
		}
		raw, err := json.Marshal(v)
		if err != nil {
			terminalErr = true
			emit(Event{Type: EventError, Message: "marshal verdict: " + err.Error()})
			break
		}
		done.Verdicts++
		if n := v.Stats.PrunedSchedules; n > 0 {
			done.PrunedSchedules += n
			s.metrics.prunedSchedules.Add(int64(n))
		}
		ev := Event{Type: EventVerdict, Verdict: raw, Summary: v.String()}
		if req.Verbose {
			ev.Report = v.DebugReport()
		}
		if !emit(ev) {
			s.metrics.cancelled.Add(1)
			return
		}
	}
	if terminalErr {
		s.metrics.completed.Add(1)
		return
	}

	done.Races = done.Verdicts + done.Errors
	done.DurationNs = time.Since(start).Nanoseconds()
	done.Tier = tierInfo(tier)
	emit(Event{Type: EventDone, Done: &done})
	s.metrics.completed.Add(1)
}

// optionsFor resolves a request's options against the service
// defaults.
func (s *Server) optionsFor(req *Request) core.Options {
	opts := core.DefaultOptions()
	opts.SolverCacheCeiling = s.cfg.SolverCacheCeiling
	opts.Parallel = s.cfg.DefaultParallel
	if ro := req.Options; ro != nil {
		if ro.Mp > 0 {
			opts.Mp = ro.Mp
		}
		if ro.Ma > 0 {
			opts.Ma = ro.Ma
		}
		if ro.SymbolicInputs > 0 {
			opts.SymbolicInputs = ro.SymbolicInputs
		}
		if ro.Parallel > 0 {
			opts.Parallel = ro.Parallel
		}
		if ro.MaxForks > 0 {
			opts.MaxForks = ro.MaxForks
		}
		if ro.RunBudget > 0 {
			opts.RunBudget = ro.RunBudget
		}
		if ro.EnforceBudget > 0 {
			opts.EnforceBudget = ro.EnforceBudget
		}
		if ro.Seed != nil {
			opts.Seed, opts.SeedSet = *ro.Seed, true
		}
		opts.NoStaticPrune = ro.NoStaticPrune
	}
	return opts
}

// degradeOptions is the soft-shed budget: coarser multi-path and
// multi-schedule bounds that still produce verdicts for every race,
// just with fewer witnesses (a smaller k) — the paper's own knobs for
// trading coverage against time.
func degradeOptions(opts core.Options) core.Options {
	if opts.Mp > 2 {
		opts.Mp = 2
	}
	opts.Ma = 1
	return opts
}

func tierInfo(t *core.CacheTier) TierInfo {
	s := t.Stats()
	return TierInfo{
		Runs:            t.Runs(),
		Checkpoints:     s.Checkpoints,
		CheckpointHits:  s.CheckpointHits,
		SymCheckpoints:  s.SymCheckpoints,
		SymHits:         s.SymHits,
		SiblingMemoHits: s.SibMemoHits,
		SolverEntries:   s.SolverEntries,
		SolverHits:      s.SolverHits,
		SolverCap:       s.SolverCap,
		SolverResizes:   s.SolverResizes,
	}
}

func writeError(w http.ResponseWriter, code int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}
