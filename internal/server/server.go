package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dstore"
	"repro/internal/fault"
	"repro/internal/sa"
	"repro/portend"
)

// Config sizes the service. Zero values mean the documented defaults.
type Config struct {
	// Slots is the number of analyses that run concurrently (default
	// GOMAXPROCS). Everything past it queues.
	Slots int

	// QueueSoft is the per-tenant queue depth beyond which admitted
	// requests run with a degraded exploration budget (default 2);
	// QueueHard is the depth at which requests are shed with 429
	// (default 8). Bounded queues plus shedding keep memory and latency
	// bounded under overload — the service degrades verdict coarseness
	// before it degrades availability.
	QueueSoft int
	QueueHard int

	// MemoryBudgetMB bounds the persistent cache tiers collectively
	// (default 256), enforced against each tier's measured footprint
	// (core.CacheTier.MemBytes). MaxTiers is a hard count backstop on
	// top of the byte budget; it defaults from the budget with a coarse
	// ~8MB per-tier estimate.
	MemoryBudgetMB int
	MaxTiers       int

	// SolverCacheCeiling caps each tier's adaptive solver memo (<= 0
	// means the solver package default).
	SolverCacheCeiling int

	// DefaultParallel is the pool width for requests that do not set
	// one (default: the engine default, GOMAXPROCS).
	DefaultParallel int

	// DataDir, when set, makes cache tiers durable: each tier is
	// serialized to one checksummed file under the directory (see
	// internal/dstore) after its runs finish and again on drain, and is
	// restored lazily on the first request for its key after a restart —
	// repeat submissions then report warmStart across process lifetimes,
	// with byte-identical verdicts. Corrupt or version-skewed files are
	// quarantined and logged and the tier starts cold; durability
	// failures never fail a request.
	DataDir string

	// RunTimeout, when positive, is the per-run watchdog: an analysis
	// exceeding it is cancelled through its context and the stream ends
	// with a terminal error event after whatever verdicts were already
	// sent. Zero disables the watchdog.
	RunTimeout time.Duration

	// DrainTimeout bounds how long Drain waits for in-flight runs
	// before flushing tiers and returning (default 10s).
	DrainTimeout time.Duration
}

// estTierMB is the coarse per-tier memory estimate used to derive the
// default tier-count backstop from MemoryBudgetMB: 64 checkpoints ×
// ~2 stores × ~50KB state clones, plus the solver memo, rounded up
// generously. Eviction itself uses measured footprints.
const estTierMB = 8

func (c Config) withDefaults() Config {
	if c.Slots < 1 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.QueueSoft < 1 {
		c.QueueSoft = 2
	}
	if c.QueueHard < 1 {
		c.QueueHard = 8
	}
	if c.MemoryBudgetMB < 1 {
		c.MemoryBudgetMB = 256
	}
	if c.MaxTiers < 1 {
		c.MaxTiers = c.MemoryBudgetMB / estTierMB
		if c.MaxTiers < 1 {
			c.MaxTiers = 1
		}
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server is the portendd service: admission control in front of the
// portend analyzer, persistent cache tiers behind it, optionally backed
// by a durable on-disk store.
type Server struct {
	cfg      Config
	dispatch *dispatcher
	tiers    *tierRegistry
	metrics  metrics

	store    *dstore.Dir  // nil = in-memory tiers only
	ready    atomic.Bool  // startup tier-index scan finished
	draining atomic.Bool  // Drain called; no new work admitted
	inflight atomic.Int64 // requests inside handleAnalyze
}

// New builds a Server from the config. An unusable DataDir is logged
// and the server runs without durability — by contract, durability
// failures cost warmth across restarts, never availability.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tierOpts := core.DefaultOptions()
	tierOpts.SolverCacheCeiling = cfg.SolverCacheCeiling
	s := &Server{
		cfg:      cfg,
		dispatch: newDispatcher(cfg.Slots, cfg.QueueSoft, cfg.QueueHard),
		tiers:    newTierRegistry(cfg.MaxTiers, int64(cfg.MemoryBudgetMB)<<20, tierOpts),
		metrics:  metrics{start: time.Now()},
	}
	if cfg.DataDir != "" {
		d, err := dstore.Open(cfg.DataDir)
		if err != nil {
			log.Printf("portendd: data dir unavailable, running without durability: %v", err)
		} else {
			s.store = d
			if keys, err := d.Scan(); err != nil {
				log.Printf("portendd: data dir scan: %v", err)
			} else if len(keys) > 0 {
				log.Printf("portendd: data dir %s: %d durable tier(s) indexed", cfg.DataDir, len(keys))
			}
		}
	}
	s.ready.Store(true)
	return s
}

// Handler returns the service's HTTP routes: POST /v1/analyze (NDJSON
// verdict stream), GET /metrics (Prometheus text), GET /healthz (pure
// liveness — 200 for as long as the process serves), GET /readyz
// (readiness — 503 before the startup tier scan and while draining).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case s.draining.Load():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"draining"}`)
		case !s.ready.Load():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"starting"}`)
		default:
			fmt.Fprintln(w, `{"status":"ready"}`)
		}
	})
	return mux
}

// Drain stops admission (new requests get 503 with Draining set, and
// /readyz turns 503), waits up to the configured DrainTimeout for
// in-flight runs to finish, then flushes every idle tier to the durable
// store. Call before shutting the HTTP server down so a SIGTERM loses
// no warmth.
func (s *Server) Drain() {
	s.draining.Store(true)
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	s.flushAll()
}

// tierFor fetches the tier for key, restoring it from the durable store
// on first sight — which covers both post-restart warmth and reload
// after an LRU eviction.
func (s *Server) tierFor(key tierKey) *core.CacheTier {
	tier, created := s.tiers.get(key)
	if created && s.store != nil {
		s.restoreTier(key, tier)
	}
	return tier
}

// restoreTier loads and imports the durable snapshot for key, if one
// exists. A file that fails verification or import is quarantined and
// the tier stays cold; transient read failures just stay cold.
func (s *Server) restoreTier(key tierKey, tier *core.CacheTier) {
	hk := hex.EncodeToString(key[:])
	if fault.Fire(fault.TierLoadDelay) {
		// Chaos hook: hold the restore open so a test can kill or drain
		// the daemon mid-load.
		time.Sleep(250 * time.Millisecond)
	}
	var snap core.TierSnapshot
	err := s.store.Load(hk, &snap)
	switch {
	case err == nil:
	case errors.Is(err, dstore.ErrNotFound):
		return
	case errors.Is(err, dstore.ErrBadFile):
		s.metrics.tierLoadErrors.Add(1)
		log.Printf("portendd: tier %s: %v — quarantined, starting cold", hk[:12], err)
		if qerr := s.store.Quarantine(hk); qerr != nil {
			log.Printf("portendd: tier %s: %v", hk[:12], qerr)
		}
		return
	default:
		s.metrics.tierLoadErrors.Add(1)
		log.Printf("portendd: tier %s: load: %v — starting cold", hk[:12], err)
		return
	}
	if err := tier.Restore(&snap); err != nil {
		s.metrics.tierLoadErrors.Add(1)
		log.Printf("portendd: tier %s: restore: %v — quarantined, starting cold", hk[:12], err)
		if qerr := s.store.Quarantine(hk); qerr != nil {
			log.Printf("portendd: tier %s: %v", hk[:12], qerr)
		}
		return
	}
	s.metrics.tierRestores.Add(1)
}

// flushTier persists the tier's snapshot unless a run is active on it —
// the last finisher on a busy tier takes the flush instead. Write
// failures are logged and counted, never surfaced to the request.
func (s *Server) flushTier(key tierKey, tier *core.CacheTier) {
	if s.store == nil {
		return
	}
	snap, ok := tier.SnapshotIfIdle()
	if !ok {
		return
	}
	hk := hex.EncodeToString(key[:])
	if err := s.store.Write(hk, snap); err != nil {
		s.metrics.tierFlushErrors.Add(1)
		log.Printf("portendd: flush tier %s: %v", hk[:12], err)
		return
	}
	s.metrics.tierFlushes.Add(1)
}

// flushAll persists every resident idle tier (drain path).
func (s *Server) flushAll() {
	if s.store == nil {
		return
	}
	s.tiers.each(func(key tierKey, t *core.CacheTier) { s.flushTier(key, t) })
}

// TenantHeader names the request header carrying the tenant identity;
// absent, the request lands in the "default" tenant's queue.
const TenantHeader = "X-Portend-Tenant"

// maxRequestBody bounds the decoded request (PIL sources are small;
// 8MB is far above any real submission).
const maxRequestBody = 8 << 20

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrorBody{
			Error:    "portendd: draining for shutdown",
			Draining: true,
		})
		return
	}

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		s.metrics.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, ErrorBody{Error: "bad request: " + err.Error()})
		return
	}
	if err := req.Validate(); err != nil {
		s.metrics.badReqs.Add(1)
		writeError(w, http.StatusBadRequest, ErrorBody{Error: err.Error()})
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = "default"
	}

	ctx := r.Context()
	opts := s.optionsFor(&req)
	target := req.Target()

	// One disconnect is one counter tick no matter how it is observed
	// (write failure on the stream, or the request context dying).
	disconnected := false
	markDisc := func() {
		if !disconnected {
			disconnected = true
			s.metrics.disconnects.Add(1)
		}
	}

	// Static admission (before taking a slot): fetch the submission's
	// static-analysis facts from its tier — computed once per tier, a
	// pure function of the program — and short-circuit the two cases a
	// dynamic run cannot improve on. A program with an error-severity
	// lint faults on every execution of the flagged site: reject it with
	// the diagnostics instead of burning a slot reproducing the fault. A
	// statically race-free program cannot yield a single race report:
	// answer the empty verdict stream immediately. Target-resolution
	// failures leave facts nil and fall through so the dynamic path
	// reports them exactly as before.
	if !opts.NoStaticPrune {
		tier := s.tierFor(keyFor(&req, opts))
		facts := tier.StaticFacts(func() *sa.Facts {
			lr, err := portend.Lint(target)
			if err != nil {
				return nil
			}
			return lr.Facts()
		})
		if facts != nil {
			if bad := facts.ErrorLints(); len(bad) > 0 {
				s.metrics.lintRejections.Add(1)
				body := ErrorBody{Error: "static analysis: program faults on every execution of the flagged synchronization"}
				for _, l := range bad {
					body.Lint = append(body.Lint, LintIssue{
						Rule: l.Rule, Severity: l.Severity, Fn: l.Fn, Line: l.Line, Msg: l.Msg,
					})
				}
				writeError(w, http.StatusUnprocessableEntity, body)
				return
			}
			if facts.RaceFree {
				s.metrics.requests.Add(1)
				s.metrics.staticClean.Add(1)
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				_ = json.NewEncoder(w).Encode(Event{Type: EventDone, Done: &DoneInfo{
					Target:      target.Name(),
					StaticClean: true,
				}})
				s.metrics.completed.Add(1)
				return
			}
			opts.StaticFacts = facts
		}
	}

	release, degraded, err := s.dispatch.admit(ctx, tenant)
	if err != nil {
		var oe *overloadError
		if errors.As(err, &oe) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, ErrorBody{
				Error:      err.Error(),
				Overloaded: true,
				Tenant:     oe.tenant,
				QueueDepth: oe.depth,
			})
			return
		}
		// Context ended while queued; the client is gone.
		s.metrics.cancelled.Add(1)
		markDisc()
		return
	}
	defer release()
	s.metrics.requests.Add(1)

	var deg *DegradedInfo
	if degraded {
		opts = degradeOptions(opts)
		deg = &DegradedInfo{Mp: opts.Mp, Ma: opts.Ma}
	}

	// The tier key hashes the effective options, so degraded runs get a
	// tier of their own — a coarser run's checkpoints are states of a
	// different exploration and must not warm a full-budget run.
	key := keyFor(&req, opts)
	tier := s.tierFor(key)
	before := tier.Stats()
	endRun := tier.BeginRun()
	runEnded := false
	endOnce := func() {
		if !runEnded {
			runEnded = true
			endRun()
		}
	}
	defer endOnce()
	opts.Tier = tier

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(e Event) bool {
		if err := enc.Encode(e); err != nil {
			markDisc()
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if deg != nil {
		if !emit(Event{Type: EventDegraded, Degraded: deg}) {
			return
		}
	}

	// Per-run watchdog: a positive RunTimeout cancels the run through
	// the same context plumbing a client disconnect uses, so the stream
	// ends with a terminal error after the verdicts already delivered.
	runCtx := ctx
	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, s.cfg.RunTimeout)
		defer cancel()
	}

	a := portend.New(portend.WithEngineOptions(opts))
	start := time.Now()
	done := DoneInfo{Target: target.Name(), Degraded: degraded, WarmStart: before.Warm()}
	var (
		panicked    bool
		panicEv     Event
		aborted     bool // stream dead; nothing more can be sent
		terminalErr bool // terminal error event already emitted
	)
	// The run itself executes under a recover boundary: a panic anywhere
	// in the engine becomes a typed terminal event on this stream, never
	// a daemon crash, and poisons only this run's tier.
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				panicEv = Event{
					Type:    EventError,
					Message: fmt.Sprintf("internal panic: %v", p),
					Panic:   true,
					Stack:   string(debug.Stack()),
				}
			}
		}()
		if fault.Fire(fault.RunPanic) {
			panic("injected run panic (fault " + fault.RunPanic + ")")
		}
		for v, err := range a.Analyze(runCtx, target) {
			if err != nil {
				var re *portend.RaceError
				if errors.As(err, &re) {
					done.Errors++
					if !emit(Event{Type: EventRaceError, Race: re.RaceID, Message: re.Err.Error()}) {
						aborted = true
						return
					}
					continue
				}
				terminalErr = true
				if ctx.Err() != nil {
					// The client's context died — a watchdog timeout leaves
					// the parent context alive and is not a disconnect.
					s.metrics.cancelled.Add(1)
					markDisc()
				}
				emit(Event{Type: EventError, Message: err.Error()})
				return
			}
			raw, err := json.Marshal(v)
			if err != nil {
				terminalErr = true
				emit(Event{Type: EventError, Message: "marshal verdict: " + err.Error()})
				return
			}
			done.Verdicts++
			if n := v.Stats.PrunedSchedules; n > 0 {
				done.PrunedSchedules += n
				s.metrics.prunedSchedules.Add(int64(n))
			}
			if n := v.Stats.CloneAllocs; n > 0 {
				done.CloneAllocs += n
				s.metrics.cloneAllocs.Add(n)
			}
			if n := v.Stats.CloneBytes; n > 0 {
				done.CloneBytes += n
			}
			ev := Event{Type: EventVerdict, Verdict: raw, Summary: v.String()}
			if req.Verbose {
				ev.Report = v.DebugReport()
			}
			if !emit(ev) {
				s.metrics.cancelled.Add(1)
				aborted = true
				return
			}
		}
	}()
	endOnce()

	if panicked {
		// Isolate the blast radius: this run may have died mid-deposit,
		// so its tier (and its durable file) cannot be trusted — evict
		// both and let the next identical submission rebuild cold. The
		// admission slot is freed by the deferred release; every other
		// tenant's run is untouched.
		s.metrics.runPanics.Add(1)
		s.tiers.evict(key)
		if s.store != nil {
			if err := s.store.Remove(hex.EncodeToString(key[:])); err != nil {
				log.Printf("portendd: %v", err)
			}
		}
		log.Printf("portendd: run panic (tier %x, tenant %q): %s",
			key[:6], tenant, panicEv.Message)
		emit(panicEv)
		s.metrics.completed.Add(1)
		return
	}

	// Whatever the run deposited is sound even if the stream died or the
	// run ended in a terminal error — persist the warmth.
	s.flushTier(key, tier)

	if aborted {
		return
	}
	if terminalErr {
		s.metrics.completed.Add(1)
		return
	}

	done.Races = done.Verdicts + done.Errors
	done.DurationNs = time.Since(start).Nanoseconds()
	done.Tier = tierInfo(tier)
	emit(Event{Type: EventDone, Done: &done})
	s.metrics.completed.Add(1)
}

// optionsFor resolves a request's options against the service
// defaults.
func (s *Server) optionsFor(req *Request) core.Options {
	opts := core.DefaultOptions()
	opts.SolverCacheCeiling = s.cfg.SolverCacheCeiling
	opts.Parallel = s.cfg.DefaultParallel
	if ro := req.Options; ro != nil {
		if ro.Mp > 0 {
			opts.Mp = ro.Mp
		}
		if ro.Ma > 0 {
			opts.Ma = ro.Ma
		}
		if ro.SymbolicInputs > 0 {
			opts.SymbolicInputs = ro.SymbolicInputs
		}
		if ro.Parallel > 0 {
			opts.Parallel = ro.Parallel
		}
		if ro.MaxForks > 0 {
			opts.MaxForks = ro.MaxForks
		}
		if ro.RunBudget > 0 {
			opts.RunBudget = ro.RunBudget
		}
		if ro.EnforceBudget > 0 {
			opts.EnforceBudget = ro.EnforceBudget
		}
		if ro.Seed != nil {
			opts.Seed, opts.SeedSet = *ro.Seed, true
		}
		opts.NoStaticPrune = ro.NoStaticPrune
	}
	return opts
}

// degradeOptions is the soft-shed budget: coarser multi-path and
// multi-schedule bounds that still produce verdicts for every race,
// just with fewer witnesses (a smaller k) — the paper's own knobs for
// trading coverage against time.
func degradeOptions(opts core.Options) core.Options {
	if opts.Mp > 2 {
		opts.Mp = 2
	}
	opts.Ma = 1
	return opts
}

func tierInfo(t *core.CacheTier) TierInfo {
	s := t.Stats()
	return TierInfo{
		Runs:            t.Runs(),
		Checkpoints:     s.Checkpoints,
		CheckpointHits:  s.CheckpointHits,
		SymCheckpoints:  s.SymCheckpoints,
		SymHits:         s.SymHits,
		SiblingMemoHits: s.SibMemoHits,
		SolverEntries:   s.SolverEntries,
		SolverHits:      s.SolverHits,
		SolverCap:       s.SolverCap,
		SolverResizes:   s.SolverResizes,
	}
}

func writeError(w http.ResponseWriter, code int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}
