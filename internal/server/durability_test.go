package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/workloads"
	"repro/internal/workloads/corpus"
)

// tierFiles lists the live .tier files under dir.
func tierFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tier") {
			out = append(out, e.Name())
		}
	}
	return out
}

func metricValue(t *testing.T, base, name string) string {
	t.Helper()
	for _, line := range strings.Split(scrapeMetrics(t, base), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	return ""
}

// TestTierSurvivesRestart is the durability tentpole end to end: every
// workload and curated corpus program analyzed by one daemon instance is
// warm in the next instance sharing its data dir — warmStart on the
// done event, and verdicts byte-identical to the pre-restart run at
// pool widths 1 and 8.
func TestTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	type sub struct {
		name string
		req  Request
	}
	var subs []sub
	for _, w := range workloads.All() {
		subs = append(subs, sub{name: "workload/" + w.Name, req: Request{Workload: w.Name}})
	}
	for _, cp := range corpus.Curated() {
		req := Request{Source: cp.Source, Name: cp.Name}
		if cp.Args != nil {
			req.Args = cp.Args
		}
		if cp.Inputs != nil {
			req.Inputs = cp.Inputs
		}
		subs = append(subs, sub{name: "corpus/" + cp.Name, req: req})
	}

	// First life: analyze everything cold; per-run flushes persist each
	// tier, and Drain flushes whatever is left.
	s1 := New(Config{DataDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	c1 := &Client{Base: ts1.URL}
	coldLines := make(map[string][]string)
	coldDone := make(map[string]*DoneInfo)
	for _, sb := range subs {
		req := sb.req
		req.Options = &RequestOptions{Parallel: 1}
		lines, _, done := remoteVerdicts(t, c1, req)
		if done.WarmStart {
			t.Errorf("%s: cold first run claims warm start", sb.name)
		}
		coldLines[sb.name] = lines
		coldDone[sb.name] = done
	}
	s1.Drain()
	ts1.Close()
	if len(tierFiles(t, dir)) == 0 {
		t.Fatal("first life persisted no tier files")
	}

	// Second life: a fresh process image over the same data dir.
	s2 := New(Config{DataDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	c2 := &Client{Base: ts2.URL}
	for _, sb := range subs {
		first := coldDone[sb.name]
		// A statically-clean fast path never touches a tier; a run whose
		// caches ended empty has nothing to persist or restore.
		expectWarm := !first.StaticClean &&
			(first.Tier.Checkpoints > 0 || first.Tier.SymCheckpoints > 0 || first.Tier.SolverEntries > 0)
		for _, width := range []int{1, 8} {
			req := sb.req
			req.Options = &RequestOptions{Parallel: width}
			lines, _, done := remoteVerdicts(t, c2, req)
			tag := fmt.Sprintf("%s width=%d", sb.name, width)
			assertSame(t, tag+" verdicts vs pre-restart", coldLines[sb.name], lines)
			if expectWarm && !done.WarmStart {
				t.Errorf("%s: not warm after restart (first life tier %+v)", tag, first.Tier)
			}
		}
	}

	// The canonical warm workload must observe actual cross-run reuse,
	// not just a nonempty store: restored checkpoints serve the replay.
	req := Request{Workload: "sqlite", Options: &RequestOptions{Parallel: 1}}
	_, _, again := remoteVerdicts(t, c2, req)
	delta := again.Tier.CheckpointHits - coldDone["workload/sqlite"].Tier.CheckpointHits
	if delta < 1 {
		t.Errorf("sqlite: no cross-restart checkpoint hits (first %+v, post-restart %+v)",
			coldDone["workload/sqlite"].Tier, again.Tier)
	}

	if v := metricValue(t, ts2.URL, "portend_tier_restores_total"); v == "0" || v == "" {
		t.Errorf("portend_tier_restores_total = %q, want > 0", v)
	}
}

// TestCorruptTierQuarantined pins the recovery path: a flipped byte in a
// tier file must cost warmth only — the daemon quarantines the file,
// logs, serves the submission cold, and produces the same verdicts.
func TestCorruptTierQuarantined(t *testing.T) {
	dir := t.TempDir()
	req := Request{Workload: "sqlite", Options: &RequestOptions{Parallel: 1}}

	s1 := New(Config{DataDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	c1 := &Client{Base: ts1.URL}
	wantLines, _, _ := remoteVerdicts(t, c1, req)
	ts1.Close()

	files := tierFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("tier files = %v, want exactly 1", files)
	}
	path := filepath.Join(dir, files[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{DataDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	c2 := &Client{Base: ts2.URL}
	gotLines, _, done := remoteVerdicts(t, c2, req)
	if done.WarmStart {
		t.Error("corrupt tier still reported warm")
	}
	assertSame(t, "verdicts after quarantine", wantLines, gotLines)

	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if v := metricValue(t, ts2.URL, "portend_tier_load_errors_total"); v != "1" {
		t.Errorf("portend_tier_load_errors_total = %q, want 1", v)
	}
	// The cold rerun reflushed a good file under the live name.
	if got := tierFiles(t, dir); len(got) != 1 {
		t.Errorf("live tier files after recovery = %v, want 1", got)
	}
}

// rawEvents posts a request and decodes every NDJSON event.
func rawEvents(t *testing.T, base string, req Request) []Event {
	t.Helper()
	resp := postAnalyze(t, base, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line: %v\n%s", err, sc.Bytes())
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	return evs
}

// TestPanicIsolation pins the recover boundary: an injected panic in one
// run becomes a typed error event on that stream only — the concurrent
// tenant's run completes, the daemon keeps serving, the panic counter
// ticks, and the poisoned tier (memory and disk) is discarded so the
// next identical submission rebuilds cold.
func TestPanicIsolation(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	dir := t.TempDir()
	s := New(Config{Slots: 2, DataDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	// Tenant B holds a slot mid-run before the fault is armed.
	cancelB, exitedB := startSlow(t, s, c, "b")
	defer func() { cancelB(); <-exitedB }()

	if err := fault.Set(fault.RunPanic + ":1"); err != nil {
		t.Fatal(err)
	}
	evs := rawEvents(t, ts.URL, Request{Workload: "rw", Options: &RequestOptions{Parallel: 1}})
	last := evs[len(evs)-1]
	if last.Type != EventError || !last.Panic {
		t.Fatalf("terminal event = %+v, want panic error", last)
	}
	if last.Stack == "" || !strings.Contains(last.Message, "injected run panic") {
		t.Fatalf("panic event missing stack or message: %+v", last)
	}
	if len(tierFiles(t, dir)) != 0 {
		t.Errorf("poisoned tier left durable files: %v", tierFiles(t, dir))
	}

	// The daemon is unharmed: the same submission immediately succeeds,
	// cold, while tenant B is still running.
	done, err := c.Analyze(context.Background(), Request{Workload: "rw", Options: &RequestOptions{Parallel: 1}}, nil)
	if err != nil {
		t.Fatalf("post-panic run: %v", err)
	}
	if done.WarmStart {
		t.Error("post-panic run warm; poisoned tier survived eviction")
	}
	if v := metricValue(t, ts.URL, "portend_run_panics_total"); v != "1" {
		t.Errorf("portend_run_panics_total = %q, want 1", v)
	}
}

// TestRunTimeoutWatchdog pins the per-run watchdog: a run over its
// budget is cancelled through the context plumbing, the stream ends
// with a terminal error event, the slot frees promptly — and the
// timeout is not miscounted as a client disconnect.
func TestRunTimeoutWatchdog(t *testing.T) {
	s := New(Config{Slots: 1, RunTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	start := time.Now()
	_, err := c.Analyze(context.Background(),
		Request{Source: slowSource(2_000_000), Name: "hog", Options: &RequestOptions{Parallel: 1}}, nil)
	if err == nil {
		t.Fatal("watchdogged run reported success")
	}
	if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("err = %T %v, want *RemoteError", err, err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}

	// The slot must be free for the next run.
	done, err := c.Analyze(context.Background(), Request{Workload: "rw"}, nil)
	if err != nil || done.Verdicts == 0 {
		t.Fatalf("run after watchdog: %v (done %+v)", err, done)
	}
	if v := metricValue(t, ts.URL, "portend_disconnects_total"); v != "0" {
		t.Errorf("portend_disconnects_total = %q, want 0 (watchdog is not a disconnect)", v)
	}
}

// TestReadyzSplit pins the liveness/readiness split: /healthz stays 200
// for the life of the process while /readyz (and admission) turn away
// work once draining starts.
func TestReadyzSplit(t *testing.T) {
	s := New(Config{DrainTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}
	s.Drain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz after drain = %d, want 200 (liveness is not readiness)", got)
	}

	resp := postAnalyze(t, ts.URL, Request{Workload: "rw"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analyze while draining = %d, want 503", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || !eb.Draining {
		t.Fatalf("draining body = %+v (%v), want Draining=true", eb, err)
	}
}
