package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// faultySource trips the static lint pass with certain-fault findings:
// bad() unlocks a mutex no path has locked and then double-locks
// another. Every execution of main faults, so admission rejects it.
const faultySource = `var g = 0
mutex m
mutex held
fn bad() {
	unlock(m)
	lock(held)
	lock(held)
}
fn main() {
	bad()
	print("done")
}`

// cleanSource is fully lock-protected: the static pass proves every
// shared-access pair ordered or mutually excluded, so the server can
// answer race-free without a dynamic run.
const cleanSource = `var counter = 0
mutex m
fn worker() {
	lock(m)
	counter = counter + 1
	unlock(m)
}
fn main() {
	let a = spawn worker()
	let b = spawn worker()
	lock(m)
	counter = counter + 10
	let snap = counter
	unlock(m)
	join(a)
	join(b)
	print("c=", snap)
}`

func postAnalyze(t *testing.T, base string, req Request) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	return resp
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("get metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(b)
}

// TestStaticAdmission pins the service's static front door on one
// server instance so the /metrics counters can be asserted exactly:
// a certain-fault program is rejected with 422 and its lint findings;
// a statically race-free program is answered with a staticClean done
// event without occupying an analysis slot; and noStaticPrune forces
// the full dynamic path for both.
func TestStaticAdmission(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	t.Run("lint-rejection-422", func(t *testing.T) {
		resp := postAnalyze(t, ts.URL, Request{Source: faultySource, Name: "faulty"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", resp.StatusCode)
		}
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		if len(eb.Lint) == 0 {
			t.Fatalf("422 body carries no lint findings: %+v", eb)
		}
		rules := map[string]bool{}
		for _, l := range eb.Lint {
			if l.Severity != "error" {
				t.Errorf("non-error severity %q on 422 finding %+v", l.Severity, l)
			}
			rules[l.Rule] = true
		}
		if !rules["unlock-unheld"] || !rules["double-lock"] {
			t.Errorf("expected unlock-unheld and double-lock findings, got %+v", eb.Lint)
		}
	})

	t.Run("static-clean-fastpath", func(t *testing.T) {
		var events int
		done, err := c.Analyze(context.Background(), Request{Source: cleanSource, Name: "clean"},
			func(Event) error { events++; return nil })
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		if events != 0 {
			t.Errorf("fast path streamed %d events before done, want 0", events)
		}
		if !done.StaticClean {
			t.Errorf("done.StaticClean = false, want true: %+v", done)
		}
		if done.Verdicts != 0 || done.Races != 0 {
			t.Errorf("fast path reported verdicts: %+v", done)
		}
		if s.dispatch.active.Load() != 0 {
			t.Errorf("fast path left an active slot")
		}
	})

	t.Run("no-static-prune-forces-dynamic", func(t *testing.T) {
		// The same two programs with the ablation flag take the full
		// dynamic path: the clean one runs (empty verdict stream, no
		// StaticClean marker) and the faulty one is admitted rather than
		// rejected.
		done, err := c.Analyze(context.Background(), Request{Source: cleanSource, Name: "clean",
			Options: &RequestOptions{NoStaticPrune: true}}, nil)
		if err != nil {
			t.Fatalf("analyze clean: %v", err)
		}
		if done.StaticClean {
			t.Errorf("noStaticPrune run still marked StaticClean: %+v", done)
		}
		if done.Verdicts != 0 {
			t.Errorf("race-free program produced verdicts dynamically: %+v", done)
		}

		resp := postAnalyze(t, ts.URL, Request{Source: faultySource, Name: "faulty",
			Options: &RequestOptions{NoStaticPrune: true}})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("noStaticPrune faulty submission: status %d, want 200 (dynamic run)", resp.StatusCode)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		body := scrapeMetrics(t, ts.URL)
		for _, want := range []string{
			"portend_lint_rejections_total 1",
			"portend_static_clean_fastpath_total 1",
			"portend_pruned_schedules_total",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("metrics missing %q:\n%s", want, body)
			}
		}
	})
}

// TestStaticFactsCachedOnTier pins that admission computes the static
// artifact once per tier: a repeat submission reuses the cached facts
// rather than re-linting.
func TestStaticFactsCachedOnTier(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp := postAnalyze(t, ts.URL, Request{Source: faultySource, Name: "faulty"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("round %d: status %d, want 422", i, resp.StatusCode)
		}
	}
	if got := s.metrics.lintRejections.Load(); got != 2 {
		t.Errorf("lintRejections = %d, want 2", got)
	}
	// Exactly one tier exists for the submission and it holds the facts.
	n, _, _, _ := s.tiers.snapshot()
	if n != 1 {
		t.Errorf("tiers = %d, want 1", n)
	}
}
