package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// metrics aggregates service-level counters; cache-tier and queue
// figures are sampled from their owners at scrape time rather than
// double-counted here.
type metrics struct {
	start     time.Time
	requests  atomic.Int64 // analyses admitted and started
	completed atomic.Int64 // analyses that ran to a terminal event
	badReqs   atomic.Int64 // rejected before admission (400)
	cancelled atomic.Int64 // runs ended by client disconnect/cancel

	lintRejections  atomic.Int64 // rejected at admission by static lint (422)
	staticClean     atomic.Int64 // statically race-free fast-path answers
	prunedSchedules atomic.Int64 // worklist items the static prune skipped
	cloneAllocs     atomic.Int64 // allocations spent on COW state snapshots

	runPanics   atomic.Int64 // runs ended by the panic recover boundary
	disconnects atomic.Int64 // requests whose client went away mid-flight

	tierRestores    atomic.Int64 // tiers imported from the durable store
	tierLoadErrors  atomic.Int64 // durable loads that failed (quarantine/cold)
	tierFlushes     atomic.Int64 // tier snapshots persisted
	tierFlushErrors atomic.Int64 // tier snapshot writes that failed
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// handleMetrics renders the Prometheus text exposition format
// (version 0.0.4) by hand — the service depends only on the standard
// library.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	g := func(name, help, typ string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}

	g("portend_uptime_seconds", "Seconds since the server started.", "gauge",
		int64(time.Since(s.metrics.start).Seconds()))
	g("portend_requests_total", "Analysis requests admitted and started.", "counter",
		s.metrics.requests.Load())
	g("portend_requests_completed_total", "Analyses that reached a terminal event.", "counter",
		s.metrics.completed.Load())
	g("portend_requests_bad_total", "Requests rejected as malformed (HTTP 400).", "counter",
		s.metrics.badReqs.Load())
	g("portend_requests_cancelled_total", "Analyses ended early by client disconnect or cancel.", "counter",
		s.metrics.cancelled.Load())
	g("portend_lint_rejections_total", "Submissions rejected at admission by an error-severity static lint (HTTP 422).", "counter",
		s.metrics.lintRejections.Load())
	g("portend_static_clean_fastpath_total", "Statically race-free submissions answered without taking an analysis slot.", "counter",
		s.metrics.staticClean.Load())
	g("portend_pruned_schedules_total", "Multi-path worklist items skipped by the static dead-item prune.", "counter",
		s.metrics.prunedSchedules.Load())
	g("portend_state_clone_allocs_total", "Allocations spent on copy-on-write VM state snapshots (State.Clone).", "counter",
		s.metrics.cloneAllocs.Load())
	g("portend_run_panics_total", "Runs that panicked and were isolated by the recover boundary.", "counter",
		s.metrics.runPanics.Load())
	g("portend_disconnects_total", "Requests whose client disconnected mid-flight (queued or streaming).", "counter",
		s.metrics.disconnects.Load())
	g("portend_tier_restores_total", "Cache tiers restored from the durable store.", "counter",
		s.metrics.tierRestores.Load())
	g("portend_tier_load_errors_total", "Durable tier loads that failed verification or import (file quarantined or skipped).", "counter",
		s.metrics.tierLoadErrors.Load())
	g("portend_tier_flushes_total", "Tier snapshots persisted to the durable store.", "counter",
		s.metrics.tierFlushes.Load())
	g("portend_tier_flush_errors_total", "Tier snapshot writes that failed (warmth lost, request unaffected).", "counter",
		s.metrics.tierFlushErrors.Load())
	g("portend_draining", "1 while the server is draining for shutdown.", "gauge",
		boolGauge(s.draining.Load()))
	g("portend_requests_active", "Analyses holding a slot right now.", "gauge",
		s.dispatch.active.Load())
	g("portend_shed_total", "Requests shed with HTTP 429 at the hard queue bound.", "counter",
		s.dispatch.shed.Load())
	g("portend_degraded_total", "Runs admitted with a degraded exploration budget.", "counter",
		s.dispatch.degraded.Load())

	depths := s.dispatch.depths()
	tenants := make([]string, 0, len(depths))
	for t := range depths {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(w, "# HELP portend_queue_depth Queued (admitted-but-waiting) requests per tenant.\n# TYPE portend_queue_depth gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "portend_queue_depth{tenant=%q} %d\n", t, depths[t])
	}

	nTiers, tierEvictions, tierBytes, agg := s.tiers.snapshot()
	g("portend_tiers", "Resident persistent cache tiers.", "gauge", nTiers)
	g("portend_tier_evictions_total", "Whole tiers evicted by the registry's LRU bound.", "counter", tierEvictions)
	g("portend_tier_bytes", "Measured memory footprint of all resident cache tiers.", "gauge", tierBytes)
	g("portend_tier_checkpoints", "Concrete replay checkpoints resident across tiers.", "gauge", agg.Checkpoints)
	g("portend_tier_checkpoint_hits_total", "Replays resumed from a tier's concrete store.", "counter", agg.CheckpointHits)
	g("portend_tier_checkpoint_thinned_total", "Concrete checkpoints dropped by store thinning.", "counter", agg.CheckpointThinned)
	g("portend_tier_sym_checkpoints", "Symbolic exploration checkpoints resident across tiers.", "gauge", agg.SymCheckpoints)
	g("portend_tier_sym_hits_total", "Explorations resumed from a tier's symbolic store.", "counter", agg.SymHits)
	g("portend_tier_sibling_memos", "Memoized sibling outcomes resident across tiers.", "gauge", agg.SiblingMemos)
	g("portend_tier_sibling_memo_hits_total", "Pending-fork re-runs skipped via sibling memos.", "counter", agg.SibMemoHits)
	g("portend_tier_solver_entries", "Solver memo entries resident across tiers.", "gauge", agg.SolverEntries)
	g("portend_tier_solver_hits_total", "Solver queries answered from a tier's memo.", "counter", agg.SolverHits)
	g("portend_tier_solver_evictions_total", "Solver memo entries evicted (LRU) across tiers.", "counter", agg.SolverEvictions)
	g("portend_tier_solver_cap", "Summed adaptive solver-cache capacity across tiers.", "gauge", agg.SolverCap)
	g("portend_tier_solver_resizes_total", "Adaptive solver-cache growth steps across tiers.", "counter", agg.SolverResizes)
}
