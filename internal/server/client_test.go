package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// verdictLine renders a deterministic fake verdict event for stub
// streams; i is the detection-order index.
func verdictLine(i int) Event {
	return Event{Type: EventVerdict, Verdict: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)), Summary: fmt.Sprintf("v%d", i)}
}

func writeEvents(t *testing.T, w http.ResponseWriter, evs ...Event) {
	t.Helper()
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Errorf("stub encode: %v", err)
		}
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClientResumesMidStreamDisconnect pins the resumable-stream
// contract: a stream cut after two verdicts is retried, the repeat of
// the deterministic prefix is deduped, and the caller sees every event
// exactly once — the merged output of the two attempts is identical to
// an uninterrupted run.
func TestClientResumesMidStreamDisconnect(t *testing.T) {
	var attempts atomic.Int64
	full := []Event{
		{Type: EventDegraded, Degraded: &DegradedInfo{Mp: 2, Ma: 1}},
		verdictLine(1), verdictLine(2),
		{Type: EventRaceError, Race: "r3", Message: "boom"},
		verdictLine(4),
		{Type: EventDone, Done: &DoneInfo{Verdicts: 3, Errors: 1, Races: 4}},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		if n == 1 {
			// Degraded + two verdicts, then the connection dies.
			writeEvents(t, w, full[0], full[1], full[2])
			panic(http.ErrAbortHandler)
		}
		writeEvents(t, w, full...)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, MaxRetries: 3, RetryBase: time.Millisecond}
	var got []string
	done, err := c.Analyze(context.Background(), Request{Workload: "x"}, func(ev Event) error {
		switch ev.Type {
		case EventDegraded:
			got = append(got, "degraded")
		case EventVerdict:
			got = append(got, string(ev.Verdict))
		case EventRaceError:
			got = append(got, "raceError:"+ev.Race)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("resumed analyze: %v", err)
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", attempts.Load())
	}
	want := []string{"degraded", `{"i":1}`, `{"i":2}`, "raceError:r3", `{"i":4}`}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered[%d] = %q, want %q (full %v)", i, got[i], want[i], got)
		}
	}
	if done == nil || done.Races != 4 {
		t.Fatalf("done = %+v, want Races=4", done)
	}
}

// TestClientRetriesConnectAndOverload pins the other retriable classes:
// a connection-level failure and a 429 shed both back off and retry.
func TestClientRetriesConnectAndOverload(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch attempts.Add(1) {
		case 1:
			panic(http.ErrAbortHandler) // dies before any byte
		case 2:
			writeError(w, http.StatusTooManyRequests, ErrorBody{Error: "shed", Overloaded: true, Tenant: "t", QueueDepth: 8})
		default:
			writeEvents(t, w, verdictLine(1), Event{Type: EventDone, Done: &DoneInfo{Verdicts: 1, Races: 1}})
		}
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, MaxRetries: 4, RetryBase: time.Millisecond}
	n := 0
	done, err := c.Analyze(context.Background(), Request{Workload: "x"}, func(ev Event) error {
		if ev.Type == EventVerdict {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if attempts.Load() != 3 || n != 1 || done.Verdicts != 1 {
		t.Fatalf("attempts=%d delivered=%d done=%+v", attempts.Load(), n, done)
	}
}

// TestClientFailFastByDefault pins that the zero-value client keeps the
// old semantics: one attempt, typed overload error, Retry-After
// surfaced for the caller to act on.
func TestClientFailFastByDefault(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "7")
		writeError(w, http.StatusTooManyRequests, ErrorBody{Error: "shed", Overloaded: true, Tenant: "t", QueueDepth: 3})
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	_, err := c.Analyze(context.Background(), Request{Workload: "x"}, nil)
	oe, ok := err.(*OverloadedError)
	if !ok {
		t.Fatalf("err = %T %v, want *OverloadedError", err, err)
	}
	if oe.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", oe.RetryAfter)
	}
	if attempts.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (MaxRetries=0 must fail fast)", attempts.Load())
	}
}

// TestClientNeverRetriesTerminal pins the non-retriable classes: a 4xx
// rejection and a terminal error event (a panicked run) are
// authoritative — retrying would just repeat them.
func TestClientNeverRetriesTerminal(t *testing.T) {
	t.Run("4xx", func(t *testing.T) {
		var attempts atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			attempts.Add(1)
			writeError(w, http.StatusUnprocessableEntity, ErrorBody{Error: "lint rejected"})
		}))
		defer ts.Close()
		c := &Client{Base: ts.URL, MaxRetries: 5, RetryBase: time.Millisecond}
		if _, err := c.Analyze(context.Background(), Request{Workload: "x"}, nil); err == nil {
			t.Fatal("want error")
		}
		if attempts.Load() != 1 {
			t.Fatalf("attempts = %d, want 1", attempts.Load())
		}
	})
	t.Run("panic event", func(t *testing.T) {
		var attempts atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			attempts.Add(1)
			writeEvents(t, w, Event{Type: EventError, Message: "internal panic: boom", Panic: true, Stack: "stack"})
		}))
		defer ts.Close()
		c := &Client{Base: ts.URL, MaxRetries: 5, RetryBase: time.Millisecond}
		_, err := c.Analyze(context.Background(), Request{Workload: "x"}, nil)
		re, ok := err.(*RemoteError)
		if !ok {
			t.Fatalf("err = %T %v, want *RemoteError", err, err)
		}
		if re.Message != "internal panic: boom" {
			t.Errorf("message = %q", re.Message)
		}
		if attempts.Load() != 1 {
			t.Fatalf("attempts = %d, want 1", attempts.Load())
		}
	})
}

// TestClientRetryRespectsContext pins that a dead caller context stops
// the retry loop instead of sleeping through backoff.
func TestClientRetryRespectsContext(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		panic(http.ErrAbortHandler)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{Base: ts.URL, MaxRetries: 10, RetryBase: time.Hour}
	if _, err := c.Analyze(ctx, Request{Workload: "x"}, nil); err == nil {
		t.Fatal("want error")
	}
	if attempts.Load() > 1 {
		t.Fatalf("attempts = %d with a cancelled context", attempts.Load())
	}
}
