package explore

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/expr"
	"repro/internal/solver"
	"repro/internal/vm"
)

// exploreAll runs the program with nSym symbolic inputs (hinted by the
// concrete inputs) and collects the final state of every explored path.
func exploreAll(t *testing.T, src string, inputs []int64, nSym, maxForks int) ([]*vm.State, []vm.RunResult, *Engine) {
	t.Helper()
	p := bytecode.MustCompile(src, "exp", bytecode.Options{})
	e := NewEngine(solver.New(solver.Options{}), maxForks)

	root := vm.NewState(p, nil, inputs)
	root.In.NSymbolic = nSym

	type item struct {
		st  *vm.State
		ctl vm.Controller
	}
	work := []item{{root, vm.NewRoundRobin()}}
	var states []*vm.State
	var results []vm.RunResult
	for len(work) > 0 && len(states) < 64 {
		it := work[0]
		work = work[1:]
		m := vm.NewMachine(it.st, it.ctl)
		res := e.RunForking(m, 200_000, func(sib *vm.State) {
			cc := it.ctl.(vm.CloneableController).CloneCtl()
			work = append(work, item{sib, cc})
		})
		states = append(states, it.st)
		results = append(results, res)
	}
	return states, results, e
}

func leafOutputs(states []*vm.State) []string {
	var outs []string
	for _, st := range states {
		outs = append(outs, strings.TrimSpace(st.RenderOutputs()))
	}
	sort.Strings(outs)
	return outs
}

func TestForkBothSides(t *testing.T) {
	states, results, _ := exploreAll(t, `
fn main() {
	let v = input()
	if v > 10 {
		print("big")
	} else {
		print("small")
	}
}`, []int64{42}, 1, 16)
	if len(states) != 2 {
		t.Fatalf("want 2 paths, got %d", len(states))
	}
	for _, r := range results {
		if r.Kind != vm.StopFinished {
			t.Fatalf("path did not finish: %v", r.Kind)
		}
	}
	outs := leafOutputs(states)
	if outs[0] != "big" || outs[1] != "small" {
		t.Fatalf("got %v", outs)
	}
}

func TestNestedBranchesFourPaths(t *testing.T) {
	states, _, _ := exploreAll(t, `
fn main() {
	let a = input()
	let b = input()
	if a > 0 { print("a+") } else { print("a-") }
	if b > 0 { print("b+") } else { print("b-") }
}`, []int64{1, 1}, 2, 16)
	if len(states) != 4 {
		t.Fatalf("want 4 paths, got %d", len(states))
	}
	got := map[string]bool{}
	for _, o := range leafOutputs(states) {
		got[strings.ReplaceAll(o, "\n", " ")] = true
	}
	for _, want := range []string{"a+ b+", "a+ b-", "a- b+", "a- b-"} {
		if !got[want] {
			t.Fatalf("missing path %q in %v", want, got)
		}
	}
}

func TestInfeasibleSideNotForked(t *testing.T) {
	// After taking v > 10, the inner v > 5 cannot be false.
	states, _, _ := exploreAll(t, `
fn main() {
	let v = input()
	if v > 10 {
		if v > 5 {
			print("both")
		} else {
			print("impossible")
		}
	} else {
		print("low")
	}
}`, []int64{20}, 1, 16)
	if len(states) != 2 {
		t.Fatalf("want 2 feasible paths, got %d", len(states))
	}
	for _, o := range leafOutputs(states) {
		if o == "impossible" {
			t.Fatal("explored an infeasible path")
		}
	}
}

func TestForkBudgetRespected(t *testing.T) {
	states, _, e := exploreAll(t, `
fn main() {
	let a = input()
	let b = input()
	let c = input()
	if a > 0 { print(1) } else { print(2) }
	if b > 0 { print(3) } else { print(4) }
	if c > 0 { print(5) } else { print(6) }
}`, []int64{1, 1, 1}, 3, 2)
	if len(states) != 3 { // root + 2 forks
		t.Fatalf("want 3 paths with budget 2, got %d", len(states))
	}
	if e.ForksLeft() != 0 {
		t.Fatalf("fork budget not exhausted: %d left", e.ForksLeft())
	}
}

func TestAssertForkFindsViolation(t *testing.T) {
	states, results, _ := exploreAll(t, `
fn main() {
	let v = input()
	assert(v != 3)
	print("ok")
}`, []int64{10}, 1, 16)
	if len(states) != 2 {
		t.Fatalf("want 2 paths, got %d", len(states))
	}
	foundViolation := false
	for _, r := range results {
		if r.Kind == vm.StopError && r.Err.Kind == vm.ErrAssert {
			foundViolation = true
		}
	}
	if !foundViolation {
		t.Fatal("fork should discover the assert-violating input v=3")
	}
}

func TestDivByZeroFork(t *testing.T) {
	states, results, _ := exploreAll(t, `
fn main() {
	let v = input()
	print(100 / v)
}`, []int64{4}, 1, 16)
	if len(states) != 2 {
		t.Fatalf("want 2 paths, got %d", len(states))
	}
	foundDiv := false
	for _, r := range results {
		if r.Kind == vm.StopError && r.Err.Kind == vm.ErrDivZero {
			foundDiv = true
		}
	}
	if !foundDiv {
		t.Fatal("fork should discover the div-by-zero input v=0")
	}
}

func TestBranchCounting(t *testing.T) {
	_, _, e := exploreAll(t, `
fn main() {
	let v = input()
	if v > 0 { print(1) } else { print(0) }
}`, []int64{5}, 1, 16)
	if e.Branches() == 0 {
		t.Fatal("dependent branches should be counted")
	}
}

func TestConcreteProgramNoForks(t *testing.T) {
	states, _, e := exploreAll(t, `
fn main() {
	let v = input()
	if v > 0 { print(1) } else { print(0) }
}`, []int64{5}, 0, 16) // input NOT symbolic
	if len(states) != 1 {
		t.Fatalf("concrete run must not fork, got %d paths", len(states))
	}
	if e.Branches() != 0 {
		t.Fatal("no symbolic branches expected")
	}
}

func TestCallerBreakComposition(t *testing.T) {
	p := bytecode.MustCompile(`
var g = 0
fn main() {
	let v = input()
	if v > 0 { g = 1 } else { g = 2 }
	g = 3
}`, "exp", bytecode.Options{})
	e := NewEngine(solver.New(solver.Options{}), 4)
	st := vm.NewState(p, nil, []int64{7})
	st.In.NSymbolic = 1
	m := vm.NewMachine(st, vm.NewRoundRobin())
	// Caller break on the first shared write to g.
	m.Break = func(s *vm.State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return in.Op == bytecode.STOREG
	}
	forks := 0
	res := e.RunForking(m, 100_000, func(sib *vm.State) { forks++ })
	if res.Kind != vm.StopBreak {
		t.Fatalf("want caller break, got %v", res.Kind)
	}
	if forks != 1 {
		t.Fatalf("the branch before the store must fork once, got %d", forks)
	}
	// The machine is parked exactly at the STOREG.
	th := st.Threads[st.Cur]
	fr := th.Top()
	if op := p.Funcs[fr.Fn].Code[fr.PC].Op; op != bytecode.STOREG {
		t.Fatalf("parked at %v, want STOREG", op)
	}
}

func TestSiblingPathConditionsDisjoint(t *testing.T) {
	states, _, _ := exploreAll(t, `
fn main() {
	let v = input()
	if v > 10 { print("big") } else { print("small") }
}`, []int64{42}, 1, 16)
	if len(states) != 2 {
		t.Fatalf("want 2 paths, got %d", len(states))
	}
	s := solver.New(solver.Options{})
	both := append(append([]expr.Expr{}, states[0].PathCond...), states[1].PathCond...)
	if _, r := s.Solve(both, nil); r != solver.Unsat {
		t.Fatalf("sibling path conditions should contradict, got %v", r)
	}
}
