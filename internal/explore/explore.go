// Package explore implements Portend's multi-path symbolic exploration
// (Algorithm 2, §3.3): running a state concolically and forking a sibling
// state whenever a branch on symbolic data has a feasible unexplored side.
//
// Forking works by checkpointing: when the current thread is about to
// execute a branch whose condition involves symbolic input (a JZ, an
// ASSERT, or a division whose divisor is symbolic), the engine asks the
// solver whether the direction *not* taken by the current concolic hints
// is feasible under the accumulated path condition. If so, the state is
// cloned and the clone's hints are replaced with a model of the negated
// constraint — the clone then naturally follows the other side when it
// resumes, and the VM's concolic policy records the matching path
// constraint. This reproduces KLEE-style state forking on top of a plain
// concolic interpreter.
package explore

import (
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/expr"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/vm"
)

// Engine drives forking executions.
//
// An Engine is safe for concurrent RunForking calls: the fork budget is
// a shared atomic counter, so workers exploring different paths of the
// same race draw from one pool of forks rather than each getting their
// own copy of the budget.
type Engine struct {
	Solver *solver.Solver

	// MaxForks bounds the total number of sibling states produced by this
	// engine across all RunForking calls (the paper's knob on the number
	// of paths explored, §3.3).
	MaxForks int
	forks    *sched.Counter

	// branches counts symbolic branch decisions encountered; it is the
	// "# dependent branches" axis of Fig 9.
	branches atomic.Int64
}

// NewEngine returns an engine with the given solver and fork budget.
func NewEngine(s *solver.Solver, maxForks int) *Engine {
	if maxForks <= 0 {
		maxForks = 64
	}
	return &Engine{Solver: s, MaxForks: maxForks, forks: sched.NewCounter(maxForks)}
}

// ForksLeft returns the remaining fork budget.
func (e *Engine) ForksLeft() int { return e.forks.Remaining() }

// Seed pre-charges a fresh engine with exploration a resumed mainline's
// skipped prefix already performed: branch decisions counted and
// fork-budget slots consumed. An exploration resumed from a symbolic
// checkpoint must seed its engine with the checkpoint's counters, or the
// continuation could fork more siblings (and report fewer dependent
// branches) than the same exploration started from the root — and fork-
// cap-bound verdicts would depend on whether a checkpoint was available.
func (e *Engine) Seed(branches, forksUsed int) {
	if branches > 0 {
		e.branches.Add(int64(branches))
	}
	for i := 0; i < forksUsed; i++ {
		e.forks.TryAcquire()
	}
}

// Branches returns the number of symbolic branch decisions encountered
// so far across all RunForking calls.
func (e *Engine) Branches() int { return int(e.branches.Load()) }

// forkCandidate inspects the instruction the current thread is about to
// execute and returns the (normalized, 0/1) branch condition if it is a
// symbolic fork point.
func forkCandidate(st *vm.State, tid int, in bytecode.Instr) (expr.Expr, bool) {
	th := st.Threads[tid]
	fr := th.Top()
	if fr == nil || len(fr.Stack) == 0 {
		return nil, false
	}
	top := fr.Stack[len(fr.Stack)-1]
	switch in.Op {
	case bytecode.JZ, bytecode.ASSERT:
		if !expr.IsConcrete(top) {
			return expr.NeZero(top), true
		}
	case bytecode.DIV, bytecode.MOD:
		if !expr.IsConcrete(top) {
			return expr.Ne(top, expr.NewConst(0)), true
		}
	}
	return nil, false
}

// RunForking runs m until it stops for a reason other than a symbolic
// branch. At each symbolic branch with a feasible unexplored side (and
// remaining fork budget), onFork is called with the sibling state, whose
// hints already steer it down the other side; the callback pairs it with a
// cloned controller and queues it. m.Break (the caller's breakpoint) is
// honored: RunForking composes it with the engine's own fork breakpoints
// and restores it on return.
func (e *Engine) RunForking(m *vm.Machine, budget int64, onFork func(sib *vm.State)) vm.RunResult {
	callerBreak := m.Break
	defer func() { m.Break = callerBreak }()

	for {
		var forkInstr bytecode.Instr
		sawFork := false
		m.Break = func(st *vm.State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
			if _, ok := forkCandidate(st, tid, in); ok {
				forkInstr = in
				sawFork = true
				return true
			}
			if callerBreak != nil && callerBreak(st, tid, pc, in) {
				sawFork = false
				return true
			}
			return false
		}
		res := m.Run(budget)
		if res.Kind != vm.StopBreak || !sawFork {
			return res
		}
		budget -= res.Steps
		if budget <= 0 {
			return vm.RunResult{Kind: vm.StopBudget}
		}

		// We are parked just before a symbolic branch.
		st := m.St
		tid := st.Cur
		cond, ok := forkCandidate(st, tid, forkInstr)
		if ok {
			e.branches.Add(1)
			taken, err := st.HintEval(cond)
			if err == nil && e.forks.Remaining() > 0 && onFork != nil {
				neg := expr.LNot(cond)
				if taken == 0 {
					neg = cond
				}
				q := make([]expr.Expr, 0, len(st.PathCond)+1)
				q = append(q, st.PathCond...)
				q = append(q, neg)
				model, sat := e.Solver.Solve(q, st.Hints)
				if sat == solver.Sat && e.forks.TryAcquire() {
					sib := st.Clone()
					for name, v := range model {
						sib.SetHint(name, v)
					}
					// Commit the sibling past the branch under its new
					// hints so it cannot re-fork the same point. A JZ is
					// not a scheduling point, so the controller is never
					// consulted during this single step.
					sm := vm.NewMachine(sib, vm.Sticky{})
					sm.Step()
					onFork(sib)
				}
			}
		}

		// Execute the branch instruction itself (the concolic policy
		// records the taken side's constraint), then resume running.
		m.Break = nil
		stepRes := m.Step()
		budget -= stepRes.Steps
		switch stepRes.Kind {
		case vm.StopBreak:
			// One instruction executed; keep going.
		default:
			// Finished, error (assert violation / div-by-zero on the
			// branch itself), deadlock, stuck, or budget: surface it.
			return stepRes
		}
	}
}
