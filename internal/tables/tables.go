// Package tables renders plain-text tables and simple ASCII charts for
// the evaluation harness (cmd/paper-eval) — the reproduction's equivalent
// of the paper's tables and figures.
package tables

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// New creates a table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Bars renders a labeled horizontal bar chart (for the accuracy figures).
type Bars struct {
	Title string
	rows  []barRow
}

type barRow struct {
	label string
	value float64 // 0..100
}

// NewBars creates a chart.
func NewBars(title string) *Bars { return &Bars{Title: title} }

// Add appends one bar (value in percent).
func (c *Bars) Add(label string, value float64) {
	c.rows = append(c.rows, barRow{label, value})
}

// String renders the chart.
func (c *Bars) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", c.Title, strings.Repeat("=", len(c.Title)))
	}
	width := 0
	for _, r := range c.rows {
		if len(r.label) > width {
			width = len(r.label)
		}
	}
	for _, r := range c.rows {
		n := int(r.value / 2) // 50 chars = 100%
		if n < 0 {
			n = 0
		}
		if n > 50 {
			n = 50
		}
		fmt.Fprintf(&b, "%-*s |%s %5.1f%%\n", width, r.label, strings.Repeat("#", n), r.value)
	}
	return b.String()
}

// Pct formats a ratio as a percentage string, with "n/a" for empty
// denominators.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}
