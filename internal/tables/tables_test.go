package tables

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("My Title", "Name", "Value")
	tb.Add("short", 1)
	tb.Add("a-much-longer-name", 12345)
	tb.Add("float", 3.14159)
	tb.Note("footnote %d", 7)
	s := tb.String()
	for _, want := range []string{"My Title", "Name", "a-much-longer-name", "12345", "3.14", "note: footnote 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	// Columns must align: every data row starts at the same offset.
	lines := strings.Split(s, "\n")
	var header string
	for _, l := range lines {
		if strings.HasPrefix(l, "Name") {
			header = l
		}
	}
	if header == "" {
		t.Fatal("no header line")
	}
	col := strings.Index(header, "Value")
	for _, l := range lines {
		if strings.HasPrefix(l, "short") {
			if l[col] != '1' {
				t.Fatalf("column misaligned:\n%s", s)
			}
		}
	}
}

func TestBarsRendering(t *testing.T) {
	c := NewBars("Accuracy")
	c.Add("prog-a", 50)
	c.Add("b", 100)
	c.Add("clamped", 150)
	c.Add("neg", -5)
	s := c.String()
	if !strings.Contains(s, "prog-a") || !strings.Contains(s, "#") {
		t.Fatalf("bad chart:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	count := func(sub string) int {
		for _, l := range lines {
			if strings.Contains(l, sub) {
				return strings.Count(l, "#")
			}
		}
		return -1
	}
	if count("prog-a") != 25 {
		t.Fatalf("50%% should render 25 hashes, got %d", count("prog-a"))
	}
	if count("b ") != 50 || count("clamped") != 50 {
		t.Fatal("100%%+ must clamp at 50 hashes")
	}
	if count("neg") != 0 {
		t.Fatal("negative values must clamp at 0")
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 2) != "50%" || Pct(93, 93) != "100%" || Pct(0, 5) != "0%" {
		t.Fatal("pct formatting wrong")
	}
	if Pct(1, 0) != "n/a" {
		t.Fatal("division by zero must render n/a")
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "A", "B")
	tb.Add("only-one")
	tb.Add("x", "y", "z") // extra cell beyond headers
	s := tb.String()
	if !strings.Contains(s, "only-one") || !strings.Contains(s, "z") {
		t.Fatalf("ragged rows mishandled:\n%s", s)
	}
}
