// Package expr implements the immutable symbolic expression language used
// throughout the Portend reproduction.
//
// Expressions form a DAG over 64-bit signed integers. Boolean values are
// represented as the integers 0 (false) and 1 (true); the comparison and
// logical operators always produce 0 or 1. Concrete values are Const nodes,
// program inputs that have been marked symbolic are Sym nodes, and the
// arithmetic/relational/logical operators combine them.
//
// All constructors perform constant folding and light algebraic
// simplification, so an expression tree built from concrete operands is
// always a single Const. This mirrors how KLEE keeps fully-concrete states
// cheap while still tracking constraints for symbolic ones.
//
// Expressions are immutable and may be shared freely between checkpointed
// virtual-machine states; cloning a VM state never needs to copy them.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Op identifies an operator of a Unary or Binary expression.
type Op uint8

// Operators. Comparison and logical operators evaluate to 0 or 1.
const (
	OpInvalid Op = iota

	// binary arithmetic
	OpAdd
	OpSub
	OpMul
	OpDiv // truncated toward zero, like Go
	OpMod

	// binary bitwise
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// binary comparison (result 0/1)
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// binary logical (operands normalized to 0/1, result 0/1)
	OpLAnd
	OpLOr

	// unary
	OpNeg  // arithmetic negation
	OpBNot // bitwise complement
	OpLNot // logical not (result 0/1)
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpLAnd: "&&", OpLOr: "||",
	OpNeg: "-", OpBNot: "~", OpLNot: "!",
}

// String returns the source-level spelling of the operator.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsComparison reports whether op is one of the six relational operators.
func (op Op) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsLogical reports whether op is a logical connective (including OpLNot).
func (op Op) IsLogical() bool {
	switch op {
	case OpLAnd, OpLOr, OpLNot:
		return true
	}
	return false
}

// Expr is an immutable symbolic expression over int64.
type Expr interface {
	// String renders the expression in PIL-like syntax.
	String() string
	// isExpr restricts implementations to this package.
	isExpr()
}

// Const is a concrete 64-bit integer.
type Const struct {
	Val int64

	h uint64 // memoized structural hash; 0 = not memoized
}

// Sym is a symbolic variable (an unconstrained program input). Symbols are
// identified by name; the VM guarantees unique names per execution
// ("input:3", "arg:1", ...).
type Sym struct {
	Name string

	h uint64
}

// Unary applies Op to a single operand.
type Unary struct {
	Op Op
	X  Expr

	h uint64
}

// Binary applies Op to two operands.
type Binary struct {
	Op   Op
	L, R Expr

	h uint64
}

func (*Const) isExpr()  {}
func (*Sym) isExpr()    {}
func (*Unary) isExpr()  {}
func (*Binary) isExpr() {}

func (c *Const) String() string { return fmt.Sprintf("%d", c.Val) }
func (s *Sym) String() string   { return s.Name }
func (u *Unary) String() string { return fmt.Sprintf("%s(%s)", u.Op, u.X) }
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// The intern table: one shared immutable Const per value in
// [InternMin, InternMax). These values — loop counters, array indices,
// small bounds, flags — dominate real programs, and the VM mints a Const
// on every PUSH, local/global initialization, and spawn, so serving them
// from the table removes an allocation from nearly every interpreted
// arithmetic instruction. Interned nodes are constructed once during
// package init and never written afterwards, which is what makes sharing
// them between concurrent classifiers safe.
const (
	// InternMin is the smallest interned constant value.
	InternMin = -128
	// InternMax is one past the largest interned constant value.
	InternMax = 1024
)

var internTab = func() [InternMax - InternMin]*Const {
	var t [InternMax - InternMin]*Const
	for i := range t {
		v := int64(i) + InternMin
		t[i] = &Const{Val: v, h: hashConst(v)}
	}
	return t
}()

// Common constants, shared to reduce allocation.
var (
	zero = internTab[0-InternMin]
	one  = internTab[1-InternMin]
)

// Interned reports whether NewConst(v) is served from the intern table
// (i.e. without allocating). The VM uses this to count intern hits on its
// hot path without reaching into the table itself.
func Interned(v int64) bool { return v >= InternMin && v < InternMax }

// NewConst returns a Const with the given value. Values in
// [InternMin, InternMax) are served from the shared intern table and do
// not allocate.
func NewConst(v int64) *Const {
	if v >= InternMin && v < InternMax {
		return internTab[v-InternMin]
	}
	return &Const{Val: v, h: hashConst(v)}
}

// Bool converts a Go bool to the canonical 0/1 Const.
func Bool(b bool) *Const {
	if b {
		return one
	}
	return zero
}

// NewSym returns a symbolic variable with the given name.
func NewSym(name string) *Sym { return &Sym{Name: name, h: hashSym(name)} }

// ConstVal reports whether e is a Const and returns its value.
func ConstVal(e Expr) (int64, bool) {
	if c, ok := e.(*Const); ok {
		return c.Val, true
	}
	return 0, false
}

// IsConcrete reports whether e contains no symbolic variables.
// It is equivalent to len(Vars(e)) == 0 but does not allocate.
func IsConcrete(e Expr) bool {
	switch v := e.(type) {
	case *Const:
		return true
	case *Sym:
		return false
	case *Unary:
		return IsConcrete(v.X)
	case *Binary:
		return IsConcrete(v.L) && IsConcrete(v.R)
	}
	return false
}

// truthy maps an int64 to canonical bool form.
func truthy(v int64) bool { return v != 0 }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// applyBinary evaluates op on two concrete values. ok is false when the
// operation is undefined (division or modulo by zero, shift out of range);
// undefined operations are left unfolded so the VM can raise a runtime
// error with proper context.
func applyBinary(op Op, l, r int64) (v int64, ok bool) {
	switch op {
	case OpAdd:
		return l + r, true
	case OpSub:
		return l - r, true
	case OpMul:
		return l * r, true
	case OpDiv:
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case OpMod:
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case OpAnd:
		return l & r, true
	case OpOr:
		return l | r, true
	case OpXor:
		return l ^ r, true
	case OpShl:
		if r < 0 || r > 63 {
			return 0, false
		}
		return l << uint(r), true
	case OpShr:
		if r < 0 || r > 63 {
			return 0, false
		}
		return l >> uint(r), true
	case OpEq:
		return b2i(l == r), true
	case OpNe:
		return b2i(l != r), true
	case OpLt:
		return b2i(l < r), true
	case OpLe:
		return b2i(l <= r), true
	case OpGt:
		return b2i(l > r), true
	case OpGe:
		return b2i(l >= r), true
	case OpLAnd:
		return b2i(truthy(l) && truthy(r)), true
	case OpLOr:
		return b2i(truthy(l) || truthy(r)), true
	}
	return 0, false
}

// applyUnary evaluates op on a concrete value.
func applyUnary(op Op, x int64) (int64, bool) {
	switch op {
	case OpNeg:
		return -x, true
	case OpBNot:
		return ^x, true
	case OpLNot:
		return b2i(!truthy(x)), true
	}
	return 0, false
}

// NewBinary builds op(l, r), folding constants and applying algebraic
// identities. The result of a comparison or logical operator is always a
// 0/1-valued expression.
func NewBinary(op Op, l, r Expr) Expr {
	lc, lok := ConstVal(l)
	rc, rok := ConstVal(r)
	if lok && rok {
		if v, ok := applyBinary(op, lc, rc); ok {
			return NewConst(v)
		}
		// e.g. division by constant zero
		return &Binary{Op: op, L: l, R: r, h: hashBinary(op, Hash(l), Hash(r))}
	}

	// Algebraic identities on one concrete operand.
	switch op {
	case OpAdd:
		if lok && lc == 0 {
			return r
		}
		if rok && rc == 0 {
			return l
		}
	case OpSub:
		if rok && rc == 0 {
			return l
		}
		if Equal(l, r) {
			return zero
		}
	case OpMul:
		if lok && lc == 0 || rok && rc == 0 {
			return zero
		}
		if lok && lc == 1 {
			return r
		}
		if rok && rc == 1 {
			return l
		}
	case OpDiv:
		if rok && rc == 1 {
			return l
		}
	case OpAnd:
		if lok && lc == 0 || rok && rc == 0 {
			return zero
		}
	case OpOr, OpXor:
		if lok && lc == 0 {
			return r
		}
		if rok && rc == 0 {
			return l
		}
	case OpShl, OpShr:
		if rok && rc == 0 {
			return l
		}
	case OpEq:
		if Equal(l, r) {
			return one
		}
	case OpNe:
		if Equal(l, r) {
			return zero
		}
	case OpLe, OpGe:
		if Equal(l, r) {
			return one
		}
	case OpLt, OpGt:
		if Equal(l, r) {
			return zero
		}
	case OpLAnd:
		if lok {
			if !truthy(lc) {
				return zero
			}
			return NeZero(r)
		}
		if rok {
			if !truthy(rc) {
				return zero
			}
			return NeZero(l)
		}
	case OpLOr:
		if lok {
			if truthy(lc) {
				return one
			}
			return NeZero(r)
		}
		if rok {
			if truthy(rc) {
				return one
			}
			return NeZero(l)
		}
	}
	return &Binary{Op: op, L: l, R: r, h: hashBinary(op, Hash(l), Hash(r))}
}

// NewUnary builds op(x) with constant folding and double-negation
// elimination.
func NewUnary(op Op, x Expr) Expr {
	if c, ok := ConstVal(x); ok {
		if v, ok := applyUnary(op, c); ok {
			return NewConst(v)
		}
	}
	if u, ok := x.(*Unary); ok && u.Op == op && (op == OpNeg || op == OpBNot) {
		return u.X // -(-x) = x, ^(^x) = x
	}
	if op == OpLNot {
		// !(a cmp b) inverts the comparison; keeps constraints small.
		if b, ok := x.(*Binary); ok {
			if inv, ok := invertCmp(b.Op); ok {
				return NewBinary(inv, b.L, b.R)
			}
		}
		if u, ok := x.(*Unary); ok && u.Op == OpLNot {
			return NeZero(u.X) // !!x = (x != 0)
		}
	}
	return &Unary{Op: op, X: x, h: hashUnary(op, Hash(x))}
}

func invertCmp(op Op) (Op, bool) {
	switch op {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	}
	return OpInvalid, false
}

// Convenience constructors.

// Add returns l + r.
func Add(l, r Expr) Expr { return NewBinary(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return NewBinary(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return NewBinary(OpMul, l, r) }

// Div returns l / r (truncated).
func Div(l, r Expr) Expr { return NewBinary(OpDiv, l, r) }

// Mod returns l % r.
func Mod(l, r Expr) Expr { return NewBinary(OpMod, l, r) }

// Eq returns l == r as a 0/1 expression.
func Eq(l, r Expr) Expr { return NewBinary(OpEq, l, r) }

// Ne returns l != r as a 0/1 expression.
func Ne(l, r Expr) Expr { return NewBinary(OpNe, l, r) }

// Lt returns l < r as a 0/1 expression.
func Lt(l, r Expr) Expr { return NewBinary(OpLt, l, r) }

// Le returns l <= r as a 0/1 expression.
func Le(l, r Expr) Expr { return NewBinary(OpLe, l, r) }

// Gt returns l > r as a 0/1 expression.
func Gt(l, r Expr) Expr { return NewBinary(OpGt, l, r) }

// Ge returns l >= r as a 0/1 expression.
func Ge(l, r Expr) Expr { return NewBinary(OpGe, l, r) }

// LAnd returns l && r as a 0/1 expression.
func LAnd(l, r Expr) Expr { return NewBinary(OpLAnd, l, r) }

// LOr returns l || r as a 0/1 expression.
func LOr(l, r Expr) Expr { return NewBinary(OpLOr, l, r) }

// LNot returns !x as a 0/1 expression.
func LNot(x Expr) Expr { return NewUnary(OpLNot, x) }

// Neg returns -x.
func Neg(x Expr) Expr { return NewUnary(OpNeg, x) }

// NeZero normalizes x to a 0/1 expression (x != 0). Expressions that are
// already comparisons or logical connectives are returned unchanged.
func NeZero(x Expr) Expr {
	if c, ok := ConstVal(x); ok {
		return Bool(truthy(c))
	}
	switch v := x.(type) {
	case *Binary:
		if v.Op.IsComparison() || v.Op.IsLogical() {
			return x
		}
	case *Unary:
		if v.Op == OpLNot {
			return x
		}
	}
	return NewBinary(OpNe, x, zero)
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	if a == b {
		return true
	}
	// Memoized structural hashes are pure functions of structure, so a
	// mismatch proves inequality without walking either tree. (0 means
	// "not memoized" — hand-built node — and disables the fast path.)
	if ha, hb := memoHash(a), memoHash(b); ha != 0 && hb != 0 && ha != hb {
		return false
	}
	switch av := a.(type) {
	case *Const:
		bv, ok := b.(*Const)
		return ok && av.Val == bv.Val
	case *Sym:
		bv, ok := b.(*Sym)
		return ok && av.Name == bv.Name
	case *Unary:
		bv, ok := b.(*Unary)
		return ok && av.Op == bv.Op && Equal(av.X, bv.X)
	case *Binary:
		bv, ok := b.(*Binary)
		return ok && av.Op == bv.Op && Equal(av.L, bv.L) && Equal(av.R, bv.R)
	}
	return false
}

// Assignment maps symbolic variable names to concrete values.
type Assignment map[string]int64

// EvalError describes a failed evaluation: an unbound symbol or an undefined
// arithmetic operation.
type EvalError struct {
	Reason string
}

func (e *EvalError) Error() string { return "expr: " + e.Reason }

// Eval evaluates e under the assignment. Unbound symbols and undefined
// operations (division by zero, shift out of range) yield an EvalError.
func Eval(e Expr, env Assignment) (int64, error) {
	switch v := e.(type) {
	case *Const:
		return v.Val, nil
	case *Sym:
		val, ok := env[v.Name]
		if !ok {
			return 0, &EvalError{Reason: "unbound symbol " + v.Name}
		}
		return val, nil
	case *Unary:
		x, err := Eval(v.X, env)
		if err != nil {
			return 0, err
		}
		r, ok := applyUnary(v.Op, x)
		if !ok {
			return 0, &EvalError{Reason: "undefined unary op " + v.Op.String()}
		}
		return r, nil
	case *Binary:
		l, err := Eval(v.L, env)
		if err != nil {
			return 0, err
		}
		// Short-circuit semantics for logical connectives.
		switch v.Op {
		case OpLAnd:
			if !truthy(l) {
				return 0, nil
			}
		case OpLOr:
			if truthy(l) {
				return 1, nil
			}
		}
		r, err := Eval(v.R, env)
		if err != nil {
			return 0, err
		}
		res, ok := applyBinary(v.Op, l, r)
		if !ok {
			return 0, &EvalError{Reason: fmt.Sprintf("undefined operation %d %s %d", l, v.Op, r)}
		}
		return res, nil
	}
	return 0, &EvalError{Reason: "unknown expression node"}
}

// Substitute replaces symbols bound in env with constants and re-folds the
// expression. Symbols absent from env remain symbolic.
func Substitute(e Expr, env Assignment) Expr {
	switch v := e.(type) {
	case *Const:
		return v
	case *Sym:
		if val, ok := env[v.Name]; ok {
			return NewConst(val)
		}
		return v
	case *Unary:
		return NewUnary(v.Op, Substitute(v.X, env))
	case *Binary:
		return NewBinary(v.Op, Substitute(v.L, env), Substitute(v.R, env))
	}
	return e
}

// Vars returns the names of all symbolic variables in e, sorted and
// de-duplicated.
func Vars(e Expr) []string {
	set := map[string]struct{}{}
	collectVars(e, set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CollectVars adds the names of all symbolic variables in e to set.
func CollectVars(e Expr, set map[string]struct{}) { collectVars(e, set) }

func collectVars(e Expr, set map[string]struct{}) {
	switch v := e.(type) {
	case *Sym:
		set[v.Name] = struct{}{}
	case *Unary:
		collectVars(v.X, set)
	case *Binary:
		collectVars(v.L, set)
		collectVars(v.R, set)
	}
}

// Size returns the number of nodes in the expression tree. Used to bound
// constraint growth during symbolic execution.
func Size(e Expr) int {
	switch v := e.(type) {
	case *Const, *Sym:
		return 1
	case *Unary:
		return 1 + Size(v.X)
	case *Binary:
		return 1 + Size(v.L) + Size(v.R)
	}
	return 1
}

// FormatList renders a slice of expressions as a comma-separated string;
// handy in debug reports.
func FormatList(es []Expr) string {
	var b strings.Builder
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	return b.String()
}
