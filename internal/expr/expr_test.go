package expr

import (
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	tests := []struct {
		name string
		got  Expr
		want int64
	}{
		{"add", Add(NewConst(2), NewConst(3)), 5},
		{"sub", Sub(NewConst(2), NewConst(3)), -1},
		{"mul", Mul(NewConst(4), NewConst(3)), 12},
		{"div", Div(NewConst(7), NewConst(2)), 3},
		{"div-neg", Div(NewConst(-7), NewConst(2)), -3},
		{"mod", Mod(NewConst(7), NewConst(3)), 1},
		{"mod-neg", Mod(NewConst(-7), NewConst(3)), -1},
		{"eq-true", Eq(NewConst(5), NewConst(5)), 1},
		{"eq-false", Eq(NewConst(5), NewConst(6)), 0},
		{"ne", Ne(NewConst(5), NewConst(6)), 1},
		{"lt", Lt(NewConst(5), NewConst(6)), 1},
		{"le", Le(NewConst(6), NewConst(6)), 1},
		{"gt", Gt(NewConst(7), NewConst(6)), 1},
		{"ge", Ge(NewConst(5), NewConst(6)), 0},
		{"land", LAnd(NewConst(1), NewConst(7)), 1},
		{"land-false", LAnd(NewConst(1), NewConst(0)), 0},
		{"lor", LOr(NewConst(0), NewConst(0)), 0},
		{"lnot", LNot(NewConst(0)), 1},
		{"neg", Neg(NewConst(3)), -3},
		{"bnot", NewUnary(OpBNot, NewConst(0)), -1},
		{"shl", NewBinary(OpShl, NewConst(1), NewConst(4)), 16},
		{"shr", NewBinary(OpShr, NewConst(16), NewConst(2)), 4},
		{"and", NewBinary(OpAnd, NewConst(6), NewConst(3)), 2},
		{"or", NewBinary(OpOr, NewConst(6), NewConst(3)), 7},
		{"xor", NewBinary(OpXor, NewConst(6), NewConst(3)), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, ok := ConstVal(tt.got)
			if !ok {
				t.Fatalf("expected const, got %s", tt.got)
			}
			if c != tt.want {
				t.Fatalf("got %d, want %d", c, tt.want)
			}
		})
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	e := Div(NewConst(5), NewConst(0))
	if _, ok := ConstVal(e); ok {
		t.Fatal("division by zero must not fold to a constant")
	}
	if _, err := Eval(e, nil); err == nil {
		t.Fatal("evaluating division by zero must error")
	}
	m := Mod(NewConst(5), NewConst(0))
	if _, ok := ConstVal(m); ok {
		t.Fatal("modulo by zero must not fold to a constant")
	}
}

func TestIdentities(t *testing.T) {
	x := NewSym("x")
	tests := []struct {
		name string
		got  Expr
		want Expr
	}{
		{"x+0", Add(x, NewConst(0)), x},
		{"0+x", Add(NewConst(0), x), x},
		{"x-0", Sub(x, NewConst(0)), x},
		{"x-x", Sub(x, x), NewConst(0)},
		{"x*1", Mul(x, NewConst(1)), x},
		{"1*x", Mul(NewConst(1), x), x},
		{"x*0", Mul(x, NewConst(0)), NewConst(0)},
		{"x/1", Div(x, NewConst(1)), x},
		{"x==x", Eq(x, x), NewConst(1)},
		{"x!=x", Ne(x, x), NewConst(0)},
		{"x<=x", Le(x, x), NewConst(1)},
		{"x<x", Lt(x, x), NewConst(0)},
		{"neg-neg", Neg(Neg(x)), x},
		{"land-true", LAnd(NewConst(1), Gt(x, NewConst(0))), Gt(x, NewConst(0))},
		{"land-false", LAnd(NewConst(0), x), NewConst(0)},
		{"lor-true", LOr(NewConst(5), x), NewConst(1)},
		{"lor-false", LOr(NewConst(0), Gt(x, NewConst(0))), Gt(x, NewConst(0))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !Equal(tt.got, tt.want) {
				t.Fatalf("got %s, want %s", tt.got, tt.want)
			}
		})
	}
}

func TestLNotInvertsComparisons(t *testing.T) {
	x := NewSym("x")
	e := LNot(Lt(x, NewConst(5)))
	want := Ge(x, NewConst(5))
	if !Equal(e, want) {
		t.Fatalf("got %s, want %s", e, want)
	}
	// Double negation restores a 0/1 view.
	e2 := LNot(LNot(Gt(x, NewConst(0))))
	if !Equal(e2, Gt(x, NewConst(0))) {
		t.Fatalf("double negation: got %s", e2)
	}
}

func TestEvalWithAssignment(t *testing.T) {
	x, y := NewSym("x"), NewSym("y")
	e := Add(Mul(x, NewConst(3)), y)
	v, err := Eval(e, Assignment{"x": 4, "y": 5})
	if err != nil {
		t.Fatal(err)
	}
	if v != 17 {
		t.Fatalf("got %d, want 17", v)
	}
	if _, err := Eval(e, Assignment{"x": 4}); err == nil {
		t.Fatal("expected unbound-symbol error")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// (0 && (1/0)) must evaluate to 0, not error.
	e := &Binary{Op: OpLAnd, L: NewConst(0), R: &Binary{Op: OpDiv, L: NewConst(1), R: NewConst(0)}}
	v, err := Eval(e, nil)
	if err != nil || v != 0 {
		t.Fatalf("short-circuit and failed: v=%d err=%v", v, err)
	}
	e2 := &Binary{Op: OpLOr, L: NewConst(1), R: &Binary{Op: OpDiv, L: NewConst(1), R: NewConst(0)}}
	v, err = Eval(e2, nil)
	if err != nil || v != 1 {
		t.Fatalf("short-circuit or failed: v=%d err=%v", v, err)
	}
}

func TestSubstitute(t *testing.T) {
	x, y := NewSym("x"), NewSym("y")
	e := Add(x, Mul(y, NewConst(2)))
	got := Substitute(e, Assignment{"y": 10})
	want := Add(x, NewConst(20))
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", got, want)
	}
	got2 := Substitute(got, Assignment{"x": 1})
	if c, ok := ConstVal(got2); !ok || c != 21 {
		t.Fatalf("full substitution: got %s", got2)
	}
}

func TestVars(t *testing.T) {
	x, y := NewSym("x"), NewSym("y")
	e := LAnd(Lt(x, y), Gt(Add(x, NewConst(1)), NewConst(0)))
	vars := Vars(e)
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Fatalf("got %v", vars)
	}
	if len(Vars(NewConst(3))) != 0 {
		t.Fatal("constant should have no vars")
	}
}

func TestIsConcrete(t *testing.T) {
	if !IsConcrete(Add(NewConst(1), NewConst(2))) {
		t.Fatal("const expr should be concrete")
	}
	if IsConcrete(Add(NewSym("x"), NewConst(2))) {
		t.Fatal("symbolic expr should not be concrete")
	}
}

func TestNeZero(t *testing.T) {
	x := NewSym("x")
	if !Equal(NeZero(NewConst(7)), NewConst(1)) {
		t.Fatal("NeZero(7) != 1")
	}
	if !Equal(NeZero(NewConst(0)), NewConst(0)) {
		t.Fatal("NeZero(0) != 0")
	}
	cmp := Lt(x, NewConst(3))
	if !Equal(NeZero(cmp), cmp) {
		t.Fatal("NeZero should leave comparisons unchanged")
	}
	if !Equal(NeZero(x), Ne(x, NewConst(0))) {
		t.Fatal("NeZero(x) should be x != 0")
	}
}

func TestSize(t *testing.T) {
	x := NewSym("x")
	e := Add(x, Mul(x, NewSym("y")))
	if Size(e) != 5 {
		t.Fatalf("size = %d, want 5", Size(e))
	}
}

func TestStringRendering(t *testing.T) {
	x := NewSym("x")
	e := Add(x, NewConst(3))
	if e.String() != "(x + 3)" {
		t.Fatalf("got %q", e.String())
	}
	u := Neg(x)
	if u.String() != "-(x)" {
		t.Fatalf("got %q", u.String())
	}
}

func TestFormatList(t *testing.T) {
	s := FormatList([]Expr{NewConst(1), NewSym("x")})
	if s != "1, x" {
		t.Fatalf("got %q", s)
	}
}

// Property: folding a binary op over two constants always matches the direct
// machine arithmetic for defined operations.
func TestQuickFoldMatchesGoArithmetic(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(a, b int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		e := NewBinary(op, NewConst(a), NewConst(b))
		c, ok := ConstVal(e)
		if !ok {
			return false
		}
		want, _ := applyBinary(op, a, b)
		return c == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Eval(Substitute(e, env), nil) == Eval(e, env) for fully bound
// environments, on a family of generated expressions.
func TestQuickSubstituteConsistentWithEval(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y := NewSym("x"), NewSym("y")
		e := Add(Mul(x, NewConst(a%1000)), Sub(y, NewConst(b%1000)))
		env := Assignment{"x": a % 5000, "y": c % 5000}
		direct, err1 := Eval(e, env)
		sub := Substitute(e, env)
		folded, ok := ConstVal(sub)
		if err1 != nil || !ok {
			return false
		}
		return direct == folded
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: NewBinary never loses information — evaluating the built
// expression equals applying the op to evaluated operands (defined ops only).
func TestQuickSimplificationSound(t *testing.T) {
	f := func(a, b int64, pickL, pickR bool, opIdx uint8) bool {
		ops := []Op{OpAdd, OpSub, OpMul, OpEq, OpLt, OpLAnd, OpLOr}
		op := ops[int(opIdx)%len(ops)]
		env := Assignment{"x": a % 100, "y": b % 100}
		var l, r Expr
		if pickL {
			l = NewSym("x")
		} else {
			l = NewConst(a % 100)
		}
		if pickR {
			r = NewSym("y")
		} else {
			r = NewConst(b % 100)
		}
		e := NewBinary(op, l, r)
		got, err := Eval(e, env)
		if err != nil {
			return false
		}
		lv, _ := Eval(l, env)
		rv, _ := Eval(r, env)
		want, _ := applyBinary(op, lv, rv)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
