package expr

// Structural hashing.
//
// Every node built through this package's constructors carries a hash of
// its structure (operator tags, constant values, symbol names), memoized
// in the unexported h field at construction time — before the node is
// published, so readers never observe a write. Because expressions form a
// DAG of immutable nodes, a parent's hash is computed from its children's
// memoized hashes in O(1); the whole tree is never re-walked.
//
// The hash is a pure function of structure: structurally equal
// expressions always hash equal, so a hash mismatch proves inequality
// (the fast path in Equal) and the solver cache can key queries by hash,
// verifying the rare same-hash candidates with a structural comparison
// instead of rendering strings.
//
// A memoized hash is never 0; the zero value marks nodes built outside
// the constructors (struct literals in tests), for which Hash recomputes
// on the fly without memoizing — recomputing is race-free where a lazy
// write would not be.

// Mix64 is the SplitMix64 finalizer. Every step (odd-constant add,
// xor-shift, odd-constant multiply) is a bijection on uint64, so the
// whole function is one too: distinct single-word inputs never collide.
// It is the repository's one word mixer — the expression hashes here,
// the solver's cache keys, and the engine's alternate-schedule seed
// derivation all compose it rather than keeping private copies.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString is allocation-free FNV-1a over s. Compose the result with
// Mix64 to spread the (weakly mixed) FNV state across all 64 bits.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Distinct seeds keep the node kinds in separate hash families, so e.g.
// Const(5) and Sym("5") cannot collide by construction shape alone.
const (
	hashSeedConst  = 0xc6a4a7935bd1e995
	hashSeedSym    = 0x9ddfea08eb382d69
	hashSeedUnary  = 0xa0761d6478bd642f
	hashSeedBinary = 0xe7037ed1a0b428db
)

// nonzero maps the impossible-to-memoize value 0 to an arbitrary fixed
// hash so the h field's zero value stays free to mean "not memoized".
func nonzero(h uint64) uint64 {
	if h == 0 {
		return 0x1d8e4e27c47d124f
	}
	return h
}

func hashConst(v int64) uint64 {
	return nonzero(Mix64(uint64(v) ^ hashSeedConst))
}

func hashSym(name string) uint64 {
	return nonzero(Mix64(HashString(name) ^ hashSeedSym))
}

func hashUnary(op Op, xh uint64) uint64 {
	return nonzero(Mix64(xh ^ Mix64(uint64(op)^hashSeedUnary)))
}

func hashBinary(op Op, lh, rh uint64) uint64 {
	// Asymmetric combination: L and R must not commute (a-b != b-a).
	h := Mix64(uint64(op) ^ hashSeedBinary)
	h = Mix64(h ^ lh)
	h = Mix64(h ^ rh)
	return nonzero(h)
}

// Hash returns the structural hash of e. For constructor-built nodes this
// is a field read; nodes assembled by hand (zero h) are hashed on the fly.
func Hash(e Expr) uint64 {
	switch v := e.(type) {
	case *Const:
		if v.h != 0 {
			return v.h
		}
		return hashConst(v.Val)
	case *Sym:
		if v.h != 0 {
			return v.h
		}
		return hashSym(v.Name)
	case *Unary:
		if v.h != 0 {
			return v.h
		}
		return hashUnary(v.Op, Hash(v.X))
	case *Binary:
		if v.h != 0 {
			return v.h
		}
		return hashBinary(v.Op, Hash(v.L), Hash(v.R))
	}
	return nonzero(0)
}

// memoHash returns the memoized hash, or 0 when the node was built
// outside the constructors. Used by Equal's fast path, which must not pay
// for recomputation.
func memoHash(e Expr) uint64 {
	switch v := e.(type) {
	case *Const:
		return v.h
	case *Sym:
		return v.h
	case *Unary:
		return v.h
	case *Binary:
		return v.h
	}
	return 0
}

// HashList folds the hashes of es in order into one value; the solver
// cache uses it to key flattened conjunct lists. Order-sensitive, like
// the computation it keys.
func HashList(es []Expr) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, e := range es {
		h = Mix64(h ^ Hash(e))
	}
	return h
}
