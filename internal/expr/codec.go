package expr

import "fmt"

// Node kinds of the wire form.
const (
	WireConst uint8 = iota
	WireSym
	WireUnary
	WireBinary
)

// NodeWire is one expression node in flattened wire form. Expressions
// serialize as a topologically ordered node table — children strictly
// before parents — with A/B holding child indices, so DAG sharing
// survives the round trip: a node referenced twice is stored once and
// decoded once.
type NodeWire struct {
	Kind uint8
	Op   uint8
	Val  int64  // WireConst
	Name string // WireSym
	A, B int32  // child indices (WireUnary uses A; WireBinary uses A, B)
}

// Encoder flattens expression DAGs into a shared node table. One encoder
// may flatten many expressions (a whole VM state's cells, a solver
// query's conjuncts); nodes shared between them are emitted once.
type Encoder struct {
	nodes []NodeWire
	idx   map[Expr]int32
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{idx: make(map[Expr]int32)}
}

// Add flattens x into the table and returns its node index (-1 for nil).
// Identical pointers dedupe; structurally equal but distinct nodes are
// stored separately, which is harmless (decoding re-folds them).
func (e *Encoder) Add(x Expr) int32 {
	if x == nil {
		return -1
	}
	if i, ok := e.idx[x]; ok {
		return i
	}
	var n NodeWire
	switch v := x.(type) {
	case *Const:
		n = NodeWire{Kind: WireConst, Val: v.Val}
	case *Sym:
		n = NodeWire{Kind: WireSym, Name: v.Name}
	case *Unary:
		n = NodeWire{Kind: WireUnary, Op: uint8(v.Op), A: e.Add(v.X)}
	case *Binary:
		n = NodeWire{Kind: WireBinary, Op: uint8(v.Op), A: e.Add(v.L), B: e.Add(v.R)}
	}
	i := int32(len(e.nodes))
	e.nodes = append(e.nodes, n)
	e.idx[x] = i
	return i
}

// AddList flattens a slice of expressions, returning their indices.
func (e *Encoder) AddList(xs []Expr) []int32 {
	if xs == nil {
		return nil
	}
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = e.Add(x)
	}
	return out
}

// Nodes returns the accumulated node table.
func (e *Encoder) Nodes() []NodeWire { return e.nodes }

// DecodeNodes rebuilds every expression of a node table, index-aligned
// with the input. Nodes are rebuilt through the package constructors:
// every stored tree was constructor-built (a normal form the constructors
// are fixpoints of), so re-folding reproduces the exact structure — and
// restores the memoized hashes and intern-table sharing serialization
// cannot carry.
func DecodeNodes(nodes []NodeWire) ([]Expr, error) {
	built := make([]Expr, len(nodes))
	child := func(i int, ref int32) (Expr, error) {
		if ref < 0 || int(ref) >= i {
			return nil, fmt.Errorf("expr: node %d references %d (not a prior node)", i, ref)
		}
		return built[ref], nil
	}
	for i, n := range nodes {
		switch n.Kind {
		case WireConst:
			built[i] = NewConst(n.Val)
		case WireSym:
			built[i] = NewSym(n.Name)
		case WireUnary:
			x, err := child(i, n.A)
			if err != nil {
				return nil, err
			}
			built[i] = NewUnary(Op(n.Op), x)
		case WireBinary:
			l, err := child(i, n.A)
			if err != nil {
				return nil, err
			}
			r, err := child(i, n.B)
			if err != nil {
				return nil, err
			}
			built[i] = NewBinary(Op(n.Op), l, r)
		default:
			return nil, fmt.Errorf("expr: unknown wire node kind %d", n.Kind)
		}
	}
	return built, nil
}

// Decoder resolves node-table indices back to expressions.
type Decoder struct {
	built []Expr
}

// NewDecoder decodes the node table once and serves index lookups.
func NewDecoder(nodes []NodeWire) (*Decoder, error) {
	built, err := DecodeNodes(nodes)
	if err != nil {
		return nil, err
	}
	return &Decoder{built: built}, nil
}

// Get returns the expression at index i (-1 yields nil).
func (d *Decoder) Get(i int32) (Expr, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || int(i) >= len(d.built) {
		return nil, fmt.Errorf("expr: wire index %d out of range", i)
	}
	return d.built[i], nil
}

// GetList resolves a slice of indices.
func (d *Decoder) GetList(refs []int32) ([]Expr, error) {
	if refs == nil {
		return nil, nil
	}
	out := make([]Expr, len(refs))
	for i, r := range refs {
		x, err := d.Get(r)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}
