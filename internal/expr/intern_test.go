package expr

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternIdentityAndBounds(t *testing.T) {
	for _, v := range []int64{InternMin, -1, 0, 1, 2, 127, InternMax - 1} {
		a, b := NewConst(v), NewConst(v)
		if a != b {
			t.Errorf("NewConst(%d) not interned: distinct pointers", v)
		}
		if a.Val != v {
			t.Errorf("interned NewConst(%d).Val = %d", v, a.Val)
		}
		if !Interned(v) {
			t.Errorf("Interned(%d) = false inside the table range", v)
		}
	}
	for _, v := range []int64{InternMin - 1, InternMax, 1 << 40, -(1 << 40)} {
		if Interned(v) {
			t.Errorf("Interned(%d) = true outside the table range", v)
		}
		if a, b := NewConst(v), NewConst(v); a == b {
			t.Errorf("NewConst(%d): out-of-range constants unexpectedly shared", v)
		} else if a.Val != v || b.Val != v {
			t.Errorf("NewConst(%d) wrong value", v)
		}
	}
}

func TestStructuralHash(t *testing.T) {
	x, y := NewSym("x"), NewSym("y")
	same := []Expr{
		NewBinary(OpAdd, x, NewConst(4)),
		NewBinary(OpAdd, NewSym("x"), NewConst(4)),
	}
	if Hash(same[0]) != Hash(same[1]) {
		t.Error("structurally equal expressions hash differently")
	}
	distinct := []Expr{
		NewConst(5),
		NewConst(6),
		NewSym("x"),
		NewSym("y"),
		NewBinary(OpAdd, x, y),
		NewBinary(OpAdd, y, x), // operand order matters for non-folded ops
		NewBinary(OpSub, x, y),
		NewUnary(OpBNot, x),
		NewBinary(OpLt, x, NewConst(200000)),
		NewBinary(OpLt, x, NewConst(200001)),
	}
	seen := map[uint64]Expr{}
	for _, e := range distinct {
		h := Hash(e)
		if h == 0 {
			t.Errorf("memoized hash of %s is 0 (reserved for 'not memoized')", e)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %s and %s", prev, e)
		}
		seen[h] = e
	}
	// Hand-built nodes (no memoized hash) agree with constructor-built.
	hand := &Binary{Op: OpAdd, L: &Sym{Name: "x"}, R: &Const{Val: 4}}
	if Hash(hand) != Hash(same[0]) {
		t.Error("on-the-fly hash of a hand-built node differs from the memoized one")
	}
	if !Equal(hand, same[0]) {
		t.Error("Equal rejects a hand-built structural twin")
	}
}

// TestInternSharedConcurrently proves interned constants and memoized
// hashes are immutable in practice: concurrent classifiers share the
// nodes freely, so this test — run under -race in CI — hammers the
// table, the hash memos, and structural comparison from many goroutines
// at once. Any post-publication write to a shared node would trip the
// race detector.
func TestInternSharedConcurrently(t *testing.T) {
	// One shared DAG, built once, read by everyone.
	x := NewSym("x")
	shared := NewBinary(OpMul, NewBinary(OpAdd, x, NewConst(7)), NewConst(3))
	wantHash := Hash(shared)
	wantStr := shared.String()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := int64(i % (InternMax - InternMin))
				c := NewConst(v + InternMin)
				if c != NewConst(v+InternMin) {
					errs <- fmt.Errorf("g%d: intern identity broken for %d", g, v+InternMin)
					return
				}
				// Fold through the table: concrete arithmetic lands back
				// on interned nodes.
				sum := NewBinary(OpAdd, c, NewConst(1))
				if cv, ok := ConstVal(sum); !ok || cv != c.Val+1 {
					errs <- fmt.Errorf("g%d: folding through interned nodes broke", g)
					return
				}
				// Hash and render the shared DAG; both must be stable.
				if Hash(shared) != wantHash {
					errs <- fmt.Errorf("g%d: shared DAG hash changed", g)
					return
				}
				if i%97 == 0 && shared.String() != wantStr {
					errs <- fmt.Errorf("g%d: shared DAG rendering changed", g)
					return
				}
				// Build a structural twin concurrently and compare.
				twin := NewBinary(OpMul, NewBinary(OpAdd, NewSym("x"), NewConst(7)), NewConst(3))
				if !Equal(twin, shared) || Hash(twin) != wantHash {
					errs <- fmt.Errorf("g%d: concurrent twin mismatch", g)
					return
				}
				// Substitution over the shared DAG produces fresh (or
				// interned) nodes, never mutates in place.
				if r, err := Eval(shared, Assignment{"x": v}); err != nil || r != (v+7)*3 {
					errs <- fmt.Errorf("g%d: eval over shared DAG = %d, %v", g, r, err)
					return
				}
				if s := Substitute(shared, Assignment{"x": v}); s == nil {
					errs <- fmt.Errorf("g%d: substitute returned nil", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if Hash(shared) != wantHash || shared.String() != wantStr {
		t.Error("shared DAG changed after concurrent use")
	}
}

// TestNewConstAllocFree guards the hot-path claim: interned constants
// cost zero allocations.
func TestNewConstAllocFree(t *testing.T) {
	var sink *Const
	allocs := testing.AllocsPerRun(200, func() {
		for v := int64(InternMin); v < InternMax; v += 17 {
			sink = NewConst(v)
		}
	})
	if allocs != 0 {
		t.Errorf("interned NewConst allocates %v times per run, want 0", allocs)
	}
	_ = sink
}
