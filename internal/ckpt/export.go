package ckpt

import "repro/internal/vm"

// This file is the durability boundary of the checkpoint stores: Export
// hands the owning tier a structured view of everything a store holds so
// it can be serialized, and Import rebuilds a store from that view after
// a daemon restart. Exported states and controllers are the store's own
// immutable entries, handed out by reference — callers must treat them
// read-only (encoding only reads). Import takes ownership of everything
// passed in; the caller must not retain or mutate it afterwards.

// ExportedEntry is one concrete checkpoint in export form.
type ExportedEntry struct {
	Steps int64
	State *vm.State
	Ctl   vm.CloneableController
}

// ExportedStore is the full serializable content of a concrete Store:
// its entries plus the thinning position and hit counters, so a restored
// store admits, thins, and reports exactly like the one that was saved.
type ExportedStore struct {
	Entries []ExportedEntry
	Stride  int64
	Thinned int64
	Hits    int64
	Misses  int64
}

// Export returns the store's content for serialization. The returned
// states and controllers are the live stored entries: read-only.
func (s *Store) Export() ExportedStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	x := ExportedStore{
		Stride:  s.tab.stride,
		Thinned: s.tab.thinned,
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
	}
	if len(s.tab.entries) > 0 {
		x.Entries = make([]ExportedEntry, 0, len(s.tab.entries))
		for _, e := range s.tab.entries {
			x.Entries = append(x.Entries, ExportedEntry{Steps: e.steps, State: e.payload.state, Ctl: e.payload.ctl})
		}
	}
	return x
}

// Import replaces the store's content with a previously exported one,
// taking ownership of the states and controllers in x. Entries land
// without cloning and without stride admission (they were admitted when
// first stored); entries beyond the capacity bound are dropped.
func (s *Store) Import(x ExportedStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab.entries = s.tab.entries[:0]
	for _, e := range x.Entries {
		if len(s.tab.entries) >= s.tab.max {
			break
		}
		i := s.tab.search(e.Steps)
		if i < len(s.tab.entries) && s.tab.entries[i].steps == e.Steps {
			continue
		}
		s.tab.entries = append(s.tab.entries, tabEntry[centry]{})
		copy(s.tab.entries[i+1:], s.tab.entries[i:])
		s.tab.entries[i] = tabEntry[centry]{steps: e.Steps, payload: centry{state: e.State, ctl: e.Ctl}}
	}
	s.tab.stride = x.Stride
	s.tab.thinned = x.Thinned
	s.hits.Store(x.Hits)
	s.misses.Store(x.Misses)
}

// MemBytes estimates the heap footprint of all stored checkpoint states.
func (s *Store) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, e := range s.tab.entries {
		n += e.payload.state.MemEstimate()
	}
	return n
}

// ExportedSymEntry is one symbolic mainline checkpoint in export form.
type ExportedSymEntry struct {
	Steps int64
	State *vm.State
	Ctl   vm.CloneableController
	Forks []PendingFork

	Branches  int
	ForksUsed int
	Dropped   int
}

// ExportedSymStore is the full serializable content of a SymStore:
// entries, thinning position, hit counters, the sibling-outcome memo
// table, and the fork-ID counter (restored so post-restart deposits
// never mint an ID that collides with a memoized one).
type ExportedSymStore struct {
	Entries []ExportedSymEntry
	Stride  int64
	Thinned int64
	Hits    int64
	Misses  int64

	Memos    map[uint64]SiblingOutcome
	MemoHits int64
	ForkIDs  uint64
}

// Export returns the symbolic store's content for serialization. States,
// controllers, and fork payloads are the live stored entries: read-only.
// The memo map is a copy and safe to walk.
func (s *SymStore) Export() ExportedSymStore {
	s.mu.Lock()
	x := ExportedSymStore{
		Stride:  s.tab.stride,
		Thinned: s.tab.thinned,
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
	}
	if len(s.tab.entries) > 0 {
		x.Entries = make([]ExportedSymEntry, 0, len(s.tab.entries))
		for _, e := range s.tab.entries {
			x.Entries = append(x.Entries, ExportedSymEntry{
				Steps:     e.steps,
				State:     e.payload.state,
				Ctl:       e.payload.ctl,
				Forks:     e.payload.forks,
				Branches:  e.payload.branches,
				ForksUsed: e.payload.forksUsed,
				Dropped:   e.payload.dropped,
			})
		}
	}
	s.mu.Unlock()

	x.MemoHits = s.memoHits.Load()
	x.ForkIDs = s.forkIDs.Load()
	s.memoMu.Lock()
	if len(s.memo) > 0 {
		x.Memos = make(map[uint64]SiblingOutcome, len(s.memo))
		for id, o := range s.memo {
			x.Memos[id] = o
		}
	}
	s.memoMu.Unlock()
	return x
}

// Import replaces the symbolic store's content with a previously
// exported one, taking ownership of everything in x.
func (s *SymStore) Import(x ExportedSymStore) {
	s.mu.Lock()
	s.tab.entries = s.tab.entries[:0]
	for _, e := range x.Entries {
		if len(s.tab.entries) >= s.tab.max {
			break
		}
		i := s.tab.search(e.Steps)
		if i < len(s.tab.entries) && s.tab.entries[i].steps == e.Steps {
			continue
		}
		s.tab.entries = append(s.tab.entries, tabEntry[symEntry]{})
		copy(s.tab.entries[i+1:], s.tab.entries[i:])
		s.tab.entries[i] = tabEntry[symEntry]{steps: e.Steps, payload: symEntry{
			state:     e.State,
			ctl:       e.Ctl,
			forks:     e.Forks,
			branches:  e.Branches,
			forksUsed: e.ForksUsed,
			dropped:   e.Dropped,
		}}
	}
	s.tab.stride = x.Stride
	s.tab.thinned = x.Thinned
	s.hits.Store(x.Hits)
	s.misses.Store(x.Misses)
	s.mu.Unlock()

	s.memoHits.Store(x.MemoHits)
	// Never lower the counter: IDs minted since construction must stay
	// unique against the restored memo table.
	for {
		cur := s.forkIDs.Load()
		if x.ForkIDs <= cur || s.forkIDs.CompareAndSwap(cur, x.ForkIDs) {
			break
		}
	}
	s.memoMu.Lock()
	s.memo = nil
	if len(x.Memos) > 0 {
		s.memo = make(map[uint64]SiblingOutcome, len(x.Memos))
		for id, o := range x.Memos {
			s.memo[id] = o
		}
	}
	s.memoMu.Unlock()
}

// MemBytes estimates the heap footprint of all stored mainline and
// pending-fork states.
func (s *SymStore) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, e := range s.tab.entries {
		n += e.payload.state.MemEstimate()
		for _, f := range e.payload.forks {
			n += f.State.MemEstimate()
		}
	}
	return n
}
