package ckpt

import (
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

const src = `
var g = 0
fn main() {
	for i = 0, 100 { g = g + 1 }
	print("g=", g)
}`

// stateAt runs the program for the given number of steps and returns the
// parked state.
func stateAt(t *testing.T, steps int64) *vm.State {
	t.Helper()
	p := bytecode.MustCompile(src, "ckpttest", bytecode.Options{})
	st := vm.NewState(p, nil, nil)
	res := vm.NewMachine(st, vm.NewRoundRobin()).Run(steps)
	if res.Kind != vm.StopBudget {
		t.Fatalf("run stopped early: %v", res.Kind)
	}
	return st
}

func TestStoreNearestResume(t *testing.T) {
	s := NewStore(8)
	for _, n := range []int64{40, 10, 30} { // out-of-order inserts
		s.Add(stateAt(t, n), vm.NewRoundRobin())
	}
	if s.Len() != 3 {
		t.Fatalf("store len = %d, want 3", s.Len())
	}

	st, ctl, steps, ok := s.Resume(35, nil)
	if !ok || steps != 30 {
		t.Fatalf("Resume(35) = steps %d ok %v, want 30 true", steps, ok)
	}
	if st.Steps != 30 || ctl == nil {
		t.Fatalf("resumed state at %d steps, want 30", st.Steps)
	}

	if _, _, steps, ok = s.Resume(40, nil); !ok || steps != 40 {
		t.Fatalf("Resume(40) = steps %d ok %v, want exact-match 40 true", steps, ok)
	}
	if _, _, _, ok = s.Resume(5, nil); ok {
		t.Fatal("Resume(5) found an entry although none is <= 5")
	}
	if h, m := s.Hits(), s.Misses(); h != 2 || m != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", h, m)
	}
}

func TestStoreResumeIsolation(t *testing.T) {
	s := NewStore(4)
	orig := stateAt(t, 20)
	s.Add(orig, vm.NewRoundRobin())

	// Mutating the original after Add must not leak into the store.
	vm.NewMachine(orig, vm.NewRoundRobin()).Run(10)

	st, _, _, ok := s.Resume(20, nil)
	if !ok {
		t.Fatal("no entry")
	}
	if st.Steps != 20 {
		t.Fatalf("stored entry shares state with the caller: Steps = %d, want 20", st.Steps)
	}
	// Two resumes hand out distinct clones.
	st2, _, _, _ := s.Resume(20, nil)
	vm.NewMachine(st, vm.NewRoundRobin()).Run(5)
	if st2.Steps != 20 {
		t.Fatal("resumed clones share state")
	}
}

func TestStoreAcceptAndDedup(t *testing.T) {
	s := NewStore(8)
	s.Add(stateAt(t, 10), vm.NewRoundRobin())
	s.Add(stateAt(t, 10), vm.NewRoundRobin()) // duplicate step: dropped
	s.Add(stateAt(t, 20), vm.NewRoundRobin())
	if s.Len() != 2 {
		t.Fatalf("dedup failed: len = %d, want 2", s.Len())
	}

	// accept rejecting the nearest entry falls back to an earlier one.
	st, _, steps, ok := s.Resume(25, func(st *vm.State) bool { return st.Steps < 15 })
	if !ok || steps != 10 || st.Steps != 10 {
		t.Fatalf("accept-filtered resume = steps %d ok %v, want 10 true", steps, ok)
	}
	if _, _, _, ok = s.Resume(25, func(*vm.State) bool { return false }); ok {
		t.Fatal("Resume succeeded although accept rejected everything")
	}
}

func TestStoreCapacity(t *testing.T) {
	s := NewStore(2)
	for _, n := range []int64{10, 20, 30} {
		s.Add(stateAt(t, n), vm.NewRoundRobin())
	}
	// The third Add thins ({10,20} -> {10}) instead of being refused, so
	// the store keeps covering the whole trace.
	if s.Len() != 2 {
		t.Fatalf("cap ignored: len = %d, want 2", s.Len())
	}
	if s.Thinned() != 1 {
		t.Errorf("thinned = %d, want 1", s.Thinned())
	}
	if _, _, steps, ok := s.Resume(100, nil); !ok || steps != 30 {
		t.Fatalf("Resume after thinning = steps %d ok %v, want 30 true", steps, ok)
	}
}

// TestStoreStrideThinning drives a long ascending trace through a small
// store: capacity must trigger stride thinning (not insert refusal), the
// surviving entries must stay spread over the whole step range, and Adds
// landing inside the stride of a retained neighbor must be rejected.
func TestStoreStrideThinning(t *testing.T) {
	s := NewStore(8)
	for n := int64(10); n <= 250; n += 10 {
		s.Add(stateAt(t, n), vm.NewRoundRobin())
	}
	// Deterministic evolution: fill {10..80}; thin to {10,30,50,70}
	// (stride 20), admit 90,110,130,150; thin to {10,50,90,130} (stride
	// 40), admit 170,210,250.
	if got := s.Len(); got != 7 {
		t.Fatalf("len = %d, want 7", got)
	}
	if got := s.Stride(); got != 40 {
		t.Errorf("stride = %d, want 40", got)
	}
	if got := s.Thinned(); got != 8 {
		t.Errorf("thinned = %d, want 8", got)
	}
	// Coverage spans the whole trace: early, middle, and late resumes all
	// find a nearby checkpoint.
	for _, tc := range []struct{ limit, want int64 }{
		{49, 10}, {125, 90}, {249, 210}, {250, 250},
	} {
		if _, _, steps, ok := s.Resume(tc.limit, nil); !ok || steps != tc.want {
			t.Errorf("Resume(%d) = steps %d ok %v, want %d true", tc.limit, steps, ok, tc.want)
		}
	}
	// An Add within the stride of a retained neighbor is a no-op.
	s.Add(stateAt(t, 251), vm.NewRoundRobin())
	if got := s.Len(); got != 7 {
		t.Errorf("stride-violating add was admitted: len = %d, want 7", got)
	}
	// An Add beyond the stride is admitted.
	s.Add(stateAt(t, 290), vm.NewRoundRobin())
	if got := s.Len(); got != 8 {
		t.Errorf("stride-respecting add was rejected: len = %d, want 8", got)
	}
}

// TestStoreDoomedAddDoesNotThin guards the ordering of rejection vs
// thinning: an Add that is inadmissible as the store stands (duplicate
// or stride-violating) arriving at capacity must be refused outright —
// not trigger a thinning that halves the stored checkpoints and then
// insert nothing.
func TestStoreDoomedAddDoesNotThin(t *testing.T) {
	s := NewStore(4)
	for _, n := range []int64{10, 20, 30, 40} {
		s.Add(stateAt(t, n), vm.NewRoundRobin())
	}
	// Duplicate at capacity: no thinning, no change.
	s.Add(stateAt(t, 30), vm.NewRoundRobin())
	if s.Len() != 4 || s.Thinned() != 0 {
		t.Fatalf("duplicate add at capacity thinned the store: len=%d thinned=%d", s.Len(), s.Thinned())
	}
	// Admissible add at capacity thins and inserts: {10,30} stride 20,
	// then 50 lands.
	s.Add(stateAt(t, 50), vm.NewRoundRobin())
	if s.Len() != 3 || s.Thinned() != 2 || s.Stride() != 20 {
		t.Fatalf("after admissible add: len=%d thinned=%d stride=%d, want 3/2/20", s.Len(), s.Thinned(), s.Stride())
	}
	s.Add(stateAt(t, 70), vm.NewRoundRobin()) // back to capacity: {10,30,50,70}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	// Stride-violating add at capacity: refused before any thinning.
	s.Add(stateAt(t, 80), vm.NewRoundRobin())
	if s.Len() != 4 || s.Thinned() != 2 {
		t.Fatalf("stride-violating add at capacity thinned the store: len=%d thinned=%d", s.Len(), s.Thinned())
	}
}

// TestStoreThinningTransactional is the regression for the lossy-Add
// bug: an entry admissible under the *current* stride whose insert would
// be disqualified by the stride a capacity thinning raises must be
// refused outright — previously the thinning had already happened by the
// time the raised stride disqualified the entry, so a doomed Add halved
// the stored checkpoints and inserted nothing.
func TestStoreThinningTransactional(t *testing.T) {
	s := NewStore(4)
	for _, n := range []int64{0, 100, 200, 500} {
		s.Add(stateAt(t, n), vm.NewRoundRobin())
	}
	// Capacity thinning: {0,100,200,500} -> {0,200} (survivor gap 200 >
	// 2*stride(0), so stride becomes 200), then 650 lands.
	s.Add(stateAt(t, 650), vm.NewRoundRobin())
	if s.Len() != 3 || s.Thinned() != 2 || s.Stride() != 200 {
		t.Fatalf("setup thinning: len=%d thinned=%d stride=%d, want 3/2/200", s.Len(), s.Thinned(), s.Stride())
	}
	s.Add(stateAt(t, 850), vm.NewRoundRobin()) // back to capacity: {0,200,650,850}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}

	// 1150 passes the current-stride check (1150-850 = 300 >= 200) but a
	// thinning would keep {0,650} and raise the stride to their gap, 650;
	// 1150-650 = 500 < 650 disqualifies the entry. The store must stay
	// exactly as it was: same entries, no thinning charged.
	s.Add(stateAt(t, 1150), vm.NewRoundRobin())
	if s.Len() != 4 || s.Thinned() != 2 || s.Stride() != 200 {
		t.Fatalf("doomed add mutated the store: len=%d thinned=%d stride=%d, want 4/2/200", s.Len(), s.Thinned(), s.Stride())
	}
	for _, tc := range []struct{ limit, want int64 }{{100, 0}, {500, 200}, {849, 650}, {2000, 850}} {
		if _, _, steps, ok := s.Resume(tc.limit, nil); !ok || steps != tc.want {
			t.Errorf("Resume(%d) = steps %d ok %v, want %d true (entries must be untouched)", tc.limit, steps, ok, tc.want)
		}
	}

	// A genuinely admissible entry still thins and lands: {0,650} stride
	// 650, then 1300 (1300-650 = 650 >= 650) inserts.
	s.Add(stateAt(t, 1300), vm.NewRoundRobin())
	if s.Len() != 3 || s.Thinned() != 4 || s.Stride() != 650 {
		t.Fatalf("admissible add after refusal: len=%d thinned=%d stride=%d, want 3/4/650", s.Len(), s.Thinned(), s.Stride())
	}
	if _, _, steps, ok := s.Resume(2000, nil); !ok || steps != 1300 {
		t.Fatalf("Resume(2000) = steps %d ok %v, want 1300 true", steps, ok)
	}
}

// TestStoreCapacityOne guards the degenerate bound: a single-entry store
// must never exceed one entry (thinning cannot shrink a one-entry
// population, so further Adds are refused outright).
func TestStoreCapacityOne(t *testing.T) {
	s := NewStore(1)
	s.Add(stateAt(t, 10), vm.NewRoundRobin())
	s.Add(stateAt(t, 20), vm.NewRoundRobin())
	s.Add(stateAt(t, 30), vm.NewRoundRobin())
	if s.Len() != 1 {
		t.Fatalf("max=1 store holds %d entries", s.Len())
	}
	if _, _, steps, ok := s.Resume(100, nil); !ok || steps != 10 {
		t.Fatalf("Resume = steps %d ok %v, want 10 true", steps, ok)
	}
}

// TestStoreConcurrent exercises Add/Resume races under -race.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(16)
	base := stateAt(t, 25)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if i%3 == 0 {
					s.Add(base, vm.NewRoundRobin())
				}
				if st, _, _, ok := s.Resume(int64(25+i), nil); ok && st.Steps != 25 {
					t.Errorf("bad resume: %d", st.Steps)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Fatalf("concurrent duplicate Adds leaked: len = %d, want 1", s.Len())
	}
}
