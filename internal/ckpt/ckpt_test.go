package ckpt

import (
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/vm"
)

const src = `
var g = 0
fn main() {
	for i = 0, 100 { g = g + 1 }
	print("g=", g)
}`

// stateAt runs the program for the given number of steps and returns the
// parked state.
func stateAt(t *testing.T, steps int64) *vm.State {
	t.Helper()
	p := bytecode.MustCompile(src, "ckpttest", bytecode.Options{})
	st := vm.NewState(p, nil, nil)
	res := vm.NewMachine(st, vm.NewRoundRobin()).Run(steps)
	if res.Kind != vm.StopBudget {
		t.Fatalf("run stopped early: %v", res.Kind)
	}
	return st
}

func TestStoreNearestResume(t *testing.T) {
	s := NewStore(8)
	for _, n := range []int64{40, 10, 30} { // out-of-order inserts
		s.Add(stateAt(t, n), vm.NewRoundRobin())
	}
	if s.Len() != 3 {
		t.Fatalf("store len = %d, want 3", s.Len())
	}

	st, ctl, steps, ok := s.Resume(35, nil)
	if !ok || steps != 30 {
		t.Fatalf("Resume(35) = steps %d ok %v, want 30 true", steps, ok)
	}
	if st.Steps != 30 || ctl == nil {
		t.Fatalf("resumed state at %d steps, want 30", st.Steps)
	}

	if _, _, steps, ok = s.Resume(40, nil); !ok || steps != 40 {
		t.Fatalf("Resume(40) = steps %d ok %v, want exact-match 40 true", steps, ok)
	}
	if _, _, _, ok = s.Resume(5, nil); ok {
		t.Fatal("Resume(5) found an entry although none is <= 5")
	}
	if h, m := s.Hits(), s.Misses(); h != 2 || m != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", h, m)
	}
}

func TestStoreResumeIsolation(t *testing.T) {
	s := NewStore(4)
	orig := stateAt(t, 20)
	s.Add(orig, vm.NewRoundRobin())

	// Mutating the original after Add must not leak into the store.
	vm.NewMachine(orig, vm.NewRoundRobin()).Run(10)

	st, _, _, ok := s.Resume(20, nil)
	if !ok {
		t.Fatal("no entry")
	}
	if st.Steps != 20 {
		t.Fatalf("stored entry shares state with the caller: Steps = %d, want 20", st.Steps)
	}
	// Two resumes hand out distinct clones.
	st2, _, _, _ := s.Resume(20, nil)
	vm.NewMachine(st, vm.NewRoundRobin()).Run(5)
	if st2.Steps != 20 {
		t.Fatal("resumed clones share state")
	}
}

func TestStoreAcceptAndDedup(t *testing.T) {
	s := NewStore(8)
	s.Add(stateAt(t, 10), vm.NewRoundRobin())
	s.Add(stateAt(t, 10), vm.NewRoundRobin()) // duplicate step: dropped
	s.Add(stateAt(t, 20), vm.NewRoundRobin())
	if s.Len() != 2 {
		t.Fatalf("dedup failed: len = %d, want 2", s.Len())
	}

	// accept rejecting the nearest entry falls back to an earlier one.
	st, _, steps, ok := s.Resume(25, func(st *vm.State) bool { return st.Steps < 15 })
	if !ok || steps != 10 || st.Steps != 10 {
		t.Fatalf("accept-filtered resume = steps %d ok %v, want 10 true", steps, ok)
	}
	if _, _, _, ok = s.Resume(25, func(*vm.State) bool { return false }); ok {
		t.Fatal("Resume succeeded although accept rejected everything")
	}
}

func TestStoreCapacity(t *testing.T) {
	s := NewStore(2)
	for _, n := range []int64{10, 20, 30} {
		s.Add(stateAt(t, n), vm.NewRoundRobin())
	}
	if s.Len() != 2 {
		t.Fatalf("cap ignored: len = %d, want 2", s.Len())
	}
	if _, _, steps, ok := s.Resume(100, nil); !ok || steps != 20 {
		t.Fatalf("Resume after cap = steps %d ok %v, want 20 true", steps, ok)
	}
}

// TestStoreConcurrent exercises Add/Resume races under -race.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(16)
	base := stateAt(t, 25)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if i%3 == 0 {
					s.Add(base, vm.NewRoundRobin())
				}
				if st, _, _, ok := s.Resume(int64(25+i), nil); ok && st.Steps != 25 {
					t.Errorf("bad resume: %d", st.Steps)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Fatalf("concurrent duplicate Adds leaked: len = %d, want 1", s.Len())
	}
}
