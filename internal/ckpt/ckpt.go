// Package ckpt implements the shared replay-checkpoint store behind
// Portend's classification engine.
//
// Every race classification replays the recorded schedule trace from the
// program's initial state to the race's first racing access (Algorithm 1
// lines 1–4). Replay is deterministic — the same trace position and the
// same machine state always produce the same continuation — so the
// concrete state reached at one race's pre-race point is a valid starting
// point for any later race's replay. The store exploits that: replays
// snapshot the parked state (plus the replay controller's position) at
// each distinct pre-race point, and subsequent replays resume from the
// nearest prior snapshot instead of the root, turning the O(R ×
// trace-length) cost of classifying R races into roughly one pass over
// the trace.
//
// Entries are immutable after Add: both Add and Resume hand out deep
// clones (vm.State.Clone and vm.CloneableController.CloneCtl), so any
// number of classification workers can resume from one entry
// concurrently. Correctness requirements — the snapshot must lie on the
// recorded replay path, and its observers must carry everything the
// resuming analysis needs about the skipped prefix — are the caller's
// responsibility; the accept callback of Resume is where the caller
// rejects entries whose prefix it cannot reconstruct.
package ckpt

import (
	"sync"
	"sync/atomic"

	"repro/internal/vm"
)

// entry is one stored snapshot: the state parked at a replay point and
// the controller that drives its continuation.
type entry struct {
	steps int64
	state *vm.State
	ctl   vm.CloneableController
}

// Store holds replay checkpoints for one recorded trace, ordered by the
// global instruction count at which they were taken. It is safe for
// concurrent use by the parallel classification engine.
//
// When the store reaches capacity it thins instead of refusing: every
// other entry is dropped (halving the population while keeping it spread
// across the trace) and the minimum step gap between retained entries
// doubles, so subsequent Adds that would re-crowd an already-covered
// region are rejected cheaply. Long traces therefore keep a bounded,
// roughly stride-uniform set of resume points instead of dense coverage
// of the trace prefix and nothing beyond it. Thinning only discards
// memoized replay time — a dropped checkpoint means the nearest earlier
// one (or the root) is used — so it can never change a verdict.
type Store struct {
	mu      sync.Mutex
	entries []entry // sorted by steps, ascending
	max     int
	stride  int64 // minimum step gap enforced between entries; grows on thinning

	hits     atomic.Int64
	misses   atomic.Int64
	thinning atomic.Int64 // entries dropped by capacity thinning
}

// NewStore returns a store bounded to max entries (<= 0 means the
// default of 64). The store is a cache, never an obligation: at capacity
// it thins existing entries by stride (see Store) rather than growing.
func NewStore(max int) *Store {
	if max <= 0 {
		max = 64
	}
	return &Store{max: max}
}

// Len returns the number of stored checkpoints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Hits returns how many Resume calls found a usable checkpoint.
func (s *Store) Hits() int { return int(s.hits.Load()) }

// Misses returns how many Resume calls fell back to a full replay.
func (s *Store) Misses() int { return int(s.misses.Load()) }

// Thinned returns how many stored checkpoints capacity thinning dropped.
func (s *Store) Thinned() int { return int(s.thinning.Load()) }

// Stride returns the current minimum step gap between entries (0 until
// the first thinning).
func (s *Store) Stride() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stride
}

// admissible reports whether an entry at steps may be inserted: not a
// duplicate, and at least stride steps from both sorted neighbors.
// Caller must hold s.mu; i is the insertion index for steps.
func (s *Store) admissible(i int, steps int64) bool {
	if i < len(s.entries) && s.entries[i].steps == steps {
		return false
	}
	if s.stride > 0 {
		if i > 0 && steps-s.entries[i-1].steps < s.stride {
			return false
		}
		if i < len(s.entries) && s.entries[i].steps-steps < s.stride {
			return false
		}
	}
	return true
}

// thinLocked drops every other entry (keeping the first) and raises the
// stride to the smallest gap between survivors, so re-crowding a thinned
// region is rejected at Add. Caller must hold s.mu.
func (s *Store) thinLocked() {
	if len(s.entries) < 2 {
		return
	}
	kept := s.entries[:0]
	for i := range s.entries {
		if i%2 == 0 {
			kept = append(kept, s.entries[i])
		}
	}
	s.thinning.Add(int64(len(s.entries) - len(kept)))
	// Zero the vacated tail so dropped states are collectable.
	for i := len(kept); i < len(s.entries); i++ {
		s.entries[i] = entry{}
	}
	s.entries = kept
	minGap := int64(0)
	for i := 1; i < len(kept); i++ {
		if g := kept[i].steps - kept[i-1].steps; minGap == 0 || g < minGap {
			minGap = g
		}
	}
	if minGap > s.stride*2 {
		s.stride = minGap
	} else if s.stride > 0 {
		s.stride *= 2
	} else {
		s.stride = 1
	}
}

// makeRoomLocked prepares the store for an entry at steps: an entry
// that is inadmissible as the store stands (duplicate, or inside the
// current stride of a neighbor) is rejected *before* any thinning, so a
// doomed Add never costs stored checkpoints; only an entry that would
// actually land triggers thinning at capacity. Thinning doubles the
// stride, which may itself disqualify the entry — reported by the
// second admissibility check. Caller must hold s.mu.
func (s *Store) makeRoomLocked(steps int64) bool {
	if !s.admissible(s.search(steps), steps) {
		return false
	}
	if len(s.entries) >= s.max {
		s.thinLocked()
		if len(s.entries) >= s.max {
			// Nothing could be thinned away (max <= 1): keep the existing
			// entry and refuse the insert — the bound is a hard promise.
			return false
		}
	}
	return s.admissible(s.search(steps), steps)
}

// Add snapshots st (at st.Steps) together with its controller. Both are
// deep-cloned, so the caller keeps running its own copies untouched. An
// entry at the same step count already present, or one closer than the
// thinning stride to an existing neighbor, makes Add a no-op; a full
// store thins itself (see Store) to make room for an admissible entry.
func (s *Store) Add(st *vm.State, ctl vm.CloneableController) {
	steps := st.Steps
	s.mu.Lock()
	if !s.makeRoomLocked(steps) {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Clone outside the lock: cloning only reads st, and a racing Add of
	// the same step is harmless (the second insert is dropped below).
	e := entry{steps: steps, state: st.Clone(), ctl: ctl.CloneCtl().(vm.CloneableController)}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.makeRoomLocked(steps) {
		return
	}
	i := s.search(steps)
	s.entries = append(s.entries, entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
}

// search returns the insertion index for steps (first entry >= steps).
// Caller must hold s.mu.
func (s *Store) search(steps int64) int {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.entries[mid].steps < steps {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Resume returns a private clone of the latest checkpoint taken at or
// before limit that the accept callback approves, together with a cloned
// controller and the checkpoint's step count. accept (nil means "accept
// everything") inspects the stored state read-only — this is where the
// caller verifies the skipped prefix is reconstructible (observer state,
// symbolic-input safety). ok is false when no entry qualifies.
func (s *Store) Resume(limit int64, accept func(*vm.State) bool) (st *vm.State, ctl vm.Controller, steps int64, ok bool) {
	s.mu.Lock()
	var found entry
	for i := s.search(limit+1) - 1; i >= 0; i-- {
		e := s.entries[i]
		if accept == nil || accept(e.state) {
			found = e
			ok = true
			break
		}
	}
	s.mu.Unlock()

	if !ok {
		s.misses.Add(1)
		return nil, nil, 0, false
	}
	s.hits.Add(1)
	// Clone outside the lock; entries are immutable and State.Clone is
	// safe for concurrent readers.
	return found.state.Clone(), found.ctl.CloneCtl(), found.steps, true
}
