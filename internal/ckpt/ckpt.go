// Package ckpt implements the shared replay-checkpoint store behind
// Portend's classification engine.
//
// Every race classification replays the recorded schedule trace from the
// program's initial state to the race's first racing access (Algorithm 1
// lines 1–4). Replay is deterministic — the same trace position and the
// same machine state always produce the same continuation — so the
// concrete state reached at one race's pre-race point is a valid starting
// point for any later race's replay. The store exploits that: replays
// snapshot the parked state (plus the replay controller's position) at
// each distinct pre-race point, and subsequent replays resume from the
// nearest prior snapshot instead of the root, turning the O(R ×
// trace-length) cost of classifying R races into roughly one pass over
// the trace.
//
// Entries are immutable after Add: both Add and Resume hand out deep
// clones (vm.State.Clone and vm.CloneableController.CloneCtl), so any
// number of classification workers can resume from one entry
// concurrently. Correctness requirements — the snapshot must lie on the
// recorded replay path, and its observers must carry everything the
// resuming analysis needs about the skipped prefix — are the caller's
// responsibility; the accept callback of Resume is where the caller
// rejects entries whose prefix it cannot reconstruct.
package ckpt

import (
	"sync"
	"sync/atomic"

	"repro/internal/vm"
)

// entry is one stored snapshot: the state parked at a replay point and
// the controller that drives its continuation.
type entry struct {
	steps int64
	state *vm.State
	ctl   vm.CloneableController
}

// Store holds replay checkpoints for one recorded trace, ordered by the
// global instruction count at which they were taken. It is safe for
// concurrent use by the parallel classification engine.
type Store struct {
	mu      sync.Mutex
	entries []entry // sorted by steps, ascending
	max     int

	hits   atomic.Int64
	misses atomic.Int64
}

// NewStore returns a store bounded to max entries (<= 0 means the
// default of 64). When full, further Adds are dropped: the store is a
// cache, never an obligation.
func NewStore(max int) *Store {
	if max <= 0 {
		max = 64
	}
	return &Store{max: max}
}

// Len returns the number of stored checkpoints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Hits returns how many Resume calls found a usable checkpoint.
func (s *Store) Hits() int { return int(s.hits.Load()) }

// Misses returns how many Resume calls fell back to a full replay.
func (s *Store) Misses() int { return int(s.misses.Load()) }

// Add snapshots st (at st.Steps) together with its controller. Both are
// deep-cloned, so the caller keeps running its own copies untouched. An
// entry at the same step count already present, or a full store, makes
// Add a no-op.
func (s *Store) Add(st *vm.State, ctl vm.CloneableController) {
	steps := st.Steps
	s.mu.Lock()
	if len(s.entries) >= s.max {
		s.mu.Unlock()
		return
	}
	i := s.search(steps)
	if i < len(s.entries) && s.entries[i].steps == steps {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Clone outside the lock: cloning only reads st, and a racing Add of
	// the same step is harmless (the second insert is dropped below).
	e := entry{steps: steps, state: st.Clone(), ctl: ctl.CloneCtl().(vm.CloneableController)}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) >= s.max {
		return
	}
	i = s.search(steps)
	if i < len(s.entries) && s.entries[i].steps == steps {
		return
	}
	s.entries = append(s.entries, entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
}

// search returns the insertion index for steps (first entry >= steps).
// Caller must hold s.mu.
func (s *Store) search(steps int64) int {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.entries[mid].steps < steps {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Resume returns a private clone of the latest checkpoint taken at or
// before limit that the accept callback approves, together with a cloned
// controller and the checkpoint's step count. accept (nil means "accept
// everything") inspects the stored state read-only — this is where the
// caller verifies the skipped prefix is reconstructible (observer state,
// symbolic-input safety). ok is false when no entry qualifies.
func (s *Store) Resume(limit int64, accept func(*vm.State) bool) (st *vm.State, ctl vm.Controller, steps int64, ok bool) {
	s.mu.Lock()
	var found entry
	for i := s.search(limit+1) - 1; i >= 0; i-- {
		e := s.entries[i]
		if accept == nil || accept(e.state) {
			found = e
			ok = true
			break
		}
	}
	s.mu.Unlock()

	if !ok {
		s.misses.Add(1)
		return nil, nil, 0, false
	}
	s.hits.Add(1)
	// Clone outside the lock; entries are immutable and State.Clone is
	// safe for concurrent readers.
	return found.state.Clone(), found.ctl.CloneCtl(), found.steps, true
}
