// Package ckpt implements the shared replay-checkpoint stores behind
// Portend's classification engine.
//
// Every race classification replays the recorded schedule trace from the
// program's initial state to the race's first racing access (Algorithm 1
// lines 1–4). Replay is deterministic — the same trace position and the
// same machine state always produce the same continuation — so the
// concrete state reached at one race's pre-race point is a valid starting
// point for any later race's replay. The package exploits that twice:
//
//   - Store holds concrete replay snapshots. The detection phase deposits
//     them as it walks the trace (each new race cluster's detection point,
//     plus a periodic cadence) and classification replays deposit their
//     own pre-race points; subsequent replays resume from the nearest
//     prior snapshot instead of the root, turning the O(R × trace-length)
//     cost of classifying R races into roughly one pass over the trace.
//   - SymStore holds snapshots of the multi-path exploration mainline —
//     the symbolic execution that follows the recorded schedule — together
//     with the sibling states pending in the fork queue and the
//     exploration counters of the skipped prefix. Concrete snapshots
//     whose prefix consumed a symbolic input can never seed symbolic
//     re-execution (the consumed read would stay concrete); mainline
//     snapshots carry the minted symbols, path condition, and pending
//     forks, so explorations of later races resume past the
//     symbolic-input frontier.
//
// Entries are immutable after Add: both Add and Resume hand out private
// snapshots (vm.State.Clone and vm.CloneableController.CloneCtl), so any
// number of classification workers can resume from one entry
// concurrently. Since the state moved to persistent copy-on-write
// structures a snapshot is O(1) — a pointer-sized State header plus a
// fresh epoch — and isolation comes from the VM's write barriers, not
// from copying: the stored entry and every resumed clone share structure
// until one of them writes. Correctness requirements — the snapshot must lie on the
// recorded replay path, and its observers must carry everything the
// resuming analysis needs about the skipped prefix — are the caller's
// responsibility; the accept callback of Resume is where the caller
// rejects entries whose prefix it cannot reconstruct.
package ckpt

import (
	"sync"
	"sync/atomic"

	"repro/internal/vm"
)

// tabEntry is one slot of the bounded table: a payload filed under the
// global completed-instruction count at which its snapshot was taken.
type tabEntry[P any] struct {
	steps   int64
	payload P
}

// table is the bounded, steps-sorted, stride-thinned container shared by
// the concrete Store and the symbolic SymStore. It is not goroutine-safe;
// the owning store serializes access.
//
// When the table reaches capacity it thins instead of refusing: every
// other entry is dropped (halving the population while keeping it spread
// across the trace) and the minimum step gap between retained entries
// doubles, so subsequent inserts that would re-crowd an already-covered
// region are rejected cheaply. Long traces therefore keep a bounded,
// roughly stride-uniform set of resume points instead of dense coverage
// of the trace prefix and nothing beyond it. Thinning only discards
// memoized replay time — a dropped checkpoint means the nearest earlier
// one (or the root) is used — so it can never change a verdict.
//
// Thinning is transactional: it happens inside insert, and only when the
// incoming entry actually lands. An insert the post-thinning stride would
// disqualify is refused up front and the table is left untouched, so a
// doomed insert never costs stored checkpoints.
type table[P any] struct {
	entries []tabEntry[P]
	max     int
	stride  int64 // minimum step gap enforced between entries; grows on thinning
	thinned int64 // entries dropped by capacity thinning
}

// search returns the insertion index for steps (first entry >= steps).
func (t *table[P]) search(steps int64) int {
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.entries[mid].steps < steps {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// admissibleAt reports whether an entry at steps may be inserted under
// the given stride: not a duplicate, and at least stride steps from both
// sorted neighbors. i is the insertion index for steps.
func (t *table[P]) admissibleAt(i int, steps, stride int64) bool {
	if i < len(t.entries) && t.entries[i].steps == steps {
		return false
	}
	if stride > 0 {
		if i > 0 && steps-t.entries[i-1].steps < stride {
			return false
		}
		if i < len(t.entries) && t.entries[i].steps-steps < stride {
			return false
		}
	}
	return true
}

// admissible reports whether an entry at steps is insertable as the table
// stands (ignoring capacity). Stores use it as the cheap pre-check before
// paying for a snapshot clone.
func (t *table[P]) admissible(steps int64) bool {
	return t.admissibleAt(t.search(steps), steps, t.stride)
}

// thinPlan computes the outcome thinning would have — survivors are the
// entries at even indices, and the stride rises to the smallest surviving
// gap (or doubles) — and reports whether an entry at steps would be
// admissible afterwards. Nothing is mutated: the plan lets insert refuse
// a doomed entry without discarding stored checkpoints.
func (t *table[P]) thinPlan(steps int64) (newStride int64, ok bool) {
	n := len(t.entries)
	kept := (n + 1) / 2
	if n < 2 || kept >= t.max {
		// Thinning cannot open a slot (max <= 1): the bound is a hard
		// promise, so the insert is refused.
		return 0, false
	}
	minGap := int64(0)
	for i := 2; i < n; i += 2 {
		if g := t.entries[i].steps - t.entries[i-2].steps; minGap == 0 || g < minGap {
			minGap = g
		}
	}
	newStride = t.stride
	switch {
	case minGap > newStride*2:
		newStride = minGap
	case newStride > 0:
		newStride *= 2
	default:
		newStride = 1
	}
	// Admissibility among the survivors under the raised stride.
	prev, next := int64(-1), int64(-1)
	havePrev, haveNext := false, false
	for i := 0; i < n; i += 2 {
		s := t.entries[i].steps
		switch {
		case s == steps:
			return 0, false
		case s < steps:
			prev, havePrev = s, true
		default:
			next, haveNext = s, true
		}
		if haveNext {
			break
		}
	}
	if havePrev && steps-prev < newStride {
		return 0, false
	}
	if haveNext && next-steps < newStride {
		return 0, false
	}
	return newStride, true
}

// commitThin performs the thinning described by thinPlan: drop every
// other entry (keeping the first) and raise the stride.
func (t *table[P]) commitThin(newStride int64) {
	kept := t.entries[:0]
	for i := range t.entries {
		if i%2 == 0 {
			kept = append(kept, t.entries[i])
		}
	}
	t.thinned += int64(len(t.entries) - len(kept))
	// Zero the vacated tail so dropped snapshots are collectable.
	var zero tabEntry[P]
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = zero
	}
	t.entries = kept
	t.stride = newStride
}

// insert places payload at steps, thinning transactionally when the
// table is full. It reports whether the entry landed; a refused insert —
// duplicate, inside the current stride of a neighbor, or disqualified by
// the stride a thinning would raise — leaves the table untouched.
func (t *table[P]) insert(steps int64, payload P) bool {
	i := t.search(steps)
	if !t.admissibleAt(i, steps, t.stride) {
		return false
	}
	if len(t.entries) >= t.max {
		newStride, ok := t.thinPlan(steps)
		if !ok {
			return false
		}
		t.commitThin(newStride)
		i = t.search(steps)
	}
	t.entries = append(t.entries, tabEntry[P]{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = tabEntry[P]{steps: steps, payload: payload}
	return true
}

// centry is one concrete replay snapshot: the state parked at a replay
// point and the controller that drives its continuation.
type centry struct {
	state *vm.State
	ctl   vm.CloneableController
}

// Store holds concrete replay checkpoints for one recorded trace, ordered
// by the global instruction count at which they were taken. It is safe
// for concurrent use by the parallel classification engine; capacity is
// handled by stride thinning (see table).
type Store struct {
	mu  sync.Mutex
	tab table[centry]

	hits   atomic.Int64
	misses atomic.Int64
}

// DefaultMax is the default entry bound of both stores.
const DefaultMax = 64

// NewStore returns a store bounded to max entries (<= 0 means the
// default of 64). The store is a cache, never an obligation: at capacity
// it thins existing entries by stride rather than growing.
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultMax
	}
	return &Store{tab: table[centry]{max: max}}
}

// Len returns the number of stored checkpoints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tab.entries)
}

// Hits returns how many Resume calls found a usable checkpoint.
func (s *Store) Hits() int { return int(s.hits.Load()) }

// Misses returns how many Resume calls fell back to a full replay.
func (s *Store) Misses() int { return int(s.misses.Load()) }

// Thinned returns how many stored checkpoints capacity thinning dropped.
func (s *Store) Thinned() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.tab.thinned)
}

// Stride returns the current minimum step gap between entries (0 until
// the first thinning).
func (s *Store) Stride() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tab.stride
}

// Add snapshots st (at st.Steps) together with its controller. Both are
// cloned copy-on-write (O(1), not a deep copy), so the caller keeps
// running its own copies untouched while the stored entry stays frozen
// behind the state's write barriers. An
// entry at the same step count already present, one closer than the
// thinning stride to an existing neighbor, or one a capacity thinning
// could not make room for, makes Add a no-op — and a refused Add never
// thins: stored checkpoints are only dropped when the incoming entry
// actually lands.
func (s *Store) Add(st *vm.State, ctl vm.CloneableController) {
	steps := st.Steps
	s.mu.Lock()
	ok := s.tab.admissible(steps)
	s.mu.Unlock()
	if !ok {
		return
	}

	// Clone outside the lock: cloning only reads st, and a racing Add of
	// the same step is harmless (the second insert is refused below).
	e := centry{state: st.Clone(), ctl: ctl.CloneCtl().(vm.CloneableController)}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab.insert(steps, e)
}

// Resume returns a private clone of the latest checkpoint taken at or
// before limit that the accept callback approves, together with a cloned
// controller and the checkpoint's step count. accept (nil means "accept
// everything") inspects the stored state read-only — this is where the
// caller verifies the skipped prefix is reconstructible (observer state,
// symbolic-input safety). ok is false when no entry qualifies.
func (s *Store) Resume(limit int64, accept func(*vm.State) bool) (st *vm.State, ctl vm.Controller, steps int64, ok bool) {
	s.mu.Lock()
	var found centry
	for i := s.tab.search(limit+1) - 1; i >= 0; i-- {
		e := s.tab.entries[i]
		if accept == nil || accept(e.payload.state) {
			found, steps, ok = e.payload, e.steps, true
			break
		}
	}
	s.mu.Unlock()

	if !ok {
		s.misses.Add(1)
		return nil, nil, 0, false
	}
	s.hits.Add(1)
	// Clone outside the lock; entries are immutable and State.Clone is
	// safe for concurrent readers.
	return found.state.Clone(), found.ctl.CloneCtl(), steps, true
}

// PendingFork is one sibling state queued (but not yet explored) when a
// symbolic checkpoint was taken: the forked state — its hints already
// steering it down the unexplored branch side — and the controller that
// continues its schedule. ID, when non-zero, names the stored snapshot
// this fork was cloned from: every Resume of the same entry hands back
// the same IDs, which is what lets explorations of different races
// share sibling outcomes (see SiblingOutcome).
type PendingFork struct {
	State *vm.State
	Ctl   vm.Controller
	ID    uint64
}

// symEntry is one symbolic exploration snapshot: the mainline state and
// controller, the fork queue pending at the snapshot, and the
// exploration counters accumulated over the prefix.
type symEntry struct {
	state *vm.State
	ctl   vm.CloneableController
	forks []PendingFork // stored clones; Ctl is always cloneable

	branches  int // symbolic branch decisions taken in the prefix
	forksUsed int // fork-budget slots consumed in the prefix
	dropped   int // forks dropped at the queue cap in the prefix
}

// SymResume is a resumed symbolic checkpoint: private clones of the
// mainline state, its controller, and every pending fork, plus the
// prefix's exploration counters. A resuming exploration must requeue the
// forks behind the mainline and pre-charge its engine with Branches and
// ForksUsed (and its truncation accounting with Dropped), so that a
// budget- or cap-bound exploration behaves exactly as one started from
// the root.
type SymResume struct {
	State *vm.State
	Ctl   vm.Controller
	Steps int64
	Forks []PendingFork

	Branches  int
	ForksUsed int
	Dropped   int
}

// SymStore holds symbolic exploration-mainline checkpoints for one
// recorded trace. It has the same bounded, stride-thinned shape as Store
// (entries keyed by the mainline's step count) but each entry
// additionally snapshots the pending fork queue and the exploration
// counters, which Resume hands back as a SymResume. It is safe for
// concurrent use.
type SymStore struct {
	mu  sync.Mutex
	tab table[symEntry]

	hits   atomic.Int64
	misses atomic.Int64

	// Sibling-outcome memoization. Stored pending forks get stable IDs at
	// Add time; after an exploration runs a resumed fork to completion
	// under conditions that make the run independent of which race is
	// being classified (see SiblingOutcome), the outcome is recorded here
	// and later explorations resuming the same entry skip the re-run.
	forkIDs  atomic.Uint64
	memoMu   sync.Mutex
	memo     map[uint64]SiblingOutcome
	memoHits atomic.Int64
}

// TouchedObj identifies one shared-object class a sibling run accessed
// (heap objects collapse to Obj 0, mirroring the engine's per-object
// access accounting).
type TouchedObj struct {
	Space vm.Space
	Obj   int64
}

// SiblingOutcome memoizes how a stored pending fork's exploration went
// when run to completion: how many symbolic branch decisions it took and
// which shared-object classes it touched. A recorded outcome is only
// valid for explorations whose breakpoint object the run never touched —
// for those, the sibling contributes nothing but its branch count, which
// the skipping exploration credits without re-executing. The caller
// (internal/core) is responsible for only recording runs whose outcome
// is provably independent of the classified race.
type SiblingOutcome struct {
	Branches int
	Touched  []TouchedObj
}

// TouchedAny reports whether the recorded run accessed the given object
// class.
func (o SiblingOutcome) TouchedAny(space vm.Space, obj int64) bool {
	for _, t := range o.Touched {
		if t.Space == space && t.Obj == obj {
			return true
		}
	}
	return false
}

// maxSiblingMemo bounds the memo map; recording simply stops at the cap
// (a memo is pure optimization — an unrecorded sibling is re-run).
const maxSiblingMemo = 4096

// SiblingOutcome returns the memoized outcome for a stored fork ID.
func (s *SymStore) SiblingOutcome(id uint64) (SiblingOutcome, bool) {
	if id == 0 {
		return SiblingOutcome{}, false
	}
	s.memoMu.Lock()
	o, ok := s.memo[id]
	s.memoMu.Unlock()
	if ok {
		s.memoHits.Add(1)
	}
	return o, ok
}

// RecordSibling memoizes a completed sibling run's outcome. No-op at the
// cap or for ID 0.
func (s *SymStore) RecordSibling(id uint64, o SiblingOutcome) {
	if id == 0 {
		return
	}
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if s.memo == nil {
		s.memo = make(map[uint64]SiblingOutcome)
	}
	if _, exists := s.memo[id]; !exists && len(s.memo) >= maxSiblingMemo {
		return
	}
	s.memo[id] = o
}

// MemoHits returns how many SiblingOutcome lookups found a recorded
// outcome.
func (s *SymStore) MemoHits() int { return int(s.memoHits.Load()) }

// MemoLen returns the number of recorded sibling outcomes.
func (s *SymStore) MemoLen() int {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	return len(s.memo)
}

// NewSymStore returns a symbolic store bounded to max entries (<= 0
// means the default of 64).
func NewSymStore(max int) *SymStore {
	if max <= 0 {
		max = DefaultMax
	}
	return &SymStore{tab: table[symEntry]{max: max}}
}

// Len returns the number of stored symbolic checkpoints.
func (s *SymStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tab.entries)
}

// Hits returns how many Resume calls found a usable checkpoint.
func (s *SymStore) Hits() int { return int(s.hits.Load()) }

// Misses returns how many Resume calls fell back to a root exploration.
func (s *SymStore) Misses() int { return int(s.misses.Load()) }

// Thinned returns how many stored checkpoints capacity thinning dropped.
func (s *SymStore) Thinned() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.tab.thinned)
}

// Stride returns the current minimum step gap between entries.
func (s *SymStore) Stride() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tab.stride
}

// Add snapshots the exploration mainline st (at st.Steps) with its
// controller, the pending fork queue, and the prefix's exploration
// counters. Everything is cloned copy-on-write — snapshots cost O(1)
// plus O(pending forks). Admission follows the same rules
// as Store.Add (duplicate/stride rejection is cheap and happens before
// any cloning; thinning is transactional); additionally, if the mainline
// controller or any pending fork's controller is not cloneable the
// snapshot cannot be replayed faithfully and Add is a no-op.
func (s *SymStore) Add(st *vm.State, ctl vm.CloneableController, forks []PendingFork, branches, forksUsed, dropped int) {
	steps := st.Steps
	s.mu.Lock()
	ok := s.tab.admissible(steps)
	s.mu.Unlock()
	if !ok {
		return
	}

	e := symEntry{
		state:     st.Clone(),
		ctl:       ctl.CloneCtl().(vm.CloneableController),
		branches:  branches,
		forksUsed: forksUsed,
		dropped:   dropped,
	}
	if len(forks) > 0 {
		e.forks = make([]PendingFork, 0, len(forks))
		for _, f := range forks {
			cc, ok := f.Ctl.(vm.CloneableController)
			if !ok {
				return // an unreplayable fork poisons the whole snapshot
			}
			// Each stored fork gets a stable ID; every Resume of this
			// entry hands the same ID back, keying sibling-outcome memos.
			// A fork that already carries an ID keeps it: the caller is
			// re-depositing a still-unrun clone of a previously stored
			// fork (same state bit for bit), and keeping the ID is what
			// lets a memo recorded against one entry's copy serve resumes
			// of every later entry that still queues it.
			id := f.ID
			if id == 0 {
				id = s.forkIDs.Add(1)
			}
			e.forks = append(e.forks, PendingFork{State: f.State.Clone(), Ctl: cc.CloneCtl(), ID: id})
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab.insert(steps, e)
}

// Resume returns private clones of the latest symbolic checkpoint taken
// at or before limit that accept approves (nil accepts everything; the
// callback inspects the stored mainline state read-only). ok is false
// when no entry qualifies.
func (s *SymStore) Resume(limit int64, accept func(*vm.State) bool) (*SymResume, bool) {
	s.mu.Lock()
	var found symEntry
	var steps int64
	ok := false
	for i := s.tab.search(limit+1) - 1; i >= 0; i-- {
		e := s.tab.entries[i]
		if accept == nil || accept(e.payload.state) {
			found, steps, ok = e.payload, e.steps, true
			break
		}
	}
	s.mu.Unlock()

	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	r := &SymResume{
		State:     found.state.Clone(),
		Ctl:       found.ctl.CloneCtl(),
		Steps:     steps,
		Branches:  found.branches,
		ForksUsed: found.forksUsed,
		Dropped:   found.dropped,
	}
	if len(found.forks) > 0 {
		r.Forks = make([]PendingFork, 0, len(found.forks))
		for _, f := range found.forks {
			cc := f.Ctl.(vm.CloneableController) // stored forks are always cloneable
			r.Forks = append(r.Forks, PendingFork{State: f.State.Clone(), Ctl: cc.CloneCtl(), ID: f.ID})
		}
	}
	return r, true
}
