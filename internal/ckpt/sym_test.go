package ckpt

import (
	"testing"

	"repro/internal/vm"
)

// flatCtl is a deliberately non-cloneable controller.
type flatCtl struct{}

func (flatCtl) PickNext(st *vm.State, runnable []int) int { return runnable[0] }

func symAdd(t *testing.T, s *SymStore, steps int64, forks ...PendingFork) {
	t.Helper()
	s.Add(stateAt(t, steps), vm.NewRoundRobin(), forks, int(steps)/10, int(steps)/100, 0)
}

func TestSymStoreResumeWithPendingForks(t *testing.T) {
	s := NewSymStore(8)
	f1 := PendingFork{State: stateAt(t, 12), Ctl: vm.NewRoundRobin()}
	f2 := PendingFork{State: stateAt(t, 14), Ctl: vm.NewRoundRobin()}
	symAdd(t, s, 10)
	symAdd(t, s, 30, f1, f2)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}

	r, ok := s.Resume(40, nil)
	if !ok || r.Steps != 30 || r.State.Steps != 30 {
		t.Fatalf("Resume(40) = %+v ok %v, want mainline at 30", r, ok)
	}
	if r.Branches != 3 || r.ForksUsed != 0 {
		t.Errorf("counters = branches %d forksUsed %d, want 3/0", r.Branches, r.ForksUsed)
	}
	if len(r.Forks) != 2 || r.Forks[0].State.Steps != 12 || r.Forks[1].State.Steps != 14 {
		t.Fatalf("pending forks not restored in order: %+v", r.Forks)
	}

	// Resumed clones are private: running one resume's mainline and forks
	// must not disturb a second resume or the stored entry.
	vm.NewMachine(r.State, r.Ctl).Run(5)
	vm.NewMachine(r.Forks[0].State, r.Forks[0].Ctl).Run(5)
	r2, ok := s.Resume(40, nil)
	if !ok || r2.State.Steps != 30 || r2.Forks[0].State.Steps != 12 {
		t.Fatal("resumed symbolic clones share state")
	}
	// And mutating the caller's fork states after Add must not leak in.
	vm.NewMachine(f1.State, vm.NewRoundRobin()).Run(5)
	r3, _ := s.Resume(40, nil)
	if r3.Forks[0].State.Steps != 12 {
		t.Fatal("stored fork shares state with the caller")
	}

	if h, m := s.Hits(), s.Misses(); h != 3 || m != 0 {
		t.Errorf("hits/misses = %d/%d, want 3/0", h, m)
	}
	if _, ok := s.Resume(5, nil); ok {
		t.Fatal("Resume(5) found an entry although none is <= 5")
	}
	if s.Misses() != 1 {
		t.Errorf("misses = %d, want 1", s.Misses())
	}
}

func TestSymStoreAcceptFallsBack(t *testing.T) {
	s := NewSymStore(8)
	symAdd(t, s, 10)
	symAdd(t, s, 30)
	r, ok := s.Resume(50, func(st *vm.State) bool { return st.Steps < 20 })
	if !ok || r.Steps != 10 {
		t.Fatalf("accept-filtered resume = %+v ok %v, want steps 10", r, ok)
	}
	if _, ok := s.Resume(50, func(*vm.State) bool { return false }); ok {
		t.Fatal("Resume succeeded although accept rejected everything")
	}
}

// TestSymStoreUncloneableForkRefused: a snapshot whose fork queue cannot
// be replayed faithfully (uncloneable controller) must not be stored at
// all — a half-snapshot would resume with missing siblings.
func TestSymStoreUncloneableForkRefused(t *testing.T) {
	s := NewSymStore(8)
	s.Add(stateAt(t, 10), vm.NewRoundRobin(),
		[]PendingFork{{State: stateAt(t, 8), Ctl: flatCtl{}}}, 0, 0, 0)
	if s.Len() != 0 {
		t.Fatalf("uncloneable fork was stored: len = %d", s.Len())
	}
}

// TestSymStoreThinning: the symbolic store shares the bounded stride-
// thinned table — capacity thins transactionally instead of refusing.
func TestSymStoreThinning(t *testing.T) {
	s := NewSymStore(4)
	for n := int64(10); n <= 80; n += 10 {
		symAdd(t, s, n)
	}
	if s.Len() > 4 {
		t.Fatalf("capacity ignored: len = %d", s.Len())
	}
	if s.Thinned() == 0 || s.Stride() == 0 {
		t.Fatalf("capacity did not thin: thinned=%d stride=%d", s.Thinned(), s.Stride())
	}
	if r, ok := s.Resume(1000, nil); !ok || r.Steps < 40 {
		t.Fatalf("post-thinning coverage lost the tail: %+v ok %v", r, ok)
	}
}
