package vm

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/expr"
)

// StateWire is the serializable form of a State: every expression cell
// flattened into one shared node table (indices reference it), maps
// rendered as sorted slices so the wire form is canonical, and observers
// reduced to opaque (kind, payload) pairs via the caller's codec — the
// VM does not know the concrete observer types analysis layers attach.
//
// The program is deliberately absent: states within one snapshot share
// it, so the container serializes it once and DecodeState re-attaches it.
type StateWire struct {
	Nodes []expr.NodeWire

	Globals     [][]int32
	Heap        []HeapBlockWire
	NextRef     int64
	MutexOwners []int
	Conds       [][]int
	Barriers    [][]int

	Threads []ThreadWire
	Cur     int

	Outputs     []OutputWire
	InValues    []int64
	InPos       int
	InNSymbolic int
	Args        []int64
	SymArgs     []bool
	ArgReads    int

	PathCond  []int32
	HintNames []string
	HintVals  []int64

	Suspended []bool
	Steps     int64
	Halted    bool
	Failure   *RuntimeErrorWire

	Observers []ObsWire
}

// HeapBlockWire is one heap allocation, keyed by its ref.
type HeapBlockWire struct {
	Ref   int64
	Cells []int32
	Freed bool
}

// ThreadWire is one thread.
type ThreadWire struct {
	ID     int
	Status uint8
	Frames []FrameWire

	WaitMutex   int
	WaitCond    int
	WaitJoin    int
	WaitBarrier int
	WaitPhase   int

	Instrs int64
}

// FrameWire is one activation frame.
type FrameWire struct {
	Fn     int
	PC     int
	Locals []int32
	Stack  []int32
}

// OutputWire is one output record; Parts with E == -1 are literals.
type OutputWire struct {
	TID   int
	PC    bytecode.PCRef
	Parts []OutPartWire
}

// OutPartWire is one output piece.
type OutPartWire struct {
	Lit string
	E   int32
}

// RuntimeErrorWire is a serialized RuntimeError.
type RuntimeErrorWire struct {
	Kind uint8
	TID  int
	PC   bytecode.PCRef
	Msg  string
}

// ObsWire is one observer in opaque serialized form.
type ObsWire struct {
	Kind string
	Data []byte
}

// ObsEncoder serializes one observer; ok is false when the observer has
// no wire form (the whole state is then unserializable and the caller
// skips it — persistence is a cache, never an obligation).
type ObsEncoder func(Observer) (kind string, data []byte, ok bool)

// ObsDecoder rebuilds an observer from its wire form.
type ObsDecoder func(kind string, data []byte) (Observer, error)

// EncodeState flattens st into its wire form. ok is false when an
// observer cannot be serialized; encObs may be nil when the state is
// known to carry no observers.
func EncodeState(st *State, encObs ObsEncoder) (w *StateWire, ok bool) {
	enc := expr.NewEncoder()
	w = &StateWire{
		NextRef:     st.NextRef,
		Cur:         st.Cur,
		InValues:    append([]int64(nil), st.In.Values...),
		InPos:       st.In.Pos,
		InNSymbolic: st.In.NSymbolic,
		Args:        append([]int64(nil), st.Args...),
		SymArgs:     append([]bool(nil), st.SymArgs...),
		ArgReads:    st.ArgReads,
		Suspended:   append([]bool(nil), st.Suspended...),
		Steps:       st.Steps,
		Halted:      st.Halted,
	}

	w.Globals = make([][]int32, len(st.Globals))
	for i, cells := range st.Globals {
		w.Globals[i] = enc.AddList(cells)
	}

	// The heap trie iterates in ref order by construction, which is
	// exactly the sorted order the canonical wire form requires.
	if n := st.HeapLen(); n > 0 {
		w.Heap = make([]HeapBlockWire, 0, n)
		st.rangeHeap(func(ref int64, blk *HeapBlock) bool {
			w.Heap = append(w.Heap, HeapBlockWire{Ref: ref, Cells: enc.AddList(blk.Cells), Freed: blk.Freed})
			return true
		})
	}

	w.MutexOwners = make([]int, len(st.Mutexes))
	for i := range st.Mutexes {
		w.MutexOwners[i] = st.Mutexes[i].Owner
	}
	w.Conds = make([][]int, len(st.Conds))
	for i := range st.Conds {
		w.Conds[i] = append([]int(nil), st.Conds[i].Waiters...)
	}
	w.Barriers = make([][]int, len(st.Barriers))
	for i := range st.Barriers {
		w.Barriers[i] = append([]int(nil), st.Barriers[i].Arrived...)
	}

	w.Threads = make([]ThreadWire, len(st.Threads))
	for i, t := range st.Threads {
		tw := ThreadWire{
			ID: t.ID, Status: uint8(t.Status),
			WaitMutex: t.WaitMutex, WaitCond: t.WaitCond, WaitJoin: t.WaitJoin,
			WaitBarrier: t.WaitBarrier, WaitPhase: t.WaitPhase, Instrs: t.Instrs,
		}
		tw.Frames = make([]FrameWire, len(t.Frames))
		for j, f := range t.Frames {
			tw.Frames[j] = FrameWire{Fn: f.Fn, PC: f.PC, Locals: enc.AddList(f.Locals), Stack: enc.AddList(f.Stack)}
		}
		w.Threads[i] = tw
	}

	if len(st.Outputs) > 0 {
		w.Outputs = make([]OutputWire, len(st.Outputs))
		for i, o := range st.Outputs {
			ow := OutputWire{TID: o.TID, PC: o.PC, Parts: make([]OutPartWire, len(o.Parts))}
			for j, p := range o.Parts {
				ow.Parts[j] = OutPartWire{Lit: p.Lit, E: enc.Add(p.E)}
			}
			w.Outputs[i] = ow
		}
	}

	w.PathCond = enc.AddList(st.PathCond)

	if len(st.Hints) > 0 {
		names := make([]string, 0, len(st.Hints))
		for n := range st.Hints {
			names = append(names, n)
		}
		sort.Strings(names)
		w.HintNames = names
		w.HintVals = make([]int64, len(names))
		for i, n := range names {
			w.HintVals[i] = st.Hints[n]
		}
	}

	if st.Failure != nil {
		w.Failure = &RuntimeErrorWire{
			Kind: uint8(st.Failure.Kind), TID: st.Failure.TID,
			PC: st.Failure.PC, Msg: st.Failure.Msg,
		}
	}

	for _, o := range st.Observers {
		if encObs == nil {
			return nil, false
		}
		kind, data, obsOK := encObs(o)
		if !obsOK {
			return nil, false
		}
		w.Observers = append(w.Observers, ObsWire{Kind: kind, Data: data})
	}

	// argSyms is a droppable memo (symbols compare by name and re-mint
	// identically); the next symbolic arg read rebuilds it.
	w.Nodes = enc.Nodes()
	return w, true
}

// DecodeState rebuilds a State from its wire form against prog (the
// serialized snapshot's program, decoded once per container). decObs may
// be nil when the wire form carries no observers.
func DecodeState(prog *bytecode.Program, w *StateWire, decObs ObsDecoder) (*State, error) {
	dec, err := expr.NewDecoder(w.Nodes)
	if err != nil {
		return nil, err
	}
	cells := func(refs []int32) ([]expr.Expr, error) { return dec.GetList(refs) }

	st := &State{
		Prog:    prog,
		NextRef: w.NextRef,
		Cur:     w.Cur,
		In:      Inputs{Values: append([]int64(nil), w.InValues...), Pos: w.InPos, NSymbolic: w.InNSymbolic},
		Args:    append([]int64(nil), w.Args...),
		SymArgs: append([]bool(nil), w.SymArgs...),

		ArgReads:  w.ArgReads,
		Suspended: append([]bool(nil), w.Suspended...),
		Steps:     w.Steps,
		Halted:    w.Halted,
	}

	st.Globals = make([][]expr.Expr, len(w.Globals))
	for i, refs := range w.Globals {
		if st.Globals[i], err = cells(refs); err != nil {
			return nil, err
		}
	}

	// Heap refs are dense from 1 (FREE marks, never deletes), so the
	// sorted wire blocks rebuild the trie by straight appends. A sparse
	// or unsorted payload is a corrupt or foreign snapshot.
	for i, hb := range w.Heap {
		if hb.Ref != int64(i)+1 {
			return nil, fmt.Errorf("vm: heap wire block %d has ref %d, want dense ref %d", i, hb.Ref, i+1)
		}
		c, err := cells(hb.Cells)
		if err != nil {
			return nil, err
		}
		st.heap.Append(&HeapBlock{Cells: c, Freed: hb.Freed}, 0)
	}

	st.Mutexes = make([]mutexState, len(w.MutexOwners))
	for i, o := range w.MutexOwners {
		st.Mutexes[i].Owner = o
	}
	st.Conds = make([]condState, len(w.Conds))
	for i, ws := range w.Conds {
		st.Conds[i].Waiters = append([]int(nil), ws...)
	}
	st.Barriers = make([]barrierState, len(w.Barriers))
	for i, as := range w.Barriers {
		st.Barriers[i].Arrived = append([]int(nil), as...)
	}

	st.Threads = make([]*Thread, len(w.Threads))
	for i, tw := range w.Threads {
		t := &Thread{
			ID: tw.ID, Status: ThreadStatus(tw.Status),
			WaitMutex: tw.WaitMutex, WaitCond: tw.WaitCond, WaitJoin: tw.WaitJoin,
			WaitBarrier: tw.WaitBarrier, WaitPhase: tw.WaitPhase, Instrs: tw.Instrs,
		}
		t.Frames = make([]*Frame, len(tw.Frames))
		for j, fw := range tw.Frames {
			locals, err := cells(fw.Locals)
			if err != nil {
				return nil, err
			}
			stack, err := cells(fw.Stack)
			if err != nil {
				return nil, err
			}
			t.Frames[j] = &Frame{Fn: fw.Fn, PC: fw.PC, Locals: locals, Stack: stack}
		}
		st.Threads[i] = t
	}

	if len(w.Outputs) > 0 {
		st.Outputs = make([]Output, len(w.Outputs))
		for i, ow := range w.Outputs {
			o := Output{TID: ow.TID, PC: ow.PC, Parts: make([]OutPart, len(ow.Parts))}
			for j, pw := range ow.Parts {
				e, err := dec.Get(pw.E)
				if err != nil {
					return nil, err
				}
				o.Parts[j] = OutPart{Lit: pw.Lit, E: e}
			}
			st.Outputs[i] = o
		}
	}

	if st.PathCond, err = cells(w.PathCond); err != nil {
		return nil, err
	}

	if len(w.HintNames) != len(w.HintVals) {
		return nil, fmt.Errorf("vm: hint name/value length mismatch (%d vs %d)", len(w.HintNames), len(w.HintVals))
	}
	st.Hints = make(expr.Assignment, len(w.HintNames))
	for i, n := range w.HintNames {
		st.Hints[n] = w.HintVals[i]
	}

	if w.Failure != nil {
		st.Failure = &RuntimeError{
			Kind: ErrKind(w.Failure.Kind), TID: w.Failure.TID,
			PC: w.Failure.PC, Msg: w.Failure.Msg,
		}
	}

	for _, ow := range w.Observers {
		if decObs == nil {
			return nil, fmt.Errorf("vm: no observer decoder for kind %q", ow.Kind)
		}
		o, err := decObs(ow.Kind, ow.Data)
		if err != nil {
			return nil, err
		}
		st.Observers = append(st.Observers, o)
	}

	st.argSyms = map[int]*expr.Sym{}
	return st, nil
}

// Per-object overheads for MemEstimate, in bytes: an expression cell is
// an interface header (the nodes themselves are shared or interned), and
// the container constants approximate Go's per-element map and struct
// footprints without reflection.
const (
	memCell     = 16
	memMapEntry = 48
	memThread   = 96
	memFrame    = 64
	memOutput   = 48
)

// MemEstimate approximates the state's resident footprint: every
// expression cell (the slab Clone allocates), the heap/hint map entries,
// and the thread/frame/output structures. It walks only container
// lengths — never expression trees — so it is cheap enough to call per
// checkpoint on a metrics scrape, and it is what sizes the cache-tier
// memory budget.
func (st *State) MemEstimate() int64 {
	n := int64(0)
	for _, cells := range st.Globals {
		n += int64(len(cells)) * memCell
	}
	st.rangeHeap(func(_ int64, blk *HeapBlock) bool {
		n += memMapEntry + int64(len(blk.Cells))*memCell
		return true
	})
	for _, t := range st.Threads {
		n += memThread
		for _, f := range t.Frames {
			n += memFrame + int64(len(f.Locals)+len(f.Stack))*memCell
		}
	}
	for _, o := range st.Outputs {
		n += memOutput + int64(len(o.Parts))*memCell
	}
	n += int64(len(st.PathCond)) * memCell
	n += int64(len(st.Hints)) * memMapEntry
	n += int64(len(st.In.Values)+len(st.Args))*8 + int64(len(st.SymArgs)+len(st.Suspended))
	return n
}
