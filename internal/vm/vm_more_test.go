package vm

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/expr"
)

func TestWaitWithoutMutexErrors(t *testing.T) {
	_, res := run(t, `
mutex m
cond c
fn main() { wait(c, m) }`, nil, nil)
	if res.Kind != StopError || res.Err.Kind != ErrUnlockNotOwned {
		t.Fatalf("wait without holding the mutex must error, got %v/%v", res.Kind, res.Err)
	}
}

func TestSignalWithoutWaitersIsNoop(t *testing.T) {
	st, res := run(t, `
cond c
fn main() {
	signal(c)
	broadcast(c)
	print("ok")
}`, nil, nil)
	wantFinished(t, res)
	if outputText(st) != "ok\n" {
		t.Fatalf("got %q", outputText(st))
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	st, res := run(t, `
var round1 = 0
var round2 = 0
barrier b(2)
fn worker() {
	round1 = round1 + 1
	barrier_wait(b)
	barrier_wait(b)
	round2 = round2 + 1
}
fn main() {
	let w = spawn worker()
	barrier_wait(b)
	barrier_wait(b)
	join(w)
	print(round1, " ", round2)
}`, nil, nil)
	wantFinished(t, res)
	if outputText(st) != "1 1\n" {
		t.Fatalf("got %q", outputText(st))
	}
}

func TestSuspendMakesStateStuck(t *testing.T) {
	p := compileSrc(t, `
fn side() { yield() }
fn main() {
	let s = spawn side()
	join(s)
}`)
	st := NewState(p, nil, nil)
	st.Suspend(0) // suspend main before anything runs
	m := NewMachine(st, NewRoundRobin())
	res := m.Run(10_000)
	if res.Kind != StopStuck {
		t.Fatalf("want stuck (only suspended thread runnable), got %v", res.Kind)
	}
	st.Resume(0)
	res = m.Run(-1)
	wantFinished(t, res)
}

func TestStickyControllerPrefersCurrent(t *testing.T) {
	src := `
var order[4]
var n = 0
fn w(tag) {
	order[n] = tag
	n = n + 1
	yield()
	order[n] = tag
	n = n + 1
}
fn main() {
	let a = spawn w(1)
	let b = spawn w(2)
	join(a)
	join(b)
	print(order[0], order[1], order[2], order[3])
}`
	p := compileSrc(t, src)
	st := NewState(p, nil, nil)
	m := NewMachine(st, Sticky{})
	res := m.Run(-1)
	wantFinished(t, res)
	// Sticky keeps a thread running across its yield: each worker's two
	// writes are adjacent.
	if got := outputText(st); got != "1122\n" && got != "2211\n" {
		t.Fatalf("sticky scheduling interleaved: %q", got)
	}
}

func TestJoinInvalidTarget(t *testing.T) {
	_, res := run(t, `fn main() { join(42) }`, nil, nil)
	if res.Kind != StopError || res.Err.Kind != ErrJoinBad {
		t.Fatalf("got %v/%v", res.Kind, res.Err)
	}
	_, res = run(t, `fn main() { join(0) }`, nil, nil)
	if res.Kind != StopError || res.Err.Kind != ErrJoinBad {
		t.Fatalf("self-join: got %v/%v", res.Kind, res.Err)
	}
}

func TestAllocBounds(t *testing.T) {
	_, res := run(t, `fn main() { let p = alloc(0) }`, nil, nil)
	if res.Kind != StopError || res.Err.Kind != ErrAllocSize {
		t.Fatalf("alloc(0): got %v/%v", res.Kind, res.Err)
	}
	_, res = run(t, `fn main() { let p = alloc(0 - 5) }`, nil, nil)
	if res.Kind != StopError || res.Err.Kind != ErrAllocSize {
		t.Fatalf("alloc(-5): got %v/%v", res.Kind, res.Err)
	}
	_, res = run(t, `fn main() { let p = alloc(9999999) }`, nil, nil)
	if res.Kind != StopError || res.Err.Kind != ErrAllocSize {
		t.Fatalf("huge alloc: got %v/%v", res.Kind, res.Err)
	}
}

func TestFreeBadRef(t *testing.T) {
	_, res := run(t, `fn main() { free(12345) }`, nil, nil)
	if res.Kind != StopError || res.Err.Kind != ErrBadRef {
		t.Fatalf("got %v/%v", res.Kind, res.Err)
	}
}

func TestSymbolicArgMemoized(t *testing.T) {
	p := compileSrc(t, `
fn main() {
	let a = arg(0)
	let b = arg(0)
	print(a - b)
}`)
	st := NewState(p, []int64{9}, nil)
	st.MarkSymArg(0)
	m := NewMachine(st, NewRoundRobin())
	res := m.Run(-1)
	wantFinished(t, res)
	// Both reads must yield the same symbol, so a-b folds to 0.
	if got := outputText(st); got != "0\n" {
		t.Fatalf("arg symbol not memoized: %q", got)
	}
}

func TestFormatLocNames(t *testing.T) {
	p := compileSrc(t, `
var counter = 0
var buf[4]
fn main() { counter = 1; buf[2] = 3 }`)
	if s := FormatLoc(p, Loc{Space: SpaceGlobal, Obj: 0}); s != "counter" {
		t.Fatalf("got %q", s)
	}
	if s := FormatLoc(p, Loc{Space: SpaceGlobal, Obj: 1, Elem: 2}); s != "buf[2]" {
		t.Fatalf("got %q", s)
	}
	if s := FormatLoc(p, Loc{Space: SpaceHeap, Obj: 7, Elem: 1}); !strings.Contains(s, "heap") {
		t.Fatalf("got %q", s)
	}
}

func TestOutputRendering(t *testing.T) {
	o := Output{Parts: []OutPart{{Lit: "x="}, {E: expr.NewConst(5)}, {Lit: "!"}}}
	if o.String() != "x=5!" {
		t.Fatalf("got %q", o.String())
	}
}

func TestStopKindAndStatusStrings(t *testing.T) {
	if StopFinished.String() != "finished" || StopDeadlock.String() != "deadlock" ||
		StopStuck.String() != "stuck" || StopBudget.String() != "budget" {
		t.Fatal("stop kind names wrong")
	}
	if ThRunnable.String() != "runnable" || ThExited.String() != "exited" {
		t.Fatal("thread status names wrong")
	}
	if ErrDivZero.String() != "division by zero" {
		t.Fatal("err kind names wrong")
	}
}

func TestRuntimeErrorMessage(t *testing.T) {
	e := &RuntimeError{Kind: ErrOutOfBounds, TID: 2, PC: bytecode.PCRef{Fn: 1, PC: 3, Line: 9}, Msg: "index 7"}
	s := e.Error()
	for _, want := range []string{"thread 2", "out-of-bounds", "index 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("error %q missing %q", s, want)
		}
	}
}

func TestSharedVsFullFingerprint(t *testing.T) {
	p := compileSrc(t, `
var g = 0
fn main() {
	let local = 5
	g = 1
	yield()
	g = 1
}`)
	st := NewState(p, nil, nil)
	m := NewMachine(st, NewRoundRobin())
	m.Break = func(s *State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return in.Op == bytecode.YIELD
	}
	m.Run(-1)
	sharedBefore := st.SharedMemoryFingerprint()
	fullBefore := st.MemoryFingerprint()
	m.Break = nil
	m.Run(-1)
	// The second g=1 is redundant: shared memory unchanged, but the
	// thread advanced, so the full fingerprint must differ.
	if st.SharedMemoryFingerprint() != sharedBefore {
		t.Fatal("shared memory should be unchanged by a redundant write")
	}
	if st.MemoryFingerprint() == fullBefore {
		t.Fatal("full fingerprint should reflect thread progress")
	}
}

func TestConditionVariableFIFO(t *testing.T) {
	st, res := run(t, `
var served = 0
var firstServed = 0
mutex m
cond c
fn waiter(tag) {
	lock(m)
	wait(c, m)
	served = served + 1
	if served == 1 { firstServed = tag }
	unlock(m)
}
fn main() {
	let a = spawn waiter(1)
	yield()
	yield()
	let b = spawn waiter(2)
	yield()
	yield()
	signal(c)
	signal(c)
	join(a)
	join(b)
	print(firstServed)
}`, nil, nil)
	wantFinished(t, res)
	// waiter 1 blocked first, so FIFO signal wakes it first.
	if got := outputText(st); got != "1\n" {
		t.Fatalf("cond waiters not FIFO: %q", got)
	}
}

func TestCanBeWrittenByOther(t *testing.T) {
	p := compileSrc(t, `
var shared = 0
var private = 0
fn writer() { shared = 1 }
fn main() {
	let w = spawn writer()
	let x = private
	join(w)
}`)
	st := NewState(p, nil, nil)
	m := NewMachine(st, NewRoundRobin())
	// Stop at main's read of `private`, while the writer is still alive.
	m.Break = func(s *State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return tid == 0 && in.Op == bytecode.LOADG
	}
	m.Run(-1)
	sharedID := int64(p.GlobalID("shared"))
	privID := int64(p.GlobalID("private"))
	if !st.CanBeWrittenByOther(Loc{Space: SpaceGlobal, Obj: sharedID}, 0) {
		t.Fatal("writer can still write shared")
	}
	if st.CanBeWrittenByOther(Loc{Space: SpaceGlobal, Obj: privID}, 0) {
		t.Fatal("nobody else writes private")
	}
	if !st.CanBeWrittenByOther(Loc{Space: SpaceHeap, Obj: 1}, 0) {
		t.Fatal("heap locations are conservatively writable")
	}
}

func TestPCRefOfExitedThread(t *testing.T) {
	p := compileSrc(t, `
fn w() {}
fn main() { let t = spawn w(); join(t) }`)
	st := NewState(p, nil, nil)
	vmres := NewMachine(st, NewRoundRobin()).Run(-1)
	wantFinished(t, vmres)
	ref := st.Threads[1].PCRef(p)
	if ref.Fn != -1 {
		t.Fatalf("exited thread PCRef should be sentinel, got %+v", ref)
	}
}

func TestDivModBySymbolicNonZero(t *testing.T) {
	p := compileSrc(t, `
fn main() {
	let v = input()
	print(100 / v, " ", 100 % v)
}`)
	st := NewState(p, nil, []int64{7})
	st.In.NSymbolic = 1
	res := NewMachine(st, NewRoundRobin()).Run(-1)
	wantFinished(t, res)
	// The concolic hint (7) is non-zero, so the division proceeds with a
	// recorded constraint v != 0.
	found := false
	for _, c := range st.PathCond {
		if strings.Contains(c.String(), "!= 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing divisor constraint in %v", st.PathCond)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	st, res := run(t, `
fn main() {
	let s = 0
	for i = 0, 1000 { s += i }
	print(s)
}`, nil, nil)
	wantFinished(t, res)
	if outputText(st) != "499500\n" {
		t.Fatalf("got %q", outputText(st))
	}
}
