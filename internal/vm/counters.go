package vm

import "sync/atomic"

// Counters aggregates interpreter fast-path statistics across the many
// transient Machines one analysis creates (replay, enforcement, every
// multi-path exploration segment). A Machine tallies locally — plain
// fields, no synchronization on the instruction path — and flushes the
// tallies into the attached Counters once per Run call, so concurrent
// workers sharing one Counters pay one atomic add per run segment, not
// per instruction.
type Counters struct {
	// FusedOps counts superinstructions executed (each stands for
	// FusedInstr.Len original instructions).
	FusedOps atomic.Int64
	// InternedConsts counts constants served from expr's intern table on
	// behalf of executed PUSH instructions and fused constants — the
	// allocations the intern table removed from the hot path.
	InternedConsts atomic.Int64
}
