package vm

import "sync/atomic"

// Counters aggregates interpreter fast-path statistics across the many
// transient Machines one analysis creates (replay, enforcement, every
// multi-path exploration segment). A Machine tallies locally — plain
// fields, no synchronization on the instruction path — and flushes the
// tallies into the attached Counters once per Run call, so concurrent
// workers sharing one Counters pay one atomic add per run segment, not
// per instruction.
type Counters struct {
	// FusedOps counts superinstructions executed (each stands for
	// FusedInstr.Len original instructions).
	FusedOps atomic.Int64
	// InternedConsts counts constants served from expr's intern table on
	// behalf of executed PUSH instructions and fused constants — the
	// allocations the intern table removed from the hot path.
	InternedConsts atomic.Int64
	// CloneAllocs / CloneBytes meter State.Clone itself: how many
	// allocations and bytes the snapshots of this analysis cost (the
	// persistent representation's price, not the states' footprints).
	// States attached via State.SetCounters add directly; Clone is on
	// checkpoint paths, not the instruction path, so the atomic adds are
	// off the interpreter's hot loop.
	CloneAllocs atomic.Int64
	CloneBytes  atomic.Int64
}
