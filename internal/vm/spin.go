package vm

import (
	"sort"

	"repro/internal/bytecode"
)

// spinInfo tracks, per thread, how often each jump instruction executed
// and which shared locations were read since tracking started. It backs
// the timeout diagnosis of Algorithm 1 (§3.2, §3.5): when enforcing the
// alternate ordering times out, a thread stuck in a loop whose exit
// condition reads a shared variable that some other live thread may still
// write is spinning on ad-hoc synchronization (race is "single ordering");
// a loop whose exit condition no live thread can change is an infinite
// loop (race is "spec violated"), following the criterion of [60].
//
// Visit counts live in dense per-function slabs indexed by pc (pcCounts)
// rather than hash maps: trackSpinPC runs on every interpreted
// instruction of an enforcement, and the map traffic of the previous
// implementation accounted for a measurable share of pbzip2-style
// classification time. The current and previous windows double-buffer
// their slabs, so a window rollover zeroes the touched counters in place
// instead of allocating fresh maps.
type spinInfo struct {
	visits *pcCounts
	reads  map[Loc]struct{}
	// previous window, kept so a diagnosis right after a reset still
	// sees a full window's worth of data
	prevVisits *pcCounts
	prevReads  map[Loc]struct{}
	ticks      int64
}

// pcCounts is a dense pc-indexed visit counter, one lazily allocated
// slab per function. touched records which counters are nonzero so reset
// and iteration cost O(distinct pcs), not O(program size).
type pcCounts struct {
	funcs   [][]int32
	touched []uint64 // packed fn<<32|pc of nonzero counters
}

func newPCCounts(p *bytecode.Program) *pcCounts {
	return &pcCounts{funcs: make([][]int32, len(p.Funcs))}
}

func (c *pcCounts) inc(p *bytecode.Program, fn, pc int) {
	s := c.funcs[fn]
	if s == nil {
		s = make([]int32, len(p.Funcs[fn].Code))
		c.funcs[fn] = s
	}
	if s[pc] == 0 {
		c.touched = append(c.touched, uint64(uint32(fn))<<32|uint64(uint32(pc)))
	}
	s[pc]++
}

// reset zeroes the touched counters, keeping the slabs for reuse.
func (c *pcCounts) reset() {
	for _, k := range c.touched {
		c.funcs[k>>32][uint32(k)] = 0
	}
	c.touched = c.touched[:0]
}

// anyAtLeast reports whether some counter reached threshold.
func (c *pcCounts) anyAtLeast(threshold int32) bool {
	for _, k := range c.touched {
		if c.funcs[k>>32][uint32(k)] >= threshold {
			return true
		}
	}
	return false
}

// spinWindow is the number of tracked instructions after which a thread's
// spin data is reset. Windowing scopes the read set to the loop the
// thread is currently stuck in: shared reads made before entering the
// loop (e.g. the racy read that selected this path) age out and do not
// contaminate the ad-hoc-sync test.
const spinWindow = 8192

func (m *Machine) spinFor(tid int) *spinInfo {
	for len(m.spin) <= tid {
		m.spin = append(m.spin, nil)
	}
	si := m.spin[tid]
	if si == nil {
		si = &spinInfo{visits: newPCCounts(m.St.Prog), reads: map[Loc]struct{}{}}
		m.spin[tid] = si
	}
	return si
}

func (m *Machine) trackSpinPC(tid int, in bytecode.Instr, pc bytecode.PCRef) {
	if !m.SpinTrack {
		return
	}
	si := m.spinFor(tid)
	si.ticks++
	if si.ticks%spinWindow == 0 {
		// Double-buffer rollover: the full window just recorded becomes
		// the previous one, and the old previous buffers are cleared in
		// place to receive the next window.
		si.prevVisits, si.visits = si.visits, si.prevVisits
		si.prevReads, si.reads = si.reads, si.prevReads
		if si.visits == nil {
			si.visits = newPCCounts(m.St.Prog)
		} else {
			si.visits.reset()
		}
		if si.reads == nil {
			si.reads = map[Loc]struct{}{}
		} else {
			clear(si.reads)
		}
	}
	if in.Op != bytecode.JMP && in.Op != bytecode.JZ {
		return
	}
	si.visits.inc(m.St.Prog, pc.Fn, pc.PC)
}

func (m *Machine) trackSpinRead(tid int, loc Loc) {
	if !m.SpinTrack {
		return
	}
	m.spinFor(tid).reads[loc] = struct{}{}
}

// spinLoopThreshold is the visit count above which a jump is considered
// part of a non-terminating loop during a budgeted run.
const spinLoopThreshold = 32

// SpinDiagnosis is the result of DiagnoseSpin.
type SpinDiagnosis struct {
	// Looping: the thread repeatedly executed the same jump.
	Looping bool
	// SharedReads: shared locations read while looping.
	SharedReads []Loc
	// WritableByOther: some other live, unsuspended thread may still
	// write one of SharedReads (per the static write-set analysis) —
	// the loop is ad-hoc synchronization, not an infinite loop.
	WritableByOther bool
}

// DiagnoseSpin inspects the spin-tracking data for tid. Call it after Run
// returned StopBudget with SpinTrack enabled.
func (m *Machine) DiagnoseSpin(tid int) SpinDiagnosis {
	var d SpinDiagnosis
	if tid < 0 || tid >= len(m.spin) || m.spin[tid] == nil {
		return d
	}
	si := m.spin[tid]
	visits := si.visits
	reads := si.reads
	if si.ticks%spinWindow < spinWindow/4 && si.prevVisits != nil {
		// Fresh window: diagnose on the previous one instead.
		visits, reads = si.prevVisits, si.prevReads
	}
	d.Looping = visits.anyAtLeast(spinLoopThreshold)
	if !d.Looping {
		return d
	}
	for loc := range reads {
		d.SharedReads = append(d.SharedReads, loc)
		if m.St.CanBeWrittenByOther(loc, tid) {
			d.WritableByOther = true
		}
	}
	sort.Slice(d.SharedReads, func(i, j int) bool {
		if d.SharedReads[i].Space != d.SharedReads[j].Space {
			return d.SharedReads[i].Space < d.SharedReads[j].Space
		}
		return d.SharedReads[i].Obj < d.SharedReads[j].Obj
	})
	return d
}

// CanBeWrittenByOther reports whether any live thread other than tid could
// still write loc, per the program's static transitive write sets. Heap
// locations are conservatively considered writable (any thread holding the
// reference may store through it).
func (st *State) CanBeWrittenByOther(loc Loc, tid int) bool {
	if loc.Space == SpaceHeap {
		return true
	}
	g := int(loc.Obj)
	for _, t := range st.Threads {
		if t.ID == tid || t.Status == ThExited {
			continue
		}
		for _, f := range t.Frames {
			ws := st.Prog.WriteSet(f.Fn)
			if _, ok := ws[g]; ok {
				return true
			}
		}
	}
	return false
}
