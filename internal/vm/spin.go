package vm

import "repro/internal/bytecode"

// spinInfo tracks, per thread, how often each jump instruction executed
// and which shared locations were read since tracking started. It backs
// the timeout diagnosis of Algorithm 1 (§3.2, §3.5): when enforcing the
// alternate ordering times out, a thread stuck in a loop whose exit
// condition reads a shared variable that some other live thread may still
// write is spinning on ad-hoc synchronization (race is "single ordering");
// a loop whose exit condition no live thread can change is an infinite
// loop (race is "spec violated"), following the criterion of [60].
type spinInfo struct {
	visits map[uint64]int
	reads  map[Loc]struct{}
	// previous window, kept so a diagnosis right after a reset still
	// sees a full window's worth of data
	prevVisits map[uint64]int
	prevReads  map[Loc]struct{}
	ticks      int64
}

// spinWindow is the number of tracked instructions after which a thread's
// spin data is reset. Windowing scopes the read set to the loop the
// thread is currently stuck in: shared reads made before entering the
// loop (e.g. the racy read that selected this path) age out and do not
// contaminate the ad-hoc-sync test.
const spinWindow = 8192

func pcKey(pc bytecode.PCRef) uint64 {
	return uint64(uint32(pc.Fn))<<32 | uint64(uint32(pc.PC))
}

func (m *Machine) spinFor(tid int) *spinInfo {
	if m.spin == nil {
		m.spin = map[int]*spinInfo{}
	}
	si := m.spin[tid]
	if si == nil {
		si = &spinInfo{visits: map[uint64]int{}, reads: map[Loc]struct{}{}}
		m.spin[tid] = si
	}
	return si
}

func (m *Machine) trackSpinPC(tid int, in bytecode.Instr, pc bytecode.PCRef) {
	if !m.SpinTrack {
		return
	}
	si := m.spinFor(tid)
	si.ticks++
	if si.ticks%spinWindow == 0 {
		si.prevVisits, si.prevReads = si.visits, si.reads
		si.visits = map[uint64]int{}
		si.reads = map[Loc]struct{}{}
	}
	if in.Op != bytecode.JMP && in.Op != bytecode.JZ {
		return
	}
	si.visits[pcKey(pc)]++
}

func (m *Machine) trackSpinRead(tid int, loc Loc) {
	if !m.SpinTrack {
		return
	}
	m.spinFor(tid).reads[loc] = struct{}{}
}

// spinLoopThreshold is the visit count above which a jump is considered
// part of a non-terminating loop during a budgeted run.
const spinLoopThreshold = 32

// SpinDiagnosis is the result of DiagnoseSpin.
type SpinDiagnosis struct {
	// Looping: the thread repeatedly executed the same jump.
	Looping bool
	// SharedReads: shared locations read while looping.
	SharedReads []Loc
	// WritableByOther: some other live, unsuspended thread may still
	// write one of SharedReads (per the static write-set analysis) —
	// the loop is ad-hoc synchronization, not an infinite loop.
	WritableByOther bool
}

// DiagnoseSpin inspects the spin-tracking data for tid. Call it after Run
// returned StopBudget with SpinTrack enabled.
func (m *Machine) DiagnoseSpin(tid int) SpinDiagnosis {
	var d SpinDiagnosis
	si := m.spin[tid]
	if si == nil {
		return d
	}
	visits := si.visits
	reads := si.reads
	if si.ticks%spinWindow < spinWindow/4 && si.prevVisits != nil {
		// Fresh window: diagnose on the previous one instead.
		visits, reads = si.prevVisits, si.prevReads
	}
	for _, n := range visits {
		if n >= spinLoopThreshold {
			d.Looping = true
			break
		}
	}
	if !d.Looping {
		return d
	}
	for loc := range reads {
		d.SharedReads = append(d.SharedReads, loc)
		if m.St.CanBeWrittenByOther(loc, tid) {
			d.WritableByOther = true
		}
	}
	return d
}

// CanBeWrittenByOther reports whether any live thread other than tid could
// still write loc, per the program's static transitive write sets. Heap
// locations are conservatively considered writable (any thread holding the
// reference may store through it).
func (st *State) CanBeWrittenByOther(loc Loc, tid int) bool {
	if loc.Space == SpaceHeap {
		return true
	}
	g := int(loc.Obj)
	for _, t := range st.Threads {
		if t.ID == tid || t.Status == ThExited {
			continue
		}
		for _, f := range t.Frames {
			ws := st.Prog.WriteSet(f.Fn)
			if _, ok := ws[g]; ok {
				return true
			}
		}
	}
	return false
}
