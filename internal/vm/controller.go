package vm

// RoundRobin schedules threads in increasing thread-id order, switching at
// every scheduling point. It is deterministic, which makes plain runs
// reproducible without a trace.
type RoundRobin struct {
	last int
}

// NewRoundRobin returns a fresh round-robin controller.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// RoundRobinAt returns a round-robin controller resuming its rotation
// after thread id last (-1 for a fresh rotation). It reconstructs a
// serialized controller at its recorded position.
func RoundRobinAt(last int) *RoundRobin { return &RoundRobin{last: last} }

// Last returns the thread id chosen most recently (-1 before the first
// choice) — the controller's full serializable position.
func (rr *RoundRobin) Last() int { return rr.last }

// PickNext returns the first runnable thread with id greater than the last
// choice, wrapping around.
func (rr *RoundRobin) PickNext(st *State, runnable []int) int {
	for _, t := range runnable {
		if t > rr.last {
			rr.last = t
			return t
		}
	}
	rr.last = runnable[0]
	return runnable[0]
}

// Sticky keeps the current thread running as long as it is runnable; it
// models a non-preemptive scheduler and produces the fewest context
// switches. Useful as a replay fallback.
type Sticky struct{}

// PickNext prefers the current thread.
func (Sticky) PickNext(st *State, runnable []int) int {
	for _, t := range runnable {
		if t == st.Cur {
			return t
		}
	}
	return runnable[0]
}

// Random picks uniformly at random with a deterministic xorshift64 stream;
// the multi-schedule phase (§3.4) runs alternates under different seeds so
// "practically every alternate execution [has] a schedule that differs
// from all others".
type Random struct {
	s uint64
}

// NewRandom returns a random controller with the given non-zero seed.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Random{s: seed}
}

// RandomAt returns a random controller continuing from the exact
// xorshift state s (serialization support; use NewRandom to seed).
func RandomAt(s uint64) *Random { return &Random{s: s} }

// State returns the controller's current xorshift state, the complete
// information needed to reproduce its future picks.
func (r *Random) State() uint64 { return r.s }

func (r *Random) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// PickNext picks a uniformly random runnable thread.
func (r *Random) PickNext(st *State, runnable []int) int {
	return runnable[int(r.next()%uint64(len(runnable)))]
}

// CloneableController is a controller whose scheduling position can be
// duplicated when an execution state forks during multi-path analysis.
type CloneableController interface {
	Controller
	CloneCtl() Controller
}

// CloneCtl returns a copy continuing from the same rotation position.
func (rr *RoundRobin) CloneCtl() Controller { return &RoundRobin{last: rr.last} }

// CloneCtl returns a copy (Sticky is stateless).
func (s Sticky) CloneCtl() Controller { return Sticky{} }

// CloneCtl returns a copy continuing the same random stream.
func (r *Random) CloneCtl() Controller { return &Random{s: r.s} }
