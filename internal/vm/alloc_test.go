// Allocation and aliasing guards for the interpreter hot path and the
// copy-on-write state snapshots. The file is an external test package so
// it can drive the same workloads the checked-in benchmarks use
// (internal/workloads imports the engine, which imports vm).
package vm_test

import (
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// tightLoopSrc is a pure thread-local arithmetic loop: the whole body is
// LOADL/PUSH/binop/STOREL traffic whose values stay inside the expr
// intern range, so a warm interpreter must execute it without a single
// heap allocation. The & mask keeps i within [0, 128).
const tightLoopSrc = `
fn main() {
	let i = 0
	while 1 {
		i = (i + 1) & 127
	}
}`

func tightLoopMachine(t *testing.T, noFuse bool) *vm.Machine {
	t.Helper()
	p := bytecode.MustCompile(tightLoopSrc, "tightloop", bytecode.Options{NoFuse: noFuse})
	st := vm.NewState(p, nil, nil)
	m := vm.NewMachine(st, vm.NewRoundRobin())
	// Warm up: let the operand stack and runnable scratch reach their
	// steady-state capacity.
	if res := m.Run(2_000); res.Kind != vm.StopBudget {
		t.Fatalf("warm-up run: %v", res.Kind)
	}
	return m
}

// TestExecAllocFree is the regression guard for the interpreter's
// allocation-lean hot path (intern table + superinstruction fusion): a
// tight arithmetic loop must execute with zero allocations per
// instruction, fused and unfused alike. Before the intern table, every
// arithmetic op minted a Const on the heap.
func TestExecAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		noFuse bool
	}{
		{"fused", false},
		{"unfused", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tightLoopMachine(t, tc.noFuse)
			allocs := testing.AllocsPerRun(20, func() {
				if res := m.Run(5_000); res.Kind != vm.StopBudget {
					t.Fatalf("run: %v", res.Kind)
				}
			})
			if allocs != 0 {
				t.Errorf("tight loop allocates %v times per 5000 instructions, want 0", allocs)
			}
		})
	}
}

// cloneSink keeps State.Clone results live so AllocsPerRun measures the
// clone itself, not a dead store the compiler elides.
var cloneSink *vm.State

// checkpointState reproduces the BenchmarkVM_Checkpoint setup verbatim
// (the memcached workload under a 5000-instruction budget, which it
// finishes within): heap blocks, globals, outputs, and thread history
// all populated.
func checkpointState(t *testing.T) *vm.State {
	t.Helper()
	return memcachedRun(t, 5_000)
}

// midState parks the memcached workload mid-execution (it finishes at
// ~336 instructions), so every layer is still live and mutable.
func midState(t *testing.T) *vm.State {
	t.Helper()
	st := memcachedRun(t, 150)
	if st.Halted {
		t.Fatal("memcached finished within the warm-up budget; midState needs a live state")
	}
	return st
}

func memcachedRun(t *testing.T, budget int64) *vm.State {
	t.Helper()
	w := workloads.Memcached()
	p := w.Compile()
	st := vm.NewState(p, w.Args, w.Inputs)
	vm.NewMachine(st, vm.NewRoundRobin()).Run(budget)
	return st
}

// TestCloneAllocs is the O(1)-snapshot guard: on the
// BenchmarkVM_Checkpoint workload, State.Clone must cost at most 2
// allocations regardless of how much state the run accumulated. With
// the persistent representation a clone is one State allocation (plus
// one slice header per observer, of which this state has none); the
// bound leaves headroom of exactly one before the guard trips.
func TestCloneAllocs(t *testing.T) {
	st := checkpointState(t)
	allocs := testing.AllocsPerRun(100, func() {
		cloneSink = st.Clone()
	})
	if allocs > 2 {
		t.Errorf("State.Clone costs %v allocs on the checkpoint workload, want <= 2", allocs)
	}
}

// TestCloneAliasingHammer hammers the copy-on-write invariant in both
// directions: after a clone, running either side must not bleed into the
// other, and a child that replays the same schedule as its parent must
// land on the identical state. Under -race this also proves the write
// barriers never touch memory the other side still reads — the two
// machines run concurrently in the final phase.
func TestCloneAliasingHammer(t *testing.T) {
	type fp struct{ mem, out string }
	snap := func(st *vm.State) fp { return fp{st.MemoryFingerprint(), st.RenderOutputs()} }

	t.Run("parent-first", func(t *testing.T) {
		parent := midState(t)
		child := parent.Clone()
		base := snap(parent)
		if got := snap(child); got != base {
			t.Fatalf("clone diverges before any write:\nparent: %+v\nchild:  %+v", base, got)
		}
		// Mutate the parent; the child must still see the snapshot.
		vm.NewMachine(parent, vm.NewRoundRobin()).Run(100)
		after := snap(parent)
		if after == base {
			t.Fatal("100 instructions of memcached left memory and outputs untouched; hammer is inert")
		}
		if got := snap(child); got != base {
			t.Fatalf("parent writes leaked into the clone:\nwant: %+v\ngot:  %+v", base, got)
		}
		// The child replaying the same deterministic schedule must
		// converge on the parent's state — proof nothing was lost either.
		vm.NewMachine(child, vm.NewRoundRobin()).Run(100)
		if got := snap(child); got != after {
			t.Fatalf("child replay of the same schedule diverged:\nparent: %+v\nchild:  %+v", after, got)
		}
	})

	t.Run("child-first", func(t *testing.T) {
		parent := midState(t)
		child := parent.Clone()
		base := snap(parent)
		// Mutate the child; the parent must still see the snapshot.
		vm.NewMachine(child, vm.NewRoundRobin()).Run(100)
		if got := snap(parent); got != base {
			t.Fatalf("child writes leaked into the parent:\nwant: %+v\ngot:  %+v", base, got)
		}
		vm.NewMachine(parent, vm.NewRoundRobin()).Run(100)
		if got, want := snap(parent), snap(child); got != want {
			t.Fatalf("parent replay of the same schedule diverged:\nchild:  %+v\nparent: %+v", want, got)
		}
	})

	t.Run("concurrent", func(t *testing.T) {
		// Reference: one state run straight through.
		ref := midState(t)
		vm.NewMachine(ref, vm.NewRoundRobin()).Run(120)
		want := snap(ref)

		parent := midState(t)
		clones := make([]*vm.State, 8)
		for i := range clones {
			clones[i] = parent.Clone()
		}
		var wg sync.WaitGroup
		for _, st := range append(clones, parent) {
			st := st
			wg.Add(1)
			go func() {
				defer wg.Done()
				vm.NewMachine(st, vm.NewRoundRobin()).Run(120)
			}()
		}
		wg.Wait()
		for i, st := range append(clones, parent) {
			if got := snap(st); got != want {
				t.Errorf("concurrent run %d diverged from the sequential reference:\nwant: %+v\ngot:  %+v", i, want, got)
			}
		}
	})
}

// TestFusedMatchesUnfused locks the superinstruction overlay to the
// plain interpreter instruction by instruction: the same program
// compiled with and without fusion must land on identical memory,
// identical per-thread instruction counts, and identical total steps at
// every budget — including budgets that land inside a fused sequence
// (where the fused machine must fall back to single-instruction
// execution rather than overshoot).
func TestFusedMatchesUnfused(t *testing.T) {
	src := `
var g = 0
fn main() {
	let i = 0
	let acc = 0
	while i < 40 {
		i = i + 1
		acc = acc + (i * 3) - 1
		if i > 20 {
			acc = acc - 2
		}
	}
	g = acc
	print("acc=", acc)
}`
	fused := bytecode.MustCompile(src, "fusecheck", bytecode.Options{})
	plain := bytecode.MustCompile(src, "fusecheck", bytecode.Options{NoFuse: true})
	if fused.FusedCount() == 0 {
		t.Fatal("fusion pass found nothing to fuse in an arithmetic loop")
	}
	if plain.FusedCount() != 0 {
		t.Fatal("NoFuse program carries a fusion overlay")
	}
	for _, budget := range []int64{-1, 1, 2, 3, 5, 7, 50, 123, 124, 125, 126, 127, 500} {
		fs := vm.NewState(fused, nil, nil)
		ps := vm.NewState(plain, nil, nil)
		fres := vm.NewMachine(fs, vm.NewRoundRobin()).Run(budget)
		pres := vm.NewMachine(ps, vm.NewRoundRobin()).Run(budget)
		if fres.Kind != pres.Kind || fres.Steps != pres.Steps {
			t.Fatalf("budget %d: fused (%v, %d steps) != plain (%v, %d steps)",
				budget, fres.Kind, fres.Steps, pres.Kind, pres.Steps)
		}
		if fs.Steps != ps.Steps || fs.Threads[0].Instrs != ps.Threads[0].Instrs {
			t.Fatalf("budget %d: counters diverge: steps %d/%d instrs %d/%d",
				budget, fs.Steps, ps.Steps, fs.Threads[0].Instrs, ps.Threads[0].Instrs)
		}
		if fp, pp := fs.MemoryFingerprint(), ps.MemoryFingerprint(); fp != pp {
			t.Fatalf("budget %d: memory diverges:\nfused: %s\nplain: %s", budget, fp, pp)
		}
		if fs.RenderOutputs() != ps.RenderOutputs() {
			t.Fatalf("budget %d: outputs diverge", budget)
		}
	}
}

// TestFusedResumesMidSequence parks the unfused interpreter inside what
// the overlay considers one superinstruction, then hands the state to a
// fused machine: execution must resume with the remaining original
// instructions (interior pcs carry no overlay entry) and converge on the
// same final state.
func TestFusedResumesMidSequence(t *testing.T) {
	src := `
var g = 0
fn main() {
	let i = 0
	while i < 10 {
		i = i + 1
	}
	g = i
}`
	fused := bytecode.MustCompile(src, "midseq", bytecode.Options{})
	plain := bytecode.MustCompile(src, "midseq", bytecode.Options{NoFuse: true})
	for budget := int64(1); budget < 30; budget++ {
		// Run unfused for `budget` steps, landing anywhere — including
		// mid-sequence.
		st := vm.NewState(plain, nil, nil)
		vm.NewMachine(st, vm.NewRoundRobin()).Run(budget)
		// Continue under the fused program: the state's PCs index the
		// same code, so swapping the program pointer is the same trick
		// checkpoint restoration uses.
		st.Prog = fused
		res := vm.NewMachine(st, vm.NewRoundRobin()).Run(-1)
		if res.Kind != vm.StopFinished {
			t.Fatalf("budget %d: resume: %v", budget, res.Kind)
		}
		// Reference: straight unfused run.
		ref := vm.NewState(plain, nil, nil)
		vm.NewMachine(ref, vm.NewRoundRobin()).Run(-1)
		if st.MemoryFingerprint() != ref.MemoryFingerprint() {
			t.Fatalf("budget %d: mid-sequence resume diverged", budget)
		}
	}
}

// TestInternCounters sanity-checks the fast-path tallies surfaced
// through vm.Counters.
func TestInternCounters(t *testing.T) {
	m := tightLoopMachine(t, false)
	var ctr vm.Counters
	m.Counters = &ctr
	m.Run(1_000)
	if ctr.FusedOps.Load() == 0 {
		t.Error("no fused superinstructions counted in an arithmetic loop")
	}
	if ctr.InternedConsts.Load() == 0 {
		t.Error("no interned constants counted in an arithmetic loop")
	}
}
