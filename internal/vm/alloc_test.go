package vm

import (
	"testing"

	"repro/internal/bytecode"
)

// tightLoopSrc is a pure thread-local arithmetic loop: the whole body is
// LOADL/PUSH/binop/STOREL traffic whose values stay inside the expr
// intern range, so a warm interpreter must execute it without a single
// heap allocation. The & mask keeps i within [0, 128).
const tightLoopSrc = `
fn main() {
	let i = 0
	while 1 {
		i = (i + 1) & 127
	}
}`

func tightLoopMachine(t *testing.T, noFuse bool) *Machine {
	t.Helper()
	p := bytecode.MustCompile(tightLoopSrc, "tightloop", bytecode.Options{NoFuse: noFuse})
	st := NewState(p, nil, nil)
	m := NewMachine(st, NewRoundRobin())
	// Warm up: let the operand stack and runnable scratch reach their
	// steady-state capacity.
	if res := m.Run(2_000); res.Kind != StopBudget {
		t.Fatalf("warm-up run: %v", res.Kind)
	}
	return m
}

// TestExecAllocFree is the regression guard for the interpreter's
// allocation-lean hot path (intern table + superinstruction fusion): a
// tight arithmetic loop must execute with zero allocations per
// instruction, fused and unfused alike. Before the intern table, every
// arithmetic op minted a Const on the heap.
func TestExecAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		noFuse bool
	}{
		{"fused", false},
		{"unfused", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tightLoopMachine(t, tc.noFuse)
			allocs := testing.AllocsPerRun(20, func() {
				if res := m.Run(5_000); res.Kind != StopBudget {
					t.Fatalf("run: %v", res.Kind)
				}
			})
			if allocs != 0 {
				t.Errorf("tight loop allocates %v times per 5000 instructions, want 0", allocs)
			}
		})
	}
}

// TestFusedMatchesUnfused locks the superinstruction overlay to the
// plain interpreter instruction by instruction: the same program
// compiled with and without fusion must land on identical memory,
// identical per-thread instruction counts, and identical total steps at
// every budget — including budgets that land inside a fused sequence
// (where the fused machine must fall back to single-instruction
// execution rather than overshoot).
func TestFusedMatchesUnfused(t *testing.T) {
	src := `
var g = 0
fn main() {
	let i = 0
	let acc = 0
	while i < 40 {
		i = i + 1
		acc = acc + (i * 3) - 1
		if i > 20 {
			acc = acc - 2
		}
	}
	g = acc
	print("acc=", acc)
}`
	fused := bytecode.MustCompile(src, "fusecheck", bytecode.Options{})
	plain := bytecode.MustCompile(src, "fusecheck", bytecode.Options{NoFuse: true})
	if fused.FusedCount() == 0 {
		t.Fatal("fusion pass found nothing to fuse in an arithmetic loop")
	}
	if plain.FusedCount() != 0 {
		t.Fatal("NoFuse program carries a fusion overlay")
	}
	for _, budget := range []int64{-1, 1, 2, 3, 5, 7, 50, 123, 124, 125, 126, 127, 500} {
		fs := NewState(fused, nil, nil)
		ps := NewState(plain, nil, nil)
		fres := NewMachine(fs, NewRoundRobin()).Run(budget)
		pres := NewMachine(ps, NewRoundRobin()).Run(budget)
		if fres.Kind != pres.Kind || fres.Steps != pres.Steps {
			t.Fatalf("budget %d: fused (%v, %d steps) != plain (%v, %d steps)",
				budget, fres.Kind, fres.Steps, pres.Kind, pres.Steps)
		}
		if fs.Steps != ps.Steps || fs.Threads[0].Instrs != ps.Threads[0].Instrs {
			t.Fatalf("budget %d: counters diverge: steps %d/%d instrs %d/%d",
				budget, fs.Steps, ps.Steps, fs.Threads[0].Instrs, ps.Threads[0].Instrs)
		}
		if fp, pp := fs.MemoryFingerprint(), ps.MemoryFingerprint(); fp != pp {
			t.Fatalf("budget %d: memory diverges:\nfused: %s\nplain: %s", budget, fp, pp)
		}
		if fs.RenderOutputs() != ps.RenderOutputs() {
			t.Fatalf("budget %d: outputs diverge", budget)
		}
	}
}

// TestFusedResumesMidSequence parks the unfused interpreter inside what
// the overlay considers one superinstruction, then hands the state to a
// fused machine: execution must resume with the remaining original
// instructions (interior pcs carry no overlay entry) and converge on the
// same final state.
func TestFusedResumesMidSequence(t *testing.T) {
	src := `
var g = 0
fn main() {
	let i = 0
	while i < 10 {
		i = i + 1
	}
	g = i
}`
	fused := bytecode.MustCompile(src, "midseq", bytecode.Options{})
	plain := bytecode.MustCompile(src, "midseq", bytecode.Options{NoFuse: true})
	for budget := int64(1); budget < 30; budget++ {
		// Run unfused for `budget` steps, landing anywhere — including
		// mid-sequence.
		st := NewState(plain, nil, nil)
		NewMachine(st, NewRoundRobin()).Run(budget)
		// Continue under the fused program: the state's PCs index the
		// same code, so swapping the program pointer is the same trick
		// checkpoint restoration uses.
		st.Prog = fused
		res := NewMachine(st, NewRoundRobin()).Run(-1)
		if res.Kind != StopFinished {
			t.Fatalf("budget %d: resume: %v", budget, res.Kind)
		}
		// Reference: straight unfused run.
		ref := NewState(plain, nil, nil)
		NewMachine(ref, NewRoundRobin()).Run(-1)
		if st.MemoryFingerprint() != ref.MemoryFingerprint() {
			t.Fatalf("budget %d: mid-sequence resume diverged", budget)
		}
	}
}

// TestInternCounters sanity-checks the fast-path tallies surfaced
// through vm.Counters.
func TestInternCounters(t *testing.T) {
	m := tightLoopMachine(t, false)
	var ctr Counters
	m.Counters = &ctr
	m.Run(1_000)
	if ctr.FusedOps.Load() == 0 {
		t.Error("no fused superinstructions counted in an arithmetic loop")
	}
	if ctr.InternedConsts.Load() == 0 {
		t.Error("no interned constants counted in an arithmetic loop")
	}
}
