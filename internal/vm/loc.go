// Package vm implements the PIL virtual machine: the reproduction's
// stand-in for the Cloud9 interpreter the paper builds Portend on.
//
// The machine interprets bytecode (internal/bytecode) with a cooperative,
// single-processor thread scheduler, exactly as the paper's runtime does
// (§3.1, §6): one thread runs at a time, and scheduling decisions happen
// at synchronization operations; racing memory accesses can additionally
// be targeted with breakpoints for the classifier's orchestration.
//
// Every value is a symbolic expression (internal/expr); fully concrete
// executions simply never leave constant expressions. States are deeply
// cloneable, giving the checkpoint/restore primitive of Algorithm 1 and
// the state forking of multi-path analysis. Observers (e.g. the
// happens-before race detector in internal/race) receive memory-access and
// synchronization events and are cloned along with states.
package vm

import (
	"fmt"

	"repro/internal/bytecode"
)

// Space distinguishes the two shared address spaces.
type Space uint8

// Address spaces.
const (
	SpaceGlobal Space = iota
	SpaceHeap
)

// Loc identifies one shared memory cell: a global scalar, a global array
// element, or a heap cell. Locs are the unit of race detection.
type Loc struct {
	Space Space
	Obj   int64 // global id or heap ref
	Elem  int64 // element index; 0 for scalars
}

// String renders the location; the global name needs the program, see
// FormatLoc.
func (l Loc) String() string {
	if l.Space == SpaceGlobal {
		return fmt.Sprintf("g%d[%d]", l.Obj, l.Elem)
	}
	return fmt.Sprintf("heap%d[%d]", l.Obj, l.Elem)
}

// FormatLoc renders a location with the global's source name resolved.
func FormatLoc(p *bytecode.Program, l Loc) string {
	if l.Space == SpaceGlobal && int(l.Obj) < len(p.Globals) {
		g := p.Globals[l.Obj]
		if g.Size > 1 {
			return fmt.Sprintf("%s[%d]", g.Name, l.Elem)
		}
		return g.Name
	}
	return l.String()
}

// ErrKind enumerates runtime error classes. All of them are "basic"
// specification violations in the paper's sense (§3.5): crashes, memory
// errors, and assertion (semantic property) failures.
type ErrKind uint8

// Runtime error kinds.
const (
	ErrNone ErrKind = iota
	ErrDivZero
	ErrOutOfBounds
	ErrUseAfterFree
	ErrDoubleFree
	ErrBadRef
	ErrAllocSize
	ErrAssert
	ErrUnlockNotOwned
	ErrRelock
	ErrJoinBad
	ErrBadArg
	ErrStack // operand stack underflow: compiler bug, not program bug
)

var errKindNames = map[ErrKind]string{
	ErrNone: "none", ErrDivZero: "division by zero",
	ErrOutOfBounds: "out-of-bounds access", ErrUseAfterFree: "use after free",
	ErrDoubleFree: "double free", ErrBadRef: "invalid heap reference",
	ErrAllocSize: "invalid allocation size", ErrAssert: "assertion failure",
	ErrUnlockNotOwned: "unlock of mutex not owned", ErrRelock: "relock of held mutex",
	ErrJoinBad: "join of invalid thread", ErrBadArg: "invalid argument index",
	ErrStack: "operand stack underflow",
}

// String returns a description of the error kind.
func (k ErrKind) String() string {
	if s, ok := errKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("errkind(%d)", uint8(k))
}

// RuntimeError is a program failure caught by the VM (the mechanism KLEE
// provides inside Cloud9 in the paper).
type RuntimeError struct {
	Kind ErrKind
	TID  int
	PC   bytecode.PCRef
	Msg  string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("thread %d at %s: %s: %s", e.TID, e.PC, e.Kind, e.Msg)
	}
	return fmt.Sprintf("thread %d at %s: %s", e.TID, e.PC, e.Kind)
}

// StopKind says why Machine.Run returned.
type StopKind uint8

// Stop kinds.
const (
	// StopFinished: the program terminated (main returned, or every
	// thread exited).
	StopFinished StopKind = iota
	// StopDeadlock: no thread can make progress and none is suspended
	// by the orchestrator — a genuine deadlock.
	StopDeadlock
	// StopStuck: only orchestrator-suspended threads could make
	// progress. The classifier interprets this during alternate-ordering
	// enforcement (paper case (b): Tj is blocked by Ti).
	StopStuck
	// StopError: a runtime error occurred; see RunResult.Err.
	StopError
	// StopBudget: the instruction budget was exhausted (the classifier's
	// timeout, paper case (a)).
	StopBudget
	// StopBreak: a breakpoint fired; the machine can be resumed.
	StopBreak
	// StopCancelled: Machine.Interrupt reported cancellation (a
	// context deadline or cancel propagated by the orchestrator). The
	// run can be resumed if the interrupt condition clears.
	StopCancelled
)

var stopNames = map[StopKind]string{
	StopFinished: "finished", StopDeadlock: "deadlock", StopStuck: "stuck",
	StopError: "error", StopBudget: "budget", StopBreak: "breakpoint",
	StopCancelled: "cancelled",
}

// String names the stop kind.
func (k StopKind) String() string {
	if s, ok := stopNames[k]; ok {
		return s
	}
	return fmt.Sprintf("stop(%d)", uint8(k))
}

// RunResult is the outcome of Machine.Run.
type RunResult struct {
	Kind  StopKind
	Err   *RuntimeError // set for StopError
	Steps int64         // instructions executed during this Run call
}
