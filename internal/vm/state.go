package vm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bytecode"
	"repro/internal/expr"
)

// ThreadStatus is a thread's scheduling state.
type ThreadStatus uint8

// Thread statuses.
const (
	ThRunnable ThreadStatus = iota
	ThBlockedMutex
	ThBlockedCond
	ThBlockedJoin
	ThBlockedBarrier
	ThExited
)

var threadStatusNames = map[ThreadStatus]string{
	ThRunnable: "runnable", ThBlockedMutex: "blocked-mutex",
	ThBlockedCond: "blocked-cond", ThBlockedJoin: "blocked-join",
	ThBlockedBarrier: "blocked-barrier", ThExited: "exited",
}

// String names the status.
func (s ThreadStatus) String() string {
	if n, ok := threadStatusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Frame is one function activation.
type Frame struct {
	Fn     int
	PC     int
	Locals []expr.Expr
	Stack  []expr.Expr
}

// Thread is one PIL thread.
type Thread struct {
	ID     int
	Status ThreadStatus
	Frames []*Frame

	// Blocking detail (valid per Status).
	WaitMutex   int // mutex being acquired (LOCK, or WAIT reacquire phase)
	WaitCond    int
	WaitJoin    int
	WaitBarrier int
	WaitPhase   int // for WAIT: 0 = on condvar, 1 = reacquiring the mutex

	// Instrs counts completed instructions; it is the per-thread
	// "absolute count of instructions executed" the paper's schedule
	// traces use to identify racing accesses precisely (§3.1).
	Instrs int64
}

// Top returns the active frame, or nil when the thread has exited.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// PCRef returns the thread's current static location.
func (t *Thread) PCRef(p *bytecode.Program) bytecode.PCRef {
	f := t.Top()
	if f == nil {
		return bytecode.PCRef{Fn: -1, PC: -1}
	}
	line := int32(0)
	if f.PC < len(p.Funcs[f.Fn].Code) {
		line = p.Funcs[f.Fn].Code[f.PC].Line
	}
	return bytecode.PCRef{Fn: f.Fn, PC: f.PC, Line: line}
}

// mutexState is one mutex. Owner is -1 when free.
type mutexState struct {
	Owner int
}

// condState is one condition variable: the FIFO of blocked thread ids.
type condState struct {
	Waiters []int
}

// barrierState tracks arrived thread ids.
type barrierState struct {
	Arrived []int
}

// HeapBlock is one allocation.
type HeapBlock struct {
	Cells []expr.Expr
	Freed bool
}

// OutPart is one piece of an output record: a literal or a value. Exactly
// one of Lit/E is meaningful (E == nil for literals).
type OutPart struct {
	Lit string
	E   expr.Expr
}

// Output is one program output record ("the arguments passed to output
// system calls", §3.3.1). In symbolic executions the value parts may be
// symbolic formulae.
type Output struct {
	TID   int
	PC    bytecode.PCRef
	Parts []OutPart
}

// String renders the output record concretely where possible.
func (o Output) String() string {
	var b strings.Builder
	for _, p := range o.Parts {
		if p.E != nil {
			b.WriteString(p.E.String())
		} else {
			b.WriteString(p.Lit)
		}
	}
	return b.String()
}

// Inputs models the log of non-deterministic program inputs (the system
// call log of the paper's traces). The first NSymbolic reads return fresh
// symbolic variables whose concolic hint is the recorded concrete value.
type Inputs struct {
	Values    []int64
	Pos       int
	NSymbolic int
}

// SyncKind enumerates synchronization events delivered to observers.
type SyncKind uint8

// Synchronization event kinds.
const (
	EvSpawn SyncKind = iota
	EvExit
	EvJoin
	EvAcquire
	EvRelease
	EvSignal  // includes broadcast; Others lists woken threads
	EvBarrier // Others lists all released participants
)

// SyncEvent is delivered to observers for happens-before tracking.
type SyncEvent struct {
	Kind   SyncKind
	TID    int
	Obj    int // mutex / cond / barrier id, or child tid for EvSpawn
	Others []int
}

// Observer receives memory and synchronization events. Observers are part
// of the state and are cloned with it (the race detector's vector clocks
// must fork along with execution states).
type Observer interface {
	// OnAccess is called for every shared memory access, before its
	// effect. tInstr is the thread's completed-instruction count, which
	// identifies this access for replay.
	OnAccess(st *State, tid int, loc Loc, write bool, pc bytecode.PCRef, tInstr int64)
	// OnSync is called after each synchronization event.
	OnSync(st *State, ev SyncEvent)
	// CloneObs returns a deep copy.
	CloneObs() Observer
}

// State is the complete machine state: memory, threads, scheduler
// position, inputs/outputs, path condition, and observers. It supports
// deep cloning, which implements checkpointing (Algorithm 1) and state
// forking (Algorithm 2).
type State struct {
	Prog *bytecode.Program // immutable, shared

	Globals  [][]expr.Expr // per global: cells
	Heap     map[int64]*HeapBlock
	NextRef  int64
	Mutexes  []mutexState
	Conds    []condState
	Barriers []barrierState

	Threads []*Thread
	Cur     int

	Outputs []Output
	In      Inputs
	Args    []int64
	SymArgs []bool // per-arg: reads produce symbolic values

	// ArgReads counts completed ARG instructions. Together with In.Pos it
	// tells a checkpoint consumer whether the execution so far touched any
	// source that symbolic re-execution would have made symbolic: a state
	// with In.Pos == 0 and ArgReads == 0 is bit-identical to what the same
	// replay would produce with symbolic inputs/args enabled.
	ArgReads int

	// PathCond is the conjunction of branch constraints accumulated by
	// symbolic execution; Hints maps every created symbol to its concolic
	// seed value, so the state always carries a satisfying witness.
	PathCond []expr.Expr
	Hints    expr.Assignment

	// Suspended threads are invisible to the scheduler; the classifier
	// suspends the first racing thread to enforce the alternate ordering.
	// Indexed by thread id and grown on demand (a short id is simply not
	// suspended) — the interpreter loop consults it once per instruction,
	// which is why it is a slice and not a map. Use IsSuspended / Suspend
	// / Resume rather than indexing directly.
	Suspended []bool

	Steps   int64 // total completed instructions
	Halted  bool  // main returned: the process exits
	Failure *RuntimeError

	Observers []Observer

	argSyms map[int]*expr.Sym // memoized symbols for symbolic args
}

// NewState builds the initial state for a program with the given concrete
// arguments and input log.
func NewState(p *bytecode.Program, args []int64, inputs []int64) *State {
	st := &State{
		Prog:    p,
		Heap:    map[int64]*HeapBlock{},
		NextRef: 1,
		Args:    append([]int64(nil), args...),
		SymArgs: make([]bool, len(args)),
		In:      Inputs{Values: append([]int64(nil), inputs...)},
		Hints:   expr.Assignment{},
		Cur:     0,
		argSyms: map[int]*expr.Sym{},
	}
	st.Globals = make([][]expr.Expr, len(p.Globals))
	for i, g := range p.Globals {
		cells := make([]expr.Expr, g.Size)
		for j := range cells {
			cells[j] = expr.NewConst(0)
		}
		if g.Size == 1 {
			cells[0] = expr.NewConst(g.Init)
		}
		st.Globals[i] = cells
	}
	st.Mutexes = make([]mutexState, len(p.Mutexes))
	for i := range st.Mutexes {
		st.Mutexes[i].Owner = -1
	}
	st.Conds = make([]condState, len(p.Conds))
	st.Barriers = make([]barrierState, len(p.Barriers))

	mainFn := &p.Funcs[p.MainFunc]
	fr := &Frame{Fn: p.MainFunc, Locals: make([]expr.Expr, mainFn.NLocals)}
	for i := range fr.Locals {
		fr.Locals[i] = expr.NewConst(0)
	}
	st.Threads = []*Thread{{
		ID: 0, Status: ThRunnable, Frames: []*Frame{fr},
		WaitMutex: -1, WaitCond: -1, WaitJoin: -1, WaitBarrier: -1,
	}}
	return st
}

// Clone deep-copies the state. Expressions and the program are immutable
// and shared; everything mutable is copied.
//
// Clone is the hot path of the whole analysis — every checkpoint
// (Algorithm 1) and every state fork (Algorithm 2) goes through it, and
// the parallel engine clones the same pre-race checkpoint once per
// alternate schedule. Two techniques keep it cheap:
//
//   - Slab allocation: threads, frames, and heap blocks are copied into
//     one backing array per kind — and every expression cell in the
//     state (global cells, heap cells, frame locals and operand stacks)
//     into one shared expression slab — instead of one allocation per
//     object. Every sub-slice is cap-trimmed to its exact region, so a
//     later append (a call pushing a frame, a push growing an operand
//     stack) reallocates privately instead of growing into a neighbor's
//     region.
//   - Copy-on-write sharing: append-only slices whose elements are never
//     mutated in place (Outputs, PathCond) share the parent's backing
//     array, again cap-trimmed so appends by either party reallocate.
//     Concretize, the one operation that rewrites output records,
//     replaces the slice wholesale instead of mutating shared memory.
//   - Empty maps stay nil: states that never allocated heap blocks,
//     minted symbols, or read symbolic args (the common case on concrete
//     replays) clone without those map allocations; the writing
//     operations initialize lazily.
//
// Clone is safe to call concurrently on one state from several
// goroutines (it only reads the source), which the parallel alternate-
// schedule workers rely on.
func (st *State) Clone() *State {
	ns := &State{
		Prog:     st.Prog,
		NextRef:  st.NextRef,
		Cur:      st.Cur,
		Steps:    st.Steps,
		Halted:   st.Halted,
		Failure:  st.Failure,
		In:       Inputs{Values: append([]int64(nil), st.In.Values...), Pos: st.In.Pos, NSymbolic: st.In.NSymbolic},
		Args:     append([]int64(nil), st.Args...),
		SymArgs:  append([]bool(nil), st.SymArgs...),
		ArgReads: st.ArgReads,
	}

	// One expression slab for every cell in the state: global cells,
	// heap cells, frame locals and operand stacks.
	nCells := 0
	for _, cells := range st.Globals {
		nCells += len(cells)
	}
	for _, blk := range st.Heap {
		nCells += len(blk.Cells)
	}
	for _, t := range st.Threads {
		for _, f := range t.Frames {
			nCells += len(f.Locals) + len(f.Stack)
		}
	}
	xslab := make([]expr.Expr, nCells)
	xi := 0
	grab := func(src []expr.Expr) []expr.Expr {
		dst := xslab[xi : xi+len(src) : xi+len(src)]
		copy(dst, src)
		xi += len(src)
		return dst
	}

	ns.Globals = make([][]expr.Expr, len(st.Globals))
	for i, cells := range st.Globals {
		ns.Globals[i] = grab(cells)
	}

	// Heap: one block slab, cells from the shared expression slab.
	if len(st.Heap) > 0 {
		blkSlab := make([]HeapBlock, len(st.Heap))
		ns.Heap = make(map[int64]*HeapBlock, len(st.Heap))
		bi := 0
		for ref, blk := range st.Heap {
			nb := &blkSlab[bi]
			bi++
			nb.Cells, nb.Freed = grab(blk.Cells), blk.Freed
			ns.Heap[ref] = nb
		}
	}

	ns.Mutexes = append([]mutexState(nil), st.Mutexes...)
	ns.Conds = make([]condState, len(st.Conds))
	for i := range st.Conds {
		ns.Conds[i].Waiters = append([]int(nil), st.Conds[i].Waiters...)
	}
	ns.Barriers = make([]barrierState, len(st.Barriers))
	for i := range st.Barriers {
		ns.Barriers[i].Arrived = append([]int(nil), st.Barriers[i].Arrived...)
	}

	// Threads: slab-allocate the thread and frame objects.
	nFrames := 0
	for _, t := range st.Threads {
		nFrames += len(t.Frames)
	}
	thSlab := make([]Thread, len(st.Threads))
	frSlab := make([]Frame, nFrames)
	fpSlab := make([]*Frame, nFrames)
	ns.Threads = make([]*Thread, len(st.Threads))
	fi := 0
	for i, t := range st.Threads {
		nt := &thSlab[i]
		*nt = *t
		nt.Frames = fpSlab[fi : fi : fi+len(t.Frames)]
		for _, f := range t.Frames {
			nf := &frSlab[fi]
			nf.Fn, nf.PC = f.Fn, f.PC
			nf.Locals = grab(f.Locals)
			nf.Stack = grab(f.Stack)
			nt.Frames = append(nt.Frames, nf)
			fi++
		}
		ns.Threads[i] = nt
	}

	// Append-only slices: share the backing array, cap-trimmed so that
	// an append by parent or clone reallocates instead of overwriting
	// the shared prefix.
	ns.Outputs = st.Outputs[:len(st.Outputs):len(st.Outputs)]
	ns.PathCond = st.PathCond[:len(st.PathCond):len(st.PathCond)]

	if len(st.Hints) > 0 {
		ns.Hints = make(expr.Assignment, len(st.Hints))
		for k, v := range st.Hints {
			ns.Hints[k] = v
		}
	}
	ns.Suspended = append([]bool(nil), st.Suspended...)
	if len(st.Observers) > 0 {
		ns.Observers = make([]Observer, len(st.Observers))
		for i, o := range st.Observers {
			ns.Observers[i] = o.CloneObs()
		}
	}
	if len(st.argSyms) > 0 {
		ns.argSyms = make(map[int]*expr.Sym, len(st.argSyms))
		for k, v := range st.argSyms {
			ns.argSyms[k] = v
		}
	}
	return ns
}

// IsSuspended reports whether the thread is hidden from the scheduler.
func (st *State) IsSuspended(tid int) bool {
	return tid >= 0 && tid < len(st.Suspended) && st.Suspended[tid]
}

// RunnableTIDs returns the schedulable threads in id order, excluding
// suspended ones.
func (st *State) RunnableTIDs() []int {
	return st.AppendRunnableTIDs(nil)
}

// AppendRunnableTIDs appends the schedulable thread ids (in id order,
// excluding suspended threads) to buf and returns it. The interpreter
// loop calls this with a reused scratch buffer so scheduling points do
// not allocate.
func (st *State) AppendRunnableTIDs(buf []int) []int {
	for _, t := range st.Threads {
		if t.Status == ThRunnable && !st.IsSuspended(t.ID) {
			buf = append(buf, t.ID)
		}
	}
	return buf
}

// LiveCount returns the number of threads that have not exited.
func (st *State) LiveCount() int {
	n := 0
	for _, t := range st.Threads {
		if t.Status != ThExited {
			n++
		}
	}
	return n
}

// Finished reports whether the program has terminated.
func (st *State) Finished() bool {
	return st.Halted || st.LiveCount() == 0
}

// Suspend hides a thread from the scheduler (classifier orchestration).
func (st *State) Suspend(tid int) {
	if tid < 0 {
		return
	}
	for len(st.Suspended) <= tid {
		st.Suspended = append(st.Suspended, false)
	}
	st.Suspended[tid] = true
}

// Resume reverses Suspend.
func (st *State) Resume(tid int) {
	if tid >= 0 && tid < len(st.Suspended) {
		st.Suspended[tid] = false
	}
}

// NewSym mints a fresh symbolic variable with a concolic hint and records
// the hint. Hints may be nil on a clone that had none (Clone skips empty
// maps); initialize lazily.
func (st *State) NewSym(name string, hint int64) *expr.Sym {
	s := expr.NewSym(name)
	if st.Hints == nil {
		st.Hints = expr.Assignment{}
	}
	st.Hints[name] = hint
	return s
}

// AddConstraint appends a path constraint.
func (st *State) AddConstraint(c expr.Expr) {
	if v, ok := expr.ConstVal(c); ok && v != 0 {
		return // trivially true
	}
	st.PathCond = append(st.PathCond, c)
}

// HintEval evaluates e under the state's concolic hints; every symbol the
// state created has a hint, so this cannot fail for well-formed states.
func (st *State) HintEval(e expr.Expr) (int64, error) {
	return expr.Eval(e, st.Hints)
}

// Concretize substitutes model (overlaid on the state's hints) into every
// expression in the state, producing a fully concrete state: memory,
// stacks, outputs, and pending inputs. The path condition is cleared.
// This is how alternate executions become "fully concrete" (§3.3.1).
func (st *State) Concretize(model expr.Assignment) {
	env := make(expr.Assignment, len(st.Hints)+len(model))
	for k, v := range st.Hints {
		env[k] = v
	}
	for k, v := range model {
		env[k] = v
	}
	sub := func(e expr.Expr) expr.Expr { return expr.Substitute(e, env) }
	for i, cells := range st.Globals {
		for j, c := range cells {
			st.Globals[i][j] = sub(c)
		}
	}
	for _, blk := range st.Heap {
		for j, c := range blk.Cells {
			blk.Cells[j] = sub(c)
		}
	}
	for _, t := range st.Threads {
		for _, f := range t.Frames {
			for i, l := range f.Locals {
				f.Locals[i] = sub(l)
			}
			for i, s := range f.Stack {
				f.Stack[i] = sub(s)
			}
		}
	}
	// Rebuild the output records instead of substituting in place: the
	// Outputs slice and the Parts arrays inside it may be shared with
	// the state this one was cloned from (and with sibling clones being
	// concretized concurrently on other workers), so they must be
	// treated as immutable.
	if n := len(st.Outputs); n > 0 {
		outs := make([]Output, n)
		copy(outs, st.Outputs)
		for oi := range outs {
			rebuilt := false
			for pi, p := range outs[oi].Parts {
				if p.E == nil {
					continue
				}
				if !rebuilt {
					outs[oi].Parts = append([]OutPart(nil), outs[oi].Parts...)
					rebuilt = true
				}
				outs[oi].Parts[pi].E = sub(p.E)
			}
		}
		st.Outputs = outs
	}
	// Future arg reads become concrete, consistent with the model.
	for i := range st.SymArgs {
		if st.SymArgs[i] {
			if v, ok := env[argSymName(i)]; ok {
				st.Args[i] = v
			}
			st.SymArgs[i] = false
		}
	}
	st.argSyms = map[int]*expr.Sym{}
	// Future input reads become concrete, consistent with the model.
	for p := 0; p < st.In.NSymbolic; p++ {
		if v, ok := env[inputSymName(p)]; ok {
			for len(st.In.Values) <= p {
				st.In.Values = append(st.In.Values, 0)
			}
			st.In.Values[p] = v
		}
	}
	st.In.NSymbolic = 0
	st.PathCond = nil
}

func argSymName(i int) string   { return fmt.Sprintf("arg%d", i) }
func inputSymName(i int) string { return fmt.Sprintf("in%d", i) }

// MemoryFingerprint summarizes globals, heap and thread-local memory as a
// canonical string; the Record/Replay-Analyzer baseline [45] compares
// these fingerprints immediately after the race ("post-race state
// comparison").
func (st *State) MemoryFingerprint() string {
	var b strings.Builder
	for i, cells := range st.Globals {
		fmt.Fprintf(&b, "g%d:", i)
		for _, c := range cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
	}
	refs := make([]int64, 0, len(st.Heap))
	for r := range st.Heap {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, r := range refs {
		blk := st.Heap[r]
		fmt.Fprintf(&b, "h%d(f=%v):", r, blk.Freed)
		for _, c := range blk.Cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
	}
	for _, t := range st.Threads {
		fmt.Fprintf(&b, "t%d(%s):", t.ID, t.Status)
		for _, f := range t.Frames {
			for _, l := range f.Locals {
				b.WriteString(l.String())
				b.WriteByte(',')
			}
		}
	}
	return b.String()
}

// OutputTail returns outputs recorded at index from onward.
func (st *State) OutputTail(from int) []Output {
	if from >= len(st.Outputs) {
		return nil
	}
	return st.Outputs[from:]
}

// RenderOutputs renders all outputs, one line per record; values that are
// still symbolic render as formulae.
func (st *State) RenderOutputs() string {
	var b strings.Builder
	for _, o := range st.Outputs {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (st *State) fail(kind ErrKind, tid int, pc bytecode.PCRef, msg string) *RuntimeError {
	e := &RuntimeError{Kind: kind, TID: tid, PC: pc, Msg: msg}
	st.Failure = e
	return e
}

// notifyAccess delivers a memory access to all observers.
func (st *State) notifyAccess(tid int, loc Loc, write bool, pc bytecode.PCRef, tInstr int64) {
	for _, o := range st.Observers {
		o.OnAccess(st, tid, loc, write, pc, tInstr)
	}
}

// notifySync delivers a sync event to all observers.
func (st *State) notifySync(ev SyncEvent) {
	for _, o := range st.Observers {
		o.OnSync(st, ev)
	}
}

// SharedMemoryFingerprint summarizes only the shared address spaces
// (globals and heap), excluding thread-private frames and scheduler
// positions. The Record/Replay-Analyzer baseline [45] compares these
// fingerprints "immediately after the race": by that point both racing
// accesses have executed in both interleavings, but the threads' own
// progress necessarily differs between the orderings, so only shared
// memory is a meaningful comparand.
func (st *State) SharedMemoryFingerprint() string {
	var b strings.Builder
	for i, cells := range st.Globals {
		fmt.Fprintf(&b, "g%d:", i)
		for _, c := range cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
	}
	refs := make([]int64, 0, len(st.Heap))
	for r := range st.Heap {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, r := range refs {
		blk := st.Heap[r]
		fmt.Fprintf(&b, "h%d(f=%v):", r, blk.Freed)
		for _, c := range blk.Cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
	}
	return b.String()
}
