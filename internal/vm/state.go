package vm

import (
	"fmt"
	"strings"
	"sync/atomic"
	"unsafe"

	"repro/internal/bytecode"
	"repro/internal/expr"
	"repro/internal/pstate"
)

// ThreadStatus is a thread's scheduling state.
type ThreadStatus uint8

// Thread statuses.
const (
	ThRunnable ThreadStatus = iota
	ThBlockedMutex
	ThBlockedCond
	ThBlockedJoin
	ThBlockedBarrier
	ThExited
)

var threadStatusNames = map[ThreadStatus]string{
	ThRunnable: "runnable", ThBlockedMutex: "blocked-mutex",
	ThBlockedCond: "blocked-cond", ThBlockedJoin: "blocked-join",
	ThBlockedBarrier: "blocked-barrier", ThExited: "exited",
}

// String names the status.
func (s ThreadStatus) String() string {
	if n, ok := threadStatusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Frame is one function activation. A Frame reachable from two states
// (after a Clone) is immutable; the machine privatizes it through the
// state's write barrier (wframe) before mutating, so Locals and Stack
// backing arrays are only ever written by the state that owns them.
type Frame struct {
	Fn     int
	PC     int
	Locals []expr.Expr
	Stack  []expr.Expr

	stamp uint64 // epoch that owns this frame (see State.epoch)
}

// Thread is one PIL thread. Like Frame, a Thread shared between states
// is immutable; writers go through the state's write barrier (wthread).
type Thread struct {
	ID     int
	Status ThreadStatus
	Frames []*Frame

	// Blocking detail (valid per Status).
	WaitMutex   int // mutex being acquired (LOCK, or WAIT reacquire phase)
	WaitCond    int
	WaitJoin    int
	WaitBarrier int
	WaitPhase   int // for WAIT: 0 = on condvar, 1 = reacquiring the mutex

	// Instrs counts completed instructions; it is the per-thread
	// "absolute count of instructions executed" the paper's schedule
	// traces use to identify racing accesses precisely (§3.1).
	Instrs int64

	stamp uint64 // epoch that owns this thread
}

// Top returns the active frame, or nil when the thread has exited.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// PCRef returns the thread's current static location.
func (t *Thread) PCRef(p *bytecode.Program) bytecode.PCRef {
	f := t.Top()
	if f == nil {
		return bytecode.PCRef{Fn: -1, PC: -1}
	}
	line := int32(0)
	if f.PC < len(p.Funcs[f.Fn].Code) {
		line = p.Funcs[f.Fn].Code[f.PC].Line
	}
	return bytecode.PCRef{Fn: f.Fn, PC: f.PC, Line: line}
}

// mutexState is one mutex. Owner is -1 when free.
type mutexState struct {
	Owner int
}

// condState is one condition variable: the FIFO of blocked thread ids.
type condState struct {
	Waiters []int
}

// barrierState tracks arrived thread ids.
type barrierState struct {
	Arrived []int
}

// HeapBlock is one allocation. Blocks live in the state's persistent
// heap trie; a block shared between states is immutable, and the
// machine's write barrier (wblock) copies it on first write per epoch.
type HeapBlock struct {
	Cells []expr.Expr
	Freed bool

	stamp uint64 // epoch that owns this block
}

// OutPart is one piece of an output record: a literal or a value. Exactly
// one of Lit/E is meaningful (E == nil for literals).
type OutPart struct {
	Lit string
	E   expr.Expr
}

// Output is one program output record ("the arguments passed to output
// system calls", §3.3.1). In symbolic executions the value parts may be
// symbolic formulae.
type Output struct {
	TID   int
	PC    bytecode.PCRef
	Parts []OutPart
}

// String renders the output record concretely where possible.
func (o Output) String() string {
	var b strings.Builder
	for _, p := range o.Parts {
		if p.E != nil {
			b.WriteString(p.E.String())
		} else {
			b.WriteString(p.Lit)
		}
	}
	return b.String()
}

// Inputs models the log of non-deterministic program inputs (the system
// call log of the paper's traces). The first NSymbolic reads return fresh
// symbolic variables whose concolic hint is the recorded concrete value.
type Inputs struct {
	Values    []int64
	Pos       int
	NSymbolic int
}

// SyncKind enumerates synchronization events delivered to observers.
type SyncKind uint8

// Synchronization event kinds.
const (
	EvSpawn SyncKind = iota
	EvExit
	EvJoin
	EvAcquire
	EvRelease
	EvSignal  // includes broadcast; Others lists woken threads
	EvBarrier // Others lists all released participants
)

// SyncEvent is delivered to observers for happens-before tracking.
type SyncEvent struct {
	Kind   SyncKind
	TID    int
	Obj    int // mutex / cond / barrier id, or child tid for EvSpawn
	Others []int
}

// Observer receives memory and synchronization events. Observers are part
// of the state and are cloned with it (the race detector's vector clocks
// must fork along with execution states).
type Observer interface {
	// OnAccess is called for every shared memory access, before its
	// effect. tInstr is the thread's completed-instruction count, which
	// identifies this access for replay.
	OnAccess(st *State, tid int, loc Loc, write bool, pc bytecode.PCRef, tInstr int64)
	// OnSync is called after each synchronization event.
	OnSync(st *State, ev SyncEvent)
	// CloneObs returns a logically independent copy. Implementations are
	// expected to be O(1): share the underlying tables and copy them on
	// first mutation (see race.Detector for the canonical shape).
	CloneObs() Observer
}

// globalEpoch mints state epochs. Epoch 0 is reserved for states that
// were built directly (NewState, DecodeState, struct literals in tests)
// and have never been cloned: their layer stamps are all zero, so they
// own everything they reference without any initialization.
var globalEpoch uint64

// State is the complete machine state: memory, threads, scheduler
// position, inputs/outputs, path condition, and observers. It supports
// cloning, which implements checkpointing (Algorithm 1) and state
// forking (Algorithm 2).
//
// # Persistent copy-on-write representation
//
// Clone is O(1): it copies the struct fields (sharing every mutable
// layer with the source) and gives both states fresh epochs. Each
// mutable layer carries an ownership stamp — either a per-layer field in
// the State (gStamp for globals, syncStamp for mutexes/conds/barriers,
// thStamp for the thread list, suspStamp, hintStamp, argStamp) or a
// per-object stamp (Thread, Frame, HeapBlock, and the heap trie's
// nodes). A layer is owned, and may be written in place, exactly when
// its stamp equals the state's epoch; otherwise the writer first
// privatizes it (write barrier: copy the layer, stamp it with the
// current epoch) and every other state sharing the old copy is
// untouched. Since epochs are globally unique and never reused, a stale
// stamp can never be mistaken for ownership.
//
// The heap is a persistent 32-way radix trie (internal/pstate) indexed
// by ref-1 — heap refs are dense, FREE marks rather than deletes — so a
// block write path-copies O(log32 n) nodes at most once per epoch and
// iteration yields blocks in ref order with no sorting.
//
// Append-only slices (Outputs, PathCond) share backing arrays with the
// clone's source, cap-trimmed on the clone side so an append by either
// party reallocates instead of overwriting the shared prefix.
// Concretize, the one operation that rewrites shared-looking data
// wholesale, privatizes each layer before writing.
type State struct {
	Prog *bytecode.Program // immutable, shared

	Globals  [][]expr.Expr // per global: cells; privatized via wglobals
	heap     pstate.Vector[*HeapBlock]
	NextRef  int64
	Mutexes  []mutexState
	Conds    []condState
	Barriers []barrierState

	Threads []*Thread
	Cur     int

	Outputs []Output
	In      Inputs
	Args    []int64
	SymArgs []bool // per-arg: reads produce symbolic values

	// ArgReads counts completed ARG instructions. Together with In.Pos it
	// tells a checkpoint consumer whether the execution so far touched any
	// source that symbolic re-execution would have made symbolic: a state
	// with In.Pos == 0 and ArgReads == 0 is bit-identical to what the same
	// replay would produce with symbolic inputs/args enabled.
	ArgReads int

	// PathCond is the conjunction of branch constraints accumulated by
	// symbolic execution; Hints maps every created symbol to its concolic
	// seed value, so the state always carries a satisfying witness.
	PathCond []expr.Expr
	Hints    expr.Assignment

	// Suspended threads are invisible to the scheduler; the classifier
	// suspends the first racing thread to enforce the alternate ordering.
	// Indexed by thread id and grown on demand (a short id is simply not
	// suspended) — the interpreter loop consults it once per instruction,
	// which is why it is a slice and not a map. Use IsSuspended / Suspend
	// / Resume rather than indexing directly.
	Suspended []bool

	Steps   int64 // total completed instructions
	Halted  bool  // main returned: the process exits
	Failure *RuntimeError

	Observers []Observer

	argSyms map[int]*expr.Sym // memoized symbols for symbolic args

	// epoch identifies this state's current ownership generation. It is
	// only meaningful together with sharedFlag: Clone marks the source
	// shared (atomically, so concurrent Clones of one checkpoint are
	// safe) instead of touching epoch, and own() re-epochs lazily on the
	// next write. Everything below is bookkeeping the wire codec ignores.
	epoch      uint64
	sharedFlag uint32 // set by Clone on the source; cleared by own()

	// Per-layer ownership stamps for layers without objects of their own.
	gStamp    uint64 // Globals (outer slice + every cell slab)
	syncStamp uint64 // Mutexes, Conds, Barriers
	thStamp   uint64 // Threads outer slice
	suspStamp uint64 // Suspended
	hintStamp uint64 // Hints
	argStamp  uint64 // Args, SymArgs, argSyms

	// meter, when non-nil, receives per-Clone cost tallies
	// (Stats.CloneAllocs / Stats.CloneBytes). Clones inherit it.
	meter *Counters
}

// NewState builds the initial state for a program with the given concrete
// arguments and input log.
func NewState(p *bytecode.Program, args []int64, inputs []int64) *State {
	st := &State{
		Prog:    p,
		NextRef: 1,
		Args:    append([]int64(nil), args...),
		SymArgs: make([]bool, len(args)),
		In:      Inputs{Values: append([]int64(nil), inputs...)},
		Hints:   expr.Assignment{},
		Cur:     0,
	}
	st.Globals = make([][]expr.Expr, len(p.Globals))
	for i, g := range p.Globals {
		cells := make([]expr.Expr, g.Size)
		for j := range cells {
			cells[j] = expr.NewConst(0)
		}
		if g.Size == 1 {
			cells[0] = expr.NewConst(g.Init)
		}
		st.Globals[i] = cells
	}
	st.Mutexes = make([]mutexState, len(p.Mutexes))
	for i := range st.Mutexes {
		st.Mutexes[i].Owner = -1
	}
	st.Conds = make([]condState, len(p.Conds))
	st.Barriers = make([]barrierState, len(p.Barriers))

	mainFn := &p.Funcs[p.MainFunc]
	fr := &Frame{Fn: p.MainFunc, Locals: make([]expr.Expr, mainFn.NLocals)}
	for i := range fr.Locals {
		fr.Locals[i] = expr.NewConst(0)
	}
	st.Threads = []*Thread{{
		ID: 0, Status: ThRunnable, Frames: []*Frame{fr},
		WaitMutex: -1, WaitCond: -1, WaitJoin: -1, WaitBarrier: -1,
	}}
	return st
}

// SetCounters directs this state's per-Clone cost meter at c; clones
// inherit the meter. The classification engine points every state it
// runs at its per-run Counters.
func (st *State) SetCounters(c *Counters) { st.meter = c }

// stateBytes approximates what one Clone allocates (the State struct,
// plus the Observers slice when present); observer CloneObs costs are
// counted by the observers themselves being O(1) wrappers.
const stateBytes = int64(unsafe.Sizeof(State{}))

// Clone snapshots the state in O(1): the child shares every mutable
// layer with the source, and both sides' write barriers copy a layer on
// its first write per epoch (see the State doc comment). The source is
// marked shared with one atomic store, so Clone is safe to call
// concurrently on one state from several goroutines — which the
// parallel alternate-schedule workers and the checkpoint stores'
// concurrent Resumes rely on.
//
// The child is built with a field literal rather than a struct copy so
// that sharedFlag (the one word a concurrent Clone writes) is never
// read here.
func (st *State) Clone() *State {
	ns := &State{
		Prog:     st.Prog,
		Globals:  st.Globals,
		heap:     st.heap,
		NextRef:  st.NextRef,
		Mutexes:  st.Mutexes,
		Conds:    st.Conds,
		Barriers: st.Barriers,
		Threads:  st.Threads,
		Cur:      st.Cur,
		// Append-only slices: share the backing array, cap-trimmed so
		// that an append by the child reallocates instead of overwriting
		// the source's spare capacity (the source keeps its capacity; the
		// child never reads past its own length).
		Outputs:   st.Outputs[:len(st.Outputs):len(st.Outputs)],
		PathCond:  st.PathCond[:len(st.PathCond):len(st.PathCond)],
		In:        st.In,
		Args:      st.Args,
		SymArgs:   st.SymArgs,
		ArgReads:  st.ArgReads,
		Hints:     st.Hints,
		Suspended: st.Suspended,
		Steps:     st.Steps,
		Halted:    st.Halted,
		Failure:   st.Failure,
		argSyms:   st.argSyms,
		meter:     st.meter,
	}
	allocs, bytes := int64(1), stateBytes
	// The Observers slice itself must be private (dropAccessCounter and
	// friends splice it in place), and each observer forks its identity —
	// cheaply, since observers copy-on-write their tables too.
	if len(st.Observers) > 0 {
		obs := make([]Observer, len(st.Observers))
		for i, o := range st.Observers {
			obs[i] = o.CloneObs()
		}
		ns.Observers = obs
		allocs += int64(1 + len(obs))
		bytes += int64(len(obs)) * 16
	}
	// Invalidate the source's ownership (lazily: its next write re-epochs
	// via own) and give the child a fresh epoch. Stamps are left zero in
	// the child; a fresh epoch is never zero... except for the reserved
	// root generation, which by construction has nothing shared to
	// protect.
	atomic.StoreUint32(&st.sharedFlag, 1)
	ns.epoch = atomic.AddUint64(&globalEpoch, 1)
	if m := st.meter; m != nil {
		m.CloneAllocs.Add(allocs)
		m.CloneBytes.Add(bytes)
	}
	return ns
}

// own makes sure the state's epoch is private before any stamp
// comparison: if the state was cloned since its last write, every layer
// it thought it owned is now shared, so it takes a fresh epoch (all
// stamps go stale at once) and clears the flag. Writers call it through
// the w* barriers; it is one atomic load on the fast path.
func (st *State) own() {
	if atomic.LoadUint32(&st.sharedFlag) != 0 {
		atomic.StoreUint32(&st.sharedFlag, 0)
		st.epoch = atomic.AddUint64(&globalEpoch, 1)
	}
}

// wglobals privatizes the globals layer: the outer slice and one
// combined cell slab for every global, so after the first global write
// of an epoch all further global writes are in place.
func (st *State) wglobals() {
	st.own()
	if st.gStamp == st.epoch {
		return
	}
	nCells := 0
	for _, cells := range st.Globals {
		nCells += len(cells)
	}
	slab := make([]expr.Expr, nCells)
	ng := make([][]expr.Expr, len(st.Globals))
	xi := 0
	for i, cells := range st.Globals {
		dst := slab[xi : xi+len(cells) : xi+len(cells)]
		copy(dst, cells)
		ng[i] = dst
		xi += len(cells)
	}
	st.Globals = ng
	st.gStamp = st.epoch
}

// wsync privatizes the synchronization layer (mutexes, condvars,
// barriers). Outer slices are copied; the Waiters/Arrived backing
// arrays stay shared read-only with their headers cap-trimmed, so an
// append by any party reallocates (no element of a waiter list is ever
// written in place — lists only append, re-slice, or reset).
func (st *State) wsync() {
	st.own()
	if st.syncStamp == st.epoch {
		return
	}
	st.Mutexes = append([]mutexState(nil), st.Mutexes...)
	nc := make([]condState, len(st.Conds))
	for i := range st.Conds {
		w := st.Conds[i].Waiters
		nc[i].Waiters = w[:len(w):len(w)]
	}
	st.Conds = nc
	nb := make([]barrierState, len(st.Barriers))
	for i := range st.Barriers {
		a := st.Barriers[i].Arrived
		nb[i].Arrived = a[:len(a):len(a)]
	}
	st.Barriers = nb
	st.syncStamp = st.epoch
}

// wthreads privatizes the outer thread list (cap-trimmed so SPAWN's
// append reallocates rather than growing into a shared neighbor).
func (st *State) wthreads() {
	st.own()
	if st.thStamp == st.epoch {
		return
	}
	nt := make([]*Thread, len(st.Threads))
	copy(nt, st.Threads)
	st.Threads = nt
	st.thStamp = st.epoch
}

// wthread returns a writable *Thread for tid, privatizing the outer
// list and the thread object as needed. The thread's Frames pointer
// slice is copied cap-trimmed; the frames themselves stay shared until
// wframe touches them.
func (st *State) wthread(tid int) *Thread {
	st.wthreads()
	t := st.Threads[tid]
	if t.stamp == st.epoch {
		return t
	}
	nt := &Thread{}
	*nt = *t
	nt.stamp = st.epoch
	nf := make([]*Frame, len(t.Frames))
	copy(nf, t.Frames)
	nt.Frames = nf
	st.Threads[tid] = nt
	return nt
}

// wframe returns a writable frame at index i of an already-privatized
// thread, copying the frame and its Locals/Stack backing on first touch
// per epoch. Once owned, element writes, pops, and pushes all operate on
// private arrays (a push after privatization reallocates once — the
// copy is exact-capacity — then grows privately).
func (st *State) wframe(t *Thread, i int) *Frame {
	f := t.Frames[i]
	if f.stamp == st.epoch {
		return f
	}
	nf := &Frame{Fn: f.Fn, PC: f.PC, stamp: st.epoch}
	nf.Locals = make([]expr.Expr, len(f.Locals))
	copy(nf.Locals, f.Locals)
	nf.Stack = make([]expr.Expr, len(f.Stack))
	copy(nf.Stack, f.Stack)
	t.Frames[i] = nf
	return nf
}

// wtop is wframe for the thread's active frame.
func (st *State) wtop(t *Thread) *Frame {
	return st.wframe(t, len(t.Frames)-1)
}

// newFrame allocates a frame owned by the current epoch.
func (st *State) newFrame(fn int, locals []expr.Expr) *Frame {
	return &Frame{Fn: fn, Locals: locals, stamp: st.epoch}
}

// wsusp privatizes the suspension mask.
func (st *State) wsusp() {
	st.own()
	if st.suspStamp == st.epoch {
		return
	}
	st.Suspended = append([]bool(nil), st.Suspended...)
	st.suspStamp = st.epoch
}

// whints privatizes the concolic hint assignment.
func (st *State) whints() {
	st.own()
	if st.hintStamp == st.epoch {
		return
	}
	nh := make(expr.Assignment, len(st.Hints)+1)
	for k, v := range st.Hints {
		nh[k] = v
	}
	st.Hints = nh
	st.hintStamp = st.epoch
}

// wargs privatizes the argument layer: Args, SymArgs, and the argSyms
// memo, which are written together (Concretize, MarkSymArg, ARG).
func (st *State) wargs() {
	st.own()
	if st.argStamp == st.epoch {
		return
	}
	st.Args = append([]int64(nil), st.Args...)
	st.SymArgs = append([]bool(nil), st.SymArgs...)
	if len(st.argSyms) > 0 {
		na := make(map[int]*expr.Sym, len(st.argSyms))
		for k, v := range st.argSyms {
			na[k] = v
		}
		st.argSyms = na
	} else {
		st.argSyms = nil
	}
	st.argStamp = st.epoch
}

// HeapLen returns the number of heap blocks ever allocated (freed
// blocks included; refs are dense and never reused).
func (st *State) HeapLen() int { return st.heap.Len() }

// heapBlock returns the block for ref, or nil for an invalid ref.
func (st *State) heapBlock(ref int64) *HeapBlock {
	if ref < 1 || ref > int64(st.heap.Len()) {
		return nil
	}
	return st.heap.Get(int(ref) - 1)
}

// rangeHeap visits every heap block in ref order (refs are dense,
// starting at 1).
func (st *State) rangeHeap(f func(ref int64, blk *HeapBlock) bool) {
	st.heap.Range(func(i int, blk *HeapBlock) bool {
		return f(int64(i)+1, blk)
	})
}

// allocBlock appends a fresh heap block and returns its ref. The caller
// must have advanced NextRef; ref == NextRef-1 == HeapLen() holds by
// construction.
func (st *State) allocBlock(cells []expr.Expr) int64 {
	st.own()
	st.heap.Append(&HeapBlock{Cells: cells, stamp: st.epoch}, st.epoch)
	return int64(st.heap.Len())
}

// wblock returns a writable block for ref (which must be valid),
// copying the block and its cells on first write per epoch and
// path-copying the heap trie's spine.
func (st *State) wblock(ref int64, blk *HeapBlock) *HeapBlock {
	st.own()
	if blk.stamp == st.epoch {
		return blk
	}
	nb := &HeapBlock{Freed: blk.Freed, stamp: st.epoch}
	nb.Cells = make([]expr.Expr, len(blk.Cells))
	copy(nb.Cells, blk.Cells)
	st.heap.Set(int(ref)-1, nb, st.epoch)
	return nb
}

// IsSuspended reports whether the thread is hidden from the scheduler.
func (st *State) IsSuspended(tid int) bool {
	return tid >= 0 && tid < len(st.Suspended) && st.Suspended[tid]
}

// RunnableTIDs returns the schedulable threads in id order, excluding
// suspended ones.
func (st *State) RunnableTIDs() []int {
	return st.AppendRunnableTIDs(nil)
}

// AppendRunnableTIDs appends the schedulable thread ids (in id order,
// excluding suspended threads) to buf and returns it. The interpreter
// loop calls this with a reused scratch buffer so scheduling points do
// not allocate.
func (st *State) AppendRunnableTIDs(buf []int) []int {
	for _, t := range st.Threads {
		if t.Status == ThRunnable && !st.IsSuspended(t.ID) {
			buf = append(buf, t.ID)
		}
	}
	return buf
}

// LiveCount returns the number of threads that have not exited.
func (st *State) LiveCount() int {
	n := 0
	for _, t := range st.Threads {
		if t.Status != ThExited {
			n++
		}
	}
	return n
}

// Finished reports whether the program has terminated.
func (st *State) Finished() bool {
	return st.Halted || st.LiveCount() == 0
}

// Suspend hides a thread from the scheduler (classifier orchestration).
func (st *State) Suspend(tid int) {
	if tid < 0 {
		return
	}
	st.wsusp()
	for len(st.Suspended) <= tid {
		st.Suspended = append(st.Suspended, false)
	}
	st.Suspended[tid] = true
}

// Resume reverses Suspend.
func (st *State) Resume(tid int) {
	if tid >= 0 && tid < len(st.Suspended) {
		st.wsusp()
		st.Suspended[tid] = false
	}
}

// NewSym mints a fresh symbolic variable with a concolic hint and records
// the hint.
func (st *State) NewSym(name string, hint int64) *expr.Sym {
	s := expr.NewSym(name)
	st.whints()
	st.Hints[name] = hint
	return s
}

// SetHint records (or overrides) the concolic seed value for a symbol.
// Callers outside the vm use it to steer a cloned sibling down the other
// side of a branch; the barrier keeps the clone's source untouched.
func (st *State) SetHint(name string, v int64) {
	st.whints()
	st.Hints[name] = v
}

// MarkSymArg flags argument i so its future ARG reads mint symbols
// instead of returning the recorded concrete value.
func (st *State) MarkSymArg(i int) {
	if i < 0 || i >= len(st.SymArgs) {
		return
	}
	st.wargs()
	st.SymArgs[i] = true
}

// AddConstraint appends a path constraint.
func (st *State) AddConstraint(c expr.Expr) {
	if v, ok := expr.ConstVal(c); ok && v != 0 {
		return // trivially true
	}
	st.PathCond = append(st.PathCond, c)
}

// HintEval evaluates e under the state's concolic hints; every symbol the
// state created has a hint, so this cannot fail for well-formed states.
func (st *State) HintEval(e expr.Expr) (int64, error) {
	return expr.Eval(e, st.Hints)
}

// Concretize substitutes model (overlaid on the state's hints) into every
// expression in the state, producing a fully concrete state: memory,
// stacks, outputs, and pending inputs. The path condition is cleared.
// This is how alternate executions become "fully concrete" (§3.3.1).
// Every layer it rewrites goes through the write barriers first, so
// sibling clones being concretized concurrently on other workers never
// see each other's substitutions.
func (st *State) Concretize(model expr.Assignment) {
	env := make(expr.Assignment, len(st.Hints)+len(model))
	for k, v := range st.Hints {
		env[k] = v
	}
	for k, v := range model {
		env[k] = v
	}
	sub := func(e expr.Expr) expr.Expr { return expr.Substitute(e, env) }
	st.wglobals()
	for i, cells := range st.Globals {
		for j, c := range cells {
			st.Globals[i][j] = sub(c)
		}
	}
	st.rangeHeap(func(ref int64, blk *HeapBlock) bool {
		wb := st.wblock(ref, blk)
		for j, c := range wb.Cells {
			wb.Cells[j] = sub(c)
		}
		return true
	})
	for i := range st.Threads {
		t := st.wthread(i)
		for j := range t.Frames {
			f := st.wframe(t, j)
			for i, l := range f.Locals {
				f.Locals[i] = sub(l)
			}
			for i, s := range f.Stack {
				f.Stack[i] = sub(s)
			}
		}
	}
	// Rebuild the output records instead of substituting in place: the
	// Outputs slice and the Parts arrays inside it may be shared with
	// the state this one was cloned from (and with sibling clones being
	// concretized concurrently on other workers), so they must be
	// treated as immutable.
	if n := len(st.Outputs); n > 0 {
		outs := make([]Output, n)
		copy(outs, st.Outputs)
		for oi := range outs {
			rebuilt := false
			for pi, p := range outs[oi].Parts {
				if p.E == nil {
					continue
				}
				if !rebuilt {
					outs[oi].Parts = append([]OutPart(nil), outs[oi].Parts...)
					rebuilt = true
				}
				outs[oi].Parts[pi].E = sub(p.E)
			}
		}
		st.Outputs = outs
	}
	// Future arg reads become concrete, consistent with the model.
	st.wargs()
	for i := range st.SymArgs {
		if st.SymArgs[i] {
			if v, ok := env[argSymName(i)]; ok {
				st.Args[i] = v
			}
			st.SymArgs[i] = false
		}
	}
	st.argSyms = nil
	// Future input reads become concrete, consistent with the model. The
	// values log may be shared with the clone's source; privatize before
	// the first write or growth.
	vals := make([]int64, len(st.In.Values))
	copy(vals, st.In.Values)
	st.In.Values = vals
	for p := 0; p < st.In.NSymbolic; p++ {
		if v, ok := env[inputSymName(p)]; ok {
			for len(st.In.Values) <= p {
				st.In.Values = append(st.In.Values, 0)
			}
			st.In.Values[p] = v
		}
	}
	st.In.NSymbolic = 0
	st.PathCond = nil
}

func argSymName(i int) string   { return fmt.Sprintf("arg%d", i) }
func inputSymName(i int) string { return fmt.Sprintf("in%d", i) }

// MemoryFingerprint summarizes globals, heap and thread-local memory as a
// canonical string; the Record/Replay-Analyzer baseline [45] compares
// these fingerprints immediately after the race ("post-race state
// comparison").
func (st *State) MemoryFingerprint() string {
	var b strings.Builder
	for i, cells := range st.Globals {
		fmt.Fprintf(&b, "g%d:", i)
		for _, c := range cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
	}
	st.rangeHeap(func(ref int64, blk *HeapBlock) bool {
		fmt.Fprintf(&b, "h%d(f=%v):", ref, blk.Freed)
		for _, c := range blk.Cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
		return true
	})
	for _, t := range st.Threads {
		fmt.Fprintf(&b, "t%d(%s):", t.ID, t.Status)
		for _, f := range t.Frames {
			for _, l := range f.Locals {
				b.WriteString(l.String())
				b.WriteByte(',')
			}
		}
	}
	return b.String()
}

// OutputTail returns outputs recorded at index from onward.
func (st *State) OutputTail(from int) []Output {
	if from >= len(st.Outputs) {
		return nil
	}
	return st.Outputs[from:]
}

// RenderOutputs renders all outputs, one line per record; values that are
// still symbolic render as formulae.
func (st *State) RenderOutputs() string {
	var b strings.Builder
	for _, o := range st.Outputs {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (st *State) fail(kind ErrKind, tid int, pc bytecode.PCRef, msg string) *RuntimeError {
	e := &RuntimeError{Kind: kind, TID: tid, PC: pc, Msg: msg}
	st.Failure = e
	return e
}

// notifyAccess delivers a memory access to all observers.
func (st *State) notifyAccess(tid int, loc Loc, write bool, pc bytecode.PCRef, tInstr int64) {
	for _, o := range st.Observers {
		o.OnAccess(st, tid, loc, write, pc, tInstr)
	}
}

// notifySync delivers a sync event to all observers.
func (st *State) notifySync(ev SyncEvent) {
	for _, o := range st.Observers {
		o.OnSync(st, ev)
	}
}

// SharedMemoryFingerprint summarizes only the shared address spaces
// (globals and heap), excluding thread-private frames and scheduler
// positions. The Record/Replay-Analyzer baseline [45] compares these
// fingerprints "immediately after the race": by that point both racing
// accesses have executed in both interleavings, but the threads' own
// progress necessarily differs between the orderings, so only shared
// memory is a meaningful comparand.
func (st *State) SharedMemoryFingerprint() string {
	var b strings.Builder
	for i, cells := range st.Globals {
		fmt.Fprintf(&b, "g%d:", i)
		for _, c := range cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
	}
	st.rangeHeap(func(ref int64, blk *HeapBlock) bool {
		fmt.Fprintf(&b, "h%d(f=%v):", ref, blk.Freed)
		for _, c := range blk.Cells {
			b.WriteString(c.String())
			b.WriteByte(',')
		}
		return true
	})
	return b.String()
}
