package vm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/expr"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := compileErr(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func compileErr(src string) (p *bytecode.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	p = bytecode.MustCompile(src, "test", bytecode.Options{})
	return p, nil
}

func run(t *testing.T, src string, args, inputs []int64) (*State, RunResult) {
	t.Helper()
	p := compileSrc(t, src)
	st := NewState(p, args, inputs)
	m := NewMachine(st, NewRoundRobin())
	res := m.Run(1_000_000)
	return st, res
}

func wantFinished(t *testing.T, res RunResult) {
	t.Helper()
	if res.Kind != StopFinished {
		t.Fatalf("want finished, got %v (err=%v)", res.Kind, res.Err)
	}
}

func outputText(st *State) string { return st.RenderOutputs() }

func TestArithmeticAndPrint(t *testing.T) {
	st, res := run(t, `
fn main() {
	let x = 6 * 7
	print("x=", x)
	print("mod=", 17 % 5, " div=", 17 / 5)
}`, nil, nil)
	wantFinished(t, res)
	got := outputText(st)
	want := "x=42\nmod=2 div=3\n"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	st, res := run(t, `
var counter = 10
var buf[4]
fn main() {
	counter += 5
	buf[0] = 1
	buf[3] = counter
	print(buf[0] + buf[3])
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "16\n" {
		t.Fatalf("got %q", got)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	st, res := run(t, `
fn fact(n) {
	if n <= 1 { return 1 }
	return n * fact(n - 1)
}
fn main() {
	print(fact(6))
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "720\n" {
		t.Fatalf("got %q", got)
	}
}

func TestLoopsBreakContinue(t *testing.T) {
	st, res := run(t, `
fn main() {
	let sum = 0
	for i = 0, 10 {
		if i == 3 { continue }
		if i == 7 { break }
		sum += i
	}
	let j = 0
	while true {
		j += 1
		if j >= 4 { break }
	}
	print(sum, " ", j)
}`, nil, nil)
	wantFinished(t, res)
	// 0+1+2+4+5+6 = 18
	if got := outputText(st); got != "18 4\n" {
		t.Fatalf("got %q", got)
	}
}

func TestShortCircuit(t *testing.T) {
	st, res := run(t, `
var touched = 0
fn touch() { touched = 1; return 1 }
fn main() {
	let a = 0 && touch()
	let b = 1 || touch()
	print(a, " ", b, " ", touched)
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "0 1 0\n" {
		t.Fatalf("short-circuit broken: %q", got)
	}
}

func TestSpawnJoinMutex(t *testing.T) {
	st, res := run(t, `
var total = 0
mutex m
fn worker(n) {
	for i = 0, n {
		lock(m)
		total += 1
		unlock(m)
	}
}
fn main() {
	let t1 = spawn worker(50)
	let t2 = spawn worker(50)
	join(t1)
	join(t2)
	print("total=", total)
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "total=100\n" {
		t.Fatalf("got %q", got)
	}
}

func TestCondVarProducerConsumer(t *testing.T) {
	st, res := run(t, `
var ready = 0
var item = 0
mutex m
cond c
fn producer() {
	lock(m)
	item = 99
	ready = 1
	signal(c)
	unlock(m)
}
fn main() {
	let p = spawn producer()
	lock(m)
	while ready == 0 {
		wait(c, m)
	}
	print("got=", item)
	unlock(m)
	join(p)
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "got=99\n" {
		t.Fatalf("got %q", got)
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	st, res := run(t, `
var go_flag = 0
var done = 0
mutex m
cond c
fn waiter() {
	lock(m)
	while go_flag == 0 { wait(c, m) }
	done += 1
	unlock(m)
}
fn main() {
	let a = spawn waiter()
	let b = spawn waiter()
	yield()
	yield()
	lock(m)
	go_flag = 1
	broadcast(c)
	unlock(m)
	join(a)
	join(b)
	print(done)
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "2\n" {
		t.Fatalf("got %q", got)
	}
}

func TestBarrier(t *testing.T) {
	st, res := run(t, `
var phase[3]
barrier b(3)
fn worker(i) {
	phase[i] = 1
	barrier_wait(b)
	// all must have set phase before any proceeds
	assert(phase[0] + phase[1] + phase[2] == 3)
}
fn main() {
	let t1 = spawn worker(0)
	let t2 = spawn worker(1)
	phase[2] = 1
	barrier_wait(b)
	join(t1)
	join(t2)
	print("ok")
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "ok\n" {
		t.Fatalf("got %q", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, res := run(t, `
mutex a
mutex b
fn t2() {
	lock(b)
	yield()
	lock(a)
	unlock(a)
	unlock(b)
}
fn main() {
	let t = spawn t2()
	lock(a)
	yield()
	lock(b)
	unlock(b)
	unlock(a)
	join(t)
}`, nil, nil)
	if res.Kind != StopDeadlock {
		t.Fatalf("want deadlock, got %v", res.Kind)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind ErrKind
	}{
		{"divzero", `fn main() { let z = 0; print(1 / z) }`, ErrDivZero},
		{"oob", `var a[4]
fn main() { let i = 9; a[i] = 1 }`, ErrOutOfBounds},
		{"doublefree", `fn main() { let p = alloc(4); free(p); free(p) }`, ErrDoubleFree},
		{"uaf", `fn main() { let p = alloc(4); free(p); p[0] = 1 }`, ErrUseAfterFree},
		{"assert", `fn main() { assert(1 == 2) }`, ErrAssert},
		{"unlock-not-owned", `mutex m
fn main() { unlock(m) }`, ErrUnlockNotOwned},
		{"relock", `mutex m
fn main() { lock(m); lock(m) }`, ErrRelock},
		{"badarg", `fn main() { print(arg(5)) }`, ErrBadArg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, res := run(t, tc.src, nil, nil)
			if res.Kind != StopError || res.Err == nil || res.Err.Kind != tc.kind {
				t.Fatalf("want %v, got %v err=%v", tc.kind, res.Kind, res.Err)
			}
		})
	}
}

func TestHeapReadWrite(t *testing.T) {
	st, res := run(t, `
fn main() {
	let p = alloc(8)
	for i = 0, 8 { p[i] = i * i }
	let s = 0
	for i = 0, 8 { s += p[i] }
	free(p)
	print(s)
}`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "140\n" {
		t.Fatalf("got %q", got)
	}
}

func TestArgsAndInputs(t *testing.T) {
	st, res := run(t, `
fn main() {
	print("a0=", arg(0), " a1=", arg(1), " in=", input(), ",", input())
}`, []int64{7, 8}, []int64{100, 200})
	wantFinished(t, res)
	if got := outputText(st); got != "a0=7 a1=8 in=100,200\n" {
		t.Fatalf("got %q", got)
	}
}

func TestInputBeyondLogIsZero(t *testing.T) {
	st, res := run(t, `fn main() { print(input()) }`, nil, nil)
	wantFinished(t, res)
	if got := outputText(st); got != "0\n" {
		t.Fatalf("got %q", got)
	}
}

func TestMainExitKillsDaemons(t *testing.T) {
	st, res := run(t, `
var spin = 0
fn daemon() {
	while true { yield() }
}
fn main() {
	spawn daemon()
	print("bye")
}`, nil, nil)
	wantFinished(t, res)
	if !st.Halted {
		t.Fatal("state should be halted after main returns")
	}
	if got := outputText(st); got != "bye\n" {
		t.Fatalf("got %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
var x = 0
mutex m
fn w(n) {
	for i = 0, n { lock(m); x += i; unlock(m) }
	print("w done ", n)
}
fn main() {
	let a = spawn w(5)
	let b = spawn w(7)
	join(a)
	join(b)
	print(x)
}`
	st1, r1 := run(t, src, nil, nil)
	st2, r2 := run(t, src, nil, nil)
	wantFinished(t, r1)
	wantFinished(t, r2)
	if outputText(st1) != outputText(st2) {
		t.Fatalf("nondeterministic outputs:\n%q\n%q", outputText(st1), outputText(st2))
	}
	if st1.MemoryFingerprint() != st2.MemoryFingerprint() {
		t.Fatal("nondeterministic final memory")
	}
	if st1.Steps != st2.Steps {
		t.Fatalf("nondeterministic step counts: %d vs %d", st1.Steps, st2.Steps)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := compileSrc(t, `
var x = 0
fn main() {
	x = 1
	yield()
	x = 2
	print(x)
}`)
	st := NewState(p, nil, nil)
	m := NewMachine(st, NewRoundRobin())
	// Stop at the yield.
	m.Break = func(s *State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return in.Op == bytecode.YIELD
	}
	res := m.Run(-1)
	if res.Kind != StopBreak {
		t.Fatalf("want break, got %v", res.Kind)
	}

	snap := st.Clone()
	m.Break = nil
	res = m.Run(-1)
	wantFinished(t, res)
	if v, _ := expr.ConstVal(st.Globals[0][0]); v != 2 {
		t.Fatalf("original should have x=2, got %v", st.Globals[0][0])
	}
	// The clone is still parked at the yield with x=1.
	if v, _ := expr.ConstVal(snap.Globals[0][0]); v != 1 {
		t.Fatalf("clone should have x=1, got %v", snap.Globals[0][0])
	}
	m2 := NewMachine(snap, NewRoundRobin())
	res = m2.Run(-1)
	wantFinished(t, res)
	if outputText(snap) != "2\n" {
		t.Fatalf("clone run output %q", outputText(snap))
	}
}

func TestBreakpointAtInstrCount(t *testing.T) {
	p := compileSrc(t, `
fn main() {
	let a = 1
	let b = 2
	let c = 3
	print(a + b + c)
}`)
	st := NewState(p, nil, nil)
	m := NewMachine(st, NewRoundRobin())
	m.Break = func(s *State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return tid == 0 && s.Threads[0].Instrs == 4
	}
	res := m.Run(-1)
	if res.Kind != StopBreak {
		t.Fatalf("want break, got %v", res.Kind)
	}
	if st.Threads[0].Instrs != 4 {
		t.Fatalf("stopped at %d, want 4", st.Threads[0].Instrs)
	}
	m.Break = nil
	res = m.Run(-1)
	wantFinished(t, res)
	if outputText(st) != "6\n" {
		t.Fatalf("got %q", outputText(st))
	}
}

func TestBudgetExhaustion(t *testing.T) {
	_, res := run(t, `
fn main() {
	while true { }
}`, nil, nil)
	if res.Kind != StopBudget {
		t.Fatalf("want budget, got %v", res.Kind)
	}
}

func TestSpinDiagnosisAdHoc(t *testing.T) {
	p := compileSrc(t, `
var flag = 0
fn setter() {
	sleep(10)
	flag = 1
}
fn main() {
	let s = spawn setter()
	while flag == 0 { }
	join(s)
}`)
	st := NewState(p, nil, nil)
	// Suspend the setter so main spins forever; mirrors enforcement.
	m := NewMachine(st, NewRoundRobin())
	m.SpinTrack = true
	st.Suspend(1)
	// Give the spawn a chance to happen first.
	res := m.Run(100_000)
	if res.Kind != StopBudget {
		t.Fatalf("want budget, got %v", res.Kind)
	}
	d := m.DiagnoseSpin(0)
	if !d.Looping {
		t.Fatal("expected looping diagnosis")
	}
	if !d.WritableByOther {
		t.Fatal("flag is writable by the setter: this is ad-hoc sync")
	}
}

func TestSpinDiagnosisInfiniteLoop(t *testing.T) {
	p := compileSrc(t, `
var unrelated = 0
fn other() { unrelated = 1 }
fn main() {
	let o = spawn other()
	let x = 0
	while x == 0 { }
	join(o)
}`)
	st := NewState(p, nil, nil)
	m := NewMachine(st, NewRoundRobin())
	m.SpinTrack = true
	res := m.Run(100_000)
	if res.Kind != StopBudget {
		t.Fatalf("want budget, got %v", res.Kind)
	}
	d := m.DiagnoseSpin(0)
	if !d.Looping {
		t.Fatal("expected looping diagnosis")
	}
	if d.WritableByOther {
		t.Fatal("loop reads no shared state another thread writes: infinite loop")
	}
}

func TestSymbolicInputConcolic(t *testing.T) {
	p := compileSrc(t, `
fn main() {
	let v = input()
	if v > 10 {
		print("big")
	} else {
		print("small")
	}
	print(v + 1)
}`)
	st := NewState(p, nil, []int64{42})
	st.In.NSymbolic = 1
	m := NewMachine(st, NewRoundRobin())
	res := m.Run(-1)
	wantFinished(t, res)
	// Concolic: follows the hint (42 > 10 → "big"), collects constraint.
	if got := outputText(st); !strings.HasPrefix(got, "big\n") {
		t.Fatalf("got %q", got)
	}
	if len(st.PathCond) == 0 {
		t.Fatal("expected a path constraint from the symbolic branch")
	}
	// The final print is symbolic: in0 + 1.
	last := st.Outputs[len(st.Outputs)-1]
	var e expr.Expr
	for _, part := range last.Parts {
		if part.E != nil {
			e = part.E
		}
	}
	if e == nil || expr.IsConcrete(e) {
		t.Fatalf("expected symbolic output, got %v", e)
	}
}

func TestConcretize(t *testing.T) {
	p := compileSrc(t, `
var g = 0
fn main() {
	g = input()
	yield()
	print(g, " ", input())
}`)
	st := NewState(p, nil, []int64{5, 6})
	st.In.NSymbolic = 2
	m := NewMachine(st, NewRoundRobin())
	m.Break = func(s *State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return in.Op == bytecode.YIELD
	}
	if res := m.Run(-1); res.Kind != StopBreak {
		t.Fatalf("want break, got %v", res.Kind)
	}
	if expr.IsConcrete(st.Globals[0][0]) {
		t.Fatal("g should be symbolic before concretization")
	}
	st.Concretize(expr.Assignment{"in0": 77, "in1": 88})
	if v, ok := expr.ConstVal(st.Globals[0][0]); !ok || v != 77 {
		t.Fatalf("g should be 77, got %v", st.Globals[0][0])
	}
	m.Break = nil
	res := m.Run(-1)
	wantFinished(t, res)
	if got := outputText(st); got != "77 88\n" {
		t.Fatalf("got %q", got)
	}
}

func TestObserverEvents(t *testing.T) {
	p := compileSrc(t, `
var x = 0
mutex m
fn w() { lock(m); x = 1; unlock(m) }
fn main() {
	let t = spawn w()
	lock(m)
	x = 2
	unlock(m)
	join(t)
}`)
	st := NewState(p, nil, nil)
	obs := &recordingObserver{}
	st.Observers = append(st.Observers, obs)
	m := NewMachine(st, NewRoundRobin())
	res := m.Run(-1)
	wantFinished(t, res)
	if obs.accesses == 0 {
		t.Fatal("no accesses observed")
	}
	need := []SyncKind{EvSpawn, EvAcquire, EvRelease, EvExit, EvJoin}
	for _, k := range need {
		if !obs.sawSync[k] {
			t.Fatalf("missing sync event %d", k)
		}
	}
}

type recordingObserver struct {
	accesses int
	sawSync  map[SyncKind]bool
}

func (r *recordingObserver) OnAccess(st *State, tid int, loc Loc, write bool, pc bytecode.PCRef, tInstr int64) {
	r.accesses++
}
func (r *recordingObserver) OnSync(st *State, ev SyncEvent) {
	if r.sawSync == nil {
		r.sawSync = map[SyncKind]bool{}
	}
	r.sawSync[ev.Kind] = true
}
func (r *recordingObserver) CloneObs() Observer {
	n := &recordingObserver{accesses: r.accesses, sawSync: map[SyncKind]bool{}}
	for k, v := range r.sawSync {
		n.sawSync[k] = v
	}
	return n
}

func TestRandomControllerStillCorrect(t *testing.T) {
	src := `
var total = 0
mutex m
fn w(n) {
	for i = 0, n { lock(m); total += 1; unlock(m) }
}
fn main() {
	let a = spawn w(20)
	let b = spawn w(20)
	join(a)
	join(b)
	print(total)
}`
	p := compileSrc(t, src)
	for seed := uint64(1); seed <= 5; seed++ {
		st := NewState(p, nil, nil)
		m := NewMachine(st, NewRandom(seed))
		res := m.Run(1_000_000)
		wantFinished(t, res)
		if got := outputText(st); got != "40\n" {
			t.Fatalf("seed %d: got %q", seed, got)
		}
	}
}

func TestStepAdvancesOneInstruction(t *testing.T) {
	p := compileSrc(t, `fn main() { let a = 1; let b = 2; print(a + b) }`)
	st := NewState(p, nil, nil)
	m := NewMachine(st, NewRoundRobin())
	before := st.Steps
	res := m.Step()
	if res.Kind != StopBreak && res.Kind != StopFinished {
		t.Fatalf("unexpected stop: %v", res.Kind)
	}
	if st.Steps != before+1 {
		t.Fatalf("step executed %d instructions", st.Steps-before)
	}
}

func TestMemoryFingerprintDiffers(t *testing.T) {
	p := compileSrc(t, `var x = 0
fn main() { x = arg(0) }`)
	st1 := NewState(p, []int64{1}, nil)
	NewMachine(st1, NewRoundRobin()).Run(-1)
	st2 := NewState(p, []int64{2}, nil)
	NewMachine(st2, NewRoundRobin()).Run(-1)
	if st1.MemoryFingerprint() == st2.MemoryFingerprint() {
		t.Fatal("fingerprints should differ")
	}
}
