package vm

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/expr"
)

// Controller decides which thread runs next at each scheduling point.
// Scheduling points are synchronization operations, thread blocking/exit,
// and (when Machine.PreemptAccesses is set) shared memory accesses —
// mirroring the paper's preemption-point discipline (§3.1).
type Controller interface {
	// PickNext returns the id of the next thread to run; runnable is
	// non-empty and sorted by thread id.
	PickNext(st *State, runnable []int) int
}

// BranchPolicy decides symbolic control flow. The concolic default
// follows the state's hint assignment; the multi-path explorer forks.
type BranchPolicy interface {
	// OnSymbolicBranch reports whether cond should be treated as true.
	// The machine records the matching path constraint itself.
	OnSymbolicBranch(m *Machine, cond expr.Expr) (bool, *RuntimeError)
	// Concretize picks a concrete value for e; the machine records
	// e == value as a path constraint.
	Concretize(m *Machine, e expr.Expr) (int64, *RuntimeError)
}

// ConcolicPolicy resolves symbolic branches using the state's concolic
// hints: every symbol carries the concrete value observed (or chosen) for
// this path, so evaluation always succeeds.
type ConcolicPolicy struct{}

// OnSymbolicBranch follows the hinted direction.
func (ConcolicPolicy) OnSymbolicBranch(m *Machine, cond expr.Expr) (bool, *RuntimeError) {
	v, err := m.St.HintEval(cond)
	if err != nil {
		th := m.St.Threads[m.St.Cur]
		return false, m.St.fail(ErrStack, th.ID, th.PCRef(m.St.Prog), "unhinted symbol in branch: "+err.Error())
	}
	return v != 0, nil
}

// Concretize evaluates e under the hints.
func (ConcolicPolicy) Concretize(m *Machine, e expr.Expr) (int64, *RuntimeError) {
	v, err := m.St.HintEval(e)
	if err != nil {
		th := m.St.Threads[m.St.Cur]
		return 0, m.St.fail(ErrStack, th.ID, th.PCRef(m.St.Prog), "unhinted symbol in value: "+err.Error())
	}
	return v, nil
}

// BreakFunc is a breakpoint predicate, checked before each instruction
// attempt of the current thread. Returning true stops Run with StopBreak
// *before* the instruction executes; clear or replace Machine.Break before
// resuming, or Run will stop again immediately.
type BreakFunc func(st *State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool

// Machine drives a State: scheduling, interpretation, breakpoints, and
// symbolic branching. The Machine itself is transient (not checkpointed);
// all persistent execution state lives in State.
type Machine struct {
	St     *State
	Ctl    Controller
	Policy BranchPolicy
	Break  BreakFunc

	// PreemptAccesses makes shared memory accesses scheduling points too
	// (the paper: "can also preempt threads before and after any racing
	// memory access").
	PreemptAccesses bool

	// SpinTrack enables the loop diagnosis used on alternate-enforcement
	// timeouts (infinite loop vs ad-hoc synchronization, §3.5). While it
	// is on, the superinstruction fast path is disabled so the per-
	// instruction tick window of the diagnosis stays exactly as in
	// unfused execution.
	SpinTrack bool
	spin      []*spinInfo // per-thread, indexed by tid

	// Counters, when non-nil, receives this machine's fast-path tallies
	// (fused superinstructions, interned constants) at the end of each
	// Run call. The classification engine shares one Counters per race.
	Counters *Counters

	// Interrupt, when non-nil, is polled periodically during Run (and
	// once on entry); when it reports true the run stops with
	// StopCancelled. This is how context cancellation reaches the
	// interpreter's budget loop without the vm depending on context.
	Interrupt func() bool

	// suppress re-asking the controller for the point it just chose
	skipTID   int
	skipInstr int64

	// scratch is the reused runnable-thread buffer; scheduling points
	// rebuild it in place so the interpreter loop never allocates.
	// Controllers receive it read-only for the duration of PickNext and
	// must not retain it.
	scratch []int

	// Local fast-path tallies, flushed into Counters per Run call.
	fusedOps   int64
	internHits int64
}

// NewMachine returns a machine over st with the given controller and the
// concolic branch policy.
func NewMachine(st *State, ctl Controller) *Machine {
	return &Machine{St: st, Ctl: ctl, Policy: ConcolicPolicy{}, skipTID: -1}
}

func (m *Machine) pick(runnable []int) {
	t := m.Ctl.PickNext(m.St, runnable)
	valid := false
	for _, r := range runnable {
		if r == t {
			valid = true
			break
		}
	}
	if !valid {
		t = runnable[0]
	}
	m.St.Cur = t
	m.skipTID = t
	m.skipInstr = m.St.Threads[t].Instrs
}

// interruptStride is how many loop iterations pass between Interrupt
// polls; cancellation latency is bounded by this many instructions.
const interruptStride = 256

// Run executes until the program finishes, fails, deadlocks, hits a
// breakpoint, is interrupted, or exhausts the budget (budget < 0 means
// unlimited).
//
// The loop is the analysis' innermost hot path: every replay, alternate
// enforcement, and multi-path exploration step goes through it. Two
// structural optimizations keep it lean: the scheduler is consulted (and
// the runnable set rebuilt) only at actual scheduling points — sync
// operations, a blocked/exited current thread, or (with PreemptAccesses)
// shared accesses — instead of before every instruction; and straight-
// line local arithmetic executes through the program's superinstruction
// overlay (bytecode fusion pass), one dispatch per fused sequence with
// instruction counters advanced by the full covered length, so traces,
// budgets, and race coordinates are bit-identical to unfused execution.
func (m *Machine) Run(budget int64) RunResult {
	res := m.run(budget)
	if m.Counters != nil && (m.fusedOps != 0 || m.internHits != 0) {
		m.Counters.FusedOps.Add(m.fusedOps)
		m.Counters.InternedConsts.Add(m.internHits)
		m.fusedOps, m.internHits = 0, 0
	}
	return res
}

func (m *Machine) run(budget int64) RunResult {
	st := m.St
	var steps int64
	var tick int64
	for {
		if m.Interrupt != nil {
			if tick%interruptStride == 0 && m.Interrupt() {
				return RunResult{Kind: StopCancelled, Steps: steps}
			}
			tick++
		}
		if st.Failure != nil {
			return RunResult{Kind: StopError, Err: st.Failure, Steps: steps}
		}
		if st.Halted {
			return RunResult{Kind: StopFinished, Steps: steps}
		}

		cur := st.Cur
		if cur < 0 || cur >= len(st.Threads) {
			if kind, stop := m.reschedule(); stop {
				return RunResult{Kind: kind, Steps: steps}
			}
			continue
		}
		th := st.Threads[cur]
		if th.Status != ThRunnable || st.IsSuspended(cur) {
			if kind, stop := m.reschedule(); stop {
				return RunResult{Kind: kind, Steps: steps}
			}
			continue
		}

		fr := th.Top()
		code := st.Prog.Funcs[fr.Fn].Code
		if fr.PC >= len(code) {
			return RunResult{Kind: StopError, Err: st.fail(ErrStack, cur, th.PCRef(st.Prog), "pc out of range"), Steps: steps}
		}
		in := code[fr.PC]
		pcref := bytecode.PCRef{Fn: fr.Fn, PC: fr.PC, Line: in.Line}

		// Scheduling decision before sync ops / (optionally) shared
		// accesses, unless the controller just picked this very point.
		if in.Op.IsSyncOp() || (m.PreemptAccesses && in.Op.IsSharedAccess()) {
			if !(m.skipTID == cur && m.skipInstr == th.Instrs) {
				m.scratch = st.AppendRunnableTIDs(m.scratch[:0])
				m.pick(m.scratch)
				if st.Cur != cur {
					continue
				}
			}
		}

		if m.Break != nil && m.Break(st, cur, pcref, in) {
			return RunResult{Kind: StopBreak, Steps: steps}
		}
		if budget >= 0 && steps >= budget {
			return RunResult{Kind: StopBudget, Steps: steps}
		}

		// The instruction will now execute: privatize the current thread
		// and its top frame (stamp comparisons — no copies — when already
		// owned this epoch) so the in-place register/stack/PC writes below
		// land on structure this state owns. Other layers privatize at
		// their write sites in exec.
		th = st.wthread(cur)
		fr = st.wtop(th)

		// Superinstruction fast path: execute a whole fused sequence in
		// one dispatch. Interior instructions are thread-local and side-
		// effect-free (no sync ops, shared accesses, jumps, or failure
		// paths), so skipping their Break/scheduling checks is sound; the
		// counters advance by the covered length so budgets and traces
		// cannot tell the difference. Near budget exhaustion (a stop
		// could land mid-sequence) and under spin tracking (per-
		// instruction tick windows) the sequence runs unfused instead.
		if !m.SpinTrack {
			if fs := st.Prog.Funcs[fr.Fn].Fused; fs != nil {
				if f := &fs[fr.PC]; f.Kind != bytecode.FuseNone && (budget < 0 || steps+int64(f.Len) <= budget) {
					if m.execFused(fr, f) {
						n := int64(f.Len)
						th.Instrs += n
						st.Steps += n
						steps += n
						continue
					}
				}
			}
		}

		completed, err := m.exec(th, fr, in, pcref)
		if err != nil {
			return RunResult{Kind: StopError, Err: err, Steps: steps}
		}
		if completed {
			th.Instrs++
			st.Steps++
			steps++
		}
	}
}

// reschedule picks a new current thread when the present one cannot run.
// stop is true when no thread can: the program finished (every thread
// exited), only suspended threads could progress (stuck), or no live
// thread is schedulable (deadlock).
func (m *Machine) reschedule() (kind StopKind, stop bool) {
	st := m.St
	m.scratch = st.AppendRunnableTIDs(m.scratch[:0])
	if len(m.scratch) == 0 {
		if st.LiveCount() == 0 {
			return StopFinished, true
		}
		// Would any suspended thread be schedulable if resumed?
		for _, t := range st.Threads {
			if st.IsSuspended(t.ID) && t.Status == ThRunnable {
				return StopStuck, true
			}
		}
		return StopDeadlock, true
	}
	m.pick(m.scratch)
	return 0, false
}

// Step executes exactly one completed instruction of the current thread
// (scheduling if needed). It is used by the classifier to move just past
// the second racing access.
func (m *Machine) Step() RunResult {
	before := m.St.Steps
	saved := m.Break
	m.Break = func(st *State, tid int, pc bytecode.PCRef, in bytecode.Instr) bool {
		return st.Steps > before
	}
	defer func() { m.Break = saved }()
	// Budget 1: the break fires after one completion, and the remaining
	// headroom is too small for any fused sequence — Step's exactly-one-
	// instruction contract holds whether or not the program carries a
	// fusion overlay.
	return m.Run(1)
}

func (m *Machine) pop(th *Thread, fr *Frame, pcref bytecode.PCRef) (expr.Expr, *RuntimeError) {
	if len(fr.Stack) == 0 {
		return nil, m.St.fail(ErrStack, th.ID, pcref, "pop on empty stack")
	}
	v := fr.Stack[len(fr.Stack)-1]
	fr.Stack = fr.Stack[:len(fr.Stack)-1]
	return v, nil
}

func (m *Machine) concretize(e expr.Expr, th *Thread, pcref bytecode.PCRef) (int64, *RuntimeError) {
	if v, ok := expr.ConstVal(e); ok {
		return v, nil
	}
	v, rerr := m.Policy.Concretize(m, e)
	if rerr != nil {
		return 0, rerr
	}
	m.St.AddConstraint(expr.Eq(e, expr.NewConst(v)))
	return v, nil
}

// branch resolves a possibly-symbolic 0/1 condition, recording the path
// constraint for the taken side.
func (m *Machine) branch(cond expr.Expr, th *Thread, pcref bytecode.PCRef) (bool, *RuntimeError) {
	if v, ok := expr.ConstVal(cond); ok {
		return v != 0, nil
	}
	norm := expr.NeZero(cond)
	taken, rerr := m.Policy.OnSymbolicBranch(m, norm)
	if rerr != nil {
		return false, rerr
	}
	if taken {
		m.St.AddConstraint(norm)
	} else {
		m.St.AddConstraint(expr.LNot(norm))
	}
	return taken, nil
}

// execFused interprets one superinstruction. It returns false when a
// precondition fails (operand-stack underflow), in which case the caller
// falls back to executing the original instructions — which raise the
// exact error unfused execution would.
func (m *Machine) execFused(fr *Frame, f *bytecode.FusedInstr) bool {
	switch f.Kind {
	case bytecode.FuseLocalConstOp:
		// LOADL src; PUSH k; binop; STOREL dst — no stack traffic at all.
		fr.Locals[f.Dst] = expr.NewBinary(binOpOf(f.Op), fr.Locals[f.Src], expr.NewConst(f.K))
	case bytecode.FuseConstOp:
		// PUSH k; binop — combine with the stack top in place.
		n := len(fr.Stack)
		if n == 0 {
			return false
		}
		fr.Stack[n-1] = expr.NewBinary(binOpOf(f.Op), fr.Stack[n-1], expr.NewConst(f.K))
	default:
		return false
	}
	fr.PC += int(f.Len)
	m.fusedOps++
	if expr.Interned(f.K) {
		m.internHits++
	}
	return true
}

// maxAllocCells bounds a single allocation.
const maxAllocCells = 1 << 20

// exec interprets one instruction. It returns completed=false when the
// thread blocked (the instruction will be retried or completed later).
func (m *Machine) exec(th *Thread, fr *Frame, in bytecode.Instr, pcref bytecode.PCRef) (bool, *RuntimeError) {
	st := m.St
	tid := th.ID
	p := st.Prog

	m.trackSpinPC(tid, in, pcref)

	switch in.Op {
	case bytecode.NOP:
		fr.PC++
		return true, nil

	case bytecode.PUSH:
		if expr.Interned(in.A) {
			m.internHits++
		}
		fr.Stack = append(fr.Stack, expr.NewConst(in.A))
		fr.PC++
		return true, nil

	case bytecode.POP:
		if _, err := m.pop(th, fr, pcref); err != nil {
			return false, err
		}
		fr.PC++
		return true, nil

	case bytecode.DUP:
		if len(fr.Stack) == 0 {
			return false, st.fail(ErrStack, tid, pcref, "dup on empty stack")
		}
		fr.Stack = append(fr.Stack, fr.Stack[len(fr.Stack)-1])
		fr.PC++
		return true, nil

	case bytecode.LOADL:
		fr.Stack = append(fr.Stack, fr.Locals[in.A])
		fr.PC++
		return true, nil

	case bytecode.STOREL:
		v, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		fr.Locals[in.A] = v
		fr.PC++
		return true, nil

	case bytecode.LOADG:
		loc := Loc{Space: SpaceGlobal, Obj: in.A}
		st.notifyAccess(tid, loc, false, pcref, th.Instrs)
		m.trackSpinRead(tid, loc)
		fr.Stack = append(fr.Stack, st.Globals[in.A][0])
		fr.PC++
		return true, nil

	case bytecode.STOREG:
		v, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		st.notifyAccess(tid, Loc{Space: SpaceGlobal, Obj: in.A}, true, pcref, th.Instrs)
		st.wglobals()
		st.Globals[in.A][0] = v
		fr.PC++
		return true, nil

	case bytecode.LOADE, bytecode.STOREE:
		var val expr.Expr
		if in.Op == bytecode.STOREE {
			v, err := m.pop(th, fr, pcref)
			if err != nil {
				return false, err
			}
			val = v
		}
		idxE, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		idx, err := m.concretize(idxE, th, pcref)
		if err != nil {
			return false, err
		}
		cells := st.Globals[in.A]
		if idx < 0 || idx >= int64(len(cells)) {
			return false, st.fail(ErrOutOfBounds, tid, pcref,
				fmt.Sprintf("index %d out of range for %s[%d]", idx, p.Globals[in.A].Name, len(cells)))
		}
		loc := Loc{Space: SpaceGlobal, Obj: in.A, Elem: idx}
		if in.Op == bytecode.LOADE {
			st.notifyAccess(tid, loc, false, pcref, th.Instrs)
			m.trackSpinRead(tid, loc)
			fr.Stack = append(fr.Stack, cells[idx])
		} else {
			st.notifyAccess(tid, loc, true, pcref, th.Instrs)
			st.wglobals()
			st.Globals[in.A][idx] = val
		}
		fr.PC++
		return true, nil

	case bytecode.ALLOC:
		nE, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		n, err := m.concretize(nE, th, pcref)
		if err != nil {
			return false, err
		}
		if n <= 0 || n > maxAllocCells {
			return false, st.fail(ErrAllocSize, tid, pcref, fmt.Sprintf("alloc(%d)", n))
		}
		cells := make([]expr.Expr, n)
		for i := range cells {
			cells[i] = expr.NewConst(0)
		}
		// Heap refs are dense and never reused (FREE marks, it does not
		// delete), so the new block's ref is exactly the trie's next
		// index; NextRef is kept as the serialized form of that cursor.
		ref := st.allocBlock(cells)
		st.NextRef = ref + 1
		fr.Stack = append(fr.Stack, expr.NewConst(ref))
		fr.PC++
		return true, nil

	case bytecode.FREE:
		refE, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		ref, err := m.concretize(refE, th, pcref)
		if err != nil {
			return false, err
		}
		blk := st.heapBlock(ref)
		if blk == nil {
			return false, st.fail(ErrBadRef, tid, pcref, fmt.Sprintf("free(%d)", ref))
		}
		st.notifyAccess(tid, Loc{Space: SpaceHeap, Obj: ref}, true, pcref, th.Instrs)
		if blk.Freed {
			return false, st.fail(ErrDoubleFree, tid, pcref, fmt.Sprintf("free(%d)", ref))
		}
		st.wblock(ref, blk).Freed = true
		fr.PC++
		return true, nil

	case bytecode.LOADH, bytecode.STOREH:
		var val expr.Expr
		if in.Op == bytecode.STOREH {
			v, err := m.pop(th, fr, pcref)
			if err != nil {
				return false, err
			}
			val = v
		}
		idxE, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		refE, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		idx, err := m.concretize(idxE, th, pcref)
		if err != nil {
			return false, err
		}
		ref, err := m.concretize(refE, th, pcref)
		if err != nil {
			return false, err
		}
		blk := st.heapBlock(ref)
		if blk == nil {
			return false, st.fail(ErrBadRef, tid, pcref, fmt.Sprintf("heap ref %d", ref))
		}
		if blk.Freed {
			return false, st.fail(ErrUseAfterFree, tid, pcref, fmt.Sprintf("heap ref %d", ref))
		}
		if idx < 0 || idx >= int64(len(blk.Cells)) {
			return false, st.fail(ErrOutOfBounds, tid, pcref,
				fmt.Sprintf("heap index %d out of range [0,%d)", idx, len(blk.Cells)))
		}
		loc := Loc{Space: SpaceHeap, Obj: ref, Elem: idx}
		if in.Op == bytecode.LOADH {
			st.notifyAccess(tid, loc, false, pcref, th.Instrs)
			m.trackSpinRead(tid, loc)
			fr.Stack = append(fr.Stack, blk.Cells[idx])
		} else {
			st.notifyAccess(tid, loc, true, pcref, th.Instrs)
			st.wblock(ref, blk).Cells[idx] = val
		}
		fr.PC++
		return true, nil

	case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.DIV, bytecode.MOD,
		bytecode.BAND, bytecode.BOR, bytecode.BXOR, bytecode.SHL, bytecode.SHR,
		bytecode.EQ, bytecode.NE, bytecode.LT, bytecode.LE, bytecode.GT, bytecode.GE:
		r, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		l, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		if in.Op == bytecode.DIV || in.Op == bytecode.MOD {
			if rv, ok := expr.ConstVal(r); ok {
				if rv == 0 {
					return false, st.fail(ErrDivZero, tid, pcref, "")
				}
			} else {
				nz, berr := m.branch(expr.Ne(r, expr.NewConst(0)), th, pcref)
				if berr != nil {
					return false, berr
				}
				if !nz {
					return false, st.fail(ErrDivZero, tid, pcref, "symbolic divisor can be zero")
				}
			}
		}
		fr.Stack = append(fr.Stack, expr.NewBinary(binOpOf(in.Op), l, r))
		fr.PC++
		return true, nil

	case bytecode.NEG, bytecode.BNOT, bytecode.LNOT, bytecode.NEZ:
		x, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		var res expr.Expr
		switch in.Op {
		case bytecode.NEG:
			res = expr.Neg(x)
		case bytecode.BNOT:
			res = expr.NewUnary(expr.OpBNot, x)
		case bytecode.LNOT:
			res = expr.LNot(x)
		case bytecode.NEZ:
			res = expr.NeZero(x)
		}
		fr.Stack = append(fr.Stack, res)
		fr.PC++
		return true, nil

	case bytecode.JMP:
		fr.PC = int(in.A)
		return true, nil

	case bytecode.JZ:
		c, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		taken, berr := m.branch(c, th, pcref)
		if berr != nil {
			return false, berr
		}
		if taken {
			fr.PC++ // condition non-zero: fall through
		} else {
			fr.PC = int(in.A)
		}
		return true, nil

	case bytecode.CALL:
		fn := &p.Funcs[in.A]
		n := int(in.B)
		if len(fr.Stack) < n {
			return false, st.fail(ErrStack, tid, pcref, "call args underflow")
		}
		locals := make([]expr.Expr, fn.NLocals)
		for i := range locals {
			locals[i] = expr.NewConst(0)
		}
		copy(locals, fr.Stack[len(fr.Stack)-n:])
		fr.Stack = fr.Stack[:len(fr.Stack)-n]
		fr.PC++
		th.Frames = append(th.Frames, st.newFrame(int(in.A), locals))
		return true, nil

	case bytecode.RET:
		v, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		th.Frames = th.Frames[:len(th.Frames)-1]
		if len(th.Frames) == 0 {
			th.Status = ThExited
			st.notifySync(SyncEvent{Kind: EvExit, TID: tid})
			// Wake joiners, privatizing each woken thread first.
			for i := range st.Threads {
				if t := st.Threads[i]; t.Status == ThBlockedJoin && t.WaitJoin == tid {
					wt := st.wthread(i)
					wt.Status = ThRunnable
					wt.WaitJoin = -1
				}
			}
			if tid == 0 {
				st.Halted = true // main returned: process exit
			}
			return true, nil
		}
		top := st.wtop(th) // caller frame: receives the return value
		top.Stack = append(top.Stack, v)
		return true, nil

	case bytecode.SPAWN:
		fn := &p.Funcs[in.A]
		n := int(in.B)
		if len(fr.Stack) < n {
			return false, st.fail(ErrStack, tid, pcref, "spawn args underflow")
		}
		locals := make([]expr.Expr, fn.NLocals)
		for i := range locals {
			locals[i] = expr.NewConst(0)
		}
		copy(locals, fr.Stack[len(fr.Stack)-n:])
		fr.Stack = fr.Stack[:len(fr.Stack)-n]
		child := &Thread{
			ID: len(st.Threads), Status: ThRunnable,
			Frames:    []*Frame{st.newFrame(int(in.A), locals)},
			WaitMutex: -1, WaitCond: -1, WaitJoin: -1, WaitBarrier: -1,
			stamp: st.epoch,
		}
		st.Threads = append(st.Threads, child)
		fr.Stack = append(fr.Stack, expr.NewConst(int64(child.ID)))
		fr.PC++
		st.notifySync(SyncEvent{Kind: EvSpawn, TID: tid, Obj: child.ID})
		return true, nil

	case bytecode.JOIN:
		if len(fr.Stack) == 0 {
			return false, st.fail(ErrStack, tid, pcref, "join on empty stack")
		}
		tgtE := fr.Stack[len(fr.Stack)-1] // peek; pop only on completion
		tgt, err := m.concretize(tgtE, th, pcref)
		if err != nil {
			return false, err
		}
		if tgt < 0 || tgt >= int64(len(st.Threads)) || int(tgt) == tid {
			return false, st.fail(ErrJoinBad, tid, pcref, fmt.Sprintf("join(%d)", tgt))
		}
		if st.Threads[tgt].Status != ThExited {
			th.Status = ThBlockedJoin
			th.WaitJoin = int(tgt)
			return false, nil
		}
		fr.Stack = fr.Stack[:len(fr.Stack)-1]
		fr.PC++
		st.notifySync(SyncEvent{Kind: EvJoin, TID: tid, Obj: int(tgt)})
		return true, nil

	case bytecode.LOCK:
		owner := st.Mutexes[in.A].Owner
		if owner == tid {
			return false, st.fail(ErrRelock, tid, pcref, p.Mutexes[in.A])
		}
		if owner == -1 {
			st.wsync()
			st.Mutexes[in.A].Owner = tid
			fr.PC++
			st.notifySync(SyncEvent{Kind: EvAcquire, TID: tid, Obj: int(in.A)})
			return true, nil
		}
		th.Status = ThBlockedMutex
		th.WaitMutex = int(in.A)
		return false, nil

	case bytecode.UNLOCK:
		if st.Mutexes[in.A].Owner != tid {
			return false, st.fail(ErrUnlockNotOwned, tid, pcref, p.Mutexes[in.A])
		}
		m.unlockMutex(int(in.A), tid)
		fr.PC++
		return true, nil

	case bytecode.WAIT:
		condID, mutID := int(in.A), int(in.B)
		if th.WaitPhase == 1 {
			// Reacquire phase after being signaled.
			if st.Mutexes[mutID].Owner == -1 {
				st.wsync()
				st.Mutexes[mutID].Owner = tid
				th.WaitPhase = 0
				fr.PC++
				st.notifySync(SyncEvent{Kind: EvAcquire, TID: tid, Obj: mutID})
				return true, nil
			}
			th.Status = ThBlockedMutex
			th.WaitMutex = mutID
			return false, nil
		}
		// Fresh arrival: must hold the mutex; release it and block.
		if st.Mutexes[mutID].Owner != tid {
			return false, st.fail(ErrUnlockNotOwned, tid, pcref, "wait without holding "+p.Mutexes[mutID])
		}
		m.unlockMutex(mutID, tid)
		st.Conds[condID].Waiters = append(st.Conds[condID].Waiters, tid)
		th.Status = ThBlockedCond
		th.WaitCond = condID
		return false, nil

	case bytecode.SIGNAL, bytecode.BROADCAST:
		var woken []int
		nwake := len(st.Conds[in.A].Waiters)
		if in.Op == bytecode.SIGNAL && nwake > 1 {
			nwake = 1
		}
		if nwake > 0 {
			st.wsync()
			cs := &st.Conds[in.A]
			for i := 0; i < nwake; i++ {
				w := cs.Waiters[i]
				wt := st.wthread(w)
				wt.Status = ThRunnable
				wt.WaitCond = -1
				wt.WaitPhase = 1
				woken = append(woken, w)
			}
			cs.Waiters = cs.Waiters[nwake:]
		}
		fr.PC++
		if len(woken) > 0 {
			st.notifySync(SyncEvent{Kind: EvSignal, TID: tid, Obj: int(in.A), Others: woken})
		}
		return true, nil

	case bytecode.BARRIER:
		st.wsync()
		bs := &st.Barriers[in.A]
		bs.Arrived = append(bs.Arrived, tid)
		if int64(len(bs.Arrived)) >= p.Barriers[in.A].Count {
			released := append([]int(nil), bs.Arrived...)
			bs.Arrived = nil
			for _, rid := range released {
				if rid == tid {
					continue
				}
				rt := st.wthread(rid)
				rt.Status = ThRunnable
				rt.WaitBarrier = -1
				// Complete their BARRIER instruction on their behalf.
				st.wtop(rt).PC++
				rt.Instrs++
				st.Steps++
			}
			fr.PC++
			st.notifySync(SyncEvent{Kind: EvBarrier, TID: tid, Obj: int(in.A), Others: released})
			return true, nil
		}
		th.Status = ThBlockedBarrier
		th.WaitBarrier = int(in.A)
		return false, nil

	case bytecode.YIELD:
		fr.PC++
		return true, nil

	case bytecode.SLEEP:
		if _, err := m.pop(th, fr, pcref); err != nil {
			return false, err
		}
		fr.PC++
		return true, nil

	case bytecode.PRINT:
		desc := p.Prints[in.A]
		n := int(in.B)
		if len(fr.Stack) < n {
			return false, st.fail(ErrStack, tid, pcref, "print args underflow")
		}
		vals := append([]expr.Expr(nil), fr.Stack[len(fr.Stack)-n:]...)
		fr.Stack = fr.Stack[:len(fr.Stack)-n]
		parts := make([]OutPart, 0, len(desc))
		vi := 0
		for _, d := range desc {
			if d.IsExpr {
				parts = append(parts, OutPart{E: vals[vi]})
				vi++
			} else {
				parts = append(parts, OutPart{Lit: d.Lit})
			}
		}
		st.Outputs = append(st.Outputs, Output{TID: tid, PC: pcref, Parts: parts})
		fr.PC++
		return true, nil

	case bytecode.INPUT:
		pos := st.In.Pos
		var v expr.Expr
		if pos < st.In.NSymbolic {
			hint := int64(0)
			if pos < len(st.In.Values) {
				hint = st.In.Values[pos]
			}
			v = st.NewSym(inputSymName(pos), hint)
		} else {
			cv := int64(0)
			if pos < len(st.In.Values) {
				cv = st.In.Values[pos]
			}
			v = expr.NewConst(cv)
		}
		st.In.Pos++
		fr.Stack = append(fr.Stack, v)
		fr.PC++
		return true, nil

	case bytecode.ARG:
		iE, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		i, err := m.concretize(iE, th, pcref)
		if err != nil {
			return false, err
		}
		if i < 0 || i >= int64(len(st.Args)) {
			return false, st.fail(ErrBadArg, tid, pcref, fmt.Sprintf("arg(%d) of %d", i, len(st.Args)))
		}
		st.ArgReads++
		if st.SymArgs[i] {
			s, ok := st.argSyms[int(i)]
			if !ok {
				s = st.NewSym(argSymName(int(i)), st.Args[i])
				st.wargs()
				if st.argSyms == nil {
					st.argSyms = map[int]*expr.Sym{}
				}
				st.argSyms[int(i)] = s
			}
			fr.Stack = append(fr.Stack, s)
		} else {
			fr.Stack = append(fr.Stack, expr.NewConst(st.Args[i]))
		}
		fr.PC++
		return true, nil

	case bytecode.ASSERT:
		c, err := m.pop(th, fr, pcref)
		if err != nil {
			return false, err
		}
		holds, berr := m.branch(c, th, pcref)
		if berr != nil {
			return false, berr
		}
		if !holds {
			return false, st.fail(ErrAssert, tid, pcref, "")
		}
		fr.PC++
		return true, nil
	}
	return false, st.fail(ErrStack, tid, pcref, "unknown opcode "+in.Op.String())
}

// unlockMutex releases m and wakes every thread blocked acquiring it
// (they retry their LOCK/WAIT-reacquire instruction).
func (m *Machine) unlockMutex(mid, tid int) {
	st := m.St
	st.wsync()
	st.Mutexes[mid].Owner = -1
	for i := range st.Threads {
		if t := st.Threads[i]; t.Status == ThBlockedMutex && t.WaitMutex == mid {
			wt := st.wthread(i)
			wt.Status = ThRunnable
			wt.WaitMutex = -1
		}
	}
	st.notifySync(SyncEvent{Kind: EvRelease, TID: tid, Obj: mid})
}

func binOpOf(op bytecode.OpCode) expr.Op {
	switch op {
	case bytecode.ADD:
		return expr.OpAdd
	case bytecode.SUB:
		return expr.OpSub
	case bytecode.MUL:
		return expr.OpMul
	case bytecode.DIV:
		return expr.OpDiv
	case bytecode.MOD:
		return expr.OpMod
	case bytecode.BAND:
		return expr.OpAnd
	case bytecode.BOR:
		return expr.OpOr
	case bytecode.BXOR:
		return expr.OpXor
	case bytecode.SHL:
		return expr.OpShl
	case bytecode.SHR:
		return expr.OpShr
	case bytecode.EQ:
		return expr.OpEq
	case bytecode.NE:
		return expr.OpNe
	case bytecode.LT:
		return expr.OpLt
	case bytecode.LE:
		return expr.OpLe
	case bytecode.GT:
		return expr.OpGt
	case bytecode.GE:
		return expr.OpGe
	}
	return expr.OpInvalid
}
