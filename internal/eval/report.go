package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/tables"
	"repro/internal/workloads"
	"repro/portend"
)

// Table1 renders the program inventory (paper Table 1), with PIL LOC next
// to the original programs' LOC.
func (s *Suite) Table1() string {
	t := tables.New("Table 1: Programs analyzed with Portend",
		"Program", "PIL LOC", "Paper LOC", "Language", "# Forked threads")
	for _, pr := range s.Runs {
		t.Add(pr.W.Name, pr.W.LOC(), pr.W.PaperLOC, pr.W.Language, pr.W.Threads)
	}
	t.Note("PIL LOC is this reproduction's source; Paper LOC is the original program (Table 1 of the paper).")
	return t.String()
}

// Table2 renders the "spec violated" races and their consequences
// (paper Table 2). It reruns fmm with the timestamp predicate and runs
// the memcached what-if analysis, as §5.1 describes.
func (s *Suite) Table2() string {
	type row struct{ deadlock, crash, semantic int }
	measured := map[string]*row{}
	for _, pr := range s.Runs {
		r := &row{}
		measured[pr.W.Name] = r
		for _, o := range pr.Outcomes {
			if o.Verdict.Class != core.SpecViolated {
				continue
			}
			switch o.Verdict.Consequence {
			case core.ConsDeadlock:
				r.deadlock++
			case core.ConsCrash:
				r.crash++
			case core.ConsSemantic:
				r.semantic++
			case core.ConsHang:
				r.deadlock++ // hangs group with deadlocks in Table 2's terms
			}
		}
	}

	// fmm semantic property run (§5.1: "verify that all timestamps used
	// in fmm are positive"). The workload target attaches fmm's
	// timestamp predicate automatically.
	a := portend.New(portend.WithEngineOptions(s.Opts))
	if frep, err := a.AnalyzeAll(context.Background(), portend.Workload("fmm")); err == nil {
		for _, v := range frep.Raw().Verdicts {
			if v.Class == core.SpecViolated && v.Consequence == core.ConsSemantic {
				measured["fmm"].semantic++
			}
		}
	}

	// memcached what-if run (§5.1: no-op a synchronization operation and
	// ask whether it is safe to remove).
	wres, err := a.WhatIf(context.Background(), portend.Workload("memcached"))
	if err == nil {
		for _, v := range wres.NewRaces {
			raw := v.Raw()
			if raw.Class == core.SpecViolated && raw.Consequence == core.ConsCrash {
				measured["memcached"].crash++
				break // one introduced race, as in the paper
			}
		}
	}

	paper := map[string][3]int{ // deadlock, crash, semantic
		"sqlite": {1, 0, 0}, "pbzip2": {0, 3, 0}, "ctrace": {0, 1, 0},
		"fmm": {0, 0, 1}, "memcached": {0, 1, 0},
	}
	t := tables.New(`Table 2: "Spec violated" races and their consequences`,
		"Program", "Deadlock", "Crash", "Semantic", "(paper: D/C/S)")
	for _, name := range []string{"sqlite", "pbzip2", "ctrace", "fmm", "memcached"} {
		m := measured[name]
		p := paper[name]
		t.Add(name, m.deadlock, m.crash, m.semantic, fmt.Sprintf("%d/%d/%d", p[0], p[1], p[2]))
	}
	t.Note("fmm's semantic row comes from the timestamp predicate run; memcached's crash from the what-if analysis (both as in §5.1).")
	return t.String()
}

// Table3 renders the classification summary (paper Table 3).
func (s *Suite) Table3() string {
	t := tables.New("Table 3: Summary of Portend's classification results",
		"Program", "Distinct", "Instances", "SpecViol", "OutDiff", "KW same", "KW differ", "SingleOrd", "(paper row)")
	totD, totI := 0, 0
	for _, pr := range s.Runs {
		spec, outd, kwS, kwD, single := pr.ClassCounts()
		p := pr.W.Paper
		t.Add(pr.W.Name, len(pr.Outcomes), pr.Instances(), spec, outd, kwS, kwD, single,
			fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d", p.Distinct, p.Instances, p.SpecViol, p.OutDiff, p.KWSame, p.KWDiff, p.SingleOrd))
		totD += len(pr.Outcomes)
		totI += pr.Instances()
	}
	correct, total := s.Accuracy()
	t.Note("totals: %d distinct races, %d instances (paper: 93 distinct).", totD, totI)
	t.Note("accuracy vs ground truth: %d/%d = %s (paper: 92/93 = 99%%).", correct, total, tables.Pct(correct, total))
	return t.String()
}

// Table4 renders classification time per program (paper Table 4).
func (s *Suite) Table4() string {
	t := tables.New("Table 4: Portend's classification time",
		"Program", "Interp (ms)", "Classify avg (ms)", "min (ms)", "max (ms)", "(paper interp/avg s)")
	for _, pr := range s.Runs {
		ds := pr.Durations()
		if len(ds) == 0 {
			continue
		}
		var sum, min, max time.Duration
		min = ds[0]
		for _, d := range ds {
			sum += d
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		avg := sum / time.Duration(len(ds))
		t.Add(pr.W.Name,
			float64(pr.BaseInterp.Microseconds())/1000,
			float64(avg.Microseconds())/1000,
			float64(min.Microseconds())/1000,
			float64(max.Microseconds())/1000,
			fmt.Sprintf("%.2f/%.2f", pr.W.Paper.CloudNineSecs, pr.W.Paper.PortendAvgSecs))
	}
	t.Note("absolute times differ from the paper (different substrate and host); the shape to check is the overhead of classification over plain interpretation.")
	return t.String()
}

// classOfTruth maps a truth class to a Table 5 column.
var table5Classes = []core.Class{core.SpecViolated, core.KWitnessHarmless, core.OutputDiffers, core.SingleOrdering}

// Table5 compares classifier accuracy per category (paper Table 5):
// ground truth, Record/Replay-Analyzer, ad-hoc-sync detectors, and
// Portend. Percentages are precision per predicted class.
func (s *Suite) Table5() string {
	// predicted[class] / correct[class] per approach
	type tally struct{ predicted, correct map[core.Class]int }
	newTally := func() *tally {
		return &tally{predicted: map[core.Class]int{}, correct: map[core.Class]int{}}
	}
	rr, ah, po := newTally(), newTally(), newTally()
	rrNotClassified, ahNotClassified := 0, 0

	for _, pr := range s.Runs {
		cl := core.New(pr.Prog, s.Opts)
		for _, o := range pr.Outcomes {
			if !o.Known {
				continue
			}
			truth := o.Truth.Truth

			// Portend.
			po.predicted[o.Verdict.Class]++
			if o.Verdict.Class == truth {
				po.correct[o.Verdict.Class]++
			}

			// Record/Replay-Analyzer: it knows only harmful (-> the
			// specViol column) vs harmless (-> the k-witness column).
			// Its "harmful" is correct only for truly spec-violating
			// races; its "harmless" is correct for any truly harmless
			// category (k-witness or single ordering).
			rv, err := cl.RecordReplayAnalyzer(o.Verdict.Race, pr.Res.Detection.Trace)
			if err == nil {
				if rv.Harmful {
					rr.predicted[core.SpecViolated]++
					if truth == core.SpecViolated {
						rr.correct[core.SpecViolated]++
					}
				} else {
					rr.predicted[core.KWitnessHarmless]++
					if truth == core.KWitnessHarmless || truth == core.SingleOrdering {
						rr.correct[core.KWitnessHarmless]++
					}
				}
			}
			rrNotClassified = 2 // outDiff and singleOrd columns

			// Ad-hoc detectors: singleOrd or nothing.
			av, err := cl.AdHocDetector(o.Verdict.Race, pr.Res.Detection.Trace)
			if err == nil && av.Classified {
				ah.predicted[core.SingleOrdering]++
				if truth == core.SingleOrdering {
					ah.correct[core.SingleOrdering]++
				}
			}
			ahNotClassified = 3 // the other three columns
		}
	}
	_ = rrNotClassified
	_ = ahNotClassified

	t := tables.New("Table 5: Accuracy per approach and classification category (precision per predicted class)",
		"Approach", "specViol", "k-witness", "outDiff", "singleOrd")
	t.Add("Ground truth", "100%", "100%", "100%", "100%")
	cell := func(ta *tally, c core.Class, classified bool) string {
		if !classified {
			return "(not classified)"
		}
		return tables.Pct(ta.correct[c], ta.predicted[c])
	}
	t.Add("Record/Replay-Analyzer",
		cell(rr, core.SpecViolated, true),
		cell(rr, core.KWitnessHarmless, true),
		"(not classified)", "(not classified)")
	t.Add("Ad-Hoc-Detector, Helgrind+",
		"(not classified)", "(not classified)", "(not classified)",
		cell(ah, core.SingleOrdering, true))
	t.Add("Portend",
		cell(po, core.SpecViolated, true),
		cell(po, core.KWitnessHarmless, true),
		cell(po, core.OutputDiffers, true),
		cell(po, core.SingleOrdering, true))
	t.Note("paper row for Record/Replay-Analyzer: 10%% / 95%% / - / -; for ad-hoc detectors: - / - / - / 100%%; for Portend: 100%% / 99%% / 99%% / 100%%.")
	return t.String()
}

// Fig7Configs are the cumulative technique gates of Fig 7.
func Fig7Configs() []struct {
	Name string
	Opts core.Options
} {
	base := core.DefaultOptions()
	single := base
	single.AdHocDetection = false
	single.MultiPath = false
	single.MultiSchedule = false
	adhoc := single
	adhoc.AdHocDetection = true
	multipath := adhoc
	multipath.MultiPath = true
	full := multipath
	full.MultiSchedule = true
	return []struct {
		Name string
		Opts core.Options
	}{
		{"Single-path", single},
		{"+ Ad-hoc sync detection", adhoc},
		{"+ Multi-path", multipath},
		{"+ Multi-schedule", full},
	}
}

// Fig7 renders the accuracy breakdown per technique for the four programs
// the paper charts (ctrace, pbzip2, memcached, bbuf).
func Fig7(progNames []string) string {
	if len(progNames) == 0 {
		progNames = []string{"ctrace", "pbzip2", "memcached", "bbuf"}
	}
	var b strings.Builder
	b.WriteString("Fig 7: Contribution of each technique toward accuracy\n")
	b.WriteString("=====================================================\n")
	for _, cfg := range Fig7Configs() {
		c := tables.NewBars(cfg.Name)
		for _, name := range progNames {
			w := workloads.ByName(name)
			pr := RunProgram(w, cfg.Opts)
			correct, total := pr.Correct()
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(correct) / float64(total)
			}
			c.Add(name, pct)
		}
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig9Point is one cell of the scalability sweep.
type Fig9Point struct {
	Preemptions, Branches int
	MeasuredPreemptions   int
	MeasuredBranches      int
	Time                  time.Duration
}

// Fig9 sweeps the parametric scale workload over preemption-point and
// dependent-branch counts and reports classification time (paper Fig 9).
func Fig9(preempts, branches []int, opts core.Options) []Fig9Point {
	if len(preempts) == 0 {
		preempts = []int{20, 50, 100, 200, 400}
	}
	if len(branches) == 0 {
		branches = []int{5, 10, 15, 20}
	}
	a := portend.New(portend.WithEngineOptions(opts))
	var out []Fig9Point
	for _, p := range preempts {
		for _, br := range branches {
			src := workloads.ScaleSource(p, br)
			name := fmt.Sprintf("scale-p%d-b%d", p, br)
			rep, err := a.AnalyzeAll(context.Background(), portend.Source(name, src).WithInputs(3))
			if err != nil {
				panic(fmt.Sprintf("eval: fig9 %s: %v", name, err))
			}
			res := rep.Raw()
			var dur time.Duration
			mp, mb := 0, 0
			for _, v := range res.Verdicts {
				dur += v.Stats.Duration
				if v.Stats.Preemptions > mp {
					mp = v.Stats.Preemptions
				}
				if v.Stats.Branches > mb {
					mb = v.Stats.Branches
				}
			}
			out = append(out, Fig9Point{Preemptions: p, Branches: br, MeasuredPreemptions: mp, MeasuredBranches: mb, Time: dur})
		}
	}
	return out
}

// Fig9Render formats the sweep as a table.
func Fig9Render(points []Fig9Point) string {
	t := tables.New("Fig 9: Classification time vs #preemptions and #dependent branches",
		"Preemptions", "Branches", "Sched decisions", "Symbolic branches", "Time (ms)")
	for _, p := range points {
		t.Add(p.Preemptions, p.Branches, p.MeasuredPreemptions, p.MeasuredBranches,
			float64(p.Time.Microseconds())/1000)
	}
	t.Note("time should grow with both axes, as in the paper's surface plot.")
	return t.String()
}

// Fig10KSteps maps a witness target k to (Mp, Ma) as the sweep of §5.3.
func Fig10KSteps() [][3]int { // k, Mp, Ma
	return [][3]int{{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2}, {10, 5, 2}}
}

// Fig10 sweeps k for the four programs of the paper's figure and reports
// accuracy (paper Fig 10: accuracy grows with k, plateauing early).
func Fig10(progNames []string) string {
	if len(progNames) == 0 {
		progNames = []string{"pbzip2", "ctrace", "memcached", "bbuf"}
	}
	t := tables.New("Fig 10: Accuracy with increasing values of k",
		append([]string{"k (Mp x Ma)"}, progNames...)...)
	for _, step := range Fig10KSteps() {
		opts := core.DefaultOptions()
		opts.Mp, opts.Ma = step[1], step[2]
		if step[0] == 1 {
			opts.MultiPath = false
			opts.MultiSchedule = false
		} else if step[2] == 1 {
			opts.MultiSchedule = false
		}
		row := []any{fmt.Sprintf("%d (%dx%d)", step[0], step[1], step[2])}
		for _, name := range progNames {
			pr := RunProgram(workloads.ByName(name), opts)
			correct, total := pr.Correct()
			row = append(row, tables.Pct(correct, total))
		}
		t.Add(row...)
	}
	t.Note("accuracy should rise with k and plateau, as in the paper (k=5 sufficed for 99%%).")
	return t.String()
}

// CorpusTables renders the corpus evaluation: the summary header, the
// per-class precision/recall table, and the ground-truth × predicted
// confusion matrix. Every ratio is rendered through guarded math, so
// degenerate corpora — zero programs, zero races, races with no labels —
// render "n/a" cells instead of dividing by zero (the empty-matrix edge
// cases the corpus test suite pins).
func CorpusTables(r *CorpusResult) string {
	var b strings.Builder

	correct, total := r.Accuracy()
	eCorrect, eTotal := r.ExpectedMatch()
	head := tables.New("Corpus: labeled classification accuracy",
		"Programs", "Curated", "Generated", "Races", "Labeled", "Accuracy", "Expected match")
	head.Add(r.Programs, r.Curated, r.Generated, r.Races(), r.Labeled(),
		fmt.Sprintf("%d/%d (%s)", correct, total, tables.Pct(correct, total)),
		fmt.Sprintf("%d/%d (%s)", eCorrect, eTotal, tables.Pct(eCorrect, eTotal)))
	head.Note("accuracy compares verdicts to ground truth; expected match compares them to the expected-Portend labels (100%% on a healthy engine — the known misses are the gap between the two).")
	secs := r.Duration.Seconds()
	if secs > 0 {
		head.Note("throughput: %.1f programs/sec, %.1f verdicts/sec (%.2fs total; informational, not gated).",
			float64(r.Programs)/secs, float64(r.Races())/secs, secs)
	}
	b.WriteString(head.String())
	b.WriteByte('\n')

	pr := tables.New("Per-class precision/recall vs ground truth",
		"Class", "TP", "FP", "FN", "Precision", "Recall")
	for _, t := range r.Tallies() {
		pr.Add(t.Class.String(), t.TP, t.FP, t.FN,
			tables.Pct(t.TP, t.TP+t.FP), tables.Pct(t.TP, t.TP+t.FN))
	}
	pr.Note("precision = TP/(TP+FP) per predicted class; recall = TP/(TP+FN) per ground-truth class; n/a marks classes absent from the corpus.")
	b.WriteString(pr.String())
	b.WriteByte('\n')

	m := r.Confusion()
	cm := tables.New("Confusion matrix (rows: ground truth, columns: predicted)",
		"truth \\ predicted", "specViol", "outDiff", "k-witness", "singleOrd")
	for i, c := range corpusClasses {
		cm.Add(c.String(), m[i][0], m[i][1], m[i][2], m[i][3])
	}
	b.WriteString(cm.String())

	if mism := r.Mismatches(); len(mism) > 0 {
		b.WriteByte('\n')
		mt := tables.New("Expected-label mismatches (engine regressions or label bugs)",
			"Program", "Family", "Global", "Expected", "Got")
		for _, o := range mism {
			mt.Add(o.Program, string(o.Family), o.Global, o.Want.String(), o.Got.String())
		}
		b.WriteString(mt.String())
	}
	return b.String()
}

// SortedNames returns the workload names in canonical order.
func SortedNames(s *Suite) []string {
	names := make([]string, 0, len(s.Runs))
	for _, pr := range s.Runs {
		names = append(names, pr.W.Name)
	}
	sort.Strings(names)
	return names
}
