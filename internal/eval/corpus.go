package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/workloads/corpus"
	"repro/portend"
)

// The corpus harness: streams every labeled corpus program through the
// public portend facade, tallies verdicts against ground truth, and
// renders the result as per-class precision/recall, a confusion matrix,
// and throughput — the accuracy trend line that sits beside the BENCH_*
// speed trend. The machine-readable form (CorpusDoc, CORPUS_<n>.json) is
// what the CI corpus-accuracy job gates against.

// corpusClasses orders the taxonomy for confusion-matrix axes. The order
// matches the core.Class iota, so int(class) indexes it directly.
var corpusClasses = []core.Class{
	core.SpecViolated, core.OutputDiffers, core.KWitnessHarmless, core.SingleOrdering,
}

// CorpusOutcome pairs one classified race of one corpus program with its
// label.
type CorpusOutcome struct {
	Program string
	Family  corpus.Family
	Global  string

	// Known marks races with a ground-truth label; the corpus invariant
	// (asserted by the tests) is that every race is labeled.
	Known bool
	// KnownMiss marks labels whose expected Portend verdict deliberately
	// differs from truth (the solver-blind idiom).
	KnownMiss bool

	Truth core.Class // ground truth (valid when Known)
	Want  core.Class // the verdict Portend is expected to produce
	Got   core.Class // the verdict Portend produced

	// SymHits is the verdict's Stats.SymCheckpointHits — surfaced so the
	// corpus suite can assert the symbolic checkpoint store engages on
	// input-before-race programs.
	SymHits int
}

// CorpusResult is a full corpus evaluation.
type CorpusResult struct {
	Seed      uint64
	PerFamily int

	Programs  int
	Curated   int
	Generated int

	Outcomes []CorpusOutcome

	// Duration is the wall-clock time of the analysis loop (compile +
	// detection + classification for every program, sequentially).
	Duration time.Duration
}

// RunCorpus evaluates every corpus program under the given options,
// through the public portend facade — the same path as every other
// consumer. Programs run sequentially (each one parallelizes internally
// per opts.Parallel), so outcome order is deterministic.
func RunCorpus(progs []*corpus.Program, opts core.Options) *CorpusResult {
	res := &CorpusResult{Programs: len(progs)}
	a := portend.New(portend.WithEngineOptions(opts))
	start := time.Now()
	for _, cp := range progs {
		if cp.Generated {
			res.Generated++
		} else {
			res.Curated++
		}
		if cp.Seed != 0 {
			res.Seed = cp.Seed
		}
		p := cp.Compile()
		target := portend.Compiled(cp.Name, p).WithArgs(cp.Args...).WithInputs(cp.Inputs...)
		rep, err := a.AnalyzeAll(context.Background(), target)
		if err != nil {
			// Background context + precompiled target leave no terminal
			// failure mode; anything else is a corpus bug.
			panic(fmt.Sprintf("eval: corpus analysis of %s: %v", cp.Name, err))
		}
		for _, v := range rep.Raw().Verdicts {
			exp, name, known := cp.ExpectedFor(p, v.Race.Loc)
			res.Outcomes = append(res.Outcomes, CorpusOutcome{
				Program:   cp.Name,
				Family:    cp.Family,
				Global:    name,
				Known:     known,
				KnownMiss: cp.KnownMiss[name],
				Truth:     exp.Truth,
				Want:      exp.Portend,
				Got:       v.Class,
				SymHits:   v.Stats.SymCheckpointHits,
			})
		}
	}
	res.Duration = time.Since(start)
	return res
}

// RunCorpusAt evaluates the (seed, perFamily) corpus suite at the given
// worker-pool width — the convenience cmd/paper-eval calls, mirroring how
// Options keeps engine configuration out of the command layer.
func RunCorpusAt(seed uint64, perFamily, parallel int) *CorpusResult {
	return RunCorpus(corpus.Suite(seed, perFamily), Options(parallel))
}

// Races counts classified races; Labeled those with ground truth.
func (r *CorpusResult) Races() int { return len(r.Outcomes) }

// Labeled counts outcomes carrying a ground-truth label.
func (r *CorpusResult) Labeled() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Known {
			n++
		}
	}
	return n
}

// Accuracy counts verdicts matching ground truth over labeled races.
func (r *CorpusResult) Accuracy() (correct, total int) {
	for _, o := range r.Outcomes {
		if !o.Known {
			continue
		}
		total++
		if o.Got == o.Truth {
			correct++
		}
	}
	return
}

// ExpectedMatch counts verdicts matching the *expected Portend* label —
// truth, except where a known miss is recorded. This is the engine-
// regression criterion: it must be 100% on the shipped corpus.
func (r *CorpusResult) ExpectedMatch() (correct, total int) {
	for _, o := range r.Outcomes {
		if !o.Known {
			continue
		}
		total++
		if o.Got == o.Want {
			correct++
		}
	}
	return
}

// Mismatches returns labeled outcomes whose verdict differs from the
// expected Portend verdict — each one an engine regression (or a corpus
// labeling bug).
func (r *CorpusResult) Mismatches() []CorpusOutcome {
	var out []CorpusOutcome
	for _, o := range r.Outcomes {
		if o.Known && o.Got != o.Want {
			out = append(out, o)
		}
	}
	return out
}

// Confusion returns the 4×4 ground-truth × predicted matrix over labeled
// races, axes ordered as corpusClasses (specViol, outDiff, k-witness,
// singleOrd).
func (r *CorpusResult) Confusion() [4][4]int {
	var m [4][4]int
	for _, o := range r.Outcomes {
		if !o.Known {
			continue
		}
		ti, gi := int(o.Truth), int(o.Got)
		if ti < 4 && gi < 4 {
			m[ti][gi]++
		}
	}
	return m
}

// ClassTally is one class's precision/recall counts against ground truth.
type ClassTally struct {
	Class      core.Class
	TP, FP, FN int
}

// Tallies computes per-class true/false positives and false negatives
// against ground truth over labeled races.
func (r *CorpusResult) Tallies() []ClassTally {
	m := r.Confusion()
	out := make([]ClassTally, len(corpusClasses))
	for i, c := range corpusClasses {
		out[i].Class = c
		for j := range corpusClasses {
			switch {
			case i == j:
				out[i].TP += m[i][j]
			default:
				out[i].FN += m[i][j] // truth i predicted j
				out[i].FP += m[j][i] // truth j predicted i
			}
		}
	}
	return out
}

// ratio guards the precision/recall division: a zero denominator (a class
// absent from the corpus, or an empty corpus) yields ok=false rather than
// NaN, and renders as "n/a" / JSON null downstream.
func ratio(num, den int) (v float64, ok bool) {
	if den == 0 {
		return 0, false
	}
	return float64(num) / float64(den), true
}

// --- machine-readable form (CORPUS_<n>.json) ---

// CorpusRatio is a correct/total pair with its fraction.
type CorpusRatio struct {
	Correct  int      `json:"correct"`
	Total    int      `json:"total"`
	Fraction *float64 `json:"fraction"` // null when total is 0
}

func newCorpusRatio(correct, total int) CorpusRatio {
	cr := CorpusRatio{Correct: correct, Total: total}
	if v, ok := ratio(correct, total); ok {
		cr.Fraction = &v
	}
	return cr
}

// CorpusClassDoc is one class's row of the JSON report. Precision and
// recall are null when undefined (no predictions / no truth instances).
type CorpusClassDoc struct {
	Class     string   `json:"class"`
	TP        int      `json:"tp"`
	FP        int      `json:"fp"`
	FN        int      `json:"fn"`
	Precision *float64 `json:"precision"`
	Recall    *float64 `json:"recall"`
}

// CorpusMismatchDoc records one expected-vs-got divergence.
type CorpusMismatchDoc struct {
	Program string `json:"program"`
	Family  string `json:"family"`
	Global  string `json:"global"`
	Want    string `json:"want"`
	Got     string `json:"got"`
}

// CorpusThroughputDoc is the (machine-dependent, ungated) speed summary.
type CorpusThroughputDoc struct {
	Seconds        float64 `json:"seconds"`
	ProgramsPerSec float64 `json:"programsPerSec"`
	VerdictsPerSec float64 `json:"verdictsPerSec"`
}

// CorpusDoc is the CORPUS_<n>.json schema: everything the CI accuracy
// gate compares, plus ungated context (throughput, mismatch detail).
type CorpusDoc struct {
	Schema    string `json:"schema"` // corpusSchema
	Label     string `json:"label"`
	Seed      uint64 `json:"seed"`
	PerFamily int    `json:"perFamily"`

	Programs  int `json:"programs"`
	Curated   int `json:"curated"`
	Generated int `json:"generated"`
	Races     int `json:"races"`
	Labeled   int `json:"labeled"`

	// Accuracy is verdicts == ground truth; ExpectedMatch is verdicts ==
	// expected-Portend labels (the regression gate: 1.0 on a healthy
	// engine). KnownMisses = Labeled×(truth != expected).
	Accuracy      CorpusRatio `json:"accuracy"`
	ExpectedMatch CorpusRatio `json:"expectedMatch"`
	KnownMisses   int         `json:"knownMisses"`

	Classes []CorpusClassDoc `json:"classes"`
	// Confusion rows are ground truth, columns predictions, both in
	// specViol, outDiff, k-witness, singleOrd order.
	Confusion [4][4]int `json:"confusion"`

	Mismatches []CorpusMismatchDoc `json:"mismatches,omitempty"`

	// Throughput is context, not a gated quantity — it varies with the
	// host, unlike every accuracy field above, which is deterministic.
	Throughput CorpusThroughputDoc `json:"throughput"`
}

const corpusSchema = "portend-corpus-eval/1"

// Doc renders the result in the CORPUS_<n>.json schema.
func (r *CorpusResult) Doc(label string, perFamily int) *CorpusDoc {
	correct, total := r.Accuracy()
	eCorrect, eTotal := r.ExpectedMatch()
	doc := &CorpusDoc{
		Schema:    corpusSchema,
		Label:     label,
		Seed:      r.Seed,
		PerFamily: perFamily,
		Programs:  r.Programs,
		Curated:   r.Curated,
		Generated: r.Generated,
		Races:     r.Races(),
		Labeled:   r.Labeled(),

		Accuracy:      newCorpusRatio(correct, total),
		ExpectedMatch: newCorpusRatio(eCorrect, eTotal),
		Confusion:     r.Confusion(),
	}
	for _, o := range r.Outcomes {
		if o.Known && o.KnownMiss {
			doc.KnownMisses++
		}
	}
	for _, t := range r.Tallies() {
		cd := CorpusClassDoc{Class: t.Class.String(), TP: t.TP, FP: t.FP, FN: t.FN}
		if v, ok := ratio(t.TP, t.TP+t.FP); ok {
			cd.Precision = &v
		}
		if v, ok := ratio(t.TP, t.TP+t.FN); ok {
			cd.Recall = &v
		}
		doc.Classes = append(doc.Classes, cd)
	}
	for _, m := range r.Mismatches() {
		doc.Mismatches = append(doc.Mismatches, CorpusMismatchDoc{
			Program: m.Program, Family: string(m.Family), Global: m.Global,
			Want: m.Want.String(), Got: m.Got.String(),
		})
	}
	secs := r.Duration.Seconds()
	doc.Throughput.Seconds = secs
	if secs > 0 {
		doc.Throughput.ProgramsPerSec = float64(r.Programs) / secs
		doc.Throughput.VerdictsPerSec = float64(r.Races()) / secs
	}
	return doc
}

// WriteCorpusDoc writes the JSON file (indented, trailing newline).
func WriteCorpusDoc(path string, doc *CorpusDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCorpusDoc reads a CORPUS_<n>.json baseline.
func LoadCorpusDoc(path string) (*CorpusDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc CorpusDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if doc.Schema != corpusSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, corpusSchema)
	}
	return &doc, nil
}

// CompareCorpusDocs checks the current run against a baseline and returns
// one message per regression (empty means the gate passes). Gated:
// labeled coverage, overall accuracy, expected-label match, and per-class
// precision/recall. Deliberately not gated: throughput (host-dependent)
// and improvements in any direction.
func CompareCorpusDocs(cur, base *CorpusDoc) []string {
	var regressions []string
	if cur.Labeled < base.Labeled {
		regressions = append(regressions,
			fmt.Sprintf("labeled races shrank: %d < baseline %d", cur.Labeled, base.Labeled))
	}
	frac := func(r CorpusRatio) float64 {
		if r.Fraction == nil {
			return 0
		}
		return *r.Fraction
	}
	if base.Accuracy.Fraction != nil && frac(cur.Accuracy) < frac(base.Accuracy) {
		regressions = append(regressions,
			fmt.Sprintf("accuracy regressed: %d/%d < baseline %d/%d",
				cur.Accuracy.Correct, cur.Accuracy.Total, base.Accuracy.Correct, base.Accuracy.Total))
	}
	if base.ExpectedMatch.Fraction != nil && frac(cur.ExpectedMatch) < frac(base.ExpectedMatch) {
		regressions = append(regressions,
			fmt.Sprintf("expected-label match regressed: %d/%d < baseline %d/%d",
				cur.ExpectedMatch.Correct, cur.ExpectedMatch.Total, base.ExpectedMatch.Correct, base.ExpectedMatch.Total))
	}
	curByClass := map[string]CorpusClassDoc{}
	for _, c := range cur.Classes {
		curByClass[c.Class] = c
	}
	for _, b := range base.Classes {
		c, ok := curByClass[b.Class]
		if !ok {
			if b.Precision != nil || b.Recall != nil {
				regressions = append(regressions, fmt.Sprintf("class %s missing from current run", b.Class))
			}
			continue
		}
		if b.Precision != nil && (c.Precision == nil || *c.Precision < *b.Precision) {
			regressions = append(regressions,
				fmt.Sprintf("%s precision regressed: %s < baseline %.3f", b.Class, fmtNullable(c.Precision), *b.Precision))
		}
		if b.Recall != nil && (c.Recall == nil || *c.Recall < *b.Recall) {
			regressions = append(regressions,
				fmt.Sprintf("%s recall regressed: %s < baseline %.3f", b.Class, fmtNullable(c.Recall), *b.Recall))
		}
	}
	return regressions
}

func fmtNullable(v *float64) string {
	if v == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", *v)
}
