// Package eval is the experiment harness: it runs detection and
// classification across the workload suite and regenerates every table
// and figure of the paper's evaluation (§5), printing measured values
// side by side with the published ones.
package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/workloads"
	"repro/portend"
)

// Options builds the engine configuration the harness runs with: the
// evaluation defaults at the given worker-pool width. It exists so the
// paper-eval command can configure the suite without reaching into
// internal/core itself.
func Options(parallel int) core.Options {
	o := core.DefaultOptions()
	o.Parallel = parallel
	return o
}

// RaceOutcome pairs one classified race with its ground truth.
type RaceOutcome struct {
	Global  string
	Verdict *core.Verdict
	Truth   workloads.Expected
	Known   bool
}

// ProgramRun is the evaluation of one workload.
type ProgramRun struct {
	W    *workloads.Workload
	Prog *bytecode.Program
	Res  *core.Result

	Outcomes []RaceOutcome

	// BaseInterp is the plain interpretation time (the "Cloud9 running
	// time" column of Table 4); BaseSteps its instruction count.
	BaseInterp time.Duration
	BaseSteps  int64
}

// Instances sums dynamic race occurrences.
func (pr *ProgramRun) Instances() int {
	n := 0
	for _, r := range pr.Res.Detection.Reports {
		n += r.Instances
	}
	return n
}

// Correct counts races whose verdict matches the ground truth.
func (pr *ProgramRun) Correct() (correct, total int) {
	for _, o := range pr.Outcomes {
		if !o.Known {
			continue
		}
		total++
		if o.Verdict.Class == o.Truth.Truth {
			correct++
		}
	}
	return
}

// ClassCounts tallies verdicts: specViol, outDiff, k-witness (states
// same / differ), singleOrd.
func (pr *ProgramRun) ClassCounts() (spec, outd, kwSame, kwDiff, single int) {
	for _, o := range pr.Outcomes {
		switch o.Verdict.Class {
		case core.SpecViolated:
			spec++
		case core.OutputDiffers:
			outd++
		case core.KWitnessHarmless:
			if o.Verdict.StatesDiffer {
				kwDiff++
			} else {
				kwSame++
			}
		case core.SingleOrdering:
			single++
		}
	}
	return
}

// Durations returns per-race classification times.
func (pr *ProgramRun) Durations() []time.Duration {
	out := make([]time.Duration, 0, len(pr.Outcomes))
	for _, o := range pr.Outcomes {
		out = append(out, o.Verdict.Stats.Duration)
	}
	return out
}

// RunProgram evaluates one workload under the given options. It consumes
// the engine through the public portend facade — the same path as every
// other consumer — and reaches the raw verdicts via the facade's
// module-internal escape hatch.
func RunProgram(w *workloads.Workload, opts core.Options) *ProgramRun {
	ctx := context.Background()
	p := w.Compile()
	target := portend.Compiled(w.Name, p).WithArgs(w.Args...).WithInputs(w.Inputs...)

	// Baseline interpretation (detection disabled, no classification).
	base, err := portend.Exec(ctx, target, 50_000_000)
	if err != nil {
		panic(fmt.Sprintf("eval: baseline run of %s: %v", w.Name, err))
	}

	rep, err := portend.New(portend.WithEngineOptions(opts)).AnalyzeAll(ctx, target)
	if err != nil {
		// A background context and a pre-compiled target leave no
		// terminal failure mode; anything else is a harness bug.
		panic(fmt.Sprintf("eval: analysis of %s: %v", w.Name, err))
	}
	res := rep.Raw()
	pr := &ProgramRun{W: w, Prog: p, Res: res, BaseInterp: base.Duration, BaseSteps: base.Steps}
	for _, v := range res.Verdicts {
		exp, name, known := w.ExpectedFor(p, v.Race.Loc)
		pr.Outcomes = append(pr.Outcomes, RaceOutcome{Global: name, Verdict: v, Truth: exp, Known: known})
	}
	return pr
}

// Suite is a full evaluation run.
type Suite struct {
	Opts core.Options
	Runs []*ProgramRun
}

// RunSuite evaluates every workload.
func RunSuite(opts core.Options) *Suite {
	s := &Suite{Opts: opts}
	for _, w := range workloads.All() {
		s.Runs = append(s.Runs, RunProgram(w, opts))
	}
	return s
}

// Accuracy returns suite-wide classification accuracy against ground
// truth (the paper's headline 92/93 = 99%).
func (s *Suite) Accuracy() (correct, total int) {
	for _, pr := range s.Runs {
		c, t := pr.Correct()
		correct += c
		total += t
	}
	return
}

// Run finds a program run by workload name.
func (s *Suite) Run(name string) *ProgramRun {
	for _, pr := range s.Runs {
		if pr.W.Name == name {
			return pr
		}
	}
	return nil
}
