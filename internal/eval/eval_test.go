package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

func TestRunProgramBbuf(t *testing.T) {
	pr := RunProgram(workloads.Bbuf(), core.DefaultOptions())
	if len(pr.Outcomes) != 6 {
		t.Fatalf("bbuf: %d races, want 6", len(pr.Outcomes))
	}
	correct, total := pr.Correct()
	if correct != total || total != 6 {
		t.Fatalf("bbuf accuracy %d/%d", correct, total)
	}
	if pr.BaseSteps == 0 || pr.BaseInterp <= 0 {
		t.Fatal("baseline interpretation not measured")
	}
	_, outd, _, _, _ := pr.ClassCounts()
	if outd != 6 {
		t.Fatalf("bbuf outDiff = %d, want 6", outd)
	}
}

func TestSuiteAccuracyMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	s := RunSuite(core.DefaultOptions())
	correct, total := s.Accuracy()
	if total != 93 {
		t.Fatalf("suite has %d ground-truth races, want 93 (as in the paper)", total)
	}
	if correct != 92 {
		t.Fatalf("accuracy %d/93, want 92/93 (the single ocean misclassification)", correct)
	}
	// Table renders must not be empty and must carry the headline note.
	t3 := s.Table3()
	if !strings.Contains(t3, "93 distinct") {
		t.Fatalf("Table 3 missing totals:\n%s", t3)
	}
	if !strings.Contains(s.Table1(), "pbzip2") {
		t.Fatal("Table 1 missing workloads")
	}
	t4 := s.Table4()
	if !strings.Contains(t4, "Classify avg") {
		t.Fatal("Table 4 malformed")
	}
}

func TestTable2Consequences(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	s := RunSuite(core.DefaultOptions())
	t2 := s.Table2()
	for _, want := range []string{"sqlite", "pbzip2", "ctrace", "fmm", "memcached"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("Table 2 missing %s:\n%s", want, t2)
		}
	}
	// sqlite row should show the deadlock; pbzip2 three crashes.
	lines := strings.Split(t2, "\n")
	check := func(prog string, col int, want string) {
		for _, l := range lines {
			if strings.HasPrefix(l, prog) {
				fields := strings.Fields(l)
				if fields[col] != want {
					t.Fatalf("Table 2 %s col %d = %s, want %s\n%s", prog, col, fields[col], want, t2)
				}
				return
			}
		}
		t.Fatalf("row %s not found", prog)
	}
	check("sqlite", 1, "1")    // deadlock
	check("pbzip2", 2, "3")    // crashes
	check("ctrace", 2, "1")    // crash
	check("fmm", 3, "1")       // semantic
	check("memcached", 2, "1") // what-if crash
}

func TestFig9SmallSweep(t *testing.T) {
	pts := Fig9([]int{20, 100}, []int{5, 10}, core.DefaultOptions())
	if len(pts) != 4 {
		t.Fatalf("want 4 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Time <= 0 {
			t.Fatalf("point %+v has no time", p)
		}
	}
	// More preemptions must produce more scheduling decisions.
	if pts[2].MeasuredPreemptions <= pts[0].MeasuredPreemptions {
		t.Fatalf("preemptions did not scale: %+v vs %+v", pts[2], pts[0])
	}
	// More branch sites must produce more symbolic branches.
	if pts[1].MeasuredBranches <= pts[0].MeasuredBranches {
		t.Fatalf("branches did not scale: %+v vs %+v", pts[1], pts[0])
	}
	if out := Fig9Render(pts); !strings.Contains(out, "Classification time") {
		t.Fatal("Fig 9 render malformed")
	}
}

func TestFig10AccuracyRises(t *testing.T) {
	// k=1 must misclassify bbuf's gated races; the full k must not.
	one := core.DefaultOptions()
	one.MultiPath = false
	one.MultiSchedule = false
	prLow := RunProgram(workloads.Bbuf(), one)
	cLow, tot := prLow.Correct()
	prHigh := RunProgram(workloads.Bbuf(), core.DefaultOptions())
	cHigh, _ := prHigh.Correct()
	if cLow >= cHigh {
		t.Fatalf("accuracy should rise with k: %d/%d -> %d/%d", cLow, tot, cHigh, tot)
	}
	if cHigh != tot {
		t.Fatalf("full analysis should be perfect on bbuf: %d/%d", cHigh, tot)
	}
}

func TestFig7BreakdownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 in short mode")
	}
	out := Fig7([]string{"bbuf", "ctrace"})
	if !strings.Contains(out, "Single-path") || !strings.Contains(out, "+ Multi-schedule") {
		t.Fatalf("Fig 7 missing configs:\n%s", out)
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 in short mode")
	}
	s := RunSuite(core.DefaultOptions())
	t5 := s.Table5()
	for _, want := range []string{"Ground truth", "Record/Replay-Analyzer", "Portend", "not classified"} {
		if !strings.Contains(t5, want) {
			t.Fatalf("Table 5 missing %q:\n%s", want, t5)
		}
	}
	// Portend's singleOrd precision must be 100%.
	for _, l := range strings.Split(t5, "\n") {
		if strings.HasPrefix(l, "Portend") {
			if !strings.Contains(l, "100%") {
				t.Fatalf("Portend row lacks 100%% cells: %s", l)
			}
		}
	}
}

func TestFig10KStepsMapping(t *testing.T) {
	steps := Fig10KSteps()
	if len(steps) == 0 {
		t.Fatal("no k steps")
	}
	prev := 0
	for _, s := range steps {
		k, mp, ma := s[0], s[1], s[2]
		if mp*ma != k {
			t.Fatalf("k=%d != Mp(%d)*Ma(%d)", k, mp, ma)
		}
		if k <= prev {
			t.Fatal("k values must increase")
		}
		prev = k
	}
}

func TestSortedNames(t *testing.T) {
	s := &Suite{}
	for _, name := range []string{"zz", "aa", "mm"} {
		s.Runs = append(s.Runs, &ProgramRun{W: &workloads.Workload{Name: name}})
	}
	got := SortedNames(s)
	if got[0] != "aa" || got[2] != "zz" {
		t.Fatalf("got %v", got)
	}
}

func TestProgramRunClassCountsAndDurations(t *testing.T) {
	pr := RunProgram(workloads.RW(), core.DefaultOptions())
	spec, outd, kwS, kwD, single := pr.ClassCounts()
	if spec+outd+kwS+kwD+single != 1 || kwS != 1 {
		t.Fatalf("rw counts wrong: %d %d %d %d %d", spec, outd, kwS, kwD, single)
	}
	ds := pr.Durations()
	if len(ds) != 1 || ds[0] <= 0 {
		t.Fatalf("durations wrong: %v", ds)
	}
	if pr.Instances() < 1 {
		t.Fatal("instances missing")
	}
}
