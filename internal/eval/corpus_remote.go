package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workloads/corpus"
)

// classFromName maps a wire-format class string back to the engine
// taxonomy.
func classFromName(s string) (core.Class, bool) {
	for _, c := range corpusClasses {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// RunCorpusRemote evaluates the corpus through a portendd instance
// instead of in-process: each program's source is submitted to the
// service, the streamed verdicts are matched to labels by racy-global
// name, and the tallies come out in the same CorpusResult shape as
// RunCorpus — so the -json report and baseline gate work identically.
// Programs run sequentially (the server parallelizes each analysis per
// the parallel width), keeping outcome order deterministic.
func RunCorpusRemote(ctx context.Context, c *server.Client, progs []*corpus.Program, parallel int) (*CorpusResult, error) {
	res := &CorpusResult{Programs: len(progs)}
	start := time.Now()
	for _, cp := range progs {
		if cp.Generated {
			res.Generated++
		} else {
			res.Curated++
		}
		if cp.Seed != 0 {
			res.Seed = cp.Seed
		}
		req := server.Request{
			Source: cp.Source,
			Name:   cp.Name,
			Args:   cp.Args,
			Inputs: cp.Inputs,
			Options: &server.RequestOptions{
				Parallel: parallel,
			},
		}
		cp := cp
		_, err := c.Analyze(ctx, req, func(ev server.Event) error {
			if ev.Type != server.EventVerdict {
				return nil
			}
			v, err := ev.DecodeVerdict()
			if err != nil {
				return err
			}
			got, ok := classFromName(string(v.Class))
			if !ok {
				return fmt.Errorf("unknown verdict class %q", v.Class)
			}
			// The wire verdict names the racy global directly (heap
			// races render as "heap object", which no label matches —
			// the same unlabeled outcome RunCorpus records for them).
			name := v.Race.Object
			exp, known := cp.Truth[name]
			res.Outcomes = append(res.Outcomes, CorpusOutcome{
				Program:   cp.Name,
				Family:    cp.Family,
				Global:    name,
				Known:     known,
				KnownMiss: cp.KnownMiss[name],
				Truth:     exp.Truth,
				Want:      exp.Portend,
				Got:       got,
				SymHits:   v.Stats.SymCheckpointHits,
			})
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("remote corpus analysis of %s: %w", cp.Name, err)
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}
