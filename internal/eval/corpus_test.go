package eval

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads/corpus"
)

// TestCorpusExpectedMatch is the accuracy acceptance test: every race of
// every default-suite program is labeled, and every verdict matches its
// expected-Portend label (expected match 100%; accuracy differs from it
// only by the flagged known misses). It also round-trips the JSON doc
// and self-compares it, pinning the gate's fixed point.
func TestCorpusExpectedMatch(t *testing.T) {
	res := RunCorpusAt(corpus.DefaultSeed, corpus.DefaultPerFamily, 4)

	if res.Races() == 0 {
		t.Fatal("corpus produced no races")
	}
	for _, o := range res.Outcomes {
		if !o.Known {
			t.Errorf("%s: race on %q has no ground-truth label", o.Program, o.Global)
		}
	}
	if mism := res.Mismatches(); len(mism) > 0 {
		for _, m := range mism {
			t.Errorf("%s (%s): global %q classified %v, expected %v",
				m.Program, m.Family, m.Global, m.Got, m.Want)
		}
	}
	eCorrect, eTotal := res.ExpectedMatch()
	if eCorrect != eTotal {
		t.Errorf("expected match %d/%d, want 100%%", eCorrect, eTotal)
	}
	correct, total := res.Accuracy()
	misses := 0
	for _, o := range res.Outcomes {
		if o.Known && o.KnownMiss {
			misses++
		}
	}
	if correct != total-misses {
		t.Errorf("accuracy %d/%d with %d known misses; want correct = total - misses", correct, total, misses)
	}
	if misses == 0 {
		t.Error("corpus carries no known-miss program; the solver-blind idiom is missing")
	}

	doc := res.Doc("test", corpus.DefaultPerFamily)
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := WriteCorpusDoc(path, doc); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := LoadCorpusDoc(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if regressions := CompareCorpusDocs(loaded, doc); len(regressions) > 0 {
		t.Errorf("self-comparison found regressions: %v", regressions)
	}
}

// TestCorpusSymPrefixHits asserts the symbolic checkpoint store engages
// on the corpus slice built for it: every sym-prefix program — input()
// and input-dependent branches before every race — must resume at least
// one exploration from a symbolic checkpoint (caches on, sequential).
func TestCorpusSymPrefixHits(t *testing.T) {
	progs := corpus.ByFamily(corpus.Default(), corpus.FamSymPrefix)
	if len(progs) == 0 {
		t.Fatal("no sym-prefix programs in the default suite")
	}
	res := RunCorpus(progs, Options(1))
	hits := map[string]int{}
	for _, o := range res.Outcomes {
		hits[o.Program] += o.SymHits
	}
	for _, p := range progs {
		if hits[p.Name] < 1 {
			t.Errorf("%s: SymCheckpointHits = %d across all verdicts, want >= 1", p.Name, hits[p.Name])
		}
	}
}

// TestCorpusTablesDegenerate pins the report rendering on corpora the
// divisions could choke on: an empty result, and one whose races all
// lack labels. Both must render (with "n/a" where ratios are undefined)
// rather than divide by zero.
func TestCorpusTablesDegenerate(t *testing.T) {
	cases := []struct {
		name string
		res  *CorpusResult
	}{
		{"empty", &CorpusResult{}},
		{"all-unknown", &CorpusResult{
			Programs: 2,
			Outcomes: []CorpusOutcome{
				{Program: "x", Global: "g", Known: false, Got: core.KWitnessHarmless},
				{Program: "y", Global: "h", Known: false, Got: core.OutputDiffers},
			},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out := CorpusTables(tc.res)
			if !strings.Contains(out, "n/a") {
				t.Errorf("degenerate corpus should render undefined ratios as n/a:\n%s", out)
			}
			if !strings.Contains(out, "Confusion matrix") {
				t.Errorf("report lost its confusion matrix:\n%s", out)
			}

			doc := tc.res.Doc("degenerate", 0)
			if doc.Accuracy.Fraction != nil || doc.ExpectedMatch.Fraction != nil {
				t.Error("accuracy fractions over zero labeled races must be null, not 0/0")
			}
			for _, c := range doc.Classes {
				if c.Precision != nil || c.Recall != nil {
					t.Errorf("class %s: precision/recall must be null when no races are labeled", c.Class)
				}
			}
			if got := tc.res.Labeled(); got != 0 {
				t.Errorf("Labeled() = %d, want 0", got)
			}
		})
	}
}

// docWith builds a minimal CorpusDoc for gate-comparison tests.
func docWith(labeled, correct int, classes []CorpusClassDoc) *CorpusDoc {
	d := &CorpusDoc{Schema: corpusSchema, Labeled: labeled, Classes: classes}
	d.Accuracy = newCorpusRatio(correct, labeled)
	d.ExpectedMatch = newCorpusRatio(labeled, labeled)
	return d
}

// TestCompareCorpusDocs exercises the accuracy gate's decision table:
// identical and improved runs pass; shrunken coverage, lower accuracy,
// per-class precision/recall drops, and vanished classes fail.
func TestCompareCorpusDocs(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	baseClasses := []CorpusClassDoc{
		{Class: "outDiff", TP: 8, Precision: f(1), Recall: f(0.9)},
	}
	base := docWith(100, 99, baseClasses)

	t.Run("identical passes", func(t *testing.T) {
		if regs := CompareCorpusDocs(docWith(100, 99, baseClasses), base); len(regs) != 0 {
			t.Errorf("identical docs flagged: %v", regs)
		}
	})
	t.Run("improvement passes", func(t *testing.T) {
		cur := docWith(120, 120, []CorpusClassDoc{
			{Class: "outDiff", TP: 10, Precision: f(1), Recall: f(1)},
		})
		if regs := CompareCorpusDocs(cur, base); len(regs) != 0 {
			t.Errorf("improved run flagged: %v", regs)
		}
	})
	t.Run("accuracy drop fails", func(t *testing.T) {
		if regs := CompareCorpusDocs(docWith(100, 95, baseClasses), base); len(regs) == 0 {
			t.Error("accuracy 95/100 vs baseline 99/100 not flagged")
		}
	})
	t.Run("labeled shrink fails", func(t *testing.T) {
		if regs := CompareCorpusDocs(docWith(90, 90, baseClasses), base); len(regs) == 0 {
			t.Error("labeled 90 vs baseline 100 not flagged")
		}
	})
	t.Run("recall drop fails", func(t *testing.T) {
		cur := docWith(100, 99, []CorpusClassDoc{
			{Class: "outDiff", TP: 7, Precision: f(1), Recall: f(0.7)},
		})
		if regs := CompareCorpusDocs(cur, base); len(regs) == 0 {
			t.Error("outDiff recall 0.7 vs baseline 0.9 not flagged")
		}
	})
	t.Run("ratio going undefined fails", func(t *testing.T) {
		cur := docWith(100, 99, []CorpusClassDoc{
			{Class: "outDiff", TP: 0, Precision: nil, Recall: nil},
		})
		if regs := CompareCorpusDocs(cur, base); len(regs) == 0 {
			t.Error("defined baseline ratios going n/a not flagged")
		}
	})
	t.Run("class vanishing fails", func(t *testing.T) {
		if regs := CompareCorpusDocs(docWith(100, 99, nil), base); len(regs) == 0 {
			t.Error("class present in baseline but missing from current run not flagged")
		}
	})
	t.Run("undefined baseline ratios do not gate", func(t *testing.T) {
		weakBase := docWith(0, 0, []CorpusClassDoc{{Class: "outDiff"}})
		if regs := CompareCorpusDocs(docWith(0, 0, []CorpusClassDoc{{Class: "outDiff"}}), weakBase); len(regs) != 0 {
			t.Errorf("all-null baseline should gate nothing: %v", regs)
		}
	})
}
