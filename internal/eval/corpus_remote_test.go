package eval

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
	"repro/internal/workloads/corpus"
)

// TestRemoteCorpusMatchesLocal pins that the remote corpus runner
// produces the same outcomes (program, global, label, verdict) as the
// in-process one — the accuracy report and baseline gate must not care
// which side of the HTTP boundary the engine ran on.
func TestRemoteCorpusMatchesLocal(t *testing.T) {
	progs := corpus.Suite(corpus.DefaultSeed, 1)
	local := RunCorpus(progs, Options(1))

	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	remote, err := RunCorpusRemote(context.Background(), &server.Client{Base: ts.URL}, progs, 1)
	if err != nil {
		t.Fatal(err)
	}

	if len(local.Outcomes) != len(remote.Outcomes) {
		t.Fatalf("outcome counts differ: local %d, remote %d", len(local.Outcomes), len(remote.Outcomes))
	}
	for i := range local.Outcomes {
		l, r := local.Outcomes[i], remote.Outcomes[i]
		l.SymHits, r.SymHits = 0, 0 // cache traffic varies; labels must not
		if l != r {
			t.Errorf("outcome %d differs:\nlocal:  %+v\nremote: %+v", i, l, r)
		}
	}

	lc, lt := local.Accuracy()
	rc, rt := remote.Accuracy()
	if lc != rc || lt != rt {
		t.Errorf("accuracy differs: local %d/%d, remote %d/%d", lc, lt, rc, rt)
	}
}
